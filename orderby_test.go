package skyquery

// Tests for ORDER BY across the stack: node-local queries, federated
// cross-match projection, and interaction with TOP.

import (
	"context"
	"testing"

	"skyquery/internal/value"
)

func TestOrderByPassThrough(t *testing.T) {
	f := launch(t, Options{Bodies: 200, Surveys: DefaultSurveys()[:1]})
	res, err := f.Query(context.Background(), `SELECT O.object_id, O.flux FROM SDSS:PhotoObject O
		WHERE O.type = 'GALAXY' ORDER BY O.flux DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() < 10 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	prev, _ := res.Rows[0][1].AsFloat()
	for _, row := range res.Rows[1:] {
		f, _ := row[1].AsFloat()
		if f > prev {
			t.Fatalf("not descending: %g after %g", f, prev)
		}
		prev = f
	}
}

func TestOrderByAscendingDefault(t *testing.T) {
	f := launch(t, Options{Bodies: 150, Surveys: DefaultSurveys()[:1]})
	res, err := f.Query(context.Background(), `SELECT O.flux FROM SDSS:PhotoObject O ORDER BY O.flux`)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1e300
	for _, row := range res.Rows {
		v, _ := row[0].AsFloat()
		if v < prev {
			t.Fatalf("not ascending: %g after %g", v, prev)
		}
		prev = v
	}
}

func TestOrderByWithTopIsSortThenLimit(t *testing.T) {
	f := launch(t, Options{Bodies: 300, Surveys: DefaultSurveys()[:1]})
	all, err := f.Query(context.Background(), `SELECT O.flux FROM SDSS:PhotoObject O ORDER BY O.flux DESC`)
	if err != nil {
		t.Fatal(err)
	}
	top, err := f.Query(context.Background(), `SELECT TOP 5 O.flux FROM SDSS:PhotoObject O ORDER BY O.flux DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if top.NumRows() != 5 {
		t.Fatalf("TOP rows = %d", top.NumRows())
	}
	for i := 0; i < 5; i++ {
		a, _ := all.Rows[i][0].AsFloat()
		b, _ := top.Rows[i][0].AsFloat()
		if a != b {
			t.Fatalf("TOP 5 row %d = %g, want global maximum %g (TOP must apply after ORDER BY)", i, b, a)
		}
	}
}

func TestOrderByFederated(t *testing.T) {
	f := launch(t, Options{Bodies: 300})
	res, err := f.Query(context.Background(), `
		SELECT O.object_id, O.flux
		FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
		WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T) < 3.5
		ORDER BY O.flux DESC, O.object_id`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() < 20 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	prevFlux := 1e300
	prevID := int64(-1)
	for _, row := range res.Rows {
		fl, _ := row[1].AsFloat()
		if fl > prevFlux {
			t.Fatalf("not descending by flux")
		}
		if fl == prevFlux && row[0].AsInt() < prevID {
			t.Fatalf("tie not broken by object_id")
		}
		prevFlux = fl
		prevID = row[0].AsInt()
	}
}

func TestOrderByColumnNotInSelect(t *testing.T) {
	// Sorting by a column that is not projected: the planner must ship it
	// along the chain anyway.
	f := launch(t, Options{Bodies: 200})
	res, err := f.Query(context.Background(), `
		SELECT O.object_id
		FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
		WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T) < 3.5
		ORDER BY O.flux DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() == 0 {
		t.Fatal("no rows")
	}
	// Verify against the archive's actual fluxes.
	flux := map[int64]float64{}
	for _, o := range f.Archives["SDSS"].Obs {
		flux[o.ObjectID] = o.Flux
	}
	prev := 1e300
	for _, row := range res.Rows {
		fl := flux[row[0].AsInt()]
		if fl > prev+1e-9 {
			t.Fatalf("not sorted by the unprojected flux column")
		}
		prev = fl
	}
}

func TestOrderByValidationErrors(t *testing.T) {
	f := launch(t, Options{Bodies: 100, Surveys: DefaultSurveys()[:2]})
	if _, err := f.Query(context.Background(), `SELECT O.object_id FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
		WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T) < 3.5 ORDER BY z.q`); err == nil {
		t.Error("ORDER BY with unknown alias should fail")
	}
	if _, err := f.Query(context.Background(), `SELECT O.object_id FROM SDSS:PhotoObject O
		ORDER BY O.nosuch`); err == nil {
		t.Error("ORDER BY with unknown column should fail")
	}
}

func TestOrderByNullsFirst(t *testing.T) {
	db := NewDB()
	tab, err := db.Create("T", Schema{
		{Name: "id", Type: value.IntType},
		{Name: "ra", Type: value.FloatType},
		{Name: "dec", Type: value.FloatType},
		{Name: "v", Type: value.FloatType},
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := []Value{value.Float(3), value.Null, value.Float(1), value.Null, value.Float(2)}
	for i, v := range vals {
		if err := tab.Append(value.Int(int64(i)), value.Float(10), value.Float(10), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.EnableSpatial(SpatialConfig{RACol: "ra", DecCol: "dec"}); err != nil {
		t.Fatal(err)
	}
	f := launch(t, Options{
		Surveys: []SurveySpec{},
		Nodes: []NodeSpec{{Name: "N", DB: db, PrimaryTable: "T",
			RACol: "ra", DecCol: "dec", SigmaArcsec: 0.1}},
	})
	res, err := f.Query(context.Background(), `SELECT n.id, n.v FROM N:T n ORDER BY n.v`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][1].IsNull() || !res.Rows[1][1].IsNull() {
		t.Fatalf("NULLs must sort first: %v", res.Rows)
	}
	if got, _ := res.Rows[2][1].AsFloat(); got != 1 {
		t.Fatalf("first non-null = %v, want 1", res.Rows[2][1])
	}
	if got, _ := res.Rows[4][1].AsFloat(); got != 3 {
		t.Fatalf("last = %v, want 3", res.Rows[4][1])
	}
}
