// Command skyquery-portal runs a SkyQuery Portal: the federation mediator
// serving the Registration and SkyQuery SOAP services (§5.1).
//
// SkyNodes join by calling the Registration service (see skyquery-node's
// -portal flag); clients submit cross-match queries with the skyquery CLI
// or any SOAP client.
//
//	skyquery-portal -addr :8080
//
// With -shard-map the portal seeds its registry from a static shard
// layout file instead of waiting for every node to self-register — the
// operator's hand-written replica sets. Each line is
//
//	archive INDEX:COUNT LEVEL LO-HI endpoint [follower]
//
// ('#' starts a comment). Entries whose node is not yet serving are
// retried until it comes up.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"skyquery/internal/portal"
	"skyquery/internal/soap"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	publicURL := flag.String("url", "", "public URL for the WSDL (defaults to http://<host>:<port>)")
	chunkRows := flag.Int("chunk-rows", 5000, "rows per SOAP message for large results")
	matchCols := flag.Bool("match-columns", false, "append _matchRA/_matchDec/_logLikelihood/_nObs to results")
	parallelism := flag.Int("parallelism", 0, "chain-step worker hint written into plans (0 = node default, 1 = sequential)")
	codec := flag.String("codec", "", "wire codec for node calls and client responses: binary (negotiated, default) or xml")
	planCache := flag.Int("plan-cache", 0, "compiled-plan cache entries per generation (0 = 256 default, negative = disabled)")
	retryOverloaded := flag.Int("retry-overloaded", 4, "retries with doubling backoff when a node sheds a query as overloaded")
	countProbeOrder := flag.Bool("count-probe-order", false, "order chains by the count-star rule alone, ignoring node column statistics")
	adaptiveReorder := flag.Bool("adaptive-reorder", false, "let chain nodes re-order the downstream suffix when live estimates diverge from the plan")
	shardMap := flag.String("shard-map", "", "file of static shard registrations (archive INDEX:COUNT LEVEL LO-HI endpoint [follower] per line); entries retry until their node is up")
	verbose := flag.Bool("v", false, "log query trace events")
	flag.Parse()

	portalCodec, ok := soap.ParseCodec(*codec)
	if !ok {
		log.Fatalf("bad -codec %q, want binary or xml", *codec)
	}
	cfg := portal.Config{
		ChunkRows:           *chunkRows,
		IncludeMatchColumns: *matchCols,
		Parallelism:         *parallelism,
		PlanCacheSize:       *planCache,
		CountProbeOrder:     *countProbeOrder,
		AdaptiveReorder:     *adaptiveReorder,
		Codec:               portalCodec,
		Client:              &soap.Client{Codec: portalCodec, MaxRetries: *retryOverloaded},
	}
	if *verbose {
		cfg.OnEvent = func(e portal.Event) { log.Printf("[%s] %s", e.Kind, e.Detail) }
	}
	p := portal.New(cfg)

	url := *publicURL
	if url == "" {
		host := *addr
		if strings.HasPrefix(host, ":") {
			host = "localhost" + host
		}
		url = "http://" + host
	}
	if err := p.SetWSDL(url); err != nil {
		log.Fatal(err)
	}
	// Sharded execution stages inter-shard transfers on the portal's own
	// chunk store; the nodes fetch them back through this URL.
	p.SetSelfURL(url)

	entries, err := loadShardMap(*shardMap)
	if err != nil {
		log.Fatal(err)
	}
	if len(entries) > 0 {
		go registerShardMap(p, *shardMap, entries)
	}

	log.Printf("SkyQuery portal listening on %s (WSDL at %s?wsdl)", *addr, url)
	log.Printf("waiting for SkyNode registrations...")
	if err := http.ListenAndServe(*addr, logRegistrations(p)); err != nil {
		log.Fatal(err)
	}
}

// shardEntry is one parsed -shard-map line.
type shardEntry struct {
	line     int
	archive  string
	endpoint string
	info     portal.ShardInfo
}

// loadShardMap parses the -shard-map file ("" means no map).
func loadShardMap(path string) ([]shardEntry, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []shardEntry
	for i, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(raw)
		if cut := strings.IndexByte(line, '#'); cut >= 0 {
			line = strings.TrimSpace(line[:cut])
		}
		if line == "" {
			continue
		}
		e, err := parseShardEntry(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, i+1, err)
		}
		e.line = i + 1
		entries = append(entries, e)
	}
	return entries, nil
}

// parseShardEntry parses "archive INDEX:COUNT LEVEL LO-HI endpoint
// [follower]".
func parseShardEntry(line string) (shardEntry, error) {
	f := strings.Fields(line)
	if len(f) != 5 && len(f) != 6 {
		return shardEntry{}, fmt.Errorf("want: archive INDEX:COUNT LEVEL LO-HI endpoint [follower], got %d field(s)", len(f))
	}
	e := shardEntry{archive: f[0], endpoint: f[4]}
	idx, cnt, ok := strings.Cut(f[1], ":")
	if !ok {
		return shardEntry{}, fmt.Errorf("bad shard %q, want INDEX:COUNT", f[1])
	}
	var err error
	if e.info.Index, err = strconv.Atoi(idx); err != nil {
		return shardEntry{}, fmt.Errorf("bad shard index %q: %v", idx, err)
	}
	if e.info.Count, err = strconv.Atoi(cnt); err != nil {
		return shardEntry{}, fmt.Errorf("bad shard count %q: %v", cnt, err)
	}
	if e.info.Level, err = strconv.Atoi(f[2]); err != nil {
		return shardEntry{}, fmt.Errorf("bad level %q: %v", f[2], err)
	}
	lo, hi, ok := strings.Cut(f[3], "-")
	if !ok {
		return shardEntry{}, fmt.Errorf("bad range %q, want LO-HI", f[3])
	}
	if e.info.Lo, err = strconv.ParseUint(lo, 10, 64); err != nil {
		return shardEntry{}, fmt.Errorf("bad range low %q: %v", lo, err)
	}
	if e.info.Hi, err = strconv.ParseUint(hi, 10, 64); err != nil {
		return shardEntry{}, fmt.Errorf("bad range high %q: %v", hi, err)
	}
	if len(f) == 6 {
		if f[5] != "follower" {
			return shardEntry{}, fmt.Errorf("bad trailing field %q, want \"follower\"", f[5])
		}
		e.info.Follower = true
	}
	return e, nil
}

// registerShardMap drives every static entry to registration, retrying
// entries whose node is not yet serving (registration probes the node's
// Information and Metadata services).
func registerShardMap(p *portal.Portal, path string, entries []shardEntry) {
	const (
		retryEvery = time.Second
		maxWait    = 2 * time.Minute
	)
	deadline := time.Now().Add(maxWait)
	pending := entries
	for len(pending) > 0 {
		var failed []shardEntry
		for _, e := range pending {
			if err := p.RegisterShard(e.archive, e.endpoint, e.info); err != nil {
				if time.Now().After(deadline) {
					log.Fatalf("shard map %s:%d: giving up after %s: %v", path, e.line, maxWait, err)
				}
				failed = append(failed, e)
				continue
			}
			log.Printf("shard map: registered %s shard %d/%d at %s", e.archive, e.info.Index, e.info.Count, e.endpoint)
		}
		pending = failed
		if len(pending) > 0 {
			time.Sleep(retryEvery)
		}
	}
	log.Printf("shard map %s fully registered (%d entr%s)", path, len(entries), plural(len(entries), "y", "ies"))
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// logRegistrations wraps the portal handler to log federation growth.
func logRegistrations(p *portal.Portal) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		before := p.Registry().Len()
		p.Server().ServeHTTP(w, r)
		if after := p.Registry().Len(); after != before {
			log.Printf("federation now has %d member(s): %v", after, p.Archives())
		}
	})
}
