// Command skyquery-portal runs a SkyQuery Portal: the federation mediator
// serving the Registration and SkyQuery SOAP services (§5.1).
//
// SkyNodes join by calling the Registration service (see skyquery-node's
// -portal flag); clients submit cross-match queries with the skyquery CLI
// or any SOAP client.
//
//	skyquery-portal -addr :8080
package main

import (
	"flag"
	"log"
	"net/http"

	"skyquery/internal/portal"
	"skyquery/internal/soap"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	publicURL := flag.String("url", "", "public URL for the WSDL (defaults to http://<addr>)")
	chunkRows := flag.Int("chunk-rows", 5000, "rows per SOAP message for large results")
	matchCols := flag.Bool("match-columns", false, "append _matchRA/_matchDec/_logLikelihood/_nObs to results")
	parallelism := flag.Int("parallelism", 0, "chain-step worker hint written into plans (0 = node default, 1 = sequential)")
	codec := flag.String("codec", "", "wire codec for node calls and client responses: binary (negotiated, default) or xml")
	planCache := flag.Int("plan-cache", 0, "compiled-plan cache entries per generation (0 = 256 default, negative = disabled)")
	retryOverloaded := flag.Int("retry-overloaded", 4, "retries with doubling backoff when a node sheds a query as overloaded")
	countProbeOrder := flag.Bool("count-probe-order", false, "order chains by the count-star rule alone, ignoring node column statistics")
	adaptiveReorder := flag.Bool("adaptive-reorder", false, "let chain nodes re-order the downstream suffix when live estimates diverge from the plan")
	verbose := flag.Bool("v", false, "log query trace events")
	flag.Parse()

	portalCodec, ok := soap.ParseCodec(*codec)
	if !ok {
		log.Fatalf("bad -codec %q, want binary or xml", *codec)
	}
	cfg := portal.Config{
		ChunkRows:           *chunkRows,
		IncludeMatchColumns: *matchCols,
		Parallelism:         *parallelism,
		PlanCacheSize:       *planCache,
		CountProbeOrder:     *countProbeOrder,
		AdaptiveReorder:     *adaptiveReorder,
		Codec:               portalCodec,
		Client:              &soap.Client{Codec: portalCodec, MaxRetries: *retryOverloaded},
	}
	if *verbose {
		cfg.OnEvent = func(e portal.Event) { log.Printf("[%s] %s", e.Kind, e.Detail) }
	}
	p := portal.New(cfg)

	url := *publicURL
	if url == "" {
		url = "http://" + *addr
	}
	if err := p.SetWSDL(url); err != nil {
		log.Fatal(err)
	}

	log.Printf("SkyQuery portal listening on %s (WSDL at %s?wsdl)", *addr, url)
	log.Printf("waiting for SkyNode registrations...")
	if err := http.ListenAndServe(*addr, logRegistrations(p)); err != nil {
		log.Fatal(err)
	}
}

// logRegistrations wraps the portal handler to log federation growth.
func logRegistrations(p *portal.Portal) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		before := p.Registry().Len()
		p.Server().ServeHTTP(w, r)
		if after := p.Registry().Len(); after != before {
			log.Printf("federation now has %d member(s): %v", after, p.Archives())
		}
	})
}
