// Command skyquery is the command-line client of a SkyQuery Portal: it
// submits a cross-match query (from arguments or stdin) through the SOAP
// SkyQuery service and prints the result as a table.
//
//	skyquery -portal http://localhost:8080 \
//	  "SELECT O.object_id, T.object_id
//	   FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
//	   WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T) < 3.5"
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"skyquery/internal/client"
	"skyquery/internal/value"
)

func main() {
	portalURL := flag.String("portal", "http://localhost:8080", "portal SOAP endpoint")
	maxRows := flag.Int("max-rows", 0, "print at most this many rows (0 = all)")
	flag.Parse()

	sql := strings.TrimSpace(strings.Join(flag.Args(), " "))
	if sql == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		sql = strings.TrimSpace(string(data))
	}
	if sql == "" {
		fmt.Fprintln(os.Stderr, "usage: skyquery -portal URL \"SELECT ...\" (or pipe the query on stdin)")
		os.Exit(2)
	}

	c := client.New(*portalURL)
	res, err := c.Query(context.Background(), sql)
	if err != nil {
		log.Fatalf("query failed: %v", err)
	}

	// Column widths from header + data.
	widths := make([]int, len(res.Columns))
	header := make([]string, len(res.Columns))
	for i, col := range res.Columns {
		header[i] = col.Name
		widths[i] = len(col.Name)
	}
	cells := make([][]string, 0, res.NumRows())
	for ri, row := range res.Rows {
		if *maxRows > 0 && ri >= *maxRows {
			break
		}
		line := make([]string, len(row))
		for i, v := range row {
			line[i] = render(v)
			if len(line[i]) > widths[i] {
				widths[i] = len(line[i])
			}
		}
		cells = append(cells, line)
	}

	printRow(header, widths)
	sep := make([]string, len(widths))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	printRow(sep, widths)
	for _, line := range cells {
		printRow(line, widths)
	}
	if *maxRows > 0 && res.NumRows() > *maxRows {
		fmt.Printf("... (%d more rows)\n", res.NumRows()-*maxRows)
	}
	fmt.Fprintf(os.Stderr, "%d row(s)\n", res.NumRows())
}

func render(v value.Value) string {
	if v.IsNull() {
		return "NULL"
	}
	if v.Type() == value.StringType {
		return v.AsString()
	}
	if f, ok := v.AsFloat(); ok && v.Type() == value.FloatType {
		return fmt.Sprintf("%.6g", f)
	}
	return fmt.Sprintf("%v", v)
}

func printRow(cells []string, widths []int) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = fmt.Sprintf("%-*s", widths[i], c)
	}
	fmt.Println(strings.Join(parts, "  "))
}
