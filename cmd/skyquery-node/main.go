// Command skyquery-node runs one SkyNode: a synthetic sky-survey archive
// wrapped behind the four SkyQuery web services (Information, Metadata,
// Query, CrossMatch). With -portal it registers itself with a running
// Portal on startup, completing the Figure 1 topology.
//
//	skyquery-node -name SDSS -sigma 0.1 -completeness 0.95 \
//	    -addr :8081 -url http://localhost:8081 -portal http://localhost:8080
//
// With -data the archive lives in a disk-backed store instead of RAM:
// the first run generates the survey and persists it; later runs (and
// runs after a crash — the WAL tail is replayed, torn records truncated)
// recover the same rows from disk and skip generation.
//
//	skyquery-node -name SDSS -data /var/lib/skyquery/sdss
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"

	"skyquery/internal/client"
	"skyquery/internal/skynode"
	"skyquery/internal/soap"
	"skyquery/internal/sphere"
	"skyquery/internal/storage"
	"skyquery/internal/survey"
	"skyquery/internal/value"
)

func main() {
	name := flag.String("name", "SDSS", "archive name")
	sigma := flag.Float64("sigma", 0.1, "positional error in arc seconds")
	completeness := flag.Float64("completeness", 0.9, "detection probability per body")
	extra := flag.Float64("extra", 0, "spurious detections per true body")
	fluxOffset := flag.Float64("flux-offset", 0, "flux offset of this band")
	bodies := flag.Int("bodies", 5000, "true bodies in the field")
	region := flag.String("region", "185.0,-0.5,0.25", "field as ra,dec,radiusDeg")
	seed := flag.Int64("seed", 1, "field seed (share across nodes for overlapping surveys)")
	nodeSeed := flag.Int64("node-seed", 0, "observation seed (defaults to a hash of -name)")
	parallelism := flag.Int("parallelism", 0, "chain-step worker pool size (0 = plan hint, then GOMAXPROCS; 1 = sequential)")
	dataDir := flag.String("data", "", "store directory for a disk-backed archive (empty = in-memory; first run generates and persists, later runs recover)")
	hotBlocks := flag.Int("hot-blocks", 0, "sealed 1024-row blocks kept resident per table (0 = default 16); only with -data")
	fsync := flag.Bool("fsync", false, "fsync the write-ahead log on every append; only with -data")
	callTimeout := flag.Duration("call-timeout", 0, "HTTP deadline for daisy-chain calls to other nodes (0 = 2m default, negative = none)")
	codec := flag.String("codec", "", "response wire codec: binary (negotiated, default) or xml")
	maxConcurrent := flag.Int("max-concurrent", 0, "admission gate: concurrent step executions (0 = unlimited)")
	memoryBudget := flag.Int64("memory-budget", 0, "admission gate: estimated bytes of step input in flight (0 = 256 MiB default, negative = unbounded); needs -max-concurrent")
	admitQueue := flag.Int("admit-queue", 0, "admission gate: waiting steps before shedding (0 = 4x max-concurrent, negative = none)")
	admitTimeout := flag.Duration("admit-timeout", 0, "admission gate: queue wait before shedding (0 = 5s default)")
	addr := flag.String("addr", ":8081", "listen address")
	publicURL := flag.String("url", "", "public URL for WSDL and registration (defaults to http://<host>:<port>)")
	portalURL := flag.String("portal", "", "portal endpoint to register with on startup")
	verbose := flag.Bool("v", false, "log service trace events")
	flag.Parse()

	reg, err := parseRegion(*region)
	if err != nil {
		log.Fatal(err)
	}
	if *nodeSeed == 0 {
		*nodeSeed = int64(hash(*name))
	}
	surveyCfg := survey.Config{
		Name:         *name,
		SigmaArcsec:  *sigma,
		Completeness: *completeness,
		ExtraDensity: *extra,
		FluxOffset:   *fluxOffset,
		Seed:         *nodeSeed,
	}

	var db *storage.DB
	if *dataDir != "" {
		db, err = openDataDir(*dataDir, storage.StoreOptions{HotBlocks: *hotBlocks, Fsync: *fsync},
			reg, *bodies, *seed, surveyCfg)
	} else {
		log.Printf("generating field: %d bodies in %s", *bodies, reg)
		field := survey.GenerateField(reg, *bodies, 0.4, *seed)
		arch := survey.Observe(field, surveyCfg)
		db, err = arch.BuildDB()
		if err == nil {
			log.Printf("%s", arch)
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	nodeCodec, ok := soap.ParseCodec(*codec)
	if !ok {
		log.Fatalf("bad -codec %q, want binary or xml", *codec)
	}
	cfg := skynode.Config{
		Name: *name, DB: db, PrimaryTable: survey.TableName,
		RACol: "ra", DecCol: "dec", SigmaArcsec: *sigma,
		Parallelism: *parallelism,
		Client:      &soap.Client{Timeout: *callTimeout, Codec: nodeCodec},
		Codec:       nodeCodec,
		Admission: skynode.Admission{
			MaxConcurrent: *maxConcurrent,
			MemoryBudget:  *memoryBudget,
			MaxQueue:      *admitQueue,
			QueueTimeout:  *admitTimeout,
		},
	}
	if *verbose {
		cfg.OnEvent = func(e skynode.Event) { log.Printf("[%s] %s", e.Kind, e.Detail) }
	}
	node, err := skynode.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	url := *publicURL
	if url == "" {
		host := *addr
		if strings.HasPrefix(host, ":") {
			host = "localhost" + host
		}
		url = "http://" + host
	}
	if err := node.SetWSDL(url); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		log.Printf("SkyNode %s listening on %s (WSDL at %s?wsdl)", *name, *addr, url)
		if err := http.Serve(ln, node.Server()); err != nil {
			log.Fatal(err)
		}
	}()

	if *portalURL != "" {
		c := client.New(*portalURL)
		if err := c.Register(*name, url); err != nil {
			log.Fatalf("registration with %s failed: %v", *portalURL, err)
		}
		log.Printf("registered with portal %s", *portalURL)
	}
	select {} // serve forever
}

// openDataDir opens (recovering if needed) a disk-backed archive. A store
// that already holds the survey table serves it as recovered; an empty
// store gets the survey generated and persisted on this first run.
func openDataDir(dir string, opts storage.StoreOptions, reg sphere.Cap, bodies int, fieldSeed int64, cfg survey.Config) (*storage.DB, error) {
	st, err := storage.OpenStore(dir, opts)
	if err != nil {
		return nil, err
	}
	for _, r := range st.Recovery() {
		torn := ""
		if r.Torn {
			torn = fmt.Sprintf(", truncated a torn WAL tail (%d bytes)", r.TornBytes)
		}
		log.Printf("recovered %s: %d durable rows, %d replayed from the WAL%s",
			r.Table, r.DurableRows, r.ReplayedRows, torn)
	}
	if tbl, ok := st.DB().Table(survey.TableName); ok {
		log.Printf("serving %d rows of %s from %s", tbl.RowCount(), survey.TableName, dir)
		return st.DB(), nil
	}

	log.Printf("empty store: generating field (%d bodies in %s) and persisting to %s", bodies, reg, dir)
	field := survey.GenerateField(reg, bodies, 0.4, fieldSeed)
	arch := survey.Observe(field, cfg)
	tbl, err := st.Create(survey.TableName, survey.Schema(),
		&storage.SpatialConfig{RACol: "ra", DecCol: "dec", Level: cfg.SpatialLevel})
	if err != nil {
		return nil, err
	}
	for _, o := range arch.Obs {
		ra, dec := o.Pos.RaDec()
		typ := "STAR"
		if o.Galaxy {
			typ = "GALAXY"
		}
		err := tbl.Append(
			value.Int(o.ObjectID), value.Int(o.BodyID),
			value.Float(ra), value.Float(dec), value.Float(o.Flux),
			value.String(typ), value.Null,
		)
		if err != nil {
			return nil, err
		}
	}
	if err := st.Flush(); err != nil {
		return nil, err
	}
	log.Printf("%s", arch)
	return st.DB(), nil
}

// parseRegion parses "ra,dec,radiusDeg".
func parseRegion(s string) (sphere.Cap, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return sphere.Cap{}, fmt.Errorf("bad -region %q, want ra,dec,radiusDeg", s)
	}
	var vals [3]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return sphere.Cap{}, fmt.Errorf("bad -region %q: %v", s, err)
		}
		vals[i] = f
	}
	if vals[2] <= 0 {
		return sphere.Cap{}, fmt.Errorf("bad -region %q: radius must be positive", s)
	}
	return sphere.NewCap(vals[0], vals[1], vals[2]), nil
}

func hash(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
