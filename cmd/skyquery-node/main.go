// Command skyquery-node runs one SkyNode: a synthetic sky-survey archive
// wrapped behind the four SkyQuery web services (Information, Metadata,
// Query, CrossMatch). With -portal it registers itself with a running
// Portal on startup, completing the Figure 1 topology.
//
//	skyquery-node -name SDSS -sigma 0.1 -completeness 0.95 \
//	    -addr :8081 -url http://localhost:8081 -portal http://localhost:8080
//
// With -data the archive lives in a disk-backed store instead of RAM:
// the first run generates the survey and persists it; later runs (and
// runs after a crash — the WAL tail is replayed, torn records truncated)
// recover the same rows from disk and skip generation.
//
//	skyquery-node -name SDSS -data /var/lib/skyquery/sdss
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"

	"skyquery/internal/client"
	"skyquery/internal/portal"
	"skyquery/internal/skynode"
	"skyquery/internal/soap"
	"skyquery/internal/sphere"
	"skyquery/internal/storage"
	"skyquery/internal/survey"
	"skyquery/internal/value"
)

func main() {
	name := flag.String("name", "SDSS", "archive name")
	sigma := flag.Float64("sigma", 0.1, "positional error in arc seconds")
	completeness := flag.Float64("completeness", 0.9, "detection probability per body")
	extra := flag.Float64("extra", 0, "spurious detections per true body")
	fluxOffset := flag.Float64("flux-offset", 0, "flux offset of this band")
	bodies := flag.Int("bodies", 5000, "true bodies in the field")
	region := flag.String("region", "185.0,-0.5,0.25", "field as ra,dec,radiusDeg")
	seed := flag.Int64("seed", 1, "field seed (share across nodes for overlapping surveys)")
	nodeSeed := flag.Int64("node-seed", 0, "observation seed (defaults to a hash of -name)")
	parallelism := flag.Int("parallelism", 0, "chain-step worker pool size (0 = plan hint, then GOMAXPROCS; 1 = sequential)")
	dataDir := flag.String("data", "", "store directory for a disk-backed archive (empty = in-memory; first run generates and persists, later runs recover)")
	hotBlocks := flag.Int("hot-blocks", 0, "sealed 1024-row blocks kept resident per table (0 = default 16); only with -data")
	fsync := flag.Bool("fsync", false, "fsync the write-ahead log on every append; only with -data")
	callTimeout := flag.Duration("call-timeout", 0, "HTTP deadline for daisy-chain calls to other nodes (0 = 2m default, negative = none)")
	codec := flag.String("codec", "", "response wire codec: binary (negotiated, default) or xml")
	maxConcurrent := flag.Int("max-concurrent", 0, "admission gate: concurrent step executions (0 = unlimited)")
	memoryBudget := flag.Int64("memory-budget", 0, "admission gate: estimated bytes of step input in flight (0 = 256 MiB default, negative = unbounded); needs -max-concurrent")
	admitQueue := flag.Int("admit-queue", 0, "admission gate: waiting steps before shedding (0 = 4x max-concurrent, negative = none)")
	admitTimeout := flag.Duration("admit-timeout", 0, "admission gate: queue wait before shedding (0 = 5s default)")
	shardSpec := flag.String("shard", "", "serve one trixel-range shard of the archive, as INDEX:COUNT (e.g. 0:8); every process of the archive must share -region/-bodies/-seed/-node-seed so the deterministic partition agrees")
	shardRange := flag.String("shard-range", "", "override the shard's trixel range as LO-HI at the survey's HTM level (advanced; the ranges of all shards must still tile the level)")
	replicaOf := flag.String("replica-of", "", "leader endpoint this node is a read-replica follower of; registers with the follower bit set (requires -shard)")
	addr := flag.String("addr", ":8081", "listen address")
	publicURL := flag.String("url", "", "public URL for WSDL and registration (defaults to http://<host>:<port>)")
	portalURL := flag.String("portal", "", "portal endpoint to register with on startup")
	verbose := flag.Bool("v", false, "log service trace events")
	flag.Parse()

	reg, err := parseRegion(*region)
	if err != nil {
		log.Fatal(err)
	}
	shard, err := parseShard(*shardSpec, *shardRange)
	if err != nil {
		log.Fatal(err)
	}
	if *replicaOf != "" && shard == nil {
		log.Fatal("-replica-of requires -shard: a follower replicates one shard")
	}
	if *nodeSeed == 0 {
		*nodeSeed = int64(hash(*name))
	}
	surveyCfg := survey.Config{
		Name:         *name,
		SigmaArcsec:  *sigma,
		Completeness: *completeness,
		ExtraDensity: *extra,
		FluxOffset:   *fluxOffset,
		Seed:         *nodeSeed,
	}

	// generate observes the survey and, when sharded, keeps only this
	// process's trixel-range partition. Every shard process regenerates
	// the same field (deterministic in the shared seeds), so the ranges
	// the partition cuts agree across the fleet without coordination.
	generate := func() (*survey.Archive, error) {
		log.Printf("generating field: %d bodies in %s", *bodies, reg)
		field := survey.GenerateField(reg, *bodies, 0.4, *seed)
		arch := survey.Observe(field, surveyCfg)
		if shard == nil {
			return arch, nil
		}
		parts := arch.Partition(shard.count)
		part := parts[shard.index]
		if !shard.hasRange {
			shard.lo, shard.hi = part.Lo, part.Hi
		}
		shard.level = arch.SpatialLevel()
		log.Printf("shard %d/%d: trixel range %d-%d, %d of %d observations",
			shard.index, shard.count, shard.lo, shard.hi, len(part.Archive.Obs), len(arch.Obs))
		return part.Archive, nil
	}

	var db *storage.DB
	if *dataDir != "" {
		db, err = openDataDir(*dataDir, storage.StoreOptions{HotBlocks: *hotBlocks, Fsync: *fsync}, generate)
		if err == nil && shard != nil && shard.level == 0 {
			// Recovered from disk without generating: the registration
			// range is still derived from the deterministic partition.
			_, err = generate()
		}
	} else {
		var arch *survey.Archive
		arch, err = generate()
		if err == nil {
			db, err = arch.BuildDB()
		}
		if err == nil {
			log.Printf("%s", arch)
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	nodeCodec, ok := soap.ParseCodec(*codec)
	if !ok {
		log.Fatalf("bad -codec %q, want binary or xml", *codec)
	}
	cfg := skynode.Config{
		Name: *name, DB: db, PrimaryTable: survey.TableName,
		RACol: "ra", DecCol: "dec", SigmaArcsec: *sigma,
		Parallelism: *parallelism,
		Client:      &soap.Client{Timeout: *callTimeout, Codec: nodeCodec},
		Codec:       nodeCodec,
		Admission: skynode.Admission{
			MaxConcurrent: *maxConcurrent,
			MemoryBudget:  *memoryBudget,
			MaxQueue:      *admitQueue,
			QueueTimeout:  *admitTimeout,
		},
	}
	if *verbose {
		cfg.OnEvent = func(e skynode.Event) { log.Printf("[%s] %s", e.Kind, e.Detail) }
	}
	node, err := skynode.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	url := *publicURL
	if url == "" {
		host := *addr
		if strings.HasPrefix(host, ":") {
			host = "localhost" + host
		}
		url = "http://" + host
	}
	if err := node.SetWSDL(url); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		log.Printf("SkyNode %s listening on %s (WSDL at %s?wsdl)", *name, *addr, url)
		if err := http.Serve(ln, node.Server()); err != nil {
			log.Fatal(err)
		}
	}()

	if *portalURL != "" {
		c := client.New(*portalURL)
		if shard != nil {
			si := portal.ShardInfo{
				Index: shard.index, Count: shard.count, Level: shard.level,
				Lo: shard.lo, Hi: shard.hi, Follower: *replicaOf != "",
			}
			if err := c.RegisterShard(context.Background(), *name, url, si); err != nil {
				log.Fatalf("shard registration with %s failed: %v", *portalURL, err)
			}
			role := "leader"
			if si.Follower {
				role = fmt.Sprintf("follower of %s", *replicaOf)
			}
			log.Printf("registered shard %d/%d (%s) with portal %s", shard.index, shard.count, role, *portalURL)
		} else {
			if err := c.Register(context.Background(), *name, url); err != nil {
				log.Fatalf("registration with %s failed: %v", *portalURL, err)
			}
			log.Printf("registered with portal %s", *portalURL)
		}
	}
	select {} // serve forever
}

// openDataDir opens (recovering if needed) a disk-backed archive. A store
// that already holds the survey table serves it as recovered; an empty
// store gets the survey generated and persisted on this first run.
func openDataDir(dir string, opts storage.StoreOptions, generate func() (*survey.Archive, error)) (*storage.DB, error) {
	st, err := storage.OpenStore(dir, opts)
	if err != nil {
		return nil, err
	}
	for _, r := range st.Recovery() {
		torn := ""
		if r.Torn {
			torn = fmt.Sprintf(", truncated a torn WAL tail (%d bytes)", r.TornBytes)
		}
		log.Printf("recovered %s: %d durable rows, %d replayed from the WAL%s",
			r.Table, r.DurableRows, r.ReplayedRows, torn)
	}
	if tbl, ok := st.DB().Table(survey.TableName); ok {
		log.Printf("serving %d rows of %s from %s", tbl.RowCount(), survey.TableName, dir)
		return st.DB(), nil
	}

	log.Printf("empty store: generating the survey and persisting to %s", dir)
	arch, err := generate()
	if err != nil {
		return nil, err
	}
	tbl, err := st.Create(survey.TableName, survey.Schema(),
		&storage.SpatialConfig{RACol: "ra", DecCol: "dec", Level: arch.SpatialLevel()})
	if err != nil {
		return nil, err
	}
	// Canonical trixel order, exactly as BuildDB loads an in-memory
	// archive — the on-disk shard serves the same row order as its
	// in-memory twin, so shard layout never changes results.
	for _, o := range arch.SortedObs() {
		ra, dec := o.Pos.RaDec()
		typ := "STAR"
		if o.Galaxy {
			typ = "GALAXY"
		}
		err := tbl.Append(
			value.Int(o.ObjectID), value.Int(o.BodyID),
			value.Float(ra), value.Float(dec), value.Float(o.Flux),
			value.String(typ), value.Null,
		)
		if err != nil {
			return nil, err
		}
	}
	if err := st.Flush(); err != nil {
		return nil, err
	}
	log.Printf("%s", arch)
	return st.DB(), nil
}

// shardCfg is the parsed -shard/-shard-range configuration.
type shardCfg struct {
	index, count int
	lo, hi       uint64
	hasRange     bool
	level        int
}

// parseShard parses -shard "INDEX:COUNT" and the optional -shard-range
// "LO-HI" override.
func parseShard(spec, rng string) (*shardCfg, error) {
	if spec == "" {
		if rng != "" {
			return nil, fmt.Errorf("-shard-range requires -shard")
		}
		return nil, nil
	}
	idx, cnt, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("bad -shard %q, want INDEX:COUNT (e.g. 0:8)", spec)
	}
	sc := &shardCfg{}
	var err error
	if sc.index, err = strconv.Atoi(strings.TrimSpace(idx)); err != nil {
		return nil, fmt.Errorf("bad -shard %q: %v", spec, err)
	}
	if sc.count, err = strconv.Atoi(strings.TrimSpace(cnt)); err != nil {
		return nil, fmt.Errorf("bad -shard %q: %v", spec, err)
	}
	if sc.count < 1 || sc.index < 0 || sc.index >= sc.count {
		return nil, fmt.Errorf("bad -shard %q: want 0 <= INDEX < COUNT", spec)
	}
	if rng != "" {
		lo, hi, ok := strings.Cut(rng, "-")
		if !ok {
			return nil, fmt.Errorf("bad -shard-range %q, want LO-HI", rng)
		}
		if sc.lo, err = strconv.ParseUint(strings.TrimSpace(lo), 10, 64); err != nil {
			return nil, fmt.Errorf("bad -shard-range %q: %v", rng, err)
		}
		if sc.hi, err = strconv.ParseUint(strings.TrimSpace(hi), 10, 64); err != nil {
			return nil, fmt.Errorf("bad -shard-range %q: %v", rng, err)
		}
		if sc.hi < sc.lo {
			return nil, fmt.Errorf("bad -shard-range %q: HI < LO", rng)
		}
		sc.hasRange = true
	}
	return sc, nil
}

// parseRegion parses "ra,dec,radiusDeg".
func parseRegion(s string) (sphere.Cap, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return sphere.Cap{}, fmt.Errorf("bad -region %q, want ra,dec,radiusDeg", s)
	}
	var vals [3]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return sphere.Cap{}, fmt.Errorf("bad -region %q: %v", s, err)
		}
		vals[i] = f
	}
	if vals[2] <= 0 {
		return sphere.Cap{}, fmt.Errorf("bad -region %q: radius must be positive", s)
	}
	return sphere.NewCap(vals[0], vals[1], vals[2]), nil
}

func hash(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
