// Command skyquery-node runs one SkyNode: a synthetic sky-survey archive
// wrapped behind the four SkyQuery web services (Information, Metadata,
// Query, CrossMatch). With -portal it registers itself with a running
// Portal on startup, completing the Figure 1 topology.
//
//	skyquery-node -name SDSS -sigma 0.1 -completeness 0.95 \
//	    -addr :8081 -url http://localhost:8081 -portal http://localhost:8080
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"

	"skyquery/internal/client"
	"skyquery/internal/skynode"
	"skyquery/internal/sphere"
	"skyquery/internal/survey"
)

func main() {
	name := flag.String("name", "SDSS", "archive name")
	sigma := flag.Float64("sigma", 0.1, "positional error in arc seconds")
	completeness := flag.Float64("completeness", 0.9, "detection probability per body")
	extra := flag.Float64("extra", 0, "spurious detections per true body")
	fluxOffset := flag.Float64("flux-offset", 0, "flux offset of this band")
	bodies := flag.Int("bodies", 5000, "true bodies in the field")
	region := flag.String("region", "185.0,-0.5,0.25", "field as ra,dec,radiusDeg")
	seed := flag.Int64("seed", 1, "field seed (share across nodes for overlapping surveys)")
	nodeSeed := flag.Int64("node-seed", 0, "observation seed (defaults to a hash of -name)")
	parallelism := flag.Int("parallelism", 0, "chain-step worker pool size (0 = plan hint, then GOMAXPROCS; 1 = sequential)")
	addr := flag.String("addr", ":8081", "listen address")
	publicURL := flag.String("url", "", "public URL for WSDL and registration (defaults to http://<host>:<port>)")
	portalURL := flag.String("portal", "", "portal endpoint to register with on startup")
	verbose := flag.Bool("v", false, "log service trace events")
	flag.Parse()

	reg, err := parseRegion(*region)
	if err != nil {
		log.Fatal(err)
	}
	if *nodeSeed == 0 {
		*nodeSeed = int64(hash(*name))
	}

	log.Printf("generating field: %d bodies in %s", *bodies, reg)
	field := survey.GenerateField(reg, *bodies, 0.4, *seed)
	arch := survey.Observe(field, survey.Config{
		Name:         *name,
		SigmaArcsec:  *sigma,
		Completeness: *completeness,
		ExtraDensity: *extra,
		FluxOffset:   *fluxOffset,
		Seed:         *nodeSeed,
	})
	db, err := arch.BuildDB()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s", arch)

	cfg := skynode.Config{
		Name: *name, DB: db, PrimaryTable: survey.TableName,
		RACol: "ra", DecCol: "dec", SigmaArcsec: *sigma,
		Parallelism: *parallelism,
	}
	if *verbose {
		cfg.OnEvent = func(e skynode.Event) { log.Printf("[%s] %s", e.Kind, e.Detail) }
	}
	node, err := skynode.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	url := *publicURL
	if url == "" {
		host := *addr
		if strings.HasPrefix(host, ":") {
			host = "localhost" + host
		}
		url = "http://" + host
	}
	if err := node.SetWSDL(url); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		log.Printf("SkyNode %s listening on %s (WSDL at %s?wsdl)", *name, *addr, url)
		if err := http.Serve(ln, node.Server()); err != nil {
			log.Fatal(err)
		}
	}()

	if *portalURL != "" {
		c := client.New(*portalURL)
		if err := c.Register(*name, url); err != nil {
			log.Fatalf("registration with %s failed: %v", *portalURL, err)
		}
		log.Printf("registered with portal %s", *portalURL)
	}
	select {} // serve forever
}

// parseRegion parses "ra,dec,radiusDeg".
func parseRegion(s string) (sphere.Cap, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return sphere.Cap{}, fmt.Errorf("bad -region %q, want ra,dec,radiusDeg", s)
	}
	var vals [3]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return sphere.Cap{}, fmt.Errorf("bad -region %q: %v", s, err)
		}
		vals[i] = f
	}
	if vals[2] <= 0 {
		return sphere.Cap{}, fmt.Errorf("bad -region %q: radius must be positive", s)
	}
	return sphere.NewCap(vals[0], vals[1], vals[2]), nil
}

func hash(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
