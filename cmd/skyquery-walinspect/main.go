// Command skyquery-walinspect examines the on-disk state of a
// disk-backed table without opening (and therefore without recovering)
// it: the write-ahead log's record stream and torn-tail status, and the
// footer's durable commit point.
//
// It accepts a wal.log file, a table directory, or a whole store
// directory:
//
//	skyquery-walinspect data/PhotoObject/wal.log
//	skyquery-walinspect -v data/PhotoObject
//	skyquery-walinspect data
//
// With -v each valid WAL record is printed (capped by -max). The exit
// status is 0 even for a torn log — a torn tail is the expected
// signature of a crash mid-append, not a tool failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"skyquery/internal/storage"
)

func main() {
	verbose := flag.Bool("v", false, "dump each valid WAL record")
	max := flag.Int("max", 0, "with -v, stop after this many records per log (0 = all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: skyquery-walinspect [-v] [-max n] <wal.log | table-dir | store-dir>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)

	fi, err := os.Stat(path)
	if err != nil {
		fatal(err)
	}
	if !fi.IsDir() {
		if filepath.Base(path) == "footer" {
			if err := printFooter(path); err != nil {
				fatal(err)
			}
			return
		}
		if err := printWAL(path, *verbose, *max); err != nil {
			fatal(err)
		}
		return
	}

	dirs, err := tableDirs(path)
	if err != nil {
		fatal(err)
	}
	if len(dirs) == 0 {
		fatal(fmt.Errorf("%s: no table state found (no wal.log or footer here or one level down)", path))
	}
	for i, dir := range dirs {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== %s ==\n", dir)
		if err := inspectTableDir(dir, *verbose, *max); err != nil {
			fatal(err)
		}
	}
}

// tableDirs resolves the argument directory to table directories: itself
// if it holds table state, otherwise every immediate subdirectory that
// does (the store-directory layout).
func tableDirs(dir string) ([]string, error) {
	if hasTableState(dir) {
		return []string{dir}, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, e := range entries {
		if sub := filepath.Join(dir, e.Name()); e.IsDir() && hasTableState(sub) {
			dirs = append(dirs, sub)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasTableState(dir string) bool {
	for _, name := range []string{"wal.log", "footer"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return true
		}
	}
	return false
}

func inspectTableDir(dir string, verbose bool, max int) error {
	if err := printFooter(filepath.Join(dir, "footer")); err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		fmt.Println("footer: absent (no sealed blocks committed yet)")
	}
	if err := printWAL(filepath.Join(dir, "wal.log"), verbose, max); err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		fmt.Println("wal:    absent")
	}
	return nil
}

func printFooter(path string) error {
	info, err := storage.InspectFooter(path)
	if err != nil {
		return err
	}
	spatial := "none"
	if info.Spatial {
		spatial = fmt.Sprintf("HTM level %d", info.Level)
	}
	fmt.Printf("footer: table %q, %d durable rows in %d sealed blocks, %d columns (%s), spatial %s\n",
		info.Table, info.DurableRows, info.Blocks, len(info.Columns),
		strings.Join(info.Columns, ", "), spatial)
	return nil
}

func printWAL(path string, verbose bool, max int) error {
	var dump func(storage.WALRecord) bool
	if verbose {
		n := 0
		dump = func(r storage.WALRecord) bool {
			fmt.Printf("  rec %-6d row %-8d off %-8d %s\n", r.Index, r.Row, r.Offset, cellString(r))
			n++
			return max == 0 || n < max
		}
	}
	info, err := storage.InspectWAL(path, dump)
	if err != nil {
		return err
	}
	status := "clean"
	if info.Torn {
		status = fmt.Sprintf("TORN (%d trailing bytes would be truncated on recovery)",
			info.FileBytes-info.GoodBytes)
	}
	fmt.Printf("wal:    %d records from base row %d, %d/%d bytes valid, %s\n",
		info.Records, info.BaseRow, info.GoodBytes, info.FileBytes, status)
	return nil
}

func cellString(r storage.WALRecord) string {
	parts := make([]string, len(r.Cells))
	for i, c := range r.Cells {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "skyquery-walinspect: %v\n", err)
	os.Exit(1)
}
