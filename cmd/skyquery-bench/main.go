// Command skyquery-bench regenerates every table of EXPERIMENTS.md: the
// reproductions of the paper's Figures 1-3 and of its quantified claims
// (count-star ordering, chunking, HTM range search, SOAP overhead,
// chain-vs-pull, scaling, performance-query cost).
//
//	skyquery-bench            # run everything
//	skyquery-bench -run C1,C5 # run selected experiments
//
// With -load N the command instead runs a sustained-load drill: it
// launches an in-process federation with admission control enabled and
// holds N concurrent clients streaming query results off the Portal
// over the full SOAP path for -load-duration, reporting throughput,
// latency percentiles, how the admission gates behaved, and the peak
// heap across the whole in-process federation. Each client consumes
// rows through the streaming iterator without materializing results,
// so peak heap is O(pages in flight), not O(result) — pass
// -load-max-heap-mb to turn that bound into a hard failure (CI does).
//
//	skyquery-bench -load 256 -load-duration 10s -load-max-heap-mb 1024
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"skyquery"
	"skyquery/internal/experiments"
)

func main() {
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	load := flag.Int("load", 0, "run the sustained-load drill with this many concurrent clients instead of experiments")
	loadDuration := flag.Duration("load-duration", 10*time.Second, "how long the -load drill runs")
	loadCodec := flag.String("load-codec", "", "wire codec for the -load drill: binary (default) or xml")
	loadMaxHeapMB := flag.Int("load-max-heap-mb", 0, "fail the -load drill if peak heap exceeds this many MB (0 = report only)")
	flag.Parse()

	if *load > 0 {
		if err := runLoad(*load, *loadDuration, *loadCodec, *loadMaxHeapMB); err != nil {
			log.Fatal(err)
		}
		return
	}

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Println(e.ID)
		}
		return
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		if id != "" {
			want[id] = true
		}
	}

	failed := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		table, err := e.Run()
		if err != nil {
			log.Printf("%s FAILED: %v", e.ID, err)
			failed++
			continue
		}
		fmt.Println(table)
		fmt.Printf("(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runLoad is the sustained-load drill: clients concurrent SOAP clients
// hammer one federated query for d, against nodes whose admission gates
// queue and shed under pressure while the clients ride the sheds out
// with retries. Every client drains its result row by row off the
// streaming iterator, never materializing it, so the whole federation's
// peak heap must stay O(pages in flight). Zero failures is the pass
// condition — every query must either complete or be retried to
// completion — and maxHeapMB > 0 additionally fails the drill when the
// sampled peak heap exceeds the bound.
func runLoad(clients int, d time.Duration, codecName string, maxHeapMB int) error {
	codec, ok := skyquery.ParseCodec(codecName)
	if !ok {
		return fmt.Errorf("bad -load-codec %q, want binary or xml", codecName)
	}
	f, err := skyquery.Launch(skyquery.Options{
		Bodies: 2000,
		Codec:  codec,
		Admission: skyquery.Admission{
			MaxConcurrent: 8,
			MaxQueue:      4 * clients,
			QueueTimeout:  30 * time.Second,
		},
	})
	if err != nil {
		return err
	}
	defer f.Close()

	region := skyquery.NewCap(185, -0.5, 0.25)
	ra, dec := region.Center.RaDec()
	sql := fmt.Sprintf(`SELECT O.object_id, T.object_id
		FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
		WHERE AREA(%g, %g, %g) AND XMATCH(O, T) < 3.0`,
		ra, dec, skyquery.ToArcsec(region.Radius))

	log.Printf("load drill: %d clients for %s (codec %s)", clients, d, codec)
	var (
		mu        sync.Mutex
		latencies []time.Duration
		failures  int
		rows      int64
	)

	// Sample HeapAlloc over the drill: the streamed consumption below
	// holds it near O(clients x page), never O(clients x result).
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	stopSampler := make(chan struct{})
	peakCh := make(chan uint64, 1)
	go func() {
		var m runtime.MemStats
		var peak uint64
		for {
			select {
			case <-stopSampler:
				peakCh <- peak
				return
			default:
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > peak {
					peak = m.HeapAlloc
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()

	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := f.Client()
			for time.Now().Before(deadline) {
				start := time.Now()
				n, err := drainStreamed(c, sql)
				lat := time.Since(start)
				mu.Lock()
				latencies = append(latencies, lat)
				if err != nil {
					failures++
				} else {
					rows += n
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(stopSampler)
	peakHeap := <-peakCh

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	completed := len(latencies) - failures
	fmt.Printf("completed: %d queries, %d failures, %d result rows\n", completed, failures, rows)
	fmt.Printf("throughput: %.1f qps\n", float64(completed)/d.Seconds())
	fmt.Printf("latency: p50=%s p90=%s p99=%s max=%s\n",
		pct(0.50).Round(time.Millisecond), pct(0.90).Round(time.Millisecond),
		pct(0.99).Round(time.Millisecond), pct(1.0).Round(time.Millisecond))
	for name, n := range f.Nodes {
		s := n.AdmissionStats()
		fmt.Printf("node %s admission: admitted=%d queued=%d shed=%d\n", name, s.Admitted, s.Queued, s.Shed)
	}
	hits := f.Portal.PlanCacheStats()
	fmt.Printf("portal plan cache: hits=%d misses=%d\n", hits.Hits, hits.Misses)
	fmt.Printf("peak heap: %d MB (baseline %d MB)\n", peakHeap>>20, base.HeapAlloc>>20)
	if failures > 0 {
		return fmt.Errorf("load drill: %d queries failed", failures)
	}
	if maxHeapMB > 0 && peakHeap > uint64(maxHeapMB)<<20 {
		return fmt.Errorf("load drill: peak heap %d MB exceeds the %d MB bound — streamed consumption is buffering somewhere",
			peakHeap>>20, maxHeapMB)
	}
	return nil
}

// drainStreamed consumes one query's result row by row off the
// streaming iterator, returning the row count without ever holding the
// result set.
func drainStreamed(c *skyquery.Client, sql string) (int64, error) {
	rows, err := c.QueryRows(context.Background(), sql)
	if err != nil {
		return 0, err
	}
	defer rows.Close()
	var n int64
	for rows.Next() {
		n++
	}
	return n, rows.Err()
}
