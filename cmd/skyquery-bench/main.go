// Command skyquery-bench regenerates every table of EXPERIMENTS.md: the
// reproductions of the paper's Figures 1-3 and of its quantified claims
// (count-star ordering, chunking, HTM range search, SOAP overhead,
// chain-vs-pull, scaling, performance-query cost).
//
//	skyquery-bench            # run everything
//	skyquery-bench -run C1,C5 # run selected experiments
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"skyquery/internal/experiments"
)

func main() {
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Println(e.ID)
		}
		return
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		if id != "" {
			want[id] = true
		}
	}

	failed := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		table, err := e.Run()
		if err != nil {
			log.Printf("%s FAILED: %v", e.ID, err)
			failed++
			continue
		}
		fmt.Println(table)
		fmt.Printf("(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
