package skyquery

// The typed errors a federation surfaces, re-exported at the root so
// callers never import internal packages to inspect a failure:
//
//   - *ParseError: the query was rejected before any plan was built,
//     with the line/column of the offending token and a syntax-vs-
//     semantic category.
//   - *ErrOverloaded: a node's admission gate shed the work; retryable,
//     and the SOAP clients already retry it with doubling backoff.
//   - *StreamError: the federation failed after the result stream
//     started; the error travelled in-band so the result is known
//     truncated, never silently short.

import (
	"errors"

	"skyquery/internal/dataset"
	"skyquery/internal/skynode"
	"skyquery/internal/soap"
	"skyquery/internal/sqlparse"
)

// ParseError reports a rejected query with the 1-based line and column
// of the offending token and a Category of ErrSyntax or ErrSemantic.
type ParseError = sqlparse.ParseError

// ParseError categories.
const (
	ErrSyntax   = sqlparse.ErrSyntax
	ErrSemantic = sqlparse.ErrSemantic
)

// ErrOverloaded is the typed, retryable error an admission gate returns
// when it sheds work.
type ErrOverloaded = skynode.ErrOverloaded

// StreamError is the typed error a result stream surfaces when the
// federation fails after streaming began.
type StreamError = dataset.StreamError

// IsOverloaded reports whether err is a retryable overload shed — either
// a node-local *ErrOverloaded or its SOAP fault form seen by a client.
func IsOverloaded(err error) bool {
	var over *ErrOverloaded
	return soap.IsOverloaded(err) || errors.As(err, &over)
}

// AsParseError unwraps a *ParseError from err, if one is there.
func AsParseError(err error) (*ParseError, bool) {
	var pe *ParseError
	return pe, errors.As(err, &pe)
}

// AsStreamError unwraps a *StreamError from err, if one is there.
func AsStreamError(err error) (*StreamError, bool) {
	var se *StreamError
	return se, errors.As(err, &se)
}
