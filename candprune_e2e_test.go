package skyquery

// End-to-end candidate-pruning assertions: on a federation whose archives
// span several zone blocks (ZoneBlockRows = 1024 rows each), a cross-match
// whose seed predicate is provably never TRUE must be answered below the
// HTM search — zero candidate rows gathered anywhere in the chain, blocks
// pruned — and a partially prunable cross-match must return bit-identical
// results with pruning on and off, at every combination of chain
// parallelism {1, 4} and scan batch size {1, 3, 1024}. (The golden corpus
// query 12 pins the same predicate shape's correctness on the standard
// 400-body federation; this test pins that the work was never done on a
// federation big enough to prune.)

import (
	"testing"

	"skyquery/internal/eval"
	"skyquery/internal/skynode"
	"skyquery/internal/storage"
)

const candPruneZeroQuery = `
	SELECT O.object_id, T.object_id
	FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
	WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T) < 3.5
	AND O.object_id < 1 AND T.object_id < 1`

const candPrunePartialQuery = `
	SELECT O.object_id, T.object_id, O.flux
	FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
	WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T) < 3.5
	AND O.object_id <= 1100 AND T.flux > 0.5`

func TestCandPruningEndToEnd(t *testing.T) {
	defer eval.SetBatchSize(eval.DefaultBatchSize)
	defer skynode.SetCandPrune(true)
	for _, par := range []int{1, 4} {
		f := launch(t, Options{Bodies: 3000, Parallelism: par})
		for _, bs := range []int{1, 3, eval.DefaultBatchSize} {
			eval.SetBatchSize(bs)

			// Never-TRUE local predicates at both archives: object_id
			// starts at 1, so every block's minimum refutes object_id < 1
			// and the whole pipeline must run without gathering a single
			// candidate row — count probes, seed, and extend steps
			// included.
			rowsBefore := storage.CandRowsGathered()
			blocksBefore := storage.CandBlocksPruned()
			res, err := f.Query(candPruneZeroQuery)
			if err != nil {
				t.Fatalf("zero query (par %d, batch %d): %v", par, bs, err)
			}
			if res.NumRows() != 0 {
				t.Fatalf("zero query (par %d, batch %d): %d rows, want 0", par, bs, res.NumRows())
			}
			if d := storage.CandRowsGathered() - rowsBefore; d != 0 {
				t.Errorf("zero query (par %d, batch %d): gathered %d candidate rows, want 0 (pruned blocks must never be gathered)", par, bs, d)
			}
			if storage.CandBlocksPruned() == blocksBefore {
				t.Errorf("zero query (par %d, batch %d): no candidate blocks pruned", par, bs)
			}

			// The partially prunable chain: pruning on and off must agree
			// bit-for-bit, and pruning must have cut the gathered rows.
			prunedRows0 := storage.CandRowsGathered()
			pruned, err := f.Query(candPrunePartialQuery)
			if err != nil {
				t.Fatalf("partial query (par %d, batch %d): %v", par, bs, err)
			}
			prunedDelta := storage.CandRowsGathered() - prunedRows0
			skynode.SetCandPrune(false)
			unprunedRows0 := storage.CandRowsGathered()
			unpruned, err := f.Query(candPrunePartialQuery)
			unprunedDelta := storage.CandRowsGathered() - unprunedRows0
			skynode.SetCandPrune(true)
			if err != nil {
				t.Fatalf("partial query unpruned (par %d, batch %d): %v", par, bs, err)
			}
			if pruned.NumRows() == 0 {
				t.Fatalf("partial query (par %d, batch %d): degenerate empty result", par, bs)
			}
			if got, want := goldenEncode(pruned), goldenEncode(unpruned); got != want {
				t.Errorf("partial query (par %d, batch %d): pruned result diverges from unpruned\npruned:\n%s\nunpruned:\n%s", par, bs, got, want)
			}
			if prunedDelta >= unprunedDelta {
				t.Errorf("partial query (par %d, batch %d): pruning gathered %d rows, unpruned %d — expected a cut", par, bs, prunedDelta, unprunedDelta)
			}
		}
		f.Close()
	}
}
