package skyquery

// End-to-end candidate-pruning assertions: on a federation whose archives
// span several zone blocks (ZoneBlockRows = 1024 rows each), a cross-match
// whose seed predicate is provably never TRUE must be answered below the
// HTM search — zero candidate rows gathered anywhere in the chain, blocks
// pruned — and a partially prunable cross-match must return bit-identical
// results with pruning on and off, at every combination of chain
// parallelism {1, 4} and scan batch size {1, 3, 1024}. (The golden corpus
// query 12 pins the same predicate shape's correctness on the standard
// 400-body federation; this test pins that the work was never done on a
// federation big enough to prune.)

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"skyquery/internal/eval"
	"skyquery/internal/skynode"
	"skyquery/internal/storage"
	"skyquery/internal/survey"
	"skyquery/internal/value"
)

const candPruneZeroQuery = `
	SELECT O.object_id, T.object_id
	FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
	WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T) < 3.5
	AND O.object_id < 1 AND T.object_id < 1`

const candPrunePartialQuery = `
	SELECT O.object_id, T.object_id, O.flux
	FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
	WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T) < 3.5
	AND O.ra < 184.92 AND T.flux > 0.5`

func TestCandPruningEndToEnd(t *testing.T) {
	defer eval.SetBatchSize(eval.DefaultBatchSize)
	defer skynode.SetCandPrune(true)
	for _, par := range []int{1, 4} {
		// The plan cache is disabled so every Query replans: the gather
		// deltas below compare pruned vs unpruned runs of the same SQL,
		// and a cache hit on the second run would skip the count-star
		// probes the first run paid for, skewing the comparison.
		f := launch(t, Options{Bodies: 3000, Parallelism: par, PlanCacheSize: -1})
		for _, bs := range []int{1, 3, eval.DefaultBatchSize} {
			eval.SetBatchSize(bs)

			// Never-TRUE local predicates at both archives: object_id
			// starts at 1, so every block's minimum refutes object_id < 1
			// and the whole pipeline must run without gathering a single
			// candidate row — count probes, seed, and extend steps
			// included.
			rowsBefore := storage.CandRowsGathered()
			blocksBefore := storage.CandBlocksPruned()
			res, err := f.Query(context.Background(), candPruneZeroQuery)
			if err != nil {
				t.Fatalf("zero query (par %d, batch %d): %v", par, bs, err)
			}
			if res.NumRows() != 0 {
				t.Fatalf("zero query (par %d, batch %d): %d rows, want 0", par, bs, res.NumRows())
			}
			if d := storage.CandRowsGathered() - rowsBefore; d != 0 {
				t.Errorf("zero query (par %d, batch %d): gathered %d candidate rows, want 0 (pruned blocks must never be gathered)", par, bs, d)
			}
			if storage.CandBlocksPruned() == blocksBefore {
				t.Errorf("zero query (par %d, batch %d): no candidate blocks pruned", par, bs)
			}

			// The partially prunable chain: pruning on and off must agree
			// bit-for-bit, and pruning must have cut the gathered rows.
			prunedRows0 := storage.CandRowsGathered()
			pruned, err := f.Query(context.Background(), candPrunePartialQuery)
			if err != nil {
				t.Fatalf("partial query (par %d, batch %d): %v", par, bs, err)
			}
			prunedDelta := storage.CandRowsGathered() - prunedRows0
			skynode.SetCandPrune(false)
			unprunedRows0 := storage.CandRowsGathered()
			unpruned, err := f.Query(context.Background(), candPrunePartialQuery)
			unprunedDelta := storage.CandRowsGathered() - unprunedRows0
			skynode.SetCandPrune(true)
			if err != nil {
				t.Fatalf("partial query unpruned (par %d, batch %d): %v", par, bs, err)
			}
			if pruned.NumRows() == 0 {
				t.Fatalf("partial query (par %d, batch %d): degenerate empty result", par, bs)
			}
			if got, want := goldenEncode(pruned), goldenEncode(unpruned); got != want {
				t.Errorf("partial query (par %d, batch %d): pruned result diverges from unpruned\npruned:\n%s\nunpruned:\n%s", par, bs, got, want)
			}
			if prunedDelta >= unprunedDelta {
				t.Errorf("partial query (par %d, batch %d): pruning gathered %d rows, unpruned %d — expected a cut", par, bs, prunedDelta, unprunedDelta)
			}
		}
		f.Close()
	}
}

// TestAppendDuringQuery runs cross-match queries while both archives
// ingest — the live-federation scenario the storage engine's
// append-during-read contract exists for. During the churn every query
// must simply succeed (under -race this also proves the locking); after
// it, every appended pair must be visible, none wrongly dropped by stale
// zone statistics, and pruning on/off must still agree bit-for-bit.
func TestAppendDuringQuery(t *testing.T) {
	defer skynode.SetCandPrune(true)
	field := GenerateField(NewCap(185, -0.5, 0.25), 800, 0.4, 11)
	mkNode := func(name string, sigma float64, seed int64) (NodeSpec, *storage.Table) {
		a := survey.Observe(field, survey.Config{
			Name: name, SigmaArcsec: sigma, Completeness: 0.9, Seed: seed,
		})
		db, err := a.BuildDB()
		if err != nil {
			t.Fatal(err)
		}
		tbl, _ := db.Table(survey.TableName)
		return NodeSpec{
			Name: name, DB: db, PrimaryTable: survey.TableName,
			RACol: "ra", DecCol: "dec", SigmaArcsec: sigma,
		}, tbl
	}
	specA, tblA := mkNode("LIVEA", 0.1, 21)
	specB, tblB := mkNode("LIVEB", 0.2, 22)
	f, err := Launch(Options{Nodes: []NodeSpec{specA, specB}, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Fresh pairs carry object_id >= freshBase and flux 10, at unique
	// positions inside the AREA, identical in both archives — each pair
	// must cross-match once the appends are visible, and each satisfies
	// the query's prunable flux conjuncts.
	const query = `
		SELECT O.object_id, T.object_id
		FROM LIVEA:PhotoObject O, LIVEB:PhotoObject T
		WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T) < 3.5
		AND O.flux > 0.5 AND T.flux > 0.5`
	const freshBase = 50000
	const pairsPerWorker, workers = 50, 2
	appendPair := func(i int) error {
		// 0.004 deg spacing (14.4 arcsec) keeps distinct pairs from
		// cross-matching each other; the grid stays well inside the cap.
		ra := value.Float(185.0 - 0.04 + 0.004*float64(i%20))
		dec := value.Float(-0.5 - 0.04 + 0.004*float64(i/20))
		for _, tbl := range []*storage.Table{tblA, tblB} {
			err := tbl.Append(value.Int(int64(freshBase+i)), value.Int(-1), ra, dec,
				value.Float(10), value.String("STAR"), value.Null)
			if err != nil {
				return err
			}
		}
		return nil
	}

	before, err := f.Query(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < pairsPerWorker; k++ {
				if err := appendPair(w*pairsPerWorker + k); err != nil {
					errs <- fmt.Errorf("appender %d: %w", w, err)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				if _, err := f.Query(context.Background(), query); err != nil {
					errs <- fmt.Errorf("querier %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	after, err := f.Query(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	freshPairs := 0
	for _, row := range after.Rows {
		if !row[0].IsNull() && row[0].AsInt() >= freshBase &&
			!row[1].IsNull() && row[1].AsInt() >= freshBase {
			freshPairs++
		}
	}
	if want := pairsPerWorker * workers; freshPairs < want {
		t.Errorf("%d fresh pairs matched, want >= %d — appended rows were dropped", freshPairs, want)
	}
	if after.NumRows() <= before.NumRows() {
		t.Errorf("result did not grow with the data: %d rows before, %d after", before.NumRows(), after.NumRows())
	}

	// Pruned and unpruned answers still agree on the final dataset.
	skynode.SetCandPrune(false)
	unpruned, err := f.Query(context.Background(), query)
	skynode.SetCandPrune(true)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := goldenEncode(after), goldenEncode(unpruned); got != want {
		t.Error("pruned result diverges from unpruned after concurrent ingest")
	}
}
