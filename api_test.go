package skyquery

// The root API surface added by the redesign: functional options,
// Dial options, and the typed error re-exports.

import (
	"context"
	"testing"
	"time"
)

func TestLaunchWithOptions(t *testing.T) {
	f, err := LaunchWith(WithBodies(300), WithShards(2), WithParallelism(2), WithChunkRows(100))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := f.Query(context.Background(), testQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("no rows from the functional-options federation")
	}
}

func TestDialOptions(t *testing.T) {
	c := Dial("http://portal.invalid/soap",
		WithClientCodec(CodecXML),
		WithClientTimeout(3*time.Second),
		WithClientRetries(-1),
	)
	if c.SOAP.Codec != CodecXML || c.SOAP.Timeout != 3*time.Second || c.SOAP.MaxRetries != -1 {
		t.Errorf("dial options not applied: %+v", c.SOAP)
	}
}

func TestParseErrorPosition(t *testing.T) {
	f := launch(t, Options{Bodies: 100})
	_, err := f.Query(context.Background(), "SELECT O.ra\nFROM SDSS:PhotoObject O\nWHERRE O.ra > 0")
	if err == nil {
		t.Fatal("malformed query accepted")
	}
	pe, ok := AsParseError(err)
	if !ok {
		t.Fatalf("error is %T (%v), want *ParseError", err, err)
	}
	if pe.Line != 3 || pe.Col != 1 || pe.Category != ErrSyntax {
		t.Errorf("ParseError position = line %d col %d category %q, want line 3 col 1 syntax (%v)",
			pe.Line, pe.Col, pe.Category, pe)
	}
}

func TestParseErrorSemanticCategory(t *testing.T) {
	f := launch(t, Options{Bodies: 100})
	_, err := f.Query(context.Background(),
		"SELECT O.ra FROM SDSS:PhotoObject O WHERE AREA(185.0, -0.5, 60) AND AREA(185.0, -0.5, 60)")
	if err == nil {
		t.Fatal("duplicate AREA accepted")
	}
	pe, ok := AsParseError(err)
	if !ok {
		t.Fatalf("error is %T (%v), want *ParseError", err, err)
	}
	if pe.Category != ErrSemantic {
		t.Errorf("category = %q, want %q (%v)", pe.Category, ErrSemantic, pe)
	}
}
