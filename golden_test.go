package skyquery

// The golden end-to-end query corpus: every testdata/queries/*.sql runs
// through the full portal path — parse, plan (count-star probes), the
// distributed cross-match chain or single-archive pass-through, and final
// projection — and its rows must match the checked-in *.golden file
// bit-for-bit at every combination of chain parallelism {1, 4} and scan
// batch size {1, 3, 1024}. The degenerate batch sizes force partial and
// single-row batches through every batched site (storage scans, chain
// steps, projection), which is where batch-boundary bugs (dropped last
// partial batch, off-by-one at a full batch, empty-batch handling) live.
//
// Regenerate the goldens after an intended behavior change with:
//
//	go test -run TestGoldenQueryCorpus -update-golden
//
// (they are written from the parallelism=1, batch-size=1 configuration,
// the closest to a row-at-a-time reference execution).

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"skyquery/internal/dataset"
	"skyquery/internal/eval"
	"skyquery/internal/value"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/queries/*.golden from the current engine")

// goldenCell encodes one value for the golden files: unambiguous across
// types, with floats at 12 significant digits so the files do not hinge on
// the last ulp of platform-specific rounding.
func goldenCell(v value.Value) string {
	switch v.Type() {
	case value.NullType:
		return "NULL"
	case value.IntType:
		return "i:" + strconv.FormatInt(v.AsInt(), 10)
	case value.FloatType:
		f, _ := v.AsFloat()
		return "f:" + strconv.FormatFloat(f, 'g', 12, 64)
	case value.StringType:
		return "s:" + strconv.Quote(v.AsString())
	case value.BoolType:
		return "b:" + strconv.FormatBool(v.AsBool())
	}
	return "?"
}

// goldenEncode renders a result set: a header of name:TYPE columns, then
// one line per row.
func goldenEncode(ds *dataset.DataSet) string {
	var sb strings.Builder
	var hdr []string
	for _, c := range ds.Columns {
		hdr = append(hdr, c.Name+":"+c.Type.String())
	}
	sb.WriteString(strings.Join(hdr, " | "))
	sb.WriteString("\n")
	for _, row := range ds.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = goldenCell(v)
		}
		sb.WriteString(strings.Join(cells, " | "))
		sb.WriteString("\n")
	}
	return sb.String()
}

func TestGoldenQueryCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "queries", "*.sql"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden queries found: %v", err)
	}
	sort.Strings(files)

	defer eval.SetBatchSize(eval.BatchSize())
	batchSizes := []int{1, 3, eval.DefaultBatchSize}

	if *updateGolden {
		eval.SetBatchSize(1)
		f := launch(t, Options{Bodies: 400, Parallelism: 1})
		for _, file := range files {
			sql, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			res, err := f.Query(context.Background(), string(sql))
			if err != nil {
				t.Fatalf("%s: %v", file, err)
			}
			golden := strings.TrimSuffix(file, ".sql") + ".golden"
			if err := os.WriteFile(golden, []byte(goldenEncode(res)), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d rows)", golden, res.NumRows())
		}
		return
	}

	for _, par := range []int{1, 4} {
		f := launch(t, Options{Bodies: 400, Parallelism: par})
		for _, bs := range batchSizes {
			eval.SetBatchSize(bs)
			for _, file := range files {
				name := fmt.Sprintf("%s/par=%d/batch=%d", filepath.Base(file), par, bs)
				sql, err := os.ReadFile(file)
				if err != nil {
					t.Fatal(err)
				}
				want, err := os.ReadFile(strings.TrimSuffix(file, ".sql") + ".golden")
				if err != nil {
					t.Fatalf("%s: missing golden (run with -update-golden): %v", name, err)
				}
				res, err := f.Query(context.Background(), string(sql))
				if err != nil {
					t.Errorf("%s: query failed: %v", name, err)
					continue
				}
				if got := goldenEncode(res); got != string(want) {
					t.Errorf("%s: result diverges from golden\ngot:\n%s\nwant:\n%s", name, got, want)
				}
				// The pull-to-portal baseline must agree with the chain on
				// the ordered queries (row-for-row) and on cardinality for
				// the rest (tuple order is strategy-dependent).
				if strings.Contains(strings.ToUpper(string(sql)), "XMATCH") {
					pull, err := f.PullQuery(context.Background(), string(sql))
					if err != nil {
						t.Errorf("%s: pull baseline failed: %v", name, err)
						continue
					}
					if pull.NumRows() != res.NumRows() {
						t.Errorf("%s: pull baseline returned %d rows, chain %d", name, pull.NumRows(), res.NumRows())
					}
					if strings.Contains(strings.ToUpper(string(sql)), "ORDER BY") {
						if got := goldenEncode(pull); got != string(want) {
							t.Errorf("%s: pull baseline diverges from golden\ngot:\n%s", name, got)
						}
					}
				}
			}
		}
		f.Close()
	}
}
