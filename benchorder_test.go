package skyquery

// The chain-order transfer benchmark of the cost-based planner: a
// two-archive federation skewed in both cardinality and path speed.
// DEEP is a near-complete survey on a fast path; SPARSE sees only a
// fifth of the sky plus spurious detections (so its count-star value is
// *smaller* than DEEP's while most of its rows match nothing) and its
// path is measured ~10^6x slower.
//
// The paper's count rule orders by row count alone: SPARSE (smaller
// count) seeds the chain, and all of its candidate tuples cross its own
// slow link. The cost model weighs the same estimates by per-row bytes
// and observed per-host throughput, flips the order, and the slow link
// carries only the matched result instead. TestCostOrderBeatsCountProbe
// asserts the flip and the direction on every run; TestWriteBenchOrderJSON
// measures the slow-link byte ratio at scale, gates it at the 1.5x
// floor, and records it as the "chain_order" entry of BENCH_scan.json.

import (
	"context"
	"encoding/json"
	"flag"
	"math"
	"net/url"
	"os"
	"strings"
	"testing"
	"time"

	"skyquery/internal/nettrace"
	"skyquery/internal/plan"
)

var benchOrderJSON = flag.String("bench-order-json", "", "merge the chain-order transfer benchmark into this BENCH_scan.json")

const benchOrderQuery = `
	SELECT D.object_id, S.object_id
	FROM DEEP:PhotoObject D, SPARSE:PhotoObject S
	WHERE AREA(185.0, -0.5, 900) AND XMATCH(D, S) < 3.5`

func benchOrderSurveys() []SurveySpec {
	return []SurveySpec{
		{Name: "DEEP", SigmaArcsec: 0.1, Completeness: 0.95, Seed: 201},
		// Completeness 0.2 + ExtraDensity 0.5: ~0.7x DEEP's count, but
		// only the completeness fraction has a counterpart to match.
		{Name: "SPARSE", SigmaArcsec: 0.3, Completeness: 0.2, ExtraDensity: 0.5, Seed: 202},
	}
}

type benchOrderRun struct {
	order      string
	slowBytes  int64
	totalBytes int64
	rows       int
	canonical  string
}

// runBenchOrder launches the skewed federation fresh (same seed, so the
// data is identical across runs), injects the path-speed skew, runs the
// query once, and reports the plan order plus the bytes that crossed the
// slow archive's link.
func runBenchOrder(t *testing.T, countProbe bool, bodies int) benchOrderRun {
	t.Helper()
	t.Cleanup(nettrace.ResetThroughput)
	nettrace.ResetThroughput()
	f := launch(t, Options{
		Bodies:          bodies,
		Surveys:         benchOrderSurveys(),
		RecordCalls:     true,
		CountProbeOrder: countProbe,
	})
	slowHost := endpointHostOf(t, f.NodeURLs["SPARSE"])
	nettrace.ResetThroughput()
	nettrace.RecordTransfer(slowHost, 1<<20, 1000*time.Second)
	nettrace.RecordTransfer(endpointHostOf(t, f.NodeURLs["DEEP"]), 1<<30, time.Second)

	baseCalls := len(f.Transport.Calls())
	baseTotal := f.Transport.Stats().Total()
	res, err := f.Query(context.Background(), benchOrderQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() == 0 {
		t.Fatal("skewed federation query matched nothing — benchmark is vacuous")
	}
	run := benchOrderRun{
		totalBytes: f.Transport.Stats().Total() - baseTotal,
		rows:       res.NumRows(),
		canonical:  canonicalEncode(res),
	}
	for _, c := range f.Transport.Calls()[baseCalls:] {
		if u, err := url.Parse(c.URL); err == nil && u.Host == slowHost {
			run.slowBytes += c.BytesSent + c.BytesReceived
		}
	}
	// The plan order, re-derived after the measurement so the probes it
	// fans out do not pollute the byte counts. The throughput registry
	// is unchanged, so the order is the one the measured query ran with.
	p, err := f.BuildPlan(context.Background(), benchOrderQuery)
	if err != nil {
		t.Fatal(err)
	}
	run.order = stepOrder(p)
	return run
}

// stepOrder renders a plan's archive call order compactly.
func stepOrder(p *plan.Plan) string {
	names := make([]string, len(p.Steps))
	for i := range p.Steps {
		names[i] = p.Steps[i].Archive
	}
	return strings.Join(names, "->")
}

// TestCostOrderBeatsCountProbe is the always-on form of the benchmark:
// at small scale it asserts that the two regimes pick different orders,
// agree bit-for-bit on the result, and that the cost-based order moves
// fewer bytes over the slow link.
func TestCostOrderBeatsCountProbe(t *testing.T) {
	count := runBenchOrder(t, true, 800)
	cost := runBenchOrder(t, false, 800)
	if count.canonical != cost.canonical {
		t.Fatalf("orders disagree on results: count-probe %d rows, cost-based %d rows", count.rows, cost.rows)
	}
	if count.order == cost.order {
		t.Errorf("cost model picked the count order %s on the skewed federation", count.order)
	}
	if cost.slowBytes >= count.slowBytes {
		t.Errorf("cost-based order moved %d bytes over the slow link, count-probe %d — no saving",
			cost.slowBytes, count.slowBytes)
	}
	t.Logf("count-probe %s: %d bytes over slow link; cost-based %s: %d bytes (%.2fx)",
		count.order, count.slowBytes, cost.order, cost.slowBytes,
		float64(count.slowBytes)/float64(cost.slowBytes))
}

// TestWriteBenchOrderJSON measures the slow-link transfer ratio at
// benchmark scale, fails below the 1.5x acceptance floor, and merges the
// result into BENCH_scan.json. CI runs it in the bench job:
//
//	go test . -run TestWriteBenchOrderJSON -bench-order-json "$(pwd)/BENCH_scan.json" -v
func TestWriteBenchOrderJSON(t *testing.T) {
	if *benchOrderJSON == "" {
		t.Skip("pass -bench-order-json=PATH (the checked-in BENCH_scan.json) to record the chain-order benchmark")
	}
	count := runBenchOrder(t, true, 4000)
	cost := runBenchOrder(t, false, 4000)
	if count.canonical != cost.canonical {
		t.Fatalf("orders disagree on results: count-probe %d rows, cost-based %d rows", count.rows, cost.rows)
	}
	ratio := float64(count.slowBytes) / float64(cost.slowBytes)
	t.Logf("count-probe %s: slow-link=%d total=%d; cost-based %s: slow-link=%d total=%d; ratio=%.2f",
		count.order, count.slowBytes, count.totalBytes, cost.order, cost.slowBytes, cost.totalBytes, ratio)
	if ratio < 1.5 {
		t.Errorf("cost-based order saves only %.2fx over the slow link, want >= 1.5x", ratio)
	}

	raw, err := os.ReadFile(*benchOrderJSON)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parsing %s: %v", *benchOrderJSON, err)
	}
	doc["chain_order"] = map[string]any{
		"benchmark": "skewed two-archive federation, bytes over the slow archive's link: count-probe order vs cost-based order",
		"query":     strings.Join(strings.Fields(benchOrderQuery), " "),
		"count_probe": map[string]any{
			"order":           count.order,
			"slow_link_bytes": count.slowBytes,
			"total_bytes":     count.totalBytes,
		},
		"cost_based": map[string]any{
			"order":           cost.order,
			"slow_link_bytes": cost.slowBytes,
			"total_bytes":     cost.totalBytes,
		},
		"matched_rows":    count.rows,
		"slow_link_ratio": jsonRound(ratio),
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchOrderJSON, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// jsonRound keeps recorded ratios readable (two decimals).
func jsonRound(f float64) float64 {
	return math.Round(f*100) / 100
}
