package skyquery

// End-to-end streaming tests. PR 8 streams pages over the columnar wire
// through the whole federation — seed node -> chain -> portal -> client
// iterator — with the buffered chunked transfer as the fallback. These
// tests hold the streamed wire to three contracts: bit-identity with the
// folded path over the golden corpus at every parallelism x batch-size
// combination, typed (never silent) mid-chain failure, and O(page) peak
// memory with first rows delivered before the transfer has finished
// being produced.

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"skyquery/internal/dataset"
	"skyquery/internal/eval"
	"skyquery/internal/skynode"
	"skyquery/internal/soap"
)

var benchStreamJSON = flag.String("bench-stream-json", "", "merge the streaming bounded-memory drill into this BENCH_scan.json")

// TestStreamGoldenDifferential drains every corpus query row by row off
// the streaming client iterator and compares it against both the folded
// in-process execution (buffered chunked wire below) and the checked-in
// golden, across chain parallelism {1,4} and scan batch size {1,3,1024}.
func TestStreamGoldenDifferential(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "queries", "*.sql"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden queries found: %v", err)
	}
	sort.Strings(files)
	defer eval.SetBatchSize(eval.BatchSize())

	for _, par := range []int{1, 4} {
		f := launch(t, Options{Bodies: 400, Parallelism: par})
		c := f.Client()
		for _, bs := range []int{1, 3, eval.DefaultBatchSize} {
			eval.SetBatchSize(bs)
			for _, file := range files {
				name := fmt.Sprintf("%s/par=%d/batch=%d", filepath.Base(file), par, bs)
				sql, err := os.ReadFile(file)
				if err != nil {
					t.Fatal(err)
				}
				want, err := os.ReadFile(strings.TrimSuffix(file, ".sql") + ".golden")
				if err != nil {
					t.Fatalf("%s: missing golden: %v", name, err)
				}
				folded, err := f.Query(context.Background(), string(sql))
				if err != nil {
					t.Errorf("%s: folded query failed: %v", name, err)
					continue
				}
				rows, err := c.QueryRows(context.Background(), string(sql))
				if err != nil {
					t.Errorf("%s: stream open failed: %v", name, err)
					continue
				}
				streamed := &dataset.DataSet{Columns: rows.Columns()}
				for rows.Next() {
					streamed.Rows = append(streamed.Rows, rows.Row())
				}
				if err := rows.Err(); err != nil {
					t.Errorf("%s: stream failed: %v", name, err)
					rows.Close()
					continue
				}
				rows.Close()
				got := goldenEncode(streamed)
				if got != string(want) {
					t.Errorf("%s: streamed result diverges from golden\ngot:\n%s\nwant:\n%s", name, got, want)
				}
				if fold := goldenEncode(folded); got != fold {
					t.Errorf("%s: streamed and folded paths disagree\nstreamed:\n%s\nfolded:\n%s", name, got, fold)
				}
			}
		}
		f.Close()
	}
}

// TestStreamMidChainNodeDeathTypedError kills a mid-chain node after
// planning and consumes the chain as a stream. By then the first node's
// response has already started, so the failure cannot be an HTTP fault —
// it must arrive in-band as a typed *dataset.StreamError naming the dead
// node, never as a silently truncated result.
func TestStreamMidChainNodeDeathTypedError(t *testing.T) {
	f := launch(t, Options{Bodies: 300})
	p, err := f.BuildPlan(context.Background(), testQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) < 3 {
		t.Fatalf("plan has %d steps; fixture too small", len(p.Steps))
	}
	sabotaged := p.Steps[1].Archive
	p.Steps[1].Endpoint = "http://127.0.0.1:1/dead"

	c := &soap.Client{HTTPClient: f.Transport.Client()}
	var streamErr *dataset.StreamError
	ps, err := soap.OpenStream(context.Background(), c, p.Steps[0].Endpoint, skynode.ActionCrossMatch,
		&skynode.CrossMatchRequest{Plan: *p})
	if err != nil {
		// The error frame can land before the schema frame; OpenStream
		// then surfaces it directly.
		if !errors.As(err, &streamErr) {
			t.Fatalf("open error is %T (%v), want *dataset.StreamError", err, err)
		}
	} else {
		defer ps.Close()
		for streamErr == nil {
			page, err := ps.Next()
			if err != nil {
				if !errors.As(err, &streamErr) {
					t.Fatalf("stream error is %T (%v), want *dataset.StreamError", err, err)
				}
				break
			}
			if page == nil {
				t.Fatal("stream ended cleanly despite a dead mid-chain node (silent truncation)")
			}
		}
	}
	if !strings.Contains(streamErr.Msg, sabotaged) {
		t.Errorf("error does not identify the dead node %s: %v", sabotaged, streamErr)
	}
}

// streamMemResult is one bounded-memory drill measurement: the same
// fat-payload federated cross-match consumed once through the streaming
// client iterator and once through the folded whole-result path, with
// peak heap sampled across the entire in-process federation (portal +
// both nodes + client) for each.
type streamMemResult struct {
	Rows            int     `json:"rows"`
	Pages           int     `json:"pages"`
	ChunkRows       int     `json:"chunk_rows"`
	StreamPeakBytes uint64  `json:"stream_peak_heap_bytes"`
	FoldPeakBytes   uint64  `json:"folded_peak_heap_bytes"`
	Ratio           float64 `json:"folded_over_stream"`
	FirstRowEarly   bool    `json:"first_row_before_producer_done"`
}

// runStreamMemDrill builds a two-node federation whose cross-match
// result is >= 100x ChunkRows with a fat payload column, and measures
// streamed-vs-folded peak heap plus whether the first row reaches the
// client while the first-step node is still producing.
func runStreamMemDrill(t testing.TB) streamMemResult {
	const (
		payloadLen = 4096
		dup        = 4  // BIG objects per sky position
		chunkRows  = 64 // tiny pages => many pages per transfer
	)

	// Distinct sky positions on a ~25-arcsec grid inside the query area:
	// far enough apart that only same-position objects cross-match.
	type pos struct{ ra, dec float64 }
	var positions []pos
	for gy := -30; gy <= 30; gy++ {
		for gx := -30; gx <= 30; gx++ {
			dra, ddec := float64(gx)*0.007, float64(gy)*0.007
			if math.Sqrt(dra*dra+ddec*ddec) > 0.2 {
				continue
			}
			positions = append(positions, pos{185.0 + dra, -0.5 + ddec})
		}
	}

	seedDB := NewDB()
	seedTab, err := seedDB.Create("Objects", Schema{
		{Name: "object_id", Type: IntType},
		{Name: "ra", Type: FloatType},
		{Name: "dec", Type: FloatType},
	})
	if err != nil {
		t.Fatal(err)
	}
	bigDB := NewDB()
	bigTab, err := bigDB.Create("Objects", Schema{
		{Name: "object_id", Type: IntType},
		{Name: "ra", Type: FloatType},
		{Name: "dec", Type: FloatType},
		{Name: "payload", Type: StringType},
	})
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("x", payloadLen)
	id := 0
	for i, p := range positions {
		row, err := Values(i, p.ra, p.dec)
		if err != nil {
			t.Fatal(err)
		}
		if err := seedTab.Append(row...); err != nil {
			t.Fatal(err)
		}
		for d := 0; d < dup; d++ {
			row, err := Values(id, p.ra, p.dec, fmt.Sprintf("%08d-", id)+pad)
			if err != nil {
				t.Fatal(err)
			}
			if err := bigTab.Append(row...); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	for _, tab := range []interface {
		EnableSpatial(SpatialConfig) error
	}{seedTab, bigTab} {
		if err := tab.EnableSpatial(SpatialConfig{RACol: "ra", DecCol: "dec"}); err != nil {
			t.Fatal(err)
		}
	}

	var bigReturned atomic.Bool
	f, err := Launch(Options{
		Surveys: []SurveySpec{},
		Nodes: []NodeSpec{
			{Name: "BIG", DB: bigDB, PrimaryTable: "Objects", RACol: "ra", DecCol: "dec", SigmaArcsec: 0.1},
			{Name: "SEED", DB: seedDB, PrimaryTable: "Objects", RACol: "ra", DecCol: "dec", SigmaArcsec: 0.1},
		},
		ChunkRows: chunkRows,
		NodeEvents: func(node, kind, detail string) {
			if node == "BIG" && kind == "xmatch.return" {
				bigReturned.Store(true)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const sql = `
		SELECT S.object_id, B.payload
		FROM BIG:Objects B, SEED:Objects S
		WHERE AREA(185.0, -0.5, 900) AND XMATCH(B, S) < 3.5`

	// The count ordering (§5.3) must put the heavy archive portal-adjacent
	// and seed from the small one, or the fixture is not testing what it
	// claims: the payload column must ride the streamed pages.
	p, err := f.BuildPlan(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps[0].Archive != "BIG" {
		t.Fatalf("plan order %v; want BIG first (portal-adjacent)", p.Steps)
	}

	// Tight GC so HeapAlloc tracks live data instead of accumulated
	// garbage; restore afterwards.
	defer debug.SetGCPercent(debug.SetGCPercent(20))

	// peakDelta samples HeapAlloc while run executes and reports the peak
	// growth over the post-GC baseline.
	peakDelta := func(run func() error) (uint64, error) {
		runtime.GC()
		var base runtime.MemStats
		runtime.ReadMemStats(&base)
		stop := make(chan struct{})
		peakCh := make(chan uint64, 1)
		go func() {
			var m runtime.MemStats
			var pk uint64
			for {
				select {
				case <-stop:
					peakCh <- pk
					return
				default:
					runtime.ReadMemStats(&m)
					if m.HeapAlloc > pk {
						pk = m.HeapAlloc
					}
					time.Sleep(time.Millisecond)
				}
			}
		}()
		err := run()
		close(stop)
		pk := <-peakCh
		if pk <= base.HeapAlloc {
			return 0, err
		}
		return pk - base.HeapAlloc, err
	}

	c := f.Client()
	streamRows := 0
	firstRowEarly := false
	streamPeak, err := peakDelta(func() error {
		rows, err := c.QueryRows(context.Background(), sql)
		if err != nil {
			return err
		}
		defer rows.Close()
		for rows.Next() {
			if streamRows == 0 {
				// The whole result (~tens of MB) cannot fit in the
				// pipeline's socket buffers, so if streaming is real the
				// first-step node must still be producing pages when the
				// first row reaches the client.
				firstRowEarly = !bigReturned.Load()
			}
			streamRows++
		}
		return rows.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamRows < 100*chunkRows {
		t.Fatalf("result has %d rows; need >= %d (100x ChunkRows) to exercise many pages", streamRows, 100*chunkRows)
	}

	// The folded execution materializes the result at every hop; the
	// streamed one must peak far below it.
	foldRows := 0
	foldPeak, err := peakDelta(func() error {
		res, err := f.Query(context.Background(), sql)
		if err != nil {
			return err
		}
		foldRows = res.NumRows()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if foldRows != streamRows {
		t.Fatalf("streamed %d rows, folded %d", streamRows, foldRows)
	}
	ratio := 0.0
	if streamPeak > 0 {
		ratio = float64(foldPeak) / float64(streamPeak)
	}
	return streamMemResult{
		Rows:            streamRows,
		Pages:           streamRows / chunkRows,
		ChunkRows:       chunkRows,
		StreamPeakBytes: streamPeak,
		FoldPeakBytes:   foldPeak,
		Ratio:           float64(int(ratio*100+0.5)) / 100,
		FirstRowEarly:   firstRowEarly,
	}
}

// TestStreamBoundedMemoryEndToEnd holds the streamed wire to the two
// acceptance properties: the client iterator yields its first row while
// the first-step node is still producing pages, and peak heap stays
// O(pages in flight) — far below the folded execution's O(result).
func TestStreamBoundedMemoryEndToEnd(t *testing.T) {
	res := runStreamMemDrill(t)
	if !res.FirstRowEarly {
		t.Error("first row reached the client only after the first-step node finished its whole transfer")
	}
	if res.StreamPeakBytes*2 >= res.FoldPeakBytes {
		t.Errorf("streamed peak heap delta %d MB is not clearly below the folded %d MB — streaming is buffering somewhere",
			res.StreamPeakBytes>>20, res.FoldPeakBytes>>20)
	}
	t.Logf("rows=%d pages>=%d streamPeak=%dMB foldPeak=%dMB (%.1fx)",
		res.Rows, res.Pages, res.StreamPeakBytes>>20, res.FoldPeakBytes>>20, res.Ratio)
}

// TestWriteBenchStreamJSON (flag-gated) merges the bounded-memory
// streaming measurement into BENCH_scan.json as stream_mem:
//
//	go test . -run TestWriteBenchStreamJSON -bench-stream-json "$(pwd)/BENCH_scan.json"
func TestWriteBenchStreamJSON(t *testing.T) {
	if *benchStreamJSON == "" {
		t.Skip("pass -bench-stream-json=PATH (an existing BENCH_scan.json) to record the streaming memory drill")
	}
	raw, err := os.ReadFile(*benchStreamJSON)
	if err != nil {
		t.Fatalf("the eval trajectory must be written first (TestWriteBenchScanJSON): %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parsing %s: %v", *benchStreamJSON, err)
	}

	res := runStreamMemDrill(t)
	doc["stream_mem"] = map[string]any{
		"benchmark": "fat-payload federated cross-match, streamed client iterator vs folded whole-result path, peak HeapAlloc across the in-process federation",
		"result":    res,
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*benchStreamJSON, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("merged stream_mem: %d rows, stream %d MB vs folded %d MB (%.1fx)",
		res.Rows, res.StreamPeakBytes>>20, res.FoldPeakBytes>>20, res.Ratio)
}
