module skyquery

go 1.22
