module skyquery

go 1.24
