// Quickstart: launch a three-archive federation over a synthetic sky
// field and run the paper's example cross-match query (§5.2).
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"skyquery"
)

func main() {
	// Launch SDSS-, 2MASS- and FIRST-like synthetic archives around the
	// paper's example position (185.0, -0.5), each behind its own SOAP
	// endpoint, plus a Portal they register with.
	fed, err := skyquery.LaunchWith(
		skyquery.WithBodies(2000),
		skyquery.WithMatchColumns(),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer fed.Close()

	fmt.Println("Federation is up:")
	fmt.Println("  portal:", fed.PortalURL)
	for name, url := range fed.NodeURLs {
		fmt.Printf("  %-8s %s\n", name, url)
	}

	// The paper's example query, §5.2 (the AREA radius is in arc seconds;
	// 900" = 0.25 degrees, the extent of the generated field).
	const query = `
		SELECT O.object_id, T.object_id, P.object_id
		FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T, FIRST:PhotoObject P
		WHERE AREA(185.0, -0.5, 900)
		  AND XMATCH(O, T, P) < 3.5
		  AND O.type = 'GALAXY'
		  AND (O.flux - T.flux) > 2`

	res, err := fed.Query(context.Background(), query)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d cross matches (galaxies seen by all three surveys):\n\n", res.NumRows())
	for _, c := range res.Columns {
		fmt.Printf("%-16s", c.Name)
	}
	fmt.Println()
	for i, row := range res.Rows {
		if i == 10 {
			fmt.Printf("... (%d more)\n", res.NumRows()-10)
			break
		}
		for _, v := range row {
			fmt.Printf("%-16s", cell(v))
		}
		fmt.Println()
	}

	stats := fed.Transport.Stats()
	fmt.Printf("\nSOAP traffic: %d requests, %d bytes sent, %d bytes received\n",
		stats.Requests, stats.BytesSent, stats.BytesReceived)
}

// cell renders a value compactly for the console table.
func cell(v skyquery.Value) string {
	if f, ok := v.AsFloat(); ok && v.Type() == skyquery.FloatType {
		return fmt.Sprintf("%.5f", f)
	}
	return fmt.Sprintf("%v", v)
}
