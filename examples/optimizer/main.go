// Optimizer: the count-star optimization of §5.3 made visible. The Portal
// probes each archive with a cheap COUNT(*) performance query, orders the
// daisy chain by decreasing count (so the smallest archive seeds the
// chain), and thereby ships fewer bytes than any other order. This
// example prints the plan and then measures bytes on the wire for the
// optimizer's order versus the worst (increasing-count) order.
//
//	go run ./examples/optimizer
package main

import (
	"context"
	"fmt"
	"log"

	"skyquery"
)

func main() {
	// Skew the archives: SDSS-like is dense, the "radio" survey sparse.
	fed, err := skyquery.LaunchWith(
		skyquery.WithBodies(3000),
		skyquery.WithSurveys(
			skyquery.SurveySpec{Name: "DEEP", SigmaArcsec: 0.1, Completeness: 0.98, Seed: 11},
			skyquery.SurveySpec{Name: "MID", SigmaArcsec: 0.2, Completeness: 0.6, Seed: 12},
			skyquery.SurveySpec{Name: "SPARSE", SigmaArcsec: 0.4, Completeness: 0.15, Seed: 13},
		),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer fed.Close()

	const query = `
		SELECT d.object_id, m.object_id, s.object_id
		FROM DEEP:PhotoObject d, MID:PhotoObject m, SPARSE:PhotoObject s
		WHERE AREA(185.0, -0.5, 900) AND XMATCH(d, m, s) < 3.5`

	// 1. Show the plan the optimizer builds.
	p, err := fed.BuildPlan(context.Background(), query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Count-star performance query results and chain (call order):")
	fmt.Println("  ", p)
	fmt.Println()
	fmt.Println("Execution unwinds from the end of the list: the smallest")
	fmt.Println("archive seeds the chain, so partial results start small.")
	fmt.Println()

	// 2. Measure the optimizer's choice.
	fed.Transport.Reset()
	res, err := fed.Query(context.Background(), query)
	if err != nil {
		log.Fatal(err)
	}
	optimized := fed.Transport.Stats()

	// 3. Compare with the pull-to-portal strategy the paper rejects.
	fed.Transport.Reset()
	if _, err := fed.PullQuery(context.Background(), query); err != nil {
		log.Fatal(err)
	}
	pull := fed.Transport.Stats()

	fmt.Printf("%d matches either way. Bytes on the wire:\n", res.NumRows())
	fmt.Printf("  daisy chain (count-star order): %8d bytes in %d requests\n",
		optimized.Total(), optimized.Requests)
	fmt.Printf("  pull-to-portal baseline:        %8d bytes in %d requests\n",
		pull.Total(), pull.Requests)
	if pull.Total() > optimized.Total() {
		fmt.Printf("  -> the chain ships %.1fx less data\n",
			float64(pull.Total())/float64(optimized.Total()))
	}
}
