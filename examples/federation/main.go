// Federation: Figure 1 end to end, assembled by hand — build two archive
// databases with the storage API, wrap each in a SkyNode behind a real
// HTTP endpoint, register them with the Portal through the SOAP
// Registration service, and query through the SOAP SkyQuery service like
// a remote astronomer would.
//
//	go run ./examples/federation
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"skyquery"
)

// buildArchive creates a hand-made archive: n objects scattered around
// (ra0, dec0) with per-object positional noise sigma (arcsec).
func buildArchive(name string, n int, sigma float64, seed int64) (*skyquery.DB, error) {
	db := skyquery.NewDB()
	tab, err := db.Create("Sources", skyquery.Schema{
		{Name: "src_id", Type: skyquery.IntType},
		{Name: "ra", Type: skyquery.FloatType},
		{Name: "dec", Type: skyquery.FloatType},
		{Name: "mag", Type: skyquery.FloatType},
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		// A shared grid of true positions so the two archives overlap.
		ra := 185.0 + float64(i%40)*0.002
		dec := -0.5 + float64(i/40)*0.002
		ra += rng.NormFloat64() * skyquery.Arcsec(sigma)
		dec += rng.NormFloat64() * skyquery.Arcsec(sigma)
		row, err := skyquery.Values(i, ra, dec, 15+rng.Float64()*5)
		if err != nil {
			return nil, err
		}
		if err := tab.Append(row...); err != nil {
			return nil, err
		}
	}
	if err := tab.EnableSpatial(skyquery.SpatialConfig{RACol: "ra", DecCol: "dec"}); err != nil {
		return nil, err
	}
	return db, nil
}

func main() {
	dbA, err := buildArchive("OPTICAL", 800, 0.1, 1)
	if err != nil {
		log.Fatal(err)
	}
	dbB, err := buildArchive("INFRARED", 800, 0.3, 2)
	if err != nil {
		log.Fatal(err)
	}

	fed, err := skyquery.LaunchWith(
		// Hand-built archives only: attaching nodes suppresses the
		// default generated surveys.
		skyquery.WithNodes(
			skyquery.NodeSpec{Name: "OPTICAL", DB: dbA, PrimaryTable: "Sources",
				RACol: "ra", DecCol: "dec", SigmaArcsec: 0.1},
			skyquery.NodeSpec{Name: "INFRARED", DB: dbB, PrimaryTable: "Sources",
				RACol: "ra", DecCol: "dec", SigmaArcsec: 0.3},
		),
		skyquery.WithRecordedCalls(),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer fed.Close()

	fmt.Println("Federation members:", fed.Portal.Archives())
	for _, e := range fed.Portal.Registry().List() {
		fmt.Printf("  %-9s %s  (sigma=%s\", objects=%s)\n",
			e.Name, e.Endpoint, e.Metadata["sigmaArcsec"], e.Metadata["objectCount"])
	}

	// Query through the SOAP client — the full web-service path.
	c := fed.Client()
	res, err := c.Query(context.Background(), `
		SELECT a.src_id, a.mag, b.src_id, b.mag
		FROM OPTICAL:Sources a, INFRARED:Sources b
		WHERE AREA(185.04, -0.48, 600) AND XMATCH(a, b) < 3.0 AND a.mag < 18`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d bright optical sources with infrared counterparts\n", res.NumRows())

	fmt.Println("\nSOAP calls on the wire:")
	for _, call := range fed.Transport.Calls() {
		fmt.Printf("  %-32s -> %5d B out, %6d B in\n", call.Action, call.BytesSent, call.BytesReceived)
	}
}
