// Dropout: the XMATCH drop-out (anti-join) semantics of §5.2 — find
// optical/infrared matches that have NO radio counterpart, the "!P"
// specification of the paper's Figure 2.
//
// Astronomically: objects detected by SDSS and 2MASS but invisible to the
// FIRST radio survey — which is most of them, since the synthetic FIRST
// archive only detects half the sky's bodies.
//
//	go run ./examples/dropout
package main

import (
	"context"
	"fmt"
	"log"

	"skyquery"
)

func main() {
	fed, err := skyquery.LaunchWith(skyquery.WithBodies(1500))
	if err != nil {
		log.Fatal(err)
	}
	defer fed.Close()

	both := `
		SELECT O.object_id, T.object_id
		FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T, FIRST:PhotoObject P
		WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T, P) < 3.5`
	radioQuiet := `
		SELECT O.object_id, T.object_id
		FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T, FIRST:PhotoObject P
		WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T, !P) < 3.5`
	pairOnly := `
		SELECT O.object_id, T.object_id
		FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
		WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T) < 3.5`

	all, err := fed.Query(context.Background(), pairOnly)
	if err != nil {
		log.Fatal(err)
	}
	loud, err := fed.Query(context.Background(), both)
	if err != nil {
		log.Fatal(err)
	}
	quiet, err := fed.Query(context.Background(), radioQuiet)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("XMATCH drop-out semantics (Figure 2):")
	fmt.Printf("  XMATCH(O, T)      -> %4d optical+infrared pairs\n", all.NumRows())
	fmt.Printf("  XMATCH(O, T, P)   -> %4d ... also seen in radio\n", loud.NumRows())
	fmt.Printf("  XMATCH(O, T, !P)  -> %4d ... radio-quiet (drop-out)\n", quiet.NumRows())
	fmt.Println()

	// The partition property: pairs = with-P + without-P (up to boundary
	// effects where a radio source sits just outside its tuple's error
	// bound — with one field, the two branches partition the pairs).
	if loud.NumRows()+quiet.NumRows() == all.NumRows() {
		fmt.Println("Partition check: matches(O,T) == matches(O,T,P) + matches(O,T,!P) ✓")
	} else {
		fmt.Printf("Partition: %d + %d vs %d (tuples whose P veto depends on pair geometry)\n",
			loud.NumRows(), quiet.NumRows(), all.NumRows())
	}
}
