package skyquery

import (
	"context"
	"strings"
	"testing"
	"time"

	"skyquery/internal/value"
)

const testQuery = `
	SELECT O.object_id, T.object_id
	FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T, FIRST:PhotoObject P
	WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T, !P) < 3.5
	AND O.type = 'GALAXY'`

func launch(t *testing.T, opts Options) *Federation {
	t.Helper()
	f, err := Launch(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestLaunchDefaults(t *testing.T) {
	f := launch(t, Options{Bodies: 300})
	if len(f.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(f.Nodes))
	}
	if f.PortalURL == "" || !strings.HasPrefix(f.PortalURL, "http://127.0.0.1:") {
		t.Errorf("portal url = %q", f.PortalURL)
	}
	got := f.Portal.Archives()
	if len(got) != 3 {
		t.Errorf("archives = %v", got)
	}
}

func TestQueryPaperExample(t *testing.T) {
	f := launch(t, Options{Bodies: 400})
	res, err := f.Query(context.Background(), testQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() == 0 {
		t.Error("paper-style query returned nothing")
	}
	if len(res.Columns) != 2 {
		t.Errorf("columns = %v", res.Columns)
	}
	if res.Columns[0].Name != "O.object_id" {
		t.Errorf("column 0 = %q", res.Columns[0].Name)
	}
}

func TestClientSOAPPath(t *testing.T) {
	f := launch(t, Options{Bodies: 300})
	c := f.Client()
	res, err := c.Query(context.Background(), testQuery)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := f.Query(context.Background(), testQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != direct.NumRows() {
		t.Errorf("SOAP rows = %d, direct = %d", res.NumRows(), direct.NumRows())
	}
	// The transport must have observed traffic.
	if f.Transport.Stats().Total() == 0 {
		t.Error("transport saw no bytes")
	}
}

func TestChainVsPullAgreement(t *testing.T) {
	f := launch(t, Options{Bodies: 300})
	chain, err := f.Query(context.Background(), testQuery)
	if err != nil {
		t.Fatal(err)
	}
	pull, err := f.PullQuery(context.Background(), testQuery)
	if err != nil {
		t.Fatal(err)
	}
	if chain.NumRows() != pull.NumRows() {
		t.Errorf("chain = %d rows, pull = %d rows", chain.NumRows(), pull.NumRows())
	}
}

func TestBuildPlanExposed(t *testing.T) {
	f := launch(t, Options{Bodies: 200})
	p, err := f.BuildPlan(context.Background(), testQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 3 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	if !p.Steps[0].DropOut {
		t.Errorf("drop-out not first: %s", p)
	}
}

func TestCustomNodeSpec(t *testing.T) {
	db := NewDB()
	tab, err := db.Create("Objects", Schema{
		{Name: "id", Type: value.IntType},
		{Name: "ra", Type: value.FloatType},
		{Name: "dec", Type: value.FloatType},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		row, err := Values(i, 185.0+float64(i)*0.001, -0.5)
		if err != nil {
			t.Fatal(err)
		}
		if err := tab.Append(row...); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.EnableSpatial(SpatialConfig{RACol: "ra", DecCol: "dec"}); err != nil {
		t.Fatal(err)
	}
	f := launch(t, Options{
		Surveys: []SurveySpec{{Name: "SDSS", SigmaArcsec: 0.1, Completeness: 1, Seed: 7}},
		Bodies:  100,
		Nodes: []NodeSpec{{
			Name: "CUSTOM", DB: db, PrimaryTable: "Objects",
			RACol: "ra", DecCol: "dec", SigmaArcsec: 0.3,
		}},
	})
	res, err := f.Query(context.Background(), `SELECT c.id FROM CUSTOM:Objects c, SDSS:PhotoObject s
		WHERE AREA(185.0, -0.5, 900) AND XMATCH(c, s) < 3.5`)
	if err != nil {
		t.Fatal(err)
	}
	_ = res // matches depend on random overlap; the call itself must work
}

func TestWANShaping(t *testing.T) {
	f := launch(t, Options{
		Bodies:     100,
		WANLatency: 5 * time.Millisecond,
	})
	start := time.Now()
	if _, err := f.Query(context.Background(), testQuery); err != nil {
		t.Fatal(err)
	}
	// At least registration + perf queries + chain calls each paid 5ms.
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("elapsed %v: latency shaping seems inactive", elapsed)
	}
	if f.Transport.Stats().SimulatedWait == 0 {
		t.Error("no simulated wait recorded")
	}
}

func TestValuesConversion(t *testing.T) {
	row, err := Values(1, int64(2), 2.5, "x", true, nil, value.Int(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != 7 || row[5].Type() != value.NullType || row[6].AsInt() != 9 {
		t.Errorf("row = %v", row)
	}
	if _, err := Values(struct{}{}); err == nil {
		t.Error("unsupported type accepted")
	}
	if !strings.Contains((&UnsupportedValueError{Index: 3, Value: struct{}{}}).Error(), "index 3") {
		t.Error("error message missing index")
	}
}

func TestCloseIdempotent(t *testing.T) {
	f := launch(t, Options{Bodies: 50, Surveys: DefaultSurveys()[:1]})
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWSDLServedOnAllEndpoints(t *testing.T) {
	f := launch(t, Options{Bodies: 50, Surveys: DefaultSurveys()[:1]})
	urls := []string{f.PortalURL}
	for _, u := range f.NodeURLs {
		urls = append(urls, u)
	}
	for _, u := range urls {
		resp, err := f.Transport.Client().Get(u + "?wsdl")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1<<16)
		n, _ := resp.Body.Read(buf)
		resp.Body.Close()
		if !strings.Contains(string(buf[:n]), "<definitions") {
			t.Errorf("endpoint %s served no WSDL", u)
		}
	}
}
