// Package skyquery is a from-scratch reproduction of "SkyQuery: A Web
// Service Approach to Federate Databases" (Malik, Szalay, Budavari,
// Thakar): a federation of autonomous astronomy archives that answers
// probabilistic federated spatial join ("cross match") queries through
// SOAP web services over HTTP.
//
// The package is a facade over the internal engine. It lets you:
//
//   - launch a complete in-process federation (Portal + SkyNodes served on
//     loopback HTTP) over synthetic sky surveys with Launch;
//
//   - attach hand-built archives via NodeSpec and the storage API
//     (NewDB, Schema, ...);
//
//   - submit cross-match queries in the paper's dialect:
//
//     SELECT O.object_id, T.object_id
//     FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T, FIRST:PhotoObject P
//     WHERE AREA(185.0, -0.5, 900)
//     AND XMATCH(O, T, !P) < 3.5
//     AND O.type = 'GALAXY' AND (O.flux - T.flux) > 2
//
//   - talk to a remote Portal with Dial;
//
//   - run the pull-to-portal baseline and inspect execution plans, for
//     the experiments in EXPERIMENTS.md.
//
// # Contexts, options, errors
//
// Every public query entry point is context-first: cancelling the
// context aborts the in-flight federation work and promptly releases
// server-side resources (admission slots, parked chunk transfers).
// Federations are configured with functional options
// (LaunchWith(WithBodies(2000), WithShards(8), ...)); clients with
// Dial(url, WithClientCodec(...), ...). Failures surface as typed,
// root-exported errors: *ParseError (line/column + syntax-vs-semantic
// category), *ErrOverloaded (retryable admission shed), *StreamError
// (mid-stream federation failure — never a silently truncated result).
//
// # Sharding
//
// An archive may be partitioned by HTM trixel ranges across N shards,
// each with follower replicas (Options.Shards/Replicas, or the daemons'
// -shard/-replica-of flags). Queries scatter to only the shards whose
// trixel ranges intersect the query cover, prefer followers, and fail
// over on error; results are bit-identical at every shard count. See
// docs/FEDERATION.md.
//
// # Parallelism
//
// Each node's cross-match chain step (§5.3) partitions its partial tuples
// across a bounded worker pool; per-worker output is merged in input
// order, so results are bit-identical at every setting. The worker count
// is Options.Parallelism (and, underneath, portal.Config.Parallelism as a
// plan-carried hint plus skynode.Config.Parallelism as each node's
// override; the daemons expose it as -parallelism). 0 means GOMAXPROCS;
// 1 recovers the sequential executor.
//
// # Compiled expressions
//
// Every SQL expression the pipeline evaluates per row — storage scan
// predicates and projections, the chain steps' local and cross-archive
// predicates, and the Portal's final projection — is compiled once at
// plan time (internal/eval.Compile): column references resolve to integer
// slots of a tuple layout, function names and arities are checked,
// constant subtrees fold, and constant LIKE patterns turn into
// precompiled matchers. The resulting closure-tree program evaluates with
// no maps, no string lookups, and no per-row allocation, so each worker's
// inner loop costs slot reads plus the arithmetic itself. A consequence
// visible to clients: a bad predicate (unknown column, unknown function,
// wrong arity) is reported when the plan or chain step is built, before
// any data is scanned, instead of surfacing from the first row that
// happens to reach it. The tree-walking interpreter (internal/eval.Eval)
// remains the reference semantics; differential tests and a fuzz target
// hold the two paths to identical values and errors.
package skyquery

import (
	"fmt"

	"skyquery/internal/client"
	"skyquery/internal/dataset"
	"skyquery/internal/nettrace"
	"skyquery/internal/plan"
	"skyquery/internal/sphere"
	"skyquery/internal/storage"
	"skyquery/internal/survey"
	"skyquery/internal/value"
)

// Result is a query result set: typed columns plus rows of values.
type Result = dataset.DataSet

// Column describes one column of a Result.
type Column = dataset.Column

// Value is a dynamically typed SQL value.
type Value = value.Value

// ValueType enumerates SQL value types.
type ValueType = value.Type

// Column type constants for building schemas.
const (
	NullType   = value.NullType
	IntType    = value.IntType
	FloatType  = value.FloatType
	StringType = value.StringType
	BoolType   = value.BoolType
)

// Plan is a federated execution plan (exposed for inspection and the
// optimizer experiments).
type Plan = plan.Plan

// DB is an embedded archive database (the storage engine each SkyNode
// wraps).
type DB = storage.DB

// Schema describes the columns of a table.
type Schema = storage.Schema

// ColumnDef is one column definition of a Schema.
type ColumnDef = storage.ColumnDef

// SpatialConfig designates a table's position columns for HTM indexing.
type SpatialConfig = storage.SpatialConfig

// SurveySpec configures one synthetic sky survey (see internal/survey).
type SurveySpec = survey.Config

// Field is a synthetic population of true astronomical bodies.
type Field = survey.Field

// Transport is the instrumented HTTP transport used to count bytes on the
// wire and simulate WAN latency/bandwidth.
type Transport = nettrace.Transport

// TransportStats is a snapshot of Transport counters.
type TransportStats = nettrace.Stats

// Cap is a circular sky region.
type Cap = sphere.Cap

// NewDB returns an empty archive database.
func NewDB() *DB { return storage.NewDB() }

// NewCap returns the circular region centered at (ra, dec) degrees with
// the given radius in degrees.
func NewCap(ra, dec, radiusDeg float64) Cap { return sphere.NewCap(ra, dec, radiusDeg) }

// Arcsec converts arc seconds to degrees.
func Arcsec(a float64) float64 { return sphere.Arcsec(a) }

// ToArcsec converts degrees to arc seconds.
func ToArcsec(deg float64) float64 { return sphere.ToArcsec(deg) }

// GenerateField draws n true bodies uniformly inside the region;
// galaxyFrac of them are galaxies. Deterministic in seed.
func GenerateField(region Cap, n int, galaxyFrac float64, seed int64) *Field {
	return survey.GenerateField(region, n, galaxyFrac, seed)
}

// SurveyTableName is the primary-table name of generated synthetic
// archives.
const SurveyTableName = survey.TableName

// Client talks to a (possibly remote) Portal over SOAP.
type Client = client.Client

// Rows is a streaming row iterator over a query result (see
// Client.QueryRows): rows are yielded as the federation produces them,
// before the last chunk of the transfer exists.
type Rows = client.Rows

// Dial returns a client for the Portal at the given SOAP endpoint URL,
// configured by any DialOptions (see options.go).
func Dial(portalURL string, opts ...DialOption) *Client {
	c := client.New(portalURL)
	for _, apply := range opts {
		apply(c)
	}
	return c
}

// Values builds a row of values from Go primitives: int/int64 become INT,
// float64 FLOAT, string STRING, bool BOOL, nil NULL.
func Values(vals ...interface{}) ([]Value, error) {
	out := make([]Value, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case nil:
			out[i] = value.Null
		case int:
			out[i] = value.Int(int64(x))
		case int64:
			out[i] = value.Int(x)
		case float64:
			out[i] = value.Float(x)
		case string:
			out[i] = value.String(x)
		case bool:
			out[i] = value.Bool(x)
		case Value:
			out[i] = x
		default:
			return nil, &UnsupportedValueError{Index: i, Value: v}
		}
	}
	return out, nil
}

// UnsupportedValueError reports a Go value Values could not convert.
type UnsupportedValueError struct {
	Index int
	Value interface{}
}

// Error implements the error interface.
func (e *UnsupportedValueError) Error() string {
	return fmt.Sprintf("skyquery: unsupported value type %T at index %d", e.Value, e.Index)
}
