package skyquery

// Failure-injection tests: the federation is distributed, so mid-chain
// node failures, oversized messages, and concurrent clients are part of
// the contract.

import (
	"context"
	"strings"
	"sync"
	"testing"

	"skyquery/internal/portal"
	"skyquery/internal/skynode"
	"skyquery/internal/soap"
	"skyquery/internal/value"
)

func TestNodeDeathMidChainSurfacesError(t *testing.T) {
	// A mid-chain node dies (its endpoint becomes unreachable after
	// planning): the chain must fail loudly, not hang or return partial
	// results.
	f := launch(t, Options{Bodies: 300})
	p, err := f.BuildPlan(context.Background(), testQuery)
	if err != nil {
		t.Fatal(err)
	}
	sabotaged := ""
	for i := range p.Steps {
		// Kill a node that is neither first (the portal would fail before
		// any chain work) nor last (the seed).
		if i == 1 {
			sabotaged = p.Steps[i].Archive
			p.Steps[i].Endpoint = "http://127.0.0.1:1/dead"
		}
	}
	if err := execPlan(f, p); err == nil {
		t.Fatal("chain with a dead node should fail")
	} else if !strings.Contains(err.Error(), sabotaged) {
		t.Errorf("error does not identify the dead node %s: %v", sabotaged, err)
	}
}

// execPlan kicks off a plan at its first step's node over SOAP.
func execPlan(f *Federation, p *Plan) error {
	c := &soap.Client{HTTPClient: f.Transport.Client()}
	var first soap.ChunkedData
	if err := c.Call(context.Background(), p.Steps[0].Endpoint, skynode.ActionCrossMatch,
		&skynode.CrossMatchRequest{Plan: *p}, &first); err != nil {
		return err
	}
	_, err := soap.FetchAll(context.Background(), c, p.Steps[0].Endpoint, &first)
	return err
}

func TestQueryAfterFederationClose(t *testing.T) {
	f, err := Launch(Options{Bodies: 100, Surveys: DefaultSurveys()[:2]})
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := f.Query(context.Background(), testQuery); err == nil {
		t.Error("query against a closed federation should fail")
	}
}

func TestConcurrentQueries(t *testing.T) {
	f := launch(t, Options{Bodies: 400})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	rowCounts := make(chan int, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := f.Query(context.Background(), testQuery)
			if err != nil {
				errs <- err
				return
			}
			rowCounts <- res.NumRows()
		}()
	}
	wg.Wait()
	close(errs)
	close(rowCounts)
	for err := range errs {
		t.Fatal(err)
	}
	var first = -1
	for n := range rowCounts {
		if first == -1 {
			first = n
		} else if n != first {
			t.Fatalf("concurrent queries disagree: %d vs %d", n, first)
		}
	}
	if first <= 0 {
		t.Fatal("no rows")
	}
}

func TestChunkedChainTransfers(t *testing.T) {
	// Force tiny chunks and make the buffered (non-streaming) SOAP call
	// an old client makes: the final relay must reassemble across many
	// Fetch calls. Streaming clients bypass this path — it is the
	// fallback wire, and it must keep working.
	const q = `
		SELECT O.object_id, T.object_id
		FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
		WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T) < 3.5`
	f := launch(t, Options{Bodies: 500, ChunkRows: 25, RecordCalls: true})
	sc := f.Client().SOAP
	var first soap.ChunkedData
	if err := sc.Call(context.Background(), f.PortalURL, portal.ActionSkyQuery, &portal.SkyQueryRequest{SQL: q}, &first); err != nil {
		t.Fatal(err)
	}
	res, err := soap.FetchAll(context.Background(), sc, f.PortalURL, &first)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() < 100 {
		t.Fatalf("rows = %d; fixture too small to exercise chunking", res.NumRows())
	}
	fetches := 0
	for _, call := range f.Transport.Calls() {
		if strings.HasSuffix(call.Action, ":Fetch") {
			fetches++
		}
	}
	if fetches < 5 {
		t.Errorf("only %d Fetch calls; chunking not exercised", fetches)
	}
	// Compare against an unchunked federation: same answer.
	f2 := launch(t, Options{Bodies: 500})
	res2, err := f2.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != res2.NumRows() {
		t.Errorf("chunked rows = %d, unchunked = %d", res.NumRows(), res2.NumRows())
	}
}

func TestMessageLimitKillsBigUnchunkedResult(t *testing.T) {
	// A federation whose servers accept only tiny messages but whose
	// chunking is disabled-ish (huge ChunkRows): the chain transfer must
	// fail with the parser-limit error, reproducing §6 before the
	// workaround existed.
	f, err := Launch(Options{
		Bodies:       800,
		MessageLimit: 16 << 10, // 16 KB "parser"
		ChunkRows:    1 << 20,  // effectively no chunking
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, err = f.Query(context.Background(), `
		SELECT O.object_id, T.object_id
		FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
		WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T) < 3.5`)
	if err == nil {
		t.Fatal("oversized unchunked transfer should fail")
	}
	if !strings.Contains(err.Error(), "exceeds the XML parser limit") {
		t.Errorf("err = %v", err)
	}
	// The same federation with sane chunking succeeds.
	f2, err := Launch(Options{
		Bodies:       800,
		MessageLimit: 16 << 10,
		ChunkRows:    50,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	res, err := f2.Query(context.Background(), `
		SELECT O.object_id, T.object_id
		FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
		WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T) < 3.5`)
	if err != nil {
		t.Fatalf("chunked transfer under the same limit failed: %v", err)
	}
	if res.NumRows() == 0 {
		t.Error("no rows")
	}
}

func TestEmptyAreaYieldsEmptyResult(t *testing.T) {
	f := launch(t, Options{Bodies: 200})
	// An AREA on the opposite side of the sky.
	res, err := f.Query(context.Background(), `
		SELECT O.object_id, T.object_id
		FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
		WHERE AREA(5.0, 0.5, 900) AND XMATCH(O, T) < 3.5`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 0 {
		t.Errorf("rows = %d, want 0", res.NumRows())
	}
	if len(res.Columns) != 2 {
		t.Errorf("empty result should still carry the schema: %v", res.Columns)
	}
}

func TestNullsSurviveTheChain(t *testing.T) {
	// An archive with NULL fluxes: values must survive the wire and
	// projection without being invented.
	db := NewDB()
	tab, err := db.Create("Obs", Schema{
		{Name: "id", Type: value.IntType},
		{Name: "ra", Type: value.FloatType},
		{Name: "dec", Type: value.FloatType},
		{Name: "flux", Type: value.FloatType},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		fluxVal := Value(value.Float(float64(i)))
		if i%2 == 0 {
			fluxVal = value.Null
		}
		if err := tab.Append(value.Int(int64(i)), value.Float(185.0+float64(i)*0.001),
			value.Float(-0.5), fluxVal); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.EnableSpatial(SpatialConfig{RACol: "ra", DecCol: "dec"}); err != nil {
		t.Fatal(err)
	}
	f := launch(t, Options{
		Surveys: []SurveySpec{{Name: "REF", SigmaArcsec: 0.2, Completeness: 1, Seed: 5}},
		Bodies:  50,
		Nodes: []NodeSpec{{Name: "NULLY", DB: db, PrimaryTable: "Obs",
			RACol: "ra", DecCol: "dec", SigmaArcsec: 0.2}},
	})
	res, err := f.Query(context.Background(), `SELECT n.id, n.flux FROM NULLY:Obs n, REF:PhotoObject r
		WHERE AREA(185.0, -0.5, 900) AND XMATCH(n, r) < 3.5`)
	if err != nil {
		t.Fatal(err)
	}
	sawNull, sawValue := false, false
	for _, row := range res.Rows {
		if row[1].IsNull() {
			sawNull = true
		} else {
			sawValue = true
		}
	}
	// Depending on random overlap we may not match all rows, but with a
	// dense reference survey both kinds should appear.
	if res.NumRows() > 4 && (!sawNull || !sawValue) {
		t.Errorf("null round trip suspicious: %d rows, null=%v value=%v",
			res.NumRows(), sawNull, sawValue)
	}
}
