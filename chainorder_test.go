package skyquery

// Differential chain-order suite: the three ordering regimes — the
// default cost-based order, the paper's pure count-probe rule
// (CountProbeOrder), and count-probe with mid-chain adaptive re-ordering
// under an injected throughput skew — must produce bit-identical result
// sets at every combination of chain parallelism {1, 4} and scan batch
// size {1, 3, 1024}. Chain order changes raw row order, so rows are
// compared canonically sorted; the cells themselves must match
// bit-for-bit (goldenCell encodes floats at 12 significant digits, same
// as the golden corpus).
//
// The adaptive run is proven non-vacuous: the injected skew (one node's
// path measured ~10^6x slower than the others) must trigger at least one
// xmatch.reorder event, or the test fails.

import (
	"context"
	"net/url"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"skyquery/internal/dataset"
	"skyquery/internal/eval"
	"skyquery/internal/nettrace"
)

// chainOrderCrossQuery has a drop-out archive and a cross predicate, so
// an adaptive re-order must also re-assign the predicate within the
// suffix.
const chainOrderCrossQuery = `
	SELECT O.object_id, T.object_id
	FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T, FIRST:PhotoObject P
	WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T, !P) < 3.5
	AND O.type = 'GALAXY' AND (O.flux - T.flux) < 1000.0`

// chainOrderMandatoryQuery is a three-way mandatory match: every archive
// contributes columns and any of the six orders must agree.
const chainOrderMandatoryQuery = `
	SELECT O.object_id, T.object_id, P.object_id
	FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T, FIRST:PhotoObject P
	WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T, P) < 3.5`

// canonicalEncode renders a result set with its rows sorted: the
// order-independent form the differential comparisons use.
func canonicalEncode(ds *dataset.DataSet) string {
	var hdr []string
	for _, c := range ds.Columns {
		hdr = append(hdr, c.Name+":"+c.Type.String())
	}
	lines := make([]string, 0, len(ds.Rows))
	for _, row := range ds.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = goldenCell(v)
		}
		lines = append(lines, strings.Join(cells, " | "))
	}
	sort.Strings(lines)
	return strings.Join(hdr, " | ") + "\n" + strings.Join(lines, "\n")
}

// endpointHostOf extracts the nettrace registry key from a node URL.
func endpointHostOf(t *testing.T, endpoint string) string {
	t.Helper()
	u, err := url.Parse(endpoint)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

func TestChainOrderDifferential(t *testing.T) {
	defer eval.SetBatchSize(eval.BatchSize())
	t.Cleanup(nettrace.ResetThroughput)

	queries := []struct{ name, sql string }{
		{"dropout-cross", chainOrderCrossQuery},
		{"mandatory", chainOrderMandatoryQuery},
	}
	batchSizes := []int{1, 3, eval.DefaultBatchSize}

	modes := []struct {
		name string
		opts Options
		skew bool
	}{
		// The paper-faithful count-probe order runs first and is the
		// reference every other configuration must reproduce.
		{name: "count-probe", opts: Options{CountProbeOrder: true}},
		{name: "cost-based", opts: Options{}},
		{name: "adaptive", opts: Options{CountProbeOrder: true, AdaptiveReorder: true}, skew: true},
	}

	ref := map[string]string{}
	for _, par := range []int{1, 4} {
		for _, m := range modes {
			var mu sync.Mutex
			reorders := 0
			opts := m.opts
			opts.Bodies = 400
			opts.Parallelism = par
			if m.skew {
				opts.NodeEvents = func(node, kind, detail string) {
					if kind == "xmatch.reorder" {
						mu.Lock()
						reorders++
						mu.Unlock()
					}
				}
			}
			nettrace.ResetThroughput()
			f := launch(t, opts)
			if m.skew {
				// Make SDSS's path look vastly slower than the others —
				// measured over enough bytes to clear the sampling floor
				// and far outside the noise band, so the chain nodes'
				// live costs must diverge from the count-probe plan's.
				nettrace.ResetThroughput()
				for name, u := range f.NodeURLs {
					host := endpointHostOf(t, u)
					if name == "SDSS" {
						nettrace.RecordTransfer(host, 1<<20, 1000*time.Second)
					} else {
						nettrace.RecordTransfer(host, 1<<30, time.Second)
					}
				}
			}
			for _, q := range queries {
				for _, bs := range batchSizes {
					eval.SetBatchSize(bs)
					res, err := f.Query(context.Background(), q.sql)
					if err != nil {
						t.Fatalf("mode %s par %d batch %d query %s: %v", m.name, par, bs, q.name, err)
					}
					if res.NumRows() == 0 {
						t.Fatalf("mode %s par %d batch %d query %s: no rows — differential is vacuous", m.name, par, bs, q.name)
					}
					got := canonicalEncode(res)
					if want, ok := ref[q.name]; !ok {
						ref[q.name] = got
					} else if got != want {
						t.Errorf("mode %s par %d batch %d query %s: canonical results diverge from the count-probe reference (%d rows vs %d)",
							m.name, par, bs, q.name, res.NumRows(), strings.Count(want, "\n"))
					}
				}
			}
			if m.skew {
				mu.Lock()
				n := reorders
				mu.Unlock()
				if n == 0 {
					t.Errorf("par %d: adaptive run under throughput skew triggered no xmatch.reorder — the adaptive differential is vacuous", par)
				}
			}
		}
	}
}
