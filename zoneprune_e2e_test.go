package skyquery

// End-to-end zone-map pruning assertions over the golden corpus queries:
// the all-NULL-column and zero-selectivity golden queries must reach the
// node's storage engine and be answered from zone maps alone — zero
// predicate rows evaluated, at least one block pruned — at every scan
// batch size. (Their result correctness is pinned by the golden corpus;
// this test pins that the work was never done.)

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"skyquery/internal/eval"
	"skyquery/internal/storage"
)

func TestZoneMapPruningEndToEnd(t *testing.T) {
	f := launch(t, Options{Bodies: 400})
	defer eval.SetBatchSize(eval.BatchSize())
	for _, bs := range []int{1, 3, eval.DefaultBatchSize} {
		eval.SetBatchSize(bs)
		for _, file := range []string{"10_allnull_flags.sql", "11_zero_blocks.sql"} {
			sql, err := os.ReadFile(filepath.Join("testdata", "queries", file))
			if err != nil {
				t.Fatal(err)
			}
			rowsBefore := storage.PredRowsEvaluated()
			prunedBefore := storage.ZoneBlocksPruned()
			res, err := f.Query(context.Background(), string(sql))
			if err != nil {
				t.Fatalf("%s (batch %d): %v", file, bs, err)
			}
			if res.NumRows() != 0 {
				t.Fatalf("%s (batch %d): %d rows, want 0", file, bs, res.NumRows())
			}
			if d := storage.PredRowsEvaluated() - rowsBefore; d != 0 {
				t.Errorf("%s (batch %d): evaluated predicate columns for %d rows, want 0 (zone maps should prune every block)", file, bs, d)
			}
			if storage.ZoneBlocksPruned() == prunedBefore {
				t.Errorf("%s (batch %d): no blocks pruned", file, bs)
			}
		}
	}
}
