package skyquery

// Scale-out federation e2e: the golden corpus must be bit-identical at
// every shard count — sharding an archive by trixel ranges is an
// execution detail, never a semantics change — and the federation must
// degrade, not fail, when replicas die.
//
//   - TestShardedGoldenCorpus: corpus × shard counts {2, 8} × par {1, 4}
//     × batch {1, 3, 1024} against the same checked-in goldens the
//     unsharded federation (TestGoldenQueryCorpus, shard count 1) pins.
//   - TestShardedGoldenCorpusDegraded: the corpus again with a replica
//     killed mid-query — answers still bit-identical, failover logged.
//   - TestShardFollowerServesWhenLeaderDown: the failover satellite — a
//     query whose shard leaders are dead is served by the followers.
//   - TestShardScatterPrunes: nettrace-counter proof that a query whose
//     cover intersects a subset of trixel ranges never calls the other
//     shards.
//   - TestWriteBenchShardJSON: flag-gated shard_scaleout entry (qps vs
//     shard count) merged into BENCH_scan.json.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"skyquery/internal/eval"
	"skyquery/internal/htm"
)

// goldenQueries returns the corpus files sorted by name.
func goldenQueries(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "queries", "*.sql"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden queries found: %v", err)
	}
	sort.Strings(files)
	return files
}

// runCorpus runs every corpus query and diffs against the goldens.
func runCorpus(t *testing.T, f *Federation, files []string, label string) {
	t.Helper()
	for _, file := range files {
		sql, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(strings.TrimSuffix(file, ".sql") + ".golden")
		if err != nil {
			t.Fatalf("%s: missing golden: %v", file, err)
		}
		res, err := f.Query(context.Background(), string(sql))
		if err != nil {
			t.Errorf("%s/%s: query failed: %v", label, filepath.Base(file), err)
			continue
		}
		if got := goldenEncode(res); got != string(want) {
			t.Errorf("%s/%s: sharded result diverges from golden\ngot:\n%s\nwant:\n%s",
				label, filepath.Base(file), got, want)
		}
	}
}

func TestShardedGoldenCorpus(t *testing.T) {
	files := goldenQueries(t)
	defer eval.SetBatchSize(eval.DefaultBatchSize)
	for _, shards := range []int{2, 8} {
		for _, par := range []int{1, 4} {
			f := launch(t, Options{Bodies: 400, Parallelism: par, Shards: shards})
			for _, bs := range []int{1, 3, eval.DefaultBatchSize} {
				eval.SetBatchSize(bs)
				runCorpus(t, f, files, fmt.Sprintf("shards=%d/par=%d/batch=%d", shards, par, bs))
			}
			f.Close()
		}
	}
}

func TestShardedGoldenCorpusDegraded(t *testing.T) {
	files := goldenQueries(t)

	var mu sync.Mutex
	var failovers []string
	f := launch(t, Options{
		Bodies: 400, Shards: 2, Replicas: 1, RecordCalls: true,
		PortalEvents: func(kind, detail string) {
			if kind == "shard.failover" {
				mu.Lock()
				failovers = append(failovers, detail)
				mu.Unlock()
			}
		},
	})

	// Kill one replica mid-query: a watcher waits until the victim has
	// served at least one call of the in-flight query, then cuts it.
	// Queries prefer followers, so the SDSS shard-0 follower is on the
	// hot path; its remaining calls fail over to the leader.
	victim := "SDSS/0/r1"
	victimURL := f.NodeURLs[victim]
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			for _, c := range f.Transport.Calls() {
				if strings.HasPrefix(c.URL, victimURL) {
					f.KillNode(victim)
					return
				}
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	runCorpus(t, f, files, "degraded/mid-query")
	<-killed

	// The dead replica must have been discovered and failed over, and
	// with it still dead the whole corpus must keep answering golden.
	mu.Lock()
	n := len(failovers)
	mu.Unlock()
	if n == 0 {
		t.Error("no shard.failover events — the killed replica was never on the query path")
	}
	runCorpus(t, f, files, "degraded/steady-state")
}

func TestShardFollowerServesWhenLeaderDown(t *testing.T) {
	var mu sync.Mutex
	var failovers []string
	f := launch(t, Options{
		Bodies: 300, Shards: 2, Replicas: 1,
		PortalEvents: func(kind, detail string) {
			if kind == "shard.failover" {
				mu.Lock()
				failovers = append(failovers, detail)
				mu.Unlock()
			}
		},
	})
	want, err := f.Query(context.Background(), testQuery)
	if err != nil {
		t.Fatal(err)
	}
	// Kill every SDSS shard leader; the followers must carry the query.
	for _, key := range []string{"SDSS/0", "SDSS/1"} {
		if err := f.KillNode(key); err != nil {
			t.Fatal(err)
		}
	}
	got, err := f.Query(context.Background(), testQuery)
	if err != nil {
		t.Fatalf("query with dead leaders: %v", err)
	}
	if goldenEncode(got) != goldenEncode(want) {
		t.Error("follower-served result diverges from the pre-kill result")
	}
}

func TestShardScatterPrunes(t *testing.T) {
	const shards = 8
	f := launch(t, Options{Bodies: 400, Shards: shards, RecordCalls: true})

	m := f.Portal.Registry().ShardMap("SDSS")
	if m == nil || len(m.Shards) != shards {
		t.Fatalf("SDSS shard map = %+v, want %d shards", m, shards)
	}

	// A 60-arcsecond cover inside the quarter-degree field intersects a
	// strict subset of the 8 trixel ranges. Mirror the router's math to
	// compute which shards are allowed to see traffic.
	const query = `SELECT COUNT(*) FROM SDSS:PhotoObject O WHERE AREA(185.0, -0.5, 60)`
	cap := NewCap(185.0, -0.5, 60.0/3600.0)
	sub := htm.LevelForRadius(cap.Radius)
	if sub > m.Level {
		sub = m.Level
	}
	ranges := htm.CoverCap(cap, sub, m.Level).Ranges()
	allowed := map[int]bool{}
	for _, sh := range m.Shards {
		for _, r := range ranges {
			if uint64(r.Lo) <= sh.Range.Hi && sh.Range.Lo <= uint64(r.Hi) {
				allowed[sh.Index] = true
				break
			}
		}
	}
	if len(allowed) == 0 || len(allowed) == shards {
		t.Fatalf("degenerate cover: intersects %d of %d shards", len(allowed), shards)
	}

	// Baseline the answer against the unsharded federation.
	f1 := launch(t, Options{Bodies: 400})
	want, err := f1.Query(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	f.Transport.Reset()
	got, err := f.Query(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	if goldenEncode(got) != goldenEncode(want) {
		t.Errorf("pruned scatter answer diverges: %s vs %s", goldenEncode(got), goldenEncode(want))
	}

	// Per-host call counters: zero calls to every non-intersecting shard.
	calls := map[string]int{}
	for _, c := range f.Transport.Calls() {
		calls[c.URL] += 1
	}
	pruned := 0
	for k := 0; k < shards; k++ {
		url := f.NodeURLs[fmt.Sprintf("SDSS/%d", k)]
		n := 0
		for u, c := range calls {
			if strings.HasPrefix(u, url) {
				n += c
			}
		}
		if allowed[k] {
			if n == 0 {
				t.Errorf("shard %d intersects the cover but saw no calls", k)
			}
			continue
		}
		if n != 0 {
			t.Errorf("shard %d does not intersect the cover but saw %d call(s)", k, n)
		}
		pruned++
	}
	if pruned == 0 {
		t.Error("no shard was pruned")
	}
}

var benchShardJSON = flag.String("bench-shard-json", "", "merge the shard scale-out benchmark into this BENCH_scan.json")

// TestWriteBenchShardJSON (flag-gated) merges the shard scale-out
// measurement into BENCH_scan.json as shard_scaleout:
//
//	go test . -run TestWriteBenchShardJSON -bench-shard-json "$(pwd)/BENCH_scan.json"
func TestWriteBenchShardJSON(t *testing.T) {
	if *benchShardJSON == "" {
		t.Skip("pass -bench-shard-json=PATH (an existing BENCH_scan.json) to record the shard scale-out drill")
	}
	raw, err := os.ReadFile(*benchShardJSON)
	if err != nil {
		t.Fatalf("the eval trajectory must be written first (TestWriteBenchScanJSON): %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parsing %s: %v", *benchShardJSON, err)
	}

	const rounds = 6
	results := map[string]any{}
	for _, shards := range []int{1, 2, 8} {
		f := launch(t, Options{Bodies: 2000, Shards: shards})
		if _, err := f.Query(context.Background(), testQuery); err != nil { // warm plans + stats
			t.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if _, err := f.Query(context.Background(), testQuery); err != nil {
				t.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		qps := float64(rounds) / elapsed.Seconds()
		results[fmt.Sprintf("shards_%d", shards)] = map[string]any{
			"qps":          qps,
			"ms_per_query": elapsed.Seconds() * 1000 / rounds,
		}
		f.Close()
		t.Logf("shards=%d: %.1f qps", shards, qps)
	}
	doc["shard_scaleout"] = map[string]any{
		"benchmark": "paper cross-match over a 2000-body federation, in-process loopback; qps vs trixel-range shard count",
		"result":    results,
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*benchShardJSON, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}
