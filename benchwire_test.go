package skyquery

// The wire slice of the benchmark trajectory, and the serving-path load
// proofs:
//
//   - TestWireCodecSpeedup (always on): the binary columnar codec must
//     beat the XML codec by >= 3x on a 10k-row encode+decode round trip.
//   - TestSustainedConcurrentLoad (always on): 256 concurrent clients
//     against an admission-controlled federation — every query completes
//     (queueing and retries absorb the overload), and the heap stays
//     bounded.
//   - TestWriteBenchWireJSON (flag-gated): merges wire_codec and
//     concurrent_load entries into BENCH_scan.json:
//
//	go test . -run TestWriteBenchWireJSON -bench-wire-json "$(pwd)/BENCH_scan.json"
//
//   - TestWirePerfGate (flag-gated, CI): re-measures the codecs and fails
//     when columnar throughput regresses >15% against the checked-in
//     trajectory, or the 3x claim stops holding:
//
//	go test . -run TestWirePerfGate -wire-gate-baseline "$(pwd)/BENCH_scan.json" -v

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"skyquery/internal/dataset"
	"skyquery/internal/value"
)

var (
	benchWireJSON    = flag.String("bench-wire-json", "", "merge the wire codec + concurrent load benchmarks into this BENCH_scan.json")
	wireGateBaseline = flag.String("wire-gate-baseline", "", "fail if columnar wire throughput regresses vs this BENCH_scan.json")
)

// benchWireRows is the canonical row count of the codec measurement.
const benchWireRows = 10000

// benchWireDataSet builds the canonical 10k-row mixed-type result set.
func benchWireDataSet() *dataset.DataSet {
	d := dataset.New(
		dataset.Column{Name: "object_id", Type: value.IntType},
		dataset.Column{Name: "ra", Type: value.FloatType},
		dataset.Column{Name: "dec", Type: value.FloatType},
		dataset.Column{Name: "type", Type: value.StringType},
		dataset.Column{Name: "flag", Type: value.BoolType},
	)
	for i := 0; i < benchWireRows; i++ {
		typ := value.String("GALAXY")
		if i%3 == 0 {
			typ = value.String("STAR")
		}
		row := []value.Value{
			value.Int(int64(i)),
			value.Float(185 + float64(i)/77777),
			value.Float(-0.5 + float64(i)/99999),
			typ,
			value.Bool(i%7 == 0),
		}
		if i%11 == 5 {
			row[4] = value.Null
		}
		d.Append(row)
	}
	return d
}

// wireCodecResult is one codec's encode+decode measurement.
type wireCodecResult struct {
	NsPerOp int64   `json:"encode_decode_ns_per_op"`
	Bytes   int     `json:"encoded_bytes"`
	MBPerS  float64 `json:"mb_per_s"`
}

// measureWireCodecs times the full encode+decode round trip of the
// canonical data set through both codecs and reports throughput over
// the encoded bytes.
func measureWireCodecs(t testing.TB) (xmlRes, colRes wireCodecResult) {
	d := benchWireDataSet()

	timeIt := func(op func()) int64 {
		op() // warm up (allocator, code paths)
		const minRounds, minTime = 3, 200 * time.Millisecond
		var rounds int
		start := time.Now()
		for rounds = 0; rounds < minRounds || time.Since(start) < minTime; rounds++ {
			op()
		}
		return time.Since(start).Nanoseconds() / int64(rounds)
	}

	xmlRes.Bytes = d.XMLSize()
	xmlRes.NsPerOp = timeIt(func() {
		var buf bytes.Buffer
		if err := d.EncodeXML(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := dataset.DecodeXML(&buf); err != nil {
			t.Fatal(err)
		}
	})

	colRes.Bytes = d.ColumnarSize()
	colRes.NsPerOp = timeIt(func() {
		var buf bytes.Buffer
		if err := d.EncodeColumnar(&buf, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := dataset.DecodeColumnar(&buf); err != nil {
			t.Fatal(err)
		}
	})

	mbps := func(r wireCodecResult) float64 {
		return float64(r.Bytes) / (float64(r.NsPerOp) / 1e9) / (1 << 20)
	}
	xmlRes.MBPerS = mbps(xmlRes)
	colRes.MBPerS = mbps(colRes)
	return xmlRes, colRes
}

func TestWireCodecSpeedup(t *testing.T) {
	xmlRes, colRes := measureWireCodecs(t)
	speedup := float64(xmlRes.NsPerOp) / float64(colRes.NsPerOp)
	t.Logf("10k rows encode+decode: XML %.1fms (%d bytes, %.0f MB/s), columnar %.1fms (%d bytes, %.0f MB/s), %.1fx",
		float64(xmlRes.NsPerOp)/1e6, xmlRes.Bytes, xmlRes.MBPerS,
		float64(colRes.NsPerOp)/1e6, colRes.Bytes, colRes.MBPerS, speedup)
	if speedup < 3 {
		t.Errorf("columnar codec is only %.2fx the XML codec, want >= 3x", speedup)
	}
	if colRes.Bytes >= xmlRes.Bytes {
		t.Errorf("columnar encoding (%d bytes) should be smaller than XML (%d bytes)", colRes.Bytes, xmlRes.Bytes)
	}
}

// loadDrillResult summarizes a sustained concurrent load run.
type loadDrillResult struct {
	Clients   int     `json:"clients"`
	Completed int     `json:"completed"`
	Failures  int     `json:"failures"`
	QPS       float64 `json:"qps"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	Queued    int64   `json:"admission_queued"`
	Shed      int64   `json:"admission_shed"`
}

// runLoadDrill holds `clients` concurrent SOAP clients against an
// admission-controlled federation until each has issued `perClient`
// queries, then reports throughput and latency percentiles.
func runLoadDrill(t testing.TB, clients, perClient int) loadDrillResult {
	f, err := Launch(Options{
		Bodies: 1000,
		Admission: Admission{
			MaxConcurrent: 2,
			MaxQueue:      8 * clients,
			QueueTimeout:  60 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	sql := `SELECT O.object_id, T.object_id
		FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
		WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T) < 3.0`

	var (
		mu        sync.Mutex
		latencies []time.Duration
		failures  []error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := f.Client()
			for j := 0; j < perClient; j++ {
				qStart := time.Now()
				res, err := c.Query(context.Background(), sql)
				lat := time.Since(qStart)
				if err == nil && res.NumRows() == 0 {
					err = fmt.Errorf("empty result")
				}
				mu.Lock()
				latencies = append(latencies, lat)
				if err != nil {
					failures = append(failures, err)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	for i, err := range failures {
		if i >= 3 {
			t.Logf("... and %d more failures", len(failures)-3)
			break
		}
		t.Logf("failure: %v", err)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		return float64(latencies[int(p*float64(len(latencies)-1))].Microseconds()) / 1000
	}
	var queued, shed int64
	for _, n := range f.Nodes {
		s := n.AdmissionStats()
		queued += s.Queued
		shed += s.Shed
	}
	return loadDrillResult{
		Clients:   clients,
		Completed: len(latencies) - len(failures),
		Failures:  len(failures),
		QPS:       float64(len(latencies)-len(failures)) / elapsed.Seconds(),
		P50Ms:     pct(0.50),
		P99Ms:     pct(0.99),
		Queued:    queued,
		Shed:      shed,
	}
}

func TestSustainedConcurrentLoad(t *testing.T) {
	clients, perClient := 256, 1
	if testing.Short() {
		clients, perClient = 64, 1
	}
	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	res := runLoadDrill(t, clients, perClient)
	t.Logf("%d clients x %d queries: %d completed, %d failed, %.1f qps, p50=%.0fms p99=%.0fms, queued=%d shed=%d",
		clients, perClient, res.Completed, res.Failures, res.QPS, res.P50Ms, res.P99Ms, res.Queued, res.Shed)

	if res.Failures != 0 {
		t.Errorf("%d of %d queries failed under sustained load", res.Failures, clients*perClient)
	}
	if res.Completed != clients*perClient {
		t.Errorf("completed %d, want %d", res.Completed, clients*perClient)
	}
	if res.Queued == 0 {
		t.Error("admission gates never queued — the drill did not create pressure")
	}

	// The admission gate's whole point: memory stays bounded however
	// many queries are in flight. The bound is generous (the assert is
	// about "not proportional to 256 concurrent materializations").
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	t.Logf("heap growth after drill: %.1f MB", float64(growth)/(1<<20))
	if growth > 512<<20 {
		t.Errorf("heap grew %d MB during the drill, want bounded", growth>>20)
	}
}

func TestWriteBenchWireJSON(t *testing.T) {
	if *benchWireJSON == "" {
		t.Skip("pass -bench-wire-json=PATH (an existing BENCH_scan.json) to record the wire benchmarks")
	}
	raw, err := os.ReadFile(*benchWireJSON)
	if err != nil {
		t.Fatalf("the eval trajectory must be written first (TestWriteBenchScanJSON): %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parsing %s: %v", *benchWireJSON, err)
	}

	xmlRes, colRes := measureWireCodecs(t)
	speedup := float64(int64(float64(xmlRes.NsPerOp)/float64(colRes.NsPerOp)*100+0.5)) / 100
	doc["wire_codec"] = map[string]any{
		"benchmark": "10k-row mixed-type result set, full encode+decode round trip",
		"rows":      benchWireRows,
		"xml":       xmlRes,
		"columnar":  colRes,
		"speedup":   speedup,
	}

	load := runLoadDrill(t, 256, 1)
	doc["concurrent_load"] = map[string]any{
		"benchmark": "256 concurrent SOAP clients, two-archive cross-match, admission MaxConcurrent=2 per node",
		"result":    load,
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*benchWireJSON, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("merged wire_codec (%.1fx) and concurrent_load (%.1f qps, p99 %.0fms)", speedup, load.QPS, load.P99Ms)
}

func TestWirePerfGate(t *testing.T) {
	if *wireGateBaseline == "" {
		t.Skip("pass -wire-gate-baseline=PATH (the checked-in BENCH_scan.json) to run the wire perf gate")
	}
	maxPct := 15.0
	if s := os.Getenv("PERF_GATE_MAX_REGRESS_PCT"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad PERF_GATE_MAX_REGRESS_PCT %q: %v", s, err)
		}
		maxPct = v
	}
	raw, err := os.ReadFile(*wireGateBaseline)
	if err != nil {
		t.Fatal(err)
	}
	var base struct {
		WireCodec struct {
			Columnar wireCodecResult `json:"columnar"`
		} `json:"wire_codec"`
	}
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("parsing baseline %s: %v", *wireGateBaseline, err)
	}
	if base.WireCodec.Columnar.MBPerS <= 0 {
		t.Fatalf("baseline %s has no wire_codec.columnar measurement", *wireGateBaseline)
	}

	xmlRes, colRes := measureWireCodecs(t)
	regressPct := (base.WireCodec.Columnar.MBPerS - colRes.MBPerS) / base.WireCodec.Columnar.MBPerS * 100
	t.Logf("columnar: %.0f MB/s vs baseline %.0f (%+.1f%% slower, gate %+.1f%%)",
		colRes.MBPerS, base.WireCodec.Columnar.MBPerS, regressPct, maxPct)
	if regressPct > maxPct {
		t.Errorf("columnar wire throughput regressed %.1f%% (%.0f -> %.0f MB/s), above the %.1f%% gate",
			regressPct, base.WireCodec.Columnar.MBPerS, colRes.MBPerS, maxPct)
	}
	if speedup := float64(xmlRes.NsPerOp) / float64(colRes.NsPerOp); speedup < 3 {
		t.Errorf("columnar is only %.2fx the XML codec, the >= 3x claim no longer holds", speedup)
	}
}
