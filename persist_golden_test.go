package skyquery

// Durability acceptance at the federation level: a federation whose
// SkyNodes run on disk-backed tables (storage.Store) must be outwardly
// indistinguishable from the all-in-RAM federation. Two angles:
//
//   - The golden corpus (400 bodies) re-runs against reopened stores —
//     every row recovered through the WAL-replay path — and must match
//     the checked-in *.golden files bit-for-bit at parallelism {1, 4} ×
//     batch size {1, 3, 1024}.
//   - A 3000-body federation with a one-block hot tier answers
//     cross-match queries identically to its RAM twin while provably
//     hydrating cold blocks from disk.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"skyquery/internal/eval"
	"skyquery/internal/storage"
	"skyquery/internal/survey"
	"skyquery/internal/value"
)

// buildStore loads an archive into a disk-backed table, mirroring
// survey.Archive.BuildDB row for row.
func buildStore(t *testing.T, a *survey.Archive, dir string, opts storage.StoreOptions) *storage.Store {
	t.Helper()
	st, err := storage.OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := st.Create(survey.TableName, survey.Schema(),
		&storage.SpatialConfig{RACol: "ra", DecCol: "dec", Level: a.Config.SpatialLevel})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range a.SortedObs() {
		ra, dec := o.Pos.RaDec()
		typ := "STAR"
		if o.Galaxy {
			typ = "GALAXY"
		}
		err := tbl.Append(
			value.Int(o.ObjectID), value.Int(o.BodyID),
			value.Float(ra), value.Float(dec), value.Float(o.Flux),
			value.String(typ), value.Null,
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// persistentNodes observes the field with the default surveys, persists
// each archive to disk, closes the stores, and reopens them — every row
// a federation sees went through a shutdown/recovery cycle.
func persistentNodes(t *testing.T, bodies int, opts storage.StoreOptions) []NodeSpec {
	t.Helper()
	field := GenerateField(NewCap(185, -0.5, 0.25), bodies, 0.4, 1)
	var specs []NodeSpec
	for _, cfg := range DefaultSurveys() {
		a := survey.Observe(field, cfg)
		dir := filepath.Join(t.TempDir(), cfg.Name)
		st := buildStore(t, a, dir, opts)
		rows := len(a.Obs)
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		st2, err := storage.OpenStore(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st2.Close() })
		rec := st2.Recovery()
		if len(rec) != 1 || rec[0].Torn || rec[0].DurableRows+rec[0].ReplayedRows != rows {
			t.Fatalf("%s: recovery = %+v, want %d clean rows", cfg.Name, rec, rows)
		}
		specs = append(specs, NodeSpec{
			Name: cfg.Name, DB: st2.DB(), PrimaryTable: survey.TableName,
			RACol: "ra", DecCol: "dec", SigmaArcsec: cfg.SigmaArcsec,
		})
	}
	return specs
}

func TestPersistentGoldenCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "queries", "*.sql"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden queries found: %v", err)
	}
	sort.Strings(files)
	defer eval.SetBatchSize(eval.DefaultBatchSize)

	specs := persistentNodes(t, 400, storage.StoreOptions{HotBlocks: 1})
	for _, par := range []int{1, 4} {
		f := launch(t, Options{Nodes: specs, Parallelism: par})
		for _, bs := range []int{1, 3, eval.DefaultBatchSize} {
			eval.SetBatchSize(bs)
			for _, file := range files {
				name := fmt.Sprintf("%s/par=%d/batch=%d", filepath.Base(file), par, bs)
				sql, err := os.ReadFile(file)
				if err != nil {
					t.Fatal(err)
				}
				want, err := os.ReadFile(strings.TrimSuffix(file, ".sql") + ".golden")
				if err != nil {
					t.Fatalf("%s: missing golden: %v", name, err)
				}
				res, err := f.Query(context.Background(), string(sql))
				if err != nil {
					t.Errorf("%s: query failed: %v", name, err)
					continue
				}
				if got := goldenEncode(res); got != string(want) {
					t.Errorf("%s: disk-backed result diverges from golden\ngot:\n%s\nwant:\n%s", name, got, want)
				}
			}
		}
		f.Close()
	}
}

func TestPersistentColdFederationIdentity(t *testing.T) {
	defer eval.SetBatchSize(eval.DefaultBatchSize)
	const bodies = 3000 // ~2 sealed blocks per archive; HotBlocks 1 forces a cold tier

	ramField := GenerateField(NewCap(185, -0.5, 0.25), bodies, 0.4, 1)
	var ramSpecs []NodeSpec
	for _, cfg := range DefaultSurveys() {
		a := survey.Observe(ramField, cfg)
		db, err := a.BuildDB()
		if err != nil {
			t.Fatal(err)
		}
		ramSpecs = append(ramSpecs, NodeSpec{
			Name: cfg.Name, DB: db, PrimaryTable: survey.TableName,
			RACol: "ra", DecCol: "dec", SigmaArcsec: cfg.SigmaArcsec,
		})
	}
	diskSpecs := persistentNodes(t, bodies, storage.StoreOptions{HotBlocks: 1, CacheBlocks: 8})

	queries := []string{
		testQuery,
		candPrunePartialQuery,
		`SELECT TOP 25 O.object_id, O.flux
		 FROM SDSS:PhotoObject O
		 WHERE AREA(185.0, -0.5, 900) AND O.type = 'GALAXY' ORDER BY O.flux DESC`,
	}
	before := storage.ColdBlocksHydrated()
	for _, par := range []int{1, 4} {
		ram := launch(t, Options{Nodes: ramSpecs, Parallelism: par})
		disk := launch(t, Options{Nodes: diskSpecs, Parallelism: par})
		for qi, q := range queries {
			want, err := ram.Query(context.Background(), q)
			if err != nil {
				t.Fatalf("ram query %d (par %d): %v", qi, par, err)
			}
			got, err := disk.Query(context.Background(), q)
			if err != nil {
				t.Fatalf("disk query %d (par %d): %v", qi, par, err)
			}
			if want.NumRows() == 0 {
				t.Fatalf("query %d (par %d): degenerate empty reference", qi, par)
			}
			if ge, we := goldenEncode(got), goldenEncode(want); ge != we {
				t.Errorf("query %d (par %d): disk-backed result diverges from RAM\ndisk:\n%s\nram:\n%s", qi, par, ge, we)
			}
		}
		ram.Close()
		disk.Close()
	}
	// The par=4 round may be served from the stores' block caches, so the
	// disk-was-read proof spans the whole test.
	if d := storage.ColdBlocksHydrated() - before; d == 0 {
		t.Error("federation queries over a cold tier hydrated no blocks")
	}
}
