// Package stats maintains per-column statistics beyond zone maps — KMV
// distinct-count sketches, deterministic bottom-k row samples, and the
// equi-depth histograms derived from them — and estimates the selectivity
// of prunable predicate conjuncts against those statistics. The planner
// composes these estimates with the eval.AnalyzeChainPrune conjunct
// analysis to predict post-prune candidate counts per archive, replacing
// the raw count-star probe of §5.3 as the chain-ordering signal.
//
// Everything here is deterministic and mergeable: sketches and samples
// are keyed by 64-bit mixes of values and absolute row indices, so the
// statistics a store accumulates flush by flush equal the statistics of
// a single pass over the same rows, and two column snapshots can be
// folded (Merge) without double counting.
package stats

import (
	"math"
	"sort"
)

const (
	// SketchK is the KMV sketch size: the k smallest distinct value
	// hashes are retained, estimating distinct counts within ~1/sqrt(k).
	SketchK = 256
	// SampleK is the bottom-k row sample size: the values of the k rows
	// with the smallest row-index hashes form a uniform row sample, the
	// base of the equi-depth histograms.
	SampleK = 256
)

// Hash64 is the shared 64-bit mixer (splitmix64 finalizer): good
// avalanche, no allocation, stable across processes.
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashString hashes a string through an FNV-1a pass and the mixer.
func HashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return Hash64(h)
}

// HashFloat hashes a float64 value; -0 and +0 collapse so they count as
// one distinct value, matching the comparison kernels.
func HashFloat(f float64) uint64 {
	if f == 0 {
		f = 0
	}
	return Hash64(math.Float64bits(f))
}

// KMV is a k-minimum-values distinct-count sketch: the k smallest
// distinct hashes seen. The zero value (with K unset) is unusable; build
// with NewKMV.
type KMV struct {
	K      int
	Hashes []uint64 // sorted ascending, distinct, len <= K
}

// NewKMV returns an empty sketch of size k (0 means SketchK).
func NewKMV(k int) *KMV {
	if k <= 0 {
		k = SketchK
	}
	return &KMV{K: k}
}

// Add folds one value hash into the sketch.
func (s *KMV) Add(h uint64) {
	i := sort.Search(len(s.Hashes), func(i int) bool { return s.Hashes[i] >= h })
	if i < len(s.Hashes) && s.Hashes[i] == h {
		return
	}
	if len(s.Hashes) == s.K {
		if i == s.K {
			return // larger than every retained hash
		}
		s.Hashes = s.Hashes[:s.K-1]
	}
	s.Hashes = append(s.Hashes, 0)
	copy(s.Hashes[i+1:], s.Hashes[i:])
	s.Hashes[i] = h
}

// Merge folds another sketch into this one.
func (s *KMV) Merge(o *KMV) {
	if o == nil {
		return
	}
	for _, h := range o.Hashes {
		s.Add(h)
	}
}

// Estimate returns the distinct-count estimate.
func (s *KMV) Estimate() float64 {
	n := len(s.Hashes)
	if n == 0 {
		return 0
	}
	if n < s.K {
		return float64(n) // saw fewer distinct hashes than capacity: exact
	}
	// Standard KMV estimator: (k-1) / fraction of hash space covered by
	// the k-th minimum.
	kth := float64(s.Hashes[n-1])
	if kth == 0 {
		return float64(n)
	}
	return float64(n-1) / (kth / math.MaxUint64)
}

// SampleEnt is one sampled row: the row-index hash that selected it and
// the column value it held (numeric or string per the column kind).
type SampleEnt struct {
	Hash uint64
	Num  float64
	Str  string
}

// Sample is a deterministic bottom-k row sample: the values of the k
// non-NULL rows whose Hash64(rowIndex) is smallest. Because selection
// depends only on the absolute row index, incremental maintenance and a
// single full pass agree exactly.
type Sample struct {
	K    int
	Ents []SampleEnt // sorted by Hash ascending, len <= K
}

// NewSample returns an empty sample of size k (0 means SampleK).
func NewSample(k int) *Sample {
	if k <= 0 {
		k = SampleK
	}
	return &Sample{K: k}
}

// add inserts an entry, keeping the bottom-K by hash.
func (s *Sample) add(e SampleEnt) {
	i := sort.Search(len(s.Ents), func(i int) bool { return s.Ents[i].Hash >= e.Hash })
	if i < len(s.Ents) && s.Ents[i].Hash == e.Hash {
		return // same row folded twice (a merge overlap): keep the first
	}
	if len(s.Ents) == s.K {
		if i == s.K {
			return
		}
		s.Ents = s.Ents[:s.K-1]
	}
	s.Ents = append(s.Ents, SampleEnt{})
	copy(s.Ents[i+1:], s.Ents[i:])
	s.Ents[i] = e
}

// Merge folds another sample into this one.
func (s *Sample) Merge(o *Sample) {
	if o == nil {
		return
	}
	for _, e := range o.Ents {
		s.add(e)
	}
}

// Kind classifies a column for statistics purposes.
type Kind uint8

// Column statistic kinds.
const (
	KindNone Kind = iota // BOOL and other unsupported columns
	KindNumeric
	KindString
)

// Col is the maintained statistics state of one column: counters,
// bounds, a distinct sketch and a row sample. It is the unit persisted
// in the store footer and folded incrementally on block seal.
type Col struct {
	Kind   Kind
	Rows   int64 // rows observed (NULLs included)
	Nulls  int64
	Vals   int64 // non-NULL (and, for numeric, non-NaN) values folded into the bounds
	HasNaN bool  // numeric only: a NaN was observed (range stats cannot bound it)

	Min, Max       float64 // numeric bounds over non-NULL, non-NaN values
	StrMin, StrMax string  // string bounds over non-NULL values

	Sketch *KMV
	Sample *Sample
}

// NewCol returns empty statistics for a column of the given kind.
func NewCol(kind Kind) *Col {
	return &Col{Kind: kind, Sketch: NewKMV(0), Sample: NewSample(0)}
}

// AddNull observes a NULL cell.
func (c *Col) AddNull() {
	c.Rows++
	c.Nulls++
}

// AddNumeric observes a non-NULL numeric cell at absolute row index row.
func (c *Col) AddNumeric(row int64, v float64) {
	c.Rows++
	if math.IsNaN(v) {
		c.HasNaN = true
		return
	}
	c.Vals++
	if c.Vals == 1 {
		c.Min, c.Max = v, v
	} else {
		if v < c.Min {
			c.Min = v
		}
		if v > c.Max {
			c.Max = v
		}
	}
	c.Sketch.Add(HashFloat(v))
	c.Sample.add(SampleEnt{Hash: Hash64(uint64(row)), Num: v})
}

// AddString observes a non-NULL string cell at absolute row index row.
func (c *Col) AddString(row int64, v string) {
	c.Rows++
	c.Vals++
	if c.Vals == 1 {
		c.StrMin, c.StrMax = v, v
	} else {
		if v < c.StrMin {
			c.StrMin = v
		}
		if v > c.StrMax {
			c.StrMax = v
		}
	}
	c.Sketch.Add(HashString(v))
	c.Sample.add(SampleEnt{Hash: Hash64(uint64(row)), Str: truncStr(v)})
}

// sampleStrCap bounds sampled string lengths: histogram boundaries only
// need enough prefix to order by.
const sampleStrCap = 48

func truncStr(s string) string {
	if len(s) > sampleStrCap {
		return s[:sampleStrCap]
	}
	return s
}

// Merge folds another column's statistics into this one. The two must
// cover disjoint row ranges (or identical rows — overlapping merges only
// skew counters, never corrupt structure).
func (c *Col) Merge(o *Col) {
	if o == nil || o.Rows == 0 {
		return
	}
	hadVals := c.Vals > 0
	c.Rows += o.Rows
	c.Nulls += o.Nulls
	c.Vals += o.Vals
	c.HasNaN = c.HasNaN || o.HasNaN
	if o.Vals > 0 {
		if !hadVals {
			c.Min, c.Max = o.Min, o.Max
			c.StrMin, c.StrMax = o.StrMin, o.StrMax
		} else {
			if o.Min < c.Min {
				c.Min = o.Min
			}
			if o.Max > c.Max {
				c.Max = o.Max
			}
			if o.StrMin < c.StrMin {
				c.StrMin = o.StrMin
			}
			if o.StrMax > c.StrMax {
				c.StrMax = o.StrMax
			}
		}
	}
	if c.Sketch == nil {
		c.Sketch = NewKMV(0)
	}
	if c.Sample == nil {
		c.Sample = NewSample(0)
	}
	c.Sketch.Merge(o.Sketch)
	c.Sample.Merge(o.Sample)
}

// Clone deep-copies the statistics (Merge mutates; snapshots need
// isolation from the maintained state).
func (c *Col) Clone() *Col {
	if c == nil {
		return nil
	}
	out := *c
	out.Sketch = NewKMV(0)
	out.Sample = NewSample(0)
	if c.Sketch != nil {
		out.Sketch.K = c.Sketch.K
		out.Sketch.Hashes = append([]uint64(nil), c.Sketch.Hashes...)
	}
	if c.Sample != nil {
		out.Sample.K = c.Sample.K
		out.Sample.Ents = append([]SampleEnt(nil), c.Sample.Ents...)
	}
	return &out
}

// Distinct returns the distinct-count estimate.
func (c *Col) Distinct() float64 {
	if c == nil || c.Sketch == nil {
		return 0
	}
	return c.Sketch.Estimate()
}

// DefaultBuckets is the equi-depth histogram resolution shipped over the
// StatsSummary wire.
const DefaultBuckets = 64

// EquiDepth derives an equi-depth histogram from the row sample: nb+1
// boundaries (min, then nb quantiles ending at max) over the non-NULL
// numeric values. nil when the column is not numeric or the sample is
// empty.
func (c *Col) EquiDepth(nb int) []float64 {
	if c == nil || c.Kind != KindNumeric || c.Sample == nil || len(c.Sample.Ents) == 0 {
		return nil
	}
	if nb <= 0 {
		nb = DefaultBuckets
	}
	vals := make([]float64, 0, len(c.Sample.Ents))
	for _, e := range c.Sample.Ents {
		vals = append(vals, e.Num)
	}
	sort.Float64s(vals)
	if nb > len(vals) {
		nb = len(vals)
	}
	out := make([]float64, 0, nb+1)
	out = append(out, vals[0])
	for i := 1; i <= nb; i++ {
		// Quantile i/nb of the sample, index into the sorted values.
		idx := (i*len(vals) - 1) / nb
		out = append(out, vals[idx])
	}
	return out
}

// StrSample returns the sorted string sample (nil for non-string
// columns): the empirical quantiles prefix and range predicates estimate
// against.
func (c *Col) StrSample() []string {
	if c == nil || c.Kind != KindString || c.Sample == nil || len(c.Sample.Ents) == 0 {
		return nil
	}
	out := make([]string, 0, len(c.Sample.Ents))
	for _, e := range c.Sample.Ents {
		out = append(out, e.Str)
	}
	sort.Strings(out)
	return out
}
