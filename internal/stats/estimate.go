package stats

// Selectivity estimation: how many rows of a table survive a set of
// prunable predicate conjuncts (eval.Pruner — column <cmp> constant, the
// exact set eval.AnalyzeChainPrune extracts from a chain step's predicate
// sequence). Estimates combine the equi-depth histogram (empirical CDF
// for range conjuncts), the KMV distinct count (equality conjuncts), and
// the null fraction (a conjunct is TRUE only on non-NULL cells).
// Conjuncts the analysis could not extract contribute factor 1 —
// conservative: the planner never under-estimates a step because a
// predicate was too complex to analyze.

import (
	"sort"

	"skyquery/internal/eval"
)

// ColSummary is the derived, wire-shippable statistics snapshot of one
// column: what StatsSummary returns and the estimator consumes.
type ColSummary struct {
	Kind     Kind
	Rows     int64
	Nulls    int64
	Distinct float64
	HasNaN   bool
	Min, Max float64
	StrMin   string
	StrMax   string
	// Bounds is the equi-depth histogram of a numeric column: sorted
	// sample quantiles, Bounds[0] ~ min of the sample, last ~ max.
	Bounds []float64
	// Strs is the sorted string sample of a string column.
	Strs []string
}

// Summarize derives the estimator's snapshot from maintained statistics.
func Summarize(c *Col) *ColSummary {
	if c == nil {
		return nil
	}
	return &ColSummary{
		Kind:     c.Kind,
		Rows:     c.Rows,
		Nulls:    c.Nulls,
		Distinct: c.Distinct(),
		HasNaN:   c.HasNaN,
		Min:      c.Min,
		Max:      c.Max,
		StrMin:   c.StrMin,
		StrMax:   c.StrMax,
		Bounds:   c.EquiDepth(DefaultBuckets),
		Strs:     c.StrSample(),
	}
}

// Selectivity estimates the surviving fraction of a table's rows under
// the conjuncts, assuming independence (product of per-conjunct
// fractions, clamped to [0, 1]). col maps a pruner's column index to its
// summary; nil means unknown and contributes factor 1.
func Selectivity(prs []eval.Pruner, col func(int) *ColSummary) float64 {
	sel := 1.0
	for _, p := range prs {
		sel *= ConjunctSelectivity(p, col(p.Slot))
	}
	if sel < 0 {
		return 0
	}
	if sel > 1 {
		return 1
	}
	return sel
}

// EstimateRows is rows × Selectivity, floored at 0.
func EstimateRows(rows int64, prs []eval.Pruner, col func(int) *ColSummary) float64 {
	if rows < 0 {
		rows = 0
	}
	return float64(rows) * Selectivity(prs, col)
}

// ConjunctSelectivity estimates the fraction of rows on which one
// conjunct is TRUE. Unknown columns (nil summary) or kinds that do not
// match the conjunct return 1.
func ConjunctSelectivity(p eval.Pruner, cs *ColSummary) float64 {
	if cs == nil || cs.Rows == 0 {
		return 1
	}
	notNull := 1 - float64(cs.Nulls)/float64(cs.Rows)
	if notNull < 0 {
		notNull = 0
	}
	var frac float64
	switch {
	case p.IsStr && cs.Kind == KindString:
		frac = strFrac(p, cs)
	case !p.IsStr && cs.Kind == KindNumeric:
		if cs.HasNaN {
			// NaN compares equal to everything in this engine: range
			// statistics cannot bound those rows, so don't claim more
			// than the null fraction.
			return notNull
		}
		frac = numFrac(p, cs)
	default:
		return 1
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return notNull * frac
}

// eqFrac is the equality estimate: one value out of the distinct count.
func eqFrac(cs *ColSummary) float64 {
	d := cs.Distinct
	if d < 1 {
		d = 1
	}
	return 1 / d
}

func numFrac(p eval.Pruner, cs *ColSummary) float64 {
	switch p.Op {
	case "=":
		if p.Const < cs.Min || p.Const > cs.Max {
			return 0
		}
		return eqFrac(cs)
	case "<>":
		if p.Const < cs.Min || p.Const > cs.Max {
			return 1
		}
		return 1 - eqFrac(cs)
	case "<", "<=":
		return numCDF(cs, p.Const)
	case ">", ">=":
		return 1 - numCDF(cs, p.Const)
	}
	return 1
}

// numCDF is the empirical CDF of the equi-depth histogram at x: the
// fraction of (non-NULL) values below x, linearly interpolated inside
// the bucket containing x.
func numCDF(cs *ColSummary, x float64) float64 {
	b := cs.Bounds
	if len(b) < 2 {
		// No histogram: fall back to a uniform assumption over [Min, Max].
		if cs.Max <= cs.Min {
			if x > cs.Min {
				return 1
			}
			return 0
		}
		f := (x - cs.Min) / (cs.Max - cs.Min)
		if f < 0 {
			return 0
		}
		if f > 1 {
			return 1
		}
		return f
	}
	if x <= b[0] {
		return 0
	}
	if x >= b[len(b)-1] {
		return 1
	}
	n := len(b) - 1 // buckets
	i := sort.SearchFloat64s(b, x) - 1
	if i < 0 {
		i = 0
	}
	lo, hi := b[i], b[i+1]
	interp := 1.0
	if hi > lo {
		interp = (x - lo) / (hi - lo)
	}
	return (float64(i) + interp) / float64(n)
}

func strFrac(p eval.Pruner, cs *ColSummary) float64 {
	switch p.Op {
	case "=":
		if p.Str < cs.StrMin || p.Str > cs.StrMax {
			return 0
		}
		return eqFrac(cs)
	case "<>":
		if p.Str < cs.StrMin || p.Str > cs.StrMax {
			return 1
		}
		return 1 - eqFrac(cs)
	case "<", "<=":
		return strCDF(cs, p.Str)
	case ">", ">=":
		return 1 - strCDF(cs, p.Str)
	case eval.OpLikePrefix:
		// Rows matching the pattern carry the literal prefix: they lie in
		// [Str, Hi) (Hi empty = unbounded above).
		f := 1.0
		if p.Hi != "" {
			f = strCDF(cs, p.Hi)
		}
		return f - strCDF(cs, p.Str)
	}
	return 1
}

// strCDF is the empirical CDF of the sorted string sample at x.
func strCDF(cs *ColSummary, x string) float64 {
	s := cs.Strs
	if len(s) == 0 {
		// Only the bounds are known: all-or-nothing.
		if x > cs.StrMax {
			return 1
		}
		if x <= cs.StrMin {
			return 0
		}
		return 0.5
	}
	i := sort.SearchStrings(s, x)
	return float64(i) / float64(len(s))
}
