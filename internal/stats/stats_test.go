package stats

// The statistics primitives the planner prices chains with: the KMV
// distinct sketch must estimate within its error bound, incremental
// maintenance must equal a single pass (merge determinism is what makes
// footer-persisted statistics trustworthy), and the selectivity
// estimator must price range/equality/LIKE-prefix/null conjuncts
// sensibly — never under 0, never over 1, factor 1 when it knows
// nothing.

import (
	"math"
	"testing"

	"skyquery/internal/eval"
)

func TestKMVEstimate(t *testing.T) {
	// Below capacity the sketch is exact.
	s := NewKMV(0)
	for i := 0; i < 100; i++ {
		s.Add(Hash64(uint64(i % 10)))
	}
	if got := s.Estimate(); got != 10 {
		t.Errorf("small distinct estimate = %g, want exactly 10", got)
	}
	// Above capacity: within ~3/sqrt(k) of the truth.
	s = NewKMV(0)
	const n = 50000
	for i := 0; i < n; i++ {
		s.Add(Hash64(uint64(i)))
	}
	got := s.Estimate()
	tol := 3 / math.Sqrt(float64(SketchK)) * n
	if math.Abs(got-n) > tol {
		t.Errorf("distinct estimate = %g, want %d +/- %g", got, n, tol)
	}
}

func TestIncrementalEqualsSinglePass(t *testing.T) {
	// The same rows folded in two chunks and then merged must equal one
	// pass — the property that lets footer statistics extend over the
	// in-memory tail.
	vals := func(row int64) float64 { return float64((row*row + 3) % 977) }
	one := NewCol(KindNumeric)
	a, b := NewCol(KindNumeric), NewCol(KindNumeric)
	const n = 4000
	for row := int64(0); row < n; row++ {
		one.AddNumeric(row, vals(row))
		if row < n/3 {
			a.AddNumeric(row, vals(row))
		} else {
			b.AddNumeric(row, vals(row))
		}
	}
	a.Merge(b)
	if a.Rows != one.Rows || a.Nulls != one.Nulls || a.Vals != one.Vals ||
		a.Min != one.Min || a.Max != one.Max {
		t.Fatalf("merged counters diverge: %+v vs %+v", a, one)
	}
	if got, want := a.Distinct(), one.Distinct(); got != want {
		t.Errorf("merged distinct = %g, single-pass = %g", got, want)
	}
	am, om := a.EquiDepth(DefaultBuckets), one.EquiDepth(DefaultBuckets)
	if len(am) != len(om) {
		t.Fatalf("histogram lengths %d vs %d", len(am), len(om))
	}
	for i := range am {
		if am[i] != om[i] {
			t.Fatalf("histogram bound %d: %g vs %g", i, am[i], om[i])
		}
	}
}

// uniformSummary builds a numeric summary over 0..999, evenly spread.
func uniformSummary() *ColSummary {
	c := NewCol(KindNumeric)
	for row := int64(0); row < 1000; row++ {
		c.AddNumeric(row, float64(row))
	}
	return Summarize(c)
}

func TestNumericSelectivity(t *testing.T) {
	cs := uniformSummary()
	cases := []struct {
		name   string
		p      eval.Pruner
		lo, hi float64
	}{
		{"range-half", eval.Pruner{Op: "<", Const: 500}, 0.3, 0.7},
		{"range-all", eval.Pruner{Op: "<", Const: 5000}, 1, 1},
		{"range-none", eval.Pruner{Op: ">", Const: 5000}, 0, 0},
		{"eq-out-of-range", eval.Pruner{Op: "=", Const: -3}, 0, 0},
		{"eq-in-range", eval.Pruner{Op: "=", Const: 500}, 0, 0.02},
		{"neq-out-of-range", eval.Pruner{Op: "<>", Const: -3}, 1, 1},
	}
	for _, c := range cases {
		got := ConjunctSelectivity(c.p, cs)
		if got < c.lo || got > c.hi {
			t.Errorf("%s: selectivity = %g, want [%g, %g]", c.name, got, c.lo, c.hi)
		}
	}
}

func TestSelectivityUnknownIsOne(t *testing.T) {
	// nil summary, kind mismatch, NaN-poisoned ranges: never claim
	// knowledge the statistics don't have.
	if got := ConjunctSelectivity(eval.Pruner{Op: "<", Const: 1}, nil); got != 1 {
		t.Errorf("nil summary = %g, want 1", got)
	}
	strCol := NewCol(KindString)
	strCol.AddString(0, "a")
	if got := ConjunctSelectivity(eval.Pruner{Op: "<", Const: 1}, Summarize(strCol)); got != 1 {
		t.Errorf("numeric conjunct on string column = %g, want 1", got)
	}
	nan := NewCol(KindNumeric)
	nan.AddNumeric(0, 1)
	nan.AddNumeric(1, math.NaN())
	nan.AddNull()
	// NaN compares equal to everything in this engine, so the estimate
	// caps at the non-NULL fraction (2 of 3 rows).
	got := ConjunctSelectivity(eval.Pruner{Op: ">", Const: 1e9}, Summarize(nan))
	if want := 2.0 / 3; math.Abs(got-want) > 1e-9 {
		t.Errorf("NaN column = %g, want %g", got, want)
	}
}

func TestNullFractionScales(t *testing.T) {
	c := NewCol(KindNumeric)
	for row := int64(0); row < 500; row++ {
		c.AddNumeric(row, float64(row))
	}
	for i := 0; i < 500; i++ {
		c.AddNull()
	}
	// Everything matches among non-NULLs, but half the rows are NULL.
	got := ConjunctSelectivity(eval.Pruner{Op: "<", Const: 1e9}, Summarize(c))
	if math.Abs(got-0.5) > 0.05 {
		t.Errorf("half-NULL selectivity = %g, want ~0.5", got)
	}
}

func TestStringSelectivity(t *testing.T) {
	c := NewCol(KindString)
	names := []string{"GALAXY", "STAR", "QSO", "UNKNOWN"}
	for row := int64(0); row < 1000; row++ {
		c.AddString(row, names[row%4])
	}
	cs := Summarize(c)
	// LIKE 'GAL%': a quarter of the rows.
	got := ConjunctSelectivity(eval.Pruner{
		Op: eval.OpLikePrefix, Str: "GAL", Hi: "GAM", IsStr: true,
	}, cs)
	if got < 0.1 || got > 0.4 {
		t.Errorf("LIKE 'GAL%%' selectivity = %g, want ~0.25", got)
	}
	// Equality outside the byte range: provably zero.
	if got := ConjunctSelectivity(eval.Pruner{Op: "=", Str: "ZZZ", IsStr: true}, cs); got != 0 {
		t.Errorf("out-of-range string equality = %g, want 0", got)
	}
	// Range below everything.
	if got := ConjunctSelectivity(eval.Pruner{Op: "<", Str: "A", IsStr: true}, cs); got != 0 {
		t.Errorf("below-min string range = %g, want 0", got)
	}
}

func TestEstimateRowsComposes(t *testing.T) {
	cs := uniformSummary()
	col := func(int) *ColSummary { return cs }
	prs := []eval.Pruner{
		{Op: "<", Const: 500},
		{Op: ">", Const: 100},
	}
	got := EstimateRows(1000, prs, col)
	// Independence assumption: ~0.5 * ~0.9 of 1000.
	if got < 300 || got > 600 {
		t.Errorf("composed estimate = %g, want ~450", got)
	}
	if got := EstimateRows(-5, prs, col); got != 0 {
		t.Errorf("negative rows = %g, want 0", got)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	c := NewCol(KindNumeric)
	for row := int64(0); row < 3000; row++ {
		if row%7 == 0 {
			c.AddNull()
			continue
		}
		c.AddNumeric(row, float64(row%311))
	}
	c.AddNumeric(3000, math.NaN())
	blob := EncodeCol(c)
	back, err := DecodeCol(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != c.Rows || back.Nulls != c.Nulls || back.Vals != c.Vals ||
		back.Min != c.Min || back.Max != c.Max || back.HasNaN != c.HasNaN ||
		back.Kind != c.Kind {
		t.Fatalf("decoded counters diverge: %+v vs %+v", back, c)
	}
	if back.Distinct() != c.Distinct() {
		t.Errorf("decoded distinct = %g, want %g", back.Distinct(), c.Distinct())
	}
	ah, bh := c.EquiDepth(0), back.EquiDepth(0)
	if len(ah) != len(bh) {
		t.Fatalf("decoded histogram length %d, want %d", len(bh), len(ah))
	}
	for i := range ah {
		if ah[i] != bh[i] {
			t.Fatalf("decoded histogram bound %d: %g vs %g", i, bh[i], ah[i])
		}
	}
}
