package stats

// Binary codec for maintained column statistics: the form persisted in
// the store footer (which versions and CRC-checks the enclosing frame).
// The blob itself carries a leading version byte so the footer can ship
// newer statistics encodings without another footer version bump.

import (
	"encoding/binary"
	"fmt"
	"math"
)

const codecVersion = 1

// flag bits of the encoded header.
const (
	flagHasNaN = 1 << iota
)

// EncodeCol serializes maintained statistics (nil encodes as an empty
// blob, decoded back to nil).
func EncodeCol(c *Col) []byte {
	if c == nil {
		return nil
	}
	dst := []byte{codecVersion, byte(c.Kind)}
	var flags byte
	if c.HasNaN {
		flags |= flagHasNaN
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(c.Rows))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(c.Nulls))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(c.Vals))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.Min))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.Max))
	dst = appendStr16(dst, c.StrMin)
	dst = appendStr16(dst, c.StrMax)
	var hashes []uint64
	if c.Sketch != nil {
		hashes = c.Sketch.Hashes
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(hashes)))
	for _, h := range hashes {
		dst = binary.LittleEndian.AppendUint64(dst, h)
	}
	var ents []SampleEnt
	if c.Sample != nil {
		ents = c.Sample.Ents
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ents)))
	for _, e := range ents {
		dst = binary.LittleEndian.AppendUint64(dst, e.Hash)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Num))
		dst = appendStr16(dst, e.Str)
	}
	return dst
}

// DecodeCol deserializes EncodeCol's output. An empty blob yields nil.
func DecodeCol(data []byte) (*Col, error) {
	if len(data) == 0 {
		return nil, nil
	}
	if data[0] != codecVersion {
		return nil, fmt.Errorf("stats: unsupported codec version %d", data[0])
	}
	if len(data) < 3+5*8 {
		return nil, fmt.Errorf("stats: truncated column statistics")
	}
	c := &Col{Kind: Kind(data[1])}
	flags := data[2]
	c.HasNaN = flags&flagHasNaN != 0
	rest := data[3:]
	c.Rows = int64(binary.LittleEndian.Uint64(rest))
	c.Nulls = int64(binary.LittleEndian.Uint64(rest[8:]))
	c.Vals = int64(binary.LittleEndian.Uint64(rest[16:]))
	c.Min = math.Float64frombits(binary.LittleEndian.Uint64(rest[24:]))
	c.Max = math.Float64frombits(binary.LittleEndian.Uint64(rest[32:]))
	rest = rest[40:]
	var err error
	if c.StrMin, rest, err = takeStr16(rest); err != nil {
		return nil, err
	}
	if c.StrMax, rest, err = takeStr16(rest); err != nil {
		return nil, err
	}
	if len(rest) < 4 {
		return nil, fmt.Errorf("stats: truncated sketch")
	}
	nh := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if nh < 0 || len(rest) < 8*nh {
		return nil, fmt.Errorf("stats: truncated sketch")
	}
	c.Sketch = NewKMV(0)
	if nh > c.Sketch.K {
		c.Sketch.K = nh
	}
	c.Sketch.Hashes = make([]uint64, nh)
	for i := range c.Sketch.Hashes {
		c.Sketch.Hashes[i] = binary.LittleEndian.Uint64(rest[8*i:])
	}
	rest = rest[8*nh:]
	if len(rest) < 4 {
		return nil, fmt.Errorf("stats: truncated sample")
	}
	ns := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	c.Sample = NewSample(0)
	if ns > c.Sample.K {
		c.Sample.K = ns
	}
	c.Sample.Ents = make([]SampleEnt, 0, ns)
	for i := 0; i < ns; i++ {
		if len(rest) < 16 {
			return nil, fmt.Errorf("stats: truncated sample entry")
		}
		e := SampleEnt{
			Hash: binary.LittleEndian.Uint64(rest),
			Num:  math.Float64frombits(binary.LittleEndian.Uint64(rest[8:])),
		}
		rest = rest[16:]
		if e.Str, rest, err = takeStr16(rest); err != nil {
			return nil, err
		}
		c.Sample.Ents = append(c.Sample.Ents, e)
	}
	return c, nil
}

func appendStr16(dst []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func takeStr16(data []byte) (string, []byte, error) {
	if len(data) < 2 {
		return "", nil, fmt.Errorf("stats: truncated string")
	}
	l := int(binary.LittleEndian.Uint16(data))
	if len(data)-2 < l {
		return "", nil, fmt.Errorf("stats: truncated string")
	}
	return string(data[2 : 2+l]), data[2+l:], nil
}
