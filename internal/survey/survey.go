// Package survey generates the synthetic sky surveys this reproduction
// uses in place of the paper's production archives (SDSS, 2MASS, FIRST).
// A set of "true" astronomical bodies is drawn inside a region; each
// archive then observes a body with probability Completeness (so
// drop-outs occur naturally), scattering the measured position around the
// true one with the archive's Gaussian error σ and attaching fluxes and a
// morphological type. Everything is deterministic given the seed, so
// experiments are repeatable and results can be checked against the known
// ground truth.
package survey

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"skyquery/internal/htm"
	"skyquery/internal/sphere"
	"skyquery/internal/storage"
	"skyquery/internal/value"
	"skyquery/internal/xmatch"
)

// Body is a true astronomical object.
type Body struct {
	ID  int64
	Pos sphere.Vec
	// BaseFlux is the intrinsic brightness; archives observe it with
	// band-dependent offsets.
	BaseFlux float64
	// Galaxy marks extended (vs point) sources.
	Galaxy bool
}

// Field is a population of bodies inside a region.
type Field struct {
	Region sphere.Cap
	Bodies []Body
}

// GenerateField draws n bodies uniformly inside the cap. The fraction of
// galaxies is galaxyFrac.
func GenerateField(region sphere.Cap, n int, galaxyFrac float64, seed int64) *Field {
	rng := rand.New(rand.NewSource(seed))
	f := &Field{Region: region}
	for i := 0; i < n; i++ {
		f.Bodies = append(f.Bodies, Body{
			ID:       int64(i + 1),
			Pos:      randInCap(rng, region),
			BaseFlux: 1 + rng.ExpFloat64()*20,
			Galaxy:   rng.Float64() < galaxyFrac,
		})
	}
	return f
}

// randInCap draws a uniform point inside a cap: uniform in azimuth and in
// cos(theta) between cos(radius) and 1 around the cap axis.
func randInCap(rng *rand.Rand, c sphere.Cap) sphere.Vec {
	cosR := math.Cos(c.Radius * sphere.RadPerDeg)
	z := cosR + (1-cosR)*rng.Float64() // cos of polar angle from axis
	phi := 2 * math.Pi * rng.Float64()
	s := math.Sqrt(1 - z*z)
	local := sphere.Vec{X: s * math.Cos(phi), Y: s * math.Sin(phi), Z: z}
	return rotateToAxis(local, c.Center)
}

// rotateToAxis rotates a vector expressed around the +Z axis so that +Z
// maps to the given axis.
func rotateToAxis(v, axis sphere.Vec) sphere.Vec {
	z := sphere.Vec{Z: 1}
	a := axis.Normalize()
	if a.Sub(z).Norm() < 1e-12 {
		return v
	}
	if a.Add(z).Norm() < 1e-12 { // antipodal: flip
		return sphere.Vec{X: v.X, Y: -v.Y, Z: -v.Z}
	}
	// Rodrigues rotation about k = z × a by the angle between z and a.
	k := z.Cross(a).Normalize()
	cos := z.Dot(a)
	sin := z.Cross(a).Norm()
	return v.Scale(cos).Add(k.Cross(v).Scale(sin)).Add(k.Scale(k.Dot(v) * (1 - cos)))
}

// Config describes one synthetic archive drawn over a field.
type Config struct {
	// Name is the archive name (e.g. "SDSS").
	Name string
	// SigmaArcsec is the positional error.
	SigmaArcsec float64
	// Completeness is the per-body detection probability in [0, 1].
	Completeness float64
	// FluxOffset shifts observed fluxes (different wavelength bands).
	FluxOffset float64
	// ExtraDensity adds this many spurious (unmatched) objects per true
	// body, uniformly in the field: noise detections unique to the archive.
	ExtraDensity float64
	// Seed drives the archive's private randomness.
	Seed int64
	// SpatialLevel overrides the HTM leaf level (0 = default).
	SpatialLevel int
}

// Observation is one archive row before storage.
type Observation struct {
	ObjectID int64 // unique within the archive
	BodyID   int64 // 0 for spurious detections
	Pos      sphere.Vec
	Flux     float64
	Galaxy   bool
}

// Archive is a generated synthetic archive.
type Archive struct {
	Config Config
	Obs    []Observation
}

// Observe generates the archive's observations of a field.
func Observe(f *Field, cfg Config) *Archive {
	rng := rand.New(rand.NewSource(cfg.Seed))
	a := &Archive{Config: cfg}
	next := int64(1)
	for _, b := range f.Bodies {
		if rng.Float64() >= cfg.Completeness {
			continue
		}
		a.Obs = append(a.Obs, Observation{
			ObjectID: next,
			BodyID:   b.ID,
			Pos:      scatter(rng, b.Pos, cfg.SigmaArcsec),
			Flux:     b.BaseFlux + cfg.FluxOffset + rng.NormFloat64()*0.1,
			Galaxy:   b.Galaxy,
		})
		next++
	}
	extra := int(cfg.ExtraDensity * float64(len(f.Bodies)))
	for i := 0; i < extra; i++ {
		a.Obs = append(a.Obs, Observation{
			ObjectID: next,
			BodyID:   0,
			Pos:      randInCap(rng, f.Region),
			Flux:     1 + rng.ExpFloat64()*20 + cfg.FluxOffset,
			Galaxy:   rng.Float64() < 0.3,
		})
		next++
	}
	return a
}

// scatter displaces a unit vector by a 2-D Gaussian with the given sigma
// in arc seconds, isotropic on the tangent plane.
func scatter(rng *rand.Rand, pos sphere.Vec, sigmaArcsec float64) sphere.Vec {
	s := sphere.Arcsec(sigmaArcsec) * sphere.RadPerDeg
	// Tangent-plane basis at pos.
	ref := sphere.Vec{Z: 1}
	if math.Abs(pos.Z) > 0.9 {
		ref = sphere.Vec{X: 1}
	}
	e1 := pos.Cross(ref).Normalize()
	e2 := pos.Cross(e1).Normalize()
	dx := rng.NormFloat64() * s
	dy := rng.NormFloat64() * s
	return pos.Add(e1.Scale(dx)).Add(e2.Scale(dy)).Normalize()
}

// TableName is the conventional primary-table name of generated archives.
const TableName = "PhotoObject"

// Schema is the primary-table schema of generated archives.
func Schema() storage.Schema {
	return storage.Schema{
		{Name: "object_id", Type: value.IntType},
		{Name: "body_id", Type: value.IntType}, // ground truth, for verification
		{Name: "ra", Type: value.FloatType},
		{Name: "dec", Type: value.FloatType},
		{Name: "flux", Type: value.FloatType},
		{Name: "type", Type: value.StringType},
		// flags is a reserved per-observation quality-flag column that the
		// synthetic pipeline never populates: every cell is NULL. It mirrors
		// the sparsely populated columns of real archives and exercises the
		// all-NULL zone-map path end to end.
		{Name: "flags", Type: value.IntType},
	}
}

// SpatialLevel resolves the archive's HTM leaf level (the storage
// default when the config leaves it zero).
func (a *Archive) SpatialLevel() int {
	if a.Config.SpatialLevel != 0 {
		return a.Config.SpatialLevel
	}
	return storage.DefaultSpatialLevel
}

// SortedObs returns the observations ordered by (leaf trixel ID,
// original index): the canonical insertion order. Loading archives in
// trixel order makes a table's scan order independent of how the
// archive is partitioned — a shard holding trixels [lo,hi] stores
// exactly a contiguous slice of this order, so concatenating shard
// scans in range order reproduces the single-node scan at any shard
// count. Query results must therefore be bit-identical across shard
// counts even for queries with no ORDER BY.
func (a *Archive) SortedObs() []Observation {
	level := a.SpatialLevel()
	obs := append([]Observation(nil), a.Obs...)
	ids := make([]htm.ID, len(obs))
	for i, o := range obs {
		ids[i] = htm.Lookup(o.Pos, level)
	}
	order := make([]int, len(obs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		a, b := order[x], order[y]
		if ids[a] != ids[b] {
			return ids[a] < ids[b]
		}
		return a < b
	})
	out := make([]Observation, len(obs))
	for i, j := range order {
		out[i] = obs[j]
	}
	return out
}

// Partition splits the archive into n shards by trixel range: the
// observations in canonical trixel order, cut into n contiguous runs of
// roughly equal size at trixel boundaries. The returned ranges tile the
// full trixel universe at the archive's spatial level — every sky
// position routes to exactly one shard, including empty ones.
func (a *Archive) Partition(n int) []ShardPart {
	level := a.SpatialLevel()
	uni := htm.LevelRange(level)
	if n <= 1 {
		return []ShardPart{{Archive: a, Lo: uint64(uni.Lo), Hi: uint64(uni.Hi)}}
	}
	obs := a.SortedObs()
	ids := make([]htm.ID, len(obs))
	for i, o := range obs {
		ids[i] = htm.Lookup(o.Pos, level)
	}
	parts := make([]ShardPart, n)
	lo := uint64(uni.Lo)
	start := 0
	for k := 0; k < n; k++ {
		end := len(obs)
		if k < n-1 {
			// Aim at an even row split, then push the cut forward to the
			// next trixel boundary so no trixel straddles two shards.
			end = (len(obs) * (k + 1)) / n
			if end < start {
				end = start
			}
			for end > start && end < len(obs) && ids[end] == ids[end-1] {
				end++
			}
		}
		hi := uint64(uni.Hi)
		if k < n-1 {
			if end < len(obs) {
				hi = uint64(ids[end]) - 1
			} else {
				// Out of observations: split the remaining ID space evenly
				// among the empty tail shards.
				left := uint64(uni.Hi) - lo + 1
				hi = lo + left/uint64(n-k) - 1
			}
		}
		sub := &Archive{Config: a.Config, Obs: obs[start:end]}
		parts[k] = ShardPart{Archive: sub, Lo: lo, Hi: hi}
		lo = hi + 1
		start = end
	}
	return parts
}

// ShardPart is one trixel-range shard of a partitioned archive.
type ShardPart struct {
	// Archive holds the shard's slice of the observations.
	Archive *Archive
	// Lo, Hi is the shard's inclusive trixel range at the archive's
	// spatial level.
	Lo, Hi uint64
}

// BuildDB loads the archive into a fresh storage database with an HTM
// index on the primary table. Rows load in canonical trixel order (see
// SortedObs), which keeps scan order — and therefore every query
// result — independent of archive partitioning.
func (a *Archive) BuildDB() (*storage.DB, error) {
	db := storage.NewDB()
	t, err := db.Create(TableName, Schema())
	if err != nil {
		return nil, err
	}
	for _, o := range a.SortedObs() {
		ra, dec := o.Pos.RaDec()
		typ := "STAR"
		if o.Galaxy {
			typ = "GALAXY"
		}
		err := t.Append(
			value.Int(o.ObjectID),
			value.Int(o.BodyID),
			value.Float(ra),
			value.Float(dec),
			value.Float(o.Flux),
			value.String(typ),
			value.Null, // flags: unpopulated by the synthetic pipeline
		)
		if err != nil {
			return nil, err
		}
	}
	if err := t.EnableSpatial(storage.SpatialConfig{RACol: "ra", DecCol: "dec", Level: a.Config.SpatialLevel}); err != nil {
		return nil, err
	}
	return db, nil
}

// ObservationSet converts the archive to the brute-force matcher's input.
func (a *Archive) ObservationSet(dropOut bool) xmatch.ArchiveSet {
	set := xmatch.ArchiveSet{Sigma: a.Config.SigmaArcsec, DropOut: dropOut}
	for _, o := range a.Obs {
		set.Obs = append(set.Obs, xmatch.Observation{Pos: o.Pos, Key: o.ObjectID})
	}
	return set
}

// String summarizes the archive.
func (a *Archive) String() string {
	return fmt.Sprintf("%s: %d observations, sigma=%.2g\", completeness=%.2f",
		a.Config.Name, len(a.Obs), a.Config.SigmaArcsec, a.Config.Completeness)
}
