package survey

import (
	"math"
	"testing"

	"skyquery/internal/sphere"
)

func testRegion() sphere.Cap { return sphere.NewCap(185, -0.5, 0.5) }

func TestGenerateFieldDeterministic(t *testing.T) {
	f1 := GenerateField(testRegion(), 100, 0.3, 42)
	f2 := GenerateField(testRegion(), 100, 0.3, 42)
	if len(f1.Bodies) != 100 || len(f2.Bodies) != 100 {
		t.Fatal("wrong body count")
	}
	for i := range f1.Bodies {
		if f1.Bodies[i] != f2.Bodies[i] {
			t.Fatalf("body %d differs between same-seed runs", i)
		}
	}
	f3 := GenerateField(testRegion(), 100, 0.3, 43)
	same := 0
	for i := range f3.Bodies {
		if f3.Bodies[i].Pos == f1.Bodies[i].Pos {
			same++
		}
	}
	if same == 100 {
		t.Error("different seeds produced identical fields")
	}
}

func TestBodiesInsideRegion(t *testing.T) {
	reg := testRegion()
	f := GenerateField(reg, 2000, 0.3, 1)
	for _, b := range f.Bodies {
		if !reg.Contains(b.Pos) {
			t.Fatalf("body %d outside region: sep=%g", b.ID, reg.Center.Sep(b.Pos))
		}
		if math.Abs(b.Pos.Norm()-1) > 1e-9 {
			t.Fatalf("body %d position not unit: %g", b.ID, b.Pos.Norm())
		}
	}
}

func TestBodiesRoughlyUniform(t *testing.T) {
	// Split the cap into an inner half-area cap and the rest; counts
	// should be roughly equal.
	reg := testRegion()
	f := GenerateField(reg, 10000, 0.3, 2)
	// Half the cap's area: 1-cos(r') = (1-cos(r))/2.
	cosR := math.Cos(reg.Radius * sphere.RadPerDeg)
	rHalf := math.Acos((1+cosR)/2) * sphere.DegPerRad
	inner := sphere.CapAround(reg.Center, rHalf)
	n := 0
	for _, b := range f.Bodies {
		if inner.Contains(b.Pos) {
			n++
		}
	}
	if n < 4700 || n > 5300 {
		t.Errorf("inner half-area holds %d of 10000 bodies; distribution not uniform", n)
	}
}

func TestGenerateFieldAtPole(t *testing.T) {
	reg := sphere.NewCap(0, 90, 1)
	f := GenerateField(reg, 500, 0.3, 3)
	for _, b := range f.Bodies {
		if !reg.Contains(b.Pos) {
			t.Fatal("body outside polar region")
		}
	}
	// Antipodal region too.
	reg = sphere.NewCap(0, -90, 1)
	f = GenerateField(reg, 500, 0.3, 4)
	for _, b := range f.Bodies {
		if !reg.Contains(b.Pos) {
			t.Fatal("body outside south polar region")
		}
	}
}

func TestObserveCompleteness(t *testing.T) {
	f := GenerateField(testRegion(), 5000, 0.3, 5)
	a := Observe(f, Config{Name: "A", SigmaArcsec: 0.1, Completeness: 0.8, Seed: 6})
	got := float64(len(a.Obs)) / 5000
	if got < 0.76 || got > 0.84 {
		t.Errorf("completeness 0.8 produced %d/5000 = %.3f", len(a.Obs), got)
	}
	full := Observe(f, Config{Name: "B", SigmaArcsec: 0.1, Completeness: 1, Seed: 7})
	if len(full.Obs) != 5000 {
		t.Errorf("completeness 1 produced %d/5000", len(full.Obs))
	}
	none := Observe(f, Config{Name: "C", SigmaArcsec: 0.1, Completeness: 0, Seed: 8})
	if len(none.Obs) != 0 {
		t.Errorf("completeness 0 produced %d", len(none.Obs))
	}
}

func TestObserveScatterMagnitude(t *testing.T) {
	f := GenerateField(testRegion(), 4000, 0.3, 9)
	const sigma = 0.5
	a := Observe(f, Config{Name: "A", SigmaArcsec: sigma, Completeness: 1, Seed: 10})
	byID := map[int64]Body{}
	for _, b := range f.Bodies {
		byID[b.ID] = b
	}
	var sum2 float64
	for _, o := range a.Obs {
		sep := sphere.ToArcsec(o.Pos.Sep(byID[o.BodyID].Pos))
		sum2 += sep * sep
	}
	// E[sep²] = 2σ² for a 2-D Gaussian.
	rms := math.Sqrt(sum2 / float64(len(a.Obs)))
	want := sigma * math.Sqrt2
	if rms < want*0.93 || rms > want*1.07 {
		t.Errorf("scatter rms = %.3g arcsec, want ~%.3g", rms, want)
	}
}

func TestObserveExtraDensity(t *testing.T) {
	f := GenerateField(testRegion(), 1000, 0.3, 11)
	a := Observe(f, Config{Name: "A", SigmaArcsec: 0.1, Completeness: 1, ExtraDensity: 0.5, Seed: 12})
	spurious := 0
	for _, o := range a.Obs {
		if o.BodyID == 0 {
			spurious++
		}
	}
	if spurious != 500 {
		t.Errorf("spurious = %d, want 500", spurious)
	}
}

func TestObjectIDsUnique(t *testing.T) {
	f := GenerateField(testRegion(), 1000, 0.3, 13)
	a := Observe(f, Config{Name: "A", SigmaArcsec: 0.1, Completeness: 0.7, ExtraDensity: 0.3, Seed: 14})
	seen := map[int64]bool{}
	for _, o := range a.Obs {
		if seen[o.ObjectID] {
			t.Fatalf("duplicate object id %d", o.ObjectID)
		}
		seen[o.ObjectID] = true
	}
}

func TestBuildDB(t *testing.T) {
	f := GenerateField(testRegion(), 500, 0.4, 15)
	a := Observe(f, Config{Name: "A", SigmaArcsec: 0.1, Completeness: 0.9, Seed: 16})
	db, err := a.BuildDB()
	if err != nil {
		t.Fatal(err)
	}
	tab, ok := db.Table(TableName)
	if !ok {
		t.Fatal("primary table missing")
	}
	if tab.RowCount() != len(a.Obs) {
		t.Errorf("rows = %d, want %d", tab.RowCount(), len(a.Obs))
	}
	if !tab.HasSpatial() {
		t.Error("spatial index missing")
	}
	// Spot check a row's position survives the round trip through ra/dec.
	// Rows load in canonical trixel order, so row 0 is SortedObs()[0],
	// not necessarily Obs[0].
	first := a.SortedObs()[0]
	ra, _ := tab.Value(0, 2).AsFloat()
	dec, _ := tab.Value(0, 3).AsFloat()
	if sep := sphere.FromRaDec(ra, dec).Sep(first.Pos); sep > 1e-9 {
		t.Errorf("position round trip off by %g deg", sep)
	}
	// Types must be the GALAXY/STAR vocabulary.
	typ := tab.Value(0, 5).AsString()
	if typ != "GALAXY" && typ != "STAR" {
		t.Errorf("type = %q", typ)
	}
}

func TestObservationSet(t *testing.T) {
	f := GenerateField(testRegion(), 100, 0.4, 17)
	a := Observe(f, Config{Name: "A", SigmaArcsec: 0.25, Completeness: 1, Seed: 18})
	set := a.ObservationSet(true)
	if !set.DropOut || set.Sigma != 0.25 || len(set.Obs) != len(a.Obs) {
		t.Errorf("set = %+v", set)
	}
}

func TestArchiveString(t *testing.T) {
	f := GenerateField(testRegion(), 10, 0.4, 19)
	a := Observe(f, Config{Name: "SDSS", SigmaArcsec: 0.1, Completeness: 1, Seed: 20})
	if a.String() == "" {
		t.Error("empty String()")
	}
}
