package wsdl

import (
	"encoding/xml"
	"strings"
	"testing"
)

func sampleService() Service {
	return Service{
		Name:     "SkyNode.SDSS",
		Endpoint: "http://sdss.example/soap",
		Operations: []Operation{
			{Name: "Query", Action: "urn:skyquery:Query", Doc: "general-purpose querying"},
			{Name: "CrossMatch", Action: "urn:skyquery:CrossMatch", Doc: "cross match step"},
			{Name: "Metadata", Action: "urn:skyquery:Metadata"},
			{Name: "Information", Action: "urn:skyquery:Information"},
		},
	}
}

func TestDocumentWellFormed(t *testing.T) {
	doc, err := Document(sampleService())
	if err != nil {
		t.Fatal(err)
	}
	var any struct{}
	if err := xml.Unmarshal([]byte(doc), &any); err != nil {
		t.Fatalf("document is not well-formed XML: %v\n%s", err, doc)
	}
}

func TestDocumentContents(t *testing.T) {
	doc, err := Document(sampleService())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`name="SkyNode.SDSS"`,
		`targetNamespace="urn:skyquery:SkyNode.SDSS"`,
		`location="http://sdss.example/soap"`,
		`soapAction="urn:skyquery:CrossMatch"`,
		`<operation name="Query">`,
		`message="QueryRequest"`,
		`message="QueryResponse"`,
		"general-purpose querying",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("document missing %q", want)
		}
	}
}

func TestDocumentOperationsSorted(t *testing.T) {
	doc, err := Document(sampleService())
	if err != nil {
		t.Fatal(err)
	}
	// CrossMatch must come before Query in the portType.
	if strings.Index(doc, `name="CrossMatch"`) > strings.Index(doc, `name="Query"`) {
		t.Error("operations not sorted by name")
	}
}

func TestDocumentCustomNamespace(t *testing.T) {
	s := sampleService()
	s.Namespace = "urn:custom:ns"
	doc, err := Document(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc, `targetNamespace="urn:custom:ns"`) {
		t.Error("custom namespace not honored")
	}
}

func TestDocumentRequiresName(t *testing.T) {
	if _, err := Document(Service{Endpoint: "http://x"}); err == nil {
		t.Error("expected error for unnamed service")
	}
}

func TestDocumentNoOperations(t *testing.T) {
	doc, err := Document(Service{Name: "Empty", Endpoint: "http://x"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc, `name="Empty"`) {
		t.Error("empty service should still render")
	}
}
