// Package wsdl generates the service descriptions (§3.1) SkyQuery
// endpoints publish: a deliberately minimal WSDL 1.1 document with the two
// parts the paper highlights — the service definition (abstract operations
// and messages) and the service implementation (SOAP-over-HTTP binding and
// endpoint address).
package wsdl

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"sort"
)

// Operation is one SOAP operation of a service.
type Operation struct {
	// Name is the operation name, e.g. "CrossMatch".
	Name string
	// Action is the SOAPAction the operation is dispatched on.
	Action string
	// Doc is a human-readable description.
	Doc string
}

// Service describes one endpoint.
type Service struct {
	// Name is the service name, e.g. "SkyNode.SDSS".
	Name string
	// Endpoint is the HTTP URL the service is bound to.
	Endpoint string
	// Namespace qualifies the service's messages; a default is derived
	// from the name when empty.
	Namespace string
	// Operations lists the operations, serialized in name order.
	Operations []Operation
}

type definitions struct {
	XMLName   xml.Name  `xml:"definitions"`
	Name      string    `xml:"name,attr"`
	TargetNS  string    `xml:"targetNamespace,attr"`
	XMLNSSoap string    `xml:"xmlns:soap,attr"`
	PortType  portType  `xml:"portType"`
	Binding   binding   `xml:"binding"`
	Service   serviceEl `xml:"service"`
}

type portType struct {
	Name string `xml:"name,attr"`
	Ops  []ptOp `xml:"operation"`
}

type ptOp struct {
	Name string `xml:"name,attr"`
	Doc  string `xml:"documentation,omitempty"`
	In   ioMsg  `xml:"input"`
	Out  ioMsg  `xml:"output"`
}

type ioMsg struct {
	Message string `xml:"message,attr"`
}

type binding struct {
	Name string  `xml:"name,attr"`
	Type string  `xml:"type,attr"`
	Ops  []bndOp `xml:"operation"`
}

type bndOp struct {
	Name string `xml:"name,attr"`
	Soap soapOp `xml:"soap:operation"`
}

type soapOp struct {
	Action string `xml:"soapAction,attr"`
}

type serviceEl struct {
	Name string `xml:"name,attr"`
	Port port   `xml:"port"`
}

type port struct {
	Name    string   `xml:"name,attr"`
	Binding string   `xml:"binding,attr"`
	Address soapAddr `xml:"soap:address"`
}

type soapAddr struct {
	Location string `xml:"location,attr"`
}

// Document renders the WSDL document for the service.
func Document(s Service) (string, error) {
	if s.Name == "" {
		return "", fmt.Errorf("wsdl: service needs a name")
	}
	ns := s.Namespace
	if ns == "" {
		ns = "urn:skyquery:" + s.Name
	}
	ops := append([]Operation(nil), s.Operations...)
	sort.Slice(ops, func(i, j int) bool { return ops[i].Name < ops[j].Name })

	d := definitions{
		Name:      s.Name,
		TargetNS:  ns,
		XMLNSSoap: "http://schemas.xmlsoap.org/wsdl/soap/",
		PortType:  portType{Name: s.Name + "PortType"},
		Binding:   binding{Name: s.Name + "Binding", Type: s.Name + "PortType"},
		Service: serviceEl{
			Name: s.Name,
			Port: port{
				Name:    s.Name + "Port",
				Binding: s.Name + "Binding",
				Address: soapAddr{Location: s.Endpoint},
			},
		},
	}
	for _, op := range ops {
		d.PortType.Ops = append(d.PortType.Ops, ptOp{
			Name: op.Name,
			Doc:  op.Doc,
			In:   ioMsg{Message: op.Name + "Request"},
			Out:  ioMsg{Message: op.Name + "Response"},
		})
		d.Binding.Ops = append(d.Binding.Ops, bndOp{
			Name: op.Name,
			Soap: soapOp{Action: op.Action},
		})
	}
	var buf bytes.Buffer
	buf.WriteString(xml.Header)
	enc := xml.NewEncoder(&buf)
	enc.Indent("", "  ")
	if err := enc.Encode(d); err != nil {
		return "", fmt.Errorf("wsdl: %w", err)
	}
	return buf.String(), nil
}
