package portal

// The Portal's compiled-plan cache. Preparing a cross-match query is
// itself a federated operation: parse, validate, decompose, and one
// count-star performance query per mandatory archive — a full SOAP
// round-trip fan-out before the chain even starts. Interactive clients
// re-submit the same query text constantly (page reloads, polling
// tools), so the Portal keeps the resulting core.Prepared keyed by the
// query's canonical form and replays it, skipping everything up to and
// including the count-star probes on a hit.
//
// Like the LIKE-pattern cache in internal/eval, the cache is bounded by
// two generations of at most its configured size: when the current
// generation fills it becomes the previous one, and entries still in
// use are promoted back on their next hit. The portal accepts arbitrary
// query streams, so an unbounded map keyed by query text would grow
// forever under unique queries.
//
// Invalidation is by key construction, not by scanning: the key salts
// the canonical SQL with the portal's catalog version (bumped on every
// registration) and its planning options, so a schema change or an
// option change simply stops matching the old entries, which then age
// out through generation rotation. A stale hit is impossible; a stale
// entry merely occupies space for at most two rotations.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"skyquery/internal/core"
)

// DefaultPlanCacheSize is the per-generation entry bound used when
// Config.PlanCacheSize is zero. Two generations are live at once, so at
// most twice this many plans are retained.
const DefaultPlanCacheSize = 256

// planCache is a bounded two-generation cache of prepared queries.
type planCache struct {
	size int

	mu   sync.RWMutex
	cur  map[string]*core.Prepared
	prev map[string]*core.Prepared

	hits   atomic.Int64
	misses atomic.Int64
}

// newPlanCache builds a cache with the given per-generation size;
// size == 0 means DefaultPlanCacheSize, negative disables caching
// entirely (returns nil — a nil *planCache never hits).
func newPlanCache(size int) *planCache {
	if size < 0 {
		return nil
	}
	if size == 0 {
		size = DefaultPlanCacheSize
	}
	return &planCache{size: size}
}

// get looks up a prepared query, promoting previous-generation hits.
func (c *planCache) get(key string) (*core.Prepared, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.RLock()
	prep, hit := c.cur[key]
	c.mu.RUnlock()
	if hit {
		c.hits.Add(1)
		return prep, true
	}
	c.mu.Lock()
	if prep, ok := c.cur[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return prep, true
	}
	if prep, ok := c.prev[key]; ok {
		c.insertLocked(key, prep)
		c.mu.Unlock()
		c.hits.Add(1)
		return prep, true
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// put stores a freshly prepared query. A concurrent duplicate prepare
// is harmless: last writer wins, both values are equivalent.
func (c *planCache) put(key string, prep *core.Prepared) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.insertLocked(key, prep)
	c.mu.Unlock()
}

func (c *planCache) insertLocked(key string, prep *core.Prepared) {
	if c.cur == nil {
		c.cur = make(map[string]*core.Prepared, c.size)
	}
	if len(c.cur) >= c.size {
		c.prev = c.cur
		c.cur = make(map[string]*core.Prepared, c.size)
	}
	c.cur[key] = prep
}

// entries reports the number of retained plans across both generations.
func (c *planCache) entries() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.cur) + len(c.prev)
}

// PlanCacheStats is a snapshot of the plan cache's counters.
type PlanCacheStats struct {
	// Hits and Misses count lookups; disabled caches report zero for
	// both (every query is prepared fresh without consulting a cache).
	Hits, Misses int64
	// Entries is the number of plans currently retained.
	Entries int
}

// PlanCacheStats reports the Portal's plan-cache counters.
func (p *Portal) PlanCacheStats() PlanCacheStats {
	if p.plans == nil {
		return PlanCacheStats{}
	}
	return PlanCacheStats{
		Hits:    p.plans.hits.Load(),
		Misses:  p.plans.misses.Load(),
		Entries: p.plans.entries(),
	}
}

// planSalt folds everything besides the query text that a prepared plan
// depends on into a key suffix: the catalog version (schema or
// membership changes re-plan) and the planning options written into
// every plan. Differing salts can never share an entry.
func (p *Portal) planSalt() string {
	return fmt.Sprintf("v%d|c%d|p%d|m%t|o%t|a%t",
		p.catalogVersion.Load(), p.cfg.ChunkRows, p.cfg.Parallelism, p.cfg.IncludeMatchColumns,
		p.cfg.CountProbeOrder, p.cfg.AdaptiveReorder)
}
