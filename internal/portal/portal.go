// Package portal implements the SkyQuery Portal (§5.1): the mediator
// between clients and SkyNodes. It provides the Registration service
// nodes use to join the federation (cataloging their metadata and
// archive constants via call-backs to their Metadata and Information
// services) and the SkyQuery service that accepts cross-match queries,
// decomposes them, optimizes the execution order with count-star
// performance queries (§5.3), kicks off the daisy chain, and relays the
// final result to the client.
package portal

import (
	"context"
	"encoding/xml"
	"fmt"
	"sync"
	"sync/atomic"

	"skyquery/internal/core"
	"skyquery/internal/registry"
	"skyquery/internal/skynode"
	"skyquery/internal/soap"
	"skyquery/internal/wsdl"
)

// SOAPAction names of the Portal services.
const (
	ActionRegister = "urn:skyquery:Register"
	ActionSkyQuery = "urn:skyquery:SkyQuery"
)

// Event is a trace point emitted through Config.OnEvent; the F3
// experiment uses it to verify Figure 3's step order.
type Event struct {
	// Kind is one of "submit", "perfquery.send", "perfquery.recv",
	// "plan", "execute", "relay".
	Kind string
	// Detail is a human-readable annotation.
	Detail string
}

// Config assembles a Portal.
type Config struct {
	// Client is used for calls to SkyNodes; nil gets a default client.
	Client *soap.Client
	// ChunkRows bounds rows per response message; 0 means 5000.
	ChunkRows int
	// MessageLimit configures the SOAP server's accepted message size.
	MessageLimit int64
	// IncludeMatchColumns appends _matchRA, _matchDec, _logLikelihood and
	// _nObs diagnostic columns to cross-match results.
	IncludeMatchColumns bool
	// Parallelism is written into every execution plan as the per-node
	// worker-count hint for chain steps. 0 lets each node choose
	// (GOMAXPROCS); 1 requests the sequential path. A node's own
	// configuration overrides the hint.
	Parallelism int
	// PlanCacheSize bounds the compiled-plan cache (entries per
	// generation, two generations live — see plancache.go). 0 means
	// DefaultPlanCacheSize; negative disables plan caching.
	PlanCacheSize int
	// CountProbeOrder reverts chain ordering to the pure count-star rule
	// of §5.3. The default (false) probes nodes' StatsSummary service and
	// orders by the transfer-cost model when statistics are available.
	CountProbeOrder bool
	// AdaptiveReorder stamps plans with permission for chain nodes to
	// re-order the not-yet-called downstream suffix when live estimates
	// diverge from the plan's. Results are bit-identical either way.
	AdaptiveReorder bool
	// Codec selects the SOAP server's response codec policy; the default
	// negotiates the binary columnar format with clients that accept it.
	Codec soap.Codec
	// OnEvent, when set, receives trace events; must be fast and
	// concurrency-safe.
	OnEvent func(Event)
}

// archiveInfo is the Portal's catalog entry for one registered SkyNode.
type archiveInfo struct {
	Name     string
	Endpoint string
	Info     skynode.InformationResponse
	Tables   map[string]skynode.TableMeta
}

// Portal is a running mediator.
type Portal struct {
	cfg    Config
	client *soap.Client
	server *soap.Server
	chunks soap.ChunkStore
	reg    *registry.Registry

	mu       sync.RWMutex
	catalog  map[string]*archiveInfo
	self     string
	querySeq atomic.Int64

	// shardDown remembers replica endpoints that failed a scatter call,
	// each until its cooldown expires (see scatter.go).
	shardDown sync.Map

	// catalogVersion bumps on every registration; the plan cache salts
	// its keys with it, so catalog changes invalidate cached plans.
	catalogVersion atomic.Uint64
	plans          *planCache

	// noStats caches endpoints whose node faulted on the StatsSummary
	// action (an older node), so every later plan skips the probe and
	// goes straight to the count-star fallback. Registration clears the
	// endpoint's entry: a re-registered node may have been upgraded.
	noStats sync.Map

	engineOnce sync.Once
	coreEngine *core.Engine
}

// New builds a Portal.
func New(cfg Config) *Portal {
	if cfg.ChunkRows == 0 {
		cfg.ChunkRows = 5000
	}
	p := &Portal{
		cfg:     cfg,
		client:  cfg.Client,
		reg:     registry.New(),
		catalog: map[string]*archiveInfo{},
		plans:   newPlanCache(cfg.PlanCacheSize),
	}
	if p.client == nil {
		p.client = &soap.Client{}
	}
	p.server = soap.NewServer()
	p.server.MessageLimit = cfg.MessageLimit
	p.server.Codec = cfg.Codec
	p.server.Handle(ActionRegister, p.handleRegister)
	p.server.Handle(ActionSkyQuery, p.handleSkyQuery)
	p.server.Handle(soap.FetchAction, p.chunks.FetchHandler())
	return p
}

// Server returns the Portal's SOAP server (an http.Handler).
func (p *Portal) Server() *soap.Server { return p.server }

// SetSelfURL records the Portal's own public URL. Sharded chain
// execution requires it: nodes fetch their step's incoming tuples back
// from the Portal's chunk stash at this address.
func (p *Portal) SetSelfURL(u string) {
	p.mu.Lock()
	p.self = u
	p.mu.Unlock()
}

func (p *Portal) selfURL() string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.self
}

// Registry exposes the service registry (read-mostly; useful for tools).
func (p *Portal) Registry() *registry.Registry { return p.reg }

// ChunkPending reports how many chunked transfers (client result tails
// and scatter stash tokens) the Portal currently holds parked (test
// instrumentation: cancelled work must release these promptly).
func (p *Portal) ChunkPending() int { return p.chunks.Pending() }

// SetWSDL generates and installs the Portal's WSDL for its public URL.
func (p *Portal) SetWSDL(endpoint string) error {
	doc, err := wsdl.Document(wsdl.Service{
		Name:     "SkyQueryPortal",
		Endpoint: endpoint,
		Operations: []wsdl.Operation{
			{Name: "Register", Action: ActionRegister, Doc: "join the federation"},
			{Name: "SkyQuery", Action: ActionSkyQuery, Doc: "submit a federated cross-match query"},
			{Name: "Fetch", Action: soap.FetchAction, Doc: "continuation fetch for chunked results"},
		},
	})
	if err != nil {
		return err
	}
	p.server.WSDL = doc
	return nil
}

func (p *Portal) emit(kind, format string, args ...interface{}) {
	if p.cfg.OnEvent == nil {
		return
	}
	p.cfg.OnEvent(Event{Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// RegisterRequest is the wire form of the Registration service call: the
// joining node announces its name, endpoint, and available services.
type RegisterRequest struct {
	XMLName  xml.Name `xml:"Register"`
	Name     string   `xml:"name,attr"`
	Endpoint string   `xml:"endpoint,attr"`
	Services []string `xml:"Service,omitempty"`
	// Shard, when present, registers the node as one replica of a shard
	// of the archive instead of the whole archive (see WIRE.md).
	Shard *ShardInfo `xml:"Shard,omitempty"`
}

// ShardInfo is the registration payload announcing a node as one
// replica of a trixel-range shard: shard Index of Count, holding the
// inclusive trixel range [Lo, Hi] at HTM level Level. Follower marks a
// read replica; the default registers the shard's append leader.
type ShardInfo struct {
	Index    int    `xml:"index,attr"`
	Count    int    `xml:"count,attr"`
	Level    int    `xml:"level,attr"`
	Lo       uint64 `xml:"lo,attr"`
	Hi       uint64 `xml:"hi,attr"`
	Follower bool   `xml:"follower,attr,omitempty"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	XMLName xml.Name `xml:"RegisterResponse"`
	OK      bool     `xml:"ok,attr"`
	// Members is the federation size after the registration.
	Members int `xml:"members,attr"`
}

// SkyQueryRequest is the wire form of a query submission.
type SkyQueryRequest struct {
	XMLName xml.Name `xml:"SkyQuery"`
	SQL     string   `xml:"SQL"`
}

func (p *Portal) handleRegister(r *soap.Request) (interface{}, error) {
	var req RegisterRequest
	if err := r.Decode(&req); err != nil {
		return nil, err
	}
	if req.Shard != nil {
		if err := p.RegisterShard(req.Name, req.Endpoint, *req.Shard); err != nil {
			return nil, err
		}
	} else if err := p.Register(req.Name, req.Endpoint); err != nil {
		return nil, err
	}
	return &RegisterResponse{OK: true, Members: p.reg.Len()}, nil
}

func (p *Portal) handleSkyQuery(r *soap.Request) (interface{}, error) {
	var req SkyQueryRequest
	if err := r.Decode(&req); err != nil {
		return nil, err
	}
	ctx := r.Context()
	if r.WantsStream() {
		// Prepare (parse, validate, plan, count-star probes) and open the
		// chain before the response starts, so those failures still travel
		// as ordinary XML faults; only errors after the first byte go
		// in-band as columnar error frames.
		prep, err := p.prepared(ctx, req.SQL)
		if err != nil {
			return nil, err
		}
		ts, err := p.engine().ExecutePreparedStream(ctx, prep)
		if err != nil {
			return nil, err
		}
		return &soap.ChunkedStream{Run: func(sw *soap.StreamWriter) error {
			defer ts.Close()
			if err := sw.Schema(ts.Columns()); err != nil {
				return err
			}
			for {
				page, err := ts.Next()
				if err != nil {
					return err
				}
				if page == nil {
					return nil
				}
				if err := sw.Page(page); err != nil {
					return err
				}
			}
		}}, nil
	}
	res, err := p.Query(ctx, req.SQL)
	if err != nil {
		return nil, err
	}
	return p.chunks.Respond(res, p.cfg.ChunkRows), nil
}

// Register adds a SkyNode to the federation. Following §5.1, the Portal
// responds to the registration request by calling the node's Metadata
// service (cataloging its schema) and then its Information service
// (fetching the archive constants).
func (p *Portal) Register(name, endpoint string) error {
	if name == "" || endpoint == "" {
		return fmt.Errorf("portal: registration needs a name and an endpoint")
	}
	ctx := context.Background()
	var meta skynode.MetadataResponse
	if err := p.client.Call(ctx, endpoint, skynode.ActionMetadata, &skynode.MetadataRequest{}, &meta); err != nil {
		return fmt.Errorf("portal: metadata call-back to %s: %w", name, err)
	}
	var info skynode.InformationResponse
	if err := p.client.Call(ctx, endpoint, skynode.ActionInformation, &skynode.InformationRequest{}, &info); err != nil {
		return fmt.Errorf("portal: information call-back to %s: %w", name, err)
	}
	if info.Name != name {
		return fmt.Errorf("portal: node at %s says it is %q, registration claims %q", endpoint, info.Name, name)
	}
	if info.SigmaArcsec <= 0 {
		return fmt.Errorf("portal: node %s reports non-positive sigma %v", name, info.SigmaArcsec)
	}
	tables := map[string]skynode.TableMeta{}
	for _, t := range meta.Tables {
		tables[t.Name] = t
	}
	if _, ok := tables[info.PrimaryTable]; !ok {
		return fmt.Errorf("portal: node %s primary table %q missing from its metadata", name, info.PrimaryTable)
	}

	p.mu.Lock()
	p.catalog[name] = &archiveInfo{Name: name, Endpoint: endpoint, Info: info, Tables: tables}
	p.mu.Unlock()
	p.catalogVersion.Add(1)
	// A (re-)registered node may have been upgraded: forget any cached
	// "no StatsSummary" verdict and let the next plan re-probe it.
	p.noStats.Delete(endpoint)
	return p.reg.Register(registry.Entry{
		Name:     name,
		Endpoint: endpoint,
		Services: skynode.Actions,
		Metadata: map[string]string{
			"sigmaArcsec":  fmt.Sprintf("%g", info.SigmaArcsec),
			"primaryTable": info.PrimaryTable,
			"objectCount":  fmt.Sprintf("%d", info.ObjectCount),
		},
	})
}

// RegisterShard registers a node as one replica of a shard of the
// archive: the usual Metadata/Information call-backs validate the node
// and catalog its schema, then the shard's range and role merge into
// the archive's shard map. The archive becomes queryable once its
// shards tile the full trixel universe at their level, each with a
// leader; queries against a partially-registered shard map fail loudly.
func (p *Portal) RegisterShard(name, endpoint string, si ShardInfo) error {
	if err := p.Register(name, endpoint); err != nil {
		return err
	}
	if err := p.reg.RegisterShard(name, si.Index, registry.ShardRange{Lo: si.Lo, Hi: si.Hi},
		si.Level, si.Count, endpoint, si.Follower); err != nil {
		return err
	}
	p.emit("register.shard", "%s/%d [%d,%d] %s", name, si.Index, si.Lo, si.Hi, endpoint)
	return nil
}

// archive returns the catalog entry for a registered archive.
func (p *Portal) archive(name string) (*archiveInfo, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	a, ok := p.catalog[name]
	if !ok {
		return nil, fmt.Errorf("portal: archive %q is not part of the federation", name)
	}
	return a, nil
}

// Archives returns the names of the registered archives, sorted.
func (p *Portal) Archives() []string {
	entries := p.reg.List()
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name
	}
	return out
}
