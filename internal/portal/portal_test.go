package portal

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"

	"skyquery/internal/skynode"
	"skyquery/internal/soap"
	"skyquery/internal/sphere"
	"skyquery/internal/survey"
	"skyquery/internal/value"
	"skyquery/internal/xmatch"
)

func testRegion() sphere.Cap { return sphere.NewCap(185, -0.5, 0.25) }

// fed is a complete test federation: portal + three synthetic archives.
type fed struct {
	portal    *Portal
	portalURL string
	field     *survey.Field
	archives  map[string]*survey.Archive
	endpoints map[string]string

	mu     sync.Mutex
	events []string
}

func (f *fed) recordEvent(kind string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.events = append(f.events, kind)
}

func (f *fed) eventLog() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.events...)
}

func (f *fed) clearEvents() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.events = nil
}

func surveyConfigs() []survey.Config {
	return []survey.Config{
		{Name: "SDSS", SigmaArcsec: 0.1, Completeness: 0.95, Seed: 21, FluxOffset: 3},
		{Name: "TWOMASS", SigmaArcsec: 0.2, Completeness: 0.85, Seed: 22, ExtraDensity: 0.1},
		{Name: "FIRST", SigmaArcsec: 0.4, Completeness: 0.5, Seed: 23, FluxOffset: -1},
	}
}

func newFed(t *testing.T, nBodies int, cfgs []survey.Config) *fed {
	return newFedWith(t, nBodies, cfgs, Config{})
}

func newFedWith(t *testing.T, nBodies int, cfgs []survey.Config, pcfg Config) *fed {
	t.Helper()
	f := &fed{
		field:     survey.GenerateField(testRegion(), nBodies, 0.4, 2001),
		archives:  map[string]*survey.Archive{},
		endpoints: map[string]string{},
	}
	pcfg.OnEvent = func(e Event) { f.recordEvent(e.Kind) }
	f.portal = New(pcfg)
	pts := httptest.NewServer(f.portal.Server())
	t.Cleanup(pts.Close)
	f.portalURL = pts.URL
	for _, cfg := range cfgs {
		a := survey.Observe(f.field, cfg)
		db, err := a.BuildDB()
		if err != nil {
			t.Fatal(err)
		}
		n, err := skynode.New(skynode.Config{
			Name: cfg.Name, DB: db, PrimaryTable: survey.TableName,
			RACol: "ra", DecCol: "dec", SigmaArcsec: cfg.SigmaArcsec,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(n.Server())
		t.Cleanup(ts.Close)
		f.archives[cfg.Name] = a
		f.endpoints[cfg.Name] = ts.URL
		if err := f.portal.Register(cfg.Name, ts.URL); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// paperStyleQuery builds the §5.2 query against the synthetic schema.
func paperStyleQuery(extra string) string {
	reg := testRegion()
	ra, dec := reg.Center.RaDec()
	q := fmt.Sprintf(`SELECT O.object_id, T.object_id, P.object_id
		FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T, FIRST:PhotoObject P
		WHERE AREA(%g, %g, %g) AND XMATCH(O, T, P) < 3.0`,
		ra, dec, sphere.ToArcsec(reg.Radius))
	if extra != "" {
		q += " AND " + extra
	}
	return q
}

func (f *fed) oracle(t *testing.T, mandatory []string, dropOuts []string, threshold float64,
	keep func(keys map[string]int64) bool) []string {
	t.Helper()
	region := testRegion()
	var sets []xmatch.ArchiveSet
	var order []string
	for _, name := range mandatory {
		sets = append(sets, filteredSet(f.archives[name], region, false))
		order = append(order, name)
	}
	for _, name := range dropOuts {
		sets = append(sets, filteredSet(f.archives[name], region, true))
	}
	matches := xmatch.BruteForce(sets, threshold)
	var keys []string
	for _, m := range matches {
		kv := map[string]int64{}
		for i, name := range order {
			kv[name] = m.Keys[i]
		}
		if keep != nil && !keep(kv) {
			continue
		}
		keys = append(keys, renderKeys(kv))
	}
	sort.Strings(keys)
	return keys
}

func filteredSet(a *survey.Archive, region sphere.Cap, dropOut bool) xmatch.ArchiveSet {
	set := xmatch.ArchiveSet{Sigma: a.Config.SigmaArcsec, DropOut: dropOut}
	for _, o := range a.Obs {
		if region.Contains(o.Pos) {
			set.Obs = append(set.Obs, xmatch.Observation{Pos: o.Pos, Key: o.ObjectID})
		}
	}
	return set
}

func renderKeys(kv map[string]int64) string {
	names := make([]string, 0, len(kv))
	for n := range kv {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, kv[n])
	}
	return strings.Join(parts, ",")
}

func TestRegistration(t *testing.T) {
	f := newFed(t, 100, surveyConfigs())
	got := f.portal.Archives()
	want := []string{"FIRST", "SDSS", "TWOMASS"}
	if len(got) != 3 {
		t.Fatalf("archives = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("archives[%d] = %q", i, got[i])
		}
	}
	e, ok := f.portal.Registry().Find("SDSS")
	if !ok {
		t.Fatal("SDSS not in registry")
	}
	if e.Metadata["primaryTable"] != survey.TableName {
		t.Errorf("registry metadata = %v", e.Metadata)
	}
}

func TestRegistrationErrors(t *testing.T) {
	f := newFed(t, 10, surveyConfigs()[:1])
	if err := f.portal.Register("", ""); err == nil {
		t.Error("empty registration accepted")
	}
	if err := f.portal.Register("GHOST", "http://127.0.0.1:1/nope"); err == nil {
		t.Error("unreachable node accepted")
	}
	// Name mismatch: register the SDSS endpoint under a different name.
	if err := f.portal.Register("IMPOSTOR", f.endpoints["SDSS"]); err == nil ||
		!strings.Contains(err.Error(), "says it is") {
		t.Errorf("err = %v", err)
	}
}

func TestFederatedQueryMatchesOracle(t *testing.T) {
	f := newFed(t, 300, surveyConfigs())
	res, err := f.portal.Query(context.Background(), paperStyleQuery(""))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, row := range res.Rows {
		got = append(got, renderKeys(map[string]int64{
			"SDSS": row[0].AsInt(), "TWOMASS": row[1].AsInt(), "FIRST": row[2].AsInt(),
		}))
	}
	sort.Strings(got)
	want := f.oracle(t, []string{"SDSS", "TWOMASS", "FIRST"}, nil, 3.0, nil)
	compare(t, got, want)
	if len(got) == 0 {
		t.Error("degenerate: no matches")
	}
}

func TestFederatedDropOutMatchesOracle(t *testing.T) {
	f := newFed(t, 300, surveyConfigs())
	reg := testRegion()
	ra, dec := reg.Center.RaDec()
	sql := fmt.Sprintf(`SELECT O.object_id, T.object_id
		FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T, FIRST:PhotoObject P
		WHERE AREA(%g, %g, %g) AND XMATCH(O, T, !P) < 3.0`,
		ra, dec, sphere.ToArcsec(reg.Radius))
	res, err := f.portal.Query(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, row := range res.Rows {
		got = append(got, renderKeys(map[string]int64{
			"SDSS": row[0].AsInt(), "TWOMASS": row[1].AsInt(),
		}))
	}
	sort.Strings(got)
	want := f.oracle(t, []string{"SDSS", "TWOMASS"}, []string{"FIRST"}, 3.0, nil)
	compare(t, got, want)
	if len(got) == 0 {
		t.Error("degenerate: no drop-out matches")
	}
}

func TestFederatedQueryWithPredicates(t *testing.T) {
	f := newFed(t, 300, surveyConfigs())
	res, err := f.portal.Query(context.Background(), paperStyleQuery("O.type = 'GALAXY' AND (O.flux - T.flux) > 3"))
	if err != nil {
		t.Fatal(err)
	}
	// Build oracle: same matches filtered by the two predicates.
	galaxies := map[int64]bool{}
	fluxO := map[int64]float64{}
	for _, o := range f.archives["SDSS"].Obs {
		galaxies[o.ObjectID] = o.Galaxy
		fluxO[o.ObjectID] = o.Flux
	}
	fluxT := map[int64]float64{}
	for _, o := range f.archives["TWOMASS"].Obs {
		fluxT[o.ObjectID] = o.Flux
	}
	want := f.oracle(t, []string{"SDSS", "TWOMASS", "FIRST"}, nil, 3.0, func(kv map[string]int64) bool {
		return galaxies[kv["SDSS"]] && fluxO[kv["SDSS"]]-fluxT[kv["TWOMASS"]] > 3
	})
	var got []string
	for _, row := range res.Rows {
		got = append(got, renderKeys(map[string]int64{
			"SDSS": row[0].AsInt(), "TWOMASS": row[1].AsInt(), "FIRST": row[2].AsInt(),
		}))
	}
	sort.Strings(got)
	compare(t, got, want)
	if len(got) == 0 {
		t.Error("degenerate: no predicate matches")
	}
}

func TestFederatedCount(t *testing.T) {
	f := newFed(t, 200, surveyConfigs())
	reg := testRegion()
	ra, dec := reg.Center.RaDec()
	sql := fmt.Sprintf(`SELECT COUNT(*)
		FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T, FIRST:PhotoObject P
		WHERE AREA(%g, %g, %g) AND XMATCH(O, T, P) < 3.0`,
		ra, dec, sphere.ToArcsec(reg.Radius))
	res, err := f.portal.Query(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	want := len(f.oracle(t, []string{"SDSS", "TWOMASS", "FIRST"}, nil, 3.0, nil))
	if res.NumRows() != 1 || res.Rows[0][0].AsInt() != int64(want) {
		t.Errorf("count = %v, want %d", res.Rows, want)
	}
}

func TestPlanOrderingByCounts(t *testing.T) {
	f := newFed(t, 300, surveyConfigs())
	// Selective predicate on SDSS shrinks its count below the others.
	p, err := f.portal.BuildPlan(context.Background(), paperStyleQuery("O.type = 'GALAXY'"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 3 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	// Counts must be in decreasing call order (no drop-outs here).
	for i := 1; i < len(p.Steps); i++ {
		if p.Steps[i-1].Count < p.Steps[i].Count {
			t.Errorf("call order not by decreasing count: %s", p)
		}
	}
	// The seed (last in call order) must be the smallest count.
	last := p.Steps[len(p.Steps)-1]
	for _, s := range p.Steps {
		if s.Count < last.Count {
			t.Errorf("seed %s (count=%d) is not the smallest", last.Archive, last.Count)
		}
	}
}

func TestPlanDropOutsFirst(t *testing.T) {
	f := newFed(t, 200, surveyConfigs())
	reg := testRegion()
	ra, dec := reg.Center.RaDec()
	sql := fmt.Sprintf(`SELECT O.object_id
		FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T, FIRST:PhotoObject P
		WHERE AREA(%g, %g, %g) AND XMATCH(O, !T, !P) < 3.0`,
		ra, dec, sphere.ToArcsec(reg.Radius))
	p, err := f.portal.BuildPlan(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Steps[0].DropOut || !p.Steps[1].DropOut || p.Steps[2].DropOut {
		t.Errorf("drop-outs not first: %s", p)
	}
}

func TestPassThroughQuery(t *testing.T) {
	f := newFed(t, 200, surveyConfigs()[:1])
	res, err := f.portal.Query(context.Background(), `SELECT TOP 5 O.object_id, O.flux FROM SDSS:PhotoObject O WHERE O.type = 'GALAXY'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 5 {
		t.Errorf("rows = %d", res.NumRows())
	}
	if res.Columns[0].Name != "object_id" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestQueryErrors(t *testing.T) {
	f := newFed(t, 50, surveyConfigs()[:2])
	reg := testRegion()
	ra, dec := reg.Center.RaDec()
	area := fmt.Sprintf("AREA(%g, %g, %g)", ra, dec, sphere.ToArcsec(reg.Radius))
	cases := []struct {
		sql, wantSub string
	}{
		{"garbage", "sqlparse"},
		{`SELECT O.x FROM GHOST:PhotoObject O, SDSS:PhotoObject S WHERE ` + area + ` AND XMATCH(O, S) < 3`, "not part of the federation"},
		{`SELECT O.object_id FROM SDSS:Missing O, TWOMASS:PhotoObject T WHERE ` + area + ` AND XMATCH(O, T) < 3`, "no table"},
		{`SELECT O.nope FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T WHERE ` + area + ` AND XMATCH(O, T) < 3`, "no column"},
		{`SELECT * FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T WHERE ` + area + ` AND XMATCH(O, T) < 3`, "SELECT *"},
		{`SELECT O.object_id FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T WHERE XMATCH(O, T) < 3`, "AREA"},
		{`SELECT O.object_id, T.object_id FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T WHERE ` + area + ` AND XMATCH(O, !T) < 3`, "drop-out"},
		{`SELECT O.object_id FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T WHERE ` + area + ` AND XMATCH(O, !T) < 3 AND (O.flux - T.flux) > 1`, "drop-out"},
		{`SELECT O.object_id, T.object_id FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T WHERE ` + area + ` AND O.flux > 1`, "XMATCH"},
		{`SELECT O.object_id FROM PhotoObject O, TWOMASS:PhotoObject T WHERE ` + area + ` AND XMATCH(O, T) < 3`, "archive qualifier"},
	}
	for _, c := range cases {
		_, err := f.portal.Query(context.Background(), c.sql)
		if err == nil {
			t.Errorf("Query(%.60q) succeeded, want error %q", c.sql, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Query(%.60q) error = %v, want substring %q", c.sql, err, c.wantSub)
		}
	}
}

// checkFigure3Order asserts the Figure 3 step order — submit(1-2) →
// planning probes(3-4) → plan(5) → execute(6) → relay(7-8) — with the
// given probe event kinds (perfquery.* in count-probe mode,
// statsquery.* when the nodes serve statistics).
func checkFigure3Order(t *testing.T, ev []string, probeSend, probeRecv string) {
	t.Helper()
	idx := func(kind string) int {
		for i, e := range ev {
			if e == kind {
				return i
			}
		}
		return -1
	}
	lastIdx := func(kind string) int {
		last := -1
		for i, e := range ev {
			if e == kind {
				last = i
			}
		}
		return last
	}
	if idx("submit") == -1 || idx("plan") == -1 || idx("execute") == -1 || idx("relay") == -1 {
		t.Fatalf("missing events: %v", ev)
	}
	if !(idx("submit") < idx(probeSend) &&
		lastIdx(probeRecv) < idx("plan") &&
		idx("plan") < idx("execute") &&
		idx("execute") < idx("relay")) {
		t.Errorf("event order wrong: %v", ev)
	}
	// Three mandatory archives → three planning probes.
	if n := countKinds(ev, probeRecv); n != 3 {
		t.Errorf("planning probes = %d, want 3", n)
	}
}

func TestPortalEventsFigure3Order(t *testing.T) {
	f := newFed(t, 150, surveyConfigs())
	f.clearEvents()
	if _, err := f.portal.Query(context.Background(), paperStyleQuery("")); err != nil {
		t.Fatal(err)
	}
	// Fresh nodes serve StatsSummary, so the default mode plans from
	// statistics probes; no count-star query should be needed.
	ev := f.eventLog()
	checkFigure3Order(t, ev, "statsquery.send", "statsquery.recv")
	if n := countKinds(ev, "perfquery.send"); n != 0 {
		t.Errorf("stats mode sent %d count-star probes, want 0", n)
	}
}

func TestPortalEventsFigure3OrderCountProbe(t *testing.T) {
	f := newFedWith(t, 150, surveyConfigs(), Config{CountProbeOrder: true})
	f.clearEvents()
	if _, err := f.portal.Query(context.Background(), paperStyleQuery("")); err != nil {
		t.Fatal(err)
	}
	// CountProbeOrder restores the paper-faithful §5.3 flow exactly.
	ev := f.eventLog()
	checkFigure3Order(t, ev, "perfquery.send", "perfquery.recv")
	if n := countKinds(ev, "statsquery.send"); n != 0 {
		t.Errorf("count-probe mode sent %d stats probes, want 0", n)
	}
}

func TestSkyQueryServiceOverSOAP(t *testing.T) {
	f := newFed(t, 200, surveyConfigs())
	c := &soap.Client{}
	var first soap.ChunkedData
	err := c.Call(context.Background(), f.portalURL, ActionSkyQuery, &SkyQueryRequest{SQL: paperStyleQuery("")}, &first)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := soap.FetchAll(context.Background(), c, f.portalURL, &first)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := f.portal.Query(context.Background(), paperStyleQuery(""))
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != direct.NumRows() {
		t.Errorf("SOAP rows = %d, direct = %d", ds.NumRows(), direct.NumRows())
	}
}

func TestRegisterOverSOAP(t *testing.T) {
	f := newFed(t, 50, surveyConfigs()[:1])
	// Add TWOMASS via the SOAP Registration service.
	cfg := surveyConfigs()[1]
	a := survey.Observe(f.field, cfg)
	db, _ := a.BuildDB()
	n, err := skynode.New(skynode.Config{Name: cfg.Name, DB: db, PrimaryTable: survey.TableName,
		RACol: "ra", DecCol: "dec", SigmaArcsec: cfg.SigmaArcsec})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(n.Server())
	defer ts.Close()
	c := &soap.Client{}
	var resp RegisterResponse
	err = c.Call(context.Background(), f.portalURL, ActionRegister, &RegisterRequest{Name: cfg.Name, Endpoint: ts.URL}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Members != 2 {
		t.Errorf("resp = %+v", resp)
	}
}

func TestIncludeMatchColumns(t *testing.T) {
	f := newFed(t, 150, surveyConfigs()[:2])
	f2 := New(Config{IncludeMatchColumns: true})
	for name, ep := range f.endpoints {
		if err := f2.Register(name, ep); err != nil {
			t.Fatal(err)
		}
	}
	reg := testRegion()
	ra, dec := reg.Center.RaDec()
	sql := fmt.Sprintf(`SELECT O.object_id, T.object_id
		FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
		WHERE AREA(%g, %g, %g) AND XMATCH(O, T) < 3.5`,
		ra, dec, sphere.ToArcsec(reg.Radius))
	res, err := f2.Query(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 6 {
		t.Fatalf("columns = %v", res.Columns)
	}
	if res.Columns[2].Name != "_matchRA" || res.Columns[5].Name != "_nObs" {
		t.Errorf("match columns = %v", res.Columns)
	}
	if res.NumRows() == 0 {
		t.Fatal("no rows")
	}
	row := res.Rows[0]
	raV, _ := row[2].AsFloat()
	decV, _ := row[3].AsFloat()
	if !reg.Expand(0.01).Contains(sphere.FromRaDec(raV, decV)) {
		t.Errorf("match position (%g, %g) outside the query area", raV, decV)
	}
	ll, _ := row[4].AsFloat()
	if ll > 0 || ll < -10 {
		t.Errorf("log likelihood = %g out of expected range", ll)
	}
	if row[5].AsInt() != 2 {
		t.Errorf("nObs = %v", row[5])
	}
}

func TestTopOnFederatedQuery(t *testing.T) {
	f := newFed(t, 300, surveyConfigs()[:2])
	reg := testRegion()
	ra, dec := reg.Center.RaDec()
	sql := fmt.Sprintf(`SELECT TOP 4 O.object_id, T.object_id
		FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
		WHERE AREA(%g, %g, %g) AND XMATCH(O, T) < 3.5`,
		ra, dec, sphere.ToArcsec(reg.Radius))
	res, err := f.portal.Query(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 {
		t.Errorf("TOP 4 returned %d rows", res.NumRows())
	}
}

func TestPullQueryMatchesChain(t *testing.T) {
	f := newFed(t, 250, surveyConfigs())
	sql := paperStyleQuery("O.type = 'GALAXY'")
	chain, err := f.portal.Query(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	pull, err := f.portal.PullQuery(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	key := func(row []value.Value) string {
		return fmt.Sprintf("%d|%d|%d", row[0].AsInt(), row[1].AsInt(), row[2].AsInt())
	}
	var a, b []string
	for _, r := range chain.Rows {
		a = append(a, key(r))
	}
	for _, r := range pull.Rows {
		b = append(b, key(r))
	}
	sort.Strings(a)
	sort.Strings(b)
	compare(t, a, b)
	if len(a) == 0 {
		t.Error("degenerate: no matches")
	}
}

func compare(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d, want %d\n got: %v\nwant: %v", len(got), len(want), trunc(got), trunc(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("item %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func trunc(s []string) []string {
	if len(s) > 6 {
		return s[:6]
	}
	return s
}
