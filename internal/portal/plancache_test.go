package portal

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// countKinds tallies event kinds in a slice.
func countKinds(events []string, kind string) int {
	n := 0
	for _, k := range events {
		if k == kind {
			n++
		}
	}
	return n
}

func TestPlanCacheHitSkipsPlanning(t *testing.T) {
	f := newFed(t, 100, surveyConfigs())
	q := paperStyleQuery("")

	first, err := f.portal.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if s := f.portal.PlanCacheStats(); s.Misses != 1 || s.Hits != 0 || s.Entries != 1 {
		t.Fatalf("after first query: %+v", s)
	}
	missEvents := f.eventLog()
	if countKinds(missEvents, "perfquery.send")+countKinds(missEvents, "statsquery.send") == 0 {
		t.Fatal("miss path sent no planning probes")
	}

	f.clearEvents()
	second, err := f.portal.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if s := f.portal.PlanCacheStats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("after second query: %+v", s)
	}
	hitEvents := f.eventLog()
	// The hit replays the plan: no count-star probes, no re-plan — but
	// the trace keeps its submit -> execute -> relay shape.
	if n := countKinds(hitEvents, "perfquery.send") + countKinds(hitEvents, "statsquery.send"); n != 0 {
		t.Errorf("hit path sent %d planning probes", n)
	}
	if n := countKinds(hitEvents, "plan"); n != 0 {
		t.Errorf("hit path re-planned %d times", n)
	}
	for _, kind := range []string{"submit", "execute", "relay"} {
		if countKinds(hitEvents, kind) != 1 {
			t.Errorf("hit path events = %v, want one %q", hitEvents, kind)
		}
	}

	// Same rows both times.
	if first.NumRows() == 0 || first.NumRows() != second.NumRows() {
		t.Errorf("rows: first=%d second=%d", first.NumRows(), second.NumRows())
	}
}

func TestPlanCacheNormalizedKey(t *testing.T) {
	f := newFed(t, 100, surveyConfigs())
	q := paperStyleQuery("")

	if _, err := f.portal.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	// Same query, different formatting: extra whitespace and lower-cased
	// keywords parse to the same canonical form and must hit.
	// (Identifiers keep their case; only keywords are case-insensitive.)
	reformatted := strings.NewReplacer(
		"SELECT", "select", "FROM", "from", "WHERE", "where", "AND", "and",
	).Replace(strings.Join(strings.Fields(q), "  "))
	if _, err := f.portal.Query(context.Background(), reformatted); err != nil {
		t.Fatal(err)
	}
	if s := f.portal.PlanCacheStats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("reformatted query did not hit: %+v", s)
	}

	// A genuinely different query misses.
	if _, err := f.portal.Query(context.Background(), paperStyleQuery("O.flux < 1000")); err != nil {
		t.Fatal(err)
	}
	if s := f.portal.PlanCacheStats(); s.Misses != 2 || s.Entries != 2 {
		t.Errorf("distinct query shared an entry: %+v", s)
	}
}

func TestPlanCacheCatalogChangeInvalidates(t *testing.T) {
	f := newFed(t, 100, surveyConfigs())
	q := paperStyleQuery("")

	if _, err := f.portal.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	// Re-registration (schema may have changed) bumps the catalog
	// version: the cached plan's key no longer matches.
	if err := f.portal.Register("SDSS", f.endpoints["SDSS"]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.portal.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if s := f.portal.PlanCacheStats(); s.Hits != 0 || s.Misses != 2 {
		t.Errorf("catalog change did not invalidate: %+v", s)
	}
	// Stable catalog again: the re-prepared plan hits.
	if _, err := f.portal.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if s := f.portal.PlanCacheStats(); s.Hits != 1 {
		t.Errorf("re-prepared plan did not hit: %+v", s)
	}
}

func TestPlanCacheOptionSalt(t *testing.T) {
	// Portals planning with different options must derive different keys
	// for the same SQL: a cached plan bakes in chunk size, parallelism,
	// and the diagnostic-column choice.
	base := New(Config{})
	variants := []*Portal{
		New(Config{ChunkRows: 100}),
		New(Config{Parallelism: 2}),
		New(Config{IncludeMatchColumns: true}),
	}
	sql := "SELECT o.x FROM a:t o WHERE o.x > 1"
	baseKey, err := base.planKey(sql)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range variants {
		k, err := v.planKey(sql)
		if err != nil {
			t.Fatal(err)
		}
		if k == baseKey {
			t.Errorf("variant %d shares the base key %q", i, k)
		}
	}
	// ...while the same options agree, so restarts and replicas would
	// still normalize identically.
	again, err := New(Config{}).planKey(sql)
	if err != nil {
		t.Fatal(err)
	}
	if again != baseKey {
		t.Errorf("identical configs disagree: %q vs %q", again, baseKey)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	f := newFed(t, 60, surveyConfigs()[:1])
	f.portal.plans = newPlanCache(-1)
	sql := fmt.Sprintf("SELECT o.object_id FROM SDSS:%s o", "PhotoObject")
	for i := 0; i < 2; i++ {
		if _, err := f.portal.Query(context.Background(), sql); err != nil {
			t.Fatal(err)
		}
	}
	if s := f.portal.PlanCacheStats(); s != (PlanCacheStats{}) {
		t.Errorf("disabled cache counted: %+v", s)
	}
}

func TestPlanCacheBounded(t *testing.T) {
	c := newPlanCache(4)
	for i := 0; i < 100; i++ {
		c.put(fmt.Sprintf("q%d", i), nil)
	}
	if n := c.entries(); n > 8 {
		t.Errorf("cache retained %d entries, want <= 2 generations of 4", n)
	}
	// The most recent insert survives rotation.
	if _, ok := c.get("q99"); !ok {
		t.Error("newest entry evicted")
	}
}
