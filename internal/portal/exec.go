package portal

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"strings"

	"skyquery/internal/core"
	"skyquery/internal/dataset"
	"skyquery/internal/nettrace"
	"skyquery/internal/plan"
	"skyquery/internal/skynode"
	"skyquery/internal/soap"
	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
)

// engine lazily builds the core engine wired to this Portal's catalog and
// SOAP client.
func (p *Portal) engine() *core.Engine {
	p.engineOnce.Do(func() {
		p.coreEngine = &core.Engine{
			Catalog:             (*portalCatalog)(p),
			Services:            &portalServices{p: p},
			ChunkRows:           p.cfg.ChunkRows,
			Parallelism:         p.cfg.Parallelism,
			IncludeMatchColumns: p.cfg.IncludeMatchColumns,
			CountProbeOrder:     p.cfg.CountProbeOrder,
			AdaptiveReorder:     p.cfg.AdaptiveReorder,
			OnEvent: func(ev core.Event) {
				p.emit(ev.Kind, "%s", ev.Detail)
			},
		}
	})
	return p.coreEngine
}

// Query executes a query (cross-match or single-archive) and returns the
// final result set. Repeated submissions of the same query (under any
// formatting) replay its cached prepared form, skipping parse, validate,
// plan, and the count-star performance probes.
func (p *Portal) Query(ctx context.Context, sql string) (*dataset.DataSet, error) {
	prep, err := p.prepared(ctx, sql)
	if err != nil {
		return nil, err
	}
	return p.engine().ExecutePrepared(ctx, prep)
}

// QueryStream executes a query and returns the result as a page stream:
// rows reach the caller as the chain produces them, and the Portal holds
// one page at a time instead of the folded result. Plan caching works
// exactly as in Query.
func (p *Portal) QueryStream(ctx context.Context, sql string) (core.TupleStream, error) {
	prep, err := p.prepared(ctx, sql)
	if err != nil {
		return nil, err
	}
	return p.engine().ExecutePreparedStream(ctx, prep)
}

// prepared resolves sql to its compiled form through the plan cache
// (cache hits replay the Prepared and re-announce the submission; a nil
// cache prepares every time).
func (p *Portal) prepared(ctx context.Context, sql string) (*core.Prepared, error) {
	eng := p.engine()
	if p.plans == nil {
		return eng.Prepare(ctx, sql)
	}
	key, err := p.planKey(sql)
	if err != nil {
		return nil, err
	}
	if prep, ok := p.plans.get(key); ok {
		eng.EmitSubmit(sql)
		return prep, nil
	}
	prep, err := eng.Prepare(ctx, sql)
	if err != nil {
		return nil, err
	}
	p.plans.put(key, prep)
	return prep, nil
}

// planKey builds the plan-cache key for a query: its canonical parsed
// form (so formatting differences share an entry) plus the portal's
// planning salt (so catalog or option changes do not).
func (p *Portal) planKey(sql string) (string, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	return q.String() + "\x00" + p.planSalt(), nil
}

// PullQuery executes a cross-match with the pull-to-portal baseline
// strategy (see core.PullExecute); used by the comparison experiments.
func (p *Portal) PullQuery(ctx context.Context, sql string) (*dataset.DataSet, error) {
	return p.engine().PullExecute(ctx, sql)
}

// BuildPlan parses the query and constructs (but does not execute) its
// plan, including the count-star probes. Useful for tools and tests.
func (p *Portal) BuildPlan(ctx context.Context, sql string) (*plan.Plan, error) {
	return p.engine().BuildPlanSQL(ctx, sql)
}

// Explain builds the query's plan without executing it and renders an
// EXPLAIN-style summary: the chosen chain order on the first line, then
// one line per step (in call order; execution unwinds in reverse, so
// the last step seeds) with the planner's cardinality estimate —
// statistics-based when the node answered a StatsSummary probe, the
// count-star bound otherwise — the transfer-cost estimate, and the
// predicate pushed to the node. Estimate-vs-actual counts for executed
// queries surface in the event stream: "plan.cost" per planned step at
// prepare time and "xmatch.estimate" from the seed node at run time.
func (p *Portal) Explain(ctx context.Context, sql string) (string, error) {
	pl, err := p.BuildPlan(ctx, sql)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "order: %s\n", pl)
	for i, s := range pl.Steps {
		role := "extend"
		switch {
		case s.DropOut:
			role = "dropout"
		case i == len(pl.Steps)-1:
			role = "seed"
		}
		fmt.Fprintf(&b, "step %d: %s %s table=%s count=%d", i+1, s.Archive, role, s.Table, s.Count)
		if s.StatsBased {
			fmt.Fprintf(&b, " est=%.0f (stats)", s.EstRows)
		}
		if s.Cost > 0 {
			fmt.Fprintf(&b, " cost=%.3g", s.Cost)
		}
		if s.LocalWhere != "" {
			fmt.Fprintf(&b, " where=%q", s.LocalWhere)
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// portalCatalog adapts the Portal's registration catalog to core.Catalog.
type portalCatalog Portal

// Archive implements core.Catalog.
func (pc *portalCatalog) Archive(name string) (*core.Archive, error) {
	p := (*Portal)(pc)
	a, err := p.archive(name)
	if err != nil {
		return nil, err
	}
	out := &core.Archive{
		Name:         a.Name,
		Endpoint:     a.Endpoint,
		PrimaryTable: a.Info.PrimaryTable,
		RACol:        a.Info.RACol,
		DecCol:       a.Info.DecCol,
		SigmaArcsec:  a.Info.SigmaArcsec,
		Tables:       map[string]core.TableInfo{},
	}
	for name, t := range a.Tables {
		ti := core.TableInfo{Name: name, Rows: t.Rows, Columns: map[string]string{}}
		for _, c := range t.Columns {
			ti.Columns[c.Name] = c.Type
		}
		out.Tables[name] = ti
	}
	return out, nil
}

// portalServices adapts SOAP calls to core.Services.
type portalServices struct {
	p *Portal
}

// CountStar implements core.Services via the node's Query service. For
// a sharded archive the probe scatters to the shards whose trixel
// ranges the query area covers and the per-shard counts are summed.
func (s *portalServices) CountStar(ctx context.Context, a *core.Archive, sql string, area plan.Area) (int64, error) {
	if m := s.p.shardMapFor(a.Name); m != nil {
		return s.p.scatterCount(ctx, m, sql, &area)
	}
	ds, err := s.TableQuery(ctx, a, sql)
	if err != nil {
		return 0, err
	}
	return oneIntCell(ds)
}

// oneIntCell extracts the single INT cell of a 1x1 result set.
func oneIntCell(ds *dataset.DataSet) (int64, error) {
	if ds.NumRows() != 1 || len(ds.Columns) != 1 {
		return 0, fmt.Errorf("portal: performance query returned %dx%d, want 1x1", ds.NumRows(), len(ds.Columns))
	}
	v := ds.Rows[0][0]
	if v.Type() != value.IntType {
		return 0, fmt.Errorf("portal: performance query returned %v, want INT", v.Type())
	}
	return v.AsInt(), nil
}

// StatsSummary implements core.StatsServices via the node's StatsSummary
// service. Endpoints that have faulted on the action (older nodes) are
// remembered and skipped — the planner goes straight to its count-star
// fallback for them — until the node re-registers.
func (s *portalServices) StatsSummary(ctx context.Context, a *core.Archive, probe *core.StatsProbe) (*core.StatsEstimate, error) {
	if m := s.p.shardMapFor(a.Name); m != nil {
		return s.p.scatterStats(ctx, m, probe)
	}
	if _, old := s.p.noStats.Load(a.Endpoint); old {
		return nil, fmt.Errorf("portal: node %s has no StatsSummary service", a.Name)
	}
	var resp skynode.StatsResponse
	err := s.p.client.Call(ctx, a.Endpoint, skynode.ActionStats, &skynode.StatsRequest{
		Table:      probe.Table,
		Alias:      probe.Alias,
		LocalWhere: probe.LocalWhere,
		Area:       probe.Area,
	}, &resp)
	if err != nil {
		var f *soap.Fault
		if errors.As(err, &f) && strings.Contains(f.String, "unknown SOAPAction") {
			s.p.noStats.Store(a.Endpoint, true)
		}
		return nil, err
	}
	return &core.StatsEstimate{
		TableRows:   resp.TableRows,
		AreaRows:    resp.AreaRows,
		EstRows:     resp.EstRows,
		Selectivity: resp.Selectivity,
		HasStats:    resp.HasStats,
	}, nil
}

// ObservedThroughput implements core.ThroughputServices from the
// process-wide per-host transfer registry that every instrumented
// transport feeds.
func (s *portalServices) ObservedThroughput(endpoint string) float64 {
	u, err := url.Parse(endpoint)
	if err != nil || u.Host == "" {
		return 0
	}
	return nettrace.ObservedThroughput(u.Host)
}

// TableQuery implements core.Services via the node's Query service,
// draining chunked responses.
func (s *portalServices) TableQuery(ctx context.Context, a *core.Archive, sql string) (*dataset.DataSet, error) {
	if m := s.p.shardMapFor(a.Name); m != nil {
		return s.p.scatterTableQuery(ctx, m, sql)
	}
	var first soap.ChunkedData
	if err := s.p.client.Call(ctx, a.Endpoint, skynode.ActionQuery, &skynode.QueryRequest{SQL: sql}, &first); err != nil {
		return nil, err
	}
	return soap.FetchAll(ctx, s.p.client, a.Endpoint, &first)
}

// CrossMatch implements core.Services: it sends the plan to the first
// step's node and drains the chunked tuple response.
func (s *portalServices) CrossMatch(ctx context.Context, pl *plan.Plan) (*dataset.DataSet, error) {
	if s.p.planSharded(pl) {
		return s.p.scatterCrossMatch(ctx, pl)
	}
	firstStep := pl.Steps[0]
	var first soap.ChunkedData
	if err := s.p.client.Call(ctx, firstStep.Endpoint, skynode.ActionCrossMatch,
		&skynode.CrossMatchRequest{Plan: *pl}, &first); err != nil {
		return nil, err
	}
	return soap.FetchAll(ctx, s.p.client, firstStep.Endpoint, &first)
}

// CrossMatchStream implements core.StreamServices: the chain's partial
// tuples flow back page by page, each chain node holding only its
// in-flight page. A node that cannot stream degrades transparently to
// chunk-by-chunk fetching inside the PageStream.
func (s *portalServices) CrossMatchStream(ctx context.Context, pl *plan.Plan) (core.TupleStream, error) {
	if s.p.planSharded(pl) {
		return s.p.scatterCrossMatchStream(ctx, pl)
	}
	firstStep := pl.Steps[0]
	return soap.OpenStream(ctx, s.p.client, firstStep.Endpoint, skynode.ActionCrossMatch,
		&skynode.CrossMatchRequest{Plan: *pl})
}

// TableQueryStream implements core.StreamServices via the node's Query
// service.
func (s *portalServices) TableQueryStream(ctx context.Context, a *core.Archive, sql string) (core.TupleStream, error) {
	if m := s.p.shardMapFor(a.Name); m != nil {
		// A sharded pass-through may need a portal-side global sort, so
		// it folds; the result is re-paged for the iterator shape.
		ds, err := s.p.scatterTableQuery(ctx, m, sql)
		if err != nil {
			return nil, err
		}
		return core.NewSliceStream(ds, s.p.cfg.ChunkRows), nil
	}
	return soap.OpenStream(ctx, s.p.client, a.Endpoint, skynode.ActionQuery, &skynode.QueryRequest{SQL: sql})
}
