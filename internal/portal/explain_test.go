package portal

// The queryable plan summary: Portal.Explain must render the chosen
// chain order plus per-step cardinality (statistics-based when the
// nodes serve StatsSummary) and transfer-cost estimates, and planning
// must log the same numbers through the portal event stream
// ("plan.cost" per step).

import (
	"context"
	"strings"
	"testing"
)

func TestExplainRendersPlanSummary(t *testing.T) {
	f := newFed(t, 150, surveyConfigs())
	f.clearEvents()
	out, err := f.portal.Explain(context.Background(), paperStyleQuery("O.flux > 20"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // order line + three archives
		t.Fatalf("Explain rendered %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "order: ") || !strings.Contains(lines[0], " -> ") {
		t.Errorf("order line = %q", lines[0])
	}
	for _, name := range []string{"SDSS", "TWOMASS", "FIRST"} {
		if !strings.Contains(out, name) {
			t.Errorf("Explain output missing archive %s:\n%s", name, out)
		}
	}
	// Fresh nodes answer StatsSummary, so every step line carries a
	// statistics-based estimate and a transfer-cost figure.
	for _, ln := range lines[1:] {
		if !strings.Contains(ln, "est=") || !strings.Contains(ln, "(stats)") {
			t.Errorf("step line without stats estimate: %q", ln)
		}
		if !strings.Contains(ln, "cost=") {
			t.Errorf("step line without cost: %q", ln)
		}
	}
	// The last step in call order seeds the chain (execution unwinds in
	// reverse); the others extend.
	if !strings.Contains(lines[len(lines)-1], " seed ") {
		t.Errorf("last step not marked seed: %q", lines[len(lines)-1])
	}
	// The local predicate pushed to SDSS shows on its line.
	found := false
	for _, ln := range lines[1:] {
		if strings.Contains(ln, "SDSS") && strings.Contains(ln, "flux") {
			found = true
		}
	}
	if !found {
		t.Errorf("SDSS step line missing pushed predicate:\n%s", out)
	}

	// Planning logged the per-step cost model through the portal events.
	ev := f.eventLog()
	if n := countKinds(ev, "plan.cost"); n != 3 {
		t.Errorf("plan.cost events = %d, want 3", n)
	}
	if n := countKinds(ev, "statsquery.recv"); n != 3 {
		t.Errorf("statsquery.recv events = %d, want 3", n)
	}
}

func TestExplainCountProbeMode(t *testing.T) {
	f := newFedWith(t, 150, surveyConfigs(), Config{CountProbeOrder: true})
	out, err := f.portal.Explain(context.Background(), paperStyleQuery(""))
	if err != nil {
		t.Fatal(err)
	}
	// Count-star ordering carries no statistics estimates and no cost
	// figures — only the probe counts.
	if strings.Contains(out, "(stats)") || strings.Contains(out, "cost=") {
		t.Errorf("count-probe Explain leaked stats fields:\n%s", out)
	}
	if !strings.Contains(out, "count=") {
		t.Errorf("count-probe Explain missing counts:\n%s", out)
	}
}

func TestExplainBadQuery(t *testing.T) {
	f := newFed(t, 50, surveyConfigs()[:1])
	if _, err := f.portal.Explain(context.Background(), "garbage"); err == nil {
		t.Error("Explain(garbage) succeeded, want error")
	}
}
