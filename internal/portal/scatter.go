package portal

// Scatter tier: query execution against sharded archives. When an
// archive is partitioned by trixel ranges across several skynodes, the
// portal stops daisy-chaining and becomes the chain's coordinator: it
// walks the plan from the seed step backwards, scatters each step to
// only the shards whose trixel ranges intersect the query cover
// (Isolated requests — the nodes never chain in this mode), and merges
// the shard outputs deterministically before stashing them as the next
// step's incoming tuples.
//
// Determinism is the whole game. Every merge must reproduce the exact
// row order a single unsharded node would have produced:
//
//   - Seed steps: shards hold contiguous ascending trixel ranges and
//     nodes emit rows in canonical trixel order, so concatenating shard
//     outputs in shard-index order IS the single-node order.
//   - Extend steps: the coordinator appends a hidden ordinal column to
//     the incoming tuples before stashing. Step runners carry incoming
//     payload columns through in input order, so each shard's output
//     arrives with nondecreasing ordinals; a k-way merge by (ordinal,
//     shard index) restores the single-node order and the ordinal
//     column is stripped before the next step sees it.
//   - Drop-out steps: a shard's output is the subset of incoming tuples
//     that survived its local veto, so a tuple survives globally iff it
//     survives on every shard — an ordinal-set intersection, taking the
//     surviving rows from the coordinator's own copy.
//
// Replica failover: every per-shard call runs through withReplicas,
// which prefers followers (spreading reads off the append leader),
// fails over to the next replica on any transport or node error, and
// remembers dead endpoints for a cooldown so one dead node does not tax
// every subsequent scatter with its timeout. Followers serve sealed
// blocks that may trail the leader by an append batch —
// stale-but-consistent reads, documented in docs/FEDERATION.md.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"skyquery/internal/core"
	"skyquery/internal/dataset"
	"skyquery/internal/eval"
	"skyquery/internal/htm"
	"skyquery/internal/plan"
	"skyquery/internal/registry"
	"skyquery/internal/skynode"
	"skyquery/internal/soap"
	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
)

// ordColumn is the hidden ordinal the coordinator appends to stashed
// incoming tuples. Underscored like the match diagnostics so it can
// never collide with a user column.
const ordColumn = "__shard_ord"

// replicaCooldown is how long a failed replica is skipped before the
// portal probes it again.
const replicaCooldown = 2 * time.Second

// shardMapFor returns the archive's shard map when any shard replicas
// have registered, nil for a flat archive.
func (p *Portal) shardMapFor(name string) *registry.ShardMap {
	return p.reg.ShardMap(name)
}

// planSharded reports whether any step of the plan targets a sharded
// archive; if so the whole chain runs under portal coordination.
func (p *Portal) planSharded(pl *plan.Plan) bool {
	for _, s := range pl.Steps {
		if p.reg.ShardMap(s.Archive) != nil {
			return true
		}
	}
	return false
}

// routable errors unless the map's shards tile the full trixel universe
// at its level with a leader each. A partially-registered federation
// must fail queries loudly, never silently answer from a subset.
func (p *Portal) routable(m *registry.ShardMap) error {
	uni := htm.LevelRange(m.Level)
	return m.Complete(uint64(uni.Lo), uint64(uni.Hi))
}

// shardsForArea routes: the shards whose trixel ranges intersect the
// area's cover, in shard-index order. A nil or empty area (no AREA
// clause) routes to every shard.
func shardsForArea(m *registry.ShardMap, area *plan.Area) []registry.Shard {
	if area == nil || (area.RadiusArcsec <= 0 && !area.IsPolygon()) {
		return m.Shards
	}
	region, err := area.Region()
	if err != nil {
		return m.Shards
	}
	bound := region.Bounding()
	sub := htm.LevelForRadius(bound.Radius)
	if sub > m.Level {
		sub = m.Level
	}
	ranges := htm.CoverCap(bound, sub, m.Level).Ranges()
	var out []registry.Shard
	for _, sh := range m.Shards {
		for _, r := range ranges {
			if uint64(r.Lo) <= sh.Range.Hi && sh.Range.Lo <= uint64(r.Hi) {
				out = append(out, sh)
				break
			}
		}
	}
	return out
}

// replicaDown reports whether the endpoint is inside its failure
// cooldown window.
func (p *Portal) replicaDown(ep string) bool {
	v, ok := p.shardDown.Load(ep)
	if !ok {
		return false
	}
	if time.Now().After(v.(time.Time)) {
		p.shardDown.Delete(ep)
		return false
	}
	return true
}

func (p *Portal) markReplicaDown(ep string) {
	p.shardDown.Store(ep, time.Now().Add(replicaCooldown))
}

// withReplicas runs fn against the shard's replicas — followers first,
// leader last — failing over on any error except the caller's own
// cancellation. The first pass skips endpoints inside their failure
// cooldown; a second pass retries them anyway, so a fully-cooled shard
// still gets one chance per query instead of an instant failure.
func (p *Portal) withReplicas(ctx context.Context, archive string, sh registry.Shard, fn func(endpoint string) error) error {
	reps := sh.Replicas()
	if len(reps) == 0 {
		return fmt.Errorf("portal: shard %s/%d has no replicas", archive, sh.Index)
	}
	var lastErr error
	tried := map[string]bool{}
	for pass := 0; pass < 2; pass++ {
		for _, ep := range reps {
			if tried[ep] || (pass == 0 && p.replicaDown(ep)) {
				continue
			}
			tried[ep] = true
			err := fn(ep)
			if err == nil {
				return nil
			}
			lastErr = err
			if ctx.Err() != nil {
				return err
			}
			p.markReplicaDown(ep)
			p.emit("shard.failover", "%s/%d: %s failed: %v", archive, sh.Index, ep, err)
		}
	}
	return fmt.Errorf("portal: shard %s/%d: all replicas failed: %w", archive, sh.Index, lastErr)
}

// scatterEach fans fn out over the shards concurrently and returns the
// first error (by shard index, for determinism).
func scatterEach(shards []registry.Shard, fn func(k int, sh registry.Shard) error) error {
	if len(shards) == 0 {
		return fmt.Errorf("portal: no shards to scatter to")
	}
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for k := range shards {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			errs[k] = fn(k, shards[k])
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fetchQuery runs one table query against one endpoint, draining chunks.
func (p *Portal) fetchQuery(ctx context.Context, ep, sql string) (*dataset.DataSet, error) {
	var first soap.ChunkedData
	if err := p.client.Call(ctx, ep, skynode.ActionQuery, &skynode.QueryRequest{SQL: sql}, &first); err != nil {
		return nil, err
	}
	return soap.FetchAll(ctx, p.client, ep, &first)
}

// scatterCount sums a COUNT(*) query over the shards the area routes to.
func (p *Portal) scatterCount(ctx context.Context, m *registry.ShardMap, sql string, area *plan.Area) (int64, error) {
	if err := p.routable(m); err != nil {
		return 0, err
	}
	shards := shardsForArea(m, area)
	p.emit("shard.scatter", "count %s -> %d/%d shard(s)", m.Archive, len(shards), len(m.Shards))
	counts := make([]int64, len(shards))
	err := scatterEach(shards, func(k int, sh registry.Shard) error {
		return p.withReplicas(ctx, m.Archive, sh, func(ep string) error {
			ds, err := p.fetchQuery(ctx, ep, sql)
			if err != nil {
				return err
			}
			n, err := oneIntCell(ds)
			if err != nil {
				return err
			}
			counts[k] = n
			return nil
		})
	})
	if err != nil {
		return 0, err
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	return total, nil
}

// scatterStats merges per-shard StatsSummary answers: row counts sum,
// the local-predicate selectivity is weighted by each shard's area
// candidates, and the merge is statistics-based only when every shard
// answered from maintained statistics.
func (p *Portal) scatterStats(ctx context.Context, m *registry.ShardMap, probe *core.StatsProbe) (*core.StatsEstimate, error) {
	if err := p.routable(m); err != nil {
		return nil, err
	}
	shards := shardsForArea(m, &probe.Area)
	ests := make([]skynode.StatsResponse, len(shards))
	err := scatterEach(shards, func(k int, sh registry.Shard) error {
		return p.withReplicas(ctx, m.Archive, sh, func(ep string) error {
			return p.client.Call(ctx, ep, skynode.ActionStats, &skynode.StatsRequest{
				Table:      probe.Table,
				Alias:      probe.Alias,
				LocalWhere: probe.LocalWhere,
				Area:       probe.Area,
			}, &ests[k])
		})
	})
	if err != nil {
		return nil, err
	}
	out := &core.StatsEstimate{HasStats: true, Selectivity: 1}
	var selWeighted, areaTotal float64
	for _, e := range ests {
		out.TableRows += e.TableRows
		out.AreaRows += e.AreaRows
		out.EstRows += e.EstRows
		out.HasStats = out.HasStats && e.HasStats
		selWeighted += e.Selectivity * float64(e.AreaRows)
		areaTotal += float64(e.AreaRows)
	}
	if areaTotal > 0 {
		out.Selectivity = selWeighted / areaTotal
	}
	return out, nil
}

// areaOf lifts a parsed AREA clause into the plan's area form.
func areaOf(q *sqlparse.Query) *plan.Area {
	if q.Area == nil {
		return nil
	}
	a := &plan.Area{RA: q.Area.RA, Dec: q.Area.Dec, RadiusArcsec: q.Area.RadiusArcsec}
	for _, v := range q.Area.Vertices {
		a.Vertices = append(a.Vertices, plan.Vertex{RA: v[0], Dec: v[1]})
	}
	return a
}

// scatterTableQuery executes a single-archive pass-through query over a
// sharded archive. The same SQL goes to every routed shard (per-shard
// ORDER BY/TOP keeps each shard's transfer at its local top-N, which is
// a superset of its contribution to the global top-N); the outputs
// concatenate in shard-index order — canonical trixel order — and any
// ORDER BY re-sorts at the portal with the same stable comparator the
// nodes use, so ties keep the canonical order and the result is
// bit-identical to the unsharded node's at every shard count.
func (p *Portal) scatterTableQuery(ctx context.Context, m *registry.ShardMap, sql string) (*dataset.DataSet, error) {
	if err := p.routable(m); err != nil {
		return nil, err
	}
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	if q.Count {
		n, err := p.scatterCount(ctx, m, sql, areaOf(q))
		if err != nil {
			return nil, err
		}
		ds := dataset.New(dataset.Column{Name: "count", Type: value.IntType})
		ds.Rows = [][]value.Value{{value.Int(n)}}
		return ds, nil
	}
	shards := shardsForArea(m, areaOf(q))
	p.emit("shard.scatter", "query %s -> %d/%d shard(s)", m.Archive, len(shards), len(m.Shards))
	outs := make([]*dataset.DataSet, len(shards))
	err = scatterEach(shards, func(k int, sh registry.Shard) error {
		return p.withReplicas(ctx, m.Archive, sh, func(ep string) error {
			ds, err := p.fetchQuery(ctx, ep, sql)
			if err == nil {
				outs[k] = ds
			}
			return err
		})
	})
	if err != nil {
		return nil, err
	}
	ds, err := concatShards(outs)
	if err != nil {
		return nil, err
	}
	if len(q.OrderBy) > 0 {
		keys, err := orderKeys(q, ds)
		if err != nil {
			return nil, err
		}
		sorted, err := eval.SortRows(ds.Rows, keys, q.OrderBy)
		if err != nil {
			return nil, err
		}
		ds.Rows = sorted
	}
	if q.Top > 0 && len(ds.Rows) > q.Top {
		ds.Rows = ds.Rows[:q.Top]
	}
	return ds, nil
}

// orderKeys resolves each ORDER BY expression to a result column —
// by select-list alias, rendered expression, or bare column name — and
// gathers the per-row key values for the portal-side global sort.
// Sharded pass-through requires sort keys to appear in the select list:
// the portal only has the projected columns to sort by.
func orderKeys(q *sqlparse.Query, ds *dataset.DataSet) ([][]value.Value, error) {
	star := false
	for _, si := range q.Select {
		if _, ok := si.Expr.(*sqlparse.Star); ok {
			star = true
		}
	}
	idx := make([]int, len(q.OrderBy))
	for i, it := range q.OrderBy {
		es := it.Expr.String()
		idx[i] = -1
		if !star {
			for j, si := range q.Select {
				if (si.Alias != "" && si.Alias == es) || si.Expr.String() == es {
					idx[i] = j
					break
				}
			}
		}
		if idx[i] < 0 {
			if cr, ok := it.Expr.(*sqlparse.ColumnRef); ok {
				idx[i] = ds.ColumnIndex(cr.Column)
			}
		}
		if idx[i] < 0 {
			return nil, fmt.Errorf("portal: sharded query needs ORDER BY key %q in the select list", es)
		}
	}
	keys := make([][]value.Value, len(ds.Rows))
	for r, row := range ds.Rows {
		key := make([]value.Value, len(idx))
		for i, j := range idx {
			key[i] = row[j]
		}
		keys[r] = key
	}
	return keys, nil
}

// scatterCrossMatch runs a cross-match chain whose plan touches at
// least one sharded archive: the portal coordinates every step.
func (p *Portal) scatterCrossMatch(ctx context.Context, pl *plan.Plan) (*dataset.DataSet, error) {
	return p.runShardedChain(ctx, pl)
}

// scatterCrossMatchStream is the streamed form. Portal coordination
// materializes each step's merged tuples anyway (the ordinal merge
// needs the full shard outputs per step — a v1 trade-off documented in
// docs/FEDERATION.md), so the fold runs first and the final result
// re-pages through a SliceStream; streamed and folded paths therefore
// share one code path and stay bit-identical by construction.
func (p *Portal) scatterCrossMatchStream(ctx context.Context, pl *plan.Plan) (core.TupleStream, error) {
	ds, err := p.runShardedChain(ctx, pl)
	if err != nil {
		return nil, err
	}
	return core.NewSliceStream(ds, p.cfg.ChunkRows), nil
}

// stepShards resolves the scatter targets of one plan step: the routed
// shard list for a sharded archive, or the step's own endpoint wrapped
// as a single pseudo-shard for a flat one (flat archives ride the same
// isolated-step machinery inside an otherwise sharded plan).
func (p *Portal) stepShards(step plan.Step, area plan.Area) ([]registry.Shard, error) {
	m := p.reg.ShardMap(step.Archive)
	if m == nil {
		uni := htm.LevelRange(0)
		return []registry.Shard{{
			Range:  registry.ShardRange{Lo: uint64(uni.Lo), Hi: uint64(uni.Hi)},
			Leader: step.Endpoint,
		}}, nil
	}
	if err := p.routable(m); err != nil {
		return nil, err
	}
	return shardsForArea(m, &area), nil
}

// runShardedChain walks the plan from the seed step (last in call
// order) to the first, scattering each step in isolated mode and
// merging shard outputs into the next step's incoming tuples. Failed
// calls retry on the shard's other replicas with a freshly stashed
// token — stash tokens are consumed by the fetch, so every attempt gets
// its own; tokens of dead attempts age out of the ChunkStore sweep.
func (p *Portal) runShardedChain(ctx context.Context, pl *plan.Plan) (*dataset.DataSet, error) {
	self := p.selfURL()
	chunkRows := pl.ChunkRows
	if chunkRows <= 0 {
		chunkRows = p.cfg.ChunkRows
	}
	var cur *dataset.DataSet
	for i := len(pl.Steps) - 1; i >= 0; i-- {
		step := pl.Steps[i]
		shards, err := p.stepShards(step, pl.Area)
		if err != nil {
			return nil, err
		}
		seed := i == len(pl.Steps)-1
		var stash *dataset.DataSet
		if !seed {
			if self == "" {
				return nil, fmt.Errorf("portal: sharded execution needs SetSelfURL (nodes fetch incoming tuples from the portal's stash)")
			}
			stash = withOrdinals(cur)
		}
		p.emit("shard.scatter", "step %s -> %d shard(s)", step.Archive, len(shards))
		outs := make([]*dataset.DataSet, len(shards))
		err = scatterEach(shards, func(k int, sh registry.Shard) error {
			return p.withReplicas(ctx, step.Archive, sh, func(ep string) (err error) {
				req := &skynode.CrossMatchRequest{Plan: *pl, Isolated: true}
				if stash != nil {
					tok := p.chunks.Stash(stash, chunkRows, 1)[0]
					req.Incoming = &skynode.IncomingRef{Endpoint: self, Token: tok}
					// A failed or cancelled attempt never drains its
					// token; release it now instead of waiting for the
					// TTL sweep.
					defer func() {
						if err != nil {
							p.chunks.Release(tok)
						}
					}()
				}
				var first soap.ChunkedData
				if err := p.client.Call(ctx, ep, skynode.ActionCrossMatch, req, &first); err != nil {
					return err
				}
				ds, err := soap.FetchAll(ctx, p.client, ep, &first)
				if err != nil {
					return err
				}
				outs[k] = ds
				return nil
			})
		})
		if err != nil {
			return nil, err
		}
		switch {
		case seed:
			cur, err = concatShards(outs)
		case step.DropOut:
			cur, err = intersectShards(cur, outs)
		default:
			cur, err = mergeShards(outs)
		}
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// withOrdinals appends the hidden ordinal column, numbering rows by
// their position in the canonical merged order.
func withOrdinals(d *dataset.DataSet) *dataset.DataSet {
	cols := append(append([]dataset.Column{}, d.Columns...), dataset.Column{Name: ordColumn, Type: value.IntType})
	out := &dataset.DataSet{Columns: cols, Rows: make([][]value.Value, len(d.Rows))}
	for i, r := range d.Rows {
		row := make([]value.Value, 0, len(r)+1)
		out.Rows[i] = append(append(row, r...), value.Int(int64(i)))
	}
	return out
}

// concatShards glues shard outputs in shard-index order; for seed steps
// (contiguous ascending trixel ranges, trixel-ordered node output) that
// concatenation is exactly the single-node canonical order.
func concatShards(outs []*dataset.DataSet) (*dataset.DataSet, error) {
	ref, err := shardSchema(outs)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, o := range outs {
		total += o.NumRows()
	}
	out := &dataset.DataSet{Columns: ref.Columns, Rows: make([][]value.Value, 0, total)}
	for _, o := range outs {
		out.Rows = append(out.Rows, o.Rows...)
	}
	return out, nil
}

// mergeShards k-way merges extend-step outputs by (ordinal, shard
// index). Each shard stream arrives with nondecreasing ordinals (step
// runners process incoming tuples in order), so the merge restores the
// single-node order: all of tuple 0's matches — shard by shard in
// trixel order — then tuple 1's, and so on. The ordinal column is
// stripped from the merged output.
func mergeShards(outs []*dataset.DataSet) (*dataset.DataSet, error) {
	ref, err := shardSchema(outs)
	if err != nil {
		return nil, err
	}
	oi := ref.ColumnIndex(ordColumn)
	if oi < 0 {
		return nil, fmt.Errorf("portal: shard output lost the ordinal column")
	}
	total := 0
	for _, o := range outs {
		total += o.NumRows()
	}
	out := &dataset.DataSet{Columns: dropColumn(ref.Columns, oi), Rows: make([][]value.Value, 0, total)}
	pos := make([]int, len(outs))
	for {
		best, bestOrd := -1, int64(0)
		for k, o := range outs {
			if pos[k] >= len(o.Rows) {
				continue
			}
			ord := o.Rows[pos[k]][oi].AsInt()
			if best < 0 || ord < bestOrd {
				best, bestOrd = k, ord
			}
		}
		if best < 0 {
			return out, nil
		}
		out.Rows = append(out.Rows, dropCell(outs[best].Rows[pos[best]], oi))
		pos[best]++
	}
}

// intersectShards merges drop-out-step outputs: a shard returns the
// incoming tuples its local archive did NOT veto, so a tuple survives
// the global veto iff every shard returned it. The surviving rows come
// from the coordinator's own pre-ordinal copy, which keeps the output
// bit-identical to the single-node fold.
func intersectShards(incoming *dataset.DataSet, outs []*dataset.DataSet) (*dataset.DataSet, error) {
	if _, err := shardSchema(outs); err != nil {
		return nil, err
	}
	survived := map[int64]int{}
	for _, o := range outs {
		oi := o.ColumnIndex(ordColumn)
		if oi < 0 {
			return nil, fmt.Errorf("portal: drop-out shard output lost the ordinal column")
		}
		seen := map[int64]bool{}
		for _, r := range o.Rows {
			ord := r[oi].AsInt()
			if !seen[ord] {
				seen[ord] = true
				survived[ord]++
			}
		}
	}
	out := &dataset.DataSet{Columns: incoming.Columns, Rows: make([][]value.Value, 0, len(incoming.Rows))}
	for i, r := range incoming.Rows {
		if survived[int64(i)] == len(outs) {
			out.Rows = append(out.Rows, r)
		}
	}
	return out, nil
}

// shardSchema validates that every shard answered with one schema and
// returns a representative.
func shardSchema(outs []*dataset.DataSet) (*dataset.DataSet, error) {
	var ref *dataset.DataSet
	for _, o := range outs {
		if o == nil {
			return nil, fmt.Errorf("portal: missing shard output")
		}
		if ref == nil {
			ref = o
		} else if !ref.SchemaEqual(o) {
			return nil, fmt.Errorf("portal: shard outputs disagree on schema")
		}
	}
	if ref == nil {
		return nil, fmt.Errorf("portal: no shard outputs")
	}
	return ref, nil
}

func dropColumn(cols []dataset.Column, i int) []dataset.Column {
	out := make([]dataset.Column, 0, len(cols)-1)
	out = append(out, cols[:i]...)
	return append(out, cols[i+1:]...)
}

func dropCell(row []value.Value, i int) []value.Value {
	out := make([]value.Value, 0, len(row)-1)
	out = append(out, row[:i]...)
	return append(out, row[i+1:]...)
}
