package soap

import (
	"bytes"
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"skyquery/internal/dataset"
	"skyquery/internal/value"
)

func chunkSample(rows int) *dataset.DataSet {
	d := dataset.New(
		dataset.Column{Name: "id", Type: value.IntType},
		dataset.Column{Name: "ra", Type: value.FloatType},
		dataset.Column{Name: "name", Type: value.StringType},
	)
	for i := 0; i < rows; i++ {
		row := []value.Value{value.Int(int64(i)), value.Float(float64(i) / 3), value.String("obj")}
		if i%4 == 1 {
			row[2] = value.Null
		}
		d.Append(row)
	}
	return d
}

func dataSetsEqual(a, b *dataset.DataSet) bool {
	if !a.SchemaEqual(b) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if !value.Equal(a.Rows[i][j], b.Rows[i][j]) {
				return false
			}
		}
	}
	return true
}

func TestChunkedDataFrameRoundTrip(t *testing.T) {
	in := &ChunkedData{Token: "xfer-9", Seq: 2, Remaining: 5, Data: chunkSample(37)}
	var buf bytes.Buffer
	if err := in.EncodeFrames(&buf); err != nil {
		t.Fatal(err)
	}
	var out ChunkedData
	if err := out.DecodeFrames(&buf); err != nil {
		t.Fatal(err)
	}
	if out.Token != in.Token || out.Seq != in.Seq || out.Remaining != in.Remaining {
		t.Errorf("meta = %q/%d/%d", out.Token, out.Seq, out.Remaining)
	}
	if !dataSetsEqual(in.Data, out.Data) {
		t.Error("data mismatch")
	}
}

func TestChunkedDataFrameGarbage(t *testing.T) {
	var out ChunkedData
	if err := out.DecodeFrames(bytes.NewReader([]byte("definitely not frames"))); err == nil {
		t.Error("garbage should fail")
	}
	if err := out.DecodeFrames(bytes.NewReader(nil)); err == nil {
		t.Error("empty body should fail")
	}
}

// newChunkServer serves one action returning a fixed chunked data set.
func newChunkServer(t *testing.T, codec Codec, d *dataset.DataSet) *httptest.Server {
	t.Helper()
	s := NewServer()
	s.Codec = codec
	s.Handle("urn:test:Echo", func(r *Request) (interface{}, error) {
		return &ChunkedData{Data: d}, nil
	})
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv
}

func TestCodecNegotiation(t *testing.T) {
	d := chunkSample(257)
	cases := []struct {
		name           string
		server, client Codec
	}{
		{"binary-binary", CodecNegotiate, CodecNegotiate},
		{"binary-server-xml-client", CodecNegotiate, CodecXML},
		{"xml-server-binary-client", CodecXML, CodecNegotiate},
		{"xml-xml", CodecXML, CodecXML},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := newChunkServer(t, tc.server, d)
			c := &Client{Codec: tc.client}
			var got ChunkedData
			if err := c.Call(context.Background(), srv.URL, "urn:test:Echo", &struct{}{}, &got); err != nil {
				t.Fatal(err)
			}
			if got.Data == nil || !dataSetsEqual(d, got.Data) {
				t.Error("echoed data set mismatch")
			}
		})
	}
}

func TestCodecNegotiationXMLForNonBinaryResponses(t *testing.T) {
	// A response type without BinaryPayload must come back as XML even
	// when both ends could speak columnar.
	s := NewServer()
	type pong struct {
		N int `xml:"n,attr"`
	}
	s.Handle("urn:test:Ping", func(r *Request) (interface{}, error) {
		return &pong{N: 7}, nil
	})
	srv := httptest.NewServer(s)
	defer srv.Close()
	var got pong
	if err := (&Client{}).Call(context.Background(), srv.URL, "urn:test:Ping", &struct{}{}, &got); err != nil {
		t.Fatal(err)
	}
	if got.N != 7 {
		t.Errorf("pong = %d", got.N)
	}
}

func TestFaultsSurviveBinaryNegotiation(t *testing.T) {
	s := NewServer()
	s.Handle("urn:test:Boom", func(r *Request) (interface{}, error) {
		return nil, &Fault{Code: "soap:Server", String: "no dice", Detail: FaultDetailOverloaded}
	})
	srv := httptest.NewServer(s)
	defer srv.Close()
	var got ChunkedData
	err := (&Client{}).Call(context.Background(), srv.URL, "urn:test:Boom", &struct{}{}, &got)
	if !IsOverloaded(err) {
		t.Fatalf("want overloaded fault, got %v", err)
	}
}

func TestClientRetriesOverloaded(t *testing.T) {
	var calls atomic.Int64
	d := chunkSample(3)
	s := NewServer()
	s.Handle("urn:test:Flaky", func(r *Request) (interface{}, error) {
		if calls.Add(1) <= 2 {
			return nil, &Fault{Code: "soap:Server", String: "busy", Detail: FaultDetailOverloaded}
		}
		return &ChunkedData{Data: d}, nil
	})
	srv := httptest.NewServer(s)
	defer srv.Close()

	// Without retries the typed fault surfaces.
	var got ChunkedData
	if err := (&Client{}).Call(context.Background(), srv.URL, "urn:test:Flaky", &struct{}{}, &got); !IsOverloaded(err) {
		t.Fatalf("want overloaded fault, got %v", err)
	}

	calls.Store(0)
	c := &Client{MaxRetries: 3, RetryBackoff: time.Millisecond}
	if err := c.Call(context.Background(), srv.URL, "urn:test:Flaky", &struct{}{}, &got); err != nil {
		t.Fatalf("retrying client failed: %v", err)
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3", calls.Load())
	}
	if !dataSetsEqual(d, got.Data) {
		t.Error("retried response mismatch")
	}

	// Non-overload faults must not retry.
	calls.Store(0)
	s.Handle("urn:test:Hard", func(r *Request) (interface{}, error) {
		calls.Add(1)
		return nil, &Fault{Code: "soap:Server", String: "broken"}
	})
	err := c.Call(context.Background(), srv.URL, "urn:test:Hard", &struct{}{}, &got)
	if err == nil || IsOverloaded(err) {
		t.Fatalf("want plain fault, got %v", err)
	}
	if calls.Load() != 1 {
		t.Errorf("plain fault retried: %d calls", calls.Load())
	}
}

func TestParseCodec(t *testing.T) {
	for s, want := range map[string]Codec{"": CodecNegotiate, "binary": CodecNegotiate, "XML": CodecXML} {
		got, ok := ParseCodec(s)
		if !ok || got != want {
			t.Errorf("ParseCodec(%q) = %v, %v", s, got, ok)
		}
	}
	if _, ok := ParseCodec("carrier-pigeon"); ok {
		t.Error("bad codec name accepted")
	}
}
