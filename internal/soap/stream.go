package soap

// Streaming bulk responses. PR 7's columnar wire already frames results
// as self-delimiting pages; this file lets both ends keep the page
// boundary instead of folding it away. A handler returns a ChunkedStream
// whose Run produces pages as the work generates them, and the server
// writes each one to the HTTP response immediately; a caller uses
// OpenStream/PageStream to consume pages as they arrive. A streamed body
// is a valid single-chunk ChunkedData body (SQCH header with an empty
// token), so non-streaming receivers decode it unchanged, and servers
// that answer with buffered chunked responses — or plain XML — degrade
// transparently to chunk-by-chunk fetching. Errors after the stream has
// started travel in-band as columnar error frames (dataset.StreamError).

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"

	"skyquery/internal/dataset"
	"skyquery/internal/value"
)

// streamHeader marks a request whose caller consumes the response page
// by page; handlers only answer with a ChunkedStream when it is present,
// so buffered clients keep getting bounded chunked responses.
const streamHeader = "X-Skyquery-Stream"

// StreamWriter is handed to a ChunkedStream's Run: Schema exactly once,
// then Page per row group. Each page is flushed to the wire as soon as
// it is written.
type StreamWriter struct {
	enc         *dataset.ColumnarEncoder
	flush       func() error
	wroteSchema bool
	rows        int
}

// Schema emits the stream's schema frame. It must be called exactly
// once, before any page.
func (sw *StreamWriter) Schema(cols []dataset.Column) error {
	if sw.wroteSchema {
		return fmt.Errorf("soap: stream schema already written")
	}
	sw.wroteSchema = true
	if err := sw.enc.WriteSchema(cols); err != nil {
		return err
	}
	return sw.flush()
}

// Page emits one row group and flushes it to the caller. Empty pages are
// skipped.
func (sw *StreamWriter) Page(rows [][]value.Value) error {
	if !sw.wroteSchema {
		return fmt.Errorf("soap: stream page before schema")
	}
	if len(rows) == 0 {
		return nil
	}
	sw.rows += len(rows)
	if err := sw.enc.WritePage(rows); err != nil {
		return err
	}
	return sw.flush()
}

// Rows returns how many rows have been written so far.
func (sw *StreamWriter) Rows() int { return sw.rows }

// ChunkedStream is the streaming counterpart of ChunkedData: a response
// produced page by page while the HTTP exchange is open. It implements
// FrameStreamer; handlers return one only when Request.WantsStream
// reports the caller can consume it.
type ChunkedStream struct {
	// Run produces the response: Schema once, then Page per row group.
	// A returned error ends the stream with an in-band error frame that
	// surfaces to the consumer as a typed *dataset.StreamError.
	Run func(w *StreamWriter) error
}

// StreamFrames implements FrameStreamer.
func (cs *ChunkedStream) StreamFrames(w io.Writer) error {
	hdr, err := appendChunkHeader(nil, "", 0, 0)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 32<<10)
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	flusher, _ := w.(http.Flusher)
	sw := &StreamWriter{enc: dataset.NewColumnarEncoder(bw)}
	sw.flush = func() error {
		if err := bw.Flush(); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	runErr := cs.Run(sw)
	if runErr == nil && !sw.wroteSchema {
		runErr = fmt.Errorf("soap: stream produced no schema")
	}
	if runErr != nil {
		if err := sw.enc.WriteError(runErr.Error()); err != nil {
			return err
		}
		return sw.flush()
	}
	if err := sw.enc.Close(); err != nil {
		return err
	}
	return sw.flush()
}

// WantsStream reports that the caller asked for a page-streamed response
// (and can read the columnar format, which streaming requires).
func (r *Request) WantsStream() bool {
	return r.AcceptsColumnar && r.wantsStream
}

// PageStream consumes a bulk response incrementally: pages of a streamed
// columnar body, or chunk-by-chunk fetches of the buffered fallback —
// either way rows reach the caller before the transfer completes, and
// only one page is materialized at a time.
type PageStream struct {
	c    *Client
	ctx  context.Context
	url  string
	cols []dataset.Column

	body io.ReadCloser // non-nil while draining a streamed body
	dec  *dataset.ColumnarDecoder

	follow *chunkFollower  // chunk fetches owed after body/buf drain
	buf    [][]value.Value // rows already materialized (fallback chunks)

	err    error
	done   bool
	closed bool
}

// OpenStream issues req to url and returns a PageStream over the
// response, whatever shape the server chose: a streamed columnar body, a
// buffered columnar chunked response, or the XML chunked fallback.
func OpenStream(ctx context.Context, c *Client, url, action string, req interface{}) (*PageStream, error) {
	var first ChunkedData
	body, err := c.callForStream(ctx, url, action, req, &first)
	if err != nil {
		return nil, err
	}
	if body == nil {
		// XML fallback: a whole first chunk, the rest by fetch.
		if first.Data == nil {
			return nil, fmt.Errorf("soap: empty chunked response")
		}
		follow, err := newChunkFollower(&first)
		if err != nil {
			return nil, err
		}
		return &PageStream{c: c, ctx: ctx, url: url, cols: first.Data.Columns, buf: first.Data.Rows, follow: follow}, nil
	}
	// Columnar body: an embedded frame stream, possibly (when the server
	// buffered and chunked) with a continuation token for more chunks.
	token, seq, remaining, err := readChunkHeader(body)
	if err != nil {
		body.Close()
		return nil, err
	}
	follow, err := newChunkFollower(&ChunkedData{Token: token, Seq: seq, Remaining: remaining})
	if err != nil {
		body.Close()
		return nil, err
	}
	dec := dataset.NewColumnarDecoder(body)
	cols, err := dec.ReadSchema()
	if err != nil {
		body.Close()
		if follow.token != "" {
			releaseTransfer(c, url, follow.token)
		}
		return nil, err
	}
	return &PageStream{c: c, ctx: ctx, url: url, cols: cols, body: body, dec: dec, follow: follow}, nil
}

// callForStream is CallStream plus the header that tells a streaming-
// capable server to produce pages instead of parking tail chunks.
func (c *Client) callForStream(ctx context.Context, url, action string, req, resp interface{}) (io.ReadCloser, error) {
	payload, err := Marshal(req)
	if err != nil {
		return nil, err
	}
	if int64(len(payload)) > c.limit() {
		return nil, &ErrMessageTooLarge{Size: int64(len(payload)), Limit: c.limit()}
	}
	for attempt := 0; ; attempt++ {
		body, err := c.callStreamHdr(ctx, url, action, payload, resp, true)
		if !IsOverloaded(err) || attempt >= c.MaxRetries {
			return body, err
		}
		if err := c.sleepBackoff(ctx, attempt); err != nil {
			return nil, err
		}
	}
}

// Columns returns the stream's schema.
func (ps *PageStream) Columns() []dataset.Column { return ps.cols }

func (ps *PageStream) context() context.Context {
	if ps.ctx != nil {
		return ps.ctx
	}
	return context.Background()
}

// Next returns the next page of rows, or (nil, nil) after the last one.
// The returned slice is owned by the caller. After an error the stream
// is dead and any parked server-side transfer has been released.
func (ps *PageStream) Next() ([][]value.Value, error) {
	if ps.err != nil {
		return nil, ps.err
	}
	if ps.done {
		return nil, nil
	}
	for {
		if len(ps.buf) > 0 {
			rows := ps.buf
			ps.buf = nil
			return rows, nil
		}
		ps.buf = nil
		if ps.body != nil {
			tmp := dataset.DataSet{Columns: ps.cols}
			n, err := ps.dec.ReadPage(&tmp)
			if err != nil {
				ps.fail(err)
				return nil, ps.err
			}
			if n > 0 {
				return tmp.Rows, nil
			}
			// Embedded stream complete; fall through to any owed chunks.
			ps.body.Close()
			ps.body = nil
			continue
		}
		if ps.follow == nil || ps.follow.token == "" {
			ps.done = true
			return nil, nil
		}
		var next ChunkedData
		if err := ps.c.Call(ps.context(), ps.url, FetchAction, &FetchRequest{Token: ps.follow.token}, &next); err != nil {
			ps.fail(fmt.Errorf("soap: fetch chunk: %w", err))
			return nil, ps.err
		}
		if err := ps.follow.next(&next); err != nil {
			ps.fail(err)
			return nil, ps.err
		}
		ps.buf = next.Data.Rows
	}
}

// fail records err and releases whatever the stream still holds.
func (ps *PageStream) fail(err error) {
	ps.err = err
	if ps.body != nil {
		ps.body.Close()
		ps.body = nil
	}
	if ps.follow != nil && ps.follow.token != "" {
		releaseTransfer(ps.c, ps.url, ps.follow.token)
		ps.follow.token = ""
	}
}

// Close releases the stream. Abandoning a stream before its last page is
// legal (TOP does it): the connection is torn down and any parked
// server-side transfer is released rather than left to the TTL sweep.
func (ps *PageStream) Close() error {
	if ps.closed {
		return nil
	}
	ps.closed = true
	if ps.body != nil {
		ps.body.Close()
		ps.body = nil
	}
	if ps.err == nil && !ps.done && ps.follow != nil && ps.follow.token != "" {
		releaseTransfer(ps.c, ps.url, ps.follow.token)
		ps.follow.token = ""
	}
	return nil
}
