// Package soap implements the SOAP 1.1 subset SkyQuery runs on (§3.1):
// XML envelopes POSTed over HTTP with a SOAPAction header identifying the
// target operation, request-response and fault semantics, and a
// configurable message-size limit that reproduces the production failure
// described in §6 — "the XML parser at the SkyNode would run out of memory
// while parsing SOAP messages of about 10 MB". Callers avoid the limit the
// same way the paper did: by chunking large data sets (see
// internal/dataset.Split and the chunked transfer helpers here).
package soap

import (
	"bytes"
	"context"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"skyquery/internal/nettrace"
)

// EnvelopeNS is the SOAP 1.1 envelope namespace.
const EnvelopeNS = "http://schemas.xmlsoap.org/soap/envelope/"

// DefaultMessageLimit mirrors the ~10 MB ceiling of the paper's XML parser.
const DefaultMessageLimit = 10 << 20

// DefaultCallTimeout bounds a SOAP call end to end when the caller does
// not choose its own. A portal must not hang forever on a stalled node:
// without a deadline a single wedged SkyNode pins the mediator's worker
// (and the user's query) indefinitely.
const DefaultCallTimeout = 2 * time.Minute

// Fault is a SOAP fault, used both on the wire and as a Go error.
type Fault struct {
	XMLName xml.Name `xml:"http://schemas.xmlsoap.org/soap/envelope/ Fault"`
	Code    string   `xml:"faultcode"`
	String  string   `xml:"faultstring"`
	Detail  string   `xml:"detail,omitempty"`
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault %s: %s", f.Code, f.String)
}

// FaultDetailOverloaded marks the 429-equivalent fault an admission
// gate sheds load with. Callers may retry after a backoff: the server
// refused to start the work, so the call is idempotent to repeat.
const FaultDetailOverloaded = "Overloaded"

// IsOverloaded reports whether err is a retryable overload-shed fault.
func IsOverloaded(err error) bool {
	f, ok := err.(*Fault)
	return ok && f.Detail == FaultDetailOverloaded
}

// DefaultRetryBackoff is the base delay of the client's overload retry
// schedule (doubled per attempt).
const DefaultRetryBackoff = 25 * time.Millisecond

// ErrMessageTooLarge reports a message that exceeded the configured limit,
// standing in for the paper's parser running out of memory.
type ErrMessageTooLarge struct {
	Size, Limit int64
}

// Error implements the error interface.
func (e *ErrMessageTooLarge) Error() string {
	return fmt.Sprintf("soap: message of %d bytes exceeds the XML parser limit of %d bytes", e.Size, e.Limit)
}

// envelope is the encode-side wire structure.
type envelope struct {
	XMLName xml.Name   `xml:"soap:Envelope"`
	NS      string     `xml:"xmlns:soap,attr"`
	Body    bodyEncode `xml:"soap:Body"`
}

type bodyEncode struct {
	Payload interface{}
}

// decodeEnvelope is the decode-side wire structure; the body is captured
// raw so the payload type can be chosen after fault inspection.
type decodeEnvelope struct {
	XMLName xml.Name `xml:"Envelope"`
	Body    struct {
		Inner []byte `xml:",innerxml"`
	} `xml:"Body"`
}

// Marshal wraps a payload in a SOAP envelope.
func Marshal(payload interface{}) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(xml.Header)
	env := envelope{NS: EnvelopeNS, Body: bodyEncode{Payload: payload}}
	if err := xml.NewEncoder(&buf).Encode(env); err != nil {
		return nil, fmt.Errorf("soap: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal extracts the body payload of a SOAP envelope into out. If the
// body carries a fault, it is returned as a *Fault error. out may be nil
// for empty responses.
func Unmarshal(data []byte, out interface{}) error {
	var env decodeEnvelope
	if err := xml.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("soap: bad envelope: %w", err)
	}
	inner := bytes.TrimSpace(env.Body.Inner)
	if isFault(inner) {
		var f Fault
		if err := xml.Unmarshal(inner, &f); err != nil {
			return fmt.Errorf("soap: bad fault: %w", err)
		}
		return &f
	}
	if out == nil || len(inner) == 0 {
		return nil
	}
	if err := xml.Unmarshal(inner, out); err != nil {
		return fmt.Errorf("soap: bad body: %w", err)
	}
	return nil
}

// isFault sniffs whether the body's first element is a SOAP fault.
func isFault(inner []byte) bool {
	dec := xml.NewDecoder(bytes.NewReader(inner))
	for {
		tok, err := dec.Token()
		if err != nil {
			return false
		}
		if se, ok := tok.(xml.StartElement); ok {
			return se.Name.Local == "Fault"
		}
	}
}

// Handler processes one SOAP operation: it decodes its typed request from
// the raw body XML and returns a payload to ship back (or an error, which
// becomes a fault).
type Handler func(r *Request) (interface{}, error)

// Request carries the decoded-envelope body and HTTP metadata to handlers.
type Request struct {
	// Action is the SOAPAction header value, unquoted.
	Action string
	// RemoteAddr is the caller's address as reported by HTTP.
	RemoteAddr string
	// AcceptsColumnar reports that the caller advertised the columnar
	// format and this server negotiates it: the handler may answer with
	// a FrameStreamer (or BinaryPayload) and it will go out columnar.
	AcceptsColumnar bool
	// Ctx is the request's context: it is cancelled when the caller
	// disconnects or cancels, and handlers should thread it into any
	// downstream calls so federated work aborts end to end.
	Ctx         context.Context
	wantsStream bool
	body        []byte
}

// Context returns the request's context, or context.Background for
// requests constructed without one (tests, local dispatch).
func (r *Request) Context() context.Context {
	if r.Ctx != nil {
		return r.Ctx
	}
	return context.Background()
}

// Decode unmarshals the request payload into the given struct.
func (r *Request) Decode(into interface{}) error {
	if err := xml.Unmarshal(r.body, into); err != nil {
		return fmt.Errorf("soap: decode request for %q: %w", r.Action, err)
	}
	return nil
}

// Server dispatches SOAP calls to handlers by SOAPAction. It implements
// http.Handler. The zero value is usable.
type Server struct {
	// MessageLimit bounds accepted request sizes; 0 means
	// DefaultMessageLimit, negative means unlimited.
	MessageLimit int64
	// WSDL, if non-empty, is served for GET requests with a ?wsdl query.
	WSDL string
	// Codec selects the response codec policy: CodecNegotiate (default)
	// serves columnar bodies to clients that accept them, CodecXML always
	// answers in XML.
	Codec Codec

	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewServer returns a server with the default message limit.
func NewServer() *Server {
	return &Server{handlers: map[string]Handler{}}
}

// Handle registers a handler for a SOAPAction.
func (s *Server) Handle(action string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.handlers == nil {
		s.handlers = map[string]Handler{}
	}
	s.handlers[action] = h
}

// Actions returns the registered SOAPAction names, unsorted.
func (s *Server) Actions() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.handlers))
	for a := range s.handlers {
		out = append(out, a)
	}
	return out
}

func (s *Server) limit() int64 {
	switch {
	case s.MessageLimit == 0:
		return DefaultMessageLimit
	case s.MessageLimit < 0:
		return 1 << 62
	default:
		return s.MessageLimit
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		if s.WSDL != "" && r.URL.RawQuery == "wsdl" {
			w.Header().Set("Content-Type", "text/xml; charset=utf-8")
			io.WriteString(w, s.WSDL)
			return
		}
		http.Error(w, "soap endpoint: POST with SOAPAction required", http.StatusMethodNotAllowed)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	action := strings.Trim(r.Header.Get("SOAPAction"), `"`)
	s.mu.RLock()
	h, ok := s.handlers[action]
	s.mu.RUnlock()
	if !ok {
		s.writeFault(w, &Fault{Code: "soap:Client", String: fmt.Sprintf("unknown SOAPAction %q", action)})
		return
	}

	limit := s.limit()
	data, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		s.writeFault(w, &Fault{Code: "soap:Server", String: "read error: " + err.Error()})
		return
	}
	if int64(len(data)) > limit {
		// The paper's parser died here; surface it as a distinguishable
		// server fault.
		tooBig := &ErrMessageTooLarge{Size: int64(len(data)), Limit: limit}
		s.writeFault(w, &Fault{Code: "soap:Server", String: tooBig.Error(), Detail: "MessageTooLarge"})
		return
	}

	var env decodeEnvelope
	if err := xml.Unmarshal(data, &env); err != nil {
		s.writeFault(w, &Fault{Code: "soap:Client", String: "bad envelope: " + err.Error()})
		return
	}
	wantsColumnar := s.Codec == CodecNegotiate && acceptsColumnar(r.Header.Get("Accept"))
	resp, err := h(&Request{
		Action:          action,
		RemoteAddr:      r.RemoteAddr,
		AcceptsColumnar: wantsColumnar,
		Ctx:             r.Context(),
		wantsStream:     r.Header.Get(streamHeader) != "",
		body:            bytes.TrimSpace(env.Body.Inner),
	})
	if err != nil {
		if f, ok := err.(*Fault); ok {
			s.writeFault(w, f)
			return
		}
		s.writeFault(w, &Fault{Code: "soap:Server", String: err.Error()})
		return
	}
	if wantsColumnar {
		if fs, ok := resp.(FrameStreamer); ok {
			// Unbuffered: frames go out as the handler's work produces
			// them. Failures after this point are in-band error frames.
			w.Header().Set("Content-Type", ContentTypeColumnar)
			fs.StreamFrames(w)
			return
		}
		if bp, ok := resp.(BinaryPayload); ok {
			// Buffered so an encode failure can still become a clean
			// XML fault instead of a torn stream.
			var buf bytes.Buffer
			if err := bp.EncodeFrames(&buf); err != nil {
				s.writeFault(w, &Fault{Code: "soap:Server", String: "encode response: " + err.Error()})
				return
			}
			w.Header().Set("Content-Type", ContentTypeColumnar)
			w.Write(buf.Bytes())
			return
		}
	}
	out, err := Marshal(resp)
	if err != nil {
		s.writeFault(w, &Fault{Code: "soap:Server", String: "marshal response: " + err.Error()})
		return
	}
	w.Header().Set("Content-Type", contentTypeXML)
	w.Write(out)
}

func (s *Server) writeFault(w http.ResponseWriter, f *Fault) {
	out, err := Marshal(f)
	if err != nil {
		http.Error(w, f.String, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", contentTypeXML)
	status := http.StatusInternalServerError
	if f.Detail == FaultDetailOverloaded {
		// The 429/503 analogue: the work was refused, not attempted.
		status = http.StatusServiceUnavailable
	}
	w.WriteHeader(status)
	w.Write(out)
}

// Client issues SOAP calls.
type Client struct {
	// HTTPClient, when set, is used as-is — including its own Timeout —
	// and the Timeout field below is ignored; the caller owns deadlines.
	HTTPClient *http.Client
	// MessageLimit bounds response sizes the client will parse; 0 means
	// DefaultMessageLimit, negative means unlimited.
	MessageLimit int64
	// Timeout bounds each call end to end (connect, write, read) when
	// HTTPClient is nil: 0 means DefaultCallTimeout, negative disables
	// the deadline. The zero-value Client therefore times out rather
	// than hanging forever on a stalled server.
	Timeout time.Duration
	// Codec selects the wire codec: CodecNegotiate (default) advertises
	// the binary columnar format on calls whose response supports it and
	// accepts whatever the server chooses; CodecXML never advertises it.
	Codec Codec
	// MaxRetries is how many times an overload-shed call (IsOverloaded)
	// is retried after the first attempt; other errors never retry.
	MaxRetries int
	// RetryBackoff is the base delay before the first retry, doubling
	// per attempt; 0 means DefaultRetryBackoff.
	RetryBackoff time.Duration

	mu     sync.Mutex
	cached *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	d := c.Timeout
	switch {
	case d == 0:
		d = DefaultCallTimeout
	case d < 0:
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cached == nil || c.cached.Timeout != d {
		// Shares the process-wide tuned transport (and its deep keep-alive
		// pool); only the deadline is ours. The stock DefaultTransport
		// caps idle connections at 2 per host, which forces reconnects on
		// every scatter burst wider than that.
		c.cached = &http.Client{Timeout: d, Transport: nettrace.SharedTransport()}
	}
	return c.cached
}

func (c *Client) limit() int64 {
	switch {
	case c.MessageLimit == 0:
		return DefaultMessageLimit
	case c.MessageLimit < 0:
		return 1 << 62
	default:
		return c.MessageLimit
	}
}

// Call POSTs req as a SOAP envelope to url with the given SOAPAction and
// decodes the response payload into resp (which may be nil). SOAP faults
// come back as *Fault errors; oversized requests or responses come back as
// *ErrMessageTooLarge. Overload-shed faults (IsOverloaded) are retried
// MaxRetries times with exponential backoff — safe, because the server
// refused the work before starting it.
func (c *Client) Call(ctx context.Context, url, action string, req, resp interface{}) error {
	payload, err := Marshal(req)
	if err != nil {
		return err
	}
	if int64(len(payload)) > c.limit() {
		// The sender's own serializer refuses, like the paper's workaround
		// logic did before chunking was added.
		return &ErrMessageTooLarge{Size: int64(len(payload)), Limit: c.limit()}
	}
	for attempt := 0; ; attempt++ {
		err := c.call(ctx, url, action, payload, resp)
		if !IsOverloaded(err) || attempt >= c.MaxRetries {
			return err
		}
		if err := c.sleepBackoff(ctx, attempt); err != nil {
			return err
		}
	}
}

// sleepBackoff waits the overload-retry delay for the given attempt, or
// returns early with the context's error when the caller cancels.
func (c *Client) sleepBackoff(ctx context.Context, attempt int) error {
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	if attempt < 10 {
		backoff <<= attempt
	} else {
		backoff <<= 10
	}
	t := time.NewTimer(backoff)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CallStream POSTs req like Call but asks for an incrementally
// consumable response. When the server answers columnar, the raw body is
// returned for frame-by-frame decoding — the caller owns closing it, and
// the client's MessageLimit does not apply to it (the codec's per-frame
// caps bound allocations instead, which is the point: the whole body
// never sits in memory at once). When the server answers XML — the
// fallback — the envelope is decoded into resp exactly as Call would and
// the returned reader is nil. Overload sheds retry as in Call; they can
// only happen before the server commits to streaming.
func (c *Client) CallStream(ctx context.Context, url, action string, req, resp interface{}) (io.ReadCloser, error) {
	payload, err := Marshal(req)
	if err != nil {
		return nil, err
	}
	if int64(len(payload)) > c.limit() {
		return nil, &ErrMessageTooLarge{Size: int64(len(payload)), Limit: c.limit()}
	}
	for attempt := 0; ; attempt++ {
		body, err := c.callStreamHdr(ctx, url, action, payload, resp, false)
		if !IsOverloaded(err) || attempt >= c.MaxRetries {
			return body, err
		}
		if err := c.sleepBackoff(ctx, attempt); err != nil {
			return nil, err
		}
	}
}

// callStreamHdr performs one HTTP exchange of an already-marshalled
// request, handing back the raw body when the server streams columnar
// frames. stream additionally asks the server to produce pages
// incrementally instead of parking tail chunks.
func (c *Client) callStreamHdr(ctx context.Context, url, action string, payload []byte, resp interface{}, stream bool) (io.ReadCloser, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("soap: %w", err)
	}
	httpReq.Header.Set("Content-Type", contentTypeXML)
	httpReq.Header.Set("SOAPAction", `"`+action+`"`)
	if c.Codec == CodecNegotiate {
		httpReq.Header.Set("Accept", ContentTypeColumnar)
		if stream {
			httpReq.Header.Set(streamHeader, "pages")
		}
	}
	httpResp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("soap: call %s %s: %w", url, action, err)
	}
	if isColumnar(httpResp.Header.Get("Content-Type")) {
		return httpResp.Body, nil
	}
	defer httpResp.Body.Close()
	limit := c.limit()
	data, err := io.ReadAll(io.LimitReader(httpResp.Body, limit+1))
	if err != nil {
		return nil, fmt.Errorf("soap: read response: %w", err)
	}
	if int64(len(data)) > limit {
		return nil, &ErrMessageTooLarge{Size: int64(len(data)), Limit: limit}
	}
	return nil, Unmarshal(data, resp)
}

// call performs one HTTP exchange of an already-marshalled request.
func (c *Client) call(ctx context.Context, url, action string, payload []byte, resp interface{}) error {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("soap: %w", err)
	}
	httpReq.Header.Set("Content-Type", contentTypeXML)
	httpReq.Header.Set("SOAPAction", `"`+action+`"`)
	bp, binOK := resp.(BinaryPayload)
	if binOK && c.Codec == CodecNegotiate {
		httpReq.Header.Set("Accept", ContentTypeColumnar)
	}
	httpResp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return fmt.Errorf("soap: call %s %s: %w", url, action, err)
	}
	defer httpResp.Body.Close()
	limit := c.limit()
	data, err := io.ReadAll(io.LimitReader(httpResp.Body, limit+1))
	if err != nil {
		return fmt.Errorf("soap: read response: %w", err)
	}
	if int64(len(data)) > limit {
		return &ErrMessageTooLarge{Size: int64(len(data)), Limit: limit}
	}
	if isColumnar(httpResp.Header.Get("Content-Type")) {
		if !binOK {
			return fmt.Errorf("soap: %s returned a columnar body for a non-columnar response type", action)
		}
		if err := bp.DecodeFrames(bytes.NewReader(data)); err != nil {
			return fmt.Errorf("soap: columnar response: %w", err)
		}
		return nil
	}
	return Unmarshal(data, resp)
}

// Go issues Call on a new goroutine and delivers the error on the returned
// channel: the "asynchronous SOAP messages" of §5.3 used for fanning out
// performance queries.
func (c *Client) Go(ctx context.Context, url, action string, req, resp interface{}) <-chan error {
	ch := make(chan error, 1)
	go func() { ch <- c.Call(ctx, url, action, req, resp) }()
	return ch
}
