package soap

// Wire-codec negotiation. SOAP requests stay XML always (plans, fetch
// requests, registrations are tiny); only responses that carry bulk
// DataSets are worth a binary encoding. A client that can read the
// columnar format advertises it with an Accept header on calls whose
// response type implements BinaryPayload; a server that has the format
// enabled answers such a request with a columnar body and a matching
// Content-Type, and answers everyone else (including the 2003-era
// paper-fidelity XML path) with the usual XML envelope. Faults are
// always XML, so the error path is identical under either codec. See
// docs/WIRE.md.

import (
	"io"
	"strings"
)

// ContentTypeColumnar identifies a columnar-framed response body.
const ContentTypeColumnar = "application/vnd.skyquery.columnar"

// contentTypeXML is the classic SOAP 1.1 response type.
const contentTypeXML = "text/xml; charset=utf-8"

// Codec selects the wire codec a client advertises or a server serves.
type Codec int

const (
	// CodecNegotiate (the default) advertises/serves the binary columnar
	// format and falls back to XML when the peer does not speak it.
	CodecNegotiate Codec = iota
	// CodecXML forces the paper-fidelity XML codec in both directions.
	CodecXML
)

// ParseCodec maps the -codec flag values to a Codec.
func ParseCodec(s string) (Codec, bool) {
	switch strings.ToLower(s) {
	case "", "binary", "columnar", "negotiate":
		return CodecNegotiate, true
	case "xml":
		return CodecXML, true
	}
	return CodecNegotiate, false
}

// String implements fmt.Stringer.
func (c Codec) String() string {
	if c == CodecXML {
		return "xml"
	}
	return "binary"
}

// BinaryPayload is implemented by response payloads that can travel as
// a columnar frame stream instead of a SOAP XML body. ChunkedData — the
// carrier of every bulk DataSet in the federation — implements it.
type BinaryPayload interface {
	// EncodeFrames writes the payload as a self-delimiting frame stream.
	EncodeFrames(w io.Writer) error
	// DecodeFrames reads a stream written by EncodeFrames, replacing the
	// receiver's contents.
	DecodeFrames(r io.Reader) error
}

// FrameStreamer is implemented by response payloads that are produced
// incrementally: instead of a pre-built frame buffer, StreamFrames
// writes frames directly to the HTTP response as the work generates
// them, so the first page reaches the caller before the last one
// exists. A handler may only return one to a request whose
// AcceptsColumnar flag is set; errors raised after streaming begins
// travel in-band as columnar error frames (see dataset.StreamError),
// never as SOAP faults — the HTTP status line is long gone.
type FrameStreamer interface {
	StreamFrames(w io.Writer) error
}

// acceptsColumnar reports whether an Accept header admits the columnar
// content type.
func acceptsColumnar(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		if mt == ContentTypeColumnar {
			return true
		}
	}
	return false
}

// isColumnar reports whether a response Content-Type is the columnar
// format (parameters ignored).
func isColumnar(contentType string) bool {
	mt := contentType
	if i := strings.IndexByte(mt, ';'); i >= 0 {
		mt = mt[:i]
	}
	return strings.TrimSpace(mt) == ContentTypeColumnar
}
