package soap

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"skyquery/internal/dataset"
	"skyquery/internal/value"
)

// --- ChunkStore lifecycle: TTL, capacity, release, token hygiene ---

func TestChunkStoreTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	cs := ChunkStore{TTL: time.Minute}
	cs.now = func() time.Time { return now }
	first := cs.Respond(sampleDataSet(25), 10)
	if cs.Pending() != 1 {
		t.Fatal("transfer should be pending")
	}
	// A fetch slides the deadline.
	now = now.Add(45 * time.Second)
	if _, err := cs.Fetch(first.Token); err != nil {
		t.Fatal(err)
	}
	now = now.Add(45 * time.Second)
	if cs.Pending() != 1 {
		t.Fatal("fetch should have slid the TTL")
	}
	// The client died here; the tail must not leak forever.
	now = now.Add(time.Minute + time.Second)
	if cs.Pending() != 0 {
		t.Error("expired transfer still pending")
	}
	if cs.Evicted() != 1 {
		t.Errorf("evicted = %d, want 1", cs.Evicted())
	}
	if _, err := cs.Fetch(first.Token); err == nil {
		t.Error("fetching an expired token should fail")
	}
}

func TestChunkStoreMaxPendingEviction(t *testing.T) {
	cs := ChunkStore{MaxPending: 3}
	var firsts []*ChunkedData
	for i := 0; i < 5; i++ {
		firsts = append(firsts, cs.Respond(sampleDataSet(25), 10))
	}
	if got := cs.Pending(); got != 3 {
		t.Fatalf("pending = %d, want 3", got)
	}
	if got := cs.Evicted(); got != 2 {
		t.Errorf("evicted = %d, want 2", got)
	}
	// Oldest first: transfers 0 and 1 are gone, 2-4 survive.
	for i, first := range firsts {
		_, err := cs.Fetch(first.Token)
		if i < 2 && err == nil {
			t.Errorf("transfer %d should have been evicted", i)
		}
		if i >= 2 && err != nil {
			t.Errorf("transfer %d should survive: %v", i, err)
		}
	}
}

func TestChunkStoreRelease(t *testing.T) {
	var cs ChunkStore
	first := cs.Respond(sampleDataSet(25), 10)
	cs.Release(first.Token)
	if cs.Pending() != 0 {
		t.Error("released transfer still pending")
	}
	if cs.Evicted() != 0 {
		t.Error("an explicit release is not an eviction")
	}
	cs.Release("no-such-token") // must not panic
}

func TestChunkTokensUnguessable(t *testing.T) {
	var cs ChunkStore
	a := cs.Respond(sampleDataSet(25), 10)
	b := cs.Respond(sampleDataSet(25), 10)
	if a.Token == b.Token {
		t.Fatal("token reuse")
	}
	for _, tok := range []string{a.Token, b.Token} {
		if len(tok) < 2+32 {
			t.Errorf("token %q too short to be unguessable", tok)
		}
		if strings.HasPrefix(tok, "xfer-") {
			t.Errorf("token %q is sequential-style", tok)
		}
	}
}

// --- FetchAll hardening against buggy or malicious servers ---

func TestFetchAllRejectsReplayedChunk(t *testing.T) {
	// A server that re-sends the same chunk forever used to spin FetchAll
	// in an infinite loop; now the non-advancing Seq is a typed error.
	s := NewServer()
	replay := &ChunkedData{Token: "stuck", Seq: 1, Remaining: 3, Data: sampleDataSet(5)}
	s.Handle(FetchAction, func(r *Request) (interface{}, error) { return replay, nil })
	ts := httptest.NewServer(s)
	defer ts.Close()

	first := &ChunkedData{Token: "stuck", Seq: 0, Remaining: 4, Data: sampleDataSet(5)}
	done := make(chan error, 1)
	go func() {
		_, err := FetchAll(context.Background(), &Client{}, ts.URL, first)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "out of order") {
			t.Errorf("err = %v, want seq-out-of-order", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("FetchAll still looping on a replayed chunk")
	}
}

func TestFetchAllEnforcesAnnouncedCount(t *testing.T) {
	// A server that keeps the token alive past the chunk count announced
	// by the first chunk's Remaining cannot extend the transfer.
	s := NewServer()
	seq := 0
	s.Handle(FetchAction, func(r *Request) (interface{}, error) {
		seq++
		// Seq advances correctly but the server never lets go.
		return &ChunkedData{Token: "greedy", Seq: seq, Remaining: 1, Data: sampleDataSet(5)}, nil
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	first := &ChunkedData{Token: "greedy", Seq: 0, Remaining: 2, Data: sampleDataSet(5)}
	done := make(chan error, 1)
	go func() {
		_, err := FetchAll(context.Background(), &Client{}, ts.URL, first)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("over-announced transfer should fail")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("FetchAll still looping past the announced chunk count")
	}
}

func TestChunkFollowerTruncation(t *testing.T) {
	// Dropping the token while chunks are still owed is truncation, not a
	// clean end.
	f, err := newChunkFollower(&ChunkedData{Token: "tk", Seq: 0, Remaining: 2, Data: sampleDataSet(1)})
	if err != nil {
		t.Fatal(err)
	}
	err = f.next(&ChunkedData{Token: "", Seq: 1, Remaining: 1, Data: sampleDataSet(1)})
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("err = %v, want truncation", err)
	}
}

// --- Streamed responses ---

// streamServer serves urn:test:Stream: streaming callers get pages as
// they are produced; buffered callers get the classic chunked response.
func streamServer(t *testing.T, rows, pageRows int, failAfter int) (*ChunkStore, *httptest.Server) {
	t.Helper()
	cs := &ChunkStore{}
	s := NewServer()
	s.Handle("urn:test:Stream", func(r *Request) (interface{}, error) {
		d := sampleDataSet(rows)
		if !r.WantsStream() {
			return cs.Respond(d, pageRows), nil
		}
		return &ChunkedStream{Run: func(w *StreamWriter) error {
			if err := w.Schema(d.Columns); err != nil {
				return err
			}
			pages := 0
			for start := 0; start < len(d.Rows); start += pageRows {
				end := start + pageRows
				if end > len(d.Rows) {
					end = len(d.Rows)
				}
				if failAfter >= 0 && pages >= failAfter {
					return errors.New("node b2 died mid-stream")
				}
				if err := w.Page(d.Rows[start:end]); err != nil {
					return err
				}
				pages++
			}
			return nil
		}}, nil
	})
	s.Handle(FetchAction, cs.FetchHandler())
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return cs, ts
}

func drainStream(t *testing.T, ps *PageStream) (*dataset.DataSet, int, error) {
	t.Helper()
	out := &dataset.DataSet{Columns: ps.Columns()}
	pages := 0
	for {
		rows, err := ps.Next()
		if err != nil {
			return out, pages, err
		}
		if rows == nil {
			return out, pages, nil
		}
		pages++
		out.Rows = append(out.Rows, rows...)
	}
}

func TestOpenStreamRoundTrip(t *testing.T) {
	const rows = 2500
	_, ts := streamServer(t, rows, 100, -1)
	ps, err := OpenStream(context.Background(), &Client{}, ts.URL, "urn:test:Stream", &FetchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	got, pages, err := drainStream(t, ps)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != rows {
		t.Fatalf("rows = %d, want %d", got.NumRows(), rows)
	}
	if pages != rows/100 {
		t.Errorf("pages = %d, want %d", pages, rows/100)
	}
	for i := 0; i < rows; i += 97 {
		if got.Rows[i][0].AsInt() != int64(i) {
			t.Fatalf("row %d corrupted: %v", i, got.Rows[i])
		}
	}
}

func TestOpenStreamMidStreamErrorIsTyped(t *testing.T) {
	// The stream dies after two pages: the rows so far decode, then a
	// typed *dataset.StreamError — never a silently truncated result.
	_, ts := streamServer(t, 1000, 100, 2)
	ps, err := OpenStream(context.Background(), &Client{}, ts.URL, "urn:test:Stream", &FetchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	got, pages, err := drainStream(t, ps)
	var se *dataset.StreamError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v (%T), want *dataset.StreamError", err, err)
	}
	if !strings.Contains(se.Msg, "node b2 died") {
		t.Errorf("message = %q", se.Msg)
	}
	if pages != 2 || got.NumRows() != 200 {
		t.Errorf("pages = %d rows = %d before the error, want 2/200", pages, got.NumRows())
	}
	// The stream stays dead.
	if _, err := ps.Next(); err == nil {
		t.Error("next after error should keep failing")
	}
}

func TestOpenStreamXMLFallback(t *testing.T) {
	// Against an XML-only server OpenStream degrades to chunk-by-chunk
	// fetching: same rows, still incremental.
	const rows = 2500
	cs, ts := streamServer(t, rows, 100, -1)
	c := &Client{Codec: CodecXML}
	ps, err := OpenStream(context.Background(), c, ts.URL, "urn:test:Stream", &FetchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	got, pages, err := drainStream(t, ps)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != rows {
		t.Fatalf("rows = %d, want %d", got.NumRows(), rows)
	}
	if pages != rows/100 {
		t.Errorf("pages = %d, want %d (one per chunk)", pages, rows/100)
	}
	if cs.Pending() != 0 {
		t.Error("transfer should be fully drained")
	}
}

func TestOpenStreamCloseReleasesTransfer(t *testing.T) {
	// Abandoning a fallback stream early must free the parked tail
	// immediately (the portal error path), not wait for the TTL sweep.
	cs, ts := streamServer(t, 2500, 100, -1)
	c := &Client{Codec: CodecXML}
	ps, err := OpenStream(context.Background(), c, ts.URL, "urn:test:Stream", &FetchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Next(); err != nil {
		t.Fatal(err)
	}
	if cs.Pending() != 1 {
		t.Fatal("transfer should be parked")
	}
	ps.Close()
	if cs.Pending() != 0 {
		t.Error("close did not release the parked transfer")
	}
}

func TestStreamedBodyDecodesAsChunkedData(t *testing.T) {
	// A streamed body is a valid single-chunk ChunkedData body, so a
	// non-incremental receiver can decode one with DecodeFrames.
	d := sampleDataSet(250)
	stream := &ChunkedStream{Run: func(w *StreamWriter) error {
		if err := w.Schema(d.Columns); err != nil {
			return err
		}
		return w.Page(d.Rows)
	}}
	var buf strings.Builder
	if err := stream.StreamFrames(discardFlusher{&buf}); err != nil {
		t.Fatal(err)
	}
	var cd ChunkedData
	if err := cd.DecodeFrames(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	if cd.Token != "" || cd.Remaining != 0 || cd.Data.NumRows() != 250 {
		t.Errorf("decoded chunk = token %q remaining %d rows %d", cd.Token, cd.Remaining, cd.Data.NumRows())
	}
	if cd.Data.Rows[249][0].AsInt() != 249 {
		t.Error("row content corrupted")
	}
}

// discardFlusher adapts a strings.Builder to io.Writer for StreamFrames.
type discardFlusher struct{ b *strings.Builder }

func (d discardFlusher) Write(p []byte) (int, error) { return d.b.Write(p) }

func TestStreamBufferedFallbackSameRows(t *testing.T) {
	// The same action answers buffered callers with the classic chunked
	// response; both consumption styles see identical rows.
	const rows = 1200
	_, ts := streamServer(t, rows, 100, -1)
	c := &Client{}

	ps, err := OpenStream(context.Background(), c, ts.URL, "urn:test:Stream", &FetchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	streamed, _, err := drainStream(t, ps)
	ps.Close()
	if err != nil {
		t.Fatal(err)
	}

	var first ChunkedData
	if err := c.Call(context.Background(), ts.URL, "urn:test:Stream", &FetchRequest{}, &first); err != nil {
		t.Fatal(err)
	}
	folded, err := FetchAll(context.Background(), c, ts.URL, &first)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.NumRows() != folded.NumRows() {
		t.Fatalf("streamed %d rows, folded %d", streamed.NumRows(), folded.NumRows())
	}
	for i := range streamed.Rows {
		for j := range streamed.Rows[i] {
			if cmp, ok, _ := value.Compare(streamed.Rows[i][j], folded.Rows[i][j]); !ok || cmp != 0 {
				t.Fatalf("row %d col %d: streamed %v folded %v", i, j, streamed.Rows[i][j], folded.Rows[i][j])
			}
		}
	}
}
