package soap

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// stalledServer accepts the request and then never answers until the test
// ends — the wedged-SkyNode scenario a portal must survive.
func stalledServer(t *testing.T) *httptest.Server {
	t.Helper()
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	t.Cleanup(func() {
		close(release)
		ts.Close()
	})
	return ts
}

func TestCallTimesOutOnStalledServer(t *testing.T) {
	ts := stalledServer(t)
	c := &Client{Timeout: 50 * time.Millisecond}
	start := time.Now()
	err := c.Call(context.Background(), ts.URL, "urn:test:Echo", &echoRequest{Text: "x"}, &echoResponse{})
	if err == nil {
		t.Fatal("Call against a stalled server returned nil")
	}
	if !strings.Contains(err.Error(), "deadline") && !strings.Contains(err.Error(), "Timeout") {
		t.Errorf("error does not look like a deadline: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Call took %v; the 50ms deadline did not bound it", elapsed)
	}
}

func TestZeroValueClientHasDefaultDeadline(t *testing.T) {
	c := &Client{}
	hc := c.httpClient()
	if hc.Timeout != DefaultCallTimeout {
		t.Errorf("zero-value Client deadline = %v, want %v", hc.Timeout, DefaultCallTimeout)
	}
	// Negative disables; the cached client is rebuilt when the field moves.
	c.Timeout = -1
	if hc = c.httpClient(); hc.Timeout != 0 {
		t.Errorf("negative Timeout deadline = %v, want none", hc.Timeout)
	}
}

func TestExplicitHTTPClientWinsOverTimeout(t *testing.T) {
	own := &http.Client{Timeout: 7 * time.Second}
	c := &Client{HTTPClient: own, Timeout: time.Millisecond}
	if got := c.httpClient(); got != own {
		t.Error("Client did not use the caller-owned HTTPClient")
	}
}
