package soap

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/xml"
	"fmt"
	"io"
	"sync"
	"time"

	"skyquery/internal/dataset"
)

// This file implements the chunked transfer of large data sets: the
// workaround of §6 for XML parsers failing on ~10 MB messages. The callee
// splits its result with dataset.Split, returns the first chunk together
// with a continuation token, and the caller pulls the remaining chunks
// with Fetch calls until none remain.

// FetchAction is the SOAPAction under which servers using chunked
// responses serve continuation fetches.
const FetchAction = "urn:skyquery:Fetch"

// ChunkedData is one chunk of a large data set on the wire.
type ChunkedData struct {
	XMLName xml.Name `xml:"ChunkedData"`
	// Token identifies the transfer for follow-up Fetch calls; empty when
	// no chunks remain.
	Token string `xml:"token,attr,omitempty"`
	// Seq is the zero-based chunk number.
	Seq int `xml:"seq,attr"`
	// Remaining counts the chunks still waiting after this one.
	Remaining int `xml:"remaining,attr"`
	// Data is the chunk payload.
	Data *dataset.DataSet `xml:"DataSet"`
}

// chunkMagic opens a columnar-framed ChunkedData body: "SQCH".
const chunkMagic = 0x48435153

// maxChunkToken bounds the continuation-token length a decoder accepts.
const maxChunkToken = 1 << 10

// appendChunkHeader appends the fixed SQCH meta header (magic, token,
// seq, remaining) shared by buffered chunks and streamed bodies.
func appendChunkHeader(hdr []byte, token string, seq, remaining int) ([]byte, error) {
	if len(token) > maxChunkToken {
		return nil, fmt.Errorf("soap: chunk token of %d bytes too long", len(token))
	}
	hdr = binary.LittleEndian.AppendUint32(hdr, chunkMagic)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(token)))
	hdr = append(hdr, token...)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(seq))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(remaining))
	return hdr, nil
}

// readChunkHeader consumes the fixed SQCH meta header from r.
func readChunkHeader(r io.Reader) (token string, seq, remaining int, err error) {
	var fixed [8]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return "", 0, 0, fmt.Errorf("soap: chunk header: %w", err)
	}
	if binary.LittleEndian.Uint32(fixed[:]) != chunkMagic {
		return "", 0, 0, fmt.Errorf("soap: not a columnar chunk body (bad magic)")
	}
	tokenLen := binary.LittleEndian.Uint32(fixed[4:])
	if tokenLen > maxChunkToken {
		return "", 0, 0, fmt.Errorf("soap: chunk token of %d bytes too long", tokenLen)
	}
	buf := make([]byte, tokenLen+8)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", 0, 0, fmt.Errorf("soap: chunk header: %w", err)
	}
	token = string(buf[:tokenLen])
	seq = int(int32(binary.LittleEndian.Uint32(buf[tokenLen:])))
	remaining = int(int32(binary.LittleEndian.Uint32(buf[tokenLen+4:])))
	if seq < 0 || remaining < 0 {
		return "", 0, 0, fmt.Errorf("soap: chunk header has negative counters")
	}
	return token, seq, remaining, nil
}

// EncodeFrames implements BinaryPayload: a small fixed meta header
// (magic, token, seq, remaining) followed by the data set's columnar
// frame stream, whose CRC framing covers the bulk payload.
func (cd *ChunkedData) EncodeFrames(w io.Writer) error {
	if cd == nil || cd.Data == nil {
		return fmt.Errorf("soap: chunked response has no data set")
	}
	hdr, err := appendChunkHeader(nil, cd.Token, cd.Seq, cd.Remaining)
	if err != nil {
		return err
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	return cd.Data.EncodeColumnar(w, 0)
}

// DecodeFrames implements BinaryPayload, replacing the receiver.
func (cd *ChunkedData) DecodeFrames(r io.Reader) error {
	token, seq, remaining, err := readChunkHeader(r)
	if err != nil {
		return err
	}
	cd.Token, cd.Seq, cd.Remaining = token, seq, remaining
	d, err := dataset.DecodeColumnar(r)
	if err != nil {
		return err
	}
	cd.Data = d
	return nil
}

// FetchRequest asks for the next chunk of a pending transfer — or, with
// Release set, tells the server the caller will not finish draining it,
// so the parked tail can be dropped immediately instead of waiting for
// the TTL sweep.
type FetchRequest struct {
	XMLName xml.Name `xml:"Fetch"`
	Token   string   `xml:"token,attr"`
	Release bool     `xml:"release,attr,omitempty"`
}

// ReleaseResponse acknowledges a FetchRequest with Release set.
type ReleaseResponse struct {
	XMLName xml.Name `xml:"ReleaseResponse"`
}

// ChunkStore lifecycle defaults.
const (
	// DefaultChunkTTL is how long a parked transfer survives without a
	// fetch. A client that dies after the first chunk must not leak the
	// remainder forever; each successful fetch slides the deadline.
	DefaultChunkTTL = 2 * time.Minute

	// DefaultMaxPending caps concurrently parked transfers; beyond it the
	// oldest transfer is evicted to make room.
	DefaultMaxPending = 256
)

// ChunkStore holds the pending tail chunks of in-flight transfers on the
// server side. The zero value is ready to use with the lifecycle
// defaults above. Tokens are unguessable (128-bit random), so one client
// cannot fetch — and thereby destroy — another client's transfer.
type ChunkStore struct {
	// TTL overrides DefaultChunkTTL when positive.
	TTL time.Duration
	// MaxPending overrides DefaultMaxPending when positive.
	MaxPending int

	mu      sync.Mutex
	pending map[string]*transfer
	order   []string // tokens in creation order, for oldest-first eviction
	evicted int64
	now     func() time.Time // test hook; nil means time.Now
}

// transfer is the parked tail of one chunked response.
type transfer struct {
	chunks  []*dataset.DataSet
	nextSeq int
	expires time.Time
}

// randomToken returns an unguessable transfer token.
func randomToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; refusing to
		// chunk would be worse than a degraded token.
		panic("soap: crypto/rand unavailable: " + err.Error())
	}
	return "t-" + hex.EncodeToString(b[:])
}

func (cs *ChunkStore) clock() time.Time {
	if cs.now != nil {
		return cs.now()
	}
	return time.Now()
}

func (cs *ChunkStore) ttl() time.Duration {
	if cs.TTL > 0 {
		return cs.TTL
	}
	return DefaultChunkTTL
}

func (cs *ChunkStore) maxPending() int {
	if cs.MaxPending > 0 {
		return cs.MaxPending
	}
	return DefaultMaxPending
}

// sweepLocked drops expired transfers. Caller holds cs.mu.
func (cs *ChunkStore) sweepLocked(now time.Time) {
	if len(cs.pending) == 0 {
		cs.order = cs.order[:0]
		return
	}
	for token, tr := range cs.pending {
		if now.After(tr.expires) {
			delete(cs.pending, token)
			cs.evicted++
		}
	}
	if len(cs.order) > 2*cs.maxPending() {
		// Compact tokens of already-drained transfers out of the
		// eviction order so it cannot grow without bound.
		live := cs.order[:0]
		for _, token := range cs.order {
			if _, ok := cs.pending[token]; ok {
				live = append(live, token)
			}
		}
		cs.order = live
	}
}

// evictOldestLocked drops the oldest live transfer. Caller holds cs.mu.
func (cs *ChunkStore) evictOldestLocked() {
	for len(cs.order) > 0 {
		token := cs.order[0]
		cs.order = cs.order[1:]
		if _, ok := cs.pending[token]; ok {
			delete(cs.pending, token)
			cs.evicted++
			return
		}
	}
}

// Respond prepares a possibly chunked response for a data set: the
// returned ChunkedData is the first chunk; any remainder is parked in the
// store under the embedded token. maxRows <= 0 disables chunking.
func (cs *ChunkStore) Respond(d *dataset.DataSet, maxRows int) *ChunkedData {
	chunks := d.Split(maxRows)
	first := &ChunkedData{Seq: 0, Remaining: len(chunks) - 1, Data: chunks[0]}
	if len(chunks) > 1 {
		token := randomToken()
		cs.mu.Lock()
		now := cs.clock()
		cs.sweepLocked(now)
		if cs.pending == nil {
			cs.pending = map[string]*transfer{}
		}
		for len(cs.pending) >= cs.maxPending() {
			cs.evictOldestLocked()
		}
		cs.pending[token] = &transfer{chunks: chunks[1:], nextSeq: 1, expires: now.Add(cs.ttl())}
		cs.order = append(cs.order, token)
		cs.mu.Unlock()
		first.Token = token
	}
	return first
}

// Fetch pops the next chunk of a transfer and slides its TTL. The final
// chunk carries no token; fetching an unknown, expired, or exhausted
// token is an error.
func (cs *ChunkStore) Fetch(token string) (*ChunkedData, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	now := cs.clock()
	cs.sweepLocked(now)
	tr, ok := cs.pending[token]
	if !ok {
		return nil, fmt.Errorf("soap: unknown or exhausted transfer token %q", token)
	}
	out := &ChunkedData{Seq: tr.nextSeq, Remaining: len(tr.chunks) - 1, Data: tr.chunks[0]}
	if len(tr.chunks) == 1 {
		delete(cs.pending, token)
	} else {
		tr.chunks = tr.chunks[1:]
		tr.nextSeq++
		tr.expires = now.Add(cs.ttl())
		out.Token = token
	}
	return out, nil
}

// Release drops a transfer whose caller will not finish draining it.
// Unknown tokens are ignored: the transfer may already have expired.
func (cs *ChunkStore) Release(token string) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	delete(cs.pending, token)
}

// Pending returns the number of in-flight transfers (for tests and
// monitoring).
func (cs *ChunkStore) Pending() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.sweepLocked(cs.clock())
	return len(cs.pending)
}

// Evicted returns how many transfers were dropped by TTL expiry or
// max-pending pressure (not by normal draining or explicit Release).
func (cs *ChunkStore) Evicted() int64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.evicted
}

// FetchHandler returns the SOAP handler serving FetchAction for the store.
func (cs *ChunkStore) FetchHandler() Handler {
	return func(r *Request) (interface{}, error) {
		var req FetchRequest
		if err := r.Decode(&req); err != nil {
			return nil, err
		}
		if req.Release {
			cs.Release(req.Token)
			return &ReleaseResponse{}, nil
		}
		return cs.Fetch(req.Token)
	}
}

// Stash parks a data set in the store under n fresh tokens, each serving
// the complete set from chunk zero: the distribution mechanism of the
// scatter tier, where every shard of a step fetches its own copy of the
// step's incoming tuples. The chunk slices are shared across tokens
// (data sets are read-only once published), so the memory cost is one
// split regardless of fan-out. Each token follows the normal transfer
// lifecycle: drained to exhaustion, explicitly released, or TTL-swept.
func (cs *ChunkStore) Stash(d *dataset.DataSet, maxRows, n int) []string {
	chunks := d.Split(maxRows)
	tokens := make([]string, n)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	now := cs.clock()
	cs.sweepLocked(now)
	if cs.pending == nil {
		cs.pending = map[string]*transfer{}
	}
	for i := range tokens {
		for len(cs.pending) >= cs.maxPending() {
			cs.evictOldestLocked()
		}
		token := randomToken()
		cs.pending[token] = &transfer{chunks: chunks, nextSeq: 0, expires: now.Add(cs.ttl())}
		cs.order = append(cs.order, token)
		tokens[i] = token
	}
	return tokens
}

// FetchToken drains a stashed transfer from its first chunk: the callee
// side of Stash. The sequence is validated exactly as in FetchAll.
func FetchToken(ctx context.Context, c *Client, url, token string) (*dataset.DataSet, error) {
	var first ChunkedData
	if err := c.Call(ctx, url, FetchAction, &FetchRequest{Token: token}, &first); err != nil {
		return nil, fmt.Errorf("soap: fetch stashed transfer: %w", err)
	}
	return FetchAll(ctx, c, url, &first)
}

// chunkFollower validates the chunk sequence of one transfer as a caller
// drains it: Seq must advance by exactly one per chunk, the total chunk
// count is capped by the first chunk's Remaining, each chunk's Remaining
// must count down consistently, and the continuation token must be
// present exactly while chunks remain. A buggy or malicious server that
// re-sends a chunk, invents extra ones, or drops the tail produces a
// typed error instead of an infinite loop or silent truncation.
type chunkFollower struct {
	token  string
	expect int // Seq the next chunk must carry
	left   int // chunks still owed
}

// newChunkFollower validates the first chunk and starts a follower.
func newChunkFollower(first *ChunkedData) (*chunkFollower, error) {
	if first.Seq != 0 {
		return nil, fmt.Errorf("soap: first chunk has seq %d, want 0", first.Seq)
	}
	if err := checkChunkToken(first.Token, first.Remaining); err != nil {
		return nil, err
	}
	return &chunkFollower{token: first.Token, expect: 1, left: first.Remaining}, nil
}

// next validates one follow-up chunk and advances the follower.
func (f *chunkFollower) next(cd *ChunkedData) error {
	if cd.Data == nil {
		return fmt.Errorf("soap: fetch returned no data")
	}
	if f.left <= 0 {
		return fmt.Errorf("soap: transfer sent more chunks than the %d it announced", f.expect)
	}
	if cd.Seq != f.expect {
		return fmt.Errorf("soap: chunk seq %d out of order, want %d", cd.Seq, f.expect)
	}
	if cd.Remaining != f.left-1 {
		return fmt.Errorf("soap: chunk %d claims %d remaining, want %d", cd.Seq, cd.Remaining, f.left-1)
	}
	f.expect++
	f.left--
	if err := checkChunkToken(cd.Token, f.left); err != nil {
		return err
	}
	f.token = cd.Token
	return nil
}

// checkChunkToken requires a continuation token exactly while chunks
// remain.
func checkChunkToken(token string, left int) error {
	if left > 0 && token == "" {
		return fmt.Errorf("soap: transfer truncated: %d chunks still owed but no continuation token", left)
	}
	if left == 0 && token != "" {
		return fmt.Errorf("soap: continuation token on the final chunk")
	}
	return nil
}

// releaseTransfer tells url to drop a transfer the caller cannot finish
// draining. Best effort: the server's TTL sweep is the backstop. The
// release deliberately runs on a fresh context: it must go out even when
// the caller abandoned the transfer *because* its context was cancelled.
func releaseTransfer(c *Client, url, token string) {
	if token == "" {
		return
	}
	var ack ReleaseResponse
	_ = c.Call(context.Background(), url, FetchAction, &FetchRequest{Token: token, Release: true}, &ack)
}

// FetchAll drains a chunked response: given the first chunk, it pulls the
// remaining ones from url via the client and returns the joined data set.
// The chunk sequence is validated (monotonic Seq, chunk count capped by
// the first chunk's Remaining); on any mid-drain failure the transfer is
// released server-side.
func FetchAll(ctx context.Context, c *Client, url string, first *ChunkedData) (*dataset.DataSet, error) {
	if first == nil || first.Data == nil {
		return nil, fmt.Errorf("soap: empty chunked response")
	}
	follow, err := newChunkFollower(first)
	if err != nil {
		return nil, err
	}
	chunks := []*dataset.DataSet{first.Data}
	for follow.token != "" {
		var next ChunkedData
		if err := c.Call(ctx, url, FetchAction, &FetchRequest{Token: follow.token}, &next); err != nil {
			releaseTransfer(c, url, follow.token)
			return nil, fmt.Errorf("soap: fetch chunk: %w", err)
		}
		if err := follow.next(&next); err != nil {
			releaseTransfer(c, url, follow.token)
			return nil, err
		}
		chunks = append(chunks, next.Data)
	}
	return dataset.Join(chunks)
}
