package soap

import (
	"encoding/binary"
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"sync"

	"skyquery/internal/dataset"
)

// This file implements the chunked transfer of large data sets: the
// workaround of §6 for XML parsers failing on ~10 MB messages. The callee
// splits its result with dataset.Split, returns the first chunk together
// with a continuation token, and the caller pulls the remaining chunks
// with Fetch calls until none remain.

// FetchAction is the SOAPAction under which servers using chunked
// responses serve continuation fetches.
const FetchAction = "urn:skyquery:Fetch"

// ChunkedData is one chunk of a large data set on the wire.
type ChunkedData struct {
	XMLName xml.Name `xml:"ChunkedData"`
	// Token identifies the transfer for follow-up Fetch calls; empty when
	// no chunks remain.
	Token string `xml:"token,attr,omitempty"`
	// Seq is the zero-based chunk number.
	Seq int `xml:"seq,attr"`
	// Remaining counts the chunks still waiting after this one.
	Remaining int `xml:"remaining,attr"`
	// Data is the chunk payload.
	Data *dataset.DataSet `xml:"DataSet"`
}

// chunkMagic opens a columnar-framed ChunkedData body: "SQCH".
const chunkMagic = 0x48435153

// maxChunkToken bounds the continuation-token length a decoder accepts.
const maxChunkToken = 1 << 10

// EncodeFrames implements BinaryPayload: a small fixed meta header
// (magic, token, seq, remaining) followed by the data set's columnar
// frame stream, whose CRC framing covers the bulk payload.
func (cd *ChunkedData) EncodeFrames(w io.Writer) error {
	if cd == nil || cd.Data == nil {
		return fmt.Errorf("soap: chunked response has no data set")
	}
	if len(cd.Token) > maxChunkToken {
		return fmt.Errorf("soap: chunk token of %d bytes too long", len(cd.Token))
	}
	var hdr []byte
	hdr = binary.LittleEndian.AppendUint32(hdr, chunkMagic)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(cd.Token)))
	hdr = append(hdr, cd.Token...)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(cd.Seq))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(cd.Remaining))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	return cd.Data.EncodeColumnar(w, 0)
}

// DecodeFrames implements BinaryPayload, replacing the receiver.
func (cd *ChunkedData) DecodeFrames(r io.Reader) error {
	var fixed [8]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return fmt.Errorf("soap: chunk header: %w", err)
	}
	if binary.LittleEndian.Uint32(fixed[:]) != chunkMagic {
		return fmt.Errorf("soap: not a columnar chunk body (bad magic)")
	}
	tokenLen := binary.LittleEndian.Uint32(fixed[4:])
	if tokenLen > maxChunkToken {
		return fmt.Errorf("soap: chunk token of %d bytes too long", tokenLen)
	}
	buf := make([]byte, tokenLen+8)
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("soap: chunk header: %w", err)
	}
	cd.Token = string(buf[:tokenLen])
	cd.Seq = int(int32(binary.LittleEndian.Uint32(buf[tokenLen:])))
	cd.Remaining = int(int32(binary.LittleEndian.Uint32(buf[tokenLen+4:])))
	if cd.Seq < 0 || cd.Remaining < 0 {
		return fmt.Errorf("soap: chunk header has negative counters")
	}
	d, err := dataset.DecodeColumnar(r)
	if err != nil {
		return err
	}
	cd.Data = d
	return nil
}

// FetchRequest asks for the next chunk of a pending transfer.
type FetchRequest struct {
	XMLName xml.Name `xml:"Fetch"`
	Token   string   `xml:"token,attr"`
}

// ChunkStore holds the pending tail chunks of in-flight transfers on the
// server side. The zero value is ready to use.
type ChunkStore struct {
	mu      sync.Mutex
	seq     int64
	pending map[string][]*dataset.DataSet
	nextSeq map[string]int
}

// Respond prepares a possibly chunked response for a data set: the
// returned ChunkedData is the first chunk; any remainder is parked in the
// store under the embedded token. maxRows <= 0 disables chunking.
func (cs *ChunkStore) Respond(d *dataset.DataSet, maxRows int) *ChunkedData {
	chunks := d.Split(maxRows)
	first := &ChunkedData{Seq: 0, Remaining: len(chunks) - 1, Data: chunks[0]}
	if len(chunks) > 1 {
		cs.mu.Lock()
		cs.seq++
		token := "xfer-" + strconv.FormatInt(cs.seq, 10)
		if cs.pending == nil {
			cs.pending = map[string][]*dataset.DataSet{}
			cs.nextSeq = map[string]int{}
		}
		cs.pending[token] = chunks[1:]
		cs.nextSeq[token] = 1
		cs.mu.Unlock()
		first.Token = token
	}
	return first
}

// Fetch pops the next chunk of a transfer. The final chunk carries no
// token; fetching an unknown token is an error.
func (cs *ChunkStore) Fetch(token string) (*ChunkedData, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	chunks, ok := cs.pending[token]
	if !ok {
		return nil, fmt.Errorf("soap: unknown or exhausted transfer token %q", token)
	}
	out := &ChunkedData{Seq: cs.nextSeq[token], Remaining: len(chunks) - 1, Data: chunks[0]}
	if len(chunks) == 1 {
		delete(cs.pending, token)
		delete(cs.nextSeq, token)
	} else {
		cs.pending[token] = chunks[1:]
		cs.nextSeq[token]++
		out.Token = token
	}
	return out, nil
}

// Pending returns the number of in-flight transfers (for tests and
// monitoring).
func (cs *ChunkStore) Pending() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.pending)
}

// FetchHandler returns the SOAP handler serving FetchAction for the store.
func (cs *ChunkStore) FetchHandler() Handler {
	return func(r *Request) (interface{}, error) {
		var req FetchRequest
		if err := r.Decode(&req); err != nil {
			return nil, err
		}
		return cs.Fetch(req.Token)
	}
}

// FetchAll drains a chunked response: given the first chunk, it pulls the
// remaining ones from url via the client and returns the joined data set.
func FetchAll(c *Client, url string, first *ChunkedData) (*dataset.DataSet, error) {
	if first == nil || first.Data == nil {
		return nil, fmt.Errorf("soap: empty chunked response")
	}
	chunks := []*dataset.DataSet{first.Data}
	token := first.Token
	for token != "" {
		var next ChunkedData
		if err := c.Call(url, FetchAction, &FetchRequest{Token: token}, &next); err != nil {
			return nil, fmt.Errorf("soap: fetch chunk: %w", err)
		}
		if next.Data == nil {
			return nil, fmt.Errorf("soap: fetch returned no data")
		}
		chunks = append(chunks, next.Data)
		token = next.Token
	}
	return dataset.Join(chunks)
}
