package soap

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"skyquery/internal/dataset"
	"skyquery/internal/value"
)

type echoRequest struct {
	XMLName xml.Name `xml:"Echo"`
	Text    string   `xml:"text"`
	N       int      `xml:"n"`
}

type echoResponse struct {
	XMLName xml.Name `xml:"EchoResponse"`
	Text    string   `xml:"text"`
	N       int      `xml:"n"`
}

func newEchoServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer()
	s.Handle("urn:test:Echo", func(r *Request) (interface{}, error) {
		var req echoRequest
		if err := r.Decode(&req); err != nil {
			return nil, err
		}
		return &echoResponse{Text: req.Text, N: req.N * 2}, nil
	})
	s.Handle("urn:test:Fail", func(r *Request) (interface{}, error) {
		return nil, errors.New("deliberate failure")
	})
	s.Handle("urn:test:CustomFault", func(r *Request) (interface{}, error) {
		return nil, &Fault{Code: "soap:Client", String: "you did it wrong"}
	})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func TestCallRoundTrip(t *testing.T) {
	_, ts := newEchoServer(t)
	c := &Client{}
	var resp echoResponse
	err := c.Call(context.Background(), ts.URL, "urn:test:Echo", &echoRequest{Text: "hello <xml> & stuff", N: 21}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != "hello <xml> & stuff" || resp.N != 42 {
		t.Errorf("resp = %+v", resp)
	}
}

func TestServerFaultFromError(t *testing.T) {
	_, ts := newEchoServer(t)
	c := &Client{}
	err := c.Call(context.Background(), ts.URL, "urn:test:Fail", &echoRequest{}, nil)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want *Fault, got %T: %v", err, err)
	}
	if f.Code != "soap:Server" || !strings.Contains(f.String, "deliberate failure") {
		t.Errorf("fault = %+v", f)
	}
}

func TestServerCustomFault(t *testing.T) {
	_, ts := newEchoServer(t)
	c := &Client{}
	err := c.Call(context.Background(), ts.URL, "urn:test:CustomFault", &echoRequest{}, nil)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want *Fault, got %T", err)
	}
	if f.Code != "soap:Client" || f.String != "you did it wrong" {
		t.Errorf("fault = %+v", f)
	}
}

func TestUnknownAction(t *testing.T) {
	_, ts := newEchoServer(t)
	c := &Client{}
	err := c.Call(context.Background(), ts.URL, "urn:test:Nope", &echoRequest{}, nil)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want *Fault, got %T: %v", err, err)
	}
	if !strings.Contains(f.String, "unknown SOAPAction") {
		t.Errorf("fault = %+v", f)
	}
}

func TestSOAPActionQuoting(t *testing.T) {
	// SOAPAction values arrive quoted per SOAP 1.1; the server must strip
	// the quotes (the client adds them).
	_, ts := newEchoServer(t)
	body, err := Marshal(&echoRequest{Text: "x", N: 1})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL, strings.NewReader(string(body)))
	req.Header.Set("SOAPAction", `"urn:test:Echo"`)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestGETNotAllowed(t *testing.T) {
	_, ts := newEchoServer(t)
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", resp.StatusCode)
	}
}

func TestWSDLServed(t *testing.T) {
	s, _ := newEchoServer(t)
	s.WSDL = "<definitions>test</definitions>"
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "?wsdl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 1024)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !strings.Contains(sb.String(), "<definitions>") {
		t.Errorf("wsdl body = %q", sb.String())
	}
}

func TestRequestTooLarge(t *testing.T) {
	s := NewServer()
	s.MessageLimit = 512
	s.Handle("urn:test:Echo", func(r *Request) (interface{}, error) { return nil, nil })
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := &Client{MessageLimit: -1}
	big := strings.Repeat("x", 2048)
	err := c.Call(context.Background(), ts.URL, "urn:test:Echo", &echoRequest{Text: big}, nil)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want fault, got %T: %v", err, err)
	}
	if f.Detail != "MessageTooLarge" {
		t.Errorf("fault detail = %q, want MessageTooLarge", f.Detail)
	}
}

func TestClientRefusesOversizedRequest(t *testing.T) {
	c := &Client{MessageLimit: 128}
	err := c.Call(context.Background(), "http://unused.invalid", "urn:test:Echo",
		&echoRequest{Text: strings.Repeat("y", 1024)}, nil)
	var tooBig *ErrMessageTooLarge
	if !errors.As(err, &tooBig) {
		t.Fatalf("want ErrMessageTooLarge, got %T: %v", err, err)
	}
}

func TestClientResponseLimit(t *testing.T) {
	s := NewServer()
	s.Handle("urn:test:Big", func(r *Request) (interface{}, error) {
		return &echoResponse{Text: strings.Repeat("z", 4096)}, nil
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := &Client{MessageLimit: 256}
	err := c.Call(context.Background(), ts.URL, "urn:test:Big", &echoRequest{}, &echoResponse{})
	var tooBig *ErrMessageTooLarge
	if !errors.As(err, &tooBig) {
		t.Fatalf("want ErrMessageTooLarge, got %T: %v", err, err)
	}
	if tooBig.Limit != 256 {
		t.Errorf("limit = %d", tooBig.Limit)
	}
}

func TestGoAsync(t *testing.T) {
	_, ts := newEchoServer(t)
	c := &Client{}
	resps := make([]echoResponse, 5)
	chans := make([]<-chan error, 5)
	for i := range chans {
		chans[i] = c.Go(context.Background(), ts.URL, "urn:test:Echo", &echoRequest{N: i}, &resps[i])
	}
	for i, ch := range chans {
		if err := <-ch; err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if resps[i].N != i*2 {
			t.Errorf("resp[%d].N = %d", i, resps[i].N)
		}
	}
}

func TestMarshalUnmarshalEnvelope(t *testing.T) {
	data, err := Marshal(&echoRequest{Text: "abc", N: 7})
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{"soap:Envelope", "soap:Body", "<Echo>", "<text>abc</text>"} {
		if !strings.Contains(s, want) {
			t.Errorf("envelope missing %q:\n%s", want, s)
		}
	}
	var req echoRequest
	if err := Unmarshal(data, &req); err != nil {
		t.Fatal(err)
	}
	if req.Text != "abc" || req.N != 7 {
		t.Errorf("req = %+v", req)
	}
}

func TestUnmarshalFault(t *testing.T) {
	data, err := Marshal(&Fault{Code: "soap:Server", String: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	err = Unmarshal(data, &echoResponse{})
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want fault, got %v", err)
	}
	if f.String != "boom" {
		t.Errorf("fault = %+v", f)
	}
}

func TestUnmarshalBadXML(t *testing.T) {
	if err := Unmarshal([]byte("<not-an-envelope"), nil); err == nil {
		t.Error("expected error")
	}
}

func TestUnmarshalNilOut(t *testing.T) {
	data, _ := Marshal(&echoRequest{})
	if err := Unmarshal(data, nil); err != nil {
		t.Errorf("nil out should be accepted: %v", err)
	}
}

func sampleDataSet(n int) *dataset.DataSet {
	d := dataset.New(
		dataset.Column{Name: "id", Type: value.IntType},
		dataset.Column{Name: "ra", Type: value.FloatType},
	)
	for i := 0; i < n; i++ {
		d.Append([]value.Value{value.Int(int64(i)), value.Float(float64(i) / 7)})
	}
	return d
}

func TestChunkStoreRespondSingle(t *testing.T) {
	var cs ChunkStore
	d := sampleDataSet(10)
	first := cs.Respond(d, 100)
	if first.Token != "" || first.Remaining != 0 {
		t.Errorf("small set should not chunk: %+v", first)
	}
	if cs.Pending() != 0 {
		t.Error("nothing should be pending")
	}
}

func TestChunkStoreRespondFetch(t *testing.T) {
	var cs ChunkStore
	d := sampleDataSet(25)
	first := cs.Respond(d, 10)
	if first.Token == "" || first.Remaining != 2 {
		t.Fatalf("first = %+v", first)
	}
	if cs.Pending() != 1 {
		t.Error("one transfer should be pending")
	}
	second, err := cs.Fetch(first.Token)
	if err != nil {
		t.Fatal(err)
	}
	if second.Seq != 1 || second.Remaining != 1 || second.Token == "" {
		t.Errorf("second = %+v", second)
	}
	third, err := cs.Fetch(second.Token)
	if err != nil {
		t.Fatal(err)
	}
	if third.Token != "" || third.Remaining != 0 {
		t.Errorf("third = %+v", third)
	}
	if cs.Pending() != 0 {
		t.Error("transfer should be drained")
	}
	if _, err := cs.Fetch(first.Token); err == nil {
		t.Error("fetching a drained token should fail")
	}
}

func TestChunkedTransferOverHTTP(t *testing.T) {
	// End-to-end: a response that would exceed the message limit goes
	// through when chunked, and the client reassembles it exactly.
	var cs ChunkStore
	s := NewServer()
	s.MessageLimit = 64 << 10
	const rows = 20000
	s.Handle("urn:test:BigQuery", func(r *Request) (interface{}, error) {
		return cs.Respond(sampleDataSet(rows), 500), nil
	})
	s.Handle(FetchAction, cs.FetchHandler())
	ts := httptest.NewServer(s)
	defer ts.Close()

	c := &Client{MessageLimit: 64 << 10}
	var first ChunkedData
	if err := c.Call(context.Background(), ts.URL, "urn:test:BigQuery", &FetchRequest{}, &first); err != nil {
		t.Fatal(err)
	}
	got, err := FetchAll(context.Background(), c, ts.URL, &first)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != rows {
		t.Errorf("reassembled rows = %d, want %d", got.NumRows(), rows)
	}
	for i := 0; i < rows; i += 997 {
		if got.Rows[i][0].AsInt() != int64(i) {
			t.Fatalf("row %d corrupted: %v", i, got.Rows[i])
		}
	}
}

func TestMonolithicFailsWhereChunkedSucceeds(t *testing.T) {
	// The C2 experiment in miniature: same payload, same limit; the
	// monolithic response dies with MessageTooLarge, the chunked one works.
	const limit = 32 << 10
	var cs ChunkStore
	s := NewServer()
	s.MessageLimit = limit
	s.Handle("urn:test:Mono", func(r *Request) (interface{}, error) {
		return cs.Respond(sampleDataSet(5000), 0), nil // no chunking
	})
	s.Handle("urn:test:Chunked", func(r *Request) (interface{}, error) {
		return cs.Respond(sampleDataSet(5000), 500), nil
	})
	s.Handle(FetchAction, cs.FetchHandler())
	ts := httptest.NewServer(s)
	defer ts.Close()

	c := &Client{MessageLimit: limit}
	var first ChunkedData
	err := c.Call(context.Background(), ts.URL, "urn:test:Mono", &FetchRequest{}, &first)
	var tooBig *ErrMessageTooLarge
	if !errors.As(err, &tooBig) {
		t.Fatalf("monolithic should exceed the limit, got %v", err)
	}

	if err := c.Call(context.Background(), ts.URL, "urn:test:Chunked", &FetchRequest{}, &first); err != nil {
		t.Fatalf("chunked first call: %v", err)
	}
	got, err := FetchAll(context.Background(), c, ts.URL, &first)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 5000 {
		t.Errorf("rows = %d", got.NumRows())
	}
}

func TestFetchAllErrors(t *testing.T) {
	if _, err := FetchAll(context.Background(), &Client{}, "http://unused.invalid", nil); err == nil {
		t.Error("nil first chunk should fail")
	}
	if _, err := FetchAll(context.Background(), &Client{}, "http://unused.invalid", &ChunkedData{}); err == nil {
		t.Error("chunk without data should fail")
	}
}

func TestErrMessageTooLargeString(t *testing.T) {
	e := &ErrMessageTooLarge{Size: 100, Limit: 10}
	if !strings.Contains(e.Error(), "100") || !strings.Contains(e.Error(), "10") {
		t.Errorf("error = %q", e.Error())
	}
}

func TestActions(t *testing.T) {
	s, _ := newEchoServer(t)
	got := s.Actions()
	if len(got) != 3 {
		t.Errorf("Actions = %v", got)
	}
}

func TestHandlerPanicsAreNotSwallowed(t *testing.T) {
	// Document the behavior: a panicking handler propagates to the HTTP
	// layer (net/http recovers per-connection). This test just ensures the
	// server keeps serving afterwards.
	s := NewServer()
	s.Handle("urn:test:Panic", func(r *Request) (interface{}, error) { panic("boom") })
	s.Handle("urn:test:OK", func(r *Request) (interface{}, error) { return &echoResponse{N: 1}, nil })
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := &Client{}
	_ = c.Call(context.Background(), ts.URL, "urn:test:Panic", &echoRequest{}, nil) // error of some kind
	var resp echoResponse
	if err := c.Call(context.Background(), ts.URL, "urn:test:OK", &echoRequest{}, &resp); err != nil {
		t.Fatalf("server dead after panic: %v", err)
	}
}

var _ fmt.Stringer // keep fmt imported for future use
