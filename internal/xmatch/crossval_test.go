package xmatch

// Cross-validation of the two chi-square forms the package ships: the
// incrementally maintained Chi2 (Welford-style, what production reads) and
// the paper's closed form Chi2Constrained = 2(a − |a⃗|). Mathematically
// they differ by O(χ²·d²) with d the angular spread in radians — far below
// one part in 10⁶ for arcsecond-scale tuples. Numerically they part ways:
// the closed form subtracts two accumulator-sized quantities (a ~ Σ1/σ²),
// so its absolute error is ~ulp(a) ≈ a·2⁻⁵², which at survey-grade errors
// (σ ≲ 0.1″, a ≳ 10¹³) swamps a χ² of order 10. These tests pin down both
// regimes against a 200-bit big.Float evaluation of the closed form.

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"skyquery/internal/sphere"
)

// chi2Reference evaluates the free (unconstrained) minimum that Chi2
// maintains incrementally — Σwᵢ|rᵢ|² − |a⃗|²/a — in 200-bit precision from
// the exact float64 observations, so cancellation cannot occur. Note this
// keeps the true |rᵢ|² of the inputs: FromRaDec vectors are unit only to
// within rounding, and at survey weights (wᵢ ~ 10¹³) even that ~2⁻⁵³
// shortfall contributes measurably, which is precisely the digit range the
// float64 closed form loses.
func chi2Reference(obs []sphere.Vec, sigmas []float64) float64 {
	const prec = 200
	a := new(big.Float).SetPrec(prec)
	sumR2 := new(big.Float).SetPrec(prec)
	vx := new(big.Float).SetPrec(prec)
	vy := new(big.Float).SetPrec(prec)
	vz := new(big.Float).SetPrec(prec)
	for i, p := range obs {
		w := new(big.Float).SetPrec(prec).SetFloat64(SigmaWeight(sigmas[i]))
		a.Add(a, w)
		for j, c := range []float64{p.X, p.Y, p.Z} {
			bc := new(big.Float).SetPrec(prec).SetFloat64(c)
			sumR2.Add(sumR2, new(big.Float).SetPrec(prec).Mul(w, new(big.Float).SetPrec(prec).Mul(bc, bc)))
			v := []*big.Float{vx, vy, vz}[j]
			v.Add(v, new(big.Float).SetPrec(prec).Mul(w, bc))
		}
	}
	norm2 := new(big.Float).SetPrec(prec)
	for _, c := range []*big.Float{vx, vy, vz} {
		norm2.Add(norm2, new(big.Float).SetPrec(prec).Mul(c, c))
	}
	chi2 := new(big.Float).SetPrec(prec).Quo(norm2, a)
	chi2.Sub(sumR2, chi2)
	out, _ := chi2.Float64()
	return out
}

// randomTuple scatters n observations a few sigma around a random sky
// position, the geometry of a plausible cross-match tuple.
func randomTuple(rng *rand.Rand, n int, sigmaLo, sigmaHi float64) ([]sphere.Vec, []float64) {
	baseRA := rng.Float64() * 360
	baseDec := rng.Float64()*120 - 60
	obs := make([]sphere.Vec, n)
	sigmas := make([]float64, n)
	for i := range obs {
		sigmas[i] = sigmaLo + rng.Float64()*(sigmaHi-sigmaLo)
		// Offsets up to ±3σ in each coordinate keep χ² of order n.
		dRA := sphere.Arcsec((rng.Float64()*6 - 3) * sigmas[i])
		dDec := sphere.Arcsec((rng.Float64()*6 - 3) * sigmas[i])
		obs[i] = sphere.FromRaDec(baseRA+dRA, baseDec+dDec)
	}
	return obs, sigmas
}

func fold(obs []sphere.Vec, sigmas []float64) Accumulator {
	acc := Accumulator{}
	for i, p := range obs {
		acc = acc.Add(p, sigmas[i])
	}
	return acc
}

// TestChi2CrossValidationBenignRegime: with σ in [20″, 120″] the weights
// stay small enough (a ≲ 10⁸) that ulp(a) cancellation is below 10⁻⁸ of a
// typical χ², so incremental and closed form must agree to one part in
// 10⁶ — on randomized tuples with arcsecond-scale (and larger) offsets.
func TestChi2CrossValidationBenignRegime(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(5)
		obs, sigmas := randomTuple(rng, n, 20, 120)
		acc := fold(obs, sigmas)
		closed := acc.Chi2Constrained()
		if rel := math.Abs(acc.Chi2-closed) / math.Max(closed, 1e-3); rel > 1e-6 {
			t.Fatalf("trial %d (n=%d): incremental %.12g vs constrained %.12g, rel %.3g > 1e-6",
				trial, n, acc.Chi2, closed, rel)
		}
	}
}

// TestChi2CancellationRegime documents why production reads Chi2: at
// survey-grade σ = 0.05–0.2″ the incremental form still tracks the exact
// (200-bit) value of its minimum to one part in 10⁶, while the float64
// closed form has visibly lost digits — both to the a − |a⃗| subtraction
// and to the unit-norm rounding of the input vectors, each of which is
// ulp(a)-sized and a ~ 10¹³ here.
func TestChi2CancellationRegime(t *testing.T) {
	rng := rand.New(rand.NewSource(1729))
	var maxIncRel, maxClosedRel float64
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(5)
		obs, sigmas := randomTuple(rng, n, 0.05, 0.2)
		acc := fold(obs, sigmas)
		exact := chi2Reference(obs, sigmas)
		if exact <= 0 {
			t.Fatalf("trial %d: non-positive reference chi2 %g", trial, exact)
		}
		incRel := math.Abs(acc.Chi2-exact) / exact
		closedRel := math.Abs(acc.Chi2Constrained()-exact) / exact
		maxIncRel = math.Max(maxIncRel, incRel)
		maxClosedRel = math.Max(maxClosedRel, closedRel)
		if incRel > 1e-6 {
			t.Fatalf("trial %d (n=%d): incremental chi2 %.12g vs exact %.12g, rel %.3g > 1e-6",
				trial, n, acc.Chi2, exact, incRel)
		}
	}
	t.Logf("max relative error vs 200-bit reference: incremental %.3g, closed form %.3g",
		maxIncRel, maxClosedRel)
	// The closed form must be measurably worse here, or the package
	// comment's justification for the incremental form is stale.
	if maxClosedRel < 10*maxIncRel {
		t.Errorf("closed form rel error %.3g not clearly worse than incremental %.3g; cancellation claim stale?",
			maxClosedRel, maxIncRel)
	}
}
