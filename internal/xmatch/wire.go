package xmatch

import (
	"fmt"

	"skyquery/internal/dataset"
	"skyquery/internal/sphere"
	"skyquery/internal/value"
)

// This file defines the wire form of partial cross-match tuples: every
// data set shipped along the daisy chain starts with the accumulator
// columns (the paper's cumulative values a, ax, ay, az plus the running
// chi-square and observation count), followed by the carried
// "alias.column" payload columns.

// Accumulator column names.
const (
	ColA    = "_a"
	ColVx   = "_vx"
	ColVy   = "_vy"
	ColVz   = "_vz"
	ColChi2 = "_chi2"
	ColN    = "_n"
)

// NumAccCols is the number of accumulator columns at the front of every
// partial-tuple data set.
const NumAccCols = 6

// AccColumns returns the accumulator column definitions in wire order.
func AccColumns() []dataset.Column {
	return []dataset.Column{
		{Name: ColA, Type: value.FloatType},
		{Name: ColVx, Type: value.FloatType},
		{Name: ColVy, Type: value.FloatType},
		{Name: ColVz, Type: value.FloatType},
		{Name: ColChi2, Type: value.FloatType},
		{Name: ColN, Type: value.IntType},
	}
}

// AccToCells renders an accumulator into its wire cells.
func AccToCells(acc Accumulator) []value.Value {
	return []value.Value{
		value.Float(acc.A),
		value.Float(acc.V.X),
		value.Float(acc.V.Y),
		value.Float(acc.V.Z),
		value.Float(acc.Chi2),
		value.Int(int64(acc.N)),
	}
}

// CellsToAcc parses the accumulator from the first NumAccCols cells of a
// tuple row.
func CellsToAcc(row []value.Value) (Accumulator, error) {
	if len(row) < NumAccCols {
		return Accumulator{}, fmt.Errorf("xmatch: tuple row has %d cells, need at least %d", len(row), NumAccCols)
	}
	var f [5]float64
	for i := 0; i < 5; i++ {
		v, ok := row[i].AsFloat()
		if !ok {
			return Accumulator{}, fmt.Errorf("xmatch: accumulator cell %d is %v, want number", i, row[i].Type())
		}
		f[i] = v
	}
	if row[5].Type() != value.IntType {
		return Accumulator{}, fmt.Errorf("xmatch: accumulator count cell is %v, want INT", row[5].Type())
	}
	return Accumulator{
		A:    f[0],
		V:    sphere.Vec{X: f[1], Y: f[2], Z: f[3]},
		Chi2: f[4],
		N:    int(row[5].AsInt()),
	}, nil
}
