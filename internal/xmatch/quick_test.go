package xmatch

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"skyquery/internal/sphere"
)

// obsCluster is a quick-generable cluster of 2-5 observations scattered
// within a few arc seconds of a random point, with survey-like sigmas.
type obsCluster struct {
	Obs []struct {
		Pos   sphere.Vec
		Sigma float64
	}
}

// Generate implements quick.Generator.
func (obsCluster) Generate(rng *rand.Rand, size int) reflect.Value {
	c := obsCluster{}
	ra := rng.Float64() * 360
	dec := rng.Float64()*160 - 80
	base := sphere.FromRaDec(ra, dec)
	n := 2 + rng.Intn(4)
	for i := 0; i < n; i++ {
		dra := sphere.Arcsec((rng.Float64() - 0.5) * 4)
		ddec := sphere.Arcsec((rng.Float64() - 0.5) * 4)
		_ = base
		c.Obs = append(c.Obs, struct {
			Pos   sphere.Vec
			Sigma float64
		}{
			Pos:   sphere.FromRaDec(ra+dra, dec+ddec),
			Sigma: 0.05 + rng.Float64(),
		})
	}
	return reflect.ValueOf(c)
}

// TestQuickFoldOrderIndependence checks §5.4's symmetry claim on random
// clusters: any fold order yields the same chi-square, weight sum, and
// best position.
func TestQuickFoldOrderIndependence(t *testing.T) {
	f := func(c obsCluster, seed int64) bool {
		fold := func(perm []int) Accumulator {
			acc := Accumulator{}
			for _, i := range perm {
				acc = acc.Add(c.Obs[i].Pos, c.Obs[i].Sigma)
			}
			return acc
		}
		base := make([]int, len(c.Obs))
		for i := range base {
			base[i] = i
		}
		ref := fold(base)
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(len(c.Obs))
		got := fold(perm)
		return math.Abs(got.Chi2-ref.Chi2) <= 1e-9*(1+ref.Chi2) &&
			math.Abs(got.A-ref.A) <= 1e-9*ref.A &&
			got.Best().Sep(ref.Best()) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickChi2Monotone checks that adding observations never decreases
// the chi-square (the pruning assumption of the chain and BruteForce).
func TestQuickChi2Monotone(t *testing.T) {
	f := func(c obsCluster) bool {
		acc := Accumulator{}
		prev := 0.0
		for _, o := range c.Obs {
			acc = acc.Add(o.Pos, o.Sigma)
			if acc.Chi2 < prev-1e-12 {
				return false
			}
			prev = acc.Chi2
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickSearchRadiusSound checks the exact search-radius bound: an
// observation beyond the radius can never match; one comfortably inside
// always can.
func TestQuickSearchRadiusSound(t *testing.T) {
	f := func(c obsCluster, tRaw uint8) bool {
		threshold := 1 + float64(tRaw%5)
		acc := Accumulator{}
		for _, o := range c.Obs {
			acc = acc.Add(o.Pos, o.Sigma)
		}
		if !acc.Matches(threshold) {
			return true // exhausted tuples are excluded by the caller
		}
		sigma := 0.2
		r := acc.SearchRadius(threshold, sigma)
		bra, bdec := acc.Best().RaDec()
		if r < 179 {
			outside := sphere.FromRaDec(bra, clampDec(bdec+1.05*r))
			if acc.Add(outside, sigma).Matches(threshold) {
				return false
			}
		}
		inside := sphere.FromRaDec(bra, clampDec(bdec+0.5*r))
		return acc.Add(inside, sigma).Matches(threshold)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func clampDec(d float64) float64 {
	if d > 89.9 {
		return 89.9
	}
	if d < -89.9 {
		return -89.9
	}
	return d
}

// TestQuickWireRoundTrip checks AccToCells/CellsToAcc identity.
func TestQuickWireRoundTrip(t *testing.T) {
	f := func(c obsCluster) bool {
		acc := Accumulator{}
		for _, o := range c.Obs {
			acc = acc.Add(o.Pos, o.Sigma)
		}
		got, err := CellsToAcc(AccToCells(acc))
		if err != nil {
			return false
		}
		return got == acc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
