package xmatch

import (
	"math"
	"math/rand"
	"testing"

	"skyquery/internal/sphere"
)

const (
	sigmaSDSS  = 0.1 // arcsec, typical optical survey
	sigma2MASS = 0.2
	sigmaFIRST = 0.5 // radio survey, coarser
)

func TestSigmaWeight(t *testing.T) {
	w := SigmaWeight(1)
	s := 1.0 / 3600 * math.Pi / 180
	want := 1 / (s * s)
	if math.Abs(w-want)/want > 1e-12 {
		t.Errorf("SigmaWeight(1) = %g, want %g", w, want)
	}
}

func TestPerfectCoincidence(t *testing.T) {
	p := sphere.FromRaDec(185, -0.5)
	acc := Accumulator{}.Add(p, sigmaSDSS).Add(p, sigma2MASS).Add(p, sigmaFIRST)
	if acc.N != 3 {
		t.Errorf("N = %d", acc.N)
	}
	if acc.Chi2 > 1e-15 {
		t.Errorf("chi2 of identical observations = %g, want ~0", acc.Chi2)
	}
	if ll := acc.LogLikelihood(); ll < -1e-15 {
		t.Errorf("log likelihood = %g, want ~0", ll)
	}
	if !acc.Matches(0.001) {
		t.Error("identical observations must match any positive threshold")
	}
	best := acc.Best()
	if best.Sep(p) > 1e-12 {
		t.Errorf("best position off by %g deg", best.Sep(p))
	}
}

func TestTwoArchiveClassicRule(t *testing.T) {
	// For two observations χ² = d²/(σ₁²+σ₂²); the match condition
	// χ² ≤ t² is d ≤ t·sqrt(σ₁²+σ₂²).
	const tThresh = 3.5
	limit := PairRadius(tThresh, sigmaSDSS, sigma2MASS) // degrees
	base := sphere.FromRaDec(185, -0.5)
	for _, frac := range []float64{0.1, 0.5, 0.9, 0.99} {
		sep := limit * frac
		p2 := sphere.FromRaDec(185, -0.5+sep)
		acc := Accumulator{}.Add(base, sigmaSDSS).Add(p2, sigma2MASS)
		if !acc.Matches(tThresh) {
			t.Errorf("separation %.3g×limit should match", frac)
		}
	}
	for _, frac := range []float64{1.01, 1.5, 10} {
		sep := limit * frac
		p2 := sphere.FromRaDec(185, -0.5+sep)
		acc := Accumulator{}.Add(base, sigmaSDSS).Add(p2, sigma2MASS)
		if acc.Matches(tThresh) {
			t.Errorf("separation %.3g×limit should not match", frac)
		}
	}
}

func TestChi2TwoPointClosedForm(t *testing.T) {
	// χ² for two points must equal d²/(σ₁²+σ₂²) with d the chord distance.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		sepArcsec := rng.Float64() * 2
		p1 := sphere.FromRaDec(10, 20)
		p2 := sphere.FromRaDec(10, 20+sphere.Arcsec(sepArcsec))
		s1 := 0.05 + rng.Float64()
		s2 := 0.05 + rng.Float64()
		acc := Accumulator{}.Add(p1, s1).Add(p2, s2)
		dRad := p1.Sub(p2).Norm()
		s1r := sphere.Arcsec(s1) * sphere.RadPerDeg
		s2r := sphere.Arcsec(s2) * sphere.RadPerDeg
		want := dRad * dRad / (s1r*s1r + s2r*s2r)
		if math.Abs(acc.Chi2-want) > 1e-9*want+1e-18 {
			t.Fatalf("chi2 = %g, want %g (sep %g arcsec)", acc.Chi2, want, sepArcsec)
		}
	}
}

func TestOrderIndependence(t *testing.T) {
	// §5.4: "This XMATCH scheme is fully symmetric; the particular order
	// of the archives considered doesn't matter."
	obs := []struct {
		ra, dec, sigma float64
	}{
		{185.0, -0.5, sigmaSDSS},
		{185.0 + sphere.Arcsec(0.15), -0.5, sigma2MASS},
		{185.0, -0.5 + sphere.Arcsec(0.3), sigmaFIRST},
		{185.0 - sphere.Arcsec(0.1), -0.5 - sphere.Arcsec(0.2), 0.3},
	}
	perms := [][]int{
		{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1},
	}
	var ref Accumulator
	for pi, perm := range perms {
		acc := Accumulator{}
		for _, i := range perm {
			acc = acc.Add(sphere.FromRaDec(obs[i].ra, obs[i].dec), obs[i].sigma)
		}
		if pi == 0 {
			ref = acc
			continue
		}
		if math.Abs(acc.Chi2-ref.Chi2) > 1e-9*(1+ref.Chi2) {
			t.Errorf("perm %v: chi2 = %.15g, want %.15g", perm, acc.Chi2, ref.Chi2)
		}
		if math.Abs(acc.A-ref.A) > 1e-6*ref.A {
			t.Errorf("perm %v: A differs", perm)
		}
		if acc.Best().Sep(ref.Best()) > 1e-9 {
			t.Errorf("perm %v: best position differs", perm)
		}
	}
}

func TestIncrementalMatchesConstrainedForm(t *testing.T) {
	// For moderate errors (≥ ~5 arcsec) the closed-form 2(a−|a⃗|) is still
	// numerically alive; the incremental chi2 must agree with it.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		acc := Accumulator{}
		base := sphere.FromRaDec(rng.Float64()*360, rng.Float64()*120-60)
		for k := 0; k < 4; k++ {
			off := sphere.Arcsec((rng.Float64() - 0.5) * 30)
			ra, dec := base.RaDec()
			p := sphere.FromRaDec(ra+off, dec+sphere.Arcsec((rng.Float64()-0.5)*30))
			acc = acc.Add(p, 5+5*rng.Float64())
		}
		closed := acc.Chi2Constrained()
		if math.Abs(acc.Chi2-closed) > 1e-6*(1+closed) {
			t.Fatalf("incremental %g vs constrained %g", acc.Chi2, closed)
		}
	}
}

func TestBestPositionIsWeightedMean(t *testing.T) {
	// With one tight and one loose observation, the best position must sit
	// close to the tight one, at the weighted-mean split.
	p1 := sphere.FromRaDec(100, 10)                    // σ = 0.1
	p2 := sphere.FromRaDec(100, 10+sphere.Arcsec(1.0)) // σ = 0.5
	acc := Accumulator{}.Add(p1, 0.1).Add(p2, 0.5)
	best := acc.Best()
	d1 := sphere.ToArcsec(best.Sep(p1))
	d2 := sphere.ToArcsec(best.Sep(p2))
	// Weights 100:4, so the split is 1/26 vs 25/26 of the 1" separation.
	if math.Abs(d1-1.0/26) > 1e-6 {
		t.Errorf("distance to tight obs = %g, want %g", d1, 1.0/26)
	}
	if math.Abs(d2-25.0/26) > 1e-6 {
		t.Errorf("distance to loose obs = %g, want %g", d2, 25.0/26)
	}
}

func TestPosError(t *testing.T) {
	acc := Accumulator{}.Add(sphere.FromRaDec(0, 0), 1.0)
	if got := sphere.ToArcsec(acc.PosError()); math.Abs(got-1) > 1e-9 {
		t.Errorf("PosError of single σ=1 obs = %g arcsec", got)
	}
	// Four equal observations halve the error.
	p := sphere.FromRaDec(0, 0)
	acc4 := Accumulator{}.Add(p, 1).Add(p, 1).Add(p, 1).Add(p, 1)
	if got := sphere.ToArcsec(acc4.PosError()); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("PosError of 4 obs = %g arcsec, want 0.5", got)
	}
	if (Accumulator{}).PosError() != 180 {
		t.Error("empty accumulator PosError should be 180")
	}
}

func TestSearchRadiusIsExact(t *testing.T) {
	// An observation exactly at the search-radius boundary must sit at
	// χ² = t²; inside matches, outside does not.
	const thr = 3.5
	acc := Accumulator{}.Add(sphere.FromRaDec(50, 20), sigmaSDSS).
		Add(sphere.FromRaDec(50, 20+sphere.Arcsec(0.2)), sigma2MASS)
	r := acc.SearchRadius(thr, sigmaFIRST)
	if r <= 0 {
		t.Fatalf("radius = %g", r)
	}
	bra, bdec := acc.Best().RaDec()
	inside := sphere.FromRaDec(bra, bdec+0.999*r)
	outside := sphere.FromRaDec(bra, bdec+1.001*r)
	if !acc.Add(inside, sigmaFIRST).Matches(thr) {
		t.Error("observation just inside the search radius should match")
	}
	if acc.Add(outside, sigmaFIRST).Matches(thr) {
		t.Error("observation just outside the search radius should not match")
	}
}

func TestSearchRadiusEdgeCases(t *testing.T) {
	if got := (Accumulator{}).SearchRadius(3, 1); got != 180 {
		t.Errorf("empty accumulator radius = %g, want 180", got)
	}
	// Exhausted budget.
	acc := Accumulator{}.Add(sphere.FromRaDec(0, 0), 0.1).
		Add(sphere.FromRaDec(0, sphere.Arcsec(10)), 0.1)
	if acc.Matches(3.5) {
		t.Fatal("10 arcsec apart at σ=0.1 must not match")
	}
	if got := acc.SearchRadius(3.5, 1); got != 0 {
		t.Errorf("exhausted budget radius = %g, want 0", got)
	}
	// A huge sigma clamps at 180.
	one := Accumulator{}.Add(sphere.FromRaDec(0, 0), 0.1)
	if got := one.SearchRadius(1e9, 1e9); got != 180 {
		t.Errorf("huge radius should clamp at 180, got %g", got)
	}
}

func TestFigure2Semantics(t *testing.T) {
	// Reconstruction of Figure 2: body a is observed by all three
	// archives within the error bound; body b's observation in archive P
	// is out of range. XMATCH(O,T,P) selects only a; XMATCH(O,T,!P)
	// selects only b.
	const thr = 3.5
	sig := map[string]float64{"O": 0.1, "T": 0.15, "P": 0.2}
	aO := sphere.FromRaDec(184.9990, -0.4990)
	aT := sphere.FromRaDec(184.9990+sphere.Arcsec(0.1), -0.4990)
	aP := sphere.FromRaDec(184.9990, -0.4990+sphere.Arcsec(0.15))
	bO := sphere.FromRaDec(185.0010, -0.5010)
	bT := sphere.FromRaDec(185.0010-sphere.Arcsec(0.12), -0.5010)
	bP := sphere.FromRaDec(185.0010, -0.5010+sphere.Arcsec(30)) // way off

	O := ArchiveSet{Obs: []Observation{{Pos: aO, Key: 1}, {Pos: bO, Key: 2}}, Sigma: sig["O"]}
	T := ArchiveSet{Obs: []Observation{{Pos: aT, Key: 1}, {Pos: bT, Key: 2}}, Sigma: sig["T"]}
	P := ArchiveSet{Obs: []Observation{{Pos: aP, Key: 1}, {Pos: bP, Key: 2}}, Sigma: sig["P"]}

	// XMATCH(O, T, P): only body a.
	got := BruteForce([]ArchiveSet{O, T, P}, thr)
	if len(got) != 1 {
		t.Fatalf("XMATCH(O,T,P) matches = %d, want 1", len(got))
	}
	if got[0].Keys[0] != 1 || got[0].Keys[1] != 1 || got[0].Keys[2] != 1 {
		t.Errorf("XMATCH(O,T,P) keys = %v, want [1 1 1]", got[0].Keys)
	}

	// XMATCH(O, T, !P): only body b (a is vetoed by its P observation).
	P.DropOut = true
	got = BruteForce([]ArchiveSet{O, T, P}, thr)
	if len(got) != 1 {
		t.Fatalf("XMATCH(O,T,!P) matches = %d, want 1", len(got))
	}
	if got[0].Keys[0] != 2 || got[0].Keys[1] != 2 {
		t.Errorf("XMATCH(O,T,!P) keys = %v, want [2 2]", got[0].Keys)
	}
}

func TestBruteForceNoMandatory(t *testing.T) {
	d := ArchiveSet{Obs: []Observation{{Pos: sphere.FromRaDec(0, 0)}}, Sigma: 1, DropOut: true}
	if got := BruteForce([]ArchiveSet{d}, 3); got != nil {
		t.Errorf("drop-out-only input should yield nil, got %v", got)
	}
}

func TestBruteForcePerObservationSigma(t *testing.T) {
	// Observation.Sigma overrides the archive-wide sigma.
	p := sphere.FromRaDec(10, 10)
	q := sphere.FromRaDec(10, 10+sphere.Arcsec(3))
	a := ArchiveSet{Obs: []Observation{{Pos: p, Key: 1}}, Sigma: 0.01}
	// Archive sigma 0.01 would reject a 3" separation at t=3.5, but the
	// per-observation sigma of 2" accepts it.
	b := ArchiveSet{Obs: []Observation{{Pos: q, Key: 2, Sigma: 2}}, Sigma: 0.01}
	got := BruteForce([]ArchiveSet{a, b}, 3.5)
	if len(got) != 1 {
		t.Fatalf("per-observation sigma not honored: %d matches", len(got))
	}
}

func TestBruteForceDense(t *testing.T) {
	// Random field: every emitted match must satisfy the threshold, and a
	// direct O(n²) pair check must agree for the 2-archive case.
	rng := rand.New(rand.NewSource(77))
	const n = 60
	const thr = 3.0
	mk := func(sigma float64, seed int64) ArchiveSet {
		r := rand.New(rand.NewSource(seed))
		set := ArchiveSet{Sigma: sigma}
		for i := 0; i < n; i++ {
			ra := 180 + r.Float64()*0.01
			dec := r.Float64() * 0.01
			set.Obs = append(set.Obs, Observation{Pos: sphere.FromRaDec(ra, dec), Key: int64(i)})
		}
		return set
	}
	a := mk(0.3, 1)
	b := mk(0.4, 2)
	_ = rng
	got := BruteForce([]ArchiveSet{a, b}, thr)
	want := 0
	limit := PairRadius(thr, 0.3, 0.4)
	for _, oa := range a.Obs {
		for _, ob := range b.Obs {
			if oa.Pos.Sep(ob.Pos) <= limit {
				want++
			}
		}
	}
	if len(got) != want {
		t.Errorf("BruteForce pairs = %d, pairwise rule = %d", len(got), want)
	}
	for _, m := range got {
		if !m.Acc.Matches(thr) {
			t.Errorf("emitted match fails threshold: chi2 = %g", m.Acc.Chi2)
		}
	}
}

func TestAddDoesNotMutateReceiver(t *testing.T) {
	base := Accumulator{}.Add(sphere.FromRaDec(0, 0), 1)
	before := base
	_ = base.Add(sphere.FromRaDec(0, 1), 1)
	if base != before {
		t.Error("Add mutated its receiver")
	}
}
