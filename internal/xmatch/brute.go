package xmatch

import "skyquery/internal/sphere"

// Observation is one archive's measurement of a body: its position, the
// archive's positional error, and an opaque key (typically the row index
// or object id) used to report matches.
type Observation struct {
	Pos   sphere.Vec
	Sigma float64 // positional error in arc seconds
	Key   int64
}

// ArchiveSet is the input to the brute-force matcher: the observations of
// one archive plus whether the XMATCH clause marks it as a drop-out.
type ArchiveSet struct {
	Obs     []Observation
	DropOut bool
	Sigma   float64 // archive-wide positional error in arc seconds
}

// Match is one cross-match result from the brute-force matcher: the keys
// of the mandatory observations in archive order, and the final tuple
// statistics.
type Match struct {
	Keys []int64
	Acc  Accumulator
}

// BruteForce computes the exact answer of an XMATCH clause over in-memory
// observation sets by enumerating every combination of mandatory
// observations and then applying the drop-out (anti-join) rule: a tuple
// survives only if no drop-out archive holds an observation that would
// still match within the same threshold (§5.2).
//
// It is O(Πᵢ|archiveᵢ|) and exists as the oracle the distributed chain is
// verified against, and as the naive baseline for benchmarks.
func BruteForce(archives []ArchiveSet, threshold float64) []Match {
	var mandatory, dropouts []ArchiveSet
	for _, a := range archives {
		if a.DropOut {
			dropouts = append(dropouts, a)
		} else {
			mandatory = append(mandatory, a)
		}
	}
	if len(mandatory) == 0 {
		return nil
	}
	var out []Match
	keys := make([]int64, len(mandatory))
	var rec func(i int, acc Accumulator)
	rec = func(i int, acc Accumulator) {
		if i == len(mandatory) {
			if !acc.Matches(threshold) {
				return
			}
			for _, d := range dropouts {
				if hasDropOutMatch(acc, d, threshold) {
					return
				}
			}
			out = append(out, Match{Keys: append([]int64(nil), keys...), Acc: acc})
			return
		}
		for _, o := range mandatory[i].Obs {
			next := acc.Add(o.Pos, sigmaFor(mandatory[i], o))
			// Prune: chi-square only grows as observations are added.
			if !next.Matches(threshold) {
				continue
			}
			keys[i] = o.Key
			rec(i+1, next)
		}
	}
	rec(0, Accumulator{})
	return out
}

// hasDropOutMatch reports whether any observation of the drop-out archive
// would extend the tuple within the threshold, which vetoes the tuple.
func hasDropOutMatch(acc Accumulator, d ArchiveSet, threshold float64) bool {
	for _, o := range d.Obs {
		if acc.Add(o.Pos, sigmaFor(d, o)).Matches(threshold) {
			return true
		}
	}
	return false
}

func sigmaFor(a ArchiveSet, o Observation) float64 {
	if o.Sigma > 0 {
		return o.Sigma
	}
	return a.Sigma
}
