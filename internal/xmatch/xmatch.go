// Package xmatch implements the probabilistic cross-match mathematics of
// §5.4 of the paper. Each archive i observes an astronomical body at a
// unit vector rᵢ with isotropic Gaussian error σᵢ. For a tuple of
// observations the chi-square of the hypothesis "all are the same body" is
//
//	χ² = Σᵢ wᵢ·|rᵢ − r|²,  wᵢ = 1/σᵢ²,
//
// minimized over the unknown true position r. With the paper's cumulative
// values a = Σwᵢ and a⃗ = (ax, ay, az) = Σwᵢrᵢ the constrained minimum is
// 2(a − |a⃗|) and the log likelihood is −a + |a⃗| = −χ²/2.
//
// The accumulator below carries (a, a⃗) exactly as the paper ships them
// from archive to archive, but tracks χ² incrementally with a Welford-style
// update instead of evaluating 2(a − |a⃗|) at the end: with survey errors of
// ~0.1″, wᵢ ≈ 4·10¹², and the difference a − |a⃗| underflows float64
// cancellation long before the likelihood loses meaning. The incremental
// form is the free (unconstrained) minimum Σwᵢ|rᵢ − a⃗/a|², which for
// arcsecond-scale separations agrees with the constrained minimum to one
// part in 10⁹ (they differ by O(χ²·d²) with d the angular spread).
//
// A tuple satisfies XMATCH(...) < t iff χ² ≤ t². For two archives this
// reduces to the familiar rule "separation below t·sqrt(σ₁²+σ₂²)".
package xmatch

import (
	"math"

	"skyquery/internal/sphere"
)

// SigmaWeight converts a survey's positional error in arc seconds to the
// chi-square weight 1/σ² with σ in radians.
func SigmaWeight(sigmaArcsec float64) float64 {
	s := sphere.Arcsec(sigmaArcsec) * sphere.RadPerDeg
	return 1 / (s * s)
}

// Accumulator is the running state of a partial cross-match tuple: the
// paper's cumulative values plus the incrementally maintained chi-square.
// The zero Accumulator is an empty tuple.
type Accumulator struct {
	// A is Σ wᵢ (the paper's a).
	A float64
	// V is Σ wᵢ·rᵢ (the paper's (ax, ay, az)).
	V sphere.Vec
	// Chi2 is the minimized chi-square of the observations so far.
	Chi2 float64
	// N is the number of observations folded in.
	N int
}

// Add returns the accumulator extended with one observation at unit vector
// pos with error sigmaArcsec. The receiver is not modified, so partial
// tuples can branch cheaply when several candidates extend the same tuple.
func (acc Accumulator) Add(pos sphere.Vec, sigmaArcsec float64) Accumulator {
	w := SigmaWeight(sigmaArcsec)
	if acc.N == 0 {
		return Accumulator{A: w, V: pos.Scale(w), N: 1}
	}
	// Welford update: the new chi-square adds the weighted squared chord
	// distance between the incoming point and the current best position,
	// scaled by the harmonic weight factor.
	mean := acc.V.Scale(1 / acc.A)
	d := pos.Sub(mean)
	chi2 := acc.Chi2 + (w*acc.A/(acc.A+w))*d.Dot(d)
	return Accumulator{
		A:    acc.A + w,
		V:    acc.V.Add(pos.Scale(w)),
		Chi2: chi2,
		N:    acc.N + 1,
	}
}

// Best returns the maximum-likelihood body position: the direction of a⃗.
func (acc Accumulator) Best() sphere.Vec {
	return acc.V.Normalize()
}

// LogLikelihood returns the paper's log likelihood −χ²/2 (0 is a perfect
// coincidence; more negative is worse).
func (acc Accumulator) LogLikelihood() float64 {
	return -acc.Chi2 / 2
}

// Chi2Constrained evaluates the closed-form constrained minimum
// 2(a − |a⃗|). It exists for cross-validation against the incremental
// value; production code should read Chi2.
func (acc Accumulator) Chi2Constrained() float64 {
	return 2 * (acc.A - acc.V.Norm())
}

// Matches reports whether the accumulated tuple satisfies an XMATCH
// threshold of t standard deviations: χ² ≤ t².
func (acc Accumulator) Matches(t float64) bool {
	return acc.Chi2 <= t*t
}

// PosError returns the 1-σ angular uncertainty of the best position in
// degrees: 1/sqrt(a), converted from radians.
func (acc Accumulator) PosError() float64 {
	if acc.A <= 0 {
		return 180
	}
	return math.Sqrt(1/acc.A) * sphere.DegPerRad
}

// SearchRadius returns the exact angular radius in degrees within which an
// observation with error sigmaArcsec can still extend this tuple under
// threshold t. From χ²_new = χ² + (w·a/(a+w))·d²:
//
//	d ≤ sqrt((t² − χ²)·(σ² + 1/a))
//
// A non-positive budget returns 0: the tuple cannot be extended.
// For an empty accumulator the radius is unbounded (returned as 180).
func (acc Accumulator) SearchRadius(t, sigmaArcsec float64) float64 {
	if acc.N == 0 {
		return 180
	}
	budget := t*t - acc.Chi2
	if budget <= 0 {
		return 0
	}
	s := sphere.Arcsec(sigmaArcsec) * sphere.RadPerDeg
	d := math.Sqrt(budget * (s*s + 1/acc.A))
	deg := d * sphere.DegPerRad
	if deg > 180 {
		deg = 180
	}
	return deg
}

// PairRadius returns the classic two-survey match radius in degrees:
// t·sqrt(σ₁²+σ₂²) with the sigmas in arc seconds.
func PairRadius(t, sigma1Arcsec, sigma2Arcsec float64) float64 {
	return t * math.Sqrt(sigma1Arcsec*sigma1Arcsec+sigma2Arcsec*sigma2Arcsec) / sphere.ArcsecPerDeg
}
