package skynode

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"skyquery/internal/plan"
	"skyquery/internal/soap"
	"skyquery/internal/sphere"
	"skyquery/internal/survey"
	"skyquery/internal/value"
	"skyquery/internal/xmatch"
)

// testRegion is the shared sky field for node tests.
func testRegion() sphere.Cap { return sphere.NewCap(185, -0.5, 0.25) }

// testFederation builds nArchives synthetic archives over one field and
// returns running nodes with their HTTP endpoints.
func testFederation(t *testing.T, nBodies int, cfgs []survey.Config) (field *survey.Field, archives []*survey.Archive, nodes []*Node, endpoints []string) {
	t.Helper()
	field = survey.GenerateField(testRegion(), nBodies, 0.4, 1001)
	for _, cfg := range cfgs {
		a := survey.Observe(field, cfg)
		db, err := a.BuildDB()
		if err != nil {
			t.Fatal(err)
		}
		n, err := New(Config{
			Name:         cfg.Name,
			DB:           db,
			PrimaryTable: survey.TableName,
			RACol:        "ra",
			DecCol:       "dec",
			SigmaArcsec:  cfg.SigmaArcsec,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(n.Server())
		t.Cleanup(ts.Close)
		archives = append(archives, a)
		nodes = append(nodes, n)
		endpoints = append(endpoints, ts.URL)
	}
	return field, archives, nodes, endpoints
}

func defaultConfigs() []survey.Config {
	return []survey.Config{
		{Name: "SDSS", SigmaArcsec: 0.1, Completeness: 0.95, Seed: 11, FluxOffset: 3},
		{Name: "TWOMASS", SigmaArcsec: 0.2, Completeness: 0.85, Seed: 12, FluxOffset: 0, ExtraDensity: 0.1},
		{Name: "FIRST", SigmaArcsec: 0.4, Completeness: 0.5, Seed: 13, FluxOffset: -1},
	}
}

func TestNewValidation(t *testing.T) {
	f := survey.GenerateField(testRegion(), 10, 0.4, 1)
	a := survey.Observe(f, survey.Config{Name: "A", SigmaArcsec: 0.1, Completeness: 1, Seed: 2})
	db, _ := a.BuildDB()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no name", func(c *Config) { c.Name = "" }},
		{"no db", func(c *Config) { c.DB = nil }},
		{"bad sigma", func(c *Config) { c.SigmaArcsec = 0 }},
		{"missing table", func(c *Config) { c.PrimaryTable = "Nope" }},
		{"no racol", func(c *Config) { c.RACol = "" }},
		{"bad racol", func(c *Config) { c.RACol = "nope" }},
	}
	for _, tc := range cases {
		cfg := Config{Name: "A", DB: db, PrimaryTable: survey.TableName,
			RACol: "ra", DecCol: "dec", SigmaArcsec: 0.1}
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestInformationService(t *testing.T) {
	_, archives, _, endpoints := testFederation(t, 200, defaultConfigs()[:1])
	c := &soap.Client{}
	var info InformationResponse
	if err := c.Call(context.Background(), endpoints[0], ActionInformation, &InformationRequest{}, &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "SDSS" || info.SigmaArcsec != 0.1 {
		t.Errorf("info = %+v", info)
	}
	if info.PrimaryTable != survey.TableName || info.RACol != "ra" || info.DecCol != "dec" {
		t.Errorf("info = %+v", info)
	}
	if info.ObjectCount != int64(len(archives[0].Obs)) {
		t.Errorf("objectCount = %d, want %d", info.ObjectCount, len(archives[0].Obs))
	}
	if info.SpatialLevel == 0 {
		t.Error("spatial level missing")
	}
}

func TestMetadataService(t *testing.T) {
	_, _, _, endpoints := testFederation(t, 100, defaultConfigs()[:1])
	c := &soap.Client{}
	var meta MetadataResponse
	if err := c.Call(context.Background(), endpoints[0], ActionMetadata, &MetadataRequest{}, &meta); err != nil {
		t.Fatal(err)
	}
	if len(meta.Tables) != 1 {
		t.Fatalf("tables = %+v", meta.Tables)
	}
	tm := meta.Tables[0]
	if tm.Name != survey.TableName || !tm.Spatial {
		t.Errorf("table meta = %+v", tm)
	}
	wantCols := len(survey.Schema())
	if len(tm.Columns) != wantCols {
		t.Errorf("columns = %d, want %d", len(tm.Columns), wantCols)
	}
}

func TestQueryServiceCount(t *testing.T) {
	_, archives, nodes, endpoints := testFederation(t, 300, defaultConfigs()[:1])
	c := &soap.Client{}
	var first soap.ChunkedData
	sql := fmt.Sprintf("SELECT COUNT(*) FROM %s o WHERE AREA(185, -0.5, %g)", survey.TableName, 0.25*3600)
	if err := c.Call(context.Background(), endpoints[0], ActionQuery, &QueryRequest{SQL: sql}, &first); err != nil {
		t.Fatal(err)
	}
	ds, err := soap.FetchAll(context.Background(), c, endpoints[0], &first)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != 1 {
		t.Fatalf("count result rows = %d", ds.NumRows())
	}
	got := ds.Rows[0][0].AsInt()
	// All observations lie inside the generation region, which equals the
	// AREA, except those scattered just past the boundary.
	if got < int64(float64(len(archives[0].Obs))*0.98) {
		t.Errorf("count = %d of %d observations", got, len(archives[0].Obs))
	}
	q, _, _ := nodes[0].Stats()
	if q != 1 {
		t.Errorf("queriesServed = %d", q)
	}
}

func TestQueryServiceErrors(t *testing.T) {
	_, _, _, endpoints := testFederation(t, 50, defaultConfigs()[:1])
	c := &soap.Client{}
	var first soap.ChunkedData
	for _, sql := range []string{
		"not sql at all",
		"SELECT o.nope FROM PhotoObject o",
		"SELECT o.object_id FROM Missing o",
	} {
		err := c.Call(context.Background(), endpoints[0], ActionQuery, &QueryRequest{SQL: sql}, &first)
		if err == nil {
			t.Errorf("query %q should fail", sql)
		}
	}
}

// buildPlan constructs a plan over the test federation in the given call
// order, with FIRST optionally a drop-out.
func buildPlan(archives []*survey.Archive, endpoints []string, order []int, dropOut map[string]bool, threshold float64) plan.Plan {
	reg := testRegion()
	ra, dec := reg.Center.RaDec()
	p := plan.Plan{
		QueryID:   "test-1",
		Threshold: threshold,
		Area:      plan.Area{RA: ra, Dec: dec, RadiusArcsec: sphere.ToArcsec(reg.Radius)},
	}
	aliases := map[string]string{"SDSS": "O", "TWOMASS": "T", "FIRST": "P"}
	for _, i := range order {
		cfg := archives[i].Config
		step := plan.Step{
			Archive:     cfg.Name,
			Alias:       aliases[cfg.Name],
			Endpoint:    endpoints[i],
			Table:       survey.TableName,
			SigmaArcsec: cfg.SigmaArcsec,
			DropOut:     dropOut[cfg.Name],
		}
		if !step.DropOut {
			step.Columns = []string{"object_id"}
		}
		p.Steps = append(p.Steps, step)
	}
	return p
}

// runChain invokes the CrossMatch service of the first step and drains the
// tuple response.
func runChain(t *testing.T, p plan.Plan) [][]value.Value {
	t.Helper()
	c := &soap.Client{}
	var first soap.ChunkedData
	if err := c.Call(context.Background(), p.Steps[0].Endpoint, ActionCrossMatch, &CrossMatchRequest{Plan: p}, &first); err != nil {
		t.Fatal(err)
	}
	ds, err := soap.FetchAll(context.Background(), c, p.Steps[0].Endpoint, &first)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Rows
}

// oracleKeys runs the brute-force matcher over the same data and returns
// the sorted "k1|k2|..." key strings of the matches.
func oracleKeys(t *testing.T, archives []*survey.Archive, mandatoryOrder []string, dropOuts []string, threshold float64) []string {
	t.Helper()
	byName := map[string]*survey.Archive{}
	for _, a := range archives {
		byName[a.Config.Name] = a
	}
	region := testRegion()
	var sets []xmatch.ArchiveSet
	for _, name := range mandatoryOrder {
		set := byName[name].ObservationSet(false)
		set.Obs = filterInRegion(byName[name], region)
		sets = append(sets, set)
	}
	for _, name := range dropOuts {
		set := byName[name].ObservationSet(true)
		set.Obs = filterInRegion(byName[name], region)
		sets = append(sets, set)
	}
	matches := xmatch.BruteForce(sets, threshold)
	var keys []string
	for _, m := range matches {
		parts := make([]string, len(m.Keys))
		for i, k := range m.Keys {
			parts[i] = fmt.Sprint(k)
		}
		keys = append(keys, strings.Join(parts, "|"))
	}
	sort.Strings(keys)
	return keys
}

func filterInRegion(a *survey.Archive, region sphere.Cap) []xmatch.Observation {
	var out []xmatch.Observation
	for _, o := range a.Obs {
		if region.Contains(o.Pos) {
			out = append(out, xmatch.Observation{Pos: o.Pos, Key: o.ObjectID})
		}
	}
	return out
}

// chainKeys extracts sorted "k1|k2|..." keys from chain tuples given the
// column order of the mandatory aliases.
func chainKeys(rows [][]value.Value, nCols int, aliasOrder []int) []string {
	var keys []string
	for _, row := range rows {
		parts := make([]string, len(aliasOrder))
		for i, col := range aliasOrder {
			parts[i] = fmt.Sprint(row[xmatch.NumAccCols+col].AsInt())
		}
		keys = append(keys, strings.Join(parts, "|"))
	}
	sort.Strings(keys)
	return keys
}

func TestChainMatchesBruteForceTwoArchives(t *testing.T) {
	_, archives, _, endpoints := testFederation(t, 400, defaultConfigs()[:2])
	const thr = 3.5
	p := buildPlan(archives, endpoints, []int{0, 1}, nil, thr)
	rows := runChain(t, p)
	// Call order SDSS,TWOMASS: execution seeds at TWOMASS, extends at
	// SDSS. Tuple payload: [T.object_id, O.object_id].
	got := chainKeys(rows, 2, []int{1, 0})
	want := oracleKeys(t, archives, []string{"SDSS", "TWOMASS"}, nil, thr)
	compareKeys(t, got, want)
}

func TestChainMatchesBruteForceThreeArchives(t *testing.T) {
	_, archives, _, endpoints := testFederation(t, 300, defaultConfigs())
	const thr = 3.0
	p := buildPlan(archives, endpoints, []int{0, 1, 2}, nil, thr)
	rows := runChain(t, p)
	// Execution order FIRST, TWOMASS, SDSS → payload [P.id, T.id, O.id].
	got := chainKeys(rows, 3, []int{2, 1, 0})
	want := oracleKeys(t, archives, []string{"SDSS", "TWOMASS", "FIRST"}, nil, thr)
	compareKeys(t, got, want)
}

func TestChainOrderIndependence(t *testing.T) {
	// §5.4: the result set must not depend on the chain order.
	_, archives, _, endpoints := testFederation(t, 250, defaultConfigs())
	const thr = 3.0
	pa := buildPlan(archives, endpoints, []int{0, 1, 2}, nil, thr)
	pb := buildPlan(archives, endpoints, []int{2, 0, 1}, nil, thr)
	rowsA := runChain(t, pa)
	rowsB := runChain(t, pb)
	// Key positions: execution order reversed call order.
	keysA := chainKeysByAlias(rowsA, pa)
	keysB := chainKeysByAlias(rowsB, pb)
	compareKeys(t, keysA, keysB)
}

// chainKeysByAlias renders keys sorted by alias name so different chain
// orders are comparable.
func chainKeysByAlias(rows [][]value.Value, p plan.Plan) []string {
	// Payload columns appear in execution order (reverse call order),
	// one object_id per mandatory archive.
	var aliases []string
	for i := len(p.Steps) - 1; i >= 0; i-- {
		if !p.Steps[i].DropOut {
			aliases = append(aliases, p.Steps[i].Alias)
		}
	}
	var keys []string
	for _, row := range rows {
		kv := map[string]string{}
		for i, alias := range aliases {
			kv[alias] = fmt.Sprint(row[xmatch.NumAccCols+i].AsInt())
		}
		var names []string
		for a := range kv {
			names = append(names, a)
		}
		sort.Strings(names)
		var parts []string
		for _, a := range names {
			parts = append(parts, a+"="+kv[a])
		}
		keys = append(keys, strings.Join(parts, ","))
	}
	sort.Strings(keys)
	return keys
}

func TestChainDropOut(t *testing.T) {
	_, archives, _, endpoints := testFederation(t, 300, defaultConfigs())
	const thr = 3.0
	// FIRST is the drop-out; call order: FIRST (dropout first), SDSS, TWOMASS.
	p := buildPlan(archives, endpoints, []int{2, 0, 1}, map[string]bool{"FIRST": true}, thr)
	rows := runChain(t, p)
	// Execution: TWOMASS seeds, SDSS extends, FIRST vetoes.
	got := chainKeys(rows, 2, []int{1, 0})
	want := oracleKeys(t, archives, []string{"SDSS", "TWOMASS"}, []string{"FIRST"}, thr)
	compareKeys(t, got, want)
	if len(got) == 0 {
		t.Error("degenerate test: no drop-out matches at all")
	}
}

func compareKeys(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("matches = %d, oracle = %d\n got: %v\nwant: %v", len(got), len(want), head(got), head(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("key %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func head(s []string) []string {
	if len(s) > 8 {
		return s[:8]
	}
	return s
}

func TestChainLocalPredicate(t *testing.T) {
	_, archives, _, endpoints := testFederation(t, 300, defaultConfigs()[:2])
	const thr = 3.5
	p := buildPlan(archives, endpoints, []int{0, 1}, nil, thr)
	// Only galaxies from SDSS.
	p.Steps[0].LocalWhere = "O.type = 'GALAXY'"
	rows := runChain(t, p)
	// Verify every returned SDSS object is a galaxy.
	byID := map[int64]bool{}
	for _, o := range archives[0].Obs {
		byID[o.ObjectID] = o.Galaxy
	}
	if len(rows) == 0 {
		t.Fatal("no matches")
	}
	for _, row := range rows {
		oid := row[xmatch.NumAccCols+1].AsInt()
		if !byID[oid] {
			t.Fatalf("non-galaxy SDSS object %d in result", oid)
		}
	}
}

func TestChainCrossPredicate(t *testing.T) {
	_, archives, _, endpoints := testFederation(t, 300, defaultConfigs()[:2])
	const thr = 3.5
	p := buildPlan(archives, endpoints, []int{0, 1}, nil, thr)
	p.Steps[0].Columns = []string{"object_id", "flux"}
	p.Steps[1].Columns = []string{"object_id", "flux"}
	// SDSS fluxes are offset +3 vs TWOMASS +0, so this keeps most pairs
	// but the filter must hold exactly.
	p.Steps[0].CrossWhere = []string{"(O.flux - T.flux) > 3"}
	rows := runChain(t, p)
	if len(rows) == 0 {
		t.Fatal("no matches survived the flux predicate")
	}
	for _, row := range rows {
		tFlux, _ := row[xmatch.NumAccCols+1].AsFloat()
		oFlux, _ := row[xmatch.NumAccCols+3].AsFloat()
		if !(oFlux-tFlux > 3) {
			t.Fatalf("cross predicate violated: O.flux=%g T.flux=%g", oFlux, tFlux)
		}
	}
}

func TestChainTempTablesCleaned(t *testing.T) {
	_, archives, nodes, endpoints := testFederation(t, 200, defaultConfigs()[:2])
	p := buildPlan(archives, endpoints, []int{0, 1}, nil, 3.5)
	runChain(t, p)
	for i, n := range nodes {
		if got := n.cfg.DB.TempCount(); got != 0 {
			t.Errorf("node %d: %d temp tables left behind", i, got)
		}
	}
}

func TestChainEvents(t *testing.T) {
	f := survey.GenerateField(testRegion(), 100, 0.4, 55)
	var events []string
	mk := func(name string, sigma float64, seed int64) (*Node, string) {
		a := survey.Observe(f, survey.Config{Name: name, SigmaArcsec: sigma, Completeness: 1, Seed: seed})
		db, _ := a.BuildDB()
		n, err := New(Config{Name: name, DB: db, PrimaryTable: survey.TableName,
			RACol: "ra", DecCol: "dec", SigmaArcsec: sigma,
			OnEvent: func(e Event) { events = append(events, e.Node+":"+e.Kind) }})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(n.Server())
		t.Cleanup(ts.Close)
		return n, ts.URL
	}
	_, epA := mk("A", 0.1, 3)
	_, epB := mk("B", 0.2, 4)
	reg := testRegion()
	ra, dec := reg.Center.RaDec()
	p := plan.Plan{
		QueryID:   "ev-1",
		Threshold: 3.5,
		Area:      plan.Area{RA: ra, Dec: dec, RadiusArcsec: sphere.ToArcsec(reg.Radius)},
		Steps: []plan.Step{
			{Archive: "A", Alias: "a", Endpoint: epA, Table: survey.TableName, SigmaArcsec: 0.1, Columns: []string{"object_id"}},
			{Archive: "B", Alias: "b", Endpoint: epB, Table: survey.TableName, SigmaArcsec: 0.2, Columns: []string{"object_id"}},
		},
	}
	runChain(t, p)
	want := []string{
		"A:xmatch.recv", "A:xmatch.forward",
		"B:xmatch.recv", "B:xmatch.seed", "B:xmatch.return",
		"A:xmatch.step", "A:xmatch.return",
	}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d = %q, want %q (all: %v)", i, events[i], want[i], events)
		}
	}
}

func TestCrossMatchRejectsForeignPlan(t *testing.T) {
	_, archives, _, endpoints := testFederation(t, 50, defaultConfigs()[:2])
	p := buildPlan(archives, endpoints, []int{0, 1}, nil, 3.5)
	// Rename step 0 so the receiving node is not in the plan.
	p.Steps[0].Archive = "SOMEONE_ELSE"
	c := &soap.Client{}
	var first soap.ChunkedData
	err := c.Call(context.Background(), endpoints[0], ActionCrossMatch, &CrossMatchRequest{Plan: p}, &first)
	if err == nil || !strings.Contains(err.Error(), "not part of plan") {
		t.Errorf("err = %v", err)
	}
}

func TestCrossMatchRejectsInvalidPlan(t *testing.T) {
	_, archives, _, endpoints := testFederation(t, 50, defaultConfigs()[:2])
	p := buildPlan(archives, endpoints, []int{0, 1}, nil, 3.5)
	p.Threshold = -1
	c := &soap.Client{}
	var first soap.ChunkedData
	if err := c.Call(context.Background(), endpoints[0], ActionCrossMatch, &CrossMatchRequest{Plan: p}, &first); err == nil {
		t.Error("invalid plan accepted")
	}
}

func TestWSDLGeneration(t *testing.T) {
	_, _, nodes, endpoints := testFederation(t, 10, defaultConfigs()[:1])
	if err := nodes[0].SetWSDL(endpoints[0]); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nodes[0].Server().WSDL, "CrossMatch") {
		t.Error("WSDL missing CrossMatch operation")
	}
}

func TestTupleStats(t *testing.T) {
	_, archives, nodes, endpoints := testFederation(t, 200, defaultConfigs()[:2])
	p := buildPlan(archives, endpoints, []int{0, 1}, nil, 3.5)
	rows := runChain(t, p)
	_, in0, out0 := nodes[0].Stats()
	_, in1, out1 := nodes[1].Stats()
	if in1 != 0 {
		t.Errorf("seed node received %d tuples", in1)
	}
	if out1 == 0 {
		t.Error("seed node emitted nothing")
	}
	if in0 != out1 {
		t.Errorf("node0 in (%d) != node1 out (%d)", in0, out1)
	}
	if out0 != int64(len(rows)) {
		t.Errorf("node0 out = %d, rows = %d", out0, len(rows))
	}
}
