package skynode

// Admission control for the node's step-execution path. A burst of
// heavy cross-matches used to run all at once: every concurrent step
// materialized its incoming partial-tuple set and its candidate batches
// simultaneously, so enough simultaneous queries OOM the node long
// before they saturate its CPUs. The Gate below is a weighted
// semaphore over two budgets — concurrent step slots and estimated
// in-flight step memory — with a bounded FIFO wait queue in front.
// Work that cannot start immediately queues; work that would overflow
// the queue, or waits past its deadline, is shed with a typed
// retryable error that the SOAP layer maps to the 429-equivalent
// Overloaded fault (HTTP 503) and portals retry with backoff. Shedding
// happens before the step touches any data, so a retry is always safe.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"skyquery/internal/dataset"
	"skyquery/internal/value"
)

// Default admission parameters (used for zero Admission fields when the
// gate is enabled).
const (
	// DefaultMemoryBudget bounds the estimated bytes of incoming tuple
	// sets concurrently inside step execution.
	DefaultMemoryBudget = 256 << 20
	// DefaultQueueTimeout is how long an admission waits before being
	// shed.
	DefaultQueueTimeout = 5 * time.Second
	// minAdmitWeight is the floor charged per admission so that even
	// seed steps (no incoming set) consume budget.
	minAdmitWeight = 64 << 10
)

// Admission configures the node's admission gate. The zero value
// disables admission entirely (every step runs immediately), preserving
// the pre-gate behavior for embedded uses that do their own limiting.
type Admission struct {
	// MaxConcurrent is the number of steps that may execute at once;
	// <= 0 disables the gate.
	MaxConcurrent int
	// MemoryBudget bounds the estimated bytes of step input concurrently
	// admitted; 0 means DefaultMemoryBudget, negative means unbounded.
	MemoryBudget int64
	// MaxQueue bounds how many admissions may wait; a full queue sheds
	// immediately. 0 means 4*MaxConcurrent, negative means no queueing
	// (immediate shed when saturated).
	MaxQueue int
	// QueueTimeout sheds an admission still queued after this long;
	// 0 means DefaultQueueTimeout.
	QueueTimeout time.Duration
}

// ErrOverloaded is the typed, retryable error a shed admission returns.
type ErrOverloaded struct {
	// Node is the shedding archive's name.
	Node string
	// Queued is the queue depth observed at shed time.
	Queued int
	// Waited is how long the admission queued before being shed (zero
	// when the queue itself was full).
	Waited time.Duration
}

// Error implements the error interface.
func (e *ErrOverloaded) Error() string {
	if e.Waited > 0 {
		return fmt.Sprintf("skynode %s: overloaded: admission shed after queueing %v (%d queued); retry with backoff",
			e.Node, e.Waited.Round(time.Millisecond), e.Queued)
	}
	return fmt.Sprintf("skynode %s: overloaded: admission queue full (%d queued); retry with backoff", e.Node, e.Queued)
}

// gateWaiter is one queued admission.
type gateWaiter struct {
	weight   int64
	ready    chan struct{} // closed under the gate lock on admit
	canceled bool          // set under the gate lock on timeout
}

// Gate is the weighted admission semaphore. A nil *Gate admits
// everything immediately.
type Gate struct {
	name     string
	slotCap  int
	memCap   int64
	maxQueue int
	timeout  time.Duration

	mu      sync.Mutex
	slots   int
	mem     int64
	waiters []*gateWaiter // FIFO; canceled entries removed lazily

	admitted atomic.Int64
	queued   atomic.Int64
	shed     atomic.Int64
}

// NewGate builds a gate for the given configuration; it returns nil
// (gate disabled) when cfg.MaxConcurrent <= 0.
func NewGate(name string, cfg Admission) *Gate {
	if cfg.MaxConcurrent <= 0 {
		return nil
	}
	g := &Gate{name: name, slotCap: cfg.MaxConcurrent}
	switch {
	case cfg.MemoryBudget == 0:
		g.memCap = DefaultMemoryBudget
	case cfg.MemoryBudget < 0:
		g.memCap = 1 << 62
	default:
		g.memCap = cfg.MemoryBudget
	}
	switch {
	case cfg.MaxQueue == 0:
		g.maxQueue = 4 * cfg.MaxConcurrent
	case cfg.MaxQueue < 0:
		g.maxQueue = 0
	default:
		g.maxQueue = cfg.MaxQueue
	}
	if g.timeout = cfg.QueueTimeout; g.timeout == 0 {
		g.timeout = DefaultQueueTimeout
	}
	return g
}

// clampWeight folds an admission's estimated bytes into [minAdmitWeight,
// memCap]: a single request heavier than the whole budget must still be
// admissible (alone), or it could never run at all.
func (g *Gate) clampWeight(w int64) int64 {
	if w < minAdmitWeight {
		return minAdmitWeight
	}
	if w > g.memCap {
		return g.memCap
	}
	return w
}

// fitsLocked reports whether an admission of the given weight can start
// now. Callers hold g.mu.
func (g *Gate) fitsLocked(w int64) bool {
	return g.slots < g.slotCap && g.mem+w <= g.memCap
}

// Acquire admits one step execution of the given estimated weight in
// bytes, blocking in FIFO order while the gate is saturated. It returns
// a release function on success and *ErrOverloaded when the admission
// was shed (queue full or deadline passed). A nil gate admits
// immediately.
func (g *Gate) Acquire(weight int64) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	w := g.clampWeight(weight)
	g.mu.Lock()
	// FIFO: even a fitting admission queues behind existing waiters so
	// a stream of light steps cannot starve a heavy one forever.
	if len(g.waiters) == 0 && g.fitsLocked(w) {
		g.slots++
		g.mem += w
		g.mu.Unlock()
		g.admitted.Add(1)
		return g.releaseFunc(w), nil
	}
	if len(g.waiters) >= g.maxQueue {
		depth := len(g.waiters)
		g.mu.Unlock()
		g.shed.Add(1)
		return nil, &ErrOverloaded{Node: g.name, Queued: depth}
	}
	wtr := &gateWaiter{weight: w, ready: make(chan struct{})}
	g.waiters = append(g.waiters, wtr)
	g.mu.Unlock()
	g.queued.Add(1)

	start := time.Now()
	timer := time.NewTimer(g.timeout)
	defer timer.Stop()
	select {
	case <-wtr.ready:
		return g.releaseFunc(w), nil
	case <-timer.C:
		g.mu.Lock()
		select {
		case <-wtr.ready:
			// Lost the race: dispatch admitted us just as the deadline
			// fired. Use the slot.
			g.mu.Unlock()
			return g.releaseFunc(w), nil
		default:
		}
		wtr.canceled = true
		depth := len(g.waiters)
		g.mu.Unlock()
		g.shed.Add(1)
		return nil, &ErrOverloaded{Node: g.name, Queued: depth, Waited: time.Since(start)}
	}
}

// releaseFunc returns the (idempotent) release closure for an admitted
// weight.
func (g *Gate) releaseFunc(w int64) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.slots--
			g.mem -= w
			g.dispatchLocked()
			g.mu.Unlock()
		})
	}
}

// dispatchLocked admits queued waiters, in order, while they fit.
// Callers hold g.mu.
func (g *Gate) dispatchLocked() {
	for len(g.waiters) > 0 {
		head := g.waiters[0]
		if head.canceled {
			g.waiters = g.waiters[1:]
			continue
		}
		if !g.fitsLocked(head.weight) {
			return // strict FIFO: nobody overtakes the head
		}
		g.waiters = g.waiters[1:]
		g.slots++
		g.mem += head.weight
		g.admitted.Add(1)
		close(head.ready)
	}
}

// GateStats is a snapshot of admission counters.
type GateStats struct {
	// Admitted counts admissions that ran (including after queueing).
	Admitted int64
	// Queued counts admissions that had to wait before running or being
	// shed.
	Queued int64
	// Shed counts admissions rejected with ErrOverloaded.
	Shed int64
	// InFlight and QueueDepth are instantaneous.
	InFlight   int
	QueueDepth int
	// MemoryInUse is the weight currently admitted, in bytes.
	MemoryInUse int64
}

// Stats returns a snapshot of the gate's counters; zero for a nil gate.
func (g *Gate) Stats() GateStats {
	if g == nil {
		return GateStats{}
	}
	g.mu.Lock()
	s := GateStats{
		InFlight:    g.slots,
		QueueDepth:  len(g.waiters),
		MemoryInUse: g.mem,
	}
	g.mu.Unlock()
	s.Admitted = g.admitted.Load()
	s.Queued = g.queued.Load()
	s.Shed = g.shed.Load()
	return s
}

// estimateDataSetBytes is the admission weight of an incoming tuple
// set: cell count times the value struct size plus string payloads'
// backing arrays (sampled per column from the first row to stay O(rows)
// instead of O(cells) — an estimate is all the budget needs).
func estimateDataSetBytes(d *dataset.DataSet) int64 {
	if d == nil {
		return 0
	}
	return estimateRowsBytes(d.Rows)
}

// estimateRowsBytes is the admission weight of one batch of tuples —
// the streaming path charges it per in-flight page, so the gate sees
// the real page-sized footprint instead of a whole-set estimate.
func estimateRowsBytes(rows [][]value.Value) int64 {
	if len(rows) == 0 {
		return 0
	}
	const valueSize = 48 // unsafe.Sizeof(value.Value{}) rounded up
	bytes := int64(len(rows)) * int64(len(rows[0])) * valueSize
	// First row's string payload as the per-row sample — an estimate
	// is all the budget needs, and it keeps this O(columns).
	var rowStrings int64
	for _, v := range rows[0] {
		rowStrings += int64(len(v.AsString()))
	}
	return bytes + rowStrings*int64(len(rows))
}
