package skynode

import (
	"math"
	"net/url"
	"sort"
	"strings"
	"sync"

	"skyquery/internal/nettrace"
	"skyquery/internal/plan"
	"skyquery/internal/sqlparse"
)

// Mid-chain adaptive re-ordering. All chain calls are issued downward
// before any step executes, so a node at position idx can still change
// the not-yet-called downstream suffix Steps[idx+1:]. When the plan
// permits it (Plan.AdaptiveReorder), the node re-prices that suffix with
// what it knows and the Portal did not: its own live per-host throughput
// observations (the Portal planned from *its* vantage point; inter-node
// paths can look very different) and its learned calibration of the
// statistics estimates. If the refreshed costs diverge from the plan's
// by more than ReorderThreshold and imply a different order, the suffix
// is re-sorted and its cross predicates re-assigned before forwarding.
//
// Correctness never depends on the order: every permutation folds the
// same archives over the same area with the same predicates, so the
// surviving tuple set is identical — only raw row order, transfer volume
// and latency change. Any anomaly while re-planning (an unparsable
// predicate, an orphaned one) aborts the re-order and forwards the plan
// unchanged.

// ReorderThreshold is the live/planned cost divergence factor a
// downstream step must exceed before a node considers re-ordering the
// suffix. Below it, estimate noise would thrash the chain for nothing.
const ReorderThreshold = 1.5

// maybeReorderSuffix re-prices and, when justified, re-orders the
// downstream suffix of p in place. idx is this node's position in call
// order.
func (n *Node) maybeReorderSuffix(p *plan.Plan, idx int) {
	if !p.AdaptiveReorder || idx+2 >= len(p.Steps) {
		return // a suffix of fewer than two steps has only one order
	}
	suffix := p.Steps[idx+1:]
	thr := make([]float64, len(suffix))
	for i := range suffix {
		thr[i] = nettrace.ObservedThroughput(endpointHost(suffix[i].Endpoint))
	}
	plan.EffectiveThroughputs(thr)
	// Hosts with no measurement are charged the slowest measured path,
	// exactly as the Portal prices them (unknown must not read as free).
	minPos := 0.0
	for _, t := range thr {
		if t > 0 && (minPos == 0 || t < minPos) {
			minPos = t
		}
	}
	for i := range thr {
		if thr[i] <= 0 {
			thr[i] = minPos
		}
	}
	live := make([]float64, len(suffix))
	diverged := false
	for i := range suffix {
		s := &suffix[i]
		planned := s.Cost
		if planned <= 0 {
			// A count-probe plan carries no costs; price it from its
			// counts so the comparison is like for like.
			planned = plan.CostOf(s, 0)
		}
		live[i] = plan.CostOf(s, thr[i])
		if r := n.calib.ratio(s.Table); r != 1 && s.StatsBased {
			live[i] *= r
		}
		if live[i] > planned*ReorderThreshold || planned > live[i]*ReorderThreshold {
			diverged = true
		}
	}
	if !diverged {
		return
	}
	reordered := append([]plan.Step(nil), suffix...)
	for i := range reordered {
		reordered[i].Cost = live[i]
	}
	reordered = plan.OrderByCost(reordered)
	if sameStepOrder(reordered, suffix) {
		return
	}
	if !reassignSuffixPredicates(reordered) {
		return // safety: keep the plan we know is consistent
	}
	was := stepOrderString(suffix)
	copy(suffix, reordered)
	n.emit("xmatch.reorder", "%s => %s", was, stepOrderString(suffix))
}

// reassignSuffixPredicates redistributes the suffix steps' cross
// predicates over their new order: each predicate moves to the first
// step (in execution order, i.e. walking the call order backwards) whose
// archive completes its alias set. The predicates of steps before the
// suffix are untouched — those nodes have already been called with their
// assignments. Returns false if any predicate cannot be parsed or
// placed; the caller then aborts the re-order.
func reassignSuffixPredicates(suffix []plan.Step) bool {
	type pred struct {
		src     string
		aliases []string
	}
	var preds []pred
	for i := range suffix {
		for _, src := range suffix[i].CrossWhere {
			e, err := sqlparse.ParseExpr(src)
			if err != nil {
				return false
			}
			preds = append(preds, pred{src: src, aliases: sqlparse.Tables(e)})
		}
		suffix[i].CrossWhere = nil
	}
	assigned := 0
	available := map[string]bool{}
	for i := len(suffix) - 1; i >= 0; i-- {
		if suffix[i].DropOut {
			continue
		}
		available[suffix[i].Alias] = true
		for j := range preds {
			if preds[j].src == "" {
				continue
			}
			ready := true
			for _, a := range preds[j].aliases {
				if !available[a] {
					ready = false
					break
				}
			}
			if ready {
				suffix[i].CrossWhere = append(suffix[i].CrossWhere, preds[j].src)
				preds[j].src = ""
				assigned++
			}
		}
		sort.Strings(suffix[i].CrossWhere)
	}
	return assigned == len(preds)
}

// sameStepOrder reports whether two step slices list archives in the
// same order.
func sameStepOrder(a, b []plan.Step) bool {
	for i := range a {
		if a[i].Archive != b[i].Archive {
			return false
		}
	}
	return true
}

// stepOrderString renders a call order compactly for trace events.
func stepOrderString(steps []plan.Step) string {
	names := make([]string, len(steps))
	for i := range steps {
		names[i] = steps[i].Archive
	}
	return strings.Join(names, "->")
}

// endpointHost extracts the host (the nettrace throughput-registry key)
// from a SOAP endpoint URL.
func endpointHost(endpoint string) string {
	u, err := url.Parse(endpoint)
	if err != nil {
		return ""
	}
	return u.Host
}

// observeSeedEstimate feeds the calibration from a seed-step execution
// and emits the estimate-vs-actual trace event the EXPLAIN tooling
// reads. Only statistics-based estimates calibrate: a count-star bound
// is already exact.
func (n *Node) observeSeedEstimate(step plan.Step, actual int) {
	if step.EstRows > 0 {
		n.emit("xmatch.estimate", "table %s: est=%.0f actual=%d", step.Table, step.EstRows, actual)
	}
	if step.StatsBased && step.EstRows > 0 {
		n.calib.observe(step.Table, step.EstRows, float64(actual))
	}
}

// calibration learns, per table, how far the node's own statistics
// estimates run from observed reality. Every seed-step execution
// compares the plan's estimate for this node against the rows the step
// actually produced (seed output is exactly "candidates in AREA passing
// the local predicate" — the quantity StatsSummary estimates; extend
// steps are skipped, their output confounds the incoming tuples). The
// residual folds into a running ratio that future StatsSummary answers
// and suffix re-pricings multiply in, damped and clamped so one odd
// query cannot capsize the planner.
type calibration struct {
	mu     sync.Mutex
	ratios map[string]float64
}

// calibClamp bounds the learned ratio: beyond 8x off, the statistics
// themselves are the problem and scaling them further just amplifies
// noise.
const calibClamp = 8.0

// observe folds one (estimate, actual) pair for the table into the
// learned ratio with a half-step in log space.
func (c *calibration) observe(table string, est, actual float64) {
	if est <= 0 || actual < 0 {
		return
	}
	if actual < 1 {
		actual = 1 // log-space guard; "nothing survived" still calibrates
	}
	residual := actual / est
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ratios == nil {
		c.ratios = map[string]float64{}
	}
	r, ok := c.ratios[table]
	if !ok {
		r = 1
	}
	r *= math.Sqrt(residual)
	if r > calibClamp {
		r = calibClamp
	}
	if r < 1/calibClamp {
		r = 1 / calibClamp
	}
	c.ratios[table] = r
}

// ratio returns the learned correction for the table (1 when nothing has
// been observed).
func (c *calibration) ratio(table string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.ratios[table]
	if !ok {
		return 1
	}
	return r
}
