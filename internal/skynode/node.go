// Package skynode implements a SkyNode (§5.1): an autonomous archive
// wrapped behind the four SkyQuery web services — Information, Metadata,
// Query, and CrossMatch — plus the chunk-fetch operation used for large
// results. The wrapper hides the archive's internals (here the
// internal/storage engine with its HTM index) and presents the uniform
// SOAP surface the Portal expects.
//
// The CrossMatch service realizes the daisy chain of §5.3: a node that is
// not last in the plan's call order forwards the plan to the next node
// first, then folds its own observations into the partial tuples that flow
// back, and finally returns the extended tuples to its caller.
//
// # Predicate pushdown below the HTM search
//
// Each chain step (seed, extend, drop-out — see step.go) compiles its
// LocalWhere/CrossWhere predicates once and evaluates them with the typed
// batch engine over natively gathered candidate columns. Before any of
// that, the step mines the predicate sequence with eval.AnalyzeChainPrune
// for conjuncts comparing a candidate-table column against a constant and
// hands them to the archive table's zone maps (storage.CandPruner): HTM
// candidates whose per-1024-row block provably cannot satisfy such a
// conjunct are dropped inside the index walk — before their position is
// computed, before the AREA containment test, before the chi-square gate,
// and before a single cell is gathered. The pruning obeys the same
// error-exactness contract as the base-table zone maps (never hide or
// invent an error or a drop-out veto w.r.t. the row engines' AND
// short-circuit order), so results are bit-identical with pruning on or
// off; SetCandPrune exists only so benchmarks can measure the difference.
// The surviving candidates flow through the pre-gather prune -> typed
// gather -> chi2 gate -> residual-program pipeline in unchanged search
// order, in batches whose flush threshold a per-step eval.BatchSizer
// adapts to observed selectivity (drop-out steps that veto early shrink
// their batches; steps draining full useful batches grow back).
//
// Two storage counters prove the work was skipped end to end:
// storage.CandBlocksPruned (zone blocks proven dead below a search) and
// storage.CandRowsGathered (candidate rows that actually reached a
// batch). The CI perf-regression gate defends the resulting trajectory:
// BENCH_scan.json records the pruned vs unpruned chain-step timings and
// CI fails when any engine regresses >15% against the checked-in file.
package skynode

import (
	"fmt"
	"sync"
	"sync/atomic"

	"skyquery/internal/dataset"
	"skyquery/internal/eval"
	"skyquery/internal/soap"
	"skyquery/internal/storage"
	"skyquery/internal/value"
	"skyquery/internal/wsdl"
)

// SOAPAction names of the SkyNode services.
const (
	ActionInformation = "urn:skyquery:Information"
	ActionMetadata    = "urn:skyquery:Metadata"
	ActionQuery       = "urn:skyquery:Query"
	ActionCrossMatch  = "urn:skyquery:CrossMatch"
)

// Actions lists every SOAP action a SkyNode serves. ActionStats is
// declared in stats.go.
var Actions = []string{
	ActionInformation, ActionMetadata, ActionQuery, ActionCrossMatch,
	ActionStats, soap.FetchAction,
}

// Event is a trace point emitted through Config.OnEvent; the F3 experiment
// uses it to verify the execution order of Figure 3.
type Event struct {
	// Node is the emitting archive's name.
	Node string
	// Kind is one of "query", "xmatch.recv", "xmatch.forward",
	// "xmatch.seed", "xmatch.step", "xmatch.dropout", "xmatch.return".
	Kind string
	// Detail is a human-readable annotation (row counts etc).
	Detail string
}

// Config assembles a SkyNode.
type Config struct {
	// Name is the archive name used in queries (e.g. "SDSS"). Required.
	Name string
	// DB is the wrapped database. Required.
	DB *storage.DB
	// PrimaryTable is the table holding one row per object with its sky
	// position (§5.1: "A primary table stores the unique sky position for
	// each astronomical object"). Required, must exist and have a
	// spatial index.
	PrimaryTable string
	// RACol and DecCol name the position columns of the primary table.
	RACol, DecCol string
	// SigmaArcsec is the survey's positional standard error, reported by
	// the Information service. Required, > 0.
	SigmaArcsec float64
	// Client is used for daisy-chain calls to other nodes; nil gets a
	// default SOAP client.
	Client *soap.Client
	// ChunkRows bounds rows per response message; 0 means 5000.
	ChunkRows int
	// MessageLimit configures the server's accepted message size;
	// 0 means soap.DefaultMessageLimit.
	MessageLimit int64
	// Parallelism bounds the worker pool each cross-match chain step
	// partitions its tuples across. 0 defers to the plan's hint and then
	// to GOMAXPROCS; 1 recovers the sequential executor. Output is
	// bit-identical at every setting.
	Parallelism int
	// Admission configures the step-execution admission gate (see
	// admission.go). The zero value disables admission: every step runs
	// immediately, as before the gate existed.
	Admission Admission
	// Codec selects the server's response codec policy; the default
	// negotiates the binary columnar format with clients that accept it.
	Codec soap.Codec
	// OnEvent, when set, receives trace events. It must be fast and
	// concurrency-safe.
	OnEvent func(Event)
}

// Node is a running SkyNode.
type Node struct {
	cfg    Config
	client *soap.Client
	server *soap.Server
	chunks soap.ChunkStore
	gate   *Gate

	// calib learns per-table corrections for the statistics estimates
	// (see reorder.go).
	calib calibration

	// traces holds per-table batch-utilization history: each chain step's
	// adaptive sizer learns its floor from the table's recorded trace and
	// records its own observations back for the next query.
	traceMu sync.Mutex
	traces  map[string]*eval.BatchTrace

	// queriesServed counts Query service calls (cache-warming metric).
	queriesServed atomic.Int64
	// tuplesIn/tuplesOut count cross-match rows received and emitted.
	tuplesIn  atomic.Int64
	tuplesOut atomic.Int64
}

// New validates the configuration and builds a node.
func New(cfg Config) (*Node, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("skynode: config needs a Name")
	}
	if cfg.DB == nil {
		return nil, fmt.Errorf("skynode %s: config needs a DB", cfg.Name)
	}
	if cfg.SigmaArcsec <= 0 {
		return nil, fmt.Errorf("skynode %s: SigmaArcsec must be positive", cfg.Name)
	}
	primary, ok := cfg.DB.Table(cfg.PrimaryTable)
	if !ok {
		return nil, fmt.Errorf("skynode %s: primary table %q does not exist", cfg.Name, cfg.PrimaryTable)
	}
	if !primary.HasSpatial() {
		return nil, fmt.Errorf("skynode %s: primary table %q has no spatial index", cfg.Name, cfg.PrimaryTable)
	}
	if cfg.RACol == "" || cfg.DecCol == "" {
		return nil, fmt.Errorf("skynode %s: RACol and DecCol are required", cfg.Name)
	}
	if primary.Schema().Index(cfg.RACol) < 0 || primary.Schema().Index(cfg.DecCol) < 0 {
		return nil, fmt.Errorf("skynode %s: position columns %q/%q not in %q",
			cfg.Name, cfg.RACol, cfg.DecCol, cfg.PrimaryTable)
	}
	if cfg.ChunkRows == 0 {
		cfg.ChunkRows = 5000
	}
	n := &Node{cfg: cfg, client: cfg.Client, gate: NewGate(cfg.Name, cfg.Admission)}
	if n.client == nil {
		n.client = &soap.Client{}
	}
	n.server = soap.NewServer()
	n.server.MessageLimit = cfg.MessageLimit
	n.server.Codec = cfg.Codec
	n.server.Handle(ActionInformation, n.handleInformation)
	n.server.Handle(ActionMetadata, n.handleMetadata)
	n.server.Handle(ActionQuery, n.handleQuery)
	n.server.Handle(ActionCrossMatch, n.handleCrossMatch)
	n.server.Handle(ActionStats, n.handleStats)
	n.server.Handle(soap.FetchAction, n.chunks.FetchHandler())
	return n, nil
}

// Name returns the archive name.
func (n *Node) Name() string { return n.cfg.Name }

// Server returns the SOAP server; it implements http.Handler.
func (n *Node) Server() *soap.Server { return n.server }

// SetWSDL generates and installs the node's WSDL document for the given
// public endpoint URL.
func (n *Node) SetWSDL(endpoint string) error {
	doc, err := wsdl.Document(wsdl.Service{
		Name:     "SkyNode." + n.cfg.Name,
		Endpoint: endpoint,
		Operations: []wsdl.Operation{
			{Name: "Information", Action: ActionInformation, Doc: "archive constants: positional error, primary table"},
			{Name: "Metadata", Action: ActionMetadata, Doc: "complete schema information"},
			{Name: "Query", Action: ActionQuery, Doc: "general-purpose database querying"},
			{Name: "CrossMatch", Action: ActionCrossMatch, Doc: "one step of the federated cross match"},
			{Name: "StatsSummary", Action: ActionStats, Doc: "column-statistics selectivity estimate for planning"},
			{Name: "Fetch", Action: soap.FetchAction, Doc: "continuation fetch for chunked results"},
		},
	})
	if err != nil {
		return err
	}
	n.server.WSDL = doc
	return nil
}

// Stats reports service counters.
func (n *Node) Stats() (queries, tuplesIn, tuplesOut int64) {
	return n.queriesServed.Load(), n.tuplesIn.Load(), n.tuplesOut.Load()
}

// AdmissionStats reports the admission gate's counters (all zero when
// admission is disabled).
func (n *Node) AdmissionStats() GateStats { return n.gate.Stats() }

// ChunkPending reports how many chunked transfers the node currently
// holds parked for continuation fetches (test instrumentation: a
// cancelled consumer must release these promptly, not leak them to the
// TTL sweep).
func (n *Node) ChunkPending() int { return n.chunks.Pending() }

// batchTrace returns the node's recorded batch-utilization trace for
// the table, creating an empty one on first use. Chain steps build
// their adaptive sizers from it, so a table whose history shows
// drop-out-heavy batches starts the next query with a learned floor
// below the MinAdaptiveBatch default.
func (n *Node) batchTrace(table string) *eval.BatchTrace {
	n.traceMu.Lock()
	defer n.traceMu.Unlock()
	if n.traces == nil {
		n.traces = map[string]*eval.BatchTrace{}
	}
	tr := n.traces[table]
	if tr == nil {
		tr = &eval.BatchTrace{}
		n.traces[table] = tr
	}
	return tr
}

// admit funnels one step execution through the admission gate,
// converting a shed into the retryable Overloaded SOAP fault.
func (n *Node) admit(weight int64) (func(), error) {
	release, err := n.gate.Acquire(weight)
	if err != nil {
		n.emit("admission.shed", "%v", err)
		return nil, &soap.Fault{Code: "soap:Server", String: err.Error(), Detail: soap.FaultDetailOverloaded}
	}
	return release, nil
}

func (n *Node) emit(kind, format string, args ...interface{}) {
	if n.cfg.OnEvent == nil {
		return
	}
	n.cfg.OnEvent(Event{Node: n.cfg.Name, Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// resultToDataSet converts a storage result to the wire data set.
func resultToDataSet(res *storage.Result) *dataset.DataSet {
	d := &dataset.DataSet{}
	for _, c := range res.Columns {
		d.Columns = append(d.Columns, dataset.Column{Name: c.Name, Type: c.Type})
	}
	d.Rows = res.Rows
	return d
}

// datasetSchema converts wire columns to a storage schema.
func datasetSchema(d *dataset.DataSet) storage.Schema {
	s := make(storage.Schema, len(d.Columns))
	for i, c := range d.Columns {
		s[i] = storage.ColumnDef{Name: c.Name, Type: c.Type}
	}
	return s
}

// typeOfCell returns a column type for a schema derived from values,
// defaulting NULL cells to FLOAT.
func typeOfCell(v value.Value) value.Type {
	if v.IsNull() {
		return value.FloatType
	}
	return v.Type()
}
