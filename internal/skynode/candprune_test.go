package skynode

import (
	"strings"
	"testing"

	"skyquery/internal/dataset"
	"skyquery/internal/plan"
	"skyquery/internal/storage"
	"skyquery/internal/survey"
	"skyquery/internal/value"
)

// pruneNodes builds multi-zone-block archives (several thousand rows each,
// ZoneBlockRows = 1024) so candidate pruning has blocks to kill, without
// any SOAP plumbing — the tests drive localStep directly.
func pruneNodes(t *testing.T, bodies int) map[string]*Node {
	t.Helper()
	field := survey.GenerateField(testRegion(), bodies, 0.4, 1001)
	nodes := map[string]*Node{}
	for _, cfg := range defaultConfigs() {
		a := survey.Observe(field, cfg)
		db, err := a.BuildDB()
		if err != nil {
			t.Fatal(err)
		}
		n, err := New(Config{Name: cfg.Name, DB: db, PrimaryTable: survey.TableName,
			RACol: "ra", DecCol: "dec", SigmaArcsec: cfg.SigmaArcsec})
		if err != nil {
			t.Fatal(err)
		}
		tab, _ := db.Table(survey.TableName)
		if tab.RowCount() < 2*storage.ZoneBlockRows {
			t.Fatalf("%s: only %d rows — not enough zone blocks for a pruning test", cfg.Name, tab.RowCount())
		}
		nodes[cfg.Name] = n
	}
	return nodes
}

func prunePlan(steps ...plan.Step) *plan.Plan {
	return &plan.Plan{
		QueryID:   "prune-test",
		Threshold: 3.5,
		Area:      plan.Area{RA: 185, Dec: -0.5, RadiusArcsec: 900},
		Steps:     steps,
	}
}

func sameDataSet(t *testing.T, label string, got, want *dataset.DataSet) {
	t.Helper()
	if len(got.Columns) != len(want.Columns) {
		t.Fatalf("%s: %d columns, want %d", label, len(got.Columns), len(want.Columns))
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			g, w := got.Rows[i][j], want.Rows[i][j]
			if !value.Equal(g, w) || g.Type() != w.Type() {
				t.Fatalf("%s: row %d col %d = %v, want %v", label, i, j, g, w)
			}
		}
	}
}

// runStep executes one localStep with candidate pruning on or off and
// returns the output plus the counter deltas.
func runStep(t *testing.T, n *Node, p *plan.Plan, step plan.Step, in *dataset.DataSet, prune bool) (out *dataset.DataSet, blocksPruned, rowsGathered int64) {
	t.Helper()
	prev := SetCandPrune(prune)
	defer SetCandPrune(prev)
	b0, r0 := storage.CandBlocksPruned(), storage.CandRowsGathered()
	out, err := n.localStep(p, step, in)
	if err != nil {
		t.Fatalf("localStep: %v", err)
	}
	return out, storage.CandBlocksPruned() - b0, storage.CandRowsGathered() - r0
}

// TestSeedStepCandPruning: a prunable seed predicate must produce the
// identical data set while gathering strictly fewer candidates and
// pruning at least one block.
func TestSeedStepCandPruning(t *testing.T) {
	nodes := pruneNodes(t, 5000)
	step := plan.Step{Archive: "SDSS", Alias: "O", Table: survey.TableName, SigmaArcsec: 0.1,
		LocalWhere: "O.ra < 184.92 AND O.flux > 0", Columns: []string{"object_id", "flux"}}
	p := prunePlan(step)

	want, b0, r0 := runStep(t, nodes["SDSS"], p, step, nil, false)
	got, b1, r1 := runStep(t, nodes["SDSS"], p, step, nil, true)
	sameDataSet(t, "seed", got, want)
	if want.NumRows() == 0 {
		t.Fatal("degenerate test: seed produced no tuples")
	}
	if b0 != 0 {
		t.Errorf("unpruned run pruned %d blocks", b0)
	}
	if b1 == 0 {
		t.Error("pruned run pruned no blocks")
	}
	if r1 >= r0 {
		t.Errorf("pruned run gathered %d candidate rows, unpruned %d — expected a cut", r1, r0)
	}
}

// TestExtendStepCandPruning: the mandatory-archive step with a prunable
// local predicate (plus a cross predicate to keep that path exercised)
// must extend identically, at parallelism 1 and 4.
func TestExtendStepCandPruning(t *testing.T) {
	nodes := pruneNodes(t, 5000)
	seedStep := plan.Step{Archive: "TWOMASS", Alias: "T", Table: survey.TableName, SigmaArcsec: 0.2,
		Columns: []string{"object_id", "flux"}}
	extStep := plan.Step{Archive: "SDSS", Alias: "O", Table: survey.TableName, SigmaArcsec: 0.1,
		LocalWhere: "O.ra < 184.92", CrossWhere: []string{"O.flux - T.flux > -100"},
		Columns: []string{"object_id", "flux"}}
	p := prunePlan(extStep, seedStep)

	seed, _, _ := runStep(t, nodes["TWOMASS"], p, seedStep, nil, false)
	if seed.NumRows() == 0 {
		t.Fatal("degenerate test: empty seed")
	}
	want, _, r0 := runStep(t, nodes["SDSS"], p, extStep, seed, false)
	got, b1, r1 := runStep(t, nodes["SDSS"], p, extStep, seed, true)
	sameDataSet(t, "extend", got, want)
	if want.NumRows() == 0 {
		t.Fatal("degenerate test: no extended tuples")
	}
	if b1 == 0 || r1 >= r0 {
		t.Errorf("pruned extend: %d blocks pruned, %d rows gathered (unpruned %d)", b1, r1, r0)
	}

	p4 := *p
	p4.Parallelism = 4
	got4, _, _ := runStep(t, nodes["SDSS"], &p4, extStep, seed, true)
	sameDataSet(t, "extend par=4", got4, want)
}

// TestDropOutStepCandPruning: a prunable veto predicate must veto the
// identical tuple set — pruning can never flip a veto.
func TestDropOutStepCandPruning(t *testing.T) {
	nodes := pruneNodes(t, 5000)
	seedStep := plan.Step{Archive: "TWOMASS", Alias: "T", Table: survey.TableName, SigmaArcsec: 0.2,
		Columns: []string{"object_id"}}
	dropStep := plan.Step{Archive: "FIRST", Alias: "P", Table: survey.TableName, SigmaArcsec: 0.4,
		LocalWhere: "P.ra < 184.92", DropOut: true}
	p := prunePlan(dropStep, seedStep)

	seed, _, _ := runStep(t, nodes["TWOMASS"], p, seedStep, nil, false)
	want, _, r0 := runStep(t, nodes["FIRST"], p, dropStep, seed, false)
	got, b1, r1 := runStep(t, nodes["FIRST"], p, dropStep, seed, true)
	sameDataSet(t, "dropout", got, want)
	if want.NumRows() == 0 || want.NumRows() == seed.NumRows() {
		t.Fatalf("degenerate test: %d of %d tuples survived the veto", want.NumRows(), seed.NumRows())
	}
	if b1 == 0 || r1 >= r0 {
		t.Errorf("pruned dropout: %d blocks pruned, %d rows gathered (unpruned %d)", b1, r1, r0)
	}
}

// TestCandPruningErrorOrderExactness pins the prune conditions against
// the row engines' AND short-circuit: a prunable conjunct ahead of an
// erroring one may hide the error (the row engines short-circuit it away
// anyway), while an erroring conjunct ahead of the prunable one disables
// pruning so the error surfaces — identically on both paths.
func TestCandPruningErrorOrderExactness(t *testing.T) {
	nodes := pruneNodes(t, 5000)

	// Prunable-first: object_id < 0 is FALSE on every row, so the row
	// engines never evaluate the division. All blocks prune (PrefixSafe,
	// no NULLs) and nothing errors on either path.
	safe := plan.Step{Archive: "SDSS", Alias: "O", Table: survey.TableName, SigmaArcsec: 0.1,
		LocalWhere: "O.object_id < 0 AND O.flux / 0 > 1", Columns: []string{"object_id"}}
	p := prunePlan(safe)
	want, _, _ := runStep(t, nodes["SDSS"], p, safe, nil, false)
	got, b1, r1 := runStep(t, nodes["SDSS"], p, safe, nil, true)
	sameDataSet(t, "prunable-first", got, want)
	if want.NumRows() != 0 {
		t.Fatalf("prunable-first produced %d tuples, want 0", want.NumRows())
	}
	if b1 == 0 || r1 != 0 {
		t.Errorf("prunable-first: %d blocks pruned, %d rows gathered — want every block pruned, zero gathers", b1, r1)
	}

	// Error-first: the division precedes the prunable conjunct, so
	// PrefixSafe is false, nothing prunes, and both paths surface the
	// same error.
	errStep := safe
	errStep.LocalWhere = "O.flux / 0 > 1 AND O.object_id < 0"
	pErr := prunePlan(errStep)
	run := func(prune bool) error {
		prev := SetCandPrune(prune)
		defer SetCandPrune(prev)
		_, err := nodes["SDSS"].localStep(pErr, errStep, nil)
		return err
	}
	e0, e1 := run(false), run(true)
	if e0 == nil || e1 == nil {
		t.Fatalf("error-first: errors = (%v, %v), want both non-nil", e0, e1)
	}
	if e0.Error() != e1.Error() {
		t.Errorf("error-first: pruned error %q != unpruned %q", e1, e0)
	}
	if !strings.Contains(e0.Error(), "zero") && !strings.Contains(e0.Error(), "division") {
		t.Logf("note: error text is %q", e0)
	}
}

// TestCandPruningAllNullColumn: the flags column is NULL everywhere, so a
// statically error-free comparison against it prunes every block — the
// chain step answers from zone statistics alone.
func TestCandPruningAllNullColumn(t *testing.T) {
	nodes := pruneNodes(t, 5000)
	step := plan.Step{Archive: "SDSS", Alias: "O", Table: survey.TableName, SigmaArcsec: 0.1,
		LocalWhere: "O.flags = 1", Columns: []string{"object_id"}}
	p := prunePlan(step)
	want, _, r0 := runStep(t, nodes["SDSS"], p, step, nil, false)
	got, b1, r1 := runStep(t, nodes["SDSS"], p, step, nil, true)
	sameDataSet(t, "all-null", got, want)
	if want.NumRows() != 0 {
		t.Fatalf("all-null flags matched %d tuples", want.NumRows())
	}
	if r0 == 0 {
		t.Fatal("degenerate test: the unpruned run had no candidates")
	}
	if b1 == 0 || r1 != 0 {
		t.Errorf("all-null: %d blocks pruned, %d rows gathered — want every block pruned, zero gathers", b1, r1)
	}
}
