package skynode

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"skyquery/internal/dataset"
	"skyquery/internal/eval"
	"skyquery/internal/plan"
	"skyquery/internal/sphere"
	"skyquery/internal/sqlparse"
	"skyquery/internal/storage"
	"skyquery/internal/value"
	"skyquery/internal/xmatch"
)

// The wire form of partial tuples (accumulator columns followed by
// carried "alias.column" payload columns) is defined in internal/xmatch;
// this file consumes it via xmatch.AccColumns, AccToCells and CellsToAcc.

// candPruneEnabled gates the pre-gather candidate pruning below the HTM
// search. On by default; benchmarks flip it off to measure the unpruned
// (PR 4) path against the pruned one.
var candPruneEnabled atomic.Bool

func init() { candPruneEnabled.Store(true) }

// SetCandPrune toggles candidate zone pruning in the chain steps and
// returns the previous setting. It exists for benchmarks and tests;
// results are identical either way (pruning is exact), only the work
// performed differs.
func SetCandPrune(on bool) bool { return candPruneEnabled.Swap(on) }

// scratchList is the chain steps' free-list of per-worker batch scratch.
// Unlike a per-call sync.Pool it tracks every scratch it created, so the
// step can Release them when it finishes — their typed-vector payloads
// and evaluator slabs then return to eval's shared pools and the next
// federated query reuses them instead of re-allocating.
type scratchList[T any] struct {
	mu   sync.Mutex
	news func() T
	free []T
	all  []T
}

func newScratchList[T any](news func() T) *scratchList[T] {
	return &scratchList[T]{news: news}
}

func (l *scratchList[T]) get() T {
	l.mu.Lock()
	if n := len(l.free); n > 0 {
		sc := l.free[n-1]
		l.free = l.free[:n-1]
		l.mu.Unlock()
		return sc
	}
	l.mu.Unlock()
	sc := l.news()
	l.mu.Lock()
	l.all = append(l.all, sc)
	l.mu.Unlock()
	return sc
}

func (l *scratchList[T]) put(sc T) {
	l.mu.Lock()
	l.free = append(l.free, sc)
	l.mu.Unlock()
}

// release runs fn over every scratch ever created (idle or not — callers
// invoke it after the step's workers have finished).
func (l *scratchList[T]) release(fn func(T)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, sc := range l.all {
		fn(sc)
	}
	l.all, l.free = nil, nil
}

// stepRunner is one chain step compiled and ready to execute page by
// page: predicates are parsed, compiled, and bound once when the runner
// is built; each run call then processes one batch of incoming tuples
// through the same pruned search → typed gather → chi-square gate →
// residual pipeline. The folded (whole-set) path and the streaming path
// share the same runner, which is what keeps them bit-identical.
type stepRunner struct {
	// outCols is the step's output tuple schema, known before any row is
	// processed (streaming emits it as the schema frame up front).
	outCols []dataset.Column
	// seed produces the seed step's 1-tuples; nil for non-seed runners.
	seed func() ([][]value.Value, error)
	// run extends (or veto-filters) one batch of incoming tuples; nil
	// for seed runners.
	run func(rows [][]value.Value) ([][]value.Value, error)
	// close releases the runner's pooled scratch. Must be called once.
	close func()
}

// newStepRunner resolves the step's table, area, and predicates and
// compiles the appropriate runner. incomingCols is nil for the seed
// step; otherwise it is the incoming partial-tuple schema.
func (n *Node) newStepRunner(p *plan.Plan, step plan.Step, incomingCols []dataset.Column) (*stepRunner, error) {
	table, ok := n.cfg.DB.Table(step.Table)
	if !ok {
		return nil, fmt.Errorf("table %q does not exist", step.Table)
	}
	if !table.HasSpatial() {
		return nil, fmt.Errorf("table %q has no spatial index", step.Table)
	}
	area, err := p.Area.Region()
	if err != nil {
		return nil, err
	}

	var localWhere sqlparse.Expr
	if step.LocalWhere != "" {
		e, err := sqlparse.ParseExpr(step.LocalWhere)
		if err != nil {
			return nil, fmt.Errorf("bad local predicate %q: %w", step.LocalWhere, err)
		}
		localWhere = e
	}
	var crossWhere []sqlparse.Expr
	for _, src := range step.CrossWhere {
		e, err := sqlparse.ParseExpr(src)
		if err != nil {
			return nil, fmt.Errorf("bad cross predicate %q: %w", src, err)
		}
		crossWhere = append(crossWhere, e)
	}

	if incomingCols == nil {
		if step.DropOut {
			return nil, fmt.Errorf("drop-out archive cannot seed the chain")
		}
		return n.newSeedRunner(p, table, step, area, localWhere)
	}
	if len(incomingCols) < xmatch.NumAccCols {
		return nil, fmt.Errorf("malformed partial-tuple schema: %d columns, want at least %d", len(incomingCols), xmatch.NumAccCols)
	}
	if step.DropOut {
		return n.newDropOutRunner(p, table, step, area, localWhere, incomingCols)
	}
	return n.newExtendRunner(p, table, step, area, localWhere, crossWhere, incomingCols)
}

// localStep performs this node's part of the cross match over a whole
// incoming tuple set. For the seed node (incoming == nil) it selects its
// objects in the AREA satisfying the local predicate and emits 1-tuples.
// For a mandatory archive it extends each incoming tuple with every
// nearby candidate that keeps the chi-square within threshold. For a
// drop-out archive it vetoes tuples that have such a candidate and
// passes the rest through unchanged. The streaming path runs the same
// compiled step per incoming page instead (see crossMatchStream).
func (n *Node) localStep(p *plan.Plan, step plan.Step, incoming *dataset.DataSet) (*dataset.DataSet, error) {
	var incomingCols []dataset.Column
	if incoming != nil {
		incomingCols = incoming.Columns
	}
	r, err := n.newStepRunner(p, step, incomingCols)
	if err != nil {
		return nil, err
	}
	defer r.close()

	if incoming == nil {
		n.emit("xmatch.seed", "table %s", step.Table)
		rows, err := r.seed()
		if err != nil {
			return nil, err
		}
		n.observeSeedEstimate(step, len(rows))
		return &dataset.DataSet{Columns: r.outCols, Rows: rows}, nil
	}

	prefix := "xm_"
	if step.DropOut {
		n.emit("xmatch.dropout", "%d tuples in", incoming.NumRows())
		prefix = "xd_"
	} else {
		n.emit("xmatch.step", "%d tuples in", incoming.NumRows())
	}
	// Paper fidelity for the folded path: the incoming tuples land in a
	// temporary table first, as §5.3's stored procedure does, and the
	// step reads them back from it.
	tmp, err := n.cfg.DB.CreateTemp(prefix+step.Alias, datasetSchema(incoming))
	if err != nil {
		return nil, err
	}
	defer n.cfg.DB.Drop(tmp.Name())
	for _, row := range incoming.Rows {
		if err := tmp.Append(row...); err != nil {
			return nil, err
		}
	}
	rows := make([][]value.Value, tmp.RowCount())
	for i := range rows {
		rows[i] = tmp.Row(i)
	}
	outRows, err := r.run(rows)
	if err != nil {
		return nil, err
	}
	return &dataset.DataSet{Columns: r.outCols, Rows: outRows}, nil
}

// newSeedRunner compiles the first (innermost) query of the chain: all
// objects in the area passing the local predicate become 1-tuples. The
// HTM region walk collects candidate rows in index order — with
// candidates from zone blocks the local predicate provably kills dropped
// below the search, before a position is computed or a cell gathered —
// then the survivors are split into batches of eval.BatchSize rows, each
// batch runs the typed local predicate over natively gathered column
// vectors, and the batches are sharded across the worker pool with
// results merged back in scan order — bit-identical to a sequential,
// row-at-a-time pass.
func (n *Node) newSeedRunner(p *plan.Plan, table *storage.Table, step plan.Step, area sphere.Region, localWhere sqlparse.Expr) (*stepRunner, error) {
	localProg, err := eval.CompileTyped(localWhere, table.Layout(step.Alias))
	if err != nil {
		return nil, fmt.Errorf("compiling local predicate %q: %w", step.LocalWhere, err)
	}
	schema := table.Schema()
	schemaLen := len(schema)
	bs := eval.BatchSize()
	refs := localProg.Refs()
	// Workers draw whole batches; the free-list hands each worker its own
	// batch + evaluator scratch and releases everything to the shared
	// slab pools when the step finishes.
	type seedScratch struct {
		batch *eval.TBatch
		ev    *eval.TypedEval
	}
	scratch := newScratchList(func() *seedScratch {
		return &seedScratch{batch: eval.NewTBatch(schemaLen, bs), ev: localProg.NewEval(bs)}
	})
	var pruner *storage.CandPruner
	if candPruneEnabled.Load() {
		// The seed predicate's slots are schema positions already, so the
		// single-expression analysis applies unchanged.
		ps := eval.AnalyzePrune(localWhere, table.Layout(step.Alias),
			func(s int) value.Type { return schema[s].Type })
		pruner = table.CandPruner(ps)
	}
	seed := func() ([][]value.Value, error) {
		var cand []int
		var candPos []sphere.Vec
		sb := &storage.SearchBatch{Rows: make([]int, 0, bs), Pos: make([]sphere.Vec, 0, bs), Prune: pruner}
		if err := table.SearchRegionBatch(area, sb, func(rows []int, poss []sphere.Vec) bool {
			cand = append(cand, rows...)
			candPos = append(candPos, poss...)
			return true
		}); err != nil {
			return nil, err
		}
		nBatches := (len(cand) + bs - 1) / bs
		return forEachOrdered(nBatches, n.parallelism(p.Parallelism), func(bi int) ([][]value.Value, error) {
			lo := bi * bs
			hi := min(lo+bs, len(cand))
			chunk := cand[lo:hi]
			sc := scratch.get()
			defer scratch.put(sc)
			// The search that produced cand has returned, so its read lock is
			// gone; the gathers and cell reads below need their own section to
			// stay consistent against concurrent appends.
			table.BeginRead()
			defer table.EndRead()
			sc.batch.SetLen(len(chunk))
			for _, ci := range refs {
				table.GatherColumn(sc.batch.Col(ci), ci, chunk)
			}
			sel, _, err := localProg.Filter(sc.ev, sc.batch, sc.ev.Seq(len(chunk)))
			if err != nil {
				return nil, err
			}
			group := make([][]value.Value, 0, len(sel))
			for _, i := range sel {
				acc := xmatch.Accumulator{}.Add(candPos[lo+i], step.SigmaArcsec)
				cells := xmatch.AccToCells(acc)
				cells = append(cells, n.columnCells(table, step, chunk[i])...)
				group = append(group, cells)
			}
			return group, nil
		})
	}
	return &stepRunner{
		outCols: n.tupleColumns(nil, table, step),
		seed:    seed,
		close: func() {
			scratch.release(func(sc *seedScratch) { sc.batch.Release(); sc.ev.Release() })
		},
	}, nil
}

// newExtendRunner compiles the mandatory-archive chain step: §5.3's
// spatial join, where each incoming tuple searches this archive's
// primary table around its current best position. (The folded path
// parks the incoming tuples in a temporary table first, as the paper's
// stored procedure does; see localStep.)
func (n *Node) newExtendRunner(p *plan.Plan, table *storage.Table, step plan.Step, area sphere.Region,
	localWhere sqlparse.Expr, crossWhere []sqlparse.Expr, incomingCols []dataset.Column) (*stepRunner, error) {

	priorCols := incomingCols[xmatch.NumAccCols:]

	// Compile the step's predicates once against the combined tuple
	// layout: slots [0, len(priorCols)) hold the incoming tuple's carried
	// columns, slots from npc up hold this archive's candidate row in
	// schema order. References qualified by this step's alias bind to the
	// candidate; everything else binds to the carried columns (with
	// MapEnv's bare-name fallback). Binding errors therefore surface here,
	// before any tuple is touched.
	npc := len(priorCols)
	schema := table.Schema()
	width := npc + len(schema)
	tl := table.Layout(step.Alias)
	localProg, err := eval.CompileTyped(localWhere, offsetLayout(tl, npc))
	if err != nil {
		return nil, fmt.Errorf("compiling local predicate %q: %w", step.LocalWhere, err)
	}
	priorLayout := eval.MapLayout{}
	for i, c := range priorCols {
		priorLayout[c.Name] = i
	}
	combined := eval.LayoutFunc(func(tbl, col string) (int, error) {
		if tbl == step.Alias {
			s, err := tl.Slot(tbl, col)
			if err != nil {
				return 0, err
			}
			return npc + s, nil
		}
		return priorLayout.Slot(tbl, col)
	})
	crossProgs := make([]*eval.TypedProgram, len(crossWhere))
	for i, cw := range crossWhere {
		if crossProgs[i], err = eval.CompileTyped(cw, combined); err != nil {
			return nil, fmt.Errorf("compiling cross predicate %q: %w", step.CrossWhere[i], err)
		}
	}
	// Pre-gather pruning: mine the step's whole predicate sequence (local
	// conjuncts, then each cross predicate's, the evaluation order below)
	// for comparisons of a candidate column against a constant, and build
	// one shared per-block pruner over this archive's zone maps. Workers
	// consult it below the HTM search, so candidates from provably dead
	// blocks never get a position test, a chi-square gate entry, or a
	// typed gather. The residual programs above run unchanged on the
	// survivors — zone statistics prove blocks dead, never rows live.
	var pruner *storage.CandPruner
	if candPruneEnabled.Load() {
		seq := []eval.PruneExpr{{Expr: localWhere, Layout: offsetLayout(tl, npc)}}
		for _, cw := range crossWhere {
			seq = append(seq, eval.PruneExpr{Expr: cw, Layout: combined})
		}
		ps := eval.AnalyzeChainPrune(seq,
			func(s int) value.Type {
				if s < npc {
					return priorCols[s].Type
				}
				return schema[s-npc].Type
			},
			func(s int) (int, bool) { return s - npc, s >= npc },
		)
		pruner = table.CandPruner(ps)
	}
	// Adaptive batching: the step's flush threshold follows the local
	// predicate's observed selectivity, so a step whose full batches are
	// mostly discarded stops gathering and broadcasting full-width ones.
	// The floor comes from the table's recorded utilization history.
	sizer := eval.NewBatchSizerFromTrace(n.batchTrace(step.Table))
	accept := func(_ int, pos sphere.Vec) bool {
		// Every observation in the result must lie in the query AREA.
		return area.Contains(pos)
	}
	// Slot classes for batch filling: carried-column slots are broadcast
	// once per chunk (they are constant for a tuple), the local
	// predicate's candidate columns are gathered for every candidate, and
	// cross-only candidate columns only for the rows that survived both
	// the local predicate and the chi-square gate.
	localRefs := candidateRefs(npc, localProg)
	crossRefs := candidateRefsExcept(npc, crossProgs, localRefs)
	var priorSlots []int
	for _, s := range localProg.Refs() {
		if s < npc {
			priorSlots = append(priorSlots, s)
		}
	}
	for _, cp := range crossProgs {
		for _, s := range cp.Refs() {
			if s < npc {
				priorSlots = append(priorSlots, s)
			}
		}
	}
	priorSlots = eval.UnionRefs(priorSlots)

	bs := eval.BatchSize()
	type extScratch struct {
		batch    *eval.TBatch
		localEv  *eval.TypedEval
		crossEvs []*eval.TypedEval
		sb       storage.SearchBatch
		accs     []xmatch.Accumulator
		gate     []int
	}
	scratch := newScratchList(func() *extScratch {
		sc := &extScratch{
			batch:   eval.NewTBatch(width, bs),
			localEv: localProg.NewEval(bs),
			sb: storage.SearchBatch{
				Rows:   make([]int, 0, bs),
				Pos:    make([]sphere.Vec, 0, bs),
				Prune:  pruner,
				Accept: accept,
			},
			accs: make([]xmatch.Accumulator, bs),
			gate: make([]int, 0, bs),
		}
		for _, cp := range crossProgs {
			sc.crossEvs = append(sc.crossEvs, cp.NewEval(bs))
		}
		return sc
	})
	// Each incoming tuple extends independently (§5.3 is embarrassingly
	// parallel per partial tuple); workers each take whole tuples, draw
	// the tuple's candidate blocks from the pruned batch search in search
	// order, and the per-tuple extension groups are merged in input order,
	// so the output is identical to the sequential, row-at-a-time scan's.
	// One run call handles one batch of tuples; the scratch free-list and
	// the adaptive sizer persist across calls, so a streamed step warms up
	// once, not per page.
	run := func(rows [][]value.Value) ([][]value.Value, error) {
		return forEachOrdered(len(rows), n.parallelism(p.Parallelism), func(tRow int) ([][]value.Value, error) {
			row := rows[tRow]
			acc, err := xmatch.CellsToAcc(row)
			if err != nil {
				return nil, err
			}
			radius := acc.SearchRadius(p.Threshold, step.SigmaArcsec)
			if radius <= 0 {
				return nil, nil
			}
			sc := scratch.get()
			defer scratch.put(sc)
			var ext [][]value.Value
			var stepErr error
			process := func(cand []int, poss []sphere.Vec) bool {
				cn := len(cand)
				sc.batch.SetLen(cn)
				for _, s := range priorSlots {
					// Carried columns are constant per tuple: broadcast the cell
					// in its own dynamic type, so typed kernels and the boxed
					// row engines see identical operands.
					sc.batch.Col(s).Broadcast(row[xmatch.NumAccCols+s], cn)
				}
				for _, ci := range localRefs {
					table.GatherColumn(sc.batch.Col(npc+ci), ci, cand)
				}
				sel, _, err := localProg.Filter(sc.localEv, sc.batch, sc.localEv.Seq(cn))
				if err != nil {
					stepErr = err
					return false
				}
				sizer.Observe(cn, len(sel))
				// The chi-square gate sits between the local and the cross
				// predicates, as in the row-at-a-time loop.
				gate := sc.gate[:0]
				for _, i := range sel {
					next := acc.Add(poss[i], step.SigmaArcsec)
					if next.Matches(p.Threshold) {
						sc.accs[i] = next
						gate = append(gate, i)
					}
				}
				for _, ci := range crossRefs {
					table.GatherColumnSel(sc.batch.Col(npc+ci), ci, cand, gate)
				}
				for i, cp := range crossProgs {
					if len(gate) == 0 {
						break
					}
					if gate, _, err = cp.Filter(sc.crossEvs[i], sc.batch, gate); err != nil {
						stepErr = err
						return false
					}
				}
				for _, i := range gate {
					cells := xmatch.AccToCells(sc.accs[i])
					cells = append(cells, row[xmatch.NumAccCols:]...)
					cells = append(cells, n.columnCells(table, step, cand[i])...)
					ext = append(ext, cells)
				}
				return true
			}
			searchCap := sphere.CapAround(acc.Best(), radius)
			sc.sb.Limit = sizer.Size()
			if err := table.SearchCapBatch(searchCap, &sc.sb, process); err != nil {
				return nil, err
			}
			if stepErr != nil {
				return nil, stepErr
			}
			return ext, nil
		})
	}
	return &stepRunner{
		outCols: n.tupleColumns(incomingCols, table, step),
		run:     run,
		close: func() {
			scratch.release(func(sc *extScratch) {
				sc.batch.Release()
				sc.localEv.Release()
				for _, ev := range sc.crossEvs {
					ev.Release()
				}
			})
		},
	}, nil
}

// offsetLayout shifts every slot of a layout by off: extendStep compiles
// the candidate-table predicate against the combined tuple row, whose
// candidate portion starts at the offset.
func offsetLayout(l eval.Layout, off int) eval.Layout {
	return eval.LayoutFunc(func(table, column string) (int, error) {
		s, err := l.Slot(table, column)
		if err != nil {
			return 0, err
		}
		return off + s, nil
	})
}

// candidateRefs extracts the candidate-table column indices (slots at or
// beyond the carried-column prefix) a program reads.
func candidateRefs(npc int, prog *eval.TypedProgram) []int {
	var out []int
	for _, s := range prog.Refs() {
		if s >= npc {
			out = append(out, s-npc)
		}
	}
	return out
}

// candidateRefsExcept is candidateRefs over several programs, minus
// indices already in the exclude list (they are filled earlier).
func candidateRefsExcept(npc int, progs []*eval.TypedProgram, exclude []int) []int {
	skip := map[int]bool{}
	for _, ci := range exclude {
		skip[ci] = true
	}
	var out []int
	for _, p := range progs {
		for _, ci := range candidateRefs(npc, p) {
			if !skip[ci] {
				skip[ci] = true
				out = append(out, ci)
			}
		}
	}
	sort.Ints(out)
	return out
}

// newDropOutRunner compiles the drop-out step: it vetoes tuples with a
// matching observation in this archive — the "exclusive outer join" of
// §5.2. Surviving tuples pass through with their schema unchanged.
func (n *Node) newDropOutRunner(p *plan.Plan, table *storage.Table, step plan.Step, area sphere.Region,
	localWhere sqlparse.Expr, incomingCols []dataset.Column) (*stepRunner, error) {

	// The veto predicate only sees this archive's candidate rows, so it
	// compiles against the plain table layout.
	localProg, err := eval.CompileTyped(localWhere, table.Layout(step.Alias))
	if err != nil {
		return nil, fmt.Errorf("compiling local predicate %q: %w", step.LocalWhere, err)
	}
	schema := table.Schema()
	refs := localProg.Refs()
	bs := eval.BatchSize()
	// A candidate from a pruned block can never pass the veto predicate
	// (its conjunct is never TRUE there), so dropping it below the search
	// cannot flip a veto — and the exactness conditions guarantee it
	// cannot surface or hide an error either.
	var pruner *storage.CandPruner
	if candPruneEnabled.Load() {
		// Veto-predicate slots are schema positions, like the seed step's.
		ps := eval.AnalyzePrune(localWhere, table.Layout(step.Alias),
			func(s int) value.Type { return schema[s].Type })
		pruner = table.CandPruner(ps)
	}
	// Drop-out steps profit most from adaptive batching: a veto usually
	// arrives early in a batch, and everything gathered past it was
	// wasted work, so frequently-vetoing steps shrink their batches —
	// and the table's recorded trace lets the next query start with a
	// floor matched to how early the vetoes actually landed.
	sizer := eval.NewBatchSizerFromTrace(n.batchTrace(step.Table))
	accept := func(_ int, pos sphere.Vec) bool { return area.Contains(pos) }
	type vetoScratch struct {
		batch *eval.TBatch
		ev    *eval.TypedEval
		sb    storage.SearchBatch
	}
	scratch := newScratchList(func() *vetoScratch {
		return &vetoScratch{
			batch: eval.NewTBatch(len(schema), bs),
			ev:    localProg.NewEval(bs),
			sb: storage.SearchBatch{
				Rows:   make([]int, 0, bs),
				Pos:    make([]sphere.Vec, 0, bs),
				Prune:  pruner,
				Accept: accept,
			},
		}
	})
	// Veto checks are independent per tuple; survivors are merged back in
	// input order (see newExtendRunner). Candidates batch in search order;
	// the first gate-matching candidate vetoes. The row-at-a-time loop
	// stopped there, so a predicate error at a *later* candidate of the
	// same batch is suppressed exactly as that loop (which never reached
	// it) would have — the veto wins, the error does not exist.
	run := func(rows [][]value.Value) ([][]value.Value, error) {
		return forEachOrdered(len(rows), n.parallelism(p.Parallelism), func(tRow int) ([][]value.Value, error) {
			row := rows[tRow]
			acc, err := xmatch.CellsToAcc(row)
			if err != nil {
				return nil, err
			}
			radius := acc.SearchRadius(p.Threshold, step.SigmaArcsec)
			vetoed := false
			if radius > 0 {
				sc := scratch.get()
				var stepErr error
				process := func(cand []int, poss []sphere.Vec) bool {
					cn := len(cand)
					sc.batch.SetLen(cn)
					for _, ci := range refs {
						table.GatherColumn(sc.batch.Col(ci), ci, cand)
					}
					sel, _, err := localProg.Filter(sc.ev, sc.batch, sc.ev.Seq(cn))
					// sel holds the candidates before any failing one, in
					// search order: a gate match among them vetoes before the
					// failure would have been reached.
					for _, i := range sel {
						if acc.Add(poss[i], step.SigmaArcsec).Matches(p.Threshold) {
							vetoed = true
							sizer.Observe(cn, i+1)
							return false
						}
					}
					if err != nil {
						stepErr = err
						return false
					}
					sizer.Observe(cn, cn)
					return true
				}
				searchCap := sphere.CapAround(acc.Best(), radius)
				sc.sb.Limit = sizer.Size()
				err = table.SearchCapBatch(searchCap, &sc.sb, process)
				scratch.put(sc)
				if err != nil {
					return nil, err
				}
				if stepErr != nil {
					return nil, stepErr
				}
			}
			if vetoed {
				return nil, nil
			}
			return [][]value.Value{row}, nil
		})
	}
	return &stepRunner{
		outCols: incomingCols,
		run:     run,
		close: func() {
			scratch.release(func(sc *vetoScratch) { sc.batch.Release(); sc.ev.Release() })
		},
	}, nil
}

// tupleColumns builds the output tuple schema: accumulator columns, the
// incoming tuple's carried columns, then this step's contributed columns
// qualified as "alias.column".
func (n *Node) tupleColumns(incomingCols []dataset.Column, table *storage.Table, step plan.Step) []dataset.Column {
	cols := xmatch.AccColumns()
	if incomingCols != nil {
		cols = append(cols, incomingCols[xmatch.NumAccCols:]...)
	}
	schema := table.Schema()
	for _, c := range step.Columns {
		typ := value.FloatType
		if ci := schema.Index(c); ci >= 0 {
			typ = schema[ci].Type
		}
		cols = append(cols, dataset.Column{Name: step.Alias + "." + c, Type: typ})
	}
	return cols
}

// columnCells extracts this step's contributed column values for a row of
// the primary table. Unknown columns yield NULL (they would have failed
// validation at the Portal already).
func (n *Node) columnCells(table *storage.Table, step plan.Step, row int) []value.Value {
	schema := table.Schema()
	out := make([]value.Value, 0, len(step.Columns))
	for _, c := range step.Columns {
		ci := schema.Index(c)
		if ci < 0 {
			out = append(out, value.Null)
			continue
		}
		// Unlocked read: columnCells runs inside the chain step's
		// read-only phase (often under a Search* callback).
		out = append(out, table.ValueUnlocked(row, ci))
	}
	return out
}
