package skynode

import (
	"fmt"
	"testing"

	"skyquery/internal/dataset"
	"skyquery/internal/plan"
	"skyquery/internal/sphere"
	"skyquery/internal/survey"
)

// benchChainNodes builds the two-archive federation the chain-step
// benchmarks share: ~23k-row archives (two dozen zone blocks each) with a
// deliberately sloppy astrometry (σ = 5") so each tuple's search cap
// holds dozens of candidates — the regime where per-candidate work, not
// per-tuple HTM cover computation, dominates the extend step.
func benchChainNodes(b testing.TB) []*Node {
	field := survey.GenerateField(sphere.NewCap(185, -0.5, 0.25), 24000, 0.4, 1001)
	var nodes []*Node
	for _, cfg := range defaultConfigs()[:2] {
		cfg.SigmaArcsec = 5
		a := survey.Observe(field, cfg)
		db, err := a.BuildDB()
		if err != nil {
			b.Fatal(err)
		}
		n, err := New(Config{Name: cfg.Name, DB: db, PrimaryTable: survey.TableName,
			RACol: "ra", DecCol: "dec", SigmaArcsec: cfg.SigmaArcsec})
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	return nodes
}

// benchChainPlan is the selective cross-match of BenchmarkChainStepPruned:
// the extend step's local predicate zone-kills every SDSS block but the
// first, so pre-gather pruning drops most candidates below the HTM search.
func benchChainPlan() *plan.Plan {
	return &plan.Plan{
		QueryID:   "bench-pruned",
		Threshold: 3.5,
		Area:      plan.Area{RA: 185, Dec: -0.5, RadiusArcsec: 900},
		Steps: []plan.Step{
			{Archive: "SDSS", Alias: "O", Endpoint: "x", Table: survey.TableName, SigmaArcsec: 5,
				LocalWhere: "O.object_id <= 1024", Columns: []string{"object_id", "flux"}},
			{Archive: "TWOMASS", Alias: "T", Endpoint: "x", Table: survey.TableName, SigmaArcsec: 5,
				Columns: []string{"object_id", "flux"}},
		},
	}
}

// runBenchChainStep seeds TWOMASS once and times the SDSS extend step
// with candidate pruning on or off.
func runBenchChainStep(b *testing.B, nodes []*Node, p *plan.Plan, seed *dataset.DataSet, prune bool) *dataset.DataSet {
	prev := SetCandPrune(prune)
	defer SetCandPrune(prev)
	var out *dataset.DataSet
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, err = nodes[0].localStep(p, p.Steps[0], seed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	return out
}

// BenchmarkChainStepPruned measures predicate pushdown below the HTM
// search: the same selective extend step with candidate zone pruning off
// (the PR 4 path) and on, with an output-identity check between the two.
func BenchmarkChainStepPruned(b *testing.B) {
	nodes := benchChainNodes(b)
	p := benchChainPlan()
	seed, err := nodes[1].localStep(p, p.Steps[1], nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("seed tuples: %d", seed.NumRows())
	var unpruned, pruned *dataset.DataSet
	b.Run("extend-unpruned", func(b *testing.B) {
		unpruned = runBenchChainStep(b, nodes, p, seed, false)
	})
	b.Run("extend-pruned", func(b *testing.B) {
		pruned = runBenchChainStep(b, nodes, p, seed, true)
	})
	if unpruned.NumRows() != pruned.NumRows() || pruned.NumRows() == 0 {
		b.Fatalf("extend output identity: pruned %d rows, unpruned %d", pruned.NumRows(), unpruned.NumRows())
	}

	// The seed step of the same selective cross-match: one region search
	// over the whole archive, where pruning drops every candidate of a
	// dead block before its position is even computed.
	seedPlan := benchChainPlan()
	seedStep := seedPlan.Steps[0] // the SDSS step with the prunable predicate
	var seedUnpruned, seedPruned *dataset.DataSet
	b.Run("seed-unpruned", func(b *testing.B) {
		prev := SetCandPrune(false)
		defer SetCandPrune(prev)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			if seedUnpruned, err = nodes[0].localStep(seedPlan, seedStep, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("seed-pruned", func(b *testing.B) {
		prev := SetCandPrune(true)
		defer SetCandPrune(prev)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			if seedPruned, err = nodes[0].localStep(seedPlan, seedStep, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	if seedUnpruned.NumRows() != seedPruned.NumRows() || seedPruned.NumRows() == 0 {
		b.Fatalf("seed output identity: pruned %d rows, unpruned %d", seedPruned.NumRows(), seedUnpruned.NumRows())
	}
}

// BenchmarkLocalStep isolates one extendStep from the SOAP plumbing: the
// seed tuples are produced once, then the mandatory step over the densest
// archive is timed at several worker counts.
func BenchmarkLocalStep(b *testing.B) {
	field := survey.GenerateField(sphere.NewCap(185, -0.5, 0.25), 24000, 0.4, 1001)
	var nodes []*Node
	for _, cfg := range defaultConfigs() {
		a := survey.Observe(field, cfg)
		db, err := a.BuildDB()
		if err != nil {
			b.Fatal(err)
		}
		n, err := New(Config{Name: cfg.Name, DB: db, PrimaryTable: survey.TableName,
			RACol: "ra", DecCol: "dec", SigmaArcsec: cfg.SigmaArcsec})
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	p := &plan.Plan{
		QueryID:   "bench",
		Threshold: 3.5,
		Area:      plan.Area{RA: 185, Dec: -0.5, RadiusArcsec: 900},
		Steps: []plan.Step{
			{Archive: "SDSS", Alias: "O", Endpoint: "x", Table: survey.TableName, SigmaArcsec: 0.1, Columns: []string{"object_id", "flux"}},
			{Archive: "TWOMASS", Alias: "T", Endpoint: "x", Table: survey.TableName, SigmaArcsec: 0.2, Columns: []string{"object_id", "flux"}},
		},
	}
	var seed *dataset.DataSet
	{
		var err error
		seed, err = nodes[1].localStep(p, p.Steps[1], nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("seed tuples: %d", seed.NumRows())
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			p2 := *p
			p2.Parallelism = workers
			for i := 0; i < b.N; i++ {
				out, err := nodes[0].localStep(&p2, p2.Steps[0], seed)
				if err != nil {
					b.Fatal(err)
				}
				if out.NumRows() == 0 {
					b.Fatal("no tuples")
				}
			}
		})
	}
}
