package skynode

import (
	"fmt"
	"testing"

	"skyquery/internal/dataset"
	"skyquery/internal/plan"
	"skyquery/internal/sphere"
	"skyquery/internal/survey"
)

// BenchmarkLocalStep isolates one extendStep from the SOAP plumbing: the
// seed tuples are produced once, then the mandatory step over the densest
// archive is timed at several worker counts.
func BenchmarkLocalStep(b *testing.B) {
	field := survey.GenerateField(sphere.NewCap(185, -0.5, 0.25), 24000, 0.4, 1001)
	var nodes []*Node
	for _, cfg := range defaultConfigs() {
		a := survey.Observe(field, cfg)
		db, err := a.BuildDB()
		if err != nil {
			b.Fatal(err)
		}
		n, err := New(Config{Name: cfg.Name, DB: db, PrimaryTable: survey.TableName,
			RACol: "ra", DecCol: "dec", SigmaArcsec: cfg.SigmaArcsec})
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	p := &plan.Plan{
		QueryID:   "bench",
		Threshold: 3.5,
		Area:      plan.Area{RA: 185, Dec: -0.5, RadiusArcsec: 900},
		Steps: []plan.Step{
			{Archive: "SDSS", Alias: "O", Endpoint: "x", Table: survey.TableName, SigmaArcsec: 0.1, Columns: []string{"object_id", "flux"}},
			{Archive: "TWOMASS", Alias: "T", Endpoint: "x", Table: survey.TableName, SigmaArcsec: 0.2, Columns: []string{"object_id", "flux"}},
		},
	}
	var seed *dataset.DataSet
	{
		var err error
		seed, err = nodes[1].localStep(p, p.Steps[1], nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("seed tuples: %d", seed.NumRows())
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			p2 := *p
			p2.Parallelism = workers
			for i := 0; i < b.N; i++ {
				out, err := nodes[0].localStep(&p2, p2.Steps[0], seed)
				if err != nil {
					b.Fatal(err)
				}
				if out.NumRows() == 0 {
					b.Fatal("no tuples")
				}
			}
		})
	}
}
