package skynode

// The chain-step slice of the benchmark trajectory: BenchmarkChainStepPruned
// measured programmatically and merged into the BENCH_scan.json the eval
// package writes (see internal/eval/benchjson_test.go). Regenerate the full
// trajectory with the two documented commands, in order:
//
//	go test ./internal/eval/ -run TestWriteBenchScanJSON -bench-scan-json "$(pwd)/BENCH_scan.json"
//	go test ./internal/skynode/ -run TestWriteBenchChainJSON -bench-chain-json "$(pwd)/BENCH_scan.json"
//
// The file is only touched when the flag is set; the test is otherwise a
// no-op skip, so `go test ./...` stays deterministic.

import (
	"encoding/json"
	"flag"
	"os"
	"testing"

	"skyquery/internal/dataset"
	"skyquery/internal/plan"
)

var benchChainJSON = flag.String("bench-chain-json", "", "merge the chain-step pruning benchmark into this BENCH_scan.json")

func TestWriteBenchChainJSON(t *testing.T) {
	if *benchChainJSON == "" {
		t.Skip("pass -bench-chain-json=PATH (an existing BENCH_scan.json) to record the chain-step benchmark")
	}
	raw, err := os.ReadFile(*benchChainJSON)
	if err != nil {
		t.Fatalf("the eval trajectory must be written first (TestWriteBenchScanJSON): %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parsing %s: %v", *benchChainJSON, err)
	}

	nodes := benchChainNodes(t)
	p := benchChainPlan()
	seed, err := nodes[1].localStep(p, p.Steps[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(step plan.Step, in *dataset.DataSet, prune bool) int64 {
		prev := SetCandPrune(prune)
		defer SetCandPrune(prev)
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := nodes[0].localStep(p, step, in); err != nil {
					b.Fatal(err)
				}
			}
		})
		return res.NsPerOp()
	}
	extendUnpruned := measure(p.Steps[0], seed, false)
	extendPruned := measure(p.Steps[0], seed, true)
	seedUnpruned := measure(p.Steps[0], nil, false)
	seedPruned := measure(p.Steps[0], nil, true)

	speedup := func(unpruned, pruned int64) float64 {
		if pruned <= 0 {
			return 0
		}
		return float64(int64(float64(unpruned)/float64(pruned)*100+0.5)) / 100
	}
	doc["chain_step"] = map[string]any{
		"benchmark":   "BenchmarkChainStepPruned: selective cross-match, candidate zone pruning off (PR 4 path) vs on",
		"local_where": p.Steps[0].LocalWhere,
		"seed_tuples": seed.NumRows(),
		"extend": map[string]any{
			"unpruned_ns_per_op": extendUnpruned,
			"pruned_ns_per_op":   extendPruned,
			"speedup":            speedup(extendUnpruned, extendPruned),
		},
		"seed": map[string]any{
			"unpruned_ns_per_op": seedUnpruned,
			"pruned_ns_per_op":   seedPruned,
			"speedup":            speedup(seedUnpruned, seedPruned),
		},
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*benchChainJSON, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("merged chain_step: extend %d -> %d ns/op, seed %d -> %d ns/op",
		extendUnpruned, extendPruned, seedUnpruned, seedPruned)
}
