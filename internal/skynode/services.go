package skynode

import (
	"encoding/xml"
	"fmt"

	"skyquery/internal/dataset"
	"skyquery/internal/plan"
	"skyquery/internal/soap"
	"skyquery/internal/sqlparse"
)

// InformationRequest asks for the archive constants (§5.1: "astronomy
// specific constants of that SkyNode such as the object position
// estimation errors, the name of primary table ...").
type InformationRequest struct {
	XMLName xml.Name `xml:"Information"`
}

// InformationResponse carries the archive constants.
type InformationResponse struct {
	XMLName      xml.Name `xml:"InformationResponse"`
	Name         string   `xml:"name,attr"`
	SigmaArcsec  float64  `xml:"sigma,attr"`
	PrimaryTable string   `xml:"primaryTable,attr"`
	RACol        string   `xml:"raCol,attr"`
	DecCol       string   `xml:"decCol,attr"`
	ObjectCount  int64    `xml:"objectCount,attr"`
	SpatialLevel int      `xml:"spatialLevel,attr"`
}

// MetadataRequest asks for complete schema information.
type MetadataRequest struct {
	XMLName xml.Name `xml:"Metadata"`
}

// ColumnMeta describes one column.
type ColumnMeta struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr"`
}

// TableMeta describes one table.
type TableMeta struct {
	Name    string       `xml:"name,attr"`
	Rows    int64        `xml:"rows,attr"`
	Spatial bool         `xml:"spatial,attr"`
	Columns []ColumnMeta `xml:"Column"`
}

// MetadataResponse carries the full catalog.
type MetadataResponse struct {
	XMLName xml.Name    `xml:"MetadataResponse"`
	Tables  []TableMeta `xml:"Table"`
}

// QueryRequest is the general-purpose query service request: a query in
// the SkyQuery dialect restricted to this node's tables.
type QueryRequest struct {
	XMLName xml.Name `xml:"Query"`
	SQL     string   `xml:"SQL"`
}

// CrossMatchRequest carries the federated execution plan.
type CrossMatchRequest struct {
	XMLName xml.Name  `xml:"CrossMatch"`
	Plan    plan.Plan `xml:"Plan"`
}

func (n *Node) handleInformation(r *soap.Request) (interface{}, error) {
	var req InformationRequest
	if err := r.Decode(&req); err != nil {
		return nil, err
	}
	primary, _ := n.cfg.DB.Table(n.cfg.PrimaryTable)
	return &InformationResponse{
		Name:         n.cfg.Name,
		SigmaArcsec:  n.cfg.SigmaArcsec,
		PrimaryTable: n.cfg.PrimaryTable,
		RACol:        n.cfg.RACol,
		DecCol:       n.cfg.DecCol,
		ObjectCount:  int64(primary.RowCount()),
		SpatialLevel: primary.SpatialLevel(),
	}, nil
}

func (n *Node) handleMetadata(r *soap.Request) (interface{}, error) {
	var req MetadataRequest
	if err := r.Decode(&req); err != nil {
		return nil, err
	}
	resp := &MetadataResponse{}
	for _, name := range n.cfg.DB.Names() {
		t, ok := n.cfg.DB.Table(name)
		if !ok {
			continue
		}
		tm := TableMeta{Name: name, Rows: int64(t.RowCount()), Spatial: t.HasSpatial()}
		for _, c := range t.Schema() {
			tm.Columns = append(tm.Columns, ColumnMeta{Name: c.Name, Type: c.Type.String()})
		}
		resp.Tables = append(resp.Tables, tm)
	}
	return resp, nil
}

func (n *Node) handleQuery(r *soap.Request) (interface{}, error) {
	var req QueryRequest
	if err := r.Decode(&req); err != nil {
		return nil, err
	}
	q, err := sqlparse.Parse(req.SQL)
	if err != nil {
		return nil, fmt.Errorf("skynode %s: %w", n.cfg.Name, err)
	}
	release, err := n.admit(0)
	if err != nil {
		return nil, err
	}
	defer release()
	res, err := n.cfg.DB.Execute(q)
	if err != nil {
		return nil, fmt.Errorf("skynode %s: %w", n.cfg.Name, err)
	}
	n.queriesServed.Add(1)
	n.emit("query", "%d rows for %q", len(res.Rows), req.SQL)
	return n.chunks.Respond(resultToDataSet(res), n.cfg.ChunkRows), nil
}

func (n *Node) handleCrossMatch(r *soap.Request) (interface{}, error) {
	var req CrossMatchRequest
	if err := r.Decode(&req); err != nil {
		return nil, err
	}
	p := &req.Plan
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("skynode %s: %w", n.cfg.Name, err)
	}
	idx := p.StepIndex(n.cfg.Name)
	if idx < 0 {
		return nil, fmt.Errorf("skynode %s: not part of plan %s", n.cfg.Name, p.QueryID)
	}
	step := p.Steps[idx]
	n.emit("xmatch.recv", "plan %s step %d/%d", p.QueryID, idx+1, len(p.Steps))

	var incoming *dataset.DataSet
	if next := p.Next(n.cfg.Name); next != nil {
		n.emit("xmatch.forward", "-> %s", next.Archive)
		var first soap.ChunkedData
		if err := n.client.Call(next.Endpoint, ActionCrossMatch, &CrossMatchRequest{Plan: *p}, &first); err != nil {
			return nil, fmt.Errorf("skynode %s: chain call to %s: %w", n.cfg.Name, next.Archive, err)
		}
		ds, err := soap.FetchAll(n.client, next.Endpoint, &first)
		if err != nil {
			return nil, fmt.Errorf("skynode %s: fetch from %s: %w", n.cfg.Name, next.Archive, err)
		}
		n.tuplesIn.Add(int64(ds.NumRows()))
		incoming = ds
	}

	// Admission sits after the downstream fetch on purpose: a slot held
	// across the chain's network wait would let one slow downstream node
	// pin this node's whole budget, and since each node gates only its
	// own local step there is no lock-ordering cycle across the chain.
	release, err := n.admit(estimateDataSetBytes(incoming))
	if err != nil {
		return nil, err
	}
	defer release()
	out, err := n.localStep(p, step, incoming)
	if err != nil {
		return nil, fmt.Errorf("skynode %s: %w", n.cfg.Name, err)
	}
	n.tuplesOut.Add(int64(out.NumRows()))
	n.emit("xmatch.return", "%d tuples", out.NumRows())
	chunkRows := p.ChunkRows
	if chunkRows == 0 {
		chunkRows = n.cfg.ChunkRows
	}
	return n.chunks.Respond(out, chunkRows), nil
}
