package skynode

import (
	"context"
	"encoding/xml"
	"fmt"

	"skyquery/internal/dataset"
	"skyquery/internal/plan"
	"skyquery/internal/soap"
	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
)

// InformationRequest asks for the archive constants (§5.1: "astronomy
// specific constants of that SkyNode such as the object position
// estimation errors, the name of primary table ...").
type InformationRequest struct {
	XMLName xml.Name `xml:"Information"`
}

// InformationResponse carries the archive constants.
type InformationResponse struct {
	XMLName      xml.Name `xml:"InformationResponse"`
	Name         string   `xml:"name,attr"`
	SigmaArcsec  float64  `xml:"sigma,attr"`
	PrimaryTable string   `xml:"primaryTable,attr"`
	RACol        string   `xml:"raCol,attr"`
	DecCol       string   `xml:"decCol,attr"`
	ObjectCount  int64    `xml:"objectCount,attr"`
	SpatialLevel int      `xml:"spatialLevel,attr"`
}

// MetadataRequest asks for complete schema information.
type MetadataRequest struct {
	XMLName xml.Name `xml:"Metadata"`
}

// ColumnMeta describes one column.
type ColumnMeta struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr"`
}

// TableMeta describes one table.
type TableMeta struct {
	Name    string       `xml:"name,attr"`
	Rows    int64        `xml:"rows,attr"`
	Spatial bool         `xml:"spatial,attr"`
	Columns []ColumnMeta `xml:"Column"`
}

// MetadataResponse carries the full catalog.
type MetadataResponse struct {
	XMLName xml.Name    `xml:"MetadataResponse"`
	Tables  []TableMeta `xml:"Table"`
}

// QueryRequest is the general-purpose query service request: a query in
// the SkyQuery dialect restricted to this node's tables.
type QueryRequest struct {
	XMLName xml.Name `xml:"Query"`
	SQL     string   `xml:"SQL"`
}

// CrossMatchRequest carries the federated execution plan.
type CrossMatchRequest struct {
	XMLName xml.Name  `xml:"CrossMatch"`
	Plan    plan.Plan `xml:"Plan"`
	// Isolated tells the node to execute only its own chain step: the
	// step's incoming tuples come from Incoming (absent for a seed step)
	// instead of a chain call to the next step's node, and the node must
	// not re-order the plan suffix. The portal's scatter tier sets it
	// when any archive in the plan is sharded — the portal becomes the
	// coordinator between steps, merging shard outputs deterministically.
	Isolated bool `xml:"isolated,attr,omitempty"`
	// Incoming locates the step's input tuples: a transfer stashed in
	// the coordinator's ChunkStore, drained by token from Endpoint.
	Incoming *IncomingRef `xml:"Incoming,omitempty"`
}

// IncomingRef points a chain step at its stashed incoming tuples.
type IncomingRef struct {
	Endpoint string `xml:"endpoint,attr"`
	Token    string `xml:"token,attr"`
}

func (n *Node) handleInformation(r *soap.Request) (interface{}, error) {
	var req InformationRequest
	if err := r.Decode(&req); err != nil {
		return nil, err
	}
	primary, _ := n.cfg.DB.Table(n.cfg.PrimaryTable)
	return &InformationResponse{
		Name:         n.cfg.Name,
		SigmaArcsec:  n.cfg.SigmaArcsec,
		PrimaryTable: n.cfg.PrimaryTable,
		RACol:        n.cfg.RACol,
		DecCol:       n.cfg.DecCol,
		ObjectCount:  int64(primary.RowCount()),
		SpatialLevel: primary.SpatialLevel(),
	}, nil
}

func (n *Node) handleMetadata(r *soap.Request) (interface{}, error) {
	var req MetadataRequest
	if err := r.Decode(&req); err != nil {
		return nil, err
	}
	resp := &MetadataResponse{}
	for _, name := range n.cfg.DB.Names() {
		t, ok := n.cfg.DB.Table(name)
		if !ok {
			continue
		}
		tm := TableMeta{Name: name, Rows: int64(t.RowCount()), Spatial: t.HasSpatial()}
		for _, c := range t.Schema() {
			tm.Columns = append(tm.Columns, ColumnMeta{Name: c.Name, Type: c.Type.String()})
		}
		resp.Tables = append(resp.Tables, tm)
	}
	return resp, nil
}

func (n *Node) handleQuery(r *soap.Request) (interface{}, error) {
	var req QueryRequest
	if err := r.Decode(&req); err != nil {
		return nil, err
	}
	q, err := sqlparse.Parse(req.SQL)
	if err != nil {
		return nil, fmt.Errorf("skynode %s: %w", n.cfg.Name, err)
	}
	release, err := n.admit(0)
	if err != nil {
		return nil, err
	}
	defer release()
	res, err := n.cfg.DB.Execute(q)
	if err != nil {
		return nil, fmt.Errorf("skynode %s: %w", n.cfg.Name, err)
	}
	n.queriesServed.Add(1)
	n.emit("query", "%d rows for %q", len(res.Rows), req.SQL)
	ds := resultToDataSet(res)
	if r.WantsStream() {
		// Stream the materialized result page by page instead of parking
		// tail chunks: nothing waits in the ChunkStore and the caller
		// holds one page at a time.
		return &soap.ChunkedStream{Run: func(sw *soap.StreamWriter) error {
			if err := sw.Schema(ds.Columns); err != nil {
				return err
			}
			return writePaged(sw, ds.Rows, n.cfg.ChunkRows)
		}}, nil
	}
	return n.chunks.Respond(ds, n.cfg.ChunkRows), nil
}

// writePaged emits rows to the stream in pages of at most chunkRows.
func writePaged(sw *soap.StreamWriter, rows [][]value.Value, chunkRows int) error {
	for off := 0; off < len(rows); off += chunkRows {
		end := off + chunkRows
		if end > len(rows) {
			end = len(rows)
		}
		if err := sw.Page(rows[off:end]); err != nil {
			return err
		}
	}
	return nil
}

func (n *Node) handleCrossMatch(r *soap.Request) (interface{}, error) {
	var req CrossMatchRequest
	if err := r.Decode(&req); err != nil {
		return nil, err
	}
	p := &req.Plan
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("skynode %s: %w", n.cfg.Name, err)
	}
	idx := p.StepIndex(n.cfg.Name)
	if idx < 0 {
		return nil, fmt.Errorf("skynode %s: not part of plan %s", n.cfg.Name, p.QueryID)
	}
	step := p.Steps[idx]
	n.emit("xmatch.recv", "plan %s step %d/%d", p.QueryID, idx+1, len(p.Steps))
	if !req.Isolated {
		n.maybeReorderSuffix(p, idx)
	}
	chunkRows := p.ChunkRows
	if chunkRows == 0 {
		chunkRows = n.cfg.ChunkRows
	}
	ctx := r.Context()
	if r.WantsStream() {
		return n.crossMatchStream(ctx, &req, p, step, chunkRows), nil
	}

	incoming, err := n.stepIncoming(ctx, &req, p)
	if err != nil {
		return nil, err
	}

	// Admission sits after the downstream fetch on purpose: a slot held
	// across the chain's network wait would let one slow downstream node
	// pin this node's whole budget, and since each node gates only its
	// own local step there is no lock-ordering cycle across the chain.
	release, err := n.admit(estimateDataSetBytes(incoming))
	if err != nil {
		return nil, err
	}
	defer release()
	out, err := n.localStep(p, step, incoming)
	if err != nil {
		return nil, fmt.Errorf("skynode %s: %w", n.cfg.Name, err)
	}
	n.tuplesOut.Add(int64(out.NumRows()))
	n.emit("xmatch.return", "%d tuples", out.NumRows())
	return n.chunks.Respond(out, chunkRows), nil
}

// stepIncoming materializes the folded path's incoming tuples: fetched
// from the coordinator's stash in isolated mode, pulled from the next
// chain node otherwise. Seed steps (no downstream, no stash) get nil.
func (n *Node) stepIncoming(ctx context.Context, req *CrossMatchRequest, p *plan.Plan) (*dataset.DataSet, error) {
	if req.Isolated {
		if req.Incoming == nil {
			return nil, nil
		}
		n.emit("xmatch.incoming", "stashed at %s", req.Incoming.Endpoint)
		ds, err := soap.FetchToken(ctx, n.client, req.Incoming.Endpoint, req.Incoming.Token)
		if err != nil {
			return nil, fmt.Errorf("skynode %s: fetch incoming: %w", n.cfg.Name, err)
		}
		n.tuplesIn.Add(int64(ds.NumRows()))
		return ds, nil
	}
	next := p.Next(n.cfg.Name)
	if next == nil {
		return nil, nil
	}
	n.emit("xmatch.forward", "-> %s", next.Archive)
	var first soap.ChunkedData
	if err := n.client.Call(ctx, next.Endpoint, ActionCrossMatch, &CrossMatchRequest{Plan: *p}, &first); err != nil {
		return nil, fmt.Errorf("skynode %s: chain call to %s: %w", n.cfg.Name, next.Archive, err)
	}
	ds, err := soap.FetchAll(ctx, n.client, next.Endpoint, &first)
	if err != nil {
		return nil, fmt.Errorf("skynode %s: fetch from %s: %w", n.cfg.Name, next.Archive, err)
	}
	n.tuplesIn.Add(int64(ds.NumRows()))
	return ds, nil
}

// crossMatchStream is the page-at-a-time form of the chain step: the
// downstream node's partial tuples are consumed as each page arrives,
// every page runs through the same compiled stepRunner as the folded
// path (which is what keeps the two wires bit-identical), and the
// extended tuples are re-paged to the caller at chunkRows rows — an
// extend step can amplify one incoming page arbitrarily, so output
// paging cannot simply mirror input paging. Peak memory here is the
// in-flight page plus its output, not the tuple set. Failures after
// the first byte has been written cannot become SOAP faults any more;
// they travel in-band as columnar error frames and surface to the
// consumer as a typed *dataset.StreamError.
func (n *Node) crossMatchStream(ctx context.Context, req *CrossMatchRequest, p *plan.Plan, step plan.Step, chunkRows int) *soap.ChunkedStream {
	return &soap.ChunkedStream{Run: func(sw *soap.StreamWriter) error {
		if req.Isolated {
			return n.isolatedStream(ctx, req, p, step, chunkRows, sw)
		}
		next := p.Next(n.cfg.Name)
		if next == nil {
			return n.seedStream(p, step, chunkRows, sw)
		}
		n.emit("xmatch.forward", "-> %s", next.Archive)
		st, err := soap.OpenStream(ctx, n.client, next.Endpoint, ActionCrossMatch, &CrossMatchRequest{Plan: *p})
		if err != nil {
			return fmt.Errorf("skynode %s: chain call to %s: %w", n.cfg.Name, next.Archive, err)
		}
		defer st.Close()
		r, err := n.newStepRunner(p, step, st.Columns())
		if err != nil {
			return fmt.Errorf("skynode %s: %w", n.cfg.Name, err)
		}
		defer r.close()
		if step.DropOut {
			n.emit("xmatch.dropout", "streaming pages")
		} else {
			n.emit("xmatch.step", "streaming pages")
		}
		if err := sw.Schema(r.outCols); err != nil {
			return err
		}
		var pending [][]value.Value
		for {
			page, err := st.Next()
			if err != nil {
				return fmt.Errorf("skynode %s: stream from %s: %w", n.cfg.Name, next.Archive, err)
			}
			if page == nil {
				break
			}
			n.tuplesIn.Add(int64(len(page)))
			out, err := n.runPage(r, page)
			if err != nil {
				return fmt.Errorf("skynode %s: %w", n.cfg.Name, err)
			}
			pending = append(pending, out...)
			for len(pending) >= chunkRows {
				if err := sw.Page(pending[:chunkRows:chunkRows]); err != nil {
					return err
				}
				// Copy the tail so written pages' row headers are not
				// pinned by the pending slice's backing array.
				rest := make([][]value.Value, len(pending)-chunkRows)
				copy(rest, pending[chunkRows:])
				pending = rest
			}
		}
		if err := sw.Page(pending); err != nil {
			return err
		}
		n.tuplesOut.Add(int64(sw.Rows()))
		n.emit("xmatch.return", "%d tuples streamed", sw.Rows())
		return nil
	}}
}

// isolatedStream is the streamed form of an isolated chain step: the
// incoming tuples come from the coordinator's stash (or nowhere, for a
// seed), run through the step, and the outputs stream back re-paged.
// The incoming set is materialized — it was already folded when the
// coordinator stashed it — so only the output side streams.
func (n *Node) isolatedStream(ctx context.Context, req *CrossMatchRequest, p *plan.Plan, step plan.Step, chunkRows int, sw *soap.StreamWriter) error {
	if req.Incoming == nil {
		return n.seedStream(p, step, chunkRows, sw)
	}
	incoming, err := n.stepIncoming(ctx, req, p)
	if err != nil {
		return err
	}
	r, err := n.newStepRunner(p, step, incoming.Columns)
	if err != nil {
		return fmt.Errorf("skynode %s: %w", n.cfg.Name, err)
	}
	defer r.close()
	if step.DropOut {
		n.emit("xmatch.dropout", "isolated step")
	} else {
		n.emit("xmatch.step", "isolated step")
	}
	release, err := n.admit(estimateDataSetBytes(incoming))
	if err != nil {
		return err
	}
	out, stepErr := r.run(incoming.Rows)
	release()
	if stepErr != nil {
		return fmt.Errorf("skynode %s: %w", n.cfg.Name, stepErr)
	}
	if err := sw.Schema(r.outCols); err != nil {
		return err
	}
	if err := writePaged(sw, out, chunkRows); err != nil {
		return err
	}
	n.tuplesOut.Add(int64(len(out)))
	n.emit("xmatch.return", "%d tuples streamed", len(out))
	return nil
}

// seedStream emits the seed step's 1-tuples in pages. The seed search
// itself is one local computation (there is no upstream to stream
// from), so admission is charged once around it and released before
// the pages go out on the wire.
func (n *Node) seedStream(p *plan.Plan, step plan.Step, chunkRows int, sw *soap.StreamWriter) error {
	r, err := n.newStepRunner(p, step, nil)
	if err != nil {
		return fmt.Errorf("skynode %s: %w", n.cfg.Name, err)
	}
	defer r.close()
	release, err := n.admit(0)
	if err != nil {
		return err
	}
	n.emit("xmatch.seed", "table %s", step.Table)
	rows, seedErr := r.seed()
	release()
	if seedErr != nil {
		return fmt.Errorf("skynode %s: %w", n.cfg.Name, seedErr)
	}
	n.observeSeedEstimate(step, len(rows))
	if err := sw.Schema(r.outCols); err != nil {
		return err
	}
	if err := writePaged(sw, rows, chunkRows); err != nil {
		return err
	}
	n.tuplesOut.Add(int64(len(rows)))
	n.emit("xmatch.return", "%d tuples streamed", len(rows))
	return nil
}

// runPage charges admission for one in-flight page — its real
// estimated bytes, not a whole-set guess — and holds the weight only
// across the local compute, never across a network wait.
func (n *Node) runPage(r *stepRunner, page [][]value.Value) ([][]value.Value, error) {
	release, err := n.admit(estimateRowsBytes(page))
	if err != nil {
		return nil, err
	}
	defer release()
	return r.run(page)
}
