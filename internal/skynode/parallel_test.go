package skynode

import (
	"fmt"
	"strings"
	"testing"

	"skyquery/internal/value"
)

// groupsFor builds the expected output of forEachOrdered for the fan-out
// fixture: index i contributes i%3 rows tagged (i, k).
func groupsFor(total int) [][]value.Value {
	var out [][]value.Value
	for i := 0; i < total; i++ {
		for k := 0; k < i%3; k++ {
			out = append(out, []value.Value{value.Int(int64(i)), value.Int(int64(k))})
		}
	}
	return out
}

func TestForEachOrderedMatchesSequential(t *testing.T) {
	const total = 500
	want := groupsFor(total)
	for _, workers := range []int{1, 2, 3, 8, 64, total + 10} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			got, err := forEachOrdered(total, workers, func(i int) ([][]value.Value, error) {
				var rows [][]value.Value
				for k := 0; k < i%3; k++ {
					rows = append(rows, []value.Value{value.Int(int64(i)), value.Int(int64(k))})
				}
				return rows, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("rows = %d, want %d", len(got), len(want))
			}
			for i := range want {
				for j := range want[i] {
					if !value.Equal(got[i][j], want[i][j]) {
						t.Fatalf("row %d col %d = %v, want %v", i, j, got[i][j], want[i][j])
					}
				}
			}
		})
	}
}

func TestForEachOrderedReturnsLowestIndexError(t *testing.T) {
	// Regardless of scheduling, the surfaced error must be the one the
	// sequential loop would have hit first.
	for _, workers := range []int{1, 4, 16} {
		_, err := forEachOrdered(100, workers, func(i int) ([][]value.Value, error) {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return nil, fmt.Errorf("boom at %d", i)
			}
			return nil, nil
		})
		if err == nil || err.Error() != "boom at 3" {
			t.Errorf("workers=%d: err = %v, want boom at 3", workers, err)
		}
	}
}

func TestForEachOrderedRecoversWorkerPanic(t *testing.T) {
	// A panic inside a worker goroutine must surface as an error, not
	// crash the process (in an HTTP handler only net/http's recovery
	// protects the sequential path; bare goroutines have none).
	_, err := forEachOrdered(50, 8, func(i int) ([][]value.Value, error) {
		if i == 17 {
			panic("boom")
		}
		return nil, nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked on tuple 17") {
		t.Fatalf("err = %v, want panic surfaced as error", err)
	}
}

func TestForEachOrderedEmpty(t *testing.T) {
	rows, err := forEachOrdered(0, 8, func(int) ([][]value.Value, error) {
		t.Fatal("fn called for empty input")
		return nil, nil
	})
	if err != nil || rows != nil {
		t.Fatalf("got %v, %v", rows, err)
	}
}

func TestNodeParallelismResolution(t *testing.T) {
	mk := func(cfg int) *Node { return &Node{cfg: Config{Parallelism: cfg}} }
	if got := mk(3).parallelism(8); got != 3 {
		t.Errorf("config beats hint: got %d, want 3", got)
	}
	if got := mk(0).parallelism(8); got != 8 {
		t.Errorf("hint when config unset: got %d, want 8", got)
	}
	if got := mk(0).parallelism(0); got < 1 {
		t.Errorf("GOMAXPROCS fallback: got %d, want >= 1", got)
	}
	if got := mk(-5).parallelism(0); got != 1 {
		t.Errorf("negative clamps to sequential: got %d, want 1", got)
	}
}
