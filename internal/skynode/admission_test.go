package skynode

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skyquery/internal/soap"
	"skyquery/internal/survey"
)

func TestGateDisabled(t *testing.T) {
	var g *Gate // nil = disabled
	release, err := g.Acquire(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	release()
	if s := g.Stats(); s != (GateStats{}) {
		t.Errorf("nil gate stats = %+v", s)
	}
	if NewGate("X", Admission{}) != nil {
		t.Error("zero Admission should disable the gate")
	}
}

func TestGateConcurrencyLimit(t *testing.T) {
	g := NewGate("X", Admission{MaxConcurrent: 2, MaxQueue: 100, QueueTimeout: 5 * time.Second})
	var inFlight, peak, done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := g.Acquire(1 << 10)
			if err != nil {
				t.Error(err)
				return
			}
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			release()
			done.Add(1)
		}()
	}
	wg.Wait()
	if done.Load() != 20 {
		t.Errorf("done = %d, want 20 (queued work must complete)", done.Load())
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrency = %d, want <= 2", p)
	}
	s := g.Stats()
	if s.Admitted != 20 || s.Shed != 0 || s.InFlight != 0 || s.QueueDepth != 0 || s.MemoryInUse != 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.Queued == 0 {
		t.Error("expected some admissions to queue")
	}
}

func TestGateQueueFullSheds(t *testing.T) {
	g := NewGate("X", Admission{MaxConcurrent: 1, MaxQueue: -1})
	release, err := g.Acquire(0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.Acquire(0)
	var over *ErrOverloaded
	if !errors.As(err, &over) {
		t.Fatalf("want *ErrOverloaded, got %v", err)
	}
	if over.Node != "X" || over.Waited != 0 {
		t.Errorf("shed = %+v", over)
	}
	release()
	// Capacity is back: admission succeeds again.
	release2, err := g.Acquire(0)
	if err != nil {
		t.Fatal(err)
	}
	release2()
	if s := g.Stats(); s.Shed != 1 || s.Admitted != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestGateDeadlineSheds(t *testing.T) {
	g := NewGate("X", Admission{MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: 20 * time.Millisecond})
	release, err := g.Acquire(0)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	_, err = g.Acquire(0)
	var over *ErrOverloaded
	if !errors.As(err, &over) {
		t.Fatalf("want *ErrOverloaded, got %v", err)
	}
	if over.Waited <= 0 {
		t.Errorf("deadline shed should report the wait, got %+v", over)
	}
	if e := time.Since(start); e < 15*time.Millisecond {
		t.Errorf("shed after %v, want ~20ms queueing first", e)
	}
}

func TestGateMemoryBudget(t *testing.T) {
	g := NewGate("X", Admission{MaxConcurrent: 8, MemoryBudget: 1 << 20, MaxQueue: 4, QueueTimeout: time.Second})
	// A request heavier than the whole budget is clamped, so it can run.
	releaseBig, err := g.Acquire(1 << 40)
	if err != nil {
		t.Fatalf("over-budget single request must clamp and run: %v", err)
	}
	// Budget is saturated: the next admission queues until release.
	admitted := make(chan struct{})
	go func() {
		release, err := g.Acquire(1 << 19)
		if err != nil {
			t.Error(err)
		} else {
			release()
		}
		close(admitted)
	}()
	select {
	case <-admitted:
		t.Fatal("second admission ran while the memory budget was exhausted")
	case <-time.After(30 * time.Millisecond):
	}
	releaseBig()
	select {
	case <-admitted:
	case <-time.After(time.Second):
		t.Fatal("queued admission never ran after release")
	}
}

func TestGateReleaseIdempotent(t *testing.T) {
	g := NewGate("X", Admission{MaxConcurrent: 1})
	release, err := g.Acquire(0)
	if err != nil {
		t.Fatal(err)
	}
	release()
	release() // double release must not free a second slot
	if s := g.Stats(); s.InFlight != 0 {
		t.Errorf("InFlight = %d", s.InFlight)
	}
	r1, err := g.Acquire(0)
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	if s := g.Stats(); s.InFlight != 1 {
		t.Errorf("InFlight after re-acquire = %d, want 1", s.InFlight)
	}
}

// admissionNode builds a tiny node with the given admission config and
// serves it over HTTP.
func admissionNode(t *testing.T, adm Admission) (*Node, *httptest.Server) {
	t.Helper()
	field := survey.GenerateField(testRegion(), 50, 0.4, 1)
	arch := survey.Observe(field, survey.Config{Name: "ADM", SigmaArcsec: 0.1, Completeness: 1, Seed: 7})
	db, err := arch.BuildDB()
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{
		Name: "ADM", DB: db, PrimaryTable: survey.TableName,
		RACol: "ra", DecCol: "dec", SigmaArcsec: 0.1,
		Admission: adm,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(n.Server())
	t.Cleanup(srv.Close)
	return n, srv
}

func TestNodeShedsOverloadedFault(t *testing.T) {
	n, srv := admissionNode(t, Admission{MaxConcurrent: 1, MaxQueue: -1})
	// Deterministically saturate the gate, then query: the request must
	// shed with the typed retryable fault, not queue and not execute.
	release, err := n.gate.Acquire(0)
	if err != nil {
		t.Fatal(err)
	}
	c := &soap.Client{}
	var resp soap.ChunkedData
	err = c.Call(context.Background(), srv.URL, ActionQuery,
		&QueryRequest{SQL: fmt.Sprintf("SELECT object_id FROM %s", survey.TableName)}, &resp)
	if !soap.IsOverloaded(err) {
		t.Fatalf("want retryable overloaded fault, got %v", err)
	}
	if q, _, _ := n.Stats(); q != 0 {
		t.Errorf("shed query still executed (queries=%d)", q)
	}
	if s := n.AdmissionStats(); s.Shed != 1 {
		t.Errorf("stats = %+v", s)
	}

	// After release the same call succeeds — and a retrying client rides
	// out a temporarily held gate on its own.
	release()
	if err := c.Call(context.Background(), srv.URL, ActionQuery,
		&QueryRequest{SQL: fmt.Sprintf("SELECT object_id FROM %s", survey.TableName)}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Data == nil || resp.Data.NumRows() == 0 {
		t.Error("post-release query returned no rows")
	}
}

func TestNodeQueuedQueriesComplete(t *testing.T) {
	n, srv := admissionNode(t, Admission{MaxConcurrent: 1, MaxQueue: 64, QueueTimeout: 10 * time.Second})
	// Hold the only slot briefly; concurrent queries must queue and then
	// all complete once it frees — none shed, none lost.
	release, err := n.gate.Acquire(0)
	if err != nil {
		t.Fatal(err)
	}
	const queries = 8
	errs := make(chan error, queries)
	for i := 0; i < queries; i++ {
		go func() {
			var resp soap.ChunkedData
			c := &soap.Client{}
			errs <- c.Call(context.Background(), srv.URL, ActionQuery,
				&QueryRequest{SQL: fmt.Sprintf("SELECT object_id FROM %s", survey.TableName)}, &resp)
		}()
	}
	time.Sleep(50 * time.Millisecond) // let them reach the queue
	release()
	for i := 0; i < queries; i++ {
		if err := <-errs; err != nil {
			t.Errorf("queued query %d: %v", i, err)
		}
	}
	if q, _, _ := n.Stats(); q != queries {
		t.Errorf("executed %d queries, want %d", q, queries)
	}
	if s := n.AdmissionStats(); s.Shed != 0 {
		t.Errorf("unexpected sheds: %+v", s)
	}
}
