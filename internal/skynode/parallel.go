package skynode

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"skyquery/internal/value"
)

// parallelism resolves the worker count for a chain step: the node's own
// configuration wins, then the plan's hint, then GOMAXPROCS. The result is
// always at least 1; 1 selects the sequential path.
func (n *Node) parallelism(planHint int) int {
	p := n.cfg.Parallelism
	if p == 0 {
		p = planHint
	}
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	return p
}

// forEachOrdered evaluates fn(i) for every i in [0, total) using up to
// workers goroutines and returns the produced row groups concatenated in
// input order, so a parallel run is row-for-row identical to a sequential
// one. fn must be safe for concurrent invocation on distinct indices; a
// nil group contributes nothing.
//
// Indices are handed out through an atomic cursor rather than fixed-size
// shards: tuples whose search radius collapsed to zero are orders of
// magnitude cheaper than tuples with many candidates, and dynamic
// scheduling keeps the workers balanced under that skew. Every index is
// always evaluated (no early abort on error) so the reported error is
// deterministically the one from the lowest failing index, exactly as the
// sequential loop would surface it.
func forEachOrdered(total, workers int, fn func(i int) ([][]value.Value, error)) ([][]value.Value, error) {
	if total == 0 {
		return nil, nil
	}
	if workers > total {
		workers = total
	}
	// A panic in a bare worker goroutine would crash the whole process;
	// inside an HTTP handler it only drops one request. Recover to an
	// error so the parallel path keeps the sequential path's per-request
	// failure domain.
	safeCall := func(i int) (rows [][]value.Value, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("skynode: chain step panicked on tuple %d: %v", i, r)
			}
		}()
		return fn(i)
	}

	if workers <= 1 {
		var out [][]value.Value
		for i := 0; i < total; i++ {
			rows, err := fn(i)
			if err != nil {
				return nil, err
			}
			out = append(out, rows...)
		}
		return out, nil
	}

	groups := make([][][]value.Value, total)
	errs := make([]error, total)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= total {
					return
				}
				groups[i], errs[i] = safeCall(i)
			}
		}()
	}
	wg.Wait()

	n := 0
	for i := range groups {
		if errs[i] != nil {
			return nil, errs[i]
		}
		n += len(groups[i])
	}
	out := make([][]value.Value, 0, n)
	for _, g := range groups {
		out = append(out, g...)
	}
	return out, nil
}
