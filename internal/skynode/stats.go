package skynode

import (
	"encoding/xml"
	"fmt"

	"skyquery/internal/eval"
	"skyquery/internal/plan"
	"skyquery/internal/soap"
	"skyquery/internal/sqlparse"
	"skyquery/internal/stats"
	"skyquery/internal/value"
)

// ActionStats is the SOAPAction of the StatsSummary service. It is
// negotiated like the response codec: a Portal probes it, and a node
// predating the service answers with the standard unknown-action client
// fault, which the Portal converts into the count-star fallback.
const ActionStats = "urn:skyquery:StatsSummary"

// StatsRequest is the planner's statistics probe: estimate how many of
// the table's rows survive the AREA and the archive-local predicate,
// from the spatial index and maintained column statistics alone — no row
// is read.
type StatsRequest struct {
	XMLName    xml.Name  `xml:"StatsSummary"`
	Table      string    `xml:"table,attr"`
	Alias      string    `xml:"alias,attr"`
	LocalWhere string    `xml:"LocalWhere,omitempty"`
	Area       plan.Area `xml:"Area"`
}

// StatsResponse is the node's estimate. HasStats false means the store
// predates maintained column statistics (its footer has none); the
// caller should fall back to a count-star performance query.
type StatsResponse struct {
	XMLName     xml.Name `xml:"StatsSummaryResponse"`
	TableRows   int64    `xml:"tableRows,attr"`
	AreaRows    int64    `xml:"areaRows,attr"`
	EstRows     float64  `xml:"estRows,attr"`
	Selectivity float64  `xml:"selectivity,attr"`
	HasStats    bool     `xml:"hasStats,attr"`
}

func (n *Node) handleStats(r *soap.Request) (interface{}, error) {
	var req StatsRequest
	if err := r.Decode(&req); err != nil {
		return nil, err
	}
	table, ok := n.cfg.DB.Table(req.Table)
	if !ok {
		return nil, fmt.Errorf("skynode %s: no table %q", n.cfg.Name, req.Table)
	}
	rows := int64(table.RowCount())
	summaries := table.ColumnStats()
	if summaries == nil {
		// A store recovered from a pre-statistics footer: its history is
		// unknown, so it never claims statistics — only fresh ingest
		// (or a rebuilt store) does.
		n.emit("stats.summary", "table %s: no column statistics", req.Table)
		return &StatsResponse{TableRows: rows}, nil
	}
	reg, err := req.Area.Region()
	if err != nil {
		return nil, fmt.Errorf("skynode %s: %w", n.cfg.Name, err)
	}
	areaCand, err := table.CountRegionCandidates(reg)
	if err != nil {
		return nil, fmt.Errorf("skynode %s: %w", n.cfg.Name, err)
	}
	sel := 1.0
	if req.LocalWhere != "" {
		expr, err := sqlparse.ParseExpr(req.LocalWhere)
		if err != nil {
			return nil, fmt.Errorf("skynode %s: local predicate %q: %w", n.cfg.Name, req.LocalWhere, err)
		}
		schema := table.Schema()
		ps := eval.AnalyzePrune(expr, table.Layout(req.Alias),
			func(s int) value.Type { return schema[s].Type })
		sel = stats.Selectivity(ps.Pruners, func(ci int) *stats.ColSummary {
			if ci < 0 || ci >= len(summaries) {
				return nil
			}
			return summaries[ci]
		})
	}
	est := float64(areaCand) * sel
	// Learned correction from previous seed-step executions of this
	// table (1 until anything has been observed).
	est *= n.calib.ratio(req.Table)
	n.emit("stats.summary", "table %s: area=%d sel=%.3f est=%.0f",
		req.Table, areaCand, sel, est)
	return &StatsResponse{
		TableRows:   rows,
		AreaRows:    int64(areaCand),
		EstRows:     est,
		Selectivity: sel,
		HasStats:    true,
	}, nil
}
