// Package client is the Go client of a SkyQuery Portal: it plays the role
// of the paper's "Clients" tier (§5.1), submitting cross-match queries to
// the Portal's SkyQuery service over SOAP and reassembling chunked
// results. It also exposes the registration call SkyNodes use to join.
package client

import (
	"context"
	"fmt"

	"skyquery/internal/dataset"
	"skyquery/internal/portal"
	"skyquery/internal/soap"
	"skyquery/internal/value"
)

// Client talks to one Portal.
type Client struct {
	// PortalURL is the Portal's SOAP endpoint.
	PortalURL string
	// SOAP is the underlying SOAP client; nil gets a default.
	SOAP *soap.Client
}

// New returns a client for the given Portal endpoint.
func New(portalURL string) *Client {
	return &Client{PortalURL: portalURL, SOAP: &soap.Client{}}
}

func (c *Client) soapClient() *soap.Client {
	if c.SOAP != nil {
		return c.SOAP
	}
	return &soap.Client{}
}

// Query submits a query and returns the full result set. It is
// QueryRows folded: the same streamed wire, drained to completion.
// Cancelling ctx aborts the in-flight federation work.
func (c *Client) Query(ctx context.Context, sql string) (*dataset.DataSet, error) {
	rows, err := c.QueryRows(ctx, sql)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	ds := &dataset.DataSet{Columns: rows.Columns()}
	for rows.Next() {
		ds.Rows = append(ds.Rows, rows.Row())
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	return ds, nil
}

// QueryRows submits a query and returns a row iterator over the result.
// Rows are yielded as the federation produces them — the first row is
// available before the chain has finished computing the last — and the
// client holds one page at a time. Against a Portal that cannot stream,
// the iterator degrades transparently to chunk-by-chunk fetching.
// Cancelling ctx aborts the stream mid-flight; the next Next reports
// the cancellation through Err.
func (c *Client) QueryRows(ctx context.Context, sql string) (*Rows, error) {
	if c.PortalURL == "" {
		return nil, fmt.Errorf("client: no portal URL configured")
	}
	ps, err := soap.OpenStream(ctx, c.soapClient(), c.PortalURL, portal.ActionSkyQuery, &portal.SkyQueryRequest{SQL: sql})
	if err != nil {
		return nil, err
	}
	return &Rows{ps: ps}, nil
}

// Rows iterates a query result row by row. The usage pattern follows
// database/sql:
//
//	rows, err := c.QueryRows(ctx, sql)
//	...
//	defer rows.Close()
//	for rows.Next() {
//		row := rows.Row()
//		...
//	}
//	if err := rows.Err(); err != nil { ... }
//
// A mid-stream federation failure surfaces from Err as a typed
// *dataset.StreamError — never as a silently truncated result.
type Rows struct {
	ps   *soap.PageStream
	page [][]value.Value
	idx  int
	err  error
	done bool
}

// Columns returns the result schema; valid immediately after QueryRows.
func (r *Rows) Columns() []dataset.Column { return r.ps.Columns() }

// Next advances to the next row, fetching the next page when the
// current one is exhausted. It returns false at the end of the result
// or on error; consult Err to tell the two apart.
func (r *Rows) Next() bool {
	if r.err != nil || r.done {
		return false
	}
	r.idx++
	for r.idx >= len(r.page) {
		page, err := r.ps.Next()
		if err != nil {
			r.err = err
			return false
		}
		if page == nil {
			r.done = true
			r.page = nil
			return false
		}
		r.page = page
		r.idx = 0
	}
	return true
}

// Row returns the current row. Valid after a true Next; the slice is
// owned by the caller.
func (r *Rows) Row() []value.Value { return r.page[r.idx] }

// Err returns the error that ended iteration, if any.
func (r *Rows) Err() error { return r.err }

// Close releases the iterator; abandoning the result early is legal.
func (r *Rows) Close() error { return r.ps.Close() }

// Register announces a SkyNode to the Portal's Registration service on
// behalf of the node (the node could equally call this itself).
func (c *Client) Register(ctx context.Context, name, endpoint string) error {
	var resp portal.RegisterResponse
	err := c.soapClient().Call(ctx, c.PortalURL, portal.ActionRegister,
		&portal.RegisterRequest{Name: name, Endpoint: endpoint}, &resp)
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("client: registration of %q rejected", name)
	}
	return nil
}

// RegisterShard announces a SkyNode as one replica of a trixel-range
// shard of an archive (see portal.ShardInfo for the payload fields).
func (c *Client) RegisterShard(ctx context.Context, name, endpoint string, si portal.ShardInfo) error {
	var resp portal.RegisterResponse
	err := c.soapClient().Call(ctx, c.PortalURL, portal.ActionRegister,
		&portal.RegisterRequest{Name: name, Endpoint: endpoint, Shard: &si}, &resp)
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("client: shard registration of %q rejected", name)
	}
	return nil
}
