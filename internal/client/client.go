// Package client is the Go client of a SkyQuery Portal: it plays the role
// of the paper's "Clients" tier (§5.1), submitting cross-match queries to
// the Portal's SkyQuery service over SOAP and reassembling chunked
// results. It also exposes the registration call SkyNodes use to join.
package client

import (
	"fmt"

	"skyquery/internal/dataset"
	"skyquery/internal/portal"
	"skyquery/internal/soap"
)

// Client talks to one Portal.
type Client struct {
	// PortalURL is the Portal's SOAP endpoint.
	PortalURL string
	// SOAP is the underlying SOAP client; nil gets a default.
	SOAP *soap.Client
}

// New returns a client for the given Portal endpoint.
func New(portalURL string) *Client {
	return &Client{PortalURL: portalURL, SOAP: &soap.Client{}}
}

func (c *Client) soapClient() *soap.Client {
	if c.SOAP != nil {
		return c.SOAP
	}
	return &soap.Client{}
}

// Query submits a query and returns the full result set.
func (c *Client) Query(sql string) (*dataset.DataSet, error) {
	if c.PortalURL == "" {
		return nil, fmt.Errorf("client: no portal URL configured")
	}
	sc := c.soapClient()
	var first soap.ChunkedData
	if err := sc.Call(c.PortalURL, portal.ActionSkyQuery, &portal.SkyQueryRequest{SQL: sql}, &first); err != nil {
		return nil, err
	}
	return soap.FetchAll(sc, c.PortalURL, &first)
}

// Register announces a SkyNode to the Portal's Registration service on
// behalf of the node (the node could equally call this itself).
func (c *Client) Register(name, endpoint string) error {
	var resp portal.RegisterResponse
	err := c.soapClient().Call(c.PortalURL, portal.ActionRegister,
		&portal.RegisterRequest{Name: name, Endpoint: endpoint}, &resp)
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("client: registration of %q rejected", name)
	}
	return nil
}
