package client

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"skyquery/internal/portal"
	"skyquery/internal/skynode"
	"skyquery/internal/sphere"
	"skyquery/internal/survey"
)

// startFederation brings up a portal and one node, returning the portal
// URL and the unregistered node's name and URL.
func startFederation(t *testing.T) (portalURL, nodeName, nodeURL string) {
	t.Helper()
	p := portal.New(portal.Config{})
	pts := httptest.NewServer(p.Server())
	t.Cleanup(pts.Close)

	region := sphere.NewCap(185, -0.5, 0.25)
	field := survey.GenerateField(region, 400, 0.4, 7)
	arch := survey.Observe(field, survey.Config{Name: "SDSS", SigmaArcsec: 0.1, Completeness: 1, Seed: 8})
	db, err := arch.BuildDB()
	if err != nil {
		t.Fatal(err)
	}
	n, err := skynode.New(skynode.Config{
		Name: "SDSS", DB: db, PrimaryTable: survey.TableName,
		RACol: "ra", DecCol: "dec", SigmaArcsec: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	nts := httptest.NewServer(n.Server())
	t.Cleanup(nts.Close)
	return pts.URL, "SDSS", nts.URL
}

func TestRegisterAndQuery(t *testing.T) {
	portalURL, name, nodeURL := startFederation(t)
	c := New(portalURL)
	if err := c.Register(context.Background(), name, nodeURL); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(context.Background(), `SELECT TOP 3 O.object_id FROM SDSS:PhotoObject O WHERE O.type = 'GALAXY'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Errorf("rows = %d", res.NumRows())
	}
}

func TestQueryErrorsSurfaceAsFaults(t *testing.T) {
	portalURL, name, nodeURL := startFederation(t)
	c := New(portalURL)
	if err := c.Register(context.Background(), name, nodeURL); err != nil {
		t.Fatal(err)
	}
	_, err := c.Query(context.Background(), `SELECT O.object_id FROM GHOST:PhotoObject O`)
	if err == nil || !strings.Contains(err.Error(), "not part of the federation") {
		t.Errorf("err = %v", err)
	}
}

func TestRegisterUnreachableNode(t *testing.T) {
	portalURL, _, _ := startFederation(t)
	c := New(portalURL)
	if err := c.Register(context.Background(), "DEAD", "http://127.0.0.1:1/none"); err == nil {
		t.Error("registering an unreachable node should fail")
	}
}

func TestClientWithoutPortal(t *testing.T) {
	c := &Client{}
	if _, err := c.Query(context.Background(), "SELECT 1"); err == nil {
		t.Error("query without portal URL should fail")
	}
}

func TestClientDefaultSOAP(t *testing.T) {
	portalURL, name, nodeURL := startFederation(t)
	c := &Client{PortalURL: portalURL} // nil SOAP field
	if err := c.Register(context.Background(), name, nodeURL); err != nil {
		t.Fatal(err)
	}
}
