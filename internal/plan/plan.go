// Package plan defines the federated query execution plan of §5.3: "an
// ordered set of spatial queries", each paired with the SkyNode that will
// execute it. The Portal builds a Plan from the parsed query plus the
// count-star estimates, and ships it as the single parameter of the
// daisy-chained CrossMatch SOAP calls.
//
// Steps are stored in *call* order: the Portal invokes Steps[0], which
// invokes Steps[1], and so on. Execution then unwinds in reverse — the
// last step runs its query first and partial results flow back up the
// chain. The paper's ordering rule therefore places drop-out archives at
// the *beginning* of the list (so they execute last, after all mandatory
// archives are folded in) and sorts mandatory archives by decreasing
// count-star value (so the smallest archive seeds the chain).
package plan

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strings"

	"skyquery/internal/sphere"
)

// Step is one archive's part of the plan.
type Step struct {
	// Archive is the registered SkyNode name (e.g. "SDSS").
	Archive string `xml:"archive,attr"`
	// Alias is the table alias the user query bound to this archive.
	Alias string `xml:"alias,attr"`
	// Endpoint is the SkyNode's SOAP URL.
	Endpoint string `xml:"endpoint,attr"`
	// Table is the table queried at this node.
	Table string `xml:"table,attr"`
	// LocalWhere is the node-local predicate in dialect syntax ("" if none).
	LocalWhere string `xml:"LocalWhere,omitempty"`
	// CrossWhere lists cross-archive predicates (dialect syntax) that
	// become evaluable once this step's columns are available.
	CrossWhere []string `xml:"CrossWhere>Predicate,omitempty"`
	// Columns are the columns this archive must attach to surviving
	// tuples (select-list plus cross-predicate columns).
	Columns []string `xml:"Columns>Column,omitempty"`
	// SigmaArcsec is the archive's positional error, from its
	// Information service.
	SigmaArcsec float64 `xml:"sigma,attr"`
	// DropOut marks the archive as negated in the XMATCH clause.
	DropOut bool `xml:"dropout,attr,omitempty"`
	// Count is the count-star bound returned by the performance query.
	Count int64 `xml:"count,attr"`
	// EstRows is the planner's estimate of this step's surviving
	// candidates after AREA and local-predicate pruning: the StatsSummary
	// histogram estimate when StatsBased, else the count-star bound.
	EstRows float64 `xml:"estRows,attr,omitempty"`
	// StatsBased marks EstRows as derived from column statistics (the
	// StatsSummary service) rather than a count-star probe.
	StatsBased bool `xml:"statsBased,attr,omitempty"`
	// Cost is the planner's transfer-cost estimate for the step:
	// EstRows x RowBytes / observed per-host throughput (seconds when
	// throughput was measured, relative bytes otherwise). Zero when the
	// plan was ordered by the count-star rule alone.
	Cost float64 `xml:"cost,attr,omitempty"`
}

// RowBytes estimates the wire width of one of the step's tuples: the
// per-row transfer volume its columns add to the partial result. A
// coarse model (framing plus a fixed per-column width) — the planner
// only compares these across steps, so the scale cancels.
func (s *Step) RowBytes() float64 {
	return 24 + 12*float64(len(s.Columns))
}

// CostOf is the shared transfer-cost model of the planner and the
// mid-chain re-orderer: estimated surviving rows times per-row bytes,
// divided by the observed throughput of the node's path (bytes/sec;
// pass 1 when unknown to fall back to relative byte volume).
func CostOf(s *Step, throughputBps float64) float64 {
	if throughputBps <= 0 {
		throughputBps = 1
	}
	est := s.EstRows
	if est <= 0 {
		est = float64(s.Count)
	}
	if est < 1 {
		est = 1 // a step is never free: the call itself moves bytes
	}
	return est * s.RowBytes() / throughputBps
}

// ThroughputNoiseBand is the factor within which two measured path
// throughputs are considered equal. Loopback and LAN measurements
// scatter by small integer factors from scheduling and GC noise alone;
// only differences beyond this band say something about topology.
const ThroughputNoiseBand = 4.0

// EffectiveThroughputs normalizes measured per-step throughputs for the
// cost model: every path within ThroughputNoiseBand of the fastest is
// priced at the fastest (noise does not re-order chains), slower paths
// keep their measured value, and unmeasured paths (0) stay 0 for the
// caller to substitute. The slice is modified in place and returned.
func EffectiveThroughputs(thr []float64) []float64 {
	max := 0.0
	for _, t := range thr {
		if t > max {
			max = t
		}
	}
	if max == 0 {
		return thr
	}
	for i, t := range thr {
		if t > 0 && t*ThroughputNoiseBand >= max {
			thr[i] = max
		}
	}
	return thr
}

// Area mirrors the AREA clause; the radius stays in arc seconds as
// written. A non-empty Vertices list selects the polygon extension.
type Area struct {
	RA           float64  `xml:"ra,attr,omitempty"`
	Dec          float64  `xml:"dec,attr,omitempty"`
	RadiusArcsec float64  `xml:"radius,attr,omitempty"`
	Vertices     []Vertex `xml:"Vertex,omitempty"`
}

// Vertex is one polygon corner in degrees.
type Vertex struct {
	RA  float64 `xml:"ra,attr"`
	Dec float64 `xml:"dec,attr"`
}

// IsPolygon reports whether the area uses the polygon extension.
func (a Area) IsPolygon() bool { return len(a.Vertices) > 0 }

// Region materializes the area as a spherical region.
func (a Area) Region() (sphere.Region, error) {
	if !a.IsPolygon() {
		if a.RadiusArcsec <= 0 {
			return nil, fmt.Errorf("plan: area radius must be positive, got %v", a.RadiusArcsec)
		}
		return sphere.NewCap(a.RA, a.Dec, sphere.Arcsec(a.RadiusArcsec)), nil
	}
	pts := make([][2]float64, len(a.Vertices))
	for i, v := range a.Vertices {
		pts[i] = [2]float64{v.RA, v.Dec}
	}
	poly, err := sphere.NewPolygon(pts...)
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	return poly, nil
}

// Plan is the complete federated execution plan.
type Plan struct {
	XMLName xml.Name `xml:"Plan"`
	// QueryID tags the plan for tracing across nodes.
	QueryID string `xml:"id,attr"`
	// Threshold is the XMATCH threshold in standard deviations.
	Threshold float64 `xml:"threshold,attr"`
	// Area is the sky region of the query.
	Area Area `xml:"Area"`
	// SelectList holds the query's projected expressions in dialect
	// syntax, evaluated by the Portal on the final tuples.
	SelectList []string `xml:"Select>Item"`
	// Steps in call order (Steps[0] is invoked by the Portal).
	Steps []Step `xml:"Steps>Step"`
	// ChunkRows bounds rows per SOAP message for partial-result
	// transfers; 0 disables chunking.
	ChunkRows int `xml:"chunkRows,attr,omitempty"`
	// Parallelism is the Portal's worker-count hint for each node's chain
	// step. A node honors it unless its own configuration overrides it;
	// 0 leaves the choice to the node (GOMAXPROCS), 1 forces the
	// sequential path.
	Parallelism int `xml:"parallelism,attr,omitempty"`
	// AdaptiveReorder permits chain nodes to re-order the not-yet-called
	// downstream suffix of the plan when their live cost estimates
	// (observed per-host throughput, learned step selectivity) diverge
	// from the plan's by more than the re-order threshold. Results are
	// bit-identical either way; only transfer volume and latency change.
	AdaptiveReorder bool `xml:"adaptiveReorder,attr,omitempty"`
}

// StepIndex returns the position of the step for the given archive, or -1.
func (p *Plan) StepIndex(archive string) int {
	for i, s := range p.Steps {
		if s.Archive == archive {
			return i
		}
	}
	return -1
}

// Next returns the step after the given archive in call order, or nil if
// the archive is last (it seeds the chain).
func (p *Plan) Next(archive string) *Step {
	i := p.StepIndex(archive)
	if i < 0 || i+1 >= len(p.Steps) {
		return nil
	}
	return &p.Steps[i+1]
}

// Validate checks structural invariants of the plan.
func (p *Plan) Validate() error {
	if len(p.Steps) == 0 {
		return fmt.Errorf("plan: no steps")
	}
	if p.Threshold <= 0 {
		return fmt.Errorf("plan: threshold must be positive, got %v", p.Threshold)
	}
	if p.Parallelism < 0 {
		return fmt.Errorf("plan: parallelism must be non-negative, got %d", p.Parallelism)
	}
	if _, err := p.Area.Region(); err != nil {
		return err
	}
	seen := map[string]bool{}
	mandatory := 0
	for i, s := range p.Steps {
		if s.Archive == "" || s.Endpoint == "" || s.Table == "" {
			return fmt.Errorf("plan: step %d incomplete: %+v", i, s)
		}
		if seen[s.Archive] {
			return fmt.Errorf("plan: archive %q appears twice", s.Archive)
		}
		seen[s.Archive] = true
		if s.SigmaArcsec <= 0 {
			return fmt.Errorf("plan: step %d (%s) needs a positive sigma", i, s.Archive)
		}
		if !s.DropOut {
			mandatory++
		}
	}
	if mandatory == 0 {
		return fmt.Errorf("plan: no mandatory archives")
	}
	// The last step must be mandatory: a drop-out cannot seed the chain
	// (there would be nothing to veto).
	if p.Steps[len(p.Steps)-1].DropOut {
		return fmt.Errorf("plan: a drop-out archive cannot be last in call order")
	}
	return nil
}

// Order sorts steps into the paper's call order: drop-out archives first,
// then mandatory archives by decreasing Count (ties broken by name for
// determinism). Within drop-outs the same decreasing-count rule applies.
func Order(steps []Step) []Step {
	out := append([]Step(nil), steps...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].DropOut != out[j].DropOut {
			return out[i].DropOut
		}
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Archive < out[j].Archive
	})
	return out
}

// OrderByCost is Order with the cost model as the sort key: drop-outs
// still lead the call order (they execute last, after every mandatory
// fold), and within each group steps sort by decreasing Cost so the
// cheapest transfer seeds the chain. Ties fall back to the count rule,
// then the name rule, keeping the order total and deterministic.
func OrderByCost(steps []Step) []Step {
	out := append([]Step(nil), steps...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].DropOut != out[j].DropOut {
			return out[i].DropOut
		}
		if out[i].Cost != out[j].Cost {
			return out[i].Cost > out[j].Cost
		}
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Archive < out[j].Archive
	})
	return out
}

// Marshal serializes the plan to XML for transport inside SOAP calls.
func (p *Plan) Marshal() ([]byte, error) {
	out, err := xml.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("plan: marshal: %w", err)
	}
	return out, nil
}

// Unmarshal parses a plan serialized with Marshal.
func Unmarshal(data []byte) (*Plan, error) {
	var p Plan
	if err := xml.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("plan: unmarshal: %w", err)
	}
	return &p, nil
}

// String renders a compact human-readable summary used in traces:
//
//	FIRST(dropout,count=120) -> SDSS(count=5000,est=3210,cost=1.2e+05) -> TWOMASS(count=800)
func (p *Plan) String() string {
	var parts []string
	for _, s := range p.Steps {
		attrs := []string{fmt.Sprintf("count=%d", s.Count)}
		if s.StatsBased {
			attrs = append(attrs, fmt.Sprintf("est=%.0f", s.EstRows))
		}
		if s.Cost > 0 {
			attrs = append(attrs, fmt.Sprintf("cost=%.3g", s.Cost))
		}
		if s.DropOut {
			attrs = append([]string{"dropout"}, attrs...)
		}
		parts = append(parts, fmt.Sprintf("%s(%s)", s.Archive, strings.Join(attrs, ",")))
	}
	return strings.Join(parts, " -> ")
}
