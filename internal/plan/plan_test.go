package plan

import (
	"strings"
	"testing"
)

func samplePlan() *Plan {
	return &Plan{
		QueryID:   "q-1",
		Threshold: 3.5,
		Area:      Area{RA: 185, Dec: -0.5, RadiusArcsec: 4.5},
		SelectList: []string{
			"O.object_id", "O.right_ascension", "T.object_id",
		},
		Steps: []Step{
			{Archive: "SDSS", Alias: "O", Endpoint: "http://sdss/soap", Table: "Photo_Object",
				LocalWhere: "O.type = 'GALAXY'", SigmaArcsec: 0.1, Count: 5000,
				Columns: []string{"object_id", "right_ascension", "i_flux"}},
			{Archive: "TWOMASS", Alias: "T", Endpoint: "http://tm/soap", Table: "Photo_Primary",
				SigmaArcsec: 0.2, Count: 800,
				CrossWhere: []string{"(O.i_flux - T.i_flux) > 2"},
				Columns:    []string{"object_id", "i_flux"}},
		},
		ChunkRows: 1000,
	}
}

func TestValidateOK(t *testing.T) {
	if err := samplePlan().Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateErrors(t *testing.T) {
	mutations := []struct {
		name    string
		mutate  func(*Plan)
		wantSub string
	}{
		{"no steps", func(p *Plan) { p.Steps = nil }, "no steps"},
		{"bad threshold", func(p *Plan) { p.Threshold = 0 }, "threshold"},
		{"bad radius", func(p *Plan) { p.Area.RadiusArcsec = -1 }, "radius"},
		{"incomplete step", func(p *Plan) { p.Steps[0].Endpoint = "" }, "incomplete"},
		{"duplicate archive", func(p *Plan) { p.Steps[1].Archive = "SDSS" }, "twice"},
		{"bad sigma", func(p *Plan) { p.Steps[0].SigmaArcsec = 0 }, "sigma"},
		{"all dropouts", func(p *Plan) { p.Steps[0].DropOut = true; p.Steps[1].DropOut = true }, "mandatory"},
		{"dropout last", func(p *Plan) { p.Steps[1].DropOut = true }, "cannot be last"},
	}
	for _, m := range mutations {
		p := samplePlan()
		m.mutate(p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: expected error", m.name)
			continue
		}
		if !strings.Contains(err.Error(), m.wantSub) {
			t.Errorf("%s: error = %v, want substring %q", m.name, err, m.wantSub)
		}
	}
}

func TestStepIndexAndNext(t *testing.T) {
	p := samplePlan()
	if got := p.StepIndex("TWOMASS"); got != 1 {
		t.Errorf("StepIndex = %d", got)
	}
	if got := p.StepIndex("NOPE"); got != -1 {
		t.Errorf("StepIndex missing = %d", got)
	}
	next := p.Next("SDSS")
	if next == nil || next.Archive != "TWOMASS" {
		t.Errorf("Next(SDSS) = %+v", next)
	}
	if p.Next("TWOMASS") != nil {
		t.Error("Next of last step should be nil")
	}
	if p.Next("NOPE") != nil {
		t.Error("Next of unknown archive should be nil")
	}
}

func TestOrderRule(t *testing.T) {
	steps := []Step{
		{Archive: "A", Count: 100},
		{Archive: "B", Count: 9000},
		{Archive: "C", Count: 40, DropOut: true},
		{Archive: "D", Count: 700},
		{Archive: "E", Count: 7000, DropOut: true},
	}
	got := Order(steps)
	want := []string{"E", "C", "B", "D", "A"}
	for i, name := range want {
		if got[i].Archive != name {
			t.Fatalf("Order[%d] = %s, want %s (full: %v)", i, got[i].Archive, name, names(got))
		}
	}
	// Original slice untouched.
	if steps[0].Archive != "A" {
		t.Error("Order mutated its input")
	}
}

func TestOrderTieBreak(t *testing.T) {
	steps := []Step{
		{Archive: "Z", Count: 5},
		{Archive: "A", Count: 5},
	}
	got := Order(steps)
	if got[0].Archive != "A" || got[1].Archive != "Z" {
		t.Errorf("tie break not by name: %v", names(got))
	}
}

func names(steps []Step) []string {
	out := make([]string, len(steps))
	for i, s := range steps {
		out[i] = s.Archive
	}
	return out
}

func TestMarshalRoundTrip(t *testing.T) {
	p := samplePlan()
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.QueryID != p.QueryID || got.Threshold != p.Threshold {
		t.Errorf("header mismatch: %+v", got)
	}
	if got.Area.RA != p.Area.RA || got.Area.Dec != p.Area.Dec ||
		got.Area.RadiusArcsec != p.Area.RadiusArcsec || len(got.Area.Vertices) != len(p.Area.Vertices) {
		t.Errorf("area = %+v", got.Area)
	}
	if len(got.Steps) != len(p.Steps) {
		t.Fatalf("steps = %d", len(got.Steps))
	}
	for i := range p.Steps {
		a, b := p.Steps[i], got.Steps[i]
		if a.Archive != b.Archive || a.LocalWhere != b.LocalWhere ||
			a.SigmaArcsec != b.SigmaArcsec || a.Count != b.Count || a.DropOut != b.DropOut {
			t.Errorf("step %d: %+v vs %+v", i, a, b)
		}
		if len(a.Columns) != len(b.Columns) {
			t.Errorf("step %d columns: %v vs %v", i, a.Columns, b.Columns)
		}
		if len(a.CrossWhere) != len(b.CrossWhere) {
			t.Errorf("step %d crossWhere: %v vs %v", i, a.CrossWhere, b.CrossWhere)
		}
	}
	if got.ChunkRows != p.ChunkRows {
		t.Errorf("chunkRows = %d", got.ChunkRows)
	}
	if len(got.SelectList) != 3 {
		t.Errorf("selectList = %v", got.SelectList)
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("<oops")); err == nil {
		t.Error("expected error")
	}
}

func TestString(t *testing.T) {
	p := samplePlan()
	p.Steps[0].DropOut = false
	s := p.String()
	if !strings.Contains(s, "SDSS(count=5000)") || !strings.Contains(s, "->") {
		t.Errorf("String = %q", s)
	}
	p.Steps[0].DropOut = true
	if !strings.Contains(p.String(), "dropout") {
		t.Errorf("String = %q", p.String())
	}
}
