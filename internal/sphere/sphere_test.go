package sphere

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestFromRaDecCardinalPoints(t *testing.T) {
	cases := []struct {
		ra, dec float64
		want    Vec
	}{
		{0, 0, Vec{1, 0, 0}},
		{90, 0, Vec{0, 1, 0}},
		{180, 0, Vec{-1, 0, 0}},
		{270, 0, Vec{0, -1, 0}},
		{0, 90, Vec{0, 0, 1}},
		{0, -90, Vec{0, 0, -1}},
	}
	for _, c := range cases {
		got := FromRaDec(c.ra, c.dec)
		if !almostEq(got.X, c.want.X, 1e-15) || !almostEq(got.Y, c.want.Y, 1e-15) || !almostEq(got.Z, c.want.Z, 1e-15) {
			t.Errorf("FromRaDec(%v,%v) = %v, want %v", c.ra, c.dec, got, c.want)
		}
	}
}

func TestRaDecRoundTrip(t *testing.T) {
	f := func(ra, dec float64) bool {
		ra = math.Mod(math.Abs(ra), 360)
		dec = math.Mod(dec, 89) // avoid the poles where RA is degenerate
		v := FromRaDec(ra, dec)
		ra2, dec2 := v.RaDec()
		return almostEq(ra, ra2, 1e-9) && almostEq(dec, dec2, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRaDecZeroVector(t *testing.T) {
	ra, dec := (Vec{}).RaDec()
	if ra != 0 || dec != 0 {
		t.Errorf("zero vector RaDec = (%v,%v), want (0,0)", ra, dec)
	}
}

func TestUnitNorm(t *testing.T) {
	f := func(ra, dec float64) bool {
		ra = math.Mod(ra, 360)
		dec = math.Mod(dec, 90)
		return almostEq(FromRaDec(ra, dec).Norm(), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSepKnownAngles(t *testing.T) {
	cases := []struct {
		a, b Vec
		want float64
	}{
		{FromRaDec(0, 0), FromRaDec(90, 0), 90},
		{FromRaDec(0, 0), FromRaDec(180, 0), 180},
		{FromRaDec(0, 0), FromRaDec(0, 0), 0},
		{FromRaDec(10, 20), FromRaDec(10, 21), 1},
		{FromRaDec(0, 90), FromRaDec(0, -90), 180},
	}
	for _, c := range cases {
		if got := c.a.Sep(c.b); !almostEq(got, c.want, 1e-9) {
			t.Errorf("Sep(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSepSmallAngleStability(t *testing.T) {
	// One milliarcsecond separation must survive the math; acos-based
	// formulations lose it entirely.
	const mas = 1.0 / 3600 / 1000
	a := FromRaDec(185, -0.5)
	b := FromRaDec(185, -0.5+mas)
	got := a.Sep(b)
	if !almostEq(got, mas, mas*1e-6) {
		t.Errorf("Sep at 1 mas = %v, want %v", got, mas)
	}
}

func TestSepSymmetry(t *testing.T) {
	f := func(ra1, dec1, ra2, dec2 float64) bool {
		a := FromRaDec(math.Mod(ra1, 360), math.Mod(dec1, 90))
		b := FromRaDec(math.Mod(ra2, 360), math.Mod(dec2, 90))
		return almostEq(a.Sep(b), b.Sep(a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSepTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		a := randUnit(rng)
		b := randUnit(rng)
		c := randUnit(rng)
		if a.Sep(c) > a.Sep(b)+b.Sep(c)+1e-9 {
			t.Fatalf("triangle inequality violated: %v %v %v", a, b, c)
		}
	}
}

func randUnit(rng *rand.Rand) Vec {
	// Marsaglia method for a uniform point on the sphere.
	for {
		x := 2*rng.Float64() - 1
		y := 2*rng.Float64() - 1
		s := x*x + y*y
		if s >= 1 {
			continue
		}
		f := 2 * math.Sqrt(1-s)
		return Vec{x * f, y * f, 1 - 2*s}
	}
}

func TestCapContains(t *testing.T) {
	c := NewCap(185.0, -0.5, Arcsec(4.5))
	if !c.Contains(FromRaDec(185.0, -0.5)) {
		t.Error("cap does not contain its own center")
	}
	inside := FromRaDec(185.0, -0.5+Arcsec(4.0))
	if !c.Contains(inside) {
		t.Error("point 4 arcsec from center should be inside a 4.5 arcsec cap")
	}
	outside := FromRaDec(185.0, -0.5+Arcsec(5.0))
	if c.Contains(outside) {
		t.Error("point 5 arcsec from center should be outside a 4.5 arcsec cap")
	}
}

func TestCapContainsMatchesSep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewCap(40, 10, 3)
	for i := 0; i < 2000; i++ {
		v := randUnit(rng)
		sep := c.Center.Sep(v)
		if math.Abs(sep-c.Radius) < 1e-9 {
			continue // boundary: either answer acceptable
		}
		if got, want := c.Contains(v), sep < c.Radius; got != want {
			t.Fatalf("Contains=%v but sep=%v vs radius=%v", got, sep, c.Radius)
		}
	}
}

func TestCapZeroValueContains(t *testing.T) {
	// A zero-value cap (radius 0) contains only its center direction.
	var c Cap
	c.Center = Vec{1, 0, 0}
	if !c.Contains(Vec{1, 0, 0}) {
		t.Error("zero-radius cap should contain its center")
	}
	if c.Contains(Vec{0, 1, 0}) {
		t.Error("zero-radius cap should not contain a perpendicular point")
	}
}

func TestCapExpand(t *testing.T) {
	c := NewCap(10, 10, 1)
	e := c.Expand(0.5)
	if !almostEq(e.Radius, 1.5, 1e-12) {
		t.Errorf("expanded radius = %v, want 1.5", e.Radius)
	}
	full := c.Expand(400)
	if full.Radius != 180 {
		t.Errorf("expansion should clamp at 180, got %v", full.Radius)
	}
	if !full.Contains(FromRaDec(190, -10)) {
		t.Error("full-sphere cap should contain everything")
	}
}

func TestCapString(t *testing.T) {
	s := NewCap(185, -0.5, Arcsec(4.5)).String()
	if s == "" {
		t.Error("empty String()")
	}
}

func TestVectorAlgebra(t *testing.T) {
	a := Vec{1, 2, 3}
	b := Vec{4, 5, 6}
	if got := a.Add(b); got != (Vec{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec{-3, -3, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != (Vec{-3, 6, -3}) {
		t.Errorf("Cross = %v", got)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	f := func(x1, y1, z1, x2, y2, z2 float64) bool {
		a := Vec{x1, y1, z1}
		b := Vec{x2, y2, z2}
		c := a.Cross(b)
		scale := a.Norm() * b.Norm()
		if scale == 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
			return true
		}
		return math.Abs(c.Dot(a))/scale < 1e-9*(1+c.Norm()) && math.Abs(c.Dot(b))/scale < 1e-9*(1+c.Norm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	v := Vec{3, 4, 0}.Normalize()
	if !almostEq(v.Norm(), 1, 1e-12) {
		t.Errorf("normalized norm = %v", v.Norm())
	}
	z := Vec{}.Normalize()
	if z != (Vec{}) {
		t.Errorf("normalizing zero vector changed it: %v", z)
	}
}

func TestArcsecConversions(t *testing.T) {
	if got := Arcsec(3600); got != 1 {
		t.Errorf("Arcsec(3600) = %v, want 1", got)
	}
	if got := ToArcsec(1); got != 3600 {
		t.Errorf("ToArcsec(1) = %v, want 3600", got)
	}
	f := func(a float64) bool { return almostEq(ToArcsec(Arcsec(a)), a, math.Abs(a)*1e-12) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolygonContains(t *testing.T) {
	// A small square around (10, 10), counter-clockwise.
	p, err := NewPolygon([2]float64{9, 9}, [2]float64{11, 9}, [2]float64{11, 11}, [2]float64{9, 11})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Contains(FromRaDec(10, 10)) {
		t.Error("polygon should contain its center")
	}
	if p.Contains(FromRaDec(20, 10)) {
		t.Error("polygon should not contain a far point")
	}
	if p.Contains(FromRaDec(10, -10)) {
		t.Error("polygon should not contain the mirror point")
	}
}

func TestPolygonErrors(t *testing.T) {
	if _, err := NewPolygon([2]float64{0, 0}, [2]float64{1, 0}); err == nil {
		t.Error("expected error for 2-vertex polygon")
	}
	// Clockwise (i.e. inverted) square must be rejected.
	if _, err := NewPolygon([2]float64{9, 11}, [2]float64{11, 11}, [2]float64{11, 9}, [2]float64{9, 9}); err == nil {
		t.Error("expected error for clockwise polygon")
	}
}

func TestPolygonBounding(t *testing.T) {
	p, err := NewPolygon([2]float64{9, 9}, [2]float64{11, 9}, [2]float64{11, 11}, [2]float64{9, 11})
	if err != nil {
		t.Fatal(err)
	}
	b := p.Bounding()
	for _, v := range p.Vertices {
		if !b.Expand(1e-9).Contains(v) {
			t.Errorf("bounding cap misses vertex %v", v)
		}
	}
	// Every point inside the polygon must be inside the bounding cap.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		ra := 8 + 4*rng.Float64()
		dec := 8 + 4*rng.Float64()
		v := FromRaDec(ra, dec)
		if p.Contains(v) && !b.Expand(1e-9).Contains(v) {
			t.Fatalf("point %v inside polygon but outside bounding cap", v)
		}
	}
}

func TestRegionInterface(t *testing.T) {
	var _ Region = Cap{}
	var _ Region = (*Polygon)(nil)
}
