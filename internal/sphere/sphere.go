// Package sphere provides the spherical-geometry primitives used throughout
// SkyQuery: equatorial coordinates (right ascension and declination, in
// degrees), unit vectors on the celestial sphere, angular separations, and
// circular regions ("caps") such as the ones named by the AREA clause of a
// cross-match query.
//
// Astronomical positions in the paper are points on the unit sphere. All
// trigonometry is done on unit vectors because the cross-match accumulator
// (see internal/xmatch) is defined in Cartesian terms.
package sphere

import (
	"fmt"
	"math"
)

const (
	// DegPerRad converts radians to degrees.
	DegPerRad = 180 / math.Pi
	// RadPerDeg converts degrees to radians.
	RadPerDeg = math.Pi / 180
	// ArcsecPerDeg is the number of arc seconds in one degree.
	ArcsecPerDeg = 3600
)

// Arcsec converts an angle in arc seconds to degrees.
func Arcsec(a float64) float64 { return a / ArcsecPerDeg }

// ToArcsec converts an angle in degrees to arc seconds.
func ToArcsec(deg float64) float64 { return deg * ArcsecPerDeg }

// Vec is a point on (or vector in) the celestial sphere in Cartesian
// coordinates. Positions are unit vectors; intermediate sums (such as
// cross-match accumulators) need not be.
type Vec struct {
	X, Y, Z float64
}

// FromRaDec converts equatorial coordinates in degrees to a unit vector.
// RA is measured in [0, 360), Dec in [-90, +90].
func FromRaDec(ra, dec float64) Vec {
	raR := ra * RadPerDeg
	decR := dec * RadPerDeg
	cd := math.Cos(decR)
	return Vec{
		X: math.Cos(raR) * cd,
		Y: math.Sin(raR) * cd,
		Z: math.Sin(decR),
	}
}

// RaDec converts a vector back to equatorial coordinates in degrees.
// RA is normalized to [0, 360). The vector need not be normalized.
func (v Vec) RaDec() (ra, dec float64) {
	n := v.Norm()
	if n == 0 {
		return 0, 0
	}
	dec = math.Asin(v.Z/n) * DegPerRad
	ra = math.Atan2(v.Y, v.X) * DegPerRad
	if ra < 0 {
		ra += 360
	}
	return ra, dec
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec) Cross(w Vec) Vec {
	return Vec{
		X: v.Y*w.Z - v.Z*w.Y,
		Y: v.Z*w.X - v.X*w.Z,
		Z: v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec) Normalize() Vec {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Sep returns the angular separation between two unit vectors in degrees.
// It uses the atan2 formulation, which is numerically stable for both very
// small and near-antipodal separations (acos of a dot product loses all
// precision below ~1e-8 rad, far coarser than survey astrometry).
func (v Vec) Sep(w Vec) float64 {
	cross := v.Cross(w).Norm()
	dot := v.Dot(w)
	return math.Atan2(cross, dot) * DegPerRad
}

// String implements fmt.Stringer.
func (v Vec) String() string {
	return fmt.Sprintf("(%.9g, %.9g, %.9g)", v.X, v.Y, v.Z)
}

// Region is a subset of the sky that can report membership. The AREA clause
// of a cross-match query names a Region; the paper uses circles and lists
// arbitrary polygons as an extension (§6), so both are provided.
type Region interface {
	// Contains reports whether the unit vector v lies inside the region.
	Contains(v Vec) bool
	// Bounding returns a cap that encloses the region, used by spatial
	// indexes to prune the search.
	Bounding() Cap
}

// Cap is a circular region of the sky: all points within Radius degrees of
// Center. It is the region named by AREA(ra, dec, radiusArcsec) — note the
// paper's example passes the radius in arc seconds; parsing converts.
type Cap struct {
	Center Vec     // unit vector of the center
	Radius float64 // angular radius in degrees
	// cosRadius caches cos(Radius) for containment tests.
	cosRadius float64
}

// NewCap returns a cap centered at (ra, dec) degrees with the given angular
// radius in degrees.
func NewCap(ra, dec, radiusDeg float64) Cap {
	return CapAround(FromRaDec(ra, dec), radiusDeg)
}

// CapAround returns a cap around the given unit vector with the given
// angular radius in degrees.
func CapAround(center Vec, radiusDeg float64) Cap {
	return Cap{
		Center:    center.Normalize(),
		Radius:    radiusDeg,
		cosRadius: math.Cos(radiusDeg * RadPerDeg),
	}
}

// Contains reports whether v lies inside the cap.
func (c Cap) Contains(v Vec) bool {
	if c.Radius >= 180 {
		// The full sphere; the dot-product test would reject exactly
		// antipodal points due to rounding below -1.
		return true
	}
	// Direct dot-product comparison: v·center >= cos(radius).
	return c.Center.Dot(v) >= c.cosThreshold()
}

func (c Cap) cosThreshold() float64 {
	if c.cosRadius == 0 && c.Radius != 90 {
		// Zero value or hand-constructed Cap: compute on the fly.
		return math.Cos(c.Radius * RadPerDeg)
	}
	return c.cosRadius
}

// Bounding returns the cap itself.
func (c Cap) Bounding() Cap { return c }

// Expand returns a cap with the radius grown by extraDeg degrees, clamped
// to the full sphere. Cross-match range searches expand the query cap by a
// few σ so that objects whose measured position scattered just outside the
// AREA are still considered.
func (c Cap) Expand(extraDeg float64) Cap {
	r := c.Radius + extraDeg
	if r > 180 {
		r = 180
	}
	return CapAround(c.Center, r)
}

// String implements fmt.Stringer.
func (c Cap) String() string {
	ra, dec := c.Center.RaDec()
	return fmt.Sprintf("AREA(%.6g, %.6g, %.6g\")", ra, dec, ToArcsec(c.Radius))
}

// Polygon is a convex spherical polygon given by its vertices in
// counter-clockwise order as seen from outside the sphere. It implements
// the "arbitrary polygon AREA" extension the paper lists as future work.
type Polygon struct {
	Vertices []Vec
	// edges caches the inward-pointing edge normals.
	edges []Vec
}

// NewPolygon builds a convex polygon from vertices given as (ra, dec)
// pairs in degrees, in counter-clockwise order. It returns an error if
// fewer than three vertices are supplied or the polygon is not convex.
func NewPolygon(raDec ...[2]float64) (*Polygon, error) {
	if len(raDec) < 3 {
		return nil, fmt.Errorf("sphere: polygon needs at least 3 vertices, got %d", len(raDec))
	}
	p := &Polygon{}
	for _, rd := range raDec {
		p.Vertices = append(p.Vertices, FromRaDec(rd[0], rd[1]))
	}
	n := len(p.Vertices)
	p.edges = make([]Vec, n)
	for i := range p.Vertices {
		a, b := p.Vertices[i], p.Vertices[(i+1)%n]
		p.edges[i] = a.Cross(b).Normalize()
	}
	// Convexity: every vertex must be on the inner side of every edge.
	for _, v := range p.Vertices {
		for _, e := range p.edges {
			if e.Dot(v) < -1e-12 {
				return nil, fmt.Errorf("sphere: polygon is not convex (or vertices not counter-clockwise)")
			}
		}
	}
	return p, nil
}

// Contains reports whether v lies inside the polygon.
func (p *Polygon) Contains(v Vec) bool {
	for _, e := range p.edges {
		if e.Dot(v) < 0 {
			return false
		}
	}
	return true
}

// Bounding returns a cap that encloses the polygon: centered at the
// normalized vertex centroid with radius reaching the farthest vertex.
func (p *Polygon) Bounding() Cap {
	var sum Vec
	for _, v := range p.Vertices {
		sum = sum.Add(v)
	}
	center := sum.Normalize()
	var maxSep float64
	for _, v := range p.Vertices {
		if s := center.Sep(v); s > maxSep {
			maxSep = s
		}
	}
	return CapAround(center, maxSep)
}
