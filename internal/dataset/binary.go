// The columnar wire codec: the serving-path replacement for the XML
// DataSet encoding. Sets travel as a stream of length-prefixed,
// CRC32C-framed frames — one schema frame, then row-group page frames,
// then an empty trailer — so a receiver can fold pages into its result
// (or forward them) without ever materializing a second copy of the
// whole set, and a torn or corrupted stream is detected by frame
// accounting rather than by a half-parsed table. Within a page each
// column is a null bitmap plus a native payload ([]int64 / []float64 /
// []string bytes / bool bitmap) written straight from the value
// payloads — no per-cell string formatting or parsing on either end,
// which is what makes it ~an order of magnitude faster than the
// hand-rolled XML codec. See docs/WIRE.md for the byte-level format.
package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"skyquery/internal/value"
)

// Columnar stream constants.
const (
	// columnarMagic opens the schema frame: "SQC1" little-endian.
	columnarMagic = 0x31435153

	// DefaultPageRows is the row-group size used when the caller does not
	// pick one. It matches the storage layer's 1024-row zone blocks.
	DefaultPageRows = 1024

	// maxFramePayload bounds a single frame so a corrupted length prefix
	// cannot drive a multi-gigabyte allocation. SOAP-level message limits
	// still apply on top of this.
	maxFramePayload = 1 << 27 // 128 MiB

	// maxColumnarCols bounds the schema so a corrupt header cannot drive
	// a huge per-row allocation downstream.
	maxColumnarCols = 1 << 16

	// errorMarker fills the row-count slot of an error frame. A producer
	// that fails after the stream has started (HTTP status and headers
	// long gone) ends the stream with one of these instead of a trailer,
	// so the failure arrives as a typed error — never as a silently
	// truncated result.
	errorMarker = 0xFFFFFFFF

	// maxStreamErrorLen truncates the message carried by an error frame.
	maxStreamErrorLen = 16 << 10
)

// StreamError is the decoded form of an in-band error frame: the remote
// producer failed mid-stream and said so.
type StreamError struct {
	Msg string
}

// Error implements the error interface.
func (e *StreamError) Error() string { return e.Msg }

// Per-column block tags inside a page frame. Columns whose cells all
// conform to the declared type use the native tag for that type; a
// column holding off-type cells (legal in DataSet, if unusual) falls
// back to tagBoxed, which round-trips every cell exactly.
const (
	tagInt    = 1
	tagFloat  = 2
	tagString = 3
	tagBool   = 4
	tagBoxed  = 5
	tagNull   = 6
)

// castagnoli is the CRC-32C table; same polynomial the storage WAL uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ColumnarEncoder streams a DataSet as CRC-framed column pages. Usage:
// WriteSchema once, WritePage for each row group, then Close for the
// trailer frame. The encoder reuses one payload buffer across frames.
type ColumnarEncoder struct {
	w    io.Writer
	cols []Column
	buf  []byte // current frame payload under construction
}

// NewColumnarEncoder returns an encoder writing to w.
func NewColumnarEncoder(w io.Writer) *ColumnarEncoder {
	return &ColumnarEncoder{w: w}
}

// WriteSchema emits the schema frame. It must be called exactly once,
// before any page.
func (e *ColumnarEncoder) WriteSchema(cols []Column) error {
	if e.cols != nil {
		return fmt.Errorf("dataset: columnar schema already written")
	}
	if len(cols) > maxColumnarCols {
		return fmt.Errorf("dataset: %d columns exceeds columnar limit %d", len(cols), maxColumnarCols)
	}
	e.cols = cols
	e.buf = e.buf[:0]
	e.buf = binary.LittleEndian.AppendUint32(e.buf, columnarMagic)
	e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(len(cols)))
	for _, c := range cols {
		e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(len(c.Name)))
		e.buf = append(e.buf, c.Name...)
		e.buf = append(e.buf, byte(c.Type))
	}
	return e.flushFrame()
}

// WritePage emits one row-group frame. Every row must have exactly one
// cell per schema column. Empty pages are skipped (the trailer frame is
// what terminates the stream).
func (e *ColumnarEncoder) WritePage(rows [][]value.Value) error {
	if e.cols == nil {
		return fmt.Errorf("dataset: columnar page before schema")
	}
	if len(rows) == 0 {
		return nil
	}
	for r, row := range rows {
		if len(row) != len(e.cols) {
			return fmt.Errorf("dataset: columnar page row %d has %d cells, want %d", r, len(row), len(e.cols))
		}
	}
	e.buf = e.buf[:0]
	e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(len(rows)))
	for ci, c := range e.cols {
		e.encodeColumn(ci, c.Type, rows)
	}
	return e.flushFrame()
}

// Close emits the trailer frame (an empty page). The underlying writer
// is not closed.
func (e *ColumnarEncoder) Close() error {
	if e.cols == nil {
		return fmt.Errorf("dataset: columnar close before schema")
	}
	e.buf = e.buf[:0]
	e.buf = binary.LittleEndian.AppendUint32(e.buf, 0)
	return e.flushFrame()
}

// WriteError emits an error frame carrying msg and poisons the stream:
// the receiver's next read returns a *StreamError instead of rows. It is
// valid at any point — before the schema, between pages, in place of the
// trailer — because a streaming producer can fail at any of those points.
func (e *ColumnarEncoder) WriteError(msg string) error {
	if len(msg) > maxStreamErrorLen {
		msg = msg[:maxStreamErrorLen]
	}
	e.buf = e.buf[:0]
	e.buf = binary.LittleEndian.AppendUint32(e.buf, errorMarker)
	e.buf = append(e.buf, msg...)
	return e.flushFrame()
}

// streamError interprets a frame payload as an error frame, or returns
// nil when it is not one.
func streamError(p []byte) *StreamError {
	if len(p) < 4 || binary.LittleEndian.Uint32(p) != errorMarker {
		return nil
	}
	return &StreamError{Msg: string(p[4:])}
}

// flushFrame writes u32 length | payload | u32 CRC32C(payload).
func (e *ColumnarEncoder) flushFrame() error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(e.buf)))
	if _, err := e.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := e.w.Write(e.buf); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(hdr[:], crc32.Checksum(e.buf, castagnoli))
	_, err := e.w.Write(hdr[:])
	return err
}

// encodeColumn appends one column block for rows to e.buf. If a cell
// does not conform to the declared type the block restarts as boxed, so
// encoding never fails on legal DataSets.
func (e *ColumnarEncoder) encodeColumn(ci int, t value.Type, rows [][]value.Value) {
	start := len(e.buf)
	ok := false
	switch t {
	case value.IntType:
		ok = e.encodeIntCol(ci, rows)
	case value.FloatType:
		ok = e.encodeFloatCol(ci, rows)
	case value.StringType:
		ok = e.encodeStringCol(ci, rows)
	case value.BoolType:
		ok = e.encodeBoolCol(ci, rows)
	case value.NullType:
		// The XML codec decodes every cell of a NULL-typed column to
		// NULL regardless of its text; tagNull preserves that.
		e.buf = append(e.buf, tagNull)
		ok = true
	}
	if !ok {
		e.buf = e.buf[:start] // drop the partial native block
		e.encodeBoxedCol(ci, rows)
	}
}

// appendNullBitmap writes the hasNulls byte and, when any cell is null,
// a bitmap with bit r set for null rows.
func (e *ColumnarEncoder) appendNullBitmap(ci int, rows [][]value.Value) {
	hasNulls := false
	for _, row := range rows {
		if row[ci].IsNull() {
			hasNulls = true
			break
		}
	}
	if !hasNulls {
		e.buf = append(e.buf, 0)
		return
	}
	e.buf = append(e.buf, 1)
	off := len(e.buf)
	e.buf = append(e.buf, make([]byte, (len(rows)+7)/8)...)
	for r, row := range rows {
		if row[ci].IsNull() {
			e.buf[off+r/8] |= 1 << (r % 8)
		}
	}
}

func (e *ColumnarEncoder) encodeIntCol(ci int, rows [][]value.Value) bool {
	for _, row := range rows {
		if v := row[ci]; !v.IsNull() && v.Type() != value.IntType {
			return false
		}
	}
	e.buf = append(e.buf, tagInt)
	e.appendNullBitmap(ci, rows)
	for _, row := range rows {
		e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(row[ci].AsInt()))
	}
	return true
}

func (e *ColumnarEncoder) encodeFloatCol(ci int, rows [][]value.Value) bool {
	// Int cells are accepted and widened, matching the XML codec (an
	// int's text re-parses as a float on the far side).
	for _, row := range rows {
		if v := row[ci]; !v.IsNull() {
			if _, num := v.AsFloat(); !num {
				return false
			}
		}
	}
	e.buf = append(e.buf, tagFloat)
	e.appendNullBitmap(ci, rows)
	for _, row := range rows {
		f, _ := row[ci].AsFloat()
		e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(f))
	}
	return true
}

func (e *ColumnarEncoder) encodeStringCol(ci int, rows [][]value.Value) bool {
	for _, row := range rows {
		if v := row[ci]; !v.IsNull() && v.Type() != value.StringType {
			return false
		}
	}
	e.buf = append(e.buf, tagString)
	e.appendNullBitmap(ci, rows)
	for _, row := range rows {
		e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(len(row[ci].AsString())))
	}
	for _, row := range rows {
		e.buf = append(e.buf, row[ci].AsString()...)
	}
	return true
}

func (e *ColumnarEncoder) encodeBoolCol(ci int, rows [][]value.Value) bool {
	for _, row := range rows {
		if v := row[ci]; !v.IsNull() && v.Type() != value.BoolType {
			return false
		}
	}
	e.buf = append(e.buf, tagBool)
	e.appendNullBitmap(ci, rows)
	off := len(e.buf)
	e.buf = append(e.buf, make([]byte, (len(rows)+7)/8)...)
	for r, row := range rows {
		if row[ci].AsBool() {
			e.buf[off+r/8] |= 1 << (r % 8)
		}
	}
	return true
}

// encodeBoxedCol writes each cell as a type byte plus its payload —
// the exact-round-trip fallback for mixed or off-schema columns.
func (e *ColumnarEncoder) encodeBoxedCol(ci int, rows [][]value.Value) {
	e.buf = append(e.buf, tagBoxed)
	for _, row := range rows {
		v := row[ci]
		e.buf = append(e.buf, byte(v.Type()))
		switch v.Type() {
		case value.IntType:
			e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v.AsInt()))
		case value.FloatType:
			f, _ := v.AsFloat()
			e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(f))
		case value.StringType:
			s := v.AsString()
			e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(len(s)))
			e.buf = append(e.buf, s...)
		case value.BoolType:
			b := byte(0)
			if v.AsBool() {
				b = 1
			}
			e.buf = append(e.buf, b)
		}
	}
}

// EncodeColumnar writes the whole set as a columnar stream in pages of
// pageRows rows (<= 0 means DefaultPageRows).
func (d *DataSet) EncodeColumnar(w io.Writer, pageRows int) error {
	if pageRows <= 0 {
		pageRows = DefaultPageRows
	}
	enc := NewColumnarEncoder(w)
	if err := enc.WriteSchema(d.Columns); err != nil {
		return err
	}
	for start := 0; start < len(d.Rows); start += pageRows {
		end := start + pageRows
		if end > len(d.Rows) {
			end = len(d.Rows)
		}
		if err := enc.WritePage(d.Rows[start:end]); err != nil {
			return err
		}
	}
	return enc.Close()
}

// ColumnarDecoder reads a columnar stream incrementally: ReadSchema,
// then ReadPage until it reports done.
type ColumnarDecoder struct {
	r    *bufio.Reader
	cols []Column
	buf  []byte
	done bool
}

// NewColumnarDecoder returns a decoder reading from r.
func NewColumnarDecoder(r io.Reader) *ColumnarDecoder {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &ColumnarDecoder{r: br}
}

// readFrame reads one frame into d.buf, verifying length and CRC.
func (d *ColumnarDecoder) readFrame() error {
	var hdr [4]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		if err == io.EOF {
			return fmt.Errorf("dataset: columnar stream truncated: missing frame")
		}
		return fmt.Errorf("dataset: columnar frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFramePayload {
		return fmt.Errorf("dataset: columnar frame of %d bytes exceeds limit %d", n, maxFramePayload)
	}
	if cap(d.buf) < int(n) {
		d.buf = make([]byte, n)
	}
	d.buf = d.buf[:n]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		return fmt.Errorf("dataset: columnar frame truncated: %w", err)
	}
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		return fmt.Errorf("dataset: columnar frame CRC truncated: %w", err)
	}
	if want, got := binary.LittleEndian.Uint32(hdr[:]), crc32.Checksum(d.buf, castagnoli); want != got {
		return fmt.Errorf("dataset: columnar frame CRC mismatch (want %08x, got %08x)", want, got)
	}
	return nil
}

// ReadSchema reads the schema frame. It must be called first.
func (d *ColumnarDecoder) ReadSchema() ([]Column, error) {
	if d.cols != nil {
		return d.cols, nil
	}
	if err := d.readFrame(); err != nil {
		return nil, err
	}
	p := d.buf
	if se := streamError(p); se != nil {
		d.done = true
		return nil, se
	}
	if len(p) < 8 || binary.LittleEndian.Uint32(p) != columnarMagic {
		return nil, fmt.Errorf("dataset: not a columnar stream (bad magic)")
	}
	ncols := binary.LittleEndian.Uint32(p[4:])
	if ncols > maxColumnarCols {
		return nil, fmt.Errorf("dataset: columnar schema declares %d columns (limit %d)", ncols, maxColumnarCols)
	}
	p = p[8:]
	cols := make([]Column, 0, ncols)
	for i := uint32(0); i < ncols; i++ {
		if len(p) < 4 {
			return nil, fmt.Errorf("dataset: columnar schema truncated")
		}
		nameLen := binary.LittleEndian.Uint32(p)
		p = p[4:]
		if uint32(len(p)) < nameLen+1 {
			return nil, fmt.Errorf("dataset: columnar schema truncated")
		}
		name := string(p[:nameLen])
		t := value.Type(p[nameLen])
		if t > value.BoolType {
			return nil, fmt.Errorf("dataset: columnar schema: bad column type %d", t)
		}
		p = p[nameLen+1:]
		cols = append(cols, Column{Name: name, Type: t})
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("dataset: columnar schema has %d trailing bytes", len(p))
	}
	d.cols = cols
	return cols, nil
}

// ReadPage reads the next page and appends its rows to dst (which must
// share the stream's schema). It returns the number of rows appended;
// 0 with a nil error means the trailer was reached and the stream is
// complete.
func (d *ColumnarDecoder) ReadPage(dst *DataSet) (int, error) {
	if d.cols == nil {
		return 0, fmt.Errorf("dataset: columnar page read before schema")
	}
	if d.done {
		return 0, nil
	}
	if err := d.readFrame(); err != nil {
		return 0, err
	}
	p := d.buf
	if se := streamError(p); se != nil {
		d.done = true
		return 0, se
	}
	if len(p) < 4 {
		return 0, fmt.Errorf("dataset: columnar page truncated")
	}
	nrows := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if nrows == 0 {
		if len(p) != 0 {
			return 0, fmt.Errorf("dataset: columnar trailer has %d trailing bytes", len(p))
		}
		d.done = true
		return 0, nil
	}
	if nrows > maxFramePayload {
		return 0, fmt.Errorf("dataset: columnar page declares %d rows", nrows)
	}
	// One backing allocation for all cells of the page.
	flat := make([]value.Value, nrows*len(d.cols))
	rows := make([][]value.Value, nrows)
	for r := range rows {
		rows[r] = flat[r*len(d.cols) : (r+1)*len(d.cols) : (r+1)*len(d.cols)]
	}
	var err error
	for ci := range d.cols {
		p, err = decodeColumn(p, ci, rows)
		if err != nil {
			return 0, fmt.Errorf("dataset: columnar page column %d (%s): %w", ci, d.cols[ci].Name, err)
		}
	}
	if len(p) != 0 {
		return 0, fmt.Errorf("dataset: columnar page has %d trailing bytes", len(p))
	}
	dst.Rows = append(dst.Rows, rows...)
	return nrows, nil
}

// readNullBitmap consumes the hasNulls byte (and bitmap if set) and
// returns a function reporting whether row r is null.
func readNullBitmap(p []byte, nrows int) ([]byte, func(int) bool, error) {
	if len(p) < 1 {
		return nil, nil, fmt.Errorf("null header truncated")
	}
	hasNulls := p[0]
	p = p[1:]
	if hasNulls == 0 {
		return p, func(int) bool { return false }, nil
	}
	nb := (nrows + 7) / 8
	if len(p) < nb {
		return nil, nil, fmt.Errorf("null bitmap truncated")
	}
	bm := p[:nb]
	return p[nb:], func(r int) bool { return bm[r/8]&(1<<(r%8)) != 0 }, nil
}

// decodeColumn fills column ci of rows from p and returns the remainder.
func decodeColumn(p []byte, ci int, rows [][]value.Value) ([]byte, error) {
	if len(p) < 1 {
		return nil, fmt.Errorf("column tag truncated")
	}
	tag := p[0]
	p = p[1:]
	nrows := len(rows)
	switch tag {
	case tagNull:
		return p, nil // cells already zero == NULL
	case tagBoxed:
		for r := 0; r < nrows; r++ {
			if len(p) < 1 {
				return nil, fmt.Errorf("boxed cell truncated")
			}
			t := value.Type(p[0])
			p = p[1:]
			switch t {
			case value.NullType:
				// zero Value is NULL already
			case value.IntType:
				if len(p) < 8 {
					return nil, fmt.Errorf("boxed int truncated")
				}
				rows[r][ci] = value.Int(int64(binary.LittleEndian.Uint64(p)))
				p = p[8:]
			case value.FloatType:
				if len(p) < 8 {
					return nil, fmt.Errorf("boxed float truncated")
				}
				rows[r][ci] = value.Float(math.Float64frombits(binary.LittleEndian.Uint64(p)))
				p = p[8:]
			case value.StringType:
				if len(p) < 4 {
					return nil, fmt.Errorf("boxed string truncated")
				}
				n := binary.LittleEndian.Uint32(p)
				p = p[4:]
				if uint32(len(p)) < n {
					return nil, fmt.Errorf("boxed string truncated")
				}
				rows[r][ci] = value.String(string(p[:n]))
				p = p[n:]
			case value.BoolType:
				if len(p) < 1 {
					return nil, fmt.Errorf("boxed bool truncated")
				}
				rows[r][ci] = value.Bool(p[0] != 0)
				p = p[1:]
			default:
				return nil, fmt.Errorf("boxed cell has bad type %d", t)
			}
		}
		return p, nil
	}
	var isNull func(int) bool
	var err error
	p, isNull, err = readNullBitmap(p, nrows)
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagInt:
		if len(p) < nrows*8 {
			return nil, fmt.Errorf("int payload truncated")
		}
		for r := 0; r < nrows; r++ {
			if !isNull(r) {
				rows[r][ci] = value.Int(int64(binary.LittleEndian.Uint64(p[r*8:])))
			}
		}
		return p[nrows*8:], nil
	case tagFloat:
		if len(p) < nrows*8 {
			return nil, fmt.Errorf("float payload truncated")
		}
		for r := 0; r < nrows; r++ {
			if !isNull(r) {
				rows[r][ci] = value.Float(math.Float64frombits(binary.LittleEndian.Uint64(p[r*8:])))
			}
		}
		return p[nrows*8:], nil
	case tagString:
		if len(p) < nrows*4 {
			return nil, fmt.Errorf("string lengths truncated")
		}
		lens := p[:nrows*4]
		p = p[nrows*4:]
		total := uint64(0)
		for r := 0; r < nrows; r++ {
			total += uint64(binary.LittleEndian.Uint32(lens[r*4:]))
		}
		if uint64(len(p)) < total {
			return nil, fmt.Errorf("string payload truncated")
		}
		// One string allocation for the page's column; cells are slices
		// of it.
		blob := string(p[:total])
		p = p[total:]
		off := 0
		for r := 0; r < nrows; r++ {
			n := int(binary.LittleEndian.Uint32(lens[r*4:]))
			if !isNull(r) {
				rows[r][ci] = value.String(blob[off : off+n])
			}
			off += n
		}
		return p, nil
	case tagBool:
		nb := (nrows + 7) / 8
		if len(p) < nb {
			return nil, fmt.Errorf("bool payload truncated")
		}
		for r := 0; r < nrows; r++ {
			if !isNull(r) {
				rows[r][ci] = value.Bool(p[r/8]&(1<<(r%8)) != 0)
			}
		}
		return p[nb:], nil
	default:
		return nil, fmt.Errorf("bad column tag %d", tag)
	}
}

// DecodeColumnar reads a full columnar stream written by EncodeColumnar.
func DecodeColumnar(r io.Reader) (*DataSet, error) {
	dec := NewColumnarDecoder(r)
	cols, err := dec.ReadSchema()
	if err != nil {
		return nil, err
	}
	d := &DataSet{Columns: cols}
	for {
		n, err := dec.ReadPage(d)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return d, nil
		}
	}
}

// ColumnarSize returns the exact size in bytes of the columnar encoding
// at the default page size.
func (d *DataSet) ColumnarSize() int {
	var n countWriter
	if err := d.EncodeColumnar(&n, 0); err != nil {
		return 0
	}
	return int(n)
}
