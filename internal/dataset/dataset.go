// Package dataset defines the tabular payload exchanged between the
// Portal and the SkyNodes: an XML-serializable result set ("a serialized
// XML encoded SOAP message", §5.3). It supports splitting large sets into
// chunks — the workaround the paper describes for XML parsers dying on
// ~10 MB messages (§6) — and a compact binary encoding used only as the
// baseline in the serialization-overhead experiment.
package dataset

import (
	"encoding/gob"
	"encoding/xml"
	"fmt"
	"io"

	"skyquery/internal/value"
)

// Column describes one column of a data set.
type Column struct {
	Name string
	Type value.Type
}

// DataSet is an ordered, typed, nullable table of values.
type DataSet struct {
	Columns []Column
	Rows    [][]value.Value
}

// New returns an empty data set with the given columns.
func New(cols ...Column) *DataSet {
	return &DataSet{Columns: cols}
}

// ColumnIndex returns the position of the named column or -1.
func (d *DataSet) ColumnIndex(name string) int {
	for i, c := range d.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Append adds a row. The row is not copied.
func (d *DataSet) Append(row []value.Value) error {
	if len(row) != len(d.Columns) {
		return fmt.Errorf("dataset: row has %d values, want %d", len(row), len(d.Columns))
	}
	d.Rows = append(d.Rows, row)
	return nil
}

// NumRows returns the number of rows.
func (d *DataSet) NumRows() int { return len(d.Rows) }

// SchemaEqual reports whether two data sets have identical column lists.
func (d *DataSet) SchemaEqual(o *DataSet) bool {
	if len(d.Columns) != len(o.Columns) {
		return false
	}
	for i := range d.Columns {
		if d.Columns[i] != o.Columns[i] {
			return false
		}
	}
	return true
}

// Split partitions the data set into chunks of at most maxRows rows each,
// all sharing the schema. An empty set yields one empty chunk so that the
// receiver still learns the schema. maxRows <= 0 means no splitting.
func (d *DataSet) Split(maxRows int) []*DataSet {
	if maxRows <= 0 || len(d.Rows) <= maxRows {
		return []*DataSet{d}
	}
	var out []*DataSet
	for start := 0; start < len(d.Rows); start += maxRows {
		end := start + maxRows
		if end > len(d.Rows) {
			end = len(d.Rows)
		}
		out = append(out, &DataSet{Columns: d.Columns, Rows: d.Rows[start:end]})
	}
	return out
}

// Join concatenates chunks produced by Split. All chunks must share the
// schema of the first.
func Join(chunks []*DataSet) (*DataSet, error) {
	if len(chunks) == 0 {
		return nil, fmt.Errorf("dataset: no chunks to join")
	}
	out := &DataSet{Columns: chunks[0].Columns}
	for i, c := range chunks {
		if !out.SchemaEqual(c) {
			return nil, fmt.Errorf("dataset: chunk %d schema mismatch", i)
		}
		out.Rows = append(out.Rows, c.Rows...)
	}
	return out, nil
}

// The XML wire format (hand-rolled for speed — partial-tuple transfer
// between chain nodes is the federation's hottest serialization path, and
// encoding/xml's reflection layer was ~4× slower on both directions):
//
//	<DataSet>
//	  <Columns><Column name="ra" type="FLOAT"></Column>...</Columns>
//	  <Rows><R><C>185.1</C><C null="true"></C>...</R>...</Rows>
//	</DataSet>
//
// Cell values are rendered with value.Encode; NULLs carry a null
// attribute instead of text.

// EncodeXML writes the data set as XML.
func (d *DataSet) EncodeXML(w io.Writer) error {
	enc := xml.NewEncoder(w)
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("dataset: encode: %w", err)
	}
	return enc.Flush()
}

var (
	nameDataSet = xml.Name{Local: "DataSet"}
	nameColumns = xml.Name{Local: "Columns"}
	nameColumn  = xml.Name{Local: "Column"}
	nameRows    = xml.Name{Local: "Rows"}
	nameRow     = xml.Name{Local: "R"}
	nameCell    = xml.Name{Local: "C"}
	attrNull    = []xml.Attr{{Name: xml.Name{Local: "null"}, Value: "true"}}
)

// MarshalXML implements xml.Marshaler so a *DataSet embeds directly in
// SOAP bodies. The data set always serializes as its canonical <DataSet>
// element regardless of the suggested start element.
func (d *DataSet) MarshalXML(e *xml.Encoder, start xml.StartElement) error {
	// Emitted token by token: the reflection encoder builds an
	// intermediate struct tree and re-walks it, which dominated the
	// chain's serialization profile.
	if err := e.EncodeToken(xml.StartElement{Name: nameDataSet}); err != nil {
		return err
	}
	if err := e.EncodeToken(xml.StartElement{Name: nameColumns}); err != nil {
		return err
	}
	for _, c := range d.Columns {
		ce := xml.StartElement{Name: nameColumn, Attr: []xml.Attr{
			{Name: xml.Name{Local: "name"}, Value: c.Name},
			{Name: xml.Name{Local: "type"}, Value: c.Type.String()},
		}}
		if err := e.EncodeToken(ce); err != nil {
			return err
		}
		if err := e.EncodeToken(ce.End()); err != nil {
			return err
		}
	}
	if err := e.EncodeToken(xml.EndElement{Name: nameColumns}); err != nil {
		return err
	}
	if err := e.EncodeToken(xml.StartElement{Name: nameRows}); err != nil {
		return err
	}
	cellStart := xml.StartElement{Name: nameCell}
	nullStart := xml.StartElement{Name: nameCell, Attr: attrNull}
	for _, row := range d.Rows {
		if err := e.EncodeToken(xml.StartElement{Name: nameRow}); err != nil {
			return err
		}
		for _, v := range row {
			if v.IsNull() {
				if err := e.EncodeToken(nullStart); err != nil {
					return err
				}
			} else {
				if err := e.EncodeToken(cellStart); err != nil {
					return err
				}
				if err := e.EncodeToken(xml.CharData(v.Encode())); err != nil {
					return err
				}
			}
			if err := e.EncodeToken(xml.EndElement{Name: nameCell}); err != nil {
				return err
			}
		}
		if err := e.EncodeToken(xml.EndElement{Name: nameRow}); err != nil {
			return err
		}
	}
	if err := e.EncodeToken(xml.EndElement{Name: nameRows}); err != nil {
		return err
	}
	return e.EncodeToken(xml.EndElement{Name: nameDataSet})
}

// UnmarshalXML implements xml.Unmarshaler with a direct token walk over
// the subtree rooted at start; see the wire-format comment above.
func (d *DataSet) UnmarshalXML(dec *xml.Decoder, start xml.StartElement) error {
	// The reflection decoder enforced the root element name via XMLName;
	// keep doing so, or a mis-framed body (a fault, a truncated response)
	// would silently decode as a legitimate zero-row result.
	if start.Name.Local != "DataSet" {
		return fmt.Errorf("dataset: expected element <DataSet>, have <%s>", start.Name.Local)
	}
	d.Columns = d.Columns[:0]
	d.Rows = d.Rows[:0]
	var buf []byte
	depth := 0
	for {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "Columns", "Rows":
				depth++
			case "Column":
				var name, typ string
				for _, a := range t.Attr {
					switch a.Name.Local {
					case "name":
						name = a.Value
					case "type":
						typ = a.Value
					}
				}
				ct, err := value.ParseType(typ)
				if err != nil {
					return fmt.Errorf("dataset: column %q: %w", name, err)
				}
				d.Columns = append(d.Columns, Column{Name: name, Type: ct})
				if err := dec.Skip(); err != nil {
					return err
				}
			case "R":
				row, err := d.decodeRow(dec, t, &buf)
				if err != nil {
					return err
				}
				d.Rows = append(d.Rows, row)
			default:
				if err := dec.Skip(); err != nil {
					return err
				}
			}
		case xml.EndElement:
			if depth == 0 {
				return nil // </DataSet>
			}
			depth--
		}
	}
}

// decodeRow consumes one <R> element (start already read) and returns its
// cells decoded against the schema parsed so far.
func (d *DataSet) decodeRow(dec *xml.Decoder, start xml.StartElement, buf *[]byte) ([]value.Value, error) {
	row := make([]value.Value, 0, len(d.Columns))
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "C" {
				if err := dec.Skip(); err != nil {
					return nil, err
				}
				continue
			}
			null := false
			for _, a := range t.Attr {
				if a.Name.Local == "null" && (a.Value == "true" || a.Value == "1") {
					null = true
				}
			}
			*buf = (*buf)[:0]
		cell:
			for {
				ct, err := dec.Token()
				if err != nil {
					return nil, err
				}
				switch c := ct.(type) {
				case xml.CharData:
					*buf = append(*buf, c...)
				case xml.EndElement:
					break cell
				case xml.Comment, xml.ProcInst, xml.Directive:
					// Ignored, as the reflection decoder did.
				default:
					return nil, fmt.Errorf("dataset: row %d: unexpected token inside <C>", len(d.Rows))
				}
			}
			if len(row) >= len(d.Columns) {
				return nil, fmt.Errorf("dataset: row %d has more cells than the %d columns", len(d.Rows), len(d.Columns))
			}
			if null {
				row = append(row, value.Null)
				continue
			}
			v, err := value.Decode(string(*buf), d.Columns[len(row)].Type)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d col %d: %w", len(d.Rows), len(row), err)
			}
			row = append(row, v)
		case xml.EndElement:
			if len(row) != len(d.Columns) {
				return nil, fmt.Errorf("dataset: row %d has %d cells, want %d", len(d.Rows), len(row), len(d.Columns))
			}
			return row, nil
		}
	}
}

// DecodeXML reads a data set written by EncodeXML.
func DecodeXML(r io.Reader) (*DataSet, error) {
	d := &DataSet{}
	if err := xml.NewDecoder(r).Decode(d); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	return d, nil
}

// gobDataSet is the columnar binary wire form used by the serialization
// benchmark as the "CORBA-style" baseline the paper compares SOAP against.
type gobDataSet struct {
	Names  []string
	Types  []uint8
	NRows  int
	Ints   map[int][]int64
	Floats map[int][]float64
	Strs   map[int][]string
	Bools  map[int][]bool
	Nulls  map[int][]bool
}

// EncodeBinary writes a compact gob encoding of the data set.
func (d *DataSet) EncodeBinary(w io.Writer) error {
	g := gobDataSet{
		NRows:  len(d.Rows),
		Ints:   map[int][]int64{},
		Floats: map[int][]float64{},
		Strs:   map[int][]string{},
		Bools:  map[int][]bool{},
		Nulls:  map[int][]bool{},
	}
	for i, c := range d.Columns {
		g.Names = append(g.Names, c.Name)
		g.Types = append(g.Types, uint8(c.Type))
		nulls := make([]bool, len(d.Rows))
		switch c.Type {
		case value.IntType:
			col := make([]int64, len(d.Rows))
			for r, row := range d.Rows {
				if row[i].IsNull() {
					nulls[r] = true
				} else {
					col[r] = row[i].AsInt()
				}
			}
			g.Ints[i] = col
		case value.FloatType:
			col := make([]float64, len(d.Rows))
			for r, row := range d.Rows {
				if row[i].IsNull() {
					nulls[r] = true
				} else {
					col[r], _ = row[i].AsFloat()
				}
			}
			g.Floats[i] = col
		case value.StringType:
			col := make([]string, len(d.Rows))
			for r, row := range d.Rows {
				if row[i].IsNull() {
					nulls[r] = true
				} else {
					col[r] = row[i].AsString()
				}
			}
			g.Strs[i] = col
		case value.BoolType:
			col := make([]bool, len(d.Rows))
			for r, row := range d.Rows {
				if row[i].IsNull() {
					nulls[r] = true
				} else {
					col[r] = row[i].AsBool()
				}
			}
			g.Bools[i] = col
		default:
			return fmt.Errorf("dataset: cannot binary-encode column type %v", c.Type)
		}
		g.Nulls[i] = nulls
	}
	return gob.NewEncoder(w).Encode(g)
}

// DecodeBinary reads an EncodeBinary stream.
func DecodeBinary(r io.Reader) (*DataSet, error) {
	var g gobDataSet
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("dataset: binary decode: %w", err)
	}
	d := &DataSet{}
	for i, name := range g.Names {
		d.Columns = append(d.Columns, Column{Name: name, Type: value.Type(g.Types[i])})
	}
	d.Rows = make([][]value.Value, g.NRows)
	for r := 0; r < g.NRows; r++ {
		d.Rows[r] = make([]value.Value, len(d.Columns))
	}
	for i, c := range d.Columns {
		nulls := g.Nulls[i]
		for r := 0; r < g.NRows; r++ {
			if nulls != nil && nulls[r] {
				d.Rows[r][i] = value.Null
				continue
			}
			switch c.Type {
			case value.IntType:
				d.Rows[r][i] = value.Int(g.Ints[i][r])
			case value.FloatType:
				d.Rows[r][i] = value.Float(g.Floats[i][r])
			case value.StringType:
				d.Rows[r][i] = value.String(g.Strs[i][r])
			case value.BoolType:
				d.Rows[r][i] = value.Bool(g.Bools[i][r])
			default:
				return nil, fmt.Errorf("dataset: bad column type %v", c.Type)
			}
		}
	}
	return d, nil
}

// XMLSize returns the exact size in bytes of the XML encoding.
func (d *DataSet) XMLSize() int {
	var n countWriter
	if err := d.EncodeXML(&n); err != nil {
		return 0
	}
	return int(n)
}

type countWriter int64

func (c *countWriter) Write(p []byte) (int, error) {
	*c += countWriter(len(p))
	return len(p), nil
}
