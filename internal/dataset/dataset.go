// Package dataset defines the tabular payload exchanged between the
// Portal and the SkyNodes: an XML-serializable result set ("a serialized
// XML encoded SOAP message", §5.3). It supports splitting large sets into
// chunks — the workaround the paper describes for XML parsers dying on
// ~10 MB messages (§6) — and a compact binary encoding used only as the
// baseline in the serialization-overhead experiment.
package dataset

import (
	"encoding/gob"
	"encoding/xml"
	"fmt"
	"io"

	"skyquery/internal/value"
)

// Column describes one column of a data set.
type Column struct {
	Name string
	Type value.Type
}

// DataSet is an ordered, typed, nullable table of values.
type DataSet struct {
	Columns []Column
	Rows    [][]value.Value
}

// New returns an empty data set with the given columns.
func New(cols ...Column) *DataSet {
	return &DataSet{Columns: cols}
}

// ColumnIndex returns the position of the named column or -1.
func (d *DataSet) ColumnIndex(name string) int {
	for i, c := range d.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Append adds a row. The row is not copied.
func (d *DataSet) Append(row []value.Value) error {
	if len(row) != len(d.Columns) {
		return fmt.Errorf("dataset: row has %d values, want %d", len(row), len(d.Columns))
	}
	d.Rows = append(d.Rows, row)
	return nil
}

// NumRows returns the number of rows.
func (d *DataSet) NumRows() int { return len(d.Rows) }

// SchemaEqual reports whether two data sets have identical column lists.
func (d *DataSet) SchemaEqual(o *DataSet) bool {
	if len(d.Columns) != len(o.Columns) {
		return false
	}
	for i := range d.Columns {
		if d.Columns[i] != o.Columns[i] {
			return false
		}
	}
	return true
}

// Split partitions the data set into chunks of at most maxRows rows each,
// all sharing the schema. An empty set yields one empty chunk so that the
// receiver still learns the schema. maxRows <= 0 means no splitting.
func (d *DataSet) Split(maxRows int) []*DataSet {
	if maxRows <= 0 || len(d.Rows) <= maxRows {
		return []*DataSet{d}
	}
	var out []*DataSet
	for start := 0; start < len(d.Rows); start += maxRows {
		end := start + maxRows
		if end > len(d.Rows) {
			end = len(d.Rows)
		}
		out = append(out, &DataSet{Columns: d.Columns, Rows: d.Rows[start:end]})
	}
	return out
}

// Join concatenates chunks produced by Split. All chunks must share the
// schema of the first.
func Join(chunks []*DataSet) (*DataSet, error) {
	if len(chunks) == 0 {
		return nil, fmt.Errorf("dataset: no chunks to join")
	}
	out := &DataSet{Columns: chunks[0].Columns}
	for i, c := range chunks {
		if !out.SchemaEqual(c) {
			return nil, fmt.Errorf("dataset: chunk %d schema mismatch", i)
		}
		out.Rows = append(out.Rows, c.Rows...)
	}
	return out, nil
}

// xmlDataSet is the wire representation. Cell values are rendered with
// value.Encode; NULLs carry a null attribute instead of text.
type xmlDataSet struct {
	XMLName xml.Name    `xml:"DataSet"`
	Columns []xmlColumn `xml:"Columns>Column"`
	Rows    []xmlRow    `xml:"Rows>R"`
}

type xmlColumn struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr"`
}

type xmlRow struct {
	Cells []xmlCell `xml:"C"`
}

type xmlCell struct {
	Null  bool   `xml:"null,attr,omitempty"`
	Value string `xml:",chardata"`
}

// toWire builds the XML wire representation.
func (d *DataSet) toWire() xmlDataSet {
	x := xmlDataSet{}
	for _, c := range d.Columns {
		x.Columns = append(x.Columns, xmlColumn{Name: c.Name, Type: c.Type.String()})
	}
	x.Rows = make([]xmlRow, len(d.Rows))
	for i, row := range d.Rows {
		cells := make([]xmlCell, len(row))
		for j, v := range row {
			if v.IsNull() {
				cells[j] = xmlCell{Null: true}
			} else {
				cells[j] = xmlCell{Value: v.Encode()}
			}
		}
		x.Rows[i] = xmlRow{Cells: cells}
	}
	return x
}

// EncodeXML writes the data set as XML.
func (d *DataSet) EncodeXML(w io.Writer) error {
	enc := xml.NewEncoder(w)
	if err := enc.Encode(d.toWire()); err != nil {
		return fmt.Errorf("dataset: encode: %w", err)
	}
	return enc.Flush()
}

// MarshalXML implements xml.Marshaler so a *DataSet embeds directly in
// SOAP bodies. The data set always serializes as its canonical <DataSet>
// element regardless of the suggested start element.
func (d *DataSet) MarshalXML(e *xml.Encoder, start xml.StartElement) error {
	return e.Encode(d.toWire())
}

// UnmarshalXML implements xml.Unmarshaler.
func (d *DataSet) UnmarshalXML(dec *xml.Decoder, start xml.StartElement) error {
	var x xmlDataSet
	if err := dec.DecodeElement(&x, &start); err != nil {
		return err
	}
	return d.fromWire(&x)
}

// DecodeXML reads a data set written by EncodeXML.
func DecodeXML(r io.Reader) (*DataSet, error) {
	var x xmlDataSet
	if err := xml.NewDecoder(r).Decode(&x); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	d := &DataSet{}
	if err := d.fromWire(&x); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *DataSet) fromWire(x *xmlDataSet) error {
	d.Columns = d.Columns[:0]
	d.Rows = d.Rows[:0]
	for _, c := range x.Columns {
		t, err := value.ParseType(c.Type)
		if err != nil {
			return fmt.Errorf("dataset: column %q: %w", c.Name, err)
		}
		d.Columns = append(d.Columns, Column{Name: c.Name, Type: t})
	}
	for i, row := range x.Rows {
		if len(row.Cells) != len(d.Columns) {
			return fmt.Errorf("dataset: row %d has %d cells, want %d", i, len(row.Cells), len(d.Columns))
		}
		vals := make([]value.Value, len(row.Cells))
		for j, cell := range row.Cells {
			if cell.Null {
				vals[j] = value.Null
				continue
			}
			v, err := value.Decode(cell.Value, d.Columns[j].Type)
			if err != nil {
				return fmt.Errorf("dataset: row %d col %d: %w", i, j, err)
			}
			vals[j] = v
		}
		d.Rows = append(d.Rows, vals)
	}
	return nil
}

// gobDataSet is the columnar binary wire form used by the serialization
// benchmark as the "CORBA-style" baseline the paper compares SOAP against.
type gobDataSet struct {
	Names  []string
	Types  []uint8
	NRows  int
	Ints   map[int][]int64
	Floats map[int][]float64
	Strs   map[int][]string
	Bools  map[int][]bool
	Nulls  map[int][]bool
}

// EncodeBinary writes a compact gob encoding of the data set.
func (d *DataSet) EncodeBinary(w io.Writer) error {
	g := gobDataSet{
		NRows:  len(d.Rows),
		Ints:   map[int][]int64{},
		Floats: map[int][]float64{},
		Strs:   map[int][]string{},
		Bools:  map[int][]bool{},
		Nulls:  map[int][]bool{},
	}
	for i, c := range d.Columns {
		g.Names = append(g.Names, c.Name)
		g.Types = append(g.Types, uint8(c.Type))
		nulls := make([]bool, len(d.Rows))
		switch c.Type {
		case value.IntType:
			col := make([]int64, len(d.Rows))
			for r, row := range d.Rows {
				if row[i].IsNull() {
					nulls[r] = true
				} else {
					col[r] = row[i].AsInt()
				}
			}
			g.Ints[i] = col
		case value.FloatType:
			col := make([]float64, len(d.Rows))
			for r, row := range d.Rows {
				if row[i].IsNull() {
					nulls[r] = true
				} else {
					col[r], _ = row[i].AsFloat()
				}
			}
			g.Floats[i] = col
		case value.StringType:
			col := make([]string, len(d.Rows))
			for r, row := range d.Rows {
				if row[i].IsNull() {
					nulls[r] = true
				} else {
					col[r] = row[i].AsString()
				}
			}
			g.Strs[i] = col
		case value.BoolType:
			col := make([]bool, len(d.Rows))
			for r, row := range d.Rows {
				if row[i].IsNull() {
					nulls[r] = true
				} else {
					col[r] = row[i].AsBool()
				}
			}
			g.Bools[i] = col
		default:
			return fmt.Errorf("dataset: cannot binary-encode column type %v", c.Type)
		}
		g.Nulls[i] = nulls
	}
	return gob.NewEncoder(w).Encode(g)
}

// DecodeBinary reads an EncodeBinary stream.
func DecodeBinary(r io.Reader) (*DataSet, error) {
	var g gobDataSet
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("dataset: binary decode: %w", err)
	}
	d := &DataSet{}
	for i, name := range g.Names {
		d.Columns = append(d.Columns, Column{Name: name, Type: value.Type(g.Types[i])})
	}
	d.Rows = make([][]value.Value, g.NRows)
	for r := 0; r < g.NRows; r++ {
		d.Rows[r] = make([]value.Value, len(d.Columns))
	}
	for i, c := range d.Columns {
		nulls := g.Nulls[i]
		for r := 0; r < g.NRows; r++ {
			if nulls != nil && nulls[r] {
				d.Rows[r][i] = value.Null
				continue
			}
			switch c.Type {
			case value.IntType:
				d.Rows[r][i] = value.Int(g.Ints[i][r])
			case value.FloatType:
				d.Rows[r][i] = value.Float(g.Floats[i][r])
			case value.StringType:
				d.Rows[r][i] = value.String(g.Strs[i][r])
			case value.BoolType:
				d.Rows[r][i] = value.Bool(g.Bools[i][r])
			default:
				return nil, fmt.Errorf("dataset: bad column type %v", c.Type)
			}
		}
	}
	return d, nil
}

// XMLSize returns the exact size in bytes of the XML encoding.
func (d *DataSet) XMLSize() int {
	var n countWriter
	if err := d.EncodeXML(&n); err != nil {
		return 0
	}
	return int(n)
}

type countWriter int64

func (c *countWriter) Write(p []byte) (int, error) {
	*c += countWriter(len(p))
	return len(p), nil
}
