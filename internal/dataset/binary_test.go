package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"unicode/utf8"

	"skyquery/internal/value"
)

func TestColumnarRoundTrip(t *testing.T) {
	for _, rows := range []int{0, 1, 3, 64, 2500} {
		d := sample(rows, int64(rows)+10)
		var buf bytes.Buffer
		if err := d.EncodeColumnar(&buf, 0); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeColumnar(&buf)
		if err != nil {
			t.Fatalf("%d rows: %v", rows, err)
		}
		if !equal(d, got) {
			t.Errorf("%d rows: columnar round trip mismatch", rows)
		}
	}
}

func TestColumnarPaging(t *testing.T) {
	d := sample(103, 11)
	var buf bytes.Buffer
	if err := d.EncodeColumnar(&buf, 7); err != nil {
		t.Fatal(err)
	}
	dec := NewColumnarDecoder(&buf)
	cols, err := dec.ReadSchema()
	if err != nil {
		t.Fatal(err)
	}
	got := &DataSet{Columns: cols}
	pages := 0
	for {
		n, err := dec.ReadPage(got)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		if n > 7 {
			t.Fatalf("page of %d rows, want <= 7", n)
		}
		pages++
	}
	if pages != 15 {
		t.Errorf("pages = %d, want 15", pages)
	}
	if !equal(d, got) {
		t.Error("paged round trip mismatch")
	}
}

func TestColumnarSpecialFloats(t *testing.T) {
	d := New(Column{Name: "f", Type: value.FloatType})
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 1e-308, math.MaxFloat64} {
		d.Append([]value.Value{value.Float(f)})
	}
	d.Append([]value.Value{value.Null})
	var buf bytes.Buffer
	if err := d.EncodeColumnar(&buf, 0); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeColumnar(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equal(d, got) {
		t.Error("special floats mismatch")
	}
	// Bit-exactness for -0 (value.Equal treats -0 == +0).
	f, _ := got.Rows[3][0].AsFloat()
	if math.Float64bits(f) != math.Float64bits(math.Copysign(0, -1)) {
		t.Error("-0 lost its sign bit")
	}
}

func TestColumnarIntCellsInFloatColumn(t *testing.T) {
	// The XML codec widens int cells through text re-parse; the native
	// float path must do the same.
	d := New(Column{Name: "f", Type: value.FloatType})
	d.Append([]value.Value{value.Int(42)})
	d.Append([]value.Value{value.Float(1.5)})
	var buf bytes.Buffer
	if err := d.EncodeColumnar(&buf, 0); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeColumnar(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := got.Rows[0][0].AsFloat(); f != 42 || got.Rows[0][0].Type() != value.FloatType {
		t.Errorf("int-in-float cell = %v", got.Rows[0][0])
	}
}

func TestColumnarBoxedFallback(t *testing.T) {
	// Off-schema cells (a string in an INT column) are legal in DataSet;
	// the boxed column block must round-trip them exactly.
	d := New(Column{Name: "x", Type: value.IntType}, Column{Name: "n", Type: value.NullType})
	d.Append([]value.Value{value.Int(7), value.Null})
	d.Append([]value.Value{value.String("stray"), value.Null})
	d.Append([]value.Value{value.Bool(true), value.Null})
	d.Append([]value.Value{value.Float(2.5), value.Null})
	d.Append([]value.Value{value.Null, value.Null})
	var buf bytes.Buffer
	if err := d.EncodeColumnar(&buf, 0); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeColumnar(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equal(d, got) {
		t.Error("boxed fallback mismatch")
	}
	if got.Rows[1][0].AsString() != "stray" || got.Rows[3][0].Type() != value.FloatType {
		t.Errorf("boxed cells lost their types: %v %v", got.Rows[1][0], got.Rows[3][0])
	}
}

func TestColumnarNullVsEmptyString(t *testing.T) {
	d := New(Column{Name: "s", Type: value.StringType})
	d.Append([]value.Value{value.Null})
	d.Append([]value.Value{value.String("")})
	var buf bytes.Buffer
	if err := d.EncodeColumnar(&buf, 0); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeColumnar(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Rows[0][0].IsNull() {
		t.Error("NULL lost in round trip")
	}
	if got.Rows[1][0].IsNull() {
		t.Error("empty string became NULL")
	}
}

func TestColumnarTornFrames(t *testing.T) {
	d := sample(9, 12)
	var buf bytes.Buffer
	if err := d.EncodeColumnar(&buf, 4); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n++ {
		if _, err := DecodeColumnar(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", n, len(full))
		}
	}
}

func TestColumnarCorruption(t *testing.T) {
	d := sample(9, 13)
	var buf bytes.Buffer
	if err := d.EncodeColumnar(&buf, 0); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for i := range full {
		mut := bytes.Clone(full)
		mut[i] ^= 0x40
		got, err := DecodeColumnar(bytes.NewReader(mut))
		if err == nil && !equal(d, got) {
			t.Fatalf("flip at byte %d decoded to a different set without error", i)
		}
	}
}

func TestColumnarGarbage(t *testing.T) {
	if _, err := DecodeColumnar(strings.NewReader("junk stream")); err == nil {
		t.Error("garbage should fail")
	}
	// A huge declared frame length must be rejected, not allocated.
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := DecodeColumnar(bytes.NewReader(hdr)); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized frame err = %v", err)
	}
}

func TestColumnarSmallerThanXML(t *testing.T) {
	d := sample(2000, 14)
	if cs, xs := d.ColumnarSize(), d.XMLSize(); cs == 0 || cs >= xs {
		t.Errorf("columnar (%d) should be smaller than XML (%d)", cs, xs)
	}
}

// fuzzReader derives structured choices from fuzz bytes.
type fuzzReader struct {
	data []byte
	pos  int
}

func (f *fuzzReader) byte() byte {
	if f.pos >= len(f.data) {
		return 0
	}
	b := f.data[f.pos]
	f.pos++
	return b
}

func (f *fuzzReader) uint64() uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(f.byte())
	}
	return v
}

func (f *fuzzReader) str() string {
	n := int(f.byte()) % 16
	end := f.pos + n
	if end > len(f.data) {
		end = len(f.data)
	}
	s := string(f.data[f.pos:end])
	f.pos = end
	return s
}

// buildFuzzDataSet turns fuzz bytes into a schema-conforming DataSet.
func buildFuzzDataSet(fr *fuzzReader) *DataSet {
	ncols := int(fr.byte())%5 + 1
	d := &DataSet{}
	for i := 0; i < ncols; i++ {
		t := value.Type(fr.byte() % 5)
		d.Columns = append(d.Columns, Column{Name: "c" + string(rune('a'+i)), Type: t})
	}
	nrows := int(fr.byte()) % 60
	for r := 0; r < nrows; r++ {
		row := make([]value.Value, ncols)
		for c := 0; c < ncols; c++ {
			choice := fr.byte()
			if choice%7 == 0 {
				row[c] = value.Null
				continue
			}
			switch d.Columns[c].Type {
			case value.IntType:
				row[c] = value.Int(int64(fr.uint64()))
			case value.FloatType:
				switch choice % 5 {
				case 0:
					row[c] = value.Float(math.NaN())
				case 1:
					row[c] = value.Int(int64(fr.uint64()) % 1000) // widened like XML
				default:
					row[c] = value.Float(math.Float64frombits(fr.uint64()))
				}
			case value.StringType:
				row[c] = value.String(fr.str())
			case value.BoolType:
				row[c] = value.Bool(choice%2 == 0)
			case value.NullType:
				row[c] = value.Null
			}
		}
		d.Rows = append(d.Rows, row)
	}
	return d
}

// xmlSafe reports whether every string cell survives XML text encoding
// unmangled (valid UTF-8, no control characters, no \r normalization).
func xmlSafe(d *DataSet) bool {
	for _, row := range d.Rows {
		for _, v := range row {
			if v.Type() != value.StringType {
				continue
			}
			s := v.AsString()
			if !utf8.ValidString(s) {
				return false
			}
			for _, r := range s {
				if r < 0x20 && r != '\t' && r != '\n' {
					return false
				}
				if r == 0xFFFD {
					return false
				}
			}
		}
	}
	return true
}

// FuzzBinaryCodec is the differential fuzz target: the columnar codec
// must round-trip any schema-conforming DataSet exactly, agree with the
// XML codec wherever XML is lossless, and reject torn or bit-flipped
// streams instead of mis-decoding them.
func FuzzBinaryCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 1, 2, 3, 10, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{1, 2, 4, 0, 0, 0, 0, 0, 0, 0, 0, 1, 5, 'h', 'i'})
	f.Add(bytes.Repeat([]byte{0xff, 0x00, 0x7a}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := &fuzzReader{data: data}
		d := buildFuzzDataSet(fr)

		var bin bytes.Buffer
		pageRows := int(fr.byte())%10 + 1
		if err := d.EncodeColumnar(&bin, pageRows); err != nil {
			t.Fatalf("encode: %v", err)
		}
		encoded := bytes.Clone(bin.Bytes())
		got, err := DecodeColumnar(&bin)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !equal(d, got) {
			t.Fatal("columnar round trip mismatch")
		}

		// Differential vs the XML codec where XML is lossless.
		if xmlSafe(d) {
			var x bytes.Buffer
			if err := d.EncodeXML(&x); err == nil {
				if viaXML, err := DecodeXML(&x); err == nil {
					if !equal(viaXML, got) {
						t.Fatal("columnar and XML codecs disagree")
					}
				}
			}
		}

		// Torn frame: any strict prefix must error.
		if len(encoded) > 0 {
			cut := int(fr.uint64() % uint64(len(encoded)))
			if _, err := DecodeColumnar(bytes.NewReader(encoded[:cut])); err == nil {
				t.Fatalf("torn stream (cut at %d/%d) decoded without error", cut, len(encoded))
			}
			// Bit flip: must error or still decode to the same set.
			flip := int(fr.uint64() % uint64(len(encoded)))
			mut := bytes.Clone(encoded)
			mut[flip] ^= 1 << (fr.byte() % 8)
			if mutGot, err := DecodeColumnar(bytes.NewReader(mut)); err == nil && !equal(d, mutGot) {
				t.Fatalf("bit flip at %d decoded to a different set without error", flip)
			}
		}
	})
}

func TestColumnarErrorFrame(t *testing.T) {
	// Mid-stream: schema + one page, then an error frame instead of the
	// trailer. The rows before the failure decode; the failure itself
	// arrives as a typed *StreamError, not a truncation.
	d := sample(10, 3)
	var buf bytes.Buffer
	enc := NewColumnarEncoder(&buf)
	if err := enc.WriteSchema(d.Columns); err != nil {
		t.Fatal(err)
	}
	if err := enc.WritePage(d.Rows); err != nil {
		t.Fatal(err)
	}
	if err := enc.WriteError("node b2 went away"); err != nil {
		t.Fatal(err)
	}
	dec := NewColumnarDecoder(&buf)
	if _, err := dec.ReadSchema(); err != nil {
		t.Fatal(err)
	}
	got := &DataSet{Columns: d.Columns}
	if n, err := dec.ReadPage(got); err != nil || n != 10 {
		t.Fatalf("first page: n=%d err=%v", n, err)
	}
	_, err := dec.ReadPage(got)
	se, ok := err.(*StreamError)
	if !ok {
		t.Fatalf("err = %v (%T), want *StreamError", err, err)
	}
	if se.Msg != "node b2 went away" {
		t.Errorf("message = %q", se.Msg)
	}
	// The stream is poisoned: further reads stay done.
	if n, err := dec.ReadPage(got); n != 0 || err != nil {
		t.Errorf("read after error: n=%d err=%v", n, err)
	}
}

func TestColumnarErrorBeforeSchema(t *testing.T) {
	// A producer can fail before it knows its output schema (e.g. the
	// downstream call that would provide it failed).
	var buf bytes.Buffer
	enc := NewColumnarEncoder(&buf)
	if err := enc.WriteError("could not open downstream stream"); err != nil {
		t.Fatal(err)
	}
	dec := NewColumnarDecoder(&buf)
	_, err := dec.ReadSchema()
	se, ok := err.(*StreamError)
	if !ok || se.Msg != "could not open downstream stream" {
		t.Fatalf("err = %v (%T), want *StreamError", err, err)
	}
}

func TestColumnarErrorMessageTruncated(t *testing.T) {
	var buf bytes.Buffer
	enc := NewColumnarEncoder(&buf)
	if err := enc.WriteError(strings.Repeat("x", maxStreamErrorLen+100)); err != nil {
		t.Fatal(err)
	}
	dec := NewColumnarDecoder(&buf)
	_, err := dec.ReadSchema()
	se, ok := err.(*StreamError)
	if !ok || len(se.Msg) != maxStreamErrorLen {
		t.Fatalf("err = %T, len = %d", err, len(se.Msg))
	}
}
