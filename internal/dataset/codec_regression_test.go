package dataset

// Regression coverage for the hand-rolled XML codec's compatibility with
// what the old reflection decoder accepted and rejected.

import (
	"strings"
	"testing"

	"skyquery/internal/value"
)

func TestDecodeRejectsWrongRootElement(t *testing.T) {
	if _, err := DecodeXML(strings.NewReader(`<Fault><Code>oops</Code></Fault>`)); err == nil {
		t.Fatal("mis-framed document decoded as a dataset instead of erroring")
	}
}

func TestDecodeIgnoresCommentsInsideCells(t *testing.T) {
	src := `<DataSet><Columns><Column name="x" type="INT"></Column></Columns>` +
		`<Rows><R><C>1<!-- split -->2</C></R></Rows></DataSet>`
	d, err := DecodeXML(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 1 || !value.Equal(d.Rows[0][0], value.Int(12)) {
		t.Fatalf("got %v, want one row with 12", d.Rows)
	}
}
