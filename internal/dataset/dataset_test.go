package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"skyquery/internal/value"
)

func sample(nRows int, seed int64) *DataSet {
	rng := rand.New(rand.NewSource(seed))
	d := New(
		Column{Name: "object_id", Type: value.IntType},
		Column{Name: "ra", Type: value.FloatType},
		Column{Name: "type", Type: value.StringType},
		Column{Name: "flagged", Type: value.BoolType},
	)
	for i := 0; i < nRows; i++ {
		row := []value.Value{
			value.Int(int64(i)),
			value.Float(rng.Float64() * 360),
			value.String("GALAXY"),
			value.Bool(i%2 == 0),
		}
		if i%5 == 3 {
			row[2] = value.Null
		}
		if err := d.Append(row); err != nil {
			panic(err)
		}
	}
	return d
}

func equal(a, b *DataSet) bool {
	if !a.SchemaEqual(b) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if !value.Equal(a.Rows[i][j], b.Rows[i][j]) {
				return false
			}
		}
	}
	return true
}

func TestAppendArity(t *testing.T) {
	d := New(Column{Name: "a", Type: value.IntType})
	if err := d.Append([]value.Value{value.Int(1), value.Int(2)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := d.Append([]value.Value{value.Int(1)}); err != nil {
		t.Error(err)
	}
	if d.NumRows() != 1 {
		t.Errorf("NumRows = %d", d.NumRows())
	}
}

func TestColumnIndex(t *testing.T) {
	d := sample(1, 1)
	if d.ColumnIndex("ra") != 1 {
		t.Errorf("ColumnIndex(ra) = %d", d.ColumnIndex("ra"))
	}
	if d.ColumnIndex("nope") != -1 {
		t.Error("missing column should be -1")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	d := sample(57, 2)
	var buf bytes.Buffer
	if err := d.EncodeXML(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equal(d, got) {
		t.Error("XML round trip mismatch")
	}
}

func TestXMLEmpty(t *testing.T) {
	d := New(Column{Name: "x", Type: value.IntType})
	var buf bytes.Buffer
	if err := d.EncodeXML(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Columns) != 1 || got.NumRows() != 0 {
		t.Errorf("empty round trip: %+v", got)
	}
}

func TestXMLSpecialCharacters(t *testing.T) {
	d := New(Column{Name: "s", Type: value.StringType})
	nasty := []string{"<tag>", "a&b", "quote\"inside", "new\nline", "ümlaut 星"}
	for _, s := range nasty {
		d.Append([]value.Value{value.String(s)})
	}
	var buf bytes.Buffer
	if err := d.EncodeXML(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range nasty {
		if got.Rows[i][0].AsString() != s {
			t.Errorf("row %d = %q, want %q", i, got.Rows[i][0].AsString(), s)
		}
	}
}

func TestXMLNullVsEmptyString(t *testing.T) {
	d := New(Column{Name: "s", Type: value.StringType})
	d.Append([]value.Value{value.Null})
	d.Append([]value.Value{value.String("")})
	var buf bytes.Buffer
	if err := d.EncodeXML(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Rows[0][0].IsNull() {
		t.Error("NULL lost in round trip")
	}
	if got.Rows[1][0].IsNull() || got.Rows[1][0].AsString() != "" {
		t.Error("empty string became NULL")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeXML(strings.NewReader("not xml at all")); err == nil {
		t.Error("garbage should fail")
	}
	badType := `<DataSet><Columns><Column name="x" type="NOPE"/></Columns><Rows/></DataSet>`
	if _, err := DecodeXML(strings.NewReader(badType)); err == nil {
		t.Error("bad type should fail")
	}
	badArity := `<DataSet><Columns><Column name="x" type="INT"/></Columns><Rows><R><C>1</C><C>2</C></R></Rows></DataSet>`
	if _, err := DecodeXML(strings.NewReader(badArity)); err == nil {
		t.Error("cell arity mismatch should fail")
	}
	badCell := `<DataSet><Columns><Column name="x" type="INT"/></Columns><Rows><R><C>notanint</C></R></Rows></DataSet>`
	if _, err := DecodeXML(strings.NewReader(badCell)); err == nil {
		t.Error("bad cell should fail")
	}
}

func TestSplitJoin(t *testing.T) {
	d := sample(103, 3)
	chunks := d.Split(25)
	if len(chunks) != 5 {
		t.Fatalf("chunks = %d, want 5", len(chunks))
	}
	for i, c := range chunks[:4] {
		if c.NumRows() != 25 {
			t.Errorf("chunk %d rows = %d", i, c.NumRows())
		}
	}
	if chunks[4].NumRows() != 3 {
		t.Errorf("last chunk rows = %d", chunks[4].NumRows())
	}
	joined, err := Join(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if !equal(d, joined) {
		t.Error("split/join round trip mismatch")
	}
}

func TestSplitEdgeCases(t *testing.T) {
	d := sample(10, 4)
	if got := d.Split(0); len(got) != 1 || got[0] != d {
		t.Error("maxRows<=0 should not split")
	}
	if got := d.Split(10); len(got) != 1 {
		t.Error("exact fit should not split")
	}
	empty := New(Column{Name: "x", Type: value.IntType})
	if got := empty.Split(5); len(got) != 1 {
		t.Error("empty set should yield one chunk")
	}
}

func TestJoinErrors(t *testing.T) {
	if _, err := Join(nil); err == nil {
		t.Error("joining nothing should fail")
	}
	a := New(Column{Name: "x", Type: value.IntType})
	b := New(Column{Name: "y", Type: value.IntType})
	if _, err := Join([]*DataSet{a, b}); err == nil {
		t.Error("schema mismatch should fail")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	d := sample(64, 5)
	var buf bytes.Buffer
	if err := d.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equal(d, got) {
		t.Error("binary round trip mismatch")
	}
}

func TestBinarySmallerThanXML(t *testing.T) {
	d := sample(2000, 6)
	var xmlBuf, binBuf bytes.Buffer
	if err := d.EncodeXML(&xmlBuf); err != nil {
		t.Fatal(err)
	}
	if err := d.EncodeBinary(&binBuf); err != nil {
		t.Fatal(err)
	}
	if binBuf.Len() >= xmlBuf.Len() {
		t.Errorf("binary (%d) should be smaller than XML (%d)", binBuf.Len(), xmlBuf.Len())
	}
}

func TestXMLSize(t *testing.T) {
	d := sample(10, 7)
	var buf bytes.Buffer
	if err := d.EncodeXML(&buf); err != nil {
		t.Fatal(err)
	}
	if got := d.XMLSize(); got != buf.Len() {
		t.Errorf("XMLSize = %d, want %d", got, buf.Len())
	}
}

func TestDecodeBinaryGarbage(t *testing.T) {
	if _, err := DecodeBinary(strings.NewReader("junk")); err == nil {
		t.Error("garbage binary should fail")
	}
}
