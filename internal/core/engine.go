// Package core is the paper's primary contribution assembled into one
// engine: federated cross-match query processing. It parses the dialect,
// validates a query against the federation catalog, decomposes the WHERE
// clause (§5.3), fans out count-star performance queries, builds the
// count-ordered execution plan (drop-outs first in call order, mandatory
// archives by decreasing count), launches the daisy chain, and projects
// the final tuples into the client-visible result.
//
// The engine is transport-agnostic: the Portal provides SOAP-backed
// implementations of Catalog and Services, while tests and benchmarks can
// plug in in-process fakes. The pull-to-portal baseline executor — the
// design the paper explicitly rejects ("Many federations ... pull results
// from each database to the Portal. SkyQuery, instead, moves the partial
// results ... along a chain") — lives in baseline.go for the comparison
// experiments.
package core

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"skyquery/internal/dataset"
	"skyquery/internal/plan"
	"skyquery/internal/sqlparse"
)

// TableInfo describes one table of an archive as known to the catalog.
type TableInfo struct {
	Name    string
	Rows    int64
	Columns map[string]string // column name -> type name
}

// Archive is the catalog's view of one federated SkyNode.
type Archive struct {
	Name         string
	Endpoint     string
	PrimaryTable string
	RACol        string
	DecCol       string
	SigmaArcsec  float64
	Tables       map[string]TableInfo
}

// Catalog resolves archive names to metadata. The Portal's registration
// catalog implements it.
type Catalog interface {
	Archive(name string) (*Archive, error)
}

// Services performs the remote operations of the federation. Every
// method takes the query's context first: cancelling it aborts the
// in-flight HTTP exchanges behind the call.
type Services interface {
	// CountStar runs a performance query (SELECT COUNT(*) ...) at the
	// archive and returns the bound. area is the query's AREA clause,
	// passed structurally so a sharded backend can route the probe to
	// only the shards whose trixel ranges the area covers.
	CountStar(ctx context.Context, a *Archive, sql string, area plan.Area) (int64, error)
	// CrossMatch hands the plan to the first step's node and returns the
	// final partial-tuple set that flowed back up the chain.
	CrossMatch(ctx context.Context, p *plan.Plan) (*dataset.DataSet, error)
	// TableQuery runs a complete single-archive query and returns its
	// rows (used for pass-through queries and the pull baseline).
	TableQuery(ctx context.Context, a *Archive, sql string) (*dataset.DataSet, error)
}

// StatsProbe is the planner's statistics request for one archive: the
// table, the query's AREA, and the archive-local predicate whose
// selectivity the node should estimate against its column statistics.
type StatsProbe struct {
	Table      string
	Alias      string
	LocalWhere string
	Area       plan.Area
}

// StatsEstimate is a node's answer to a StatsProbe.
type StatsEstimate struct {
	// TableRows is the table's current row count.
	TableRows int64
	// AreaRows is the spatial-index candidate bound inside the AREA.
	AreaRows int64
	// EstRows is the estimated surviving candidate count after AREA and
	// local-predicate pruning.
	EstRows float64
	// Selectivity is the estimated surviving fraction of the local
	// predicate (1 when there is none).
	Selectivity float64
	// HasStats is false when the node's store predates maintained column
	// statistics; the planner then falls back to the count-star probe.
	HasStats bool
}

// StatsServices is optionally implemented by a Services whose nodes can
// answer StatsSummary probes. Any error — including the unknown-action
// fault an older node raises — sends the planner to the count-star
// fallback for that archive, so mixed federations plan without error.
type StatsServices interface {
	StatsSummary(ctx context.Context, a *Archive, probe *StatsProbe) (*StatsEstimate, error)
}

// ThroughputServices is optionally implemented by a Services that can
// report the observed transfer throughput of an archive's path
// (bytes/sec; 0 when nothing has been measured yet).
type ThroughputServices interface {
	ObservedThroughput(endpoint string) float64
}

// Event is a trace point; kinds follow Figure 3's numbered steps.
type Event struct {
	// Kind is one of "submit", "decompose", "perfquery.send",
	// "perfquery.recv", "plan", "execute", "relay".
	Kind string
	// Detail is a human-readable annotation.
	Detail string
}

// Engine executes federated queries.
type Engine struct {
	// Catalog resolves archives. Required.
	Catalog Catalog
	// Services performs remote calls. Required.
	Services Services
	// ChunkRows is the per-message row bound written into plans; 0 means
	// 5000.
	ChunkRows int
	// Parallelism is the chain-step worker-count hint written into plans;
	// 0 lets each node choose (GOMAXPROCS), 1 requests the sequential
	// path.
	Parallelism int
	// IncludeMatchColumns appends _matchRA, _matchDec, _logLikelihood,
	// _nObs diagnostics to cross-match results.
	IncludeMatchColumns bool
	// CountProbeOrder reverts chain ordering to the pure count-star rule
	// of §5.3, even when the Services can serve statistics. The default
	// (false) orders by the transfer-cost model whenever statistics are
	// available.
	CountProbeOrder bool
	// AdaptiveReorder stamps plans with permission for chain nodes to
	// re-order the not-yet-called downstream suffix when live estimates
	// diverge from the plan's (see plan.Plan.AdaptiveReorder).
	AdaptiveReorder bool
	// OnEvent, when set, receives trace events.
	OnEvent func(Event)

	querySeq atomic.Int64
}

func (e *Engine) emit(kind, format string, args ...interface{}) {
	if e.OnEvent == nil {
		return
	}
	e.OnEvent(Event{Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// Prepared is a compiled query: parsed, validated, and — for cross-match
// queries — planned, with the count-star performance queries already
// spent. A Prepared can be executed any number of times; each run stamps
// a fresh query ID into a copy of the plan, so concurrent executions of
// the same Prepared are independent. The Portal's plan cache holds these
// across requests, amortizing the parse/validate/plan (and its count-star
// round-trips) over every re-submission of the same query text.
type Prepared struct {
	key  string
	q    *sqlparse.Query
	plan *plan.Plan // nil for pass-through (non-XMATCH) queries
}

// Key returns the canonical form of the prepared query: the parser's
// printed AST, identical for every formatting (whitespace, keyword case)
// of the same query. Caches use it as their lookup key.
func (p *Prepared) Key() string { return p.key }

// IsCrossMatch reports whether the prepared query carries a chain plan
// (false for single-archive pass-through queries).
func (p *Prepared) IsCrossMatch() bool { return p.plan != nil }

// Execute parses and runs a query, returning the final result set.
// Cancelling ctx aborts the probes and the chain mid-flight.
func (e *Engine) Execute(ctx context.Context, sql string) (*dataset.DataSet, error) {
	prep, err := e.Prepare(ctx, sql)
	if err != nil {
		return nil, err
	}
	return e.ExecutePrepared(ctx, prep)
}

// Prepare parses, validates, and plans a query without executing it.
// For cross-match queries this includes the count-star performance
// probes, so preparing is itself a federated operation. It emits the
// "submit" event (Figure 3 step 1); re-running a cached Prepared should
// announce the submission through EmitSubmit instead.
func (e *Engine) Prepare(ctx context.Context, sql string) (*Prepared, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	e.emit("submit", "%s", strings.TrimSpace(sql))
	if err := sqlparse.Validate(q); err != nil {
		return nil, err
	}
	prep := &Prepared{key: q.String(), q: q}
	if q.XMatch != nil {
		p, err := e.BuildPlan(ctx, q)
		if err != nil {
			return nil, err
		}
		prep.plan = p
	}
	return prep, nil
}

// EmitSubmit announces a query submission. Prepare emits it on the
// miss path; callers replaying a cached Prepared call this so the event
// trace keeps its submit -> execute -> relay shape.
func (e *Engine) EmitSubmit(sql string) {
	e.emit("submit", "%s", strings.TrimSpace(sql))
}

// ExecutePrepared runs a previously prepared query. Cross-match plans
// are executed on a copy stamped with a fresh query ID; the Prepared
// itself is never mutated and stays valid for further executions.
func (e *Engine) ExecutePrepared(ctx context.Context, prep *Prepared) (*dataset.DataSet, error) {
	if prep.plan == nil {
		return e.passThrough(ctx, prep.q)
	}
	pl := *prep.plan
	pl.QueryID = e.queryID()
	e.emit("execute", "chain: %s", &pl)
	tuples, err := e.Services.CrossMatch(ctx, &pl)
	if err != nil {
		return nil, err
	}
	res, err := e.project(prep.q, tuples)
	if err != nil {
		return nil, err
	}
	e.emit("relay", "%d rows to client", res.NumRows())
	return res, nil
}

// passThroughTarget resolves a non-XMATCH query to its single archive
// and the local query text the node should run (archive qualifier
// stripped: the node sees its local table name).
func (e *Engine) passThroughTarget(q *sqlparse.Query) (*Archive, string, error) {
	if len(q.From) != 1 {
		return nil, "", fmt.Errorf("core: queries over multiple archives need an XMATCH clause")
	}
	ref := q.From[0]
	if ref.Archive == "" {
		return nil, "", fmt.Errorf("core: federated tables are written archive:table, got %q", ref.Table)
	}
	a, err := e.Catalog.Archive(ref.Archive)
	if err != nil {
		return nil, "", err
	}
	if _, ok := a.Tables[ref.Table]; !ok {
		return nil, "", fmt.Errorf("core: archive %s has no table %q", a.Name, ref.Table)
	}
	local := *q
	local.From = []sqlparse.TableRef{{Table: ref.Table, Alias: ref.Alias}}
	return a, local.String(), nil
}

// passThrough relays a non-XMATCH query to its single archive.
func (e *Engine) passThrough(ctx context.Context, q *sqlparse.Query) (*dataset.DataSet, error) {
	a, local, err := e.passThroughTarget(q)
	if err != nil {
		return nil, err
	}
	e.emit("execute", "pass-through to %s", a.Name)
	res, err := e.Services.TableQuery(ctx, a, local)
	if err != nil {
		return nil, err
	}
	e.emit("relay", "%d rows to client", res.NumRows())
	return res, nil
}

// queryID returns a fresh plan identifier.
func (e *Engine) queryID() string {
	return fmt.Sprintf("q-%d", e.querySeq.Add(1))
}

func (e *Engine) chunkRows() int {
	if e.ChunkRows == 0 {
		return 5000
	}
	return e.ChunkRows
}
