package core

import (
	"fmt"

	"skyquery/internal/dataset"
	"skyquery/internal/eval"
	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
	"skyquery/internal/xmatch"
)

// projector evaluates the query's select list over the final partial
// tuples returned by the chain, producing the client-visible result.
// It is built once per execution — select and ORDER BY expressions are
// compiled against the payload layout up front, so bad references fail
// before any tuple is projected — and then fed pages of tuples as they
// arrive. Three shapes fall out of the query:
//
//   - plain select lists project each page as it arrives and emit it
//     immediately; TOP without ORDER BY truncates inside the page and
//     tells the caller to stop pulling, so tuples past the boundary are
//     never touched (streaming keeps them from even crossing the wire);
//   - COUNT(*) folds each page into a counter and emits one row at
//     finish;
//   - ORDER BY must see every tuple before the first result row, so
//     projected rows and their sort keys buffer until finish sorts them
//     (and TOP truncates after the sort).
//
// Page boundaries never affect the produced cells — each page is
// evaluated in chunks of eval.BatchSize exactly as the folded path
// chunked the whole set — which is what keeps the streamed and folded
// results bit-identical.
type projector struct {
	outCols      []dataset.Column
	count        bool
	countN       int64
	hasOrder     bool
	top          int
	includeMatch bool

	selExprs   []sqlparse.Expr
	orderExprs []sqlparse.Expr
	selProgs   []*eval.TypedProgram
	orderProgs []*eval.TypedProgram
	refs       []int

	batch    *eval.TBatch
	evs      []*eval.TypedEval
	selEvs   []*eval.TypedEval
	orderEvs []*eval.TypedEval
	selOut   []*eval.Vector
	orderOut []*eval.Vector
	seqEv    *eval.TypedEval
	payload  []dataset.Column

	emitted  int             // plain mode: rows emitted so far (TOP stop)
	buffered [][]value.Value // ORDER BY mode: projected rows awaiting sort
	sortKeys [][]value.Value
}

// newProjector compiles the query's select list and sort keys against
// the tuple schema.
func (e *Engine) newProjector(q *sqlparse.Query, tupleCols []dataset.Column) (*projector, error) {
	if len(tupleCols) < xmatch.NumAccCols {
		return nil, fmt.Errorf("core: malformed tuple set: %d columns", len(tupleCols))
	}
	pr := &projector{top: q.Top, hasOrder: len(q.OrderBy) > 0, includeMatch: e.IncludeMatchColumns}
	if q.Count {
		pr.count = true
		pr.outCols = []dataset.Column{{Name: "count", Type: value.IntType}}
		return pr, nil
	}

	// Result schema from the select list.
	for _, item := range q.Select {
		name := item.Alias
		if name == "" {
			name = item.Expr.String()
			if cr, ok := item.Expr.(*sqlparse.ColumnRef); ok {
				name = cr.String()
			}
		}
		pr.outCols = append(pr.outCols, dataset.Column{Name: name, Type: projType(item.Expr, tupleCols)})
		pr.selExprs = append(pr.selExprs, item.Expr)
	}
	if e.IncludeMatchColumns {
		pr.outCols = append(pr.outCols,
			dataset.Column{Name: "_matchRA", Type: value.FloatType},
			dataset.Column{Name: "_matchDec", Type: value.FloatType},
			dataset.Column{Name: "_logLikelihood", Type: value.FloatType},
			dataset.Column{Name: "_nObs", Type: value.IntType},
		)
	}

	pr.payload = tupleCols[xmatch.NumAccCols:]
	layout := eval.MapLayout{}
	for i, c := range pr.payload {
		layout[c.Name] = i
	}
	pr.selProgs = make([]*eval.TypedProgram, len(q.Select))
	for i, item := range q.Select {
		p, err := eval.CompileTyped(item.Expr, layout)
		if err != nil {
			return nil, fmt.Errorf("core: projecting %s: %w", item.Expr, err)
		}
		pr.selProgs[i] = p
	}
	pr.orderProgs = make([]*eval.TypedProgram, len(q.OrderBy))
	for i, o := range q.OrderBy {
		p, err := eval.CompileTyped(o.Expr, layout)
		if err != nil {
			return nil, fmt.Errorf("core: ORDER BY %s: %w", o.Expr, err)
		}
		pr.orderProgs[i] = p
		pr.orderExprs = append(pr.orderExprs, o.Expr)
	}

	bs := eval.BatchSize()
	pr.batch = eval.NewTBatch(len(pr.payload), bs)
	pr.selEvs = make([]*eval.TypedEval, len(pr.selProgs))
	pr.selOut = make([]*eval.Vector, len(pr.selProgs))
	for i, p := range pr.selProgs {
		pr.selEvs[i] = p.NewEval(bs)
		pr.evs = append(pr.evs, pr.selEvs[i])
	}
	pr.orderEvs = make([]*eval.TypedEval, len(pr.orderProgs))
	pr.orderOut = make([]*eval.Vector, len(pr.orderProgs))
	for i, p := range pr.orderProgs {
		pr.orderEvs[i] = p.NewEval(bs)
		pr.evs = append(pr.evs, pr.orderEvs[i])
	}
	var refLists [][]int
	for _, p := range pr.selProgs {
		refLists = append(refLists, p.Refs())
	}
	for _, p := range pr.orderProgs {
		refLists = append(refLists, p.Refs())
	}
	pr.refs = eval.UnionRefs(refLists...)
	pr.seqEv = (*eval.TypedProgram)(nil).NewEval(bs)
	pr.evs = append(pr.evs, pr.seqEv)
	return pr, nil
}

// needMore reports whether the projector still wants tuples. False once
// a plain TOP has been satisfied — the caller can stop pulling (and, in
// streaming, abandon the rest of the transfer).
func (pr *projector) needMore() bool {
	if pr.count || pr.hasOrder || pr.top <= 0 {
		return true
	}
	return pr.emitted < pr.top
}

// page projects one page of tuples and returns the result rows ready to
// emit now (nil for COUNT and ORDER BY, which produce only at finish).
func (pr *projector) page(rows [][]value.Value) ([][]value.Value, error) {
	if pr.count {
		pr.countN += int64(len(rows))
		return nil, nil
	}
	bs := eval.BatchSize()
	var out [][]value.Value
	for off := 0; off < len(rows); off += bs {
		cn := min(bs, len(rows)-off)
		if !pr.hasOrder && pr.top > 0 {
			if need := pr.top - pr.emitted; cn > need {
				cn = need
			}
		}
		if cn <= 0 {
			break
		}
		chunk := rows[off : off+cn]
		for _, s := range pr.refs {
			pr.batch.Col(s).FillFromCells(cn, pr.payload[s].Type, func(k int) value.Value {
				return chunk[k][xmatch.NumAccCols+s]
			})
		}
		pr.batch.SetLen(cn)
		sel := pr.seqEv.Seq(cn)
		for i, p := range pr.selProgs {
			vec, _, err := p.EvalVec(pr.selEvs[i], pr.batch, sel)
			if err != nil {
				return nil, fmt.Errorf("core: projecting %s: %w", pr.selExprs[i], err)
			}
			pr.selOut[i] = vec
		}
		for i, p := range pr.orderProgs {
			vec, _, err := p.EvalVec(pr.orderEvs[i], pr.batch, sel)
			if err != nil {
				return nil, fmt.Errorf("core: ORDER BY %s: %w", pr.orderExprs[i], err)
			}
			pr.orderOut[i] = vec
		}
		for k, row := range chunk {
			cells := make([]value.Value, 0, len(pr.outCols))
			for i := range pr.selProgs {
				cells = append(cells, pr.selOut[i].ValueAt(k))
			}
			if pr.includeMatch {
				acc, err := xmatch.CellsToAcc(row)
				if err != nil {
					return nil, err
				}
				ra, dec := acc.Best().RaDec()
				cells = append(cells,
					value.Float(ra), value.Float(dec),
					value.Float(acc.LogLikelihood()), value.Int(int64(acc.N)))
			}
			if pr.hasOrder {
				pr.buffered = append(pr.buffered, cells)
				keys := make([]value.Value, len(pr.orderProgs))
				for i := range pr.orderProgs {
					keys[i] = pr.orderOut[i].ValueAt(k)
				}
				pr.sortKeys = append(pr.sortKeys, keys)
			} else {
				out = append(out, cells)
			}
		}
	}
	pr.emitted += len(out)
	return out, nil
}

// finish returns whatever the projector held back: the COUNT(*) row, or
// the sorted (and TOP-truncated) ORDER BY buffer. Plain queries return
// nothing here. orderBy is the query's sort spec (unused in other
// modes).
func (pr *projector) finish(orderBy []sqlparse.OrderItem) ([][]value.Value, error) {
	if pr.count {
		return [][]value.Value{{value.Int(pr.countN)}}, nil
	}
	if !pr.hasOrder {
		return nil, nil
	}
	sorted, err := eval.SortRows(pr.buffered, pr.sortKeys, orderBy)
	if err != nil {
		return nil, err
	}
	if pr.top > 0 && len(sorted) > pr.top {
		sorted = sorted[:pr.top]
	}
	pr.buffered, pr.sortKeys = nil, nil
	return sorted, nil
}

// close releases the projector's pooled batch and evaluator scratch.
func (pr *projector) close() {
	if pr.batch != nil {
		pr.batch.Release()
		pr.batch = nil
	}
	for _, ev := range pr.evs {
		ev.Release()
	}
	pr.evs = nil
}

// project evaluates the query's select list over a fully materialized
// tuple set (the folded path): one page through the projector, then
// finish. The streaming path feeds the same projector page by page
// instead (see ExecutePreparedStream).
func (e *Engine) project(q *sqlparse.Query, tuples *dataset.DataSet) (*dataset.DataSet, error) {
	pr, err := e.newProjector(q, tuples.Columns)
	if err != nil {
		return nil, err
	}
	defer pr.close()
	out := &dataset.DataSet{Columns: pr.outCols}
	head, err := pr.page(tuples.Rows)
	if err != nil {
		return nil, err
	}
	out.Rows = head
	tail, err := pr.finish(q.OrderBy)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, tail...)
	return out, nil
}

// projType infers a column type for a projected expression from the tuple
// schema, defaulting to FLOAT.
func projType(e sqlparse.Expr, tupleCols []dataset.Column) value.Type {
	if cr, ok := e.(*sqlparse.ColumnRef); ok {
		for _, c := range tupleCols {
			if c.Name == cr.String() {
				return c.Type
			}
		}
	}
	switch n := e.(type) {
	case *sqlparse.StringLit:
		return value.StringType
	case *sqlparse.BoolLit:
		return value.BoolType
	case *sqlparse.BinaryExpr:
		switch n.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=", "LIKE":
			return value.BoolType
		}
	case *sqlparse.FuncCall:
		// Function results must be typed correctly or the wire codec
		// rejects their cells (UPPER in a select list used to relay a
		// STRING cell under a FLOAT column).
		return eval.FuncResultType(n, func(arg sqlparse.Expr) value.Type { return projType(arg, tupleCols) })
	}
	return value.FloatType
}
