package core

import (
	"fmt"

	"skyquery/internal/dataset"
	"skyquery/internal/eval"
	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
	"skyquery/internal/xmatch"
)

// project evaluates the query's select list over the final partial tuples
// returned by the chain, producing the client-visible result. COUNT(*)
// queries return the match count. When IncludeMatchColumns is set, the
// diagnostic columns _matchRA, _matchDec, _logLikelihood and _nObs are
// appended from each tuple's accumulator.
func (e *Engine) project(q *sqlparse.Query, tuples *dataset.DataSet) (*dataset.DataSet, error) {
	if len(tuples.Columns) < xmatch.NumAccCols {
		return nil, fmt.Errorf("core: malformed tuple set: %d columns", len(tuples.Columns))
	}
	if q.Count {
		out := dataset.New(dataset.Column{Name: "count", Type: value.IntType})
		out.Rows = append(out.Rows, []value.Value{value.Int(int64(tuples.NumRows()))})
		return out, nil
	}

	// Result schema from the select list.
	out := &dataset.DataSet{}
	for _, item := range q.Select {
		name := item.Alias
		if name == "" {
			name = item.Expr.String()
			if cr, ok := item.Expr.(*sqlparse.ColumnRef); ok {
				name = cr.String()
			}
		}
		out.Columns = append(out.Columns, dataset.Column{Name: name, Type: projType(item.Expr, tuples)})
	}
	if e.IncludeMatchColumns {
		out.Columns = append(out.Columns,
			dataset.Column{Name: "_matchRA", Type: value.FloatType},
			dataset.Column{Name: "_matchDec", Type: value.FloatType},
			dataset.Column{Name: "_logLikelihood", Type: value.FloatType},
			dataset.Column{Name: "_nObs", Type: value.IntType},
		)
	}

	// Compile the select list and sort keys once against the payload
	// layout; the payload slice of each tuple row is itself the program
	// row, so projection is map-free and allocation-free per tuple. Bad
	// references fail here, before any tuple is projected.
	payload := tuples.Columns[xmatch.NumAccCols:]
	layout := eval.MapLayout{}
	for i, c := range payload {
		layout[c.Name] = i
	}
	selProgs := make([]*eval.Program, len(q.Select))
	for i, item := range q.Select {
		p, err := eval.Compile(item.Expr, layout)
		if err != nil {
			return nil, fmt.Errorf("core: projecting %s: %w", item.Expr, err)
		}
		selProgs[i] = p
	}
	orderProgs := make([]*eval.Program, len(q.OrderBy))
	for i, o := range q.OrderBy {
		p, err := eval.Compile(o.Expr, layout)
		if err != nil {
			return nil, fmt.Errorf("core: ORDER BY %s: %w", o.Expr, err)
		}
		orderProgs[i] = p
	}

	var sortKeys [][]value.Value
	for _, row := range tuples.Rows {
		progRow := row[xmatch.NumAccCols:]
		cells := make([]value.Value, 0, len(out.Columns))
		for i, p := range selProgs {
			v, err := p.Eval(progRow)
			if err != nil {
				return nil, fmt.Errorf("core: projecting %s: %w", q.Select[i].Expr, err)
			}
			cells = append(cells, v)
		}
		if e.IncludeMatchColumns {
			acc, err := xmatch.CellsToAcc(row)
			if err != nil {
				return nil, err
			}
			ra, dec := acc.Best().RaDec()
			cells = append(cells,
				value.Float(ra), value.Float(dec),
				value.Float(acc.LogLikelihood()), value.Int(int64(acc.N)))
		}
		out.Rows = append(out.Rows, cells)
		if len(q.OrderBy) > 0 {
			keys := make([]value.Value, len(orderProgs))
			for i, p := range orderProgs {
				v, err := p.Eval(progRow)
				if err != nil {
					return nil, fmt.Errorf("core: ORDER BY %s: %w", q.OrderBy[i].Expr, err)
				}
				keys[i] = v
			}
			sortKeys = append(sortKeys, keys)
			continue
		}
		if q.Top > 0 && len(out.Rows) >= q.Top {
			break
		}
	}
	if len(q.OrderBy) > 0 {
		sorted, err := eval.SortRows(out.Rows, sortKeys, q.OrderBy)
		if err != nil {
			return nil, err
		}
		out.Rows = sorted
		if q.Top > 0 && len(out.Rows) > q.Top {
			out.Rows = out.Rows[:q.Top]
		}
	}
	return out, nil
}

// projType infers a column type for a projected expression from the tuple
// schema, defaulting to FLOAT.
func projType(e sqlparse.Expr, tuples *dataset.DataSet) value.Type {
	if cr, ok := e.(*sqlparse.ColumnRef); ok {
		if ci := tuples.ColumnIndex(cr.String()); ci >= 0 {
			return tuples.Columns[ci].Type
		}
	}
	switch n := e.(type) {
	case *sqlparse.StringLit:
		return value.StringType
	case *sqlparse.BoolLit:
		return value.BoolType
	case *sqlparse.BinaryExpr:
		switch n.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=", "LIKE":
			return value.BoolType
		}
	case *sqlparse.FuncCall:
		// Function results must be typed correctly or the wire codec
		// rejects their cells (UPPER in a select list used to relay a
		// STRING cell under a FLOAT column).
		return eval.FuncResultType(n, func(arg sqlparse.Expr) value.Type { return projType(arg, tuples) })
	}
	return value.FloatType
}
