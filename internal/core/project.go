package core

import (
	"fmt"

	"skyquery/internal/dataset"
	"skyquery/internal/eval"
	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
	"skyquery/internal/xmatch"
)

// project evaluates the query's select list over the final partial tuples
// returned by the chain, producing the client-visible result. COUNT(*)
// queries return the match count. When IncludeMatchColumns is set, the
// diagnostic columns _matchRA, _matchDec, _logLikelihood and _nObs are
// appended from each tuple's accumulator.
func (e *Engine) project(q *sqlparse.Query, tuples *dataset.DataSet) (*dataset.DataSet, error) {
	if len(tuples.Columns) < xmatch.NumAccCols {
		return nil, fmt.Errorf("core: malformed tuple set: %d columns", len(tuples.Columns))
	}
	if q.Count {
		out := dataset.New(dataset.Column{Name: "count", Type: value.IntType})
		out.Rows = append(out.Rows, []value.Value{value.Int(int64(tuples.NumRows()))})
		return out, nil
	}

	// Result schema from the select list.
	out := &dataset.DataSet{}
	for _, item := range q.Select {
		name := item.Alias
		if name == "" {
			name = item.Expr.String()
			if cr, ok := item.Expr.(*sqlparse.ColumnRef); ok {
				name = cr.String()
			}
		}
		out.Columns = append(out.Columns, dataset.Column{Name: name, Type: projType(item.Expr, tuples)})
	}
	if e.IncludeMatchColumns {
		out.Columns = append(out.Columns,
			dataset.Column{Name: "_matchRA", Type: value.FloatType},
			dataset.Column{Name: "_matchDec", Type: value.FloatType},
			dataset.Column{Name: "_logLikelihood", Type: value.FloatType},
			dataset.Column{Name: "_nObs", Type: value.IntType},
		)
	}

	// Compile the select list and sort keys once against the payload
	// layout as typed batch programs. Bad references fail here, before
	// any tuple is projected. Tuples are then projected in chunks of
	// eval.BatchSize: the referenced payload columns are transposed into
	// typed vectors (native when the cells match the dataset column type,
	// boxed otherwise) and each program evaluates over them. TOP without
	// ORDER BY truncates the chunk *before* evaluation, so tuples past
	// the TOP boundary are never touched — exactly like the row-at-a-time
	// loop that stopped there.
	payload := tuples.Columns[xmatch.NumAccCols:]
	layout := eval.MapLayout{}
	for i, c := range payload {
		layout[c.Name] = i
	}
	selProgs := make([]*eval.TypedProgram, len(q.Select))
	for i, item := range q.Select {
		p, err := eval.CompileTyped(item.Expr, layout)
		if err != nil {
			return nil, fmt.Errorf("core: projecting %s: %w", item.Expr, err)
		}
		selProgs[i] = p
	}
	orderProgs := make([]*eval.TypedProgram, len(q.OrderBy))
	for i, o := range q.OrderBy {
		p, err := eval.CompileTyped(o.Expr, layout)
		if err != nil {
			return nil, fmt.Errorf("core: ORDER BY %s: %w", o.Expr, err)
		}
		orderProgs[i] = p
	}

	bs := eval.BatchSize()
	batch := eval.NewTBatch(len(payload), bs)
	defer batch.Release()
	var evs []*eval.TypedEval
	defer func() {
		for _, ev := range evs {
			ev.Release()
		}
	}()
	selEvs := make([]*eval.TypedEval, len(selProgs))
	selOut := make([]*eval.Vector, len(selProgs))
	for i, p := range selProgs {
		selEvs[i] = p.NewEval(bs)
		evs = append(evs, selEvs[i])
	}
	orderEvs := make([]*eval.TypedEval, len(orderProgs))
	orderOut := make([]*eval.Vector, len(orderProgs))
	for i, p := range orderProgs {
		orderEvs[i] = p.NewEval(bs)
		evs = append(evs, orderEvs[i])
	}
	var refLists [][]int
	for _, p := range selProgs {
		refLists = append(refLists, p.Refs())
	}
	for _, p := range orderProgs {
		refLists = append(refLists, p.Refs())
	}
	refs := eval.UnionRefs(refLists...)
	seqEv := (*eval.TypedProgram)(nil).NewEval(bs)
	evs = append(evs, seqEv)

	hasOrder := len(q.OrderBy) > 0
	var sortKeys [][]value.Value
	for off := 0; off < len(tuples.Rows); off += bs {
		cn := min(bs, len(tuples.Rows)-off)
		if !hasOrder && q.Top > 0 {
			if need := q.Top - len(out.Rows); cn > need {
				cn = need
			}
		}
		if cn <= 0 {
			break
		}
		chunk := tuples.Rows[off : off+cn]
		for _, s := range refs {
			batch.Col(s).FillFromCells(cn, payload[s].Type, func(k int) value.Value {
				return chunk[k][xmatch.NumAccCols+s]
			})
		}
		batch.SetLen(cn)
		sel := seqEv.Seq(cn)
		for i, p := range selProgs {
			vec, _, err := p.EvalVec(selEvs[i], batch, sel)
			if err != nil {
				return nil, fmt.Errorf("core: projecting %s: %w", q.Select[i].Expr, err)
			}
			selOut[i] = vec
		}
		for i, p := range orderProgs {
			vec, _, err := p.EvalVec(orderEvs[i], batch, sel)
			if err != nil {
				return nil, fmt.Errorf("core: ORDER BY %s: %w", q.OrderBy[i].Expr, err)
			}
			orderOut[i] = vec
		}
		for k, row := range chunk {
			cells := make([]value.Value, 0, len(out.Columns))
			for i := range selProgs {
				cells = append(cells, selOut[i].ValueAt(k))
			}
			if e.IncludeMatchColumns {
				acc, err := xmatch.CellsToAcc(row)
				if err != nil {
					return nil, err
				}
				ra, dec := acc.Best().RaDec()
				cells = append(cells,
					value.Float(ra), value.Float(dec),
					value.Float(acc.LogLikelihood()), value.Int(int64(acc.N)))
			}
			out.Rows = append(out.Rows, cells)
			if hasOrder {
				keys := make([]value.Value, len(orderProgs))
				for i := range orderProgs {
					keys[i] = orderOut[i].ValueAt(k)
				}
				sortKeys = append(sortKeys, keys)
			}
		}
	}
	if len(q.OrderBy) > 0 {
		sorted, err := eval.SortRows(out.Rows, sortKeys, q.OrderBy)
		if err != nil {
			return nil, err
		}
		out.Rows = sorted
		if q.Top > 0 && len(out.Rows) > q.Top {
			out.Rows = out.Rows[:q.Top]
		}
	}
	return out, nil
}

// projType infers a column type for a projected expression from the tuple
// schema, defaulting to FLOAT.
func projType(e sqlparse.Expr, tuples *dataset.DataSet) value.Type {
	if cr, ok := e.(*sqlparse.ColumnRef); ok {
		if ci := tuples.ColumnIndex(cr.String()); ci >= 0 {
			return tuples.Columns[ci].Type
		}
	}
	switch n := e.(type) {
	case *sqlparse.StringLit:
		return value.StringType
	case *sqlparse.BoolLit:
		return value.BoolType
	case *sqlparse.BinaryExpr:
		switch n.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=", "LIKE":
			return value.BoolType
		}
	case *sqlparse.FuncCall:
		// Function results must be typed correctly or the wire codec
		// rejects their cells (UPPER in a select list used to relay a
		// STRING cell under a FLOAT column).
		return eval.FuncResultType(n, func(arg sqlparse.Expr) value.Type { return projType(arg, tuples) })
	}
	return value.FloatType
}
