package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"skyquery/internal/dataset"
	"skyquery/internal/plan"
	"skyquery/internal/sphere"
	"skyquery/internal/value"
	"skyquery/internal/xmatch"
)

// fakeCatalog serves fixed archive metadata.
type fakeCatalog map[string]*Archive

func (c fakeCatalog) Archive(name string) (*Archive, error) {
	a, ok := c[name]
	if !ok {
		return nil, fmt.Errorf("core_test: unknown archive %q", name)
	}
	return a, nil
}

// fakeServices answers count-star probes from a table and records calls.
type fakeServices struct {
	mu         sync.Mutex
	counts     map[string]int64 // archive -> count
	countCalls []string         // SQL of each count probe
	crossPlans []*plan.Plan
	tuples     *dataset.DataSet // returned by CrossMatch
	tableCalls []string
	tableData  *dataset.DataSet
}

func (s *fakeServices) CountStar(ctx context.Context, a *Archive, sql string, area plan.Area) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.countCalls = append(s.countCalls, a.Name+": "+sql)
	return s.counts[a.Name], nil
}

func (s *fakeServices) CrossMatch(ctx context.Context, p *plan.Plan) (*dataset.DataSet, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crossPlans = append(s.crossPlans, p)
	if s.tuples != nil {
		return s.tuples, nil
	}
	return &dataset.DataSet{Columns: xmatch.AccColumns()}, nil
}

func (s *fakeServices) TableQuery(ctx context.Context, a *Archive, sql string) (*dataset.DataSet, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tableCalls = append(s.tableCalls, a.Name+": "+sql)
	if s.tableData != nil {
		return s.tableData, nil
	}
	return dataset.New(dataset.Column{Name: "x", Type: value.IntType}), nil
}

func testCatalog() fakeCatalog {
	mk := func(name string, sigma float64) *Archive {
		return &Archive{
			Name: name, Endpoint: "http://" + name + ".test/soap",
			PrimaryTable: "PhotoObject", RACol: "ra", DecCol: "dec",
			SigmaArcsec: sigma,
			Tables: map[string]TableInfo{
				"PhotoObject": {Name: "PhotoObject", Rows: 1000, Columns: map[string]string{
					"object_id": "INT", "ra": "FLOAT", "dec": "FLOAT",
					"flux": "FLOAT", "type": "STRING",
				}},
			},
		}
	}
	return fakeCatalog{
		"SDSS":    mk("SDSS", 0.1),
		"TWOMASS": mk("TWOMASS", 0.2),
		"FIRST":   mk("FIRST", 0.4),
	}
}

func newEngine(counts map[string]int64) (*Engine, *fakeServices) {
	svc := &fakeServices{counts: counts}
	return &Engine{Catalog: testCatalog(), Services: svc}, svc
}

const testSQL = `SELECT O.object_id, T.object_id
	FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T, FIRST:PhotoObject P
	WHERE AREA(185, -0.5, 900) AND XMATCH(O, T, P) < 3.5
	AND O.type = 'GALAXY' AND (O.flux - T.flux) > 2`

func TestBuildPlanOrdering(t *testing.T) {
	e, svc := newEngine(map[string]int64{"SDSS": 50, "TWOMASS": 900, "FIRST": 200})
	p, err := e.BuildPlanSQL(context.Background(), testSQL)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"TWOMASS", "FIRST", "SDSS"} // decreasing count
	for i, name := range want {
		if p.Steps[i].Archive != name {
			t.Fatalf("step %d = %s, want %s (%s)", i, p.Steps[i].Archive, name, p)
		}
	}
	if len(svc.countCalls) != 3 {
		t.Errorf("count probes = %d", len(svc.countCalls))
	}
	for _, call := range svc.countCalls {
		if !strings.Contains(call, "SELECT COUNT(*)") || !strings.Contains(call, "AREA(185, -0.5, 900)") {
			t.Errorf("probe = %q", call)
		}
	}
	// The SDSS probe must carry its local predicate.
	found := false
	for _, call := range svc.countCalls {
		if strings.HasPrefix(call, "SDSS:") && strings.Contains(call, "GALAXY") {
			found = true
		}
	}
	if !found {
		t.Errorf("SDSS probe lacks local predicate: %v", svc.countCalls)
	}
}

func TestBuildPlanCrossPredicateAssignment(t *testing.T) {
	// Execution order is reverse call order; the flux predicate references
	// O and T and must fire at whichever of them executes second.
	e, _ := newEngine(map[string]int64{"SDSS": 50, "TWOMASS": 900, "FIRST": 200})
	p, err := e.BuildPlanSQL(context.Background(), testSQL)
	if err != nil {
		t.Fatal(err)
	}
	// Order: TWOMASS(900), FIRST(200), SDSS(50). Execution: SDSS seeds,
	// FIRST extends, TWOMASS last. O=SDSS executes before T=TWOMASS, so
	// the predicate fires at TWOMASS.
	byArchive := map[string][]string{}
	for _, s := range p.Steps {
		byArchive[s.Archive] = s.CrossWhere
	}
	if len(byArchive["TWOMASS"]) != 1 {
		t.Errorf("TWOMASS crossWhere = %v", byArchive["TWOMASS"])
	}
	if len(byArchive["SDSS"]) != 0 || len(byArchive["FIRST"]) != 0 {
		t.Errorf("misassigned cross predicates: %v", byArchive)
	}
}

func TestBuildPlanColumns(t *testing.T) {
	e, _ := newEngine(map[string]int64{"SDSS": 1, "TWOMASS": 2, "FIRST": 3})
	p, err := e.BuildPlanSQL(context.Background(), testSQL)
	if err != nil {
		t.Fatal(err)
	}
	cols := map[string][]string{}
	for _, s := range p.Steps {
		cols[s.Archive] = s.Columns
	}
	// SDSS ships object_id (select) + flux (cross predicate).
	if got := cols["SDSS"]; len(got) != 2 || got[0] != "flux" || got[1] != "object_id" {
		t.Errorf("SDSS columns = %v", got)
	}
	// FIRST ships nothing (not selected, no predicates).
	if got := cols["FIRST"]; len(got) != 0 {
		t.Errorf("FIRST columns = %v", got)
	}
}

func TestBuildPlanErrors(t *testing.T) {
	e, _ := newEngine(map[string]int64{"SDSS": 1, "TWOMASS": 1, "FIRST": 1})
	area := "AREA(185, -0.5, 900)"
	cases := []struct{ sql, wantSub string }{
		{`SELECT O.object_id FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T WHERE ` + area + ` AND O.flux > 1`, "XMATCH"},
		{`SELECT O.object_id FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T WHERE XMATCH(O, T) < 3`, "AREA"},
		{`SELECT * FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T WHERE ` + area + ` AND XMATCH(O, T) < 3`, "SELECT *"},
		{`SELECT O.object_id FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T, FIRST:PhotoObject P WHERE ` + area + ` AND XMATCH(O, T) < 3`, "does not appear in the XMATCH"},
		{`SELECT O.object_id FROM GHOST:PhotoObject O, TWOMASS:PhotoObject T WHERE ` + area + ` AND XMATCH(O, T) < 3`, "unknown archive"},
		{`SELECT O.object_id FROM SDSS:Missing O, TWOMASS:PhotoObject T WHERE ` + area + ` AND XMATCH(O, T) < 3`, "no table"},
		{`SELECT O.missing FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T WHERE ` + area + ` AND XMATCH(O, T) < 3`, "no column"},
		{`SELECT O.object_id FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T WHERE ` + area + ` AND XMATCH(O, T) < 3 AND O.missing = 1`, "no column"},
		{`SELECT O.object_id, T.object_id FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T WHERE ` + area + ` AND XMATCH(O, !T) < 3`, "drop-out"},
		{`SELECT O.object_id FROM PhotoObject O, TWOMASS:PhotoObject T WHERE ` + area + ` AND XMATCH(O, T) < 3`, "archive qualifier"},
	}
	for _, c := range cases {
		_, err := e.BuildPlanSQL(context.Background(), c.sql)
		if err == nil {
			t.Errorf("BuildPlanSQL(%.60q) succeeded, want %q", c.sql, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("BuildPlanSQL(%.60q) error = %v, want %q", c.sql, err, c.wantSub)
		}
	}
}

// tupleSet builds a fake final tuple set with the given payload columns.
func tupleSet(payload []dataset.Column, rows ...[]value.Value) *dataset.DataSet {
	d := &dataset.DataSet{Columns: append(xmatch.AccColumns(), payload...)}
	acc := xmatch.Accumulator{}.Add(sphere.FromRaDec(185, -0.5), 0.1).
		Add(sphere.FromRaDec(185, -0.5+sphere.Arcsec(0.1)), 0.2)
	for _, r := range rows {
		d.Rows = append(d.Rows, append(xmatch.AccToCells(acc), r...))
	}
	return d
}

func TestExecuteProjection(t *testing.T) {
	e, svc := newEngine(map[string]int64{"SDSS": 10, "TWOMASS": 20, "FIRST": 30})
	svc.tuples = tupleSet(
		[]dataset.Column{
			{Name: "O.object_id", Type: value.IntType},
			{Name: "T.object_id", Type: value.IntType},
			{Name: "O.flux", Type: value.FloatType},
			{Name: "T.flux", Type: value.FloatType},
		},
		[]value.Value{value.Int(1), value.Int(2), value.Float(9), value.Float(4)},
		[]value.Value{value.Int(3), value.Int(4), value.Float(8), value.Float(1)},
	)
	res, err := e.Execute(context.Background(), testSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if res.Columns[0].Name != "O.object_id" || res.Columns[0].Type != value.IntType {
		t.Errorf("column 0 = %+v", res.Columns[0])
	}
	if res.Rows[1][0].AsInt() != 3 || res.Rows[1][1].AsInt() != 4 {
		t.Errorf("row 1 = %v", res.Rows[1])
	}
}

func TestExecuteCount(t *testing.T) {
	e, svc := newEngine(map[string]int64{"SDSS": 10, "TWOMASS": 20, "FIRST": 30})
	svc.tuples = tupleSet(
		[]dataset.Column{{Name: "O.object_id", Type: value.IntType}},
		[]value.Value{value.Int(1)},
		[]value.Value{value.Int(2)},
		[]value.Value{value.Int(3)},
	)
	sql := `SELECT COUNT(*) FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
		WHERE AREA(185, -0.5, 900) AND XMATCH(O, T) < 3.5`
	res, err := e.Execute(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Rows[0][0].AsInt() != 3 {
		t.Errorf("count result = %v", res.Rows)
	}
}

func TestExecuteTopAndMatchColumns(t *testing.T) {
	e, svc := newEngine(map[string]int64{"SDSS": 10, "TWOMASS": 20})
	e.IncludeMatchColumns = true
	svc.tuples = tupleSet(
		[]dataset.Column{{Name: "O.object_id", Type: value.IntType}, {Name: "T.object_id", Type: value.IntType}},
		[]value.Value{value.Int(1), value.Int(5)},
		[]value.Value{value.Int(2), value.Int(6)},
		[]value.Value{value.Int(3), value.Int(7)},
	)
	sql := `SELECT TOP 2 O.object_id, T.object_id FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
		WHERE AREA(185, -0.5, 900) AND XMATCH(O, T) < 3.5`
	res, err := e.Execute(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Errorf("TOP 2 gave %d rows", res.NumRows())
	}
	if len(res.Columns) != 6 {
		t.Fatalf("columns = %v", res.Columns)
	}
	ra, _ := res.Rows[0][2].AsFloat()
	if ra < 184.9 || ra > 185.1 {
		t.Errorf("_matchRA = %v", ra)
	}
	if res.Rows[0][5].AsInt() != 2 {
		t.Errorf("_nObs = %v", res.Rows[0][5])
	}
}

func TestPassThrough(t *testing.T) {
	e, svc := newEngine(nil)
	_, err := e.Execute(context.Background(), `SELECT O.object_id FROM SDSS:PhotoObject O WHERE O.flux > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(svc.tableCalls) != 1 {
		t.Fatalf("table calls = %v", svc.tableCalls)
	}
	if !strings.HasPrefix(svc.tableCalls[0], "SDSS: SELECT O.object_id FROM PhotoObject O") {
		t.Errorf("pass-through SQL = %q (archive qualifier must be stripped)", svc.tableCalls[0])
	}
}

func TestPassThroughErrors(t *testing.T) {
	e, _ := newEngine(nil)
	cases := []struct{ sql, wantSub string }{
		{`SELECT a.x, b.y FROM SDSS:PhotoObject a, TWOMASS:PhotoObject b`, "XMATCH"},
		{`SELECT x FROM PhotoObject`, "archive:table"},
		{`SELECT x FROM SDSS:Missing`, "no table"},
		{`SELECT x FROM GHOST:PhotoObject`, "unknown archive"},
	}
	for _, c := range cases {
		_, err := e.Execute(context.Background(), c.sql)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Execute(%q) error = %v, want %q", c.sql, err, c.wantSub)
		}
	}
}

func TestEventsEmitted(t *testing.T) {
	var kinds []string
	var mu sync.Mutex
	e, svc := newEngine(map[string]int64{"SDSS": 10, "TWOMASS": 20})
	e.OnEvent = func(ev Event) {
		mu.Lock()
		kinds = append(kinds, ev.Kind)
		mu.Unlock()
	}
	svc.tuples = tupleSet([]dataset.Column{{Name: "O.object_id", Type: value.IntType}})
	sql := `SELECT O.object_id FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
		WHERE AREA(185, -0.5, 900) AND XMATCH(O, T) < 3.5`
	if _, err := e.Execute(context.Background(), sql); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(kinds, ",")
	for _, want := range []string{"submit", "perfquery.send", "perfquery.recv", "plan", "execute", "relay"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing event %q in %v", want, kinds)
		}
	}
}

func TestQueryIDsUnique(t *testing.T) {
	e, _ := newEngine(map[string]int64{"SDSS": 1, "TWOMASS": 2})
	sql := `SELECT O.object_id FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
		WHERE AREA(185, -0.5, 900) AND XMATCH(O, T) < 3.5`
	p1, err := e.BuildPlanSQL(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.BuildPlanSQL(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if p1.QueryID == p2.QueryID {
		t.Errorf("query ids not unique: %q", p1.QueryID)
	}
}

func TestMalformedTupleSet(t *testing.T) {
	e, svc := newEngine(map[string]int64{"SDSS": 1, "TWOMASS": 2})
	svc.tuples = dataset.New(dataset.Column{Name: "only", Type: value.IntType})
	sql := `SELECT O.object_id FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
		WHERE AREA(185, -0.5, 900) AND XMATCH(O, T) < 3.5`
	if _, err := e.Execute(context.Background(), sql); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Errorf("err = %v", err)
	}
}
