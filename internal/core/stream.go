package core

// Streaming execution. The folded path materializes the chain's whole
// partial-tuple set at the portal before projecting it; here the engine
// instead pulls pages off a TupleStream as the chain produces them and
// projects each page through the same compiled projector, so the
// portal's peak memory is one page (plus the ORDER BY buffer when the
// query sorts) and the first result rows leave for the client before
// the chain has finished. Services that can deliver pages implement
// StreamServices; against a Services that cannot, ExecutePreparedStream
// degrades to the folded execution re-paged locally, so callers get one
// iterator shape either way.

import (
	"context"

	"skyquery/internal/dataset"
	"skyquery/internal/plan"
	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
)

// TupleStream delivers a bulk result page by page: Columns is the
// schema, Next returns the next page of rows ((nil, nil) after the
// last), Close releases the transfer (abandoning early is legal).
type TupleStream interface {
	Columns() []dataset.Column
	Next() ([][]value.Value, error)
	Close() error
}

// StreamServices is optionally implemented by a Services whose bulk
// operations can deliver pages as the remote nodes produce them.
type StreamServices interface {
	// CrossMatchStream hands the plan to the first step's node and
	// returns the partial tuples flowing back as a page stream.
	CrossMatchStream(ctx context.Context, p *plan.Plan) (TupleStream, error)
	// TableQueryStream runs a complete single-archive query and returns
	// its rows as a page stream.
	TableQueryStream(ctx context.Context, a *Archive, sql string) (TupleStream, error)
}

// ExecutePreparedStream runs a previously prepared query and returns
// the result as a page stream. Result rows are bit-identical to
// ExecutePrepared's — both paths share the compiled projector — but
// they reach the caller page by page, before the chain completes.
func (e *Engine) ExecutePreparedStream(ctx context.Context, prep *Prepared) (TupleStream, error) {
	ss, ok := e.Services.(StreamServices)
	if !ok {
		ds, err := e.ExecutePrepared(ctx, prep)
		if err != nil {
			return nil, err
		}
		return NewSliceStream(ds, e.chunkRows()), nil
	}
	if prep.plan == nil {
		a, local, err := e.passThroughTarget(prep.q)
		if err != nil {
			return nil, err
		}
		e.emit("execute", "pass-through to %s (streaming)", a.Name)
		return ss.TableQueryStream(ctx, a, local)
	}
	pl := *prep.plan
	pl.QueryID = e.queryID()
	e.emit("execute", "chain: %s (streaming)", &pl)
	ts, err := ss.CrossMatchStream(ctx, &pl)
	if err != nil {
		return nil, err
	}
	pr, err := e.newProjector(prep.q, ts.Columns())
	if err != nil {
		ts.Close()
		return nil, err
	}
	return &projectStream{e: e, q: prep.q, src: ts, pr: pr}, nil
}

// projectStream pulls tuple pages off the chain stream and projects
// each one as it arrives.
type projectStream struct {
	e   *Engine
	q   *sqlparse.Query
	src TupleStream
	pr  *projector

	rows     int
	finished bool
	err      error
	closed   bool
}

// Columns returns the projected result schema.
func (s *projectStream) Columns() []dataset.Column { return s.pr.outCols }

// Next returns the next page of result rows, or (nil, nil) after the
// last one. Pages that project to nothing (COUNT and ORDER BY buffer
// until the end; a veto-heavy page may be empty) are skipped, not
// surfaced as empty pages.
func (s *projectStream) Next() ([][]value.Value, error) {
	if s.err != nil {
		return nil, s.err
	}
	for !s.finished {
		if !s.pr.needMore() {
			// Plain TOP satisfied: abandon the rest of the chain's
			// transfer rather than draining it.
			return s.finish(true)
		}
		page, err := s.src.Next()
		if err != nil {
			s.fail(err)
			return nil, s.err
		}
		if page == nil {
			return s.finish(false)
		}
		out, err := s.pr.page(page)
		if err != nil {
			s.fail(err)
			return nil, s.err
		}
		if len(out) > 0 {
			s.rows += len(out)
			return out, nil
		}
	}
	return nil, nil
}

// finish drains the projector's held-back rows (COUNT row, sorted ORDER
// BY buffer) and emits the relay event.
func (s *projectStream) finish(abandon bool) ([][]value.Value, error) {
	s.finished = true
	if abandon {
		s.src.Close()
	}
	tail, err := s.pr.finish(s.q.OrderBy)
	if err != nil {
		s.fail(err)
		return nil, s.err
	}
	s.rows += len(tail)
	s.e.emit("relay", "%d rows to client", s.rows)
	if len(tail) > 0 {
		return tail, nil
	}
	return nil, nil
}

// fail records err and releases the stream's resources.
func (s *projectStream) fail(err error) {
	s.err = err
	s.src.Close()
	s.release()
}

// Close abandons the stream; safe after exhaustion and idempotent.
func (s *projectStream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.src.Close()
	s.release()
	return nil
}

func (s *projectStream) release() {
	if s.pr != nil {
		s.pr.close()
	}
}

// SliceStream adapts a materialized data set to the TupleStream shape,
// re-paged at chunkRows rows. It backs the non-streaming fallback.
type SliceStream struct {
	cols  []dataset.Column
	rows  [][]value.Value
	chunk int
	off   int
}

// NewSliceStream wraps ds as a TupleStream of chunkRows-row pages.
func NewSliceStream(ds *dataset.DataSet, chunkRows int) *SliceStream {
	if chunkRows <= 0 {
		chunkRows = 5000
	}
	return &SliceStream{cols: ds.Columns, rows: ds.Rows, chunk: chunkRows}
}

// Columns returns the schema.
func (s *SliceStream) Columns() []dataset.Column { return s.cols }

// Next returns the next page, or (nil, nil) when exhausted.
func (s *SliceStream) Next() ([][]value.Value, error) {
	if s.off >= len(s.rows) {
		return nil, nil
	}
	end := min(s.off+s.chunk, len(s.rows))
	page := s.rows[s.off:end]
	s.off = end
	return page, nil
}

// Close implements TupleStream.
func (s *SliceStream) Close() error { return nil }
