package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"skyquery/internal/plan"
	"skyquery/internal/sqlparse"
)

// BuildPlan turns a validated cross-match query into an executable plan:
// it resolves every XMATCH archive in the catalog, decomposes the WHERE
// clause, fans out the count-star performance queries concurrently
// ("asynchronous SOAP messages", §5.3), orders the steps by the paper's
// rule, and assigns each cross-archive predicate to the chain step where
// it first becomes evaluable.
func (e *Engine) BuildPlan(ctx context.Context, q *sqlparse.Query) (*plan.Plan, error) {
	if q.XMatch == nil {
		return nil, fmt.Errorf("core: BuildPlan needs an XMATCH query")
	}
	if q.Area == nil {
		return nil, fmt.Errorf("core: cross-match queries need an AREA clause")
	}
	if q.Count {
		// Allowed: the count of matches; projection handles it.
	} else if len(q.Select) == 0 {
		return nil, fmt.Errorf("core: empty select list")
	}
	for _, item := range q.Select {
		if _, ok := item.Expr.(*sqlparse.Star); ok {
			return nil, fmt.Errorf("core: SELECT * is not supported in cross-match queries; list columns explicitly")
		}
	}

	// Map aliases to FROM entries and check XMATCH coverage.
	fromByAlias := map[string]sqlparse.TableRef{}
	for _, t := range q.From {
		fromByAlias[t.Name()] = t
	}
	inXMatch := map[string]bool{}
	dropOut := map[string]bool{}
	for _, a := range q.XMatch.Archives {
		inXMatch[a.Alias] = true
		dropOut[a.Alias] = a.DropOut
	}
	for alias := range fromByAlias {
		if !inXMatch[alias] {
			return nil, fmt.Errorf("core: table %q does not appear in the XMATCH clause", alias)
		}
	}
	for _, a := range q.XMatch.Archives {
		if _, ok := fromByAlias[a.Alias]; !ok {
			return nil, fmt.Errorf("core: XMATCH alias %q has no FROM entry", a.Alias)
		}
	}

	d := sqlparse.Decompose(q)

	// Drop-out archives contribute no columns: reject select-list or
	// cross-predicate references to them.
	for _, item := range q.Select {
		for _, tab := range sqlparse.Tables(item.Expr) {
			if dropOut[tab] {
				return nil, fmt.Errorf("core: select list references drop-out archive %q, which contributes no rows", tab)
			}
		}
	}
	for _, cp := range d.Cross {
		for _, tab := range cp.Aliases {
			if dropOut[tab] {
				return nil, fmt.Errorf("core: predicate %s references drop-out archive %q", cp.Expr, tab)
			}
		}
	}

	// Resolve archives and build the unordered steps.
	steps := make([]plan.Step, 0, len(q.XMatch.Archives))
	for _, xa := range q.XMatch.Archives {
		ref := fromByAlias[xa.Alias]
		if ref.Archive == "" {
			return nil, fmt.Errorf("core: table %q needs an archive qualifier (archive:table)", ref.Table)
		}
		a, err := e.Catalog.Archive(ref.Archive)
		if err != nil {
			return nil, err
		}
		ti, ok := a.Tables[ref.Table]
		if !ok {
			return nil, fmt.Errorf("core: archive %s has no table %q", a.Name, ref.Table)
		}
		cols := d.ColumnsFor(q, xa.Alias)
		for _, c := range cols {
			if _, ok := ti.Columns[c]; !ok {
				return nil, fmt.Errorf("core: table %s:%s has no column %q", a.Name, ref.Table, c)
			}
		}
		var localWhere string
		if lp := d.Local[xa.Alias]; lp != nil {
			localWhere = lp.String()
			if err := checkExprColumns(lp, xa.Alias, ti); err != nil {
				return nil, err
			}
		}
		steps = append(steps, plan.Step{
			Archive:     a.Name,
			Alias:       xa.Alias,
			Endpoint:    a.Endpoint,
			Table:       ref.Table,
			LocalWhere:  localWhere,
			Columns:     cols,
			SigmaArcsec: a.SigmaArcsec,
			DropOut:     xa.DropOut,
		})
	}

	area := plan.Area{RA: q.Area.RA, Dec: q.Area.Dec, RadiusArcsec: q.Area.RadiusArcsec}
	for _, v := range q.Area.Vertices {
		area.Vertices = append(area.Vertices, plan.Vertex{RA: v[0], Dec: v[1]})
	}
	if _, err := area.Region(); err != nil {
		// Reject malformed polygons (non-convex, too few vertices) at the
		// Portal rather than at every node.
		return nil, err
	}

	// Planning probes, fanned out concurrently, one per mandatory archive
	// ("asynchronous SOAP messages", §5.3). Drop-outs are not probed: they
	// sit at the front of the call order regardless. Nodes that can serve
	// statistics answer a StatsSummary probe — an index candidate bound
	// plus a histogram selectivity estimate, no row counted — and any
	// failure (an older node faults on the unknown action) falls back to
	// the count-star performance query, so mixed federations plan without
	// error.
	type probeResult struct {
		idx   int
		count int64
		est   *StatsEstimate
		err   error
	}
	ss, _ := e.Services.(StatsServices)
	if e.CountProbeOrder {
		ss = nil
	}
	ch := make(chan probeResult, len(steps))
	outstanding := 0
	for i := range steps {
		if steps[i].DropOut {
			continue
		}
		outstanding++
		go func(i int) {
			a, err := e.Catalog.Archive(steps[i].Archive)
			if err != nil {
				ch <- probeResult{idx: i, err: err}
				return
			}
			if ss != nil {
				probe := &StatsProbe{
					Table:      steps[i].Table,
					Alias:      steps[i].Alias,
					LocalWhere: steps[i].LocalWhere,
					Area:       area,
				}
				e.emit("statsquery.send", "%s: table=%s where=%q", steps[i].Archive, probe.Table, probe.LocalWhere)
				if est, err := ss.StatsSummary(ctx, a, probe); err == nil && est.HasStats {
					ch <- probeResult{idx: i, count: est.AreaRows, est: est}
					return
				}
			}
			sql := e.performanceQuery(q, steps[i])
			e.emit("perfquery.send", "%s: %s", steps[i].Archive, sql)
			c, err := e.Services.CountStar(ctx, a, sql, area)
			ch <- probeResult{idx: i, count: c, err: err}
		}(i)
	}
	statsBased := 0
	for ; outstanding > 0; outstanding-- {
		r := <-ch
		if r.err != nil {
			return nil, fmt.Errorf("core: performance query at %s: %w", steps[r.idx].Archive, r.err)
		}
		steps[r.idx].Count = r.count
		if r.est != nil {
			steps[r.idx].EstRows = r.est.EstRows
			steps[r.idx].StatsBased = true
			statsBased++
			e.emit("statsquery.recv", "%s: area=%d est=%.0f sel=%.3f",
				steps[r.idx].Archive, r.est.AreaRows, r.est.EstRows, r.est.Selectivity)
		} else {
			steps[r.idx].EstRows = float64(r.count)
			e.emit("perfquery.recv", "%s: count=%d", steps[r.idx].Archive, r.count)
		}
	}

	// Chain order: cost-based whenever any archive produced a statistics
	// estimate, the paper's count rule otherwise (and under
	// CountProbeOrder). Costs weigh the estimated surviving candidates by
	// per-row transfer bytes and by each path's observed throughput;
	// archives that fell back to count-star still get a cost (their
	// count is their row estimate), so mixed federations order on one
	// consistent key.
	var ordered []plan.Step
	if statsBased > 0 {
		e.assignCosts(steps)
		ordered = plan.OrderByCost(steps)
		for i := range ordered {
			e.emit("plan.cost", "%s: est=%.0f rowBytes=%.0f cost=%.3g",
				ordered[i].Archive, ordered[i].EstRows, ordered[i].RowBytes(), ordered[i].Cost)
		}
	} else {
		ordered = plan.Order(steps)
	}
	assignCrossPredicates(ordered, d)
	p := &plan.Plan{
		QueryID:         e.queryID(),
		Threshold:       q.XMatch.Threshold,
		Area:            area,
		Steps:           ordered,
		ChunkRows:       e.chunkRows(),
		Parallelism:     e.Parallelism,
		AdaptiveReorder: e.AdaptiveReorder,
	}
	for _, item := range q.Select {
		p.SelectList = append(p.SelectList, item.Expr.String())
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	e.emit("plan", "%s", p)
	return p, nil
}

// assignCosts stamps every step's Cost using the shared transfer-cost
// model. Throughput comes from the Services' observed per-path history
// when it keeps one; archives whose path has no history yet are charged
// the slowest measured throughput (conservative — an unmeasured WAN path
// should not look free), and when nothing has been measured at all every
// path costs its relative byte volume.
func (e *Engine) assignCosts(steps []plan.Step) {
	thr := make([]float64, len(steps))
	if ts, ok := e.Services.(ThroughputServices); ok {
		for i := range steps {
			thr[i] = ts.ObservedThroughput(steps[i].Endpoint)
		}
		plan.EffectiveThroughputs(thr)
		minPos := 0.0
		for _, t := range thr {
			if t > 0 && (minPos == 0 || t < minPos) {
				minPos = t
			}
		}
		for i := range thr {
			if thr[i] <= 0 {
				thr[i] = minPos // 0 when nothing measured; CostOf maps it to 1
			}
		}
	}
	for i := range steps {
		steps[i].Cost = plan.CostOf(&steps[i], thr[i])
	}
}

// performanceQuery builds the count-star probe for one archive: the AREA
// clause plus the archive's local predicates, exactly the §5.3 examples.
func (e *Engine) performanceQuery(q *sqlparse.Query, step plan.Step) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "SELECT COUNT(*) FROM %s %s WHERE %s",
		step.Table, step.Alias, q.Area.String())
	if step.LocalWhere != "" {
		fmt.Fprintf(&sb, " AND %s", step.LocalWhere)
	}
	return sb.String()
}

// assignCrossPredicates attaches each cross-archive predicate to the step
// where it first becomes evaluable. Execution unwinds the call order from
// the end, so walking steps in execution order, a predicate fires at the
// first mandatory step whose archive completes the predicate's alias set —
// pruning tuples as early as the data allows.
func assignCrossPredicates(ordered []plan.Step, d sqlparse.Decomposition) {
	available := map[string]bool{}
	for i := len(ordered) - 1; i >= 0; i-- {
		if ordered[i].DropOut {
			continue
		}
		alias := ordered[i].Alias
		available[alias] = true
		for _, expr := range d.CrossPredicatesReadyAt(alias, available) {
			ordered[i].CrossWhere = append(ordered[i].CrossWhere, expr.String())
		}
		sort.Strings(ordered[i].CrossWhere)
	}
}

// checkExprColumns validates that a local predicate only references
// columns present in the archive's table.
func checkExprColumns(e sqlparse.Expr, alias string, ti TableInfo) error {
	var err error
	sqlparse.Walk(e, func(n sqlparse.Expr) {
		if err != nil {
			return
		}
		if c, ok := n.(*sqlparse.ColumnRef); ok {
			if c.Table != "" && c.Table != alias {
				return
			}
			if _, ok := ti.Columns[c.Column]; !ok {
				err = fmt.Errorf("core: table %s has no column %q", ti.Name, c.Column)
			}
		}
	})
	return err
}

// BuildPlanSQL parses and validates sql, then builds its plan. It is the
// string-level convenience wrapper around BuildPlan.
func (e *Engine) BuildPlanSQL(ctx context.Context, sql string) (*plan.Plan, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	if err := sqlparse.Validate(q); err != nil {
		return nil, err
	}
	return e.BuildPlan(ctx, q)
}
