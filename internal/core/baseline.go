package core

import (
	"context"
	"fmt"
	"strings"

	"skyquery/internal/dataset"
	"skyquery/internal/eval"
	"skyquery/internal/plan"
	"skyquery/internal/sphere"
	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
	"skyquery/internal/xmatch"
)

// PullExecute runs a cross-match query with the architecture the paper
// rejects (§5.1): every archive's qualifying rows are pulled to the Portal
// ("Many federations, based on the wrapper-mediator architecture, pull
// results from each database to the Portal"), and the probabilistic join
// is computed centrally. It returns the same result as Execute and exists
// as the baseline for the chain-vs-pull experiment (C5): the chain ships
// partial results whose size shrinks with match selectivity, while the
// pull ships every candidate row regardless.
func (e *Engine) PullExecute(ctx context.Context, sql string) (*dataset.DataSet, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	if err := sqlparse.Validate(q); err != nil {
		return nil, err
	}
	if q.XMatch == nil {
		return e.passThrough(ctx, q)
	}
	// Reuse the planner for validation, archive resolution and ordering.
	// The pull baseline still needs count-star probes to pick the same
	// join order, so the comparison isolates the data-movement strategy.
	p, err := e.BuildPlan(ctx, q)
	if err != nil {
		return nil, err
	}
	d := sqlparse.Decompose(q)

	// Pull each archive's qualifying rows (position columns included).
	pulled := make(map[string]*dataset.DataSet, len(p.Steps))
	for _, step := range p.Steps {
		a, err := e.Catalog.Archive(step.Archive)
		if err != nil {
			return nil, err
		}
		sqlText := pullQuery(a, step, q)
		ds, err := e.Services.TableQuery(ctx, a, sqlText)
		if err != nil {
			return nil, fmt.Errorf("core: pull from %s: %w", step.Archive, err)
		}
		pulled[step.Archive] = ds
	}

	// Local chain over the pulled sets, in execution order (reverse call
	// order), mirroring the distributed algorithm exactly.
	var tuples *dataset.DataSet
	for i := len(p.Steps) - 1; i >= 0; i-- {
		step := p.Steps[i]
		a, err := e.Catalog.Archive(step.Archive)
		if err != nil {
			return nil, err
		}
		rows := pulled[step.Archive]
		if tuples == nil {
			tuples, err = seedLocal(a, step, rows)
		} else if step.DropOut {
			tuples, err = dropOutLocal(a, step, rows, tuples, p.Threshold)
		} else {
			tuples, err = extendLocal(a, step, rows, tuples, p.Threshold, d)
		}
		if err != nil {
			return nil, err
		}
	}
	return e.project(q, tuples)
}

// pullQuery builds the per-archive query the baseline sends: the needed
// columns plus the archive's position columns, restricted by AREA and the
// local predicate.
func pullQuery(a *Archive, step plan.Step, q *sqlparse.Query) string {
	cols := []string{step.Alias + "." + a.RACol, step.Alias + "." + a.DecCol}
	for _, c := range step.Columns {
		if c == a.RACol || c == a.DecCol {
			continue
		}
		cols = append(cols, step.Alias+"."+c)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "SELECT %s FROM %s %s WHERE %s",
		strings.Join(cols, ", "), step.Table, step.Alias, q.Area.String())
	if step.LocalWhere != "" {
		fmt.Fprintf(&sb, " AND %s", step.LocalWhere)
	}
	return sb.String()
}

// pulledPos extracts the position of row i of a pulled set; the first two
// columns are RA and Dec by construction of pullQuery.
func pulledPos(rows *dataset.DataSet, i int) (raDec [2]float64, err error) {
	if len(rows.Columns) < 2 {
		return raDec, fmt.Errorf("core: pulled set has no position columns")
	}
	ra, ok1 := rows.Rows[i][0].AsFloat()
	dec, ok2 := rows.Rows[i][1].AsFloat()
	if !ok1 || !ok2 {
		return raDec, fmt.Errorf("core: pulled row %d has non-numeric position", i)
	}
	return [2]float64{ra, dec}, nil
}

// payloadColumns renames the pulled payload columns (dropping the two
// leading position columns) for the tuple schema.
func payloadColumns(step plan.Step, rows *dataset.DataSet) []dataset.Column {
	out := make([]dataset.Column, 0, len(step.Columns))
	for _, c := range step.Columns {
		// Nodes name result columns by their bare column name; the tuple
		// schema re-qualifies them with the step's alias.
		name := step.Alias + "." + c
		if ci := rows.ColumnIndex(c); ci >= 0 {
			out = append(out, dataset.Column{Name: name, Type: rows.Columns[ci].Type})
		} else {
			out = append(out, dataset.Column{Name: name, Type: value.FloatType})
		}
	}
	return out
}

func payloadCells(step plan.Step, rows *dataset.DataSet, i int) []value.Value {
	out := make([]value.Value, 0, len(step.Columns))
	for _, c := range step.Columns {
		ci := rows.ColumnIndex(c)
		if ci < 0 {
			out = append(out, value.Null)
			continue
		}
		out = append(out, rows.Rows[i][ci])
	}
	return out
}

func seedLocal(a *Archive, step plan.Step, rows *dataset.DataSet) (*dataset.DataSet, error) {
	cols := xmatch.AccColumns()
	cols = append(cols, payloadColumns(step, rows)...)
	out := &dataset.DataSet{Columns: cols}
	for i := range rows.Rows {
		rd, err := pulledPos(rows, i)
		if err != nil {
			return nil, err
		}
		acc := xmatch.Accumulator{}.Add(vecOf(rd), step.SigmaArcsec)
		cells := xmatch.AccToCells(acc)
		cells = append(cells, payloadCells(step, rows, i)...)
		out.Rows = append(out.Rows, cells)
	}
	return out, nil
}

func extendLocal(a *Archive, step plan.Step, rows *dataset.DataSet, tuples *dataset.DataSet,
	threshold float64, d sqlparse.Decomposition) (*dataset.DataSet, error) {

	// Compile the cross predicates once against the combined layout: the
	// tuple's carried columns first, then the pulled archive's columns
	// (which win name collisions, as the per-candidate map rebuild used
	// to). The predicates run as typed batch programs: per tuple, the
	// gate-passing candidates are chunked, the carried columns broadcast
	// once per chunk, the referenced pulled columns transposed into typed
	// vectors, and the selection threaded through the predicate list.
	payload := tuples.Columns[xmatch.NumAccCols:]
	npc := len(payload)
	layout := eval.MapLayout{}
	for i, c := range payload {
		layout[c.Name] = i
	}
	for ci, c := range rows.Columns {
		layout[c.Name] = npc + ci
	}
	var crossProgs []*eval.TypedProgram
	for _, src := range step.CrossWhere {
		ex, err := sqlparse.ParseExpr(src)
		if err != nil {
			return nil, err
		}
		prog, err := eval.CompileTyped(ex, layout)
		if err != nil {
			return nil, fmt.Errorf("core: compiling cross predicate %q: %w", src, err)
		}
		crossProgs = append(crossProgs, prog)
	}

	cols := append([]dataset.Column(nil), tuples.Columns...)
	cols = append(cols, payloadColumns(step, rows)...)
	out := &dataset.DataSet{Columns: cols}

	var refLists [][]int
	for _, p := range crossProgs {
		refLists = append(refLists, p.Refs())
	}
	allRefs := eval.UnionRefs(refLists...)
	var priorSlots, candSlots []int
	for _, s := range allRefs {
		if s < npc {
			priorSlots = append(priorSlots, s)
		} else {
			candSlots = append(candSlots, s)
		}
	}
	bs := eval.BatchSize()
	batch := eval.NewTBatch(npc+len(rows.Columns), bs)
	defer batch.Release()
	crossEvs := make([]*eval.TypedEval, len(crossProgs))
	for i, p := range crossProgs {
		crossEvs[i] = p.NewEval(bs)
		defer crossEvs[i].Release()
	}
	seqEv := (*eval.TypedProgram)(nil).NewEval(bs)
	defer seqEv.Release()
	cand := make([]int, 0, bs)             // pulled-row index per batch position
	accs := make([]xmatch.Accumulator, bs) // gate-passing accumulator per position

	for _, trow := range tuples.Rows {
		acc, err := xmatch.CellsToAcc(trow)
		if err != nil {
			return nil, err
		}
		radius := acc.SearchRadius(threshold, step.SigmaArcsec)
		if radius <= 0 {
			continue
		}
		best := acc.Best()
		flush := func() error {
			cn := len(cand)
			if cn == 0 {
				return nil
			}
			defer func() { cand = cand[:0] }()
			sel := seqEv.Seq(cn)
			if len(crossProgs) > 0 {
				batch.SetLen(cn)
				for _, s := range priorSlots {
					batch.Col(s).Broadcast(trow[xmatch.NumAccCols+s], cn)
				}
				for _, s := range candSlots {
					ci := s - npc
					batch.Col(s).FillFromCells(cn, rows.Columns[ci].Type, func(k int) value.Value {
						return rows.Rows[cand[k]][ci]
					})
				}
				for i, prog := range crossProgs {
					if len(sel) == 0 {
						break
					}
					var err error
					if sel, _, err = prog.Filter(crossEvs[i], batch, sel); err != nil {
						return err
					}
				}
			}
			for _, k := range sel {
				cells := xmatch.AccToCells(accs[k])
				cells = append(cells, trow[xmatch.NumAccCols:]...)
				cells = append(cells, payloadCells(step, rows, cand[k])...)
				out.Rows = append(out.Rows, cells)
			}
			return nil
		}
		for i := range rows.Rows {
			rd, err := pulledPos(rows, i)
			if err != nil {
				return nil, err
			}
			pos := vecOf(rd)
			if best.Sep(pos) > radius {
				continue
			}
			next := acc.Add(pos, step.SigmaArcsec)
			if !next.Matches(threshold) {
				continue
			}
			accs[len(cand)] = next
			cand = append(cand, i)
			if len(cand) == bs {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
		if err := flush(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func dropOutLocal(a *Archive, step plan.Step, rows *dataset.DataSet, tuples *dataset.DataSet,
	threshold float64) (*dataset.DataSet, error) {

	out := &dataset.DataSet{Columns: tuples.Columns}
	for _, trow := range tuples.Rows {
		acc, err := xmatch.CellsToAcc(trow)
		if err != nil {
			return nil, err
		}
		radius := acc.SearchRadius(threshold, step.SigmaArcsec)
		vetoed := false
		if radius > 0 {
			best := acc.Best()
			for i := range rows.Rows {
				rd, err := pulledPos(rows, i)
				if err != nil {
					return nil, err
				}
				pos := vecOf(rd)
				if best.Sep(pos) > radius {
					continue
				}
				if acc.Add(pos, step.SigmaArcsec).Matches(threshold) {
					vetoed = true
					break
				}
			}
		}
		if !vetoed {
			out.Rows = append(out.Rows, trow)
		}
	}
	return out, nil
}

// vecOf converts an (ra, dec) pair to a unit vector.
func vecOf(rd [2]float64) sphere.Vec {
	return sphere.FromRaDec(rd[0], rd[1])
}
