package nettrace

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newEchoHTTP(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.Write(body)
		w.Write([]byte("-pong"))
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestByteCounting(t *testing.T) {
	ts := newEchoHTTP(t)
	tr := &Transport{}
	c := tr.Client()
	resp, err := c.Post(ts.URL, "text/plain", strings.NewReader("ping"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ping-pong" {
		t.Errorf("body = %q", body)
	}
	s := tr.Stats()
	if s.Requests != 1 {
		t.Errorf("requests = %d", s.Requests)
	}
	if s.BytesSent != 4 {
		t.Errorf("sent = %d, want 4", s.BytesSent)
	}
	if s.BytesReceived != 9 {
		t.Errorf("received = %d, want 9", s.BytesReceived)
	}
	if s.Total() != 13 {
		t.Errorf("total = %d", s.Total())
	}
}

func TestEmptyBodyRequest(t *testing.T) {
	ts := newEchoHTTP(t)
	tr := &Transport{}
	resp, err := tr.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()
	s := tr.Stats()
	if s.BytesSent != 0 {
		t.Errorf("sent = %d", s.BytesSent)
	}
	if s.BytesReceived != 5 { // "-pong"
		t.Errorf("received = %d", s.BytesReceived)
	}
}

func TestLatencyInjection(t *testing.T) {
	ts := newEchoHTTP(t)
	tr := &Transport{Latency: 30 * time.Millisecond}
	start := time.Now()
	resp, err := tr.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)
	if elapsed < 30*time.Millisecond {
		t.Errorf("elapsed %v < injected latency", elapsed)
	}
	if tr.Stats().SimulatedWait < 30*time.Millisecond {
		t.Errorf("SimulatedWait = %v", tr.Stats().SimulatedWait)
	}
}

func TestBandwidthInjection(t *testing.T) {
	ts := newEchoHTTP(t)
	// 1 KB/s: a 100-byte request+response should cost ~0.2s of simulated wait.
	tr := &Transport{BandwidthBps: 1 << 10}
	payload := strings.Repeat("x", 100)
	start := time.Now()
	resp, err := tr.Client().Post(ts.URL, "text/plain", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Errorf("elapsed %v, want >= ~200ms of bandwidth delay", elapsed)
	}
}

func TestReset(t *testing.T) {
	ts := newEchoHTTP(t)
	tr := &Transport{RecordCalls: true}
	resp, _ := tr.Client().Post(ts.URL, "text/plain", strings.NewReader("abc"))
	io.ReadAll(resp.Body)
	resp.Body.Close()
	tr.Reset()
	s := tr.Stats()
	if s.Requests != 0 || s.BytesSent != 0 || s.BytesReceived != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
	if len(tr.Calls()) != 0 {
		t.Error("calls not cleared")
	}
}

func TestCallLog(t *testing.T) {
	ts := newEchoHTTP(t)
	tr := &Transport{RecordCalls: true}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/svc", strings.NewReader("hello"))
	req.Header.Set("SOAPAction", `"urn:test:Op"`)
	resp, err := tr.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()
	calls := tr.Calls()
	if len(calls) != 1 {
		t.Fatalf("calls = %d", len(calls))
	}
	if calls[0].Action != "urn:test:Op" {
		t.Errorf("action = %q (quotes should be stripped)", calls[0].Action)
	}
	if calls[0].BytesSent != 5 {
		t.Errorf("call bytes sent = %d", calls[0].BytesSent)
	}
	if !strings.HasSuffix(calls[0].URL, "/svc") {
		t.Errorf("url = %q", calls[0].URL)
	}
}

func TestCallsWithoutRecording(t *testing.T) {
	ts := newEchoHTTP(t)
	tr := &Transport{}
	resp, _ := tr.Client().Get(ts.URL)
	io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(tr.Calls()) != 0 {
		t.Error("calls recorded despite RecordCalls=false")
	}
}

func TestConcurrentRequests(t *testing.T) {
	ts := newEchoHTTP(t)
	tr := &Transport{RecordCalls: true}
	c := tr.Client()
	var wg sync.WaitGroup
	const n = 20
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.Post(ts.URL, "text/plain", strings.NewReader("zz"))
			if err != nil {
				t.Error(err)
				return
			}
			io.ReadAll(resp.Body)
			resp.Body.Close()
		}()
	}
	wg.Wait()
	s := tr.Stats()
	if s.Requests != n {
		t.Errorf("requests = %d", s.Requests)
	}
	if s.BytesSent != 2*n {
		t.Errorf("sent = %d", s.BytesSent)
	}
	if len(tr.Calls()) != n {
		t.Errorf("calls = %d", len(tr.Calls()))
	}
}

func TestResponseStillReadable(t *testing.T) {
	// Buffering must not break callers that read the body twice via
	// ContentLength checks.
	ts := newEchoHTTP(t)
	tr := &Transport{}
	resp, err := tr.Client().Post(ts.URL, "text/plain", strings.NewReader("abc"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.ContentLength != 8 {
		t.Errorf("ContentLength = %d, want 8", resp.ContentLength)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "abc-pong" {
		t.Errorf("body = %q", body)
	}
}

func TestClientWithTimeoutBoundsStalledServer(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	t.Cleanup(func() {
		close(release)
		ts.Close()
	})
	tr := &Transport{}
	c := tr.ClientWithTimeout(50 * time.Millisecond)
	start := time.Now()
	_, err := c.Get(ts.URL)
	if err == nil {
		t.Fatal("request against a stalled server returned nil")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("request took %v; the 50ms deadline did not bound it", elapsed)
	}
	if tr.Client().Timeout != 0 {
		t.Error("plain Client() grew a deadline; callers that want one use ClientWithTimeout")
	}
}
