// Package nettrace instruments HTTP transports for the federation
// experiments: it counts exact request/response bytes (the quantity the
// count-star optimizer of §5.3 is designed to minimize) and can shape
// traffic like a 2002-era Internet path — fixed per-request latency plus a
// bandwidth-proportional delay — so that wall-clock benchmarks reflect
// transmission costs dominating processing costs, the regime the paper
// argues distinguishes federated joins from LAN distributed joins (§4).
package nettrace

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// sharedTransport is the process-wide tuned *http.Transport every
// federation client pools connections through. http.DefaultTransport's
// MaxIdleConnsPerHost=2 throttles the portal's scatter calls: with
// parallelism above 2, every burst tears down and re-establishes
// connections to the same node. One shared transport with a deep
// per-host idle pool keeps the daisy chain and the count-star fan-out
// on warm keep-alive connections.
var (
	sharedOnce      sync.Once
	sharedTransport *http.Transport
)

// SharedTransport returns the shared tuned transport. Callers must not
// mutate it.
func SharedTransport() *http.Transport {
	sharedOnce.Do(func() {
		sharedTransport = &http.Transport{
			Proxy: http.ProxyFromEnvironment,
			DialContext: (&net.Dialer{
				Timeout:   30 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			// Deep enough for hundreds of in-flight federated queries
			// against a handful of nodes.
			MaxIdleConns:          1024,
			MaxIdleConnsPerHost:   256,
			IdleConnTimeout:       90 * time.Second,
			TLSHandshakeTimeout:   10 * time.Second,
			ExpectContinueTimeout: time.Second,
		}
	})
	return sharedTransport
}

// Stats is a snapshot of transport counters.
type Stats struct {
	Requests      int64
	BytesSent     int64 // request body bytes
	BytesReceived int64 // response body bytes
	// SimulatedWait is the total artificial delay injected.
	SimulatedWait time.Duration
}

// Total returns bytes sent plus received.
func (s Stats) Total() int64 { return s.BytesSent + s.BytesReceived }

// Call records one observed request for per-call inspection.
type Call struct {
	URL           string
	Action        string // SOAPAction header, unquoted
	BytesSent     int64
	BytesReceived int64
}

// Per-host observed throughput: every transfer through a Transport folds
// its byte volume and wall time into a process-wide registry keyed by
// destination host. The planner's cost model reads it back to weigh
// estimated transfer volumes by how fast each node's path has actually
// been — measured, not configured, so shaped links and congested WAN
// paths surface on their own.
var (
	hostMu  sync.Mutex
	hostObs = map[string]*hostRecord{}
)

type hostRecord struct {
	bytes int64
	nanos int64
}

// RecordTransfer folds one observed transfer (request + response bytes
// over its total wall time) into the per-host registry.
func RecordTransfer(host string, bytes int64, d time.Duration) {
	if host == "" || bytes <= 0 || d <= 0 {
		return
	}
	hostMu.Lock()
	r := hostObs[host]
	if r == nil {
		r = &hostRecord{}
		hostObs[host] = r
	}
	r.bytes += bytes
	r.nanos += int64(d)
	hostMu.Unlock()
}

// MinThroughputSampleBytes is the least total volume a host must have
// transferred before ObservedThroughput reports a number. Timing a few
// kilobytes of registration chatter measures scheduler noise, not the
// path — and a cost model fed noise re-orders chains at random. Until a
// host has moved this much, its path reads as unmeasured (0) and the
// planner costs it on byte volume alone.
const MinThroughputSampleBytes = 256 << 10

// ObservedThroughput returns the mean observed bytes/second of transfers
// to host, or 0 when less than MinThroughputSampleBytes has been
// observed.
func ObservedThroughput(host string) float64 {
	hostMu.Lock()
	defer hostMu.Unlock()
	r := hostObs[host]
	if r == nil || r.nanos == 0 || r.bytes < MinThroughputSampleBytes {
		return 0
	}
	return float64(r.bytes) / (float64(r.nanos) / float64(time.Second))
}

// ResetThroughput clears the per-host registry (test isolation).
func ResetThroughput() {
	hostMu.Lock()
	hostObs = map[string]*hostRecord{}
	hostMu.Unlock()
}

// Transport is an http.RoundTripper that counts and optionally shapes
// traffic. The zero value is usable and delegates to SharedTransport.
type Transport struct {
	// Base is the underlying transport; nil means SharedTransport.
	Base http.RoundTripper
	// Latency is added once per request (round-trip time).
	Latency time.Duration
	// BandwidthBps, when > 0, adds len(payload)/bandwidth delay for both
	// directions.
	BandwidthBps int64
	// RecordCalls enables the per-call log returned by Calls.
	RecordCalls bool

	requests      atomic.Int64
	bytesSent     atomic.Int64
	bytesReceived atomic.Int64
	waitNanos     atomic.Int64

	mu    sync.Mutex
	calls []Call
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return SharedTransport()
}

// RoundTrip implements http.RoundTripper. The request body is buffered
// (requests are small and the count must precede the send delay), but
// the response body streams through a counting reader: bytes are
// counted and the bandwidth delay charged as the consumer reads them.
// Buffering the response here would silently fold the federation's
// streamed page transfers back into store-and-forward at every hop.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	var reqBytes int64
	if req.Body != nil {
		data, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
		reqBytes = int64(len(data))
		req.Body = io.NopCloser(bytes.NewReader(data))
		req.ContentLength = reqBytes
	}

	t.requests.Add(1)
	t.bytesSent.Add(reqBytes)
	t.sleepFor(reqBytes, true)

	start := time.Now()
	resp, err := t.base().RoundTrip(req)
	if err != nil {
		return nil, err
	}
	callIdx := -1
	if t.RecordCalls {
		action := req.Header.Get("SOAPAction")
		if len(action) >= 2 && action[0] == '"' && action[len(action)-1] == '"' {
			action = action[1 : len(action)-1]
		}
		t.mu.Lock()
		t.calls = append(t.calls, Call{
			URL:       req.URL.String(),
			Action:    action,
			BytesSent: reqBytes,
		})
		callIdx = len(t.calls) - 1
		t.mu.Unlock()
	}
	resp.Body = &countingBody{
		rc: resp.Body, t: t, callIdx: callIdx,
		host: req.URL.Host, sent: reqBytes, start: start,
	}
	return resp, nil
}

// countingBody streams a response body through, counting bytes and
// charging the bandwidth delay as they flow to the consumer. The
// per-call log entry's received count is finalized at EOF or Close.
type countingBody struct {
	rc      io.ReadCloser
	t       *Transport
	callIdx int // index into t.calls; -1 when not recording
	host    string
	sent    int64
	start   time.Time
	n       int64
	done    bool
}

// Read implements io.Reader.
func (b *countingBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	if n > 0 {
		b.n += int64(n)
		b.t.bytesReceived.Add(int64(n))
		b.t.sleepFor(int64(n), false)
	}
	if err == io.EOF {
		b.finish()
	}
	return n, err
}

// Close implements io.Closer.
func (b *countingBody) Close() error {
	b.finish()
	return b.rc.Close()
}

// finish writes the final received count into the per-call log (guarded
// against a Reset that truncated the log mid-flight) and folds the
// transfer into the per-host throughput registry.
func (b *countingBody) finish() {
	if b.done {
		return
	}
	b.done = true
	RecordTransfer(b.host, b.sent+b.n, time.Since(b.start))
	if b.callIdx >= 0 {
		b.t.mu.Lock()
		if b.callIdx < len(b.t.calls) {
			b.t.calls[b.callIdx].BytesReceived = b.n
		}
		b.t.mu.Unlock()
	}
}

// sleepFor injects the shaped delay for a payload of n bytes; the
// per-request latency is charged with the request direction only.
func (t *Transport) sleepFor(n int64, withLatency bool) {
	var d time.Duration
	if withLatency {
		d += t.Latency
	}
	if t.BandwidthBps > 0 {
		d += time.Duration(float64(n) / float64(t.BandwidthBps) * float64(time.Second))
	}
	if d > 0 {
		t.waitNanos.Add(int64(d))
		time.Sleep(d)
	}
}

// Stats returns a snapshot of the counters.
func (t *Transport) Stats() Stats {
	return Stats{
		Requests:      t.requests.Load(),
		BytesSent:     t.bytesSent.Load(),
		BytesReceived: t.bytesReceived.Load(),
		SimulatedWait: time.Duration(t.waitNanos.Load()),
	}
}

// Reset zeroes the counters and the call log.
func (t *Transport) Reset() {
	t.requests.Store(0)
	t.bytesSent.Store(0)
	t.bytesReceived.Store(0)
	t.waitNanos.Store(0)
	t.mu.Lock()
	t.calls = nil
	t.mu.Unlock()
}

// Calls returns a copy of the per-call log (empty unless RecordCalls).
func (t *Transport) Calls() []Call {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Call(nil), t.calls...)
}

// Client returns an *http.Client using this transport, with no deadline
// (callers that need one use ClientWithTimeout).
func (t *Transport) Client() *http.Client {
	return t.ClientWithTimeout(0)
}

// ClientWithTimeout returns an *http.Client using this transport whose
// calls are bounded end to end by d (0 = no deadline). The simulated
// latency and bandwidth sleeps count against the deadline, exactly like
// the real network time they stand in for.
func (t *Transport) ClientWithTimeout(d time.Duration) *http.Client {
	return &http.Client{Transport: t, Timeout: d}
}
