// Package registry is the service-discovery substrate of the federation: a
// UDDI-style repository (§3.1) "where services can register themselves and
// be discovered". The Portal keeps one and fills it through its
// Registration service; clients and tools can enumerate it.
package registry

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Entry describes one registered service provider (a SkyNode).
type Entry struct {
	// Name is the unique archive name, e.g. "SDSS".
	Name string
	// Endpoint is the base URL of the provider's SOAP endpoint.
	Endpoint string
	// Services lists the SOAP actions or service names offered.
	Services []string
	// Metadata holds free-form descriptive pairs.
	Metadata map[string]string
	// Registered is when the entry was created or last replaced.
	Registered time.Time
}

// clone returns a deep copy so callers cannot mutate stored state.
func (e Entry) clone() Entry {
	c := e
	c.Services = append([]string(nil), e.Services...)
	if e.Metadata != nil {
		c.Metadata = make(map[string]string, len(e.Metadata))
		for k, v := range e.Metadata {
			c.Metadata[k] = v
		}
	}
	return c
}

// Registry is an in-memory service repository, safe for concurrent use.
// The zero value is ready to use.
type Registry struct {
	mu        sync.RWMutex
	entries   map[string]Entry
	shardMaps map[string]*ShardMap
	// now is replaceable for tests.
	now func() time.Time
}

// New returns an empty registry.
func New() *Registry { return &Registry{} }

func (r *Registry) clock() time.Time {
	if r.now != nil {
		return r.now()
	}
	return time.Now()
}

// Register adds or replaces an entry keyed by Name.
func (r *Registry) Register(e Entry) error {
	if e.Name == "" {
		return fmt.Errorf("registry: entry needs a name")
	}
	if e.Endpoint == "" {
		return fmt.Errorf("registry: entry %q needs an endpoint", e.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.entries == nil {
		r.entries = map[string]Entry{}
	}
	e.Registered = r.clock()
	r.entries[e.Name] = e.clone()
	return nil
}

// Unregister removes an entry.
func (r *Registry) Unregister(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; !ok {
		return fmt.Errorf("registry: %q is not registered", name)
	}
	delete(r.entries, name)
	return nil
}

// Find returns the entry with the given name.
func (r *Registry) Find(name string) (Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return Entry{}, false
	}
	return e.clone(), true
}

// List returns all entries sorted by name.
func (r *Registry) List() []Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FindByService returns the entries advertising the given service name,
// sorted by name.
func (r *Registry) FindByService(service string) []Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Entry
	for _, e := range r.entries {
		for _, s := range e.Services {
			if s == service {
				out = append(out, e.clone())
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered entries.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
