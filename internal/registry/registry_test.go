package registry

import (
	"sync"
	"testing"
	"time"
)

func entry(name string) Entry {
	return Entry{
		Name:     name,
		Endpoint: "http://" + name + ".example/soap",
		Services: []string{"Query", "CrossMatch"},
		Metadata: map[string]string{"sigma": "0.1"},
	}
}

func TestRegisterFind(t *testing.T) {
	r := New()
	if err := r.Register(entry("SDSS")); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Find("SDSS")
	if !ok {
		t.Fatal("not found")
	}
	if got.Endpoint != "http://SDSS.example/soap" {
		t.Errorf("endpoint = %q", got.Endpoint)
	}
	if got.Registered.IsZero() {
		t.Error("Registered timestamp not set")
	}
	if _, ok := r.Find("NOPE"); ok {
		t.Error("found a ghost")
	}
}

func TestRegisterValidation(t *testing.T) {
	r := New()
	if err := r.Register(Entry{Endpoint: "http://x"}); err == nil {
		t.Error("nameless entry should fail")
	}
	if err := r.Register(Entry{Name: "X"}); err == nil {
		t.Error("endpointless entry should fail")
	}
}

func TestRegisterReplaces(t *testing.T) {
	r := New()
	r.Register(entry("SDSS"))
	e := entry("SDSS")
	e.Endpoint = "http://new.example/soap"
	r.Register(e)
	got, _ := r.Find("SDSS")
	if got.Endpoint != "http://new.example/soap" {
		t.Error("replace did not take")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestUnregister(t *testing.T) {
	r := New()
	r.Register(entry("SDSS"))
	if err := r.Unregister("SDSS"); err != nil {
		t.Fatal(err)
	}
	if err := r.Unregister("SDSS"); err == nil {
		t.Error("double unregister should fail")
	}
	if r.Len() != 0 {
		t.Error("entry not removed")
	}
}

func TestListSorted(t *testing.T) {
	r := New()
	for _, n := range []string{"TWOMASS", "FIRST", "SDSS"} {
		r.Register(entry(n))
	}
	got := r.List()
	want := []string{"FIRST", "SDSS", "TWOMASS"}
	if len(got) != len(want) {
		t.Fatalf("List len = %d", len(got))
	}
	for i, e := range got {
		if e.Name != want[i] {
			t.Errorf("List[%d] = %q, want %q", i, e.Name, want[i])
		}
	}
}

func TestFindByService(t *testing.T) {
	r := New()
	a := entry("A")
	b := entry("B")
	b.Services = []string{"Query"}
	r.Register(a)
	r.Register(b)
	got := r.FindByService("CrossMatch")
	if len(got) != 1 || got[0].Name != "A" {
		t.Errorf("FindByService = %+v", got)
	}
	if got := r.FindByService("Nope"); len(got) != 0 {
		t.Errorf("FindByService(Nope) = %+v", got)
	}
}

func TestIsolationFromCallerMutation(t *testing.T) {
	r := New()
	e := entry("SDSS")
	r.Register(e)
	e.Services[0] = "HACKED"
	e.Metadata["sigma"] = "HACKED"
	got, _ := r.Find("SDSS")
	if got.Services[0] == "HACKED" || got.Metadata["sigma"] == "HACKED" {
		t.Error("registry stored caller-mutable state")
	}
	// And the other direction.
	got.Services[0] = "ALSO HACKED"
	again, _ := r.Find("SDSS")
	if again.Services[0] == "ALSO HACKED" {
		t.Error("registry returned shared state")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r Registry
	if err := r.Register(entry("X")); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Error("zero-value registry broken")
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			names := []string{"A", "B", "C", "D"}
			for j := 0; j < 200; j++ {
				n := names[(i+j)%len(names)]
				r.Register(entry(n))
				r.Find(n)
				r.List()
				r.FindByService("Query")
			}
		}(i)
	}
	wg.Wait()
	if r.Len() != 4 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestClockInjection(t *testing.T) {
	r := New()
	fixed := time.Date(2003, 1, 5, 0, 0, 0, 0, time.UTC) // CIDR 2003
	r.now = func() time.Time { return fixed }
	r.Register(entry("SDSS"))
	got, _ := r.Find("SDSS")
	if !got.Registered.Equal(fixed) {
		t.Errorf("Registered = %v", got.Registered)
	}
}
