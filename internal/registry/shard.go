package registry

// Shard maps: the routing substrate of the scaled-out federation. An
// archive may be partitioned across N skynodes by HTM trixel ranges;
// each partition (a shard) has one leader — the append target — and any
// number of follower replicas serving reads. The shard map is learned
// through registration, exactly like flat entries: every replica
// registers itself with its shard's index, trixel range, and role, and
// the map accretes until it tiles the archive's full trixel universe,
// at which point queries may route by it.
//
// Validation is strict at registration time — overlapping or mutated
// ranges are configuration errors worth failing loudly on — while
// completeness (no gaps, every index present) is checked at query time,
// because a half-registered federation is a normal startup state.

import (
	"fmt"
	"sort"
)

// ShardRange is an inclusive range of HTM trixel IDs at the shard map's
// leaf level. It uses raw uint64 rather than htm.ID to keep the registry
// free of geometry dependencies; the values are htm.IDs.
type ShardRange struct {
	Lo, Hi uint64
}

// Contains reports whether id falls in the range.
func (r ShardRange) Contains(id uint64) bool { return id >= r.Lo && id <= r.Hi }

// Overlaps reports whether two ranges share any ID.
func (r ShardRange) Overlaps(o ShardRange) bool { return r.Lo <= o.Hi && o.Lo <= r.Hi }

// Shard is one partition of an archive: its trixel range, its leader
// (append target), and its follower replicas (read targets).
type Shard struct {
	// Index is the shard's position in the archive's partition order;
	// merges concatenate shard outputs in Index order.
	Index int
	// Range is the shard's inclusive trixel range at the map's Level.
	Range ShardRange
	// Leader is the shard leader's SOAP endpoint.
	Leader string
	// Followers are replica endpoints serving reads of sealed data.
	Followers []string
}

func (s Shard) clone() Shard {
	c := s
	c.Followers = append([]string(nil), s.Followers...)
	return c
}

// ShardMap is the complete routing state of one sharded archive.
type ShardMap struct {
	// Archive is the archive name the map partitions.
	Archive string
	// Level is the HTM level at which Range bounds are expressed.
	Level int
	// Count is the declared number of shards; the map is routable only
	// once all Count shards have registered a leader.
	Count int
	// Shards is sorted by Index.
	Shards []Shard
}

func (m *ShardMap) clone() *ShardMap {
	if m == nil {
		return nil
	}
	c := *m
	c.Shards = make([]Shard, len(m.Shards))
	for i, s := range m.Shards {
		c.Shards[i] = s.clone()
	}
	return &c
}

// shardAt returns a pointer to the shard with the given index, or nil.
func (m *ShardMap) shardAt(index int) *Shard {
	for i := range m.Shards {
		if m.Shards[i].Index == index {
			return &m.Shards[i]
		}
	}
	return nil
}

// add merges one replica registration into the map, validating it
// against what is already known.
func (m *ShardMap) add(index int, rng ShardRange, level, count int, endpoint string, follower bool) error {
	if index < 0 || count <= 0 || index >= count {
		return fmt.Errorf("registry: shard %d of %d out of range for %s", index, count, m.Archive)
	}
	if rng.Lo > rng.Hi {
		return fmt.Errorf("registry: shard %s/%d has inverted range [%d,%d]", m.Archive, index, rng.Lo, rng.Hi)
	}
	if len(m.Shards) == 0 {
		m.Level, m.Count = level, count
	} else {
		if level != m.Level {
			return fmt.Errorf("registry: shard %s/%d registers level %d, map is at level %d", m.Archive, index, level, m.Level)
		}
		if count != m.Count {
			return fmt.Errorf("registry: shard %s/%d declares %d shards, map declares %d", m.Archive, index, count, m.Count)
		}
	}
	sh := m.shardAt(index)
	if sh == nil {
		for _, other := range m.Shards {
			if other.Range.Overlaps(rng) {
				return fmt.Errorf("registry: shard %s/%d range [%d,%d] overlaps shard %d [%d,%d]",
					m.Archive, index, rng.Lo, rng.Hi, other.Index, other.Range.Lo, other.Range.Hi)
			}
		}
		m.Shards = append(m.Shards, Shard{Index: index, Range: rng})
		sort.Slice(m.Shards, func(i, j int) bool { return m.Shards[i].Index < m.Shards[j].Index })
		sh = m.shardAt(index)
	} else if sh.Range != rng {
		// A shard re-registering under a different range would silently
		// re-partition the archive under live queries: refuse.
		return fmt.Errorf("registry: shard %s/%d re-registers range [%d,%d], was [%d,%d]",
			m.Archive, index, rng.Lo, rng.Hi, sh.Range.Lo, sh.Range.Hi)
	}
	if follower {
		for i, f := range sh.Followers {
			if f == endpoint {
				sh.Followers[i] = endpoint // re-registration: idempotent
				return nil
			}
		}
		sh.Followers = append(sh.Followers, endpoint)
		return nil
	}
	sh.Leader = endpoint // re-registration replaces the leader
	return nil
}

// Complete reports whether the map is routable: all Count shards have
// registered a leader and their ranges tile [universeLo, universeHi]
// (the full trixel ID space at the map's level) in index order without
// gaps or inversions.
func (m *ShardMap) Complete(universeLo, universeHi uint64) error {
	if len(m.Shards) != m.Count {
		return fmt.Errorf("registry: %s has %d of %d shards registered", m.Archive, len(m.Shards), m.Count)
	}
	next := universeLo
	for i, s := range m.Shards {
		if s.Index != i {
			return fmt.Errorf("registry: %s shard indexes have a gap at %d", m.Archive, i)
		}
		if s.Leader == "" {
			return fmt.Errorf("registry: %s/%d has no leader", m.Archive, i)
		}
		if s.Range.Lo != next {
			return fmt.Errorf("registry: %s/%d starts at trixel %d, want %d (gap or overlap)", m.Archive, i, s.Range.Lo, next)
		}
		next = s.Range.Hi + 1
	}
	if next != universeHi+1 {
		return fmt.Errorf("registry: %s shards end at trixel %d, want %d", m.Archive, next-1, universeHi)
	}
	return nil
}

// Replicas returns shard s's endpoints in read-preference order:
// followers first (spreading point reads off the leader), leader last.
func (s Shard) Replicas() []string {
	out := make([]string, 0, len(s.Followers)+1)
	out = append(out, s.Followers...)
	if s.Leader != "" {
		out = append(out, s.Leader)
	}
	return out
}

// RegisterShard merges one shard-replica registration for an archive.
// follower=false registers (or replaces) the shard's leader.
func (r *Registry) RegisterShard(archive string, index int, rng ShardRange, level, count int, endpoint string, follower bool) error {
	if archive == "" {
		return fmt.Errorf("registry: shard registration needs an archive name")
	}
	if endpoint == "" {
		return fmt.Errorf("registry: shard %s/%d needs an endpoint", archive, index)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.shardMaps == nil {
		r.shardMaps = map[string]*ShardMap{}
	}
	m := r.shardMaps[archive]
	if m == nil {
		m = &ShardMap{Archive: archive}
		r.shardMaps[archive] = m
	}
	return m.add(index, rng, level, count, endpoint, follower)
}

// ShardMap returns a copy of the archive's shard map, or nil when the
// archive is not sharded.
func (r *Registry) ShardMap(archive string) *ShardMap {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.shardMaps[archive].clone()
}

// DropShards forgets an archive's shard map (tests, re-partitioning).
func (r *Registry) DropShards(archive string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.shardMaps, archive)
}
