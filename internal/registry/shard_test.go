package registry

import (
	"strings"
	"testing"
)

// A toy universe: trixel IDs 32..63 (level-1-style numerology is not
// required for these tests; Complete takes the bounds explicitly).
const uniLo, uniHi = 32, 63

func mustShard(t *testing.T, r *Registry, archive string, idx int, lo, hi uint64, count int, url string, follower bool) {
	t.Helper()
	if err := r.RegisterShard(archive, idx, ShardRange{lo, hi}, 1, count, url, follower); err != nil {
		t.Fatalf("RegisterShard(%s/%d): %v", archive, idx, err)
	}
}

func TestShardMapAccretion(t *testing.T) {
	r := &Registry{}
	if m := r.ShardMap("SDSS"); m != nil {
		t.Fatalf("unsharded archive has map %+v", m)
	}
	mustShard(t, r, "SDSS", 0, uniLo, 47, 2, "http://a", false)
	mustShard(t, r, "SDSS", 1, 48, uniHi, 2, "http://b", false)
	mustShard(t, r, "SDSS", 1, 48, uniHi, 2, "http://b2", true)

	m := r.ShardMap("SDSS")
	if m == nil {
		t.Fatal("no shard map after registration")
	}
	if err := m.Complete(uniLo, uniHi); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if got := m.Shards[1].Replicas(); len(got) != 2 || got[0] != "http://b2" || got[1] != "http://b" {
		t.Fatalf("replicas = %v, want follower-first then leader", got)
	}
	// Clone-on-read: mutating the returned map must not leak back.
	m.Shards[0].Leader = "http://evil"
	m.Shards[1].Followers[0] = "http://evil"
	m2 := r.ShardMap("SDSS")
	if m2.Shards[0].Leader != "http://a" || m2.Shards[1].Followers[0] != "http://b2" {
		t.Fatal("ShardMap did not clone; caller mutation leaked into registry")
	}
}

func TestShardMapRejectsOverlap(t *testing.T) {
	r := &Registry{}
	mustShard(t, r, "SDSS", 0, uniLo, 47, 2, "http://a", false)
	err := r.RegisterShard("SDSS", 1, ShardRange{40, uniHi}, 1, 2, "http://b", false)
	if err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Fatalf("overlapping range accepted: %v", err)
	}
}

func TestShardMapRejectsRangeChange(t *testing.T) {
	r := &Registry{}
	mustShard(t, r, "SDSS", 0, uniLo, 47, 2, "http://a", false)
	err := r.RegisterShard("SDSS", 0, ShardRange{uniLo, 50}, 1, 2, "http://a", false)
	if err == nil || !strings.Contains(err.Error(), "re-registers range") {
		t.Fatalf("range mutation accepted: %v", err)
	}
	// Same index + same range is a benign re-registration and replaces
	// the leader.
	mustShard(t, r, "SDSS", 0, uniLo, 47, 2, "http://a-new", false)
	if got := r.ShardMap("SDSS").Shards[0].Leader; got != "http://a-new" {
		t.Fatalf("leader after re-registration = %q", got)
	}
}

func TestShardMapRejectsBadShape(t *testing.T) {
	r := &Registry{}
	if err := r.RegisterShard("S", 2, ShardRange{uniLo, uniHi}, 1, 2, "http://a", false); err == nil {
		t.Fatal("index >= count accepted")
	}
	if err := r.RegisterShard("S", 0, ShardRange{50, 40}, 1, 2, "http://a", false); err == nil {
		t.Fatal("inverted range accepted")
	}
	if err := r.RegisterShard("S", 0, ShardRange{uniLo, uniHi}, 1, 1, "", false); err == nil {
		t.Fatal("empty endpoint accepted")
	}
	mustShard(t, r, "S", 0, uniLo, 47, 2, "http://a", false)
	if err := r.RegisterShard("S", 1, ShardRange{48, uniHi}, 2, 2, "http://b", false); err == nil {
		t.Fatal("mismatched level accepted")
	}
	if err := r.RegisterShard("S", 1, ShardRange{48, uniHi}, 1, 3, "http://b", false); err == nil {
		t.Fatal("mismatched count accepted")
	}
}

func TestShardMapCompleteGaps(t *testing.T) {
	r := &Registry{}
	mustShard(t, r, "S", 0, uniLo, 40, 2, "http://a", false)
	if err := r.ShardMap("S").Complete(uniLo, uniHi); err == nil {
		t.Fatal("incomplete map reported Complete")
	}
	// Register shard 1 leaving a hole (41 missing): Add allows it
	// (non-overlapping), Complete must reject it.
	mustShard(t, r, "S", 1, 42, uniHi, 2, "http://b", false)
	if err := r.ShardMap("S").Complete(uniLo, uniHi); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("gapped map passed Complete: %v", err)
	}

	r2 := &Registry{}
	mustShard(t, r2, "S", 0, uniLo, 47, 2, "http://a", false)
	mustShard(t, r2, "S", 1, 48, uniHi-2, 2, "http://b", false)
	if err := r2.ShardMap("S").Complete(uniLo, uniHi); err == nil {
		t.Fatal("short-tiled map passed Complete")
	}

	// Follower-only shard (no leader) is not routable.
	r3 := &Registry{}
	mustShard(t, r3, "S", 0, uniLo, 47, 2, "http://a", false)
	mustShard(t, r3, "S", 1, 48, uniHi, 2, "http://b-f", true)
	if err := r3.ShardMap("S").Complete(uniLo, uniHi); err == nil || !strings.Contains(err.Error(), "no leader") {
		t.Fatalf("leaderless shard passed Complete: %v", err)
	}
}

func TestShardRangeOps(t *testing.T) {
	a := ShardRange{10, 20}
	if !a.Contains(10) || !a.Contains(20) || a.Contains(21) || a.Contains(9) {
		t.Fatal("Contains is not inclusive [Lo,Hi]")
	}
	cases := []struct {
		b    ShardRange
		want bool
	}{
		{ShardRange{20, 30}, true},
		{ShardRange{21, 30}, false},
		{ShardRange{0, 10}, true},
		{ShardRange{0, 9}, false},
		{ShardRange{12, 15}, true},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", a, c.b, got, c.want)
		}
	}
}
