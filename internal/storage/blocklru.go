package storage

import "sync/atomic"

// blockCacheHits / blockCacheMisses count lookups in the per-table
// cold-block hydration caches across the process (instrumentation in the
// style of ColdBlocksHydrated — callers assert deltas).
var (
	blockCacheHits   atomic.Int64
	blockCacheMisses atomic.Int64
)

// BlockCacheHits returns the cumulative cold-block cache hits.
func BlockCacheHits() int64 { return blockCacheHits.Load() }

// BlockCacheMisses returns the cumulative cold-block cache misses (each
// miss hydrates the block from its column file).
func BlockCacheMisses() int64 { return blockCacheMisses.Load() }

// lruNode is one resident block in a blockLRU's recency list.
type lruNode struct {
	key        uint64
	col        column
	prev, next *lruNode // more recent, less recent
}

// blockLRU is the per-table cache of hydrated cold column blocks, in
// least-recently-used order. Scans walk blocks cyclically, so the FIFO
// this replaces evicted exactly the blocks about to be re-read whenever
// a working set exceeded the cache by even one block; LRU keeps the
// re-referenced part of the working set resident instead. Methods are
// not synchronized — the owning tableStore's cacheMu guards every call.
type blockLRU struct {
	items      map[uint64]*lruNode
	head, tail *lruNode // head = most recently used
}

// get returns the cached block for key, marking it most recently used.
func (c *blockLRU) get(key uint64) (column, bool) {
	n, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.moveToFront(n)
	return n.col, true
}

// add inserts a block as most recently used, evicting from the LRU end
// down to cap entries. A key already present is refreshed in place.
func (c *blockLRU) add(key uint64, col column, cap int) {
	if n, ok := c.items[key]; ok {
		n.col = col
		c.moveToFront(n)
		return
	}
	if c.items == nil {
		c.items = make(map[uint64]*lruNode, cap)
	}
	n := &lruNode{key: key, col: col}
	c.items[key] = n
	c.pushFront(n)
	for len(c.items) > cap {
		old := c.tail
		c.unlink(old)
		delete(c.items, old.key)
	}
}

// len reports the number of resident blocks.
func (c *blockLRU) len() int { return len(c.items) }

func (c *blockLRU) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *blockLRU) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *blockLRU) moveToFront(n *lruNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
