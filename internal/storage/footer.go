package storage

// Table footer: the single atomic commit point of a disk-backed table.
// It names the schema and spatial configuration, the durable row count,
// and — per column, per sealed block — the block's offset, size, CRC and
// zone statistics in the column's block file, plus the HTM ID range of
// every sealed block. Zone maps and AnalyzePrune-driven candidate pruning
// over cold blocks therefore never touch block data: the statistics ride
// in the footer.
//
// The footer is replaced by write-temp + fsync + rename; a crash leaves
// either the old or the new file, never a mix, and block bytes written
// for a failed commit are overwritten by the next flush (offsets are
// allocated from the footer's view of each file, not from file size).
//
// Layout (little-endian; strings are u16 length + bytes):
//
//	magic "SKYFTR1\n", u32 version
//	table name
//	u32 ncols, per column: name, u8 type
//	u8 hasSpatial, if set: ra col, dec col, u32 level
//	u64 durableRows
//	per column: u32 nblocks, per block:
//	    u64 off, u32 size, u32 crc, u8 flags (1 numeric, 2 hasNaN, 4 string),
//	    f64 min, f64 max, u32 nulls, u32 rows
//	    [v2, string flag only] str min, str max
//	u8 hasHTM, if set: u32 nblocks, per block: u64 idLo, u64 idHi
//	[v2] u8 hasStats, if set: u32 ncols, per column: u32 len + stats blob
//	u32 crc32 of everything above
//
// Version 2 added per-block string zones and the maintained column
// statistics section. Version-1 footers (pre-stats stores) still decode:
// string columns then carry no zones and colStats is nil — readers fall
// back to statistics-free behavior (no string pruning, count-star
// planning).

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"skyquery/internal/htm"
	"skyquery/internal/stats"
	"skyquery/internal/value"
)

const (
	footerMagic   = "SKYFTR1\n"
	footerVersion = 2
	footerName    = "footer"
)

// blockMeta locates and summarizes one sealed block in a column file.
type blockMeta struct {
	off     int64
	size    uint32
	crc     uint32
	z       zone
	numeric bool
	sz      strZone
	isStr   bool
}

// htmRange is the HTM leaf-ID span of one sealed block's rows.
type htmRange struct {
	lo, hi htm.ID
}

// tableFooter is the decoded footer.
type tableFooter struct {
	name      string
	schema    Schema
	spatial   *SpatialConfig
	durable   int
	blocks    [][]blockMeta // [column][block]
	htmRanges []htmRange    // per block; nil without spatial config
	colStats  []*stats.Col  // per column over the durable rows; nil pre-v2
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func takeStr(data []byte) (string, []byte, error) {
	if len(data) < 2 {
		return "", nil, fmt.Errorf("storage: truncated footer string")
	}
	l := int(binary.LittleEndian.Uint16(data))
	if len(data)-2 < l {
		return "", nil, fmt.Errorf("storage: truncated footer string")
	}
	return string(data[2 : 2+l]), data[2+l:], nil
}

func encodeFooter(f *tableFooter) []byte {
	dst := append([]byte(nil), footerMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, footerVersion)
	dst = appendStr(dst, f.name)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.schema)))
	for _, def := range f.schema {
		dst = appendStr(dst, def.Name)
		dst = append(dst, byte(def.Type))
	}
	if f.spatial != nil {
		dst = append(dst, 1)
		dst = appendStr(dst, f.spatial.RACol)
		dst = appendStr(dst, f.spatial.DecCol)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(f.spatial.Level))
	} else {
		dst = append(dst, 0)
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(f.durable))
	for _, col := range f.blocks {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(col)))
		for _, m := range col {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(m.off))
			dst = binary.LittleEndian.AppendUint32(dst, m.size)
			dst = binary.LittleEndian.AppendUint32(dst, m.crc)
			var flags byte
			if m.numeric {
				flags |= 1
			}
			if m.z.hasNaN {
				flags |= 2
			}
			if m.isStr {
				flags |= 4
			}
			dst = append(dst, flags)
			// String blocks reuse the nulls/rows slots; min/max floats are
			// written zero and the string bounds follow the record.
			nulls, rows := m.z.nulls, m.z.rows
			if m.isStr {
				nulls, rows = m.sz.nulls, m.sz.rows
			}
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.z.min))
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.z.max))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(nulls))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(rows))
			if m.isStr {
				dst = appendStr(dst, m.sz.min)
				dst = appendStr(dst, m.sz.max)
			}
		}
	}
	if f.htmRanges != nil {
		dst = append(dst, 1)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.htmRanges)))
		for _, r := range f.htmRanges {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(r.lo))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(r.hi))
		}
	} else {
		dst = append(dst, 0)
	}
	if f.colStats != nil {
		dst = append(dst, 1)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.colStats)))
		for _, c := range f.colStats {
			blob := stats.EncodeCol(c)
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(blob)))
			dst = append(dst, blob...)
		}
	} else {
		dst = append(dst, 0)
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst))
}

func decodeFooter(data []byte) (*tableFooter, error) {
	if len(data) < len(footerMagic)+8 || string(data[:len(footerMagic)]) != footerMagic {
		return nil, fmt.Errorf("storage: bad footer magic")
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("storage: footer checksum mismatch")
	}
	rest := data[len(footerMagic):]
	version := binary.LittleEndian.Uint32(rest)
	if version < 1 || version > footerVersion {
		return nil, fmt.Errorf("storage: footer version %d unsupported", version)
	}
	rest = rest[4:]
	f := &tableFooter{}
	var err error
	if f.name, rest, err = takeStr(rest); err != nil {
		return nil, err
	}
	need := func(n int) error {
		if len(rest) < n {
			return fmt.Errorf("storage: truncated footer")
		}
		return nil
	}
	if err := need(4); err != nil {
		return nil, err
	}
	ncols := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	for i := 0; i < ncols; i++ {
		var name string
		if name, rest, err = takeStr(rest); err != nil {
			return nil, err
		}
		if err := need(1); err != nil {
			return nil, err
		}
		f.schema = append(f.schema, ColumnDef{Name: name, Type: value.Type(rest[0])})
		rest = rest[1:]
	}
	if err := need(1); err != nil {
		return nil, err
	}
	hasSpatial := rest[0] == 1
	rest = rest[1:]
	if hasSpatial {
		cfg := &SpatialConfig{}
		if cfg.RACol, rest, err = takeStr(rest); err != nil {
			return nil, err
		}
		if cfg.DecCol, rest, err = takeStr(rest); err != nil {
			return nil, err
		}
		if err := need(4); err != nil {
			return nil, err
		}
		cfg.Level = int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		f.spatial = cfg
	}
	if err := need(8); err != nil {
		return nil, err
	}
	f.durable = int(binary.LittleEndian.Uint64(rest))
	rest = rest[8:]
	f.blocks = make([][]blockMeta, ncols)
	for ci := 0; ci < ncols; ci++ {
		if err := need(4); err != nil {
			return nil, err
		}
		nb := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		for b := 0; b < nb; b++ {
			if err := need(41); err != nil {
				return nil, err
			}
			m := blockMeta{
				off:  int64(binary.LittleEndian.Uint64(rest)),
				size: binary.LittleEndian.Uint32(rest[8:]),
				crc:  binary.LittleEndian.Uint32(rest[12:]),
			}
			flags := rest[16]
			m.numeric = flags&1 != 0
			m.z.hasNaN = flags&2 != 0
			m.isStr = version >= 2 && flags&4 != 0
			m.z.min = math.Float64frombits(binary.LittleEndian.Uint64(rest[17:]))
			m.z.max = math.Float64frombits(binary.LittleEndian.Uint64(rest[25:]))
			nulls := int32(binary.LittleEndian.Uint32(rest[33:]))
			rows := int32(binary.LittleEndian.Uint32(rest[37:]))
			rest = rest[41:]
			if m.isStr {
				m.sz.nulls, m.sz.rows = nulls, rows
				if m.sz.min, rest, err = takeStr(rest); err != nil {
					return nil, err
				}
				if m.sz.max, rest, err = takeStr(rest); err != nil {
					return nil, err
				}
			} else {
				m.z.nulls, m.z.rows = nulls, rows
			}
			f.blocks[ci] = append(f.blocks[ci], m)
		}
	}
	if err := need(1); err != nil {
		return nil, err
	}
	hasHTM := rest[0] == 1
	rest = rest[1:]
	if hasHTM {
		if err := need(4); err != nil {
			return nil, err
		}
		nb := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		f.htmRanges = make([]htmRange, 0, nb)
		for b := 0; b < nb; b++ {
			if err := need(16); err != nil {
				return nil, err
			}
			f.htmRanges = append(f.htmRanges, htmRange{
				lo: htm.ID(binary.LittleEndian.Uint64(rest)),
				hi: htm.ID(binary.LittleEndian.Uint64(rest[8:])),
			})
			rest = rest[16:]
		}
	}
	if version >= 2 {
		if err := need(1); err != nil {
			return nil, err
		}
		hasStats := rest[0] == 1
		rest = rest[1:]
		if hasStats {
			if err := need(4); err != nil {
				return nil, err
			}
			nc := int(binary.LittleEndian.Uint32(rest))
			rest = rest[4:]
			f.colStats = make([]*stats.Col, 0, nc)
			for i := 0; i < nc; i++ {
				if err := need(4); err != nil {
					return nil, err
				}
				l := int(binary.LittleEndian.Uint32(rest))
				rest = rest[4:]
				if err := need(l); err != nil {
					return nil, err
				}
				c, err := stats.DecodeCol(rest[:l])
				if err != nil {
					return nil, err
				}
				rest = rest[l:]
				f.colStats = append(f.colStats, c)
			}
		}
	}
	return f, nil
}

// writeFooterFile commits a footer atomically (temp + fsync + rename).
func writeFooterFile(path string, f *tableFooter) error {
	tmp := path + ".tmp"
	out, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := out.Write(encodeFooter(f)); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(path)
	return nil
}

func readFooterFile(path string) (*tableFooter, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeFooter(data)
}

// FooterInfo summarizes a table footer for tooling (skyquery-walinspect).
type FooterInfo struct {
	Table       string
	Columns     []string
	DurableRows int
	Blocks      int // sealed blocks per column
	Spatial     bool
	Level       int // HTM leaf level when Spatial
}

// InspectFooter reads and summarizes a table footer file.
func InspectFooter(path string) (*FooterInfo, error) {
	f, err := readFooterFile(path)
	if err != nil {
		return nil, err
	}
	info := &FooterInfo{Table: f.name, Columns: f.schema.Names(), DurableRows: f.durable}
	if len(f.blocks) > 0 {
		info.Blocks = len(f.blocks[0])
	}
	if f.spatial != nil {
		info.Spatial = true
		info.Level = f.spatial.Level
	}
	return info, nil
}
