package storage

import (
	"testing"

	"skyquery/internal/eval"
	"skyquery/internal/sphere"
	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
)

// prunableSet parses a WHERE source and extracts its prune set against the
// table's schema layout, as Select and the chain steps do.
func prunableSet(t *testing.T, tab *Table, src string) eval.PruneSet {
	t.Helper()
	e, err := sqlparse.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	return eval.AnalyzePrune(e, tab.Layout(""), func(s int) value.Type { return tab.Schema()[s].Type })
}

// TestSearchCapBatchMatchesPerRow pins the batch search against the
// per-row search: same rows, same order, same positions, at degenerate
// and full batch limits, including the final partial flush.
func TestSearchCapBatchMatchesPerRow(t *testing.T) {
	tab, err := NewTable("obj", objSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillObjects(t, tab, 3000, 42)
	if err := tab.EnableSpatial(SpatialConfig{RACol: "ra", DecCol: "dec"}); err != nil {
		t.Fatal(err)
	}
	c := sphere.NewCap(10, 20, 60)

	var wantRows []int
	var wantPos []sphere.Vec
	if err := tab.SearchCapPos(c, func(row int, pos sphere.Vec) bool {
		wantRows = append(wantRows, row)
		wantPos = append(wantPos, pos)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(wantRows) == 0 {
		t.Fatal("test cap matched no rows")
	}

	for _, limit := range []int{1, 7, 1024} {
		sb := &SearchBatch{Rows: make([]int, 0, 1024), Pos: make([]sphere.Vec, 0, 1024), Limit: limit}
		var gotRows []int
		var gotPos []sphere.Vec
		batches := 0
		if err := tab.SearchCapBatch(c, sb, func(rows []int, pos []sphere.Vec) bool {
			if len(rows) == 0 || len(rows) > limit || len(pos) != len(rows) {
				t.Fatalf("limit %d: bad batch shape %d rows / %d pos", limit, len(rows), len(pos))
			}
			gotRows = append(gotRows, rows...)
			gotPos = append(gotPos, pos...)
			batches++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(gotRows) != len(wantRows) {
			t.Fatalf("limit %d: %d rows, want %d", limit, len(gotRows), len(wantRows))
		}
		for i := range gotRows {
			if gotRows[i] != wantRows[i] || gotPos[i] != wantPos[i] {
				t.Fatalf("limit %d: row %d = (%d, %v), want (%d, %v)",
					limit, i, gotRows[i], gotPos[i], wantRows[i], wantPos[i])
			}
		}
		if wantBatches := (len(wantRows) + limit - 1) / limit; batches != wantBatches {
			t.Errorf("limit %d: %d batches, want %d", limit, batches, wantBatches)
		}
	}

	// fn returning false stops the search: exactly one batch arrives.
	sb := &SearchBatch{Rows: make([]int, 0, 8), Limit: 8}
	calls := 0
	if err := tab.SearchCapBatch(c, sb, func([]int, []sphere.Vec) bool {
		calls++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("stopped search delivered %d batches", calls)
	}

	// A buffer-less search is an error, not a silent no-op.
	if err := tab.SearchCapBatch(c, &SearchBatch{}, func([]int, []sphere.Vec) bool { return true }); err == nil {
		t.Fatal("expected an error for a SearchBatch without buffers")
	}
}

// TestCandPrunerDropsDeadBlocks proves candidates from provably dead zone
// blocks never enter a batch: object_id equals the row index, so a
// comparison against a constant kills exactly the trailing blocks.
func TestCandPrunerDropsDeadBlocks(t *testing.T) {
	tab, err := NewTable("obj", objSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillObjects(t, tab, 3000, 42) // 3 zone blocks; block b holds object_ids [1024b, 1024b+1023]
	if err := tab.EnableSpatial(SpatialConfig{RACol: "ra", DecCol: "dec"}); err != nil {
		t.Fatal(err)
	}
	c := sphere.NewCap(10, 20, 60)

	var unpruned []int
	if err := tab.SearchCapPos(c, func(row int, _ sphere.Vec) bool {
		unpruned = append(unpruned, row)
		return true
	}); err != nil {
		t.Fatal(err)
	}

	ps := prunableSet(t, tab, "object_id < 500")
	if len(ps.Pruners) != 1 || !ps.Safe {
		t.Fatalf("prune set = %+v", ps)
	}
	pruner := tab.CandPruner(ps)
	if pruner == nil {
		t.Fatal("nil pruner for a prunable predicate")
	}

	blocksBefore, rowsBefore := CandBlocksPruned(), CandRowsGathered()
	sb := &SearchBatch{Rows: make([]int, 0, 256), Prune: pruner}
	var got []int
	if err := tab.SearchCapBatch(c, sb, func(rows []int, _ []sphere.Vec) bool {
		got = append(got, rows...)
		return true
	}); err != nil {
		t.Fatal(err)
	}

	// Surviving candidates are exactly the unpruned stream restricted to
	// the live block (rows 0..1023 — the block's min of 0 keeps it alive
	// even for object_ids 500..1023), in unchanged order.
	var want []int
	for _, r := range unpruned {
		if r < 1024 {
			want = append(want, r)
		}
	}
	if len(want) == 0 || len(want) == len(unpruned) {
		t.Fatalf("degenerate test split: %d of %d candidates live", len(want), len(unpruned))
	}
	if len(got) != len(want) {
		t.Fatalf("%d candidates survived, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("candidate %d = row %d, want %d", i, got[i], want[i])
		}
	}
	if d := CandRowsGathered() - rowsBefore; d != int64(len(got)) {
		t.Errorf("CandRowsGathered delta %d, want %d", d, len(got))
	}
	if d := CandBlocksPruned() - blocksBefore; d < 1 || d > 2 {
		t.Errorf("CandBlocksPruned delta %d, want 1..2 (the dead blocks the cap touches)", d)
	}

	// The memoized verdicts answer consistently on re-consultation and the
	// block counter does not double-count.
	blocksBefore = CandBlocksPruned()
	for _, r := range []int{0, 1500, 2500, 2999} {
		want := r >= 1024
		if pruner.Pruned(r) != want {
			t.Errorf("Pruned(%d) = %v, want %v", r, !want, want)
		}
	}
	if d := CandBlocksPruned() - blocksBefore; d != 0 {
		t.Errorf("re-consultation counted %d new pruned blocks", d)
	}
}

// TestCandPrunerFreshRowsSurvive is the regression test for the stale
// partial-block verdict: a pruner built at n rows must never prune rows
// appended after n, even though those rows land in a block that already
// has (dead) statistics. Before the fix the guard was the block count, so
// a fresh row appended into the partial trailing block was judged against
// statistics that do not cover it and wrongly dropped.
func TestCandPrunerFreshRowsSurvive(t *testing.T) {
	tab, err := NewTable("obj", objSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillObjects(t, tab, 1500, 42) // block 0 full, block 1 partial (rows 1024..1499)
	if err := tab.EnableSpatial(SpatialConfig{RACol: "ra", DecCol: "dec"}); err != nil {
		t.Fatal(err)
	}
	c := sphere.NewCap(10, 20, 60)

	// object_id equals the row index, so this kills block 1 at snapshot
	// time: its minimum is 1024.
	ps := prunableSet(t, tab, "object_id < 500")
	pruner := tab.CandPruner(ps)
	if pruner == nil {
		t.Fatal("nil pruner")
	}
	if !pruner.Pruned(1100) {
		t.Fatal("trailing partial block not dead at snapshot time; test is vacuous")
	}

	// Appends land in that same partial block — rows 1500..1519, with
	// object_ids that satisfy the predicate, at the cap's center.
	const fresh = 20
	for i := 0; i < fresh; i++ {
		err := tab.Append(value.Int(int64(i)), value.Float(10), value.Float(20),
			value.Float(1), value.String("STAR"), value.Bool(false))
		if err != nil {
			t.Fatal(err)
		}
	}

	sb := &SearchBatch{Rows: make([]int, 0, 256), Prune: pruner}
	seen := map[int]bool{}
	if err := tab.SearchCapBatch(c, sb, func(rows []int, _ []sphere.Vec) bool {
		for _, r := range rows {
			seen[r] = true
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for r := 1500; r < 1500+fresh; r++ {
		if !seen[r] {
			t.Errorf("fresh row %d was pruned by stale block statistics", r)
		}
	}
	for r := range seen {
		if r >= 1024 && r < 1500 {
			t.Errorf("snapshot-covered dead-block row %d escaped pruning", r)
		}
	}
}

// TestSelectAreaCandidatePruning runs an AREA query whose WHERE is
// candidate-prunable through Select and checks the result against a
// row-at-a-time reference, plus that pruning actually cut the predicate
// work below the HTM search.
func TestSelectAreaCandidatePruning(t *testing.T) {
	tab, err := NewTable("obj", objSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillObjects(t, tab, 3000, 42)
	if err := tab.EnableSpatial(SpatialConfig{RACol: "ra", DecCol: "dec"}); err != nil {
		t.Fatal(err)
	}
	region := sphere.NewCap(10, 20, 60)

	q, err := sqlparse.Parse("SELECT object_id, flux FROM obj WHERE object_id < 500 AND flux >= 0")
	if err != nil {
		t.Fatal(err)
	}

	// Row-at-a-time reference over the per-row search.
	var want [][]value.Value
	if err := tab.SearchCapPos(region, func(row int, _ sphere.Vec) bool {
		if id := tab.ValueUnlocked(row, 0); !id.IsNull() && id.AsInt() < 500 {
			want = append(want, []value.Value{tab.ValueUnlocked(row, 0), tab.ValueUnlocked(row, 3)})
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}

	blocksBefore := CandBlocksPruned()
	predBefore := PredRowsEvaluated()
	res, err := tab.Select("", q, region)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("%d rows, want %d", len(res.Rows), len(want))
	}
	for i := range res.Rows {
		for j := range res.Rows[i] {
			if !value.Equal(res.Rows[i][j], want[i][j]) {
				t.Fatalf("row %d col %d = %v, want %v", i, j, res.Rows[i][j], want[i][j])
			}
		}
	}
	if CandBlocksPruned() == blocksBefore {
		t.Error("AREA scan pruned no candidate blocks")
	}
	// Only live-block candidates may have been evaluated: strictly fewer
	// than the cap's full candidate count.
	var total int64
	if err := tab.SearchCap(region, func(int) bool { total++; return true }); err != nil {
		t.Fatal(err)
	}
	if d := PredRowsEvaluated() - predBefore; d >= total {
		t.Errorf("evaluated %d candidate rows, want fewer than the cap's %d", d, total)
	}
}
