package storage

// Typed, zero-copy access to the columnar backends. The bulk-loaded
// tables already store each column as a native slice pair (values +
// null flags); these helpers hand those slices to the typed batch engine
// (eval.Vector / eval.CompileTyped) directly — a base-table scan feeds
// kernels without boxing or copying a single cell — and gather scattered
// candidate rows (HTM search results, chain-step candidates) into pooled
// typed scratch instead of boxed values.
//
// Everything here follows the ValueUnlocked read discipline: call only
// inside a read context (a Scan or Search* callback, or the federation's
// bulk-load-then-read phase discipline), and never write through a view.

import (
	"skyquery/internal/eval"
)

// Int64Col returns the value and null slices backing an INT column — a
// zero-copy view into table storage. ok is false for other column types.
func (t *Table) Int64Col(ci int) (vals []int64, nulls []bool, ok bool) {
	if c, isInt := t.cols[ci].(*intColumn); isInt {
		return c.vals, c.nulls, true
	}
	return nil, nil, false
}

// Float64Col is Int64Col for FLOAT columns.
func (t *Table) Float64Col(ci int) (vals []float64, nulls []bool, ok bool) {
	if c, isFloat := t.cols[ci].(*floatColumn); isFloat {
		return c.vals, c.nulls, true
	}
	return nil, nil, false
}

// StringCol is Int64Col for STRING columns.
func (t *Table) StringCol(ci int) (vals []string, nulls []bool, ok bool) {
	if c, isStr := t.cols[ci].(*stringColumn); isStr {
		return c.vals, c.nulls, true
	}
	return nil, nil, false
}

// BoolCol is Int64Col for BOOL columns.
func (t *Table) BoolCol(ci int) (vals []bool, nulls []bool, ok bool) {
	if c, isBool := t.cols[ci].(*boolColumn); isBool {
		return c.vals, c.nulls, true
	}
	return nil, nil, false
}

// ColumnView points dst at rows [lo, hi) of column ci without copying:
// the contiguous feeder for block-aligned base-table scans.
func (t *Table) ColumnView(dst *eval.Vector, ci, lo, hi int) {
	switch c := t.cols[ci].(type) {
	case *intColumn:
		dst.SetIntView(c.vals[lo:hi], c.nulls[lo:hi])
	case *floatColumn:
		dst.SetFloatView(c.vals[lo:hi], c.nulls[lo:hi])
	case *stringColumn:
		dst.SetStrView(c.vals[lo:hi], c.nulls[lo:hi])
	case *boolColumn:
		dst.SetBoolView(c.vals[lo:hi], c.nulls[lo:hi])
	}
}

// GatherColumn fills dst by batch position with column ci of the given
// table rows (dst[k] = cell(rows[k], ci)), natively — the typed
// counterpart of FillColumn, without boxing a cell.
func (t *Table) GatherColumn(dst *eval.Vector, ci int, rows []int) {
	switch c := t.cols[ci].(type) {
	case *intColumn:
		vals, nulls := dst.IntBuf(len(rows))
		for k, r := range rows {
			vals[k], nulls[k] = c.vals[r], c.nulls[r]
		}
	case *floatColumn:
		vals, nulls := dst.FloatBuf(len(rows))
		for k, r := range rows {
			vals[k], nulls[k] = c.vals[r], c.nulls[r]
		}
	case *stringColumn:
		vals, nulls := dst.StrBuf(len(rows))
		for k, r := range rows {
			vals[k], nulls[k] = c.vals[r], c.nulls[r]
		}
	case *boolColumn:
		vals, nulls := dst.BoolBuf(len(rows))
		for k, r := range rows {
			vals[k], nulls[k] = c.vals[r], c.nulls[r]
		}
	}
}

// GatherColumnSel is GatherColumn restricted to the batch positions in
// sel: dst[k] = cell(rows[k], ci) for k in sel. Scan sites use it to
// gather post-predicate columns only for surviving rows; other positions
// hold stale scratch and must not be read.
func (t *Table) GatherColumnSel(dst *eval.Vector, ci int, rows []int, sel []int) {
	switch c := t.cols[ci].(type) {
	case *intColumn:
		vals, nulls := dst.IntBuf(len(rows))
		for _, k := range sel {
			r := rows[k]
			vals[k], nulls[k] = c.vals[r], c.nulls[r]
		}
	case *floatColumn:
		vals, nulls := dst.FloatBuf(len(rows))
		for _, k := range sel {
			r := rows[k]
			vals[k], nulls[k] = c.vals[r], c.nulls[r]
		}
	case *stringColumn:
		vals, nulls := dst.StrBuf(len(rows))
		for _, k := range sel {
			r := rows[k]
			vals[k], nulls[k] = c.vals[r], c.nulls[r]
		}
	case *boolColumn:
		vals, nulls := dst.BoolBuf(len(rows))
		for _, k := range sel {
			r := rows[k]
			vals[k], nulls[k] = c.vals[r], c.nulls[r]
		}
	}
}
