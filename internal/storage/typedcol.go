package storage

// Typed, zero-copy access to the columnar backends. The bulk-loaded
// tables already store each column as a native slice pair (values +
// null flags); these helpers hand those slices to the typed batch engine
// (eval.Vector / eval.CompileTyped) directly — a base-table scan feeds
// kernels without boxing or copying a single cell — and gather scattered
// candidate rows (HTM search results, chain-step candidates) into pooled
// typed scratch instead of boxed values.
//
// Disk-backed tables route the same calls through the hot/cold split:
// resident rows view table memory exactly as before, while rows in
// evicted sealed blocks hydrate through the tableStore block cache and
// are viewed (or gathered) from the decoded slab — this file is the seam
// where cold data enters eval.Vector without an extra copy.
//
// Everything here follows the ValueUnlocked read discipline: call only
// inside a read context (a Scan or Search* callback, a BeginRead/EndRead
// section, or the federation's bulk-load-then-read phase discipline),
// and never write through a view.

import (
	"skyquery/internal/eval"
)

// Int64Col returns the value and null slices backing an INT column — a
// zero-copy view into table storage. ok is false for other column types,
// and for disk-backed tables (whose columns are not a single resident
// slice; use ColumnView or GatherColumn there).
func (t *Table) Int64Col(ci int) (vals []int64, nulls []bool, ok bool) {
	if c, isInt := t.cols[ci].(*intColumn); isInt && t.persist == nil {
		return c.vals, c.nulls, true
	}
	return nil, nil, false
}

// Float64Col is Int64Col for FLOAT columns.
func (t *Table) Float64Col(ci int) (vals []float64, nulls []bool, ok bool) {
	if c, isFloat := t.cols[ci].(*floatColumn); isFloat && t.persist == nil {
		return c.vals, c.nulls, true
	}
	return nil, nil, false
}

// StringCol is Int64Col for STRING columns.
func (t *Table) StringCol(ci int) (vals []string, nulls []bool, ok bool) {
	if c, isStr := t.cols[ci].(*stringColumn); isStr && t.persist == nil {
		return c.vals, c.nulls, true
	}
	return nil, nil, false
}

// BoolCol is Int64Col for BOOL columns.
func (t *Table) BoolCol(ci int) (vals []bool, nulls []bool, ok bool) {
	if c, isBool := t.cols[ci].(*boolColumn); isBool && t.persist == nil {
		return c.vals, c.nulls, true
	}
	return nil, nil, false
}

// viewColumn points dst at rows [lo, hi) of a column backend (indices
// relative to that backend's slices).
func viewColumn(dst *eval.Vector, col column, lo, hi int) {
	switch c := col.(type) {
	case *intColumn:
		dst.SetIntView(c.vals[lo:hi], c.nulls[lo:hi])
	case *floatColumn:
		dst.SetFloatView(c.vals[lo:hi], c.nulls[lo:hi])
	case *stringColumn:
		dst.SetStrView(c.vals[lo:hi], c.nulls[lo:hi])
	case *boolColumn:
		dst.SetBoolView(c.vals[lo:hi], c.nulls[lo:hi])
	}
}

// ColumnView points dst at rows [lo, hi) of column ci without copying:
// the contiguous feeder for block-aligned base-table scans. The range
// must not straddle the hot/cold boundary — block-aligned scans never
// do, because the boundary is itself block-aligned. A cold range views
// the hydrated block's slab directly.
func (t *Table) ColumnView(dst *eval.Vector, ci, lo, hi int) {
	if lo >= t.memBase {
		viewColumn(dst, t.cols[ci], lo-t.memBase, hi-t.memBase)
		return
	}
	b := lo / ZoneBlockRows
	base := b * ZoneBlockRows
	viewColumn(dst, t.persist.mustBlock(ci, b), lo-base, hi-base)
}

// GatherColumn fills dst by batch position with column ci of the given
// table rows (dst[k] = cell(rows[k], ci)), natively — the typed
// counterpart of FillColumn, without boxing a cell.
func (t *Table) GatherColumn(dst *eval.Vector, ci int, rows []int) {
	if t.memBase > 0 {
		t.gatherCold(dst, ci, rows, nil)
		return
	}
	switch c := t.cols[ci].(type) {
	case *intColumn:
		vals, nulls := dst.IntBuf(len(rows))
		for k, r := range rows {
			vals[k], nulls[k] = c.vals[r], c.nulls[r]
		}
	case *floatColumn:
		vals, nulls := dst.FloatBuf(len(rows))
		for k, r := range rows {
			vals[k], nulls[k] = c.vals[r], c.nulls[r]
		}
	case *stringColumn:
		vals, nulls := dst.StrBuf(len(rows))
		for k, r := range rows {
			vals[k], nulls[k] = c.vals[r], c.nulls[r]
		}
	case *boolColumn:
		vals, nulls := dst.BoolBuf(len(rows))
		for k, r := range rows {
			vals[k], nulls[k] = c.vals[r], c.nulls[r]
		}
	}
}

// GatherColumnSel is GatherColumn restricted to the batch positions in
// sel: dst[k] = cell(rows[k], ci) for k in sel. Scan sites use it to
// gather post-predicate columns only for surviving rows; other positions
// hold stale scratch and must not be read.
func (t *Table) GatherColumnSel(dst *eval.Vector, ci int, rows []int, sel []int) {
	if t.memBase > 0 {
		t.gatherCold(dst, ci, rows, sel)
		return
	}
	switch c := t.cols[ci].(type) {
	case *intColumn:
		vals, nulls := dst.IntBuf(len(rows))
		for _, k := range sel {
			r := rows[k]
			vals[k], nulls[k] = c.vals[r], c.nulls[r]
		}
	case *floatColumn:
		vals, nulls := dst.FloatBuf(len(rows))
		for _, k := range sel {
			r := rows[k]
			vals[k], nulls[k] = c.vals[r], c.nulls[r]
		}
	case *stringColumn:
		vals, nulls := dst.StrBuf(len(rows))
		for _, k := range sel {
			r := rows[k]
			vals[k], nulls[k] = c.vals[r], c.nulls[r]
		}
	case *boolColumn:
		vals, nulls := dst.BoolBuf(len(rows))
		for _, k := range sel {
			r := rows[k]
			vals[k], nulls[k] = c.vals[r], c.nulls[r]
		}
	}
}

// gatherCold is the hot/cold-aware gather: resident rows read table
// memory, cold rows read hydrated blocks (memoizing the last block —
// search order clusters candidates, so consecutive rows usually share
// one). sel == nil gathers every position.
func (t *Table) gatherCold(dst *eval.Vector, ci int, rows []int, sel []int) {
	base := t.memBase
	ts := t.persist
	lastB := -1
	var lastCol column
	locate := func(r int) (column, int) {
		if r >= base {
			return t.cols[ci], r - base
		}
		if b := r / ZoneBlockRows; b != lastB {
			lastB, lastCol = b, ts.mustBlock(ci, b)
		}
		return lastCol, r % ZoneBlockRows
	}
	switch t.cols[ci].(type) {
	case *intColumn:
		vals, nulls := dst.IntBuf(len(rows))
		fill := func(k, r int) {
			c, j := locate(r)
			cc := c.(*intColumn)
			vals[k], nulls[k] = cc.vals[j], cc.nulls[j]
		}
		if sel == nil {
			for k, r := range rows {
				fill(k, r)
			}
		} else {
			for _, k := range sel {
				fill(k, rows[k])
			}
		}
	case *floatColumn:
		vals, nulls := dst.FloatBuf(len(rows))
		fill := func(k, r int) {
			c, j := locate(r)
			cc := c.(*floatColumn)
			vals[k], nulls[k] = cc.vals[j], cc.nulls[j]
		}
		if sel == nil {
			for k, r := range rows {
				fill(k, r)
			}
		} else {
			for _, k := range sel {
				fill(k, rows[k])
			}
		}
	case *stringColumn:
		vals, nulls := dst.StrBuf(len(rows))
		fill := func(k, r int) {
			c, j := locate(r)
			cc := c.(*stringColumn)
			vals[k], nulls[k] = cc.vals[j], cc.nulls[j]
		}
		if sel == nil {
			for k, r := range rows {
				fill(k, r)
			}
		} else {
			for _, k := range sel {
				fill(k, rows[k])
			}
		}
	case *boolColumn:
		vals, nulls := dst.BoolBuf(len(rows))
		fill := func(k, r int) {
			c, j := locate(r)
			cc := c.(*boolColumn)
			vals[k], nulls[k] = cc.vals[j], cc.nulls[j]
		}
		if sel == nil {
			for k, r := range rows {
				fill(k, r)
			}
		} else {
			for _, k := range sel {
				fill(k, rows[k])
			}
		}
	}
}
