package storage

// String zone-map regression suite: byte-wise min/max zones over STRING
// columns must prune exactly like the numeric path — catalog-name
// prefixes (LIKE 'NGC%'), equality, ranges, and conjuncts mixing string
// and numeric zones — and must mirror the numeric NULL/error-exactness
// rules: all-NULL blocks prune only under Safe, PrefixSafe pruning
// requires NULL-free blocks, and a string conjunct never hides an error
// a row-at-a-time evaluation would have hit.

import (
	"fmt"
	"testing"

	"skyquery/internal/value"
)

// strZonePrefixes gives each block of strZoneTable a distinct catalog
// prefix, in byte order, so every single-prefix predicate is dead on
// three of the four blocks.
var strZonePrefixes = []string{"ABELL", "IC", "NGC", "UGC"}

// strZoneTable builds a block-aligned catalog table: 4 blocks of
// ZoneBlockRows rows, id = row index, name = "<block prefix> %04d", and
// note an all-NULL string column (the string analogue of zoneTable's
// flags).
func strZoneTable(t *testing.T) *Table {
	t.Helper()
	tab, err := NewTable("z", Schema{
		{Name: "id", Type: value.IntType},
		{Name: "name", Type: value.StringType},
		{Name: "note", Type: value.StringType},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := len(strZonePrefixes) * ZoneBlockRows
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s %04d", strZonePrefixes[i/ZoneBlockRows], i)
		if err := tab.Append(value.Int(int64(i)), value.String(name), value.Null); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func TestStrZonePrunesDeadBlocks(t *testing.T) {
	tab := strZoneTable(t)

	// The headline case: a catalog-prefix LIKE evaluates only the NGC
	// block; the other three are proven dead by their name zones.
	res, rows, pruned, err := runZoneQuery(t, tab, `SELECT id FROM z WHERE name LIKE 'NGC 25%'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 100 || res.Rows[0][0].AsInt() != 2500 {
		t.Fatalf("LIKE prefix: %d rows, first %v", len(res.Rows), res.Rows[:min(1, len(res.Rows))])
	}
	if rows != ZoneBlockRows || pruned != 3 {
		t.Fatalf("LIKE prefix evaluated %d rows, pruned %d blocks; want %d and 3", rows, pruned, ZoneBlockRows)
	}

	// Equality on a single catalog name: one block evaluated, one row out.
	res, rows, pruned, err = runZoneQuery(t, tab, `SELECT id FROM z WHERE name = 'IC 1500'`)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 1500 {
		t.Fatalf("equality: %v err=%v", res.Rows, err)
	}
	if rows != ZoneBlockRows || pruned != 3 {
		t.Fatalf("equality evaluated %d rows, pruned %d blocks; want %d and 3", rows, pruned, ZoneBlockRows)
	}

	// A byte-order range covering exactly one prefix.
	res, rows, pruned, err = runZoneQuery(t, tab,
		`SELECT COUNT(*) FROM z WHERE name >= 'UGC' AND name < 'UGD'`)
	if err != nil || res.Rows[0][0].AsInt() != int64(ZoneBlockRows) {
		t.Fatalf("range: %v err=%v", res.Rows, err)
	}
	if rows != ZoneBlockRows || pruned != 3 {
		t.Fatalf("range evaluated %d rows, pruned %d blocks; want %d and 3", rows, pruned, ZoneBlockRows)
	}

	// Zero selectivity: nothing sorts after 'ZZZ', every block prunes.
	res, rows, pruned, err = runZoneQuery(t, tab, `SELECT id FROM z WHERE name > 'ZZZ'`)
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("zero-selectivity: rows=%d err=%v", len(res.Rows), err)
	}
	if rows != 0 || pruned != 4 {
		t.Fatalf("zero-selectivity evaluated %d rows, pruned %d blocks; want 0 and 4", rows, pruned)
	}

	// Mixed string + numeric conjuncts: every block is dead under one
	// zone or the other (UGC ids start at 3072), so nothing is scanned.
	res, rows, pruned, err = runZoneQuery(t, tab,
		`SELECT id FROM z WHERE name LIKE 'UGC%' AND id < 100`)
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("mixed conjuncts: rows=%d err=%v", len(res.Rows), err)
	}
	if rows != 0 || pruned != 4 {
		t.Fatalf("mixed conjuncts evaluated %d rows, pruned %d blocks; want 0 and 4", rows, pruned)
	}

	// All-NULL string column: the predicate is NULL everywhere and
	// error-free, so every block prunes — the numeric flags rule, mirrored.
	res, rows, pruned, err = runZoneQuery(t, tab, `SELECT id FROM z WHERE note = 'x'`)
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("all-NULL: rows=%d err=%v", len(res.Rows), err)
	}
	if rows != 0 || pruned != 4 {
		t.Fatalf("all-NULL evaluated %d rows, pruned %d blocks; want 0 and 4", rows, pruned)
	}

	// A pattern without a literal prefix gives the zones nothing to work
	// with: every block must be scanned, results still exact.
	res, rows, pruned, err = runZoneQuery(t, tab, `SELECT COUNT(*) FROM z WHERE name LIKE '%0017'`)
	if err != nil || res.Rows[0][0].AsInt() != 1 {
		t.Fatalf("suffix pattern: %v err=%v", res.Rows, err)
	}
	if rows != 4*ZoneBlockRows || pruned != 0 {
		t.Fatalf("suffix pattern evaluated %d rows, pruned %d blocks; want %d and 0", rows, pruned, 4*ZoneBlockRows)
	}
}

func TestStrZonePruningErrorExactness(t *testing.T) {
	tab := strZoneTable(t)

	// The string conjunct is strictly FALSE on every row and comes first:
	// row-at-a-time AND would short-circuit before the erroring conjunct,
	// so pruning the whole scan is exact.
	res, rows, _, err := runZoneQuery(t, tab,
		`SELECT id FROM z WHERE name > 'ZZZ' AND 10 / (id - 5) < 0`)
	if err != nil || len(res.Rows) != 0 || rows != 0 {
		t.Fatalf("prefix-safe prune: rows=%d evaluated=%d err=%v", len(res.Rows), rows, err)
	}

	// Flipped order: the division by zero at id=5 evaluates first
	// row-at-a-time, so pruning by the string zone would hide it.
	_, _, pruned, err := runZoneQuery(t, tab,
		`SELECT id FROM z WHERE 10 / (id - 5) < 0 AND name > 'ZZZ'`)
	if err == nil {
		t.Fatal("unsafe-prefix string prune suppressed a division by zero")
	}
	if pruned != 0 {
		t.Fatalf("unsafe-prefix query pruned %d blocks", pruned)
	}

	// NULLs block non-Safe pruning, same as numeric: note = 'x' is NULL
	// (not FALSE) on every row, so it never short-circuits the constant
	// error after it.
	_, _, pruned, err = runZoneQuery(t, tab,
		`SELECT id FROM z WHERE note = 'x' AND 1 / 0 = 1`)
	if err == nil {
		t.Fatal("NULL string conjunct prune suppressed a constant error")
	}
	if pruned != 0 {
		t.Fatalf("NULL-conjunct query pruned %d blocks", pruned)
	}
}
