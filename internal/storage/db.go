package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DB is a named collection of tables: the database a SkyNode wraps. It
// also manages the temporary tables the cross-match chain step creates and
// drops (§5.3: "the Cross match service ... insert[s] the values ... into
// a temporary table ... The temporary table is deleted").
type DB struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	tempSeq int
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: map[string]*Table{}}
}

// Create creates a table with the given schema.
func (db *DB) Create(name string, schema Schema) (*Table, error) {
	t, err := NewTable(name, schema)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; ok {
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	db.tables[name] = t
	return t, nil
}

// addTable registers an already-built table (Store recovery constructs
// tables from footers rather than through Create).
func (db *DB) addTable(t *Table) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[t.name]; ok {
		return fmt.Errorf("storage: table %q already exists", t.name)
	}
	db.tables[t.name] = t
	return nil
}

// CreateTemp creates a uniquely named temporary table and returns it. Temp
// table names begin with "#", following the SQL Server convention the
// SkyQuery nodes used.
func (db *DB) CreateTemp(prefix string, schema Schema) (*Table, error) {
	db.mu.Lock()
	db.tempSeq++
	name := fmt.Sprintf("#%s_%d", prefix, db.tempSeq)
	db.mu.Unlock()
	return db.Create(name, schema)
}

// Drop removes a table.
func (db *DB) Drop(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("storage: table %q does not exist", name)
	}
	delete(db.tables, name)
	return nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// Names returns the sorted names of all non-temporary tables.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []string
	for name := range db.tables {
		if !strings.HasPrefix(name, "#") {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// TempCount returns the number of live temporary tables (used by tests to
// verify the chain step cleans up after itself).
func (db *DB) TempCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for name := range db.tables {
		if strings.HasPrefix(name, "#") {
			n++
		}
	}
	return n
}
