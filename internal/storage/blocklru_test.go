package storage

import (
	"fmt"
	"path/filepath"
	"testing"

	"skyquery/internal/value"
)

func TestBlockLRUOrder(t *testing.T) {
	var c blockLRU
	mk := func(k uint64) column {
		col, err := newColumn(value.IntType)
		if err != nil {
			t.Fatal(err)
		}
		col.append(value.Int(int64(k)))
		return col
	}
	for k := uint64(0); k < 3; k++ {
		c.add(k, mk(k), 3)
	}
	// Touch 0: it becomes most recent, so adding 3 must evict 1 (the
	// least recently used), not 0 (the oldest insert).
	if _, ok := c.get(0); !ok {
		t.Fatal("warm get missed")
	}
	c.add(3, mk(3), 3)
	if _, ok := c.get(1); ok {
		t.Error("LRU victim 1 still resident")
	}
	for _, k := range []uint64{0, 2, 3} {
		if _, ok := c.get(k); !ok {
			t.Errorf("block %d evicted, want resident", k)
		}
	}
	if c.len() != 3 {
		t.Errorf("len = %d", c.len())
	}
	// Re-adding a resident key refreshes in place, no growth.
	c.add(2, mk(2), 3)
	if c.len() != 3 {
		t.Errorf("len after refresh = %d", c.len())
	}
}

func TestBlockLRUSingleEntry(t *testing.T) {
	var c blockLRU
	col, err := newColumn(value.IntType)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 10; k++ {
		c.add(k, col, 1)
		if c.len() != 1 {
			t.Fatalf("len = %d at k=%d", c.len(), k)
		}
		if _, ok := c.get(k); !ok {
			t.Fatalf("newest entry %d missing", k)
		}
	}
}

// TestBlockCacheLRUBeatsFIFO drives the access pattern FIFO is worst at
// — a cyclic scan over one block more than fits, with a hot block
// re-read in between — and proves the hot block stays resident.
func TestBlockCacheLRUBeatsFIFO(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(filepath.Join(dir, "s"), StoreOptions{HotBlocks: 1, CacheBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tbl, err := st.Create("t", Schema{{Name: "x", Type: value.IntType}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Five sealed blocks, one hot: blocks 0..3 are cold.
	for i := 0; i < 5*ZoneBlockRows; i++ {
		if err := tbl.Append(value.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	ts := st.tables["t"]
	read := func(b int) {
		if _, err := ts.block(0, b); err != nil {
			t.Fatal(err)
		}
	}
	read(0) // the hot block of this access pattern
	h0, m0 := BlockCacheHits(), BlockCacheMisses()
	for round := 0; round < 4; round++ {
		read(0)           // re-reference
		read(1 + round%3) // cyclic cold traffic
	}
	hits, misses := BlockCacheHits()-h0, BlockCacheMisses()-m0
	// Block 0 is touched every other read: LRU keeps it resident, so all
	// four re-references hit. FIFO would evict it on the cold traffic and
	// miss every time (0 hits, 8 misses).
	if hits < 4 {
		t.Errorf("hits = %d, want >= 4 (block 0 must stay resident)", hits)
	}
	if misses > 4 {
		t.Errorf("misses = %d, want <= 4", misses)
	}
}

func TestBlockCacheCounters(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(filepath.Join(dir, "s"), StoreOptions{HotBlocks: 1, CacheBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tbl, err := st.Create("t", Schema{{Name: "x", Type: value.IntType}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*ZoneBlockRows; i++ {
		if err := tbl.Append(value.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	ts := st.tables["t"]
	h0, m0 := BlockCacheHits(), BlockCacheMisses()
	for i := 0; i < 3; i++ {
		if _, err := ts.block(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if h, m := BlockCacheHits()-h0, BlockCacheMisses()-m0; h != 2 || m != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", h, m)
	}
	if got := fmt.Sprintf("%d", ts.cache.len()); got != "1" {
		t.Errorf("resident blocks = %s", got)
	}
}
