package storage

// Column-block codec: the on-disk image of one ZoneBlockRows-row block of
// one column. Block files (one per column, named col_<i>.blk) are plain
// concatenations of these images; all framing — offsets, sizes, CRCs and
// the zone statistics of every block — lives in the table footer
// (footer.go), which is the atomic commit point. Bytes past the last
// footer-referenced block are uncommitted garbage from an interrupted
// flush and are overwritten by the next one.
//
// Image layout (little-endian throughout):
//
//	u8  kind        1=INT 2=FLOAT 3=STRING 4=BOOL
//	u32 rows
//	nulls bitmap    ceil(rows/8) bytes, bit i set = row i NULL
//	payload         INT/FLOAT: rows x u64 (float64 bits for FLOAT)
//	                STRING:    per row uvarint length + raw bytes
//	                BOOL:      value bitmap, ceil(rows/8) bytes
//
// NULL cells store their zero value in the payload (length 0 for STRING),
// exactly mirroring the in-memory columns, so a decoded block is
// bit-identical to the column slice pair it was flushed from.

import (
	"encoding/binary"
	"fmt"
	"math"
)

const (
	blockKindInt uint8 = iota + 1
	blockKindFloat
	blockKindString
	blockKindBool
)

// appendBools packs a bool slice as a bitmap.
func appendBools(dst []byte, bs []bool) []byte {
	n := (len(bs) + 7) / 8
	at := len(dst)
	dst = append(dst, make([]byte, n)...)
	for i, b := range bs {
		if b {
			dst[at+i/8] |= 1 << (i % 8)
		}
	}
	return dst
}

func decodeBools(data []byte, n int) ([]bool, []byte, error) {
	nb := (n + 7) / 8
	if len(data) < nb {
		return nil, nil, fmt.Errorf("storage: truncated bitmap: need %d bytes, have %d", nb, len(data))
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = data[i/8]&(1<<(i%8)) != 0
	}
	return out, data[nb:], nil
}

// appendBlock encodes rows [lo, hi) of a column (memory-relative indices).
func appendBlock(dst []byte, col column, lo, hi int) []byte {
	n := hi - lo
	switch c := col.(type) {
	case *intColumn:
		dst = append(dst, blockKindInt)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
		dst = appendBools(dst, c.nulls[lo:hi])
		for _, v := range c.vals[lo:hi] {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
	case *floatColumn:
		dst = append(dst, blockKindFloat)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
		dst = appendBools(dst, c.nulls[lo:hi])
		for _, v := range c.vals[lo:hi] {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	case *stringColumn:
		dst = append(dst, blockKindString)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
		dst = appendBools(dst, c.nulls[lo:hi])
		for _, v := range c.vals[lo:hi] {
			dst = binary.AppendUvarint(dst, uint64(len(v)))
			dst = append(dst, v...)
		}
	case *boolColumn:
		dst = append(dst, blockKindBool)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
		dst = appendBools(dst, c.nulls[lo:hi])
		dst = appendBools(dst, c.vals[lo:hi])
	}
	return dst
}

// decodeBlock decodes one block image into a fresh column.
func decodeBlock(data []byte) (column, int, error) {
	if len(data) < 5 {
		return nil, 0, fmt.Errorf("storage: block image too short (%d bytes)", len(data))
	}
	kind := data[0]
	n := int(binary.LittleEndian.Uint32(data[1:5]))
	if n < 0 || n > ZoneBlockRows {
		return nil, 0, fmt.Errorf("storage: block row count %d out of range", n)
	}
	rest := data[5:]
	nulls, rest, err := decodeBools(rest, n)
	if err != nil {
		return nil, 0, err
	}
	switch kind {
	case blockKindInt:
		if len(rest) < 8*n {
			return nil, 0, fmt.Errorf("storage: truncated INT block payload")
		}
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(binary.LittleEndian.Uint64(rest[8*i:]))
		}
		return &intColumn{vals: vals, nulls: nulls}, n, nil
	case blockKindFloat:
		if len(rest) < 8*n {
			return nil, 0, fmt.Errorf("storage: truncated FLOAT block payload")
		}
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
		}
		return &floatColumn{vals: vals, nulls: nulls}, n, nil
	case blockKindString:
		vals := make([]string, n)
		for i := range vals {
			l, k := binary.Uvarint(rest)
			if k <= 0 || uint64(len(rest)-k) < l {
				return nil, 0, fmt.Errorf("storage: truncated STRING block payload at row %d", i)
			}
			vals[i] = string(rest[k : k+int(l)])
			rest = rest[k+int(l):]
		}
		return &stringColumn{vals: vals, nulls: nulls}, n, nil
	case blockKindBool:
		vals, _, err := decodeBools(rest, n)
		if err != nil {
			return nil, 0, err
		}
		return &boolColumn{vals: vals, nulls: nulls}, n, nil
	}
	return nil, 0, fmt.Errorf("storage: unknown block kind %d", kind)
}

// appendColumn appends every row of src (a decoded block) onto dst. The
// concrete types must match; they always do because both derive from the
// same schema slot.
func appendColumn(dst, src column) error {
	switch d := dst.(type) {
	case *intColumn:
		s, ok := src.(*intColumn)
		if !ok {
			return fmt.Errorf("storage: block type mismatch: want INT")
		}
		d.vals = append(d.vals, s.vals...)
		d.nulls = append(d.nulls, s.nulls...)
	case *floatColumn:
		s, ok := src.(*floatColumn)
		if !ok {
			return fmt.Errorf("storage: block type mismatch: want FLOAT")
		}
		d.vals = append(d.vals, s.vals...)
		d.nulls = append(d.nulls, s.nulls...)
	case *stringColumn:
		s, ok := src.(*stringColumn)
		if !ok {
			return fmt.Errorf("storage: block type mismatch: want STRING")
		}
		d.vals = append(d.vals, s.vals...)
		d.nulls = append(d.nulls, s.nulls...)
	case *boolColumn:
		s, ok := src.(*boolColumn)
		if !ok {
			return fmt.Errorf("storage: block type mismatch: want BOOL")
		}
		d.vals = append(d.vals, s.vals...)
		d.nulls = append(d.nulls, s.nulls...)
	}
	return nil
}

// blockZone computes the zone statistics of rows [lo, hi) of a column
// (memory-relative indices); numeric is false for STRING/BOOL columns,
// whose blocks carry no statistics.
func blockZone(col column, lo, hi int) (z zone, numeric bool) {
	switch c := col.(type) {
	case *intColumn:
		return zoneOfInts(c.vals[lo:hi], c.nulls[lo:hi]), true
	case *floatColumn:
		return zoneOfFloats(c.vals[lo:hi], c.nulls[lo:hi]), true
	}
	return zone{}, false
}

// blockStrZone is blockZone for STRING columns; isStr is false for every
// other column type. Blocks whose bounds exceed the footer's u16 string
// frame carry no zone (conservative: that block just never prunes).
func blockStrZone(col column, lo, hi int) (z strZone, isStr bool) {
	c, ok := col.(*stringColumn)
	if !ok {
		return strZone{}, false
	}
	z = zoneOfStrings(c.vals[lo:hi], c.nulls[lo:hi])
	if len(z.min) > math.MaxUint16 || len(z.max) > math.MaxUint16 {
		return strZone{}, false
	}
	return z, true
}
