package storage

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"skyquery/internal/value"
)

// walRows is a value-type obstacle course: every cell tag, NULLs in every
// type, negative ints, NaN and empty strings.
func walRows() [][]value.Value {
	return [][]value.Value{
		{value.Int(42), value.Float(1.5), value.String("alpha"), value.Bool(true)},
		{value.Int(-7), value.Float(math.NaN()), value.String(""), value.Bool(false)},
		{value.Null, value.Null, value.Null, value.Null},
		{value.Int(1 << 60), value.Float(-0.0), value.String("β remains utf-8"), value.Null},
	}
}

func cellsEqual(t *testing.T, got, want []value.Value, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d cells, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.IsNull() != w.IsNull() {
			t.Fatalf("%s cell %d: null mismatch (%v vs %v)", ctx, i, g, w)
		}
		if g.IsNull() {
			continue
		}
		if gf, ok := g.AsFloat(); ok {
			wf, _ := w.AsFloat()
			if math.IsNaN(gf) != math.IsNaN(wf) || (!math.IsNaN(gf) && gf != wf) {
				t.Fatalf("%s cell %d: %v != %v", ctx, i, g, w)
			}
			continue
		}
		if g.String() != w.String() {
			t.Fatalf("%s cell %d: %v != %v", ctx, i, g, w)
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	rows := walRows()
	w, err := createWAL(path, 2048, rows[:2], false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows[2:] {
		if err := w.appendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	ws, err := readWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ws.base != 2048 || ws.torn || len(ws.rows) != len(rows) {
		t.Fatalf("scan = base %d torn %v rows %d, want 2048 false %d", ws.base, ws.torn, len(ws.rows), len(rows))
	}
	for i := range rows {
		cellsEqual(t, ws.rows[i], rows[i], "row")
	}
}

func TestWALTornTailTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	rows := walRows()
	w, err := createWAL(path, 0, rows, false)
	if err != nil {
		t.Fatal(err)
	}
	w.close()
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want int // surviving records
	}{
		{"truncated mid-record", func(b []byte) []byte { return b[:len(b)-3] }, len(rows) - 1},
		{"flipped payload bit", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0x40
			return c
		}, len(rows) - 1},
		{"garbage appended", func(b []byte) []byte { return append(append([]byte(nil), b...), 0xde, 0xad) }, len(rows)},
		{"header only half written", func(b []byte) []byte { return b[:5] }, 0},
	}
	for _, c := range cases {
		if err := os.WriteFile(path, c.mut(clean), 0o644); err != nil {
			t.Fatal(err)
		}
		ws, err := readWAL(path, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !ws.torn {
			t.Errorf("%s: not marked torn", c.name)
		}
		if len(ws.rows) != c.want {
			t.Errorf("%s: %d records survived, want %d", c.name, len(ws.rows), c.want)
		}
	}
	// A missing file is an empty clean log at the caller's base.
	ws, err := readWAL(filepath.Join(t.TempDir(), "absent.log"), 777)
	if err != nil || ws.torn || ws.base != 777 || len(ws.rows) != 0 {
		t.Errorf("missing file: %+v, %v", ws, err)
	}
}

func TestInspectWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	rows := walRows()
	w, err := createWAL(path, 100, rows, false)
	if err != nil {
		t.Fatal(err)
	}
	w.close()
	var seen []WALRecord
	info, err := InspectWAL(path, func(r WALRecord) bool {
		seen = append(seen, r)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.BaseRow != 100 || info.Records != len(rows) || info.Torn || info.GoodBytes != info.FileBytes {
		t.Fatalf("info = %+v", info)
	}
	if len(seen) != len(rows) || seen[2].Row != 102 || seen[0].Offset != int64(walHeaderSize) {
		t.Fatalf("records = %+v", seen)
	}
	if _, err := InspectWAL(filepath.Join(t.TempDir(), "absent.log"), nil); err == nil {
		t.Error("InspectWAL on a missing file returned nil error")
	}
}
