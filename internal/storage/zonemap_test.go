package storage

// Zone-map tests: blocks that no comparison conjunct can match are
// skipped before any predicate work (asserted through the
// predRowsEvaluated / zoneBlocksPruned instrumentation), pruning is exact
// about values, NULLs, NaN and error semantics, and the maps rebuild when
// the table grows.

import (
	"math"
	"testing"

	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
)

// zoneTable builds a block-aligned table: n rows of monotonically
// increasing id INT, f FLOAT = id/2 (NaN at nanRows), flags INT all NULL.
func zoneTable(t *testing.T, n int, nanRows map[int]bool) *Table {
	t.Helper()
	tab, err := NewTable("z", Schema{
		{Name: "id", Type: value.IntType},
		{Name: "f", Type: value.FloatType},
		{Name: "flags", Type: value.IntType},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		f := value.Float(float64(i) / 2)
		if nanRows[i] {
			f = value.Float(math.NaN())
		}
		if err := tab.Append(value.Int(int64(i)), f, value.Null); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// runZoneQuery runs a query against the table, returning the result, the
// predicate-row and pruned-block deltas, and the query error.
func runZoneQuery(t *testing.T, tab *Table, src string) (*Result, int64, int64, error) {
	t.Helper()
	q, err := sqlparse.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	rowsBefore, prunedBefore := PredRowsEvaluated(), ZoneBlocksPruned()
	res, qerr := tab.Select("z", q, nil)
	return res, PredRowsEvaluated() - rowsBefore, ZoneBlocksPruned() - prunedBefore, qerr
}

func TestZoneMapPrunesDeadBlocks(t *testing.T) {
	const n = 8 * ZoneBlockRows
	tab := zoneTable(t, n, nil)

	// Zero selectivity on block-aligned data: every block pruned, zero
	// predicate rows evaluated.
	res, rows, pruned, err := runZoneQuery(t, tab, `SELECT id FROM z WHERE id > 1000000000`)
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("zero-selectivity: rows=%d err=%v", len(res.Rows), err)
	}
	if rows != 0 || pruned != 8 {
		t.Fatalf("zero-selectivity evaluated %d rows, pruned %d blocks; want 0 and 8", rows, pruned)
	}

	// A one-block range: only that block is evaluated, results exact.
	res, rows, pruned, err = runZoneQuery(t, tab,
		`SELECT id FROM z WHERE id >= 2048 AND id < 3072`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != ZoneBlockRows || res.Rows[0][0].AsInt() != 2048 {
		t.Fatalf("range: %d rows, first %v", len(res.Rows), res.Rows[0])
	}
	if rows != ZoneBlockRows || pruned != 7 {
		t.Fatalf("range evaluated %d rows, pruned %d blocks; want %d and 7", rows, pruned, ZoneBlockRows)
	}

	// Float column prunes the same way (widened bounds).
	res, rows, _, err = runZoneQuery(t, tab, `SELECT COUNT(*) FROM z WHERE f < 10.0`)
	if err != nil || res.Rows[0][0].AsInt() != 20 {
		t.Fatalf("float range: %v err=%v", res.Rows, err)
	}
	if rows != ZoneBlockRows {
		t.Fatalf("float range evaluated %d rows, want one block", rows)
	}

	// All-NULL column: the predicate is NULL everywhere, no block can
	// match, and the whole predicate is error-free, so everything prunes.
	res, rows, pruned, err = runZoneQuery(t, tab, `SELECT id FROM z WHERE flags > 0`)
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("all-NULL: rows=%d err=%v", len(res.Rows), err)
	}
	if rows != 0 || pruned != 8 {
		t.Fatalf("all-NULL evaluated %d rows, pruned %d blocks; want 0 and 8", rows, pruned)
	}

	// TOP interplay: leading blocks pruned, scan stops at the boundary.
	res, rows, _, err = runZoneQuery(t, tab, `SELECT TOP 5 id FROM z WHERE id >= 7000`)
	if err != nil || len(res.Rows) != 5 || res.Rows[0][0].AsInt() != 7000 || res.Rows[4][0].AsInt() != 7004 {
		t.Fatalf("TOP: %v err=%v", res.Rows, err)
	}
	if rows != ZoneBlockRows {
		t.Fatalf("TOP evaluated %d rows, want one block", rows)
	}
}

func TestZoneMapPruningErrorExactness(t *testing.T) {
	const n = 4 * ZoneBlockRows
	tab := zoneTable(t, n, nil)

	// The pruning conjunct comes first and is strictly FALSE on every row:
	// the row-at-a-time AND short-circuits before the erroring conjunct on
	// every row, so pruning (which skips it entirely) is exact — no error.
	res, rows, _, err := runZoneQuery(t, tab,
		`SELECT id FROM z WHERE id > 1000000000 AND 10 / (id - 5) < 0`)
	if err != nil || len(res.Rows) != 0 || rows != 0 {
		t.Fatalf("prefix-safe prune: rows=%d evaluated=%d err=%v", len(res.Rows), rows, err)
	}

	// Flipped order: the erroring conjunct evaluates first row-at-a-time,
	// so pruning by the second conjunct would hide the division by zero at
	// id=5. The analysis must refuse, and the scan must error.
	_, _, pruned, err := runZoneQuery(t, tab,
		`SELECT id FROM z WHERE 10 / (id - 5) < 0 AND id > 1000000000`)
	if err == nil {
		t.Fatal("unsafe-prefix prune suppressed a division by zero")
	}
	if pruned != 0 {
		t.Fatalf("unsafe-prefix query pruned %d blocks", pruned)
	}

	// NULLs block non-Safe pruning: flags > 0 is NULL (not FALSE) on every
	// row, so it never short-circuits the erroring conjunct after it.
	_, _, pruned, err = runZoneQuery(t, tab,
		`SELECT id FROM z WHERE flags > 0 AND 1 / 0 = 1`)
	if err == nil {
		t.Fatal("NULL-conjunct prune suppressed a constant error")
	}
	if pruned != 0 {
		t.Fatalf("NULL-conjunct query pruned %d blocks", pruned)
	}
}

func TestZoneMapNaNBlocksNeverPrune(t *testing.T) {
	const n = 2 * ZoneBlockRows
	// One NaN in block 0; block 1 is clean.
	tab := zoneTable(t, n, map[int]bool{17: true})

	// NaN compares equal to everything in this engine, so the NaN row
	// must survive an equality nothing else matches — block 0 cannot be
	// pruned, block 1 can.
	res, rows, pruned, err := runZoneQuery(t, tab, `SELECT id FROM z WHERE f = 123456789.0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 17 {
		t.Fatalf("NaN row lost under pruning: %v", res.Rows)
	}
	if rows != ZoneBlockRows || pruned != 1 {
		t.Fatalf("NaN query evaluated %d rows, pruned %d; want %d and 1", rows, pruned, ZoneBlockRows)
	}
}

func TestZoneMapRebuildsAfterAppend(t *testing.T) {
	tab := zoneTable(t, ZoneBlockRows, nil)
	if res, _, _, err := runZoneQuery(t, tab, `SELECT id FROM z WHERE id >= 5000`); err != nil || len(res.Rows) != 0 {
		t.Fatalf("before append: %d rows, err=%v", len(res.Rows), err)
	}
	if err := tab.Append(value.Int(5000), value.Float(1), value.Null); err != nil {
		t.Fatal(err)
	}
	res, rows, _, err := runZoneQuery(t, tab, `SELECT id FROM z WHERE id >= 5000`)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 5000 {
		t.Fatalf("after append: %v err=%v", res.Rows, err)
	}
	if rows == 0 {
		t.Fatal("stale zone maps pruned the freshly appended row")
	}
}
