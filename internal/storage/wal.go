package storage

// Write-ahead log. Every acknowledged Append on a disk-backed table is
// framed into wal.log before Append returns; rows only leave the log once
// they are sealed into full column blocks and the footer commit has made
// them durable (store.go). Recovery therefore only ever replays the
// unsealed tail.
//
// File layout (little-endian):
//
//	header  "SKYWAL1\n" + u64 baseRow
//	record  u32 size | u32 crc32(payload) | payload
//	payload u8 kind (1 = row) | u16 cells | cell...
//	cell    u8 tag (0 NULL, 1 INT, 2 FLOAT, 3 STRING, 4 BOOL) + value
//	        INT: u64   FLOAT: u64 bits   STRING: uvarint len + bytes
//	        BOOL: u8
//
// baseRow is the absolute row index of the first record: a flush rewrites
// the log to hold only the unsealed tail, and a crash between the footer
// rename and that rewrite leaves records the footer already covers —
// replay skips the first (durableRows - baseRow) records, so the two
// commit points never need to move atomically together.
//
// Torn-tail rule: the first record whose frame is incomplete, whose CRC
// mismatches, or whose payload does not decode ends the log; everything
// before it is replayed, everything from its offset on is discarded
// (recovery truncates the file there). A torn tail is the expected
// signature of a crash mid-append and never loses an acknowledged row,
// because Append does not return success before the record is written.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"skyquery/internal/value"
)

const (
	walMagic      = "SKYWAL1\n"
	walHeaderSize = len(walMagic) + 8
	walRecRow     = 1

	cellTagNull uint8 = iota
	cellTagInt
	cellTagFloat
	cellTagString
	cellTagBool
)

func appendCell(dst []byte, v value.Value) []byte {
	switch {
	case v.IsNull():
		return append(dst, cellTagNull)
	case v.Type() == value.IntType:
		dst = append(dst, cellTagInt)
		return binary.LittleEndian.AppendUint64(dst, uint64(v.AsInt()))
	case v.Type() == value.FloatType:
		f, _ := v.AsFloat()
		dst = append(dst, cellTagFloat)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
	case v.Type() == value.StringType:
		dst = append(dst, cellTagString)
		s := v.AsString()
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		return append(dst, s...)
	default:
		dst = append(dst, cellTagBool)
		if v.AsBool() {
			return append(dst, 1)
		}
		return append(dst, 0)
	}
}

func decodeCell(data []byte) (value.Value, []byte, error) {
	if len(data) == 0 {
		return value.Null, nil, fmt.Errorf("storage: truncated WAL cell")
	}
	tag, rest := data[0], data[1:]
	switch tag {
	case cellTagNull:
		return value.Null, rest, nil
	case cellTagInt:
		if len(rest) < 8 {
			return value.Null, nil, fmt.Errorf("storage: truncated INT cell")
		}
		return value.Int(int64(binary.LittleEndian.Uint64(rest))), rest[8:], nil
	case cellTagFloat:
		if len(rest) < 8 {
			return value.Null, nil, fmt.Errorf("storage: truncated FLOAT cell")
		}
		return value.Float(math.Float64frombits(binary.LittleEndian.Uint64(rest))), rest[8:], nil
	case cellTagString:
		l, k := binary.Uvarint(rest)
		if k <= 0 || uint64(len(rest)-k) < l {
			return value.Null, nil, fmt.Errorf("storage: truncated STRING cell")
		}
		return value.String(string(rest[k : k+int(l)])), rest[k+int(l):], nil
	case cellTagBool:
		if len(rest) < 1 {
			return value.Null, nil, fmt.Errorf("storage: truncated BOOL cell")
		}
		return value.Bool(rest[0] != 0), rest[1:], nil
	}
	return value.Null, nil, fmt.Errorf("storage: unknown WAL cell tag %d", tag)
}

// appendWALRecord frames one row record onto dst.
func appendWALRecord(dst []byte, vals []value.Value) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // size + crc, patched below
	p := len(dst)
	dst = append(dst, walRecRow)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(vals)))
	for _, v := range vals {
		dst = appendCell(dst, v)
	}
	payload := dst[p:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst
}

func decodeWALRow(payload []byte) ([]value.Value, error) {
	if len(payload) < 3 || payload[0] != walRecRow {
		return nil, fmt.Errorf("storage: bad WAL record kind")
	}
	n := int(binary.LittleEndian.Uint16(payload[1:3]))
	rest := payload[3:]
	vals := make([]value.Value, n)
	var err error
	for i := 0; i < n; i++ {
		if vals[i], rest, err = decodeCell(rest); err != nil {
			return nil, err
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("storage: %d trailing bytes in WAL record", len(rest))
	}
	return vals, nil
}

// walWriter appends framed records to an open log.
type walWriter struct {
	f     *os.File
	path  string
	buf   []byte
	fsync bool
}

func (w *walWriter) appendRow(vals []value.Value) error {
	w.buf = appendWALRecord(w.buf[:0], vals)
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("storage: wal append: %w", err)
	}
	if w.fsync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("storage: wal sync: %w", err)
		}
	}
	return nil
}

func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// createWAL writes a fresh log holding the given rows (header baseRow =
// base) at path, atomically via temp + rename.
func createWAL(path string, base int, rows [][]value.Value, doSync bool) (*walWriter, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	buf := append([]byte(nil), walMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(base))
	for _, r := range rows {
		buf = appendWALRecord(buf, r)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, err
	}
	syncDir(path)
	nf, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		return nil, err
	}
	return &walWriter{f: nf, path: path, fsync: doSync}, nil
}

// walScan is the decoded state of a log file.
type walScan struct {
	base int // absolute row index of the first record
	rows [][]value.Value
	good int64 // offset just past the last valid record
	size int64 // file size
	torn bool  // trailing bytes past good did not form a valid record
}

// readWAL decodes a log file. A missing file reads as an empty, clean log
// with base defaultBase. Torn or trailing-garbage bytes set torn and stop
// the scan; a corrupt header reads as a torn-at-zero log (the file was
// being created when the crash hit).
func readWAL(path string, defaultBase int) (*walScan, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &walScan{base: defaultBase}, nil
	}
	if err != nil {
		return nil, err
	}
	ws := &walScan{base: defaultBase, size: int64(len(data))}
	if len(data) < walHeaderSize || string(data[:len(walMagic)]) != walMagic {
		ws.torn = len(data) > 0
		return ws, nil
	}
	ws.base = int(binary.LittleEndian.Uint64(data[len(walMagic):walHeaderSize]))
	off := int64(walHeaderSize)
	ws.good = off
	for off < ws.size {
		rest := data[off:]
		if len(rest) < 8 {
			ws.torn = true
			break
		}
		size := binary.LittleEndian.Uint32(rest)
		crc := binary.LittleEndian.Uint32(rest[4:])
		if int64(size) > int64(len(rest))-8 {
			ws.torn = true
			break
		}
		payload := rest[8 : 8+size]
		if crc32.ChecksumIEEE(payload) != crc {
			ws.torn = true
			break
		}
		vals, err := decodeWALRow(payload)
		if err != nil {
			ws.torn = true
			break
		}
		ws.rows = append(ws.rows, vals)
		off += 8 + int64(size)
		ws.good = off
	}
	return ws, nil
}

// WALRecord is one decoded log record, as surfaced by InspectWAL.
type WALRecord struct {
	// Index is the record's position in the log; Row is the absolute table
	// row it would replay into (BaseRow + Index).
	Index, Row int
	// Offset is the record's byte offset in the file.
	Offset int64
	// Cells holds the row values.
	Cells []value.Value
}

// WALInfo summarizes a log file for InspectWAL.
type WALInfo struct {
	Path      string
	BaseRow   int   // absolute row index of the first record
	Records   int   // valid records
	GoodBytes int64 // bytes forming the header and valid records
	FileBytes int64 // total file size
	// Torn reports bytes past GoodBytes that do not form a valid record —
	// the signature of a crash mid-append. Recovery truncates them.
	Torn bool
}

// InspectWAL decodes a write-ahead log without replaying it, calling fn
// (when non-nil) for each valid record until it returns false. It is the
// library behind the skyquery-walinspect command.
func InspectWAL(path string, fn func(WALRecord) bool) (*WALInfo, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, err
	}
	ws, err := readWAL(path, 0)
	if err != nil {
		return nil, err
	}
	info := &WALInfo{
		Path: path, BaseRow: ws.base, Records: len(ws.rows),
		GoodBytes: ws.good, FileBytes: ws.size, Torn: ws.torn,
	}
	if fn != nil {
		off := int64(walHeaderSize)
		for i, cells := range ws.rows {
			rec := WALRecord{Index: i, Row: ws.base + i, Offset: off, Cells: cells}
			// Re-measure the frame to advance the offset.
			off += int64(len(appendWALRecord(nil, cells)))
			if !fn(rec) {
				break
			}
		}
	}
	return info, nil
}

// syncDir fsyncs the directory containing path, making a just-renamed
// file durable. Errors are ignored: on filesystems that refuse directory
// fsync the rename is still ordered by the prior file sync.
func syncDir(path string) {
	d, err := os.Open(dirOf(path))
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			return path[:i+1]
		}
	}
	return "."
}
