package storage

// Store is the disk-backed tier under a DB: each table it owns lives in
// its own directory as per-column block files, an HTM ID file, a footer
// (the atomic commit point) and a write-ahead log.
//
//	<dir>/<table>/col_<i>.blk   sealed ZoneBlockRows-row blocks of column i
//	<dir>/<table>/htm.bin       u64 HTM leaf ID per sealed row
//	<dir>/<table>/footer        schema + durable count + block metadata
//	<dir>/<table>/wal.log       the unsealed tail (every acked append)
//
// Durability protocol (the recovery invariants):
//
//  1. Append frames the row into the WAL before acknowledging; rows are
//     in memory and in the log, never only in memory.
//  2. Only full ZoneBlockRows-row blocks are sealed into block files, so
//     durableRows is always block-aligned and the cold tier is always
//     whole blocks.
//  3. A flush orders writes as: block bytes + HTM IDs (fsync) -> footer
//     temp (fsync) -> footer rename (dir fsync) -> WAL rewritten to the
//     remaining tail. A crash at any point leaves either the old footer
//     (orphan block bytes are overwritten next flush) or the new footer
//     with a stale WAL (replay skips records below durableRows via the
//     log's baseRow header).
//  4. Recovery = read footer, load the hot suffix of sealed blocks,
//     replay the WAL tail onto memory, truncate a torn tail. Nothing
//     acknowledged is ever lost; a torn record was never acknowledged.
//
// Hot/cold split: the most recent StoreOptions.HotBlocks sealed blocks
// (plus the unsealed tail) stay resident in Table memory; older blocks
// are evicted after a flush and hydrate on demand — straight into
// eval.Vector views via the ColumnView/GatherColumn seam — through a
// small FIFO cache of decoded blocks.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"skyquery/internal/htm"
	"skyquery/internal/stats"
	"skyquery/internal/value"
)

// coldBlocksHydrated counts cold block reads (decode from a block file
// into a cached column slab). Test instrumentation, like CandRowsGathered.
var coldBlocksHydrated atomic.Int64

// ColdBlocksHydrated returns the cumulative number of cold column blocks
// hydrated from disk (test instrumentation — callers assert deltas).
func ColdBlocksHydrated() int64 { return coldBlocksHydrated.Load() }

// StoreOptions tunes a Store. The zero value gets sensible defaults.
type StoreOptions struct {
	// HotBlocks is the number of most-recent sealed blocks kept resident
	// in Table memory per table (default 16, i.e. 16384 rows). The
	// unsealed tail is always resident on top of this.
	HotBlocks int
	// CacheBlocks bounds the per-table cache of hydrated cold column
	// blocks (default 64 column-blocks).
	CacheBlocks int
	// FlushBlocks is how many newly filled blocks accumulate before an
	// append triggers a flush (default 1: seal each block as it fills).
	FlushBlocks int
	// Fsync syncs the WAL on every append. Off, durability of the tail is
	// delegated to the OS page cache (sealed blocks always fsync); tests
	// that SIGKILL the process keep their acknowledged appends either way
	// because the page cache survives process death.
	Fsync bool
}

func (o StoreOptions) withDefaults() StoreOptions {
	if o.HotBlocks <= 0 {
		o.HotBlocks = 16
	}
	if o.CacheBlocks <= 0 {
		o.CacheBlocks = 64
	}
	if o.FlushBlocks <= 0 {
		o.FlushBlocks = 1
	}
	return o
}

// RecoveryInfo reports what opening one table recovered.
type RecoveryInfo struct {
	Table        string
	DurableRows  int   // rows recovered from sealed blocks
	ReplayedRows int   // rows replayed from the WAL tail
	Torn         bool  // the WAL ended in a torn record (crash mid-append)
	TornBytes    int64 // bytes truncated from the torn tail
}

// Store is a directory of disk-backed tables behind a DB.
type Store struct {
	dir  string
	opts StoreOptions
	db   *DB

	mu     sync.Mutex
	tables map[string]*tableStore
	recov  []RecoveryInfo
}

// tableStore is the persistence state of one disk-backed Table. All
// fields except the hydration cache are guarded by the table's write
// lock (mutations happen inside Append/Flush which hold it; readers hold
// the read lock).
type tableStore struct {
	table *Table
	dir   string
	opts  StoreOptions

	colFiles []*os.File
	htmFile  *os.File
	wal      *walWriter

	durable   int           // rows sealed into block files (block-aligned)
	blocks    [][]blockMeta // [column][block]
	colSize   []int64       // end of committed data per column file
	htmRanges []htmRange
	colStats  []*stats.Col // per column, covering exactly the durable rows

	cacheMu sync.Mutex
	cache   blockLRU // (column<<32|block) -> decoded block, LRU order
}

// OpenStore opens (creating if needed) a store directory, recovering
// every table found in it: sealed blocks are trusted via the footer, the
// WAL tail is replayed, torn tails are truncated. The recovered tables
// are registered in the store's DB.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, db: NewDB(), tables: map[string]*tableStore{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		fpath := filepath.Join(dir, e.Name(), footerName)
		if _, err := os.Stat(fpath); err != nil {
			continue // not a table directory
		}
		ts, info, err := openTableStore(filepath.Join(dir, e.Name()), opts)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("storage: open table %q: %w", e.Name(), err)
		}
		if err := s.db.addTable(ts.table); err != nil {
			s.Close()
			return nil, err
		}
		s.tables[ts.table.name] = ts
		s.recov = append(s.recov, info)
	}
	return s, nil
}

// DB returns the database holding the store's tables (plus any plain
// tables callers create in it).
func (s *Store) DB() *DB { return s.db }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Recovery reports what opening the store recovered, one entry per table.
func (s *Store) Recovery() []RecoveryInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]RecoveryInfo(nil), s.recov...)
}

// validTableName restricts table names to safe directory components.
func validTableName(name string) error {
	if name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, "/\\") || strings.HasPrefix(name, "#") {
		return fmt.Errorf("storage: invalid persistent table name %q", name)
	}
	return nil
}

// Create creates a new disk-backed table in the store (and its DB). When
// spatial is non-nil the HTM index is enabled up front so sealed blocks
// carry their ID ranges from the first flush on.
func (s *Store) Create(name string, schema Schema, spatial *SpatialConfig) (*Table, error) {
	if err := validTableName(name); err != nil {
		return nil, err
	}
	t, err := NewTable(name, schema)
	if err != nil {
		return nil, err
	}
	if spatial != nil {
		if err := t.EnableSpatial(*spatial); err != nil {
			return nil, err
		}
	}
	dir := filepath.Join(s.dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ts := &tableStore{
		table: t, dir: dir, opts: s.opts,
		blocks:   make([][]blockMeta, len(schema)),
		colSize:  make([]int64, len(schema)),
		colStats: statsForSchema(schema),
	}
	for ci := range schema {
		f, err := os.OpenFile(ts.colPath(ci), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			ts.closeFiles()
			return nil, err
		}
		ts.colFiles = append(ts.colFiles, f)
	}
	if spatial != nil {
		ts.htmRanges = []htmRange{}
		f, err := os.OpenFile(ts.htmPath(), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			ts.closeFiles()
			return nil, err
		}
		ts.htmFile = f
	}
	if err := writeFooterFile(filepath.Join(dir, footerName), ts.footer()); err != nil {
		ts.closeFiles()
		return nil, err
	}
	ts.wal, err = createWAL(filepath.Join(dir, "wal.log"), 0, nil, s.opts.Fsync)
	if err != nil {
		ts.closeFiles()
		return nil, err
	}
	t.persist = ts
	if err := s.db.addTable(t); err != nil {
		ts.closeFiles()
		return nil, err
	}
	s.mu.Lock()
	s.tables[name] = ts
	s.mu.Unlock()
	return t, nil
}

// Flush seals every table's full blocks into its block files and commits
// the footers; the unsealed tail stays in the WAL. Safe to call while
// readers run (it takes each table's write lock).
func (s *Store) Flush() error {
	s.mu.Lock()
	tss := make([]*tableStore, 0, len(s.tables))
	for _, ts := range s.tables {
		tss = append(tss, ts)
	}
	s.mu.Unlock()
	for _, ts := range tss {
		ts.table.mu.Lock()
		err := ts.flushLocked()
		ts.table.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes all files. The store must not be used after.
func (s *Store) Close() error {
	err := s.Flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ts := range s.tables {
		ts.closeFiles()
	}
	return err
}

func (ts *tableStore) colPath(ci int) string {
	return filepath.Join(ts.dir, fmt.Sprintf("col_%d.blk", ci))
}

func (ts *tableStore) htmPath() string { return filepath.Join(ts.dir, "htm.bin") }

func (ts *tableStore) closeFiles() {
	for _, f := range ts.colFiles {
		if f != nil {
			f.Close()
		}
	}
	if ts.htmFile != nil {
		ts.htmFile.Close()
	}
	if ts.wal != nil {
		ts.wal.close()
	}
}

// footer snapshots the current committed state.
func (ts *tableStore) footer() *tableFooter {
	t := ts.table
	f := &tableFooter{
		name: t.name, schema: t.schema, durable: ts.durable,
		blocks: ts.blocks, htmRanges: ts.htmRanges, colStats: ts.colStats,
	}
	if t.spatial != nil {
		cfg := t.spatial.cfg
		f.spatial = &cfg
	}
	return f
}

// openTableStore recovers one table directory.
func openTableStore(dir string, opts StoreOptions) (*tableStore, RecoveryInfo, error) {
	ftr, err := readFooterFile(filepath.Join(dir, footerName))
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	t, err := NewTable(ftr.name, ftr.schema)
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	ts := &tableStore{
		table: t, dir: dir, opts: opts,
		durable: ftr.durable, blocks: ftr.blocks, htmRanges: ftr.htmRanges,
		colSize:  make([]int64, len(ftr.schema)),
		colStats: ftr.colStats,
	}
	if ts.colStats == nil && ftr.durable == 0 {
		// A pre-stats (v1) footer with nothing sealed loses no history:
		// start maintaining statistics from the first flush.
		ts.colStats = statsForSchema(ftr.schema)
	}
	ok := false
	defer func() {
		if !ok {
			ts.closeFiles()
		}
	}()
	for ci := range ftr.schema {
		f, err := os.OpenFile(ts.colPath(ci), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, RecoveryInfo{}, err
		}
		ts.colFiles = append(ts.colFiles, f)
		if bs := ftr.blocks[ci]; len(bs) > 0 {
			last := bs[len(bs)-1]
			ts.colSize[ci] = last.off + int64(last.size)
		}
	}
	if ftr.spatial != nil {
		f, err := os.OpenFile(ts.htmPath(), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, RecoveryInfo{}, err
		}
		ts.htmFile = f
	}

	// Load the hot suffix of sealed blocks into Table memory.
	memBase := ftr.durable - opts.HotBlocks*ZoneBlockRows
	if memBase < 0 {
		memBase = 0
	}
	memBase = memBase / ZoneBlockRows * ZoneBlockRows
	for b := memBase / ZoneBlockRows; b < ftr.durable/ZoneBlockRows; b++ {
		for ci := range t.cols {
			col, err := ts.readBlock(ci, b)
			if err != nil {
				return nil, RecoveryInfo{}, err
			}
			if err := appendColumn(t.cols[ci], col); err != nil {
				return nil, RecoveryInfo{}, err
			}
		}
	}
	t.rows = ftr.durable
	t.memBase = memBase
	t.persist = ts

	// Replay the WAL tail onto memory; truncate anything torn.
	info := RecoveryInfo{Table: ftr.name, DurableRows: ftr.durable}
	walPath := filepath.Join(dir, "wal.log")
	ws, err := readWAL(walPath, ftr.durable)
	if err != nil {
		return nil, info, err
	}
	if ws.base > ftr.durable {
		return nil, info, fmt.Errorf("storage: WAL base row %d ahead of durable %d", ws.base, ftr.durable)
	}
	skip := ftr.durable - ws.base
	replay := ws.rows
	if skip >= len(replay) {
		replay = nil
	} else {
		replay = replay[skip:]
	}
	for _, vals := range replay {
		if len(vals) != len(t.schema) || t.schema.validateRow(vals) != nil {
			// A CRC-valid record with the wrong shape can only come from
			// torn concurrent writes or tampering; treat like a torn tail.
			ws.torn = true
			break
		}
		for ci, v := range vals {
			t.cols[ci].append(v)
		}
		t.rows++
		info.ReplayedRows++
	}
	info.Torn = ws.torn
	info.TornBytes = ws.size - ws.good

	// Rewrite the log to exactly the recovered tail: drops sealed-row
	// records, torn bytes and any rows past a malformed record in one go.
	tail := make([][]value.Value, 0, info.ReplayedRows)
	for r := ftr.durable; r < t.rows; r++ {
		tail = append(tail, t.rowLocked(r))
	}
	ts.wal, err = createWAL(walPath, ftr.durable, tail, opts.Fsync)
	if err != nil {
		return nil, info, err
	}

	// Rebuild the spatial index: sealed rows from htm.bin, the replayed
	// tail recomputed from its in-memory positions.
	if ftr.spatial != nil {
		ids, err := ts.readHTMIDs(ftr.durable)
		if err != nil {
			return nil, info, err
		}
		if err := t.enableSpatialSeeded(*ftr.spatial, ids); err != nil {
			return nil, info, err
		}
	}
	ok = true
	return ts, info, nil
}

// readBlock reads and decodes sealed block b of column ci (no cache).
func (ts *tableStore) readBlock(ci, b int) (column, error) {
	m := ts.blocks[ci][b]
	buf := make([]byte, m.size)
	if _, err := ts.colFiles[ci].ReadAt(buf, m.off); err != nil {
		return nil, fmt.Errorf("storage: read block %d of column %d: %w", b, ci, err)
	}
	if crc32.ChecksumIEEE(buf) != m.crc {
		return nil, fmt.Errorf("storage: block %d of column %d: checksum mismatch", b, ci)
	}
	col, n, err := decodeBlock(buf)
	if err != nil {
		return nil, err
	}
	if n != ZoneBlockRows {
		return nil, fmt.Errorf("storage: block %d of column %d: %d rows, want %d", b, ci, n, ZoneBlockRows)
	}
	return col, nil
}

// readHTMIDs reads the first n sealed per-row HTM IDs. Missing entries
// (an impossible state unless the file was tampered with, since IDs sync
// before the footer commits) are recomputed from row positions.
func (ts *tableStore) readHTMIDs(n int) ([]htm.ID, error) {
	buf := make([]byte, 8*n)
	ids := make([]htm.ID, 0, n)
	got, err := ts.htmFile.ReadAt(buf, 0)
	if err != nil && got < len(buf) {
		// Partial file: keep what decoded, recompute the rest below.
		buf = buf[:got/8*8]
	}
	for i := 0; i+8 <= len(buf); i += 8 {
		ids = append(ids, htm.ID(binary.LittleEndian.Uint64(buf[i:])))
	}
	return ids, nil
}

// flushLocked seals full blocks, commits the footer, rewrites the WAL to
// the remaining tail and evicts sealed blocks beyond the hot budget. The
// caller holds the table's write lock. On error nothing is committed:
// the footer still describes the previous state and orphan block bytes
// are overwritten by the next attempt.
func (ts *tableStore) flushLocked() error {
	t := ts.table
	target := t.rows / ZoneBlockRows * ZoneBlockRows
	if target <= ts.durable {
		return nil
	}
	firstB := ts.durable / ZoneBlockRows
	lastB := target / ZoneBlockRows
	newMetas := make([][]blockMeta, len(t.cols))
	ends := append([]int64(nil), ts.colSize...)
	var buf []byte
	for ci, col := range t.cols {
		for b := firstB; b < lastB; b++ {
			lo := b*ZoneBlockRows - t.memBase
			hi := lo + ZoneBlockRows
			buf = appendBlock(buf[:0], col, lo, hi)
			m := blockMeta{off: ends[ci], size: uint32(len(buf)), crc: crc32.ChecksumIEEE(buf)}
			m.z, m.numeric = blockZone(col, lo, hi)
			m.sz, m.isStr = blockStrZone(col, lo, hi)
			if _, err := ts.colFiles[ci].WriteAt(buf, m.off); err != nil {
				return fmt.Errorf("storage: flush column %d: %w", ci, err)
			}
			ends[ci] += int64(len(buf))
			newMetas[ci] = append(newMetas[ci], m)
		}
		if err := ts.colFiles[ci].Sync(); err != nil {
			return err
		}
	}
	var newRanges []htmRange
	if t.spatial != nil {
		n := target - ts.durable
		idBuf := make([]byte, 0, 8*n)
		for b := firstB; b < lastB; b++ {
			r := htmRange{}
			for i := 0; i < ZoneBlockRows; i++ {
				row := b*ZoneBlockRows + i
				id := htm.Lookup(t.positionLocked(row), t.spatial.cfg.Level)
				if i == 0 || id < r.lo {
					r.lo = id
				}
				if i == 0 || id > r.hi {
					r.hi = id
				}
				idBuf = binary.LittleEndian.AppendUint64(idBuf, uint64(id))
			}
			newRanges = append(newRanges, r)
		}
		if _, err := ts.htmFile.WriteAt(idBuf, int64(ts.durable)*8); err != nil {
			return fmt.Errorf("storage: flush htm ids: %w", err)
		}
		if err := ts.htmFile.Sync(); err != nil {
			return err
		}
	}

	// Fold the sealed rows into the maintained statistics, working on
	// clones so an error below leaves the committed state untouched. A
	// store recovered from a pre-stats (v1) footer with durable rows has
	// nil colStats and stays that way: the sealed history is unknown, and
	// partial statistics would claim coverage they don't have. Readers
	// fall back to count-star planning.
	var newStats []*stats.Col
	if ts.colStats != nil {
		newStats = make([]*stats.Col, len(t.cols))
		for ci, col := range t.cols {
			cs := ts.colStats[ci].Clone()
			foldColStats(cs, col, ts.durable, target, t.memBase)
			newStats[ci] = cs
		}
	}

	// Commit point: the footer rename.
	commit := &tableFooter{
		name: t.name, schema: t.schema, durable: target,
		blocks:    make([][]blockMeta, len(t.cols)),
		htmRanges: ts.htmRanges,
		colStats:  newStats,
	}
	for ci := range t.cols {
		commit.blocks[ci] = append(append([]blockMeta(nil), ts.blocks[ci]...), newMetas[ci]...)
	}
	if t.spatial != nil {
		cfg := t.spatial.cfg
		commit.spatial = &cfg
		commit.htmRanges = append(append([]htmRange(nil), ts.htmRanges...), newRanges...)
	}
	if err := writeFooterFile(filepath.Join(ts.dir, footerName), commit); err != nil {
		return err
	}
	ts.blocks = commit.blocks
	ts.htmRanges = commit.htmRanges
	ts.colSize = ends
	ts.durable = target
	ts.colStats = newStats

	// Shed the sealed rows from the log; a crash before this keeps them
	// as already-durable records that replay skips via baseRow.
	tail := make([][]value.Value, 0, t.rows-target)
	for r := target; r < t.rows; r++ {
		tail = append(tail, t.rowLocked(r))
	}
	oldWAL := ts.wal
	nw, err := createWAL(oldWAL.path, target, tail, ts.opts.Fsync)
	if err != nil {
		return err
	}
	oldWAL.close()
	ts.wal = nw

	// Evict sealed blocks beyond the hot budget.
	newBase := t.rows - ts.opts.HotBlocks*ZoneBlockRows
	if newBase > ts.durable {
		newBase = ts.durable
	}
	newBase = newBase / ZoneBlockRows * ZoneBlockRows
	if newBase > t.memBase {
		k := newBase - t.memBase
		for ci := range t.cols {
			dropColumnPrefix(t.cols[ci], k)
		}
		t.memBase = newBase
	}
	return nil
}

// foldColStats folds rows [lo, hi) (absolute indices, resident in
// memory at index-memBase) of one column into maintained statistics.
// BOOL columns track row/null counters only.
func foldColStats(cs *stats.Col, col column, lo, hi, memBase int) {
	switch c := col.(type) {
	case *intColumn:
		for r := lo; r < hi; r++ {
			if c.nulls[r-memBase] {
				cs.AddNull()
			} else {
				cs.AddNumeric(int64(r), float64(c.vals[r-memBase]))
			}
		}
	case *floatColumn:
		for r := lo; r < hi; r++ {
			if c.nulls[r-memBase] {
				cs.AddNull()
			} else {
				cs.AddNumeric(int64(r), c.vals[r-memBase])
			}
		}
	case *stringColumn:
		for r := lo; r < hi; r++ {
			if c.nulls[r-memBase] {
				cs.AddNull()
			} else {
				cs.AddString(int64(r), c.vals[r-memBase])
			}
		}
	case *boolColumn:
		for r := lo; r < hi; r++ {
			if c.nulls[r-memBase] {
				cs.AddNull()
			} else {
				cs.Rows++
			}
		}
	}
}

// statsKind maps a column type to its statistics kind.
func statsKind(t value.Type) stats.Kind {
	switch t {
	case value.IntType, value.FloatType:
		return stats.KindNumeric
	case value.StringType:
		return stats.KindString
	}
	return stats.KindNone
}

// statsForSchema returns fresh, empty statistics for every column.
func statsForSchema(schema Schema) []*stats.Col {
	out := make([]*stats.Col, len(schema))
	for i, def := range schema {
		out[i] = stats.NewCol(statsKind(def.Type))
	}
	return out
}

// dropColumnPrefix removes the first k rows of a column, copying the
// remainder into fresh slices so evicted slabs are collectable.
func dropColumnPrefix(col column, k int) {
	switch c := col.(type) {
	case *intColumn:
		c.vals = append([]int64(nil), c.vals[k:]...)
		c.nulls = append([]bool(nil), c.nulls[k:]...)
	case *floatColumn:
		c.vals = append([]float64(nil), c.vals[k:]...)
		c.nulls = append([]bool(nil), c.nulls[k:]...)
	case *stringColumn:
		c.vals = append([]string(nil), c.vals[k:]...)
		c.nulls = append([]bool(nil), c.nulls[k:]...)
	case *boolColumn:
		c.vals = append([]bool(nil), c.vals[k:]...)
		c.nulls = append([]bool(nil), c.nulls[k:]...)
	}
}

// block returns sealed block b of column ci, hydrating through the LRU
// cache. Callers hold the table's read lock (the block index only grows,
// under the write lock).
func (ts *tableStore) block(ci, b int) (column, error) {
	key := uint64(ci)<<32 | uint64(b)
	ts.cacheMu.Lock()
	if col, hit := ts.cache.get(key); hit {
		ts.cacheMu.Unlock()
		blockCacheHits.Add(1)
		return col, nil
	}
	ts.cacheMu.Unlock()
	blockCacheMisses.Add(1)
	col, err := ts.readBlock(ci, b)
	if err != nil {
		return nil, err
	}
	coldBlocksHydrated.Add(1)
	ts.cacheMu.Lock()
	if prev, hit := ts.cache.get(key); hit {
		col = prev // another reader won the race
	} else {
		ts.cache.add(key, col, ts.opts.CacheBlocks)
	}
	ts.cacheMu.Unlock()
	return col, nil
}

// mustBlock is block for the typed read paths, which have no error
// channel: a cold read that fails after open-time verification means the
// store's files were corrupted or truncated underneath a live process,
// and continuing would silently return wrong query results.
func (ts *tableStore) mustBlock(ci, b int) column {
	col, err := ts.block(ci, b)
	if err != nil {
		panic(fmt.Sprintf("storage: cold read of table %q failed: %v", ts.table.name, err))
	}
	return col
}

// coldCell returns one boxed cell from the cold tier.
func (ts *tableStore) coldCell(ci, row int) value.Value {
	return ts.mustBlock(ci, row/ZoneBlockRows).get(row % ZoneBlockRows)
}

// validateRow mirrors the per-column accept rules so a row is known good
// before it is framed into the WAL.
func (s Schema) validateRow(vals []value.Value) error {
	for i, v := range vals {
		if v.IsNull() {
			continue
		}
		switch s[i].Type {
		case value.IntType:
			if v.Type() != value.IntType {
				return fmt.Errorf("storage: column %q: cannot store %v in INT column", s[i].Name, v.Type())
			}
		case value.FloatType:
			if _, ok := v.AsFloat(); !ok {
				return fmt.Errorf("storage: column %q: cannot store %v in FLOAT column", s[i].Name, v.Type())
			}
		case value.StringType:
			if v.Type() != value.StringType {
				return fmt.Errorf("storage: column %q: cannot store %v in STRING column", s[i].Name, v.Type())
			}
		case value.BoolType:
			if v.Type() != value.BoolType {
				return fmt.Errorf("storage: column %q: cannot store %v in BOOL column", s[i].Name, v.Type())
			}
		}
	}
	return nil
}
