package storage

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"skyquery/internal/eval"
	"skyquery/internal/sphere"
	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
)

func objSchema() Schema {
	return Schema{
		{Name: "object_id", Type: value.IntType},
		{Name: "ra", Type: value.FloatType},
		{Name: "dec", Type: value.FloatType},
		{Name: "flux", Type: value.FloatType},
		{Name: "type", Type: value.StringType},
		{Name: "flagged", Type: value.BoolType},
	}
}

func fillObjects(t *testing.T, tab *Table, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		typ := "STAR"
		if i%3 == 0 {
			typ = "GALAXY"
		}
		err := tab.Append(
			value.Int(int64(i)),
			value.Float(rng.Float64()*360),
			value.Float(rng.Float64()*180-90),
			value.Float(rng.Float64()*100),
			value.String(typ),
			value.Bool(i%7 == 0),
		)
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestTableBasics(t *testing.T) {
	tab, err := NewTable("obj", objSchema())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name() != "obj" {
		t.Errorf("Name = %q", tab.Name())
	}
	fillObjects(t, tab, 10, 1)
	if tab.RowCount() != 10 {
		t.Errorf("RowCount = %d", tab.RowCount())
	}
	row := tab.Row(3)
	if row[0].AsInt() != 3 {
		t.Errorf("Row(3)[0] = %v", row[0])
	}
	if got := tab.Value(3, 4); got.Type() != value.StringType {
		t.Errorf("Value(3,4) = %v", got)
	}
	// Schema copy must be independent.
	s := tab.Schema()
	s[0].Name = "mutated"
	if tab.Schema()[0].Name != "object_id" {
		t.Error("Schema() must return a copy")
	}
}

func TestTableErrors(t *testing.T) {
	if _, err := NewTable("empty", nil); err == nil {
		t.Error("empty schema should fail")
	}
	if _, err := NewTable("dup", Schema{{"a", value.IntType}, {"a", value.IntType}}); err == nil {
		t.Error("duplicate column should fail")
	}
	if _, err := NewTable("badtype", Schema{{"a", value.NullType}}); err == nil {
		t.Error("NULL column type should fail")
	}
	tab, _ := NewTable("obj", objSchema())
	if err := tab.Append(value.Int(1)); err == nil {
		t.Error("arity mismatch should fail")
	}
	err := tab.Append(
		value.Int(1), value.Float(1), value.Float(1),
		value.String("wrong type"), value.String("x"), value.Bool(false),
	)
	if err == nil {
		t.Error("type mismatch should fail")
	}
	if tab.RowCount() != 0 {
		t.Errorf("failed append must not leave rows; RowCount = %d", tab.RowCount())
	}
	// Columns must stay aligned after the rollback.
	if err := tab.Append(value.Int(1), value.Float(2), value.Float(3), value.Float(4), value.String("STAR"), value.Bool(true)); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	if got := tab.Value(0, 3); got.Type() != value.FloatType {
		t.Errorf("column misaligned after rollback: %v", got)
	}
}

func TestNullStorage(t *testing.T) {
	tab, _ := NewTable("n", Schema{
		{"i", value.IntType}, {"f", value.FloatType},
		{"s", value.StringType}, {"b", value.BoolType},
	})
	if err := tab.Append(value.Null, value.Null, value.Null, value.Null); err != nil {
		t.Fatal(err)
	}
	if err := tab.Append(value.Int(1), value.Float(2), value.String("x"), value.Bool(true)); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		if !tab.Value(0, c).IsNull() {
			t.Errorf("col %d row 0 should be NULL", c)
		}
		if tab.Value(1, c).IsNull() {
			t.Errorf("col %d row 1 should not be NULL", c)
		}
	}
}

func TestIntFloatCoercionOnAppend(t *testing.T) {
	tab, _ := NewTable("c", Schema{{"f", value.FloatType}})
	if err := tab.Append(value.Int(3)); err != nil {
		t.Fatalf("int into float column should coerce: %v", err)
	}
	if f, _ := tab.Value(0, 0).AsFloat(); f != 3 {
		t.Errorf("coerced value = %v", tab.Value(0, 0))
	}
}

func TestDBCreateDropTemp(t *testing.T) {
	db := NewDB()
	if _, err := db.Create("a", objSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Create("a", objSchema()); err == nil {
		t.Error("duplicate table should fail")
	}
	if _, ok := db.Table("a"); !ok {
		t.Error("Table(a) not found")
	}
	tmp, err := db.CreateTemp("xm", Schema{{"x", value.IntType}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(tmp.Name(), "#xm_") {
		t.Errorf("temp name = %q", tmp.Name())
	}
	if db.TempCount() != 1 {
		t.Errorf("TempCount = %d", db.TempCount())
	}
	names := db.Names()
	if len(names) != 1 || names[0] != "a" {
		t.Errorf("Names = %v (temps must be hidden)", names)
	}
	if err := db.Drop(tmp.Name()); err != nil {
		t.Fatal(err)
	}
	if db.TempCount() != 0 {
		t.Error("temp not dropped")
	}
	if err := db.Drop("nosuch"); err == nil {
		t.Error("dropping a missing table should fail")
	}
}

func TestSpatialIndexMatchesFullScan(t *testing.T) {
	tab, _ := NewTable("obj", objSchema())
	fillObjects(t, tab, 5000, 42)
	if err := tab.EnableSpatial(SpatialConfig{RACol: "ra", DecCol: "dec"}); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		ra, dec, radius float64
	}{
		{180, 0, 5},
		{10, 80, 3},
		{300, -45, 10},
		{0, 0, 0.5},
		{359.9, 0, 1}, // RA wraparound
	} {
		c := sphere.NewCap(tc.ra, tc.dec, tc.radius)
		want := map[int]bool{}
		tab.Scan(func(row int) bool {
			ra, _ := tab.Value(row, 1).AsFloat()
			de, _ := tab.Value(row, 2).AsFloat()
			if c.Contains(sphere.FromRaDec(ra, de)) {
				want[row] = true
			}
			return true
		})
		got := map[int]bool{}
		if err := tab.SearchCap(c, func(row int) bool { got[row] = true; return true }); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("cap %v: index found %d rows, scan found %d", c, len(got), len(want))
		}
		for r := range want {
			if !got[r] {
				t.Fatalf("cap %v: row %d missed by index", c, r)
			}
		}
	}
}

func TestSpatialIndexDirtyRebuild(t *testing.T) {
	tab, _ := NewTable("obj", objSchema())
	fillObjects(t, tab, 100, 7)
	if err := tab.EnableSpatial(SpatialConfig{RACol: "ra", DecCol: "dec"}); err != nil {
		t.Fatal(err)
	}
	// Appending after the index is built must still be reflected in searches.
	if err := tab.Append(value.Int(9999), value.Float(123.4), value.Float(5.6),
		value.Float(1), value.String("STAR"), value.Bool(false)); err != nil {
		t.Fatal(err)
	}
	found := false
	c := sphere.NewCap(123.4, 5.6, 0.01)
	if err := tab.SearchCap(c, func(row int) bool {
		if tab.Value(row, 0).AsInt() == 9999 {
			found = true
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Error("appended row not found after index rebuild")
	}
}

func TestSpatialErrors(t *testing.T) {
	tab, _ := NewTable("obj", objSchema())
	if err := tab.EnableSpatial(SpatialConfig{RACol: "nope", DecCol: "dec"}); err == nil {
		t.Error("bad ra column should fail")
	}
	if err := tab.EnableSpatial(SpatialConfig{RACol: "object_id", DecCol: "dec"}); err == nil {
		t.Error("non-float ra column should fail")
	}
	if err := tab.EnableSpatial(SpatialConfig{RACol: "ra", DecCol: "dec", Level: 99}); err == nil {
		t.Error("bad level should fail")
	}
	if err := tab.SearchCap(sphere.NewCap(0, 0, 1), func(int) bool { return true }); err == nil {
		t.Error("search without index should fail")
	}
	if _, err := tab.Position(0); err == nil {
		t.Error("Position without index should fail")
	}
}

func TestSearchRegionPolygon(t *testing.T) {
	tab, _ := NewTable("obj", objSchema())
	fillObjects(t, tab, 3000, 11)
	if err := tab.EnableSpatial(SpatialConfig{RACol: "ra", DecCol: "dec"}); err != nil {
		t.Fatal(err)
	}
	poly, err := sphere.NewPolygon([2]float64{10, 10}, [2]float64{30, 10}, [2]float64{30, 30}, [2]float64{10, 30})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	tab.Scan(func(row int) bool {
		ra, _ := tab.Value(row, 1).AsFloat()
		de, _ := tab.Value(row, 2).AsFloat()
		if poly.Contains(sphere.FromRaDec(ra, de)) {
			want++
		}
		return true
	})
	got := 0
	if err := tab.SearchRegion(poly, func(int) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("polygon search found %d, scan found %d", got, want)
	}
	if want == 0 {
		t.Error("degenerate test: polygon matched nothing")
	}
}

func TestSearchCapEarlyStop(t *testing.T) {
	tab, _ := NewTable("obj", objSchema())
	fillObjects(t, tab, 1000, 13)
	if err := tab.EnableSpatial(SpatialConfig{RACol: "ra", DecCol: "dec"}); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := tab.SearchCap(sphere.NewCap(0, 0, 180), func(int) bool {
		n++
		return n < 5
	}); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("early stop visited %d rows", n)
	}
}

func execQuery(t *testing.T, db *DB, src string) *Result {
	t.Helper()
	q, err := sqlparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func newTestDB(t *testing.T, n int) *DB {
	t.Helper()
	db := NewDB()
	tab, err := db.Create("PhotoObject", objSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillObjects(t, tab, n, 99)
	if err := tab.EnableSpatial(SpatialConfig{RACol: "ra", DecCol: "dec"}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestExecuteCount(t *testing.T) {
	db := newTestDB(t, 300)
	res := execQuery(t, db, `SELECT count(*) FROM PhotoObject`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 300 {
		t.Errorf("count = %v", res.Rows)
	}
	res = execQuery(t, db, `SELECT count(*) FROM PhotoObject o WHERE o.type = 'GALAXY'`)
	if res.Rows[0][0].AsInt() != 100 {
		t.Errorf("galaxy count = %v", res.Rows[0][0])
	}
}

func TestExecuteCountWithArea(t *testing.T) {
	db := newTestDB(t, 2000)
	tab, _ := db.Table("PhotoObject")
	c := sphere.NewCap(180, 0, sphere.Arcsec(3600*20)) // 20 degrees
	want := int64(0)
	tab.Scan(func(row int) bool {
		ra, _ := tab.Value(row, 1).AsFloat()
		de, _ := tab.Value(row, 2).AsFloat()
		if c.Contains(sphere.FromRaDec(ra, de)) {
			want++
		}
		return true
	})
	res := execQuery(t, db, fmt.Sprintf(`SELECT count(*) FROM PhotoObject WHERE AREA(180, 0, %v)`, 3600.0*20))
	if got := res.Rows[0][0].AsInt(); got != want {
		t.Errorf("area count = %d, want %d", got, want)
	}
	if want == 0 {
		t.Error("degenerate: area matched nothing")
	}
}

func TestExecuteProjection(t *testing.T) {
	db := newTestDB(t, 50)
	res := execQuery(t, db, `SELECT o.object_id, o.flux * 2 AS dflux FROM PhotoObject o WHERE o.object_id < 3`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Columns[0].Name != "object_id" || res.Columns[1].Name != "dflux" {
		t.Errorf("columns = %v", res.Columns)
	}
	tab, _ := db.Table("PhotoObject")
	for _, row := range res.Rows {
		id := row[0].AsInt()
		f, _ := tab.Value(int(id), 3).AsFloat()
		got, _ := row[1].AsFloat()
		if math.Abs(got-2*f) > 1e-12 {
			t.Errorf("dflux = %v, want %v", got, 2*f)
		}
	}
}

func TestExecuteStar(t *testing.T) {
	db := newTestDB(t, 5)
	res := execQuery(t, db, `SELECT * FROM PhotoObject`)
	if len(res.Columns) != len(objSchema()) {
		t.Errorf("star columns = %d", len(res.Columns))
	}
	if len(res.Rows) != 5 {
		t.Errorf("star rows = %d", len(res.Rows))
	}
}

func TestExecuteTop(t *testing.T) {
	db := newTestDB(t, 100)
	res := execQuery(t, db, `SELECT TOP 7 o.object_id FROM PhotoObject o`)
	if len(res.Rows) != 7 {
		t.Errorf("TOP 7 returned %d rows", len(res.Rows))
	}
}

func TestExecuteErrors(t *testing.T) {
	db := newTestDB(t, 10)
	cases := []struct {
		src, wantSub string
	}{
		{`SELECT a.x FROM A:T1 a, B:T2 b`, "exactly one table"},
		{`SELECT o.x FROM Nope o`, "does not exist"},
		{`SELECT o.nosuch FROM PhotoObject o`, "unknown column"},
		{`SELECT z.flux FROM PhotoObject o WHERE z.flux > 1`, "unknown table"},
		{`SELECT o.object_id FROM PhotoObject o WHERE XMATCH(o) < 2`, "federated"},
		{`SELECT o.flux FROM PhotoObject o WHERE o.type > 3`, "cannot compare"},
	}
	for _, c := range cases {
		q, err := sqlparse.Parse(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		_, err = db.Execute(q)
		if err == nil {
			t.Errorf("Execute(%q) succeeded, want error %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Execute(%q) = %v, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestExecuteUnknownTableQualifier(t *testing.T) {
	db := newTestDB(t, 10)
	// The archive qualifier is ignored; alias and table name both resolve.
	res := execQuery(t, db, `SELECT PhotoObject.object_id FROM SDSS:PhotoObject`)
	if len(res.Rows) != 10 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestInsertResult(t *testing.T) {
	db := newTestDB(t, 20)
	res := execQuery(t, db, `SELECT o.object_id, o.flux FROM PhotoObject o WHERE o.flux > 50`)
	tmp, err := db.CreateTemp("partial", Schema{
		{Name: "object_id", Type: value.IntType},
		{Name: "flux", Type: value.FloatType},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tmp.InsertResult(res); err != nil {
		t.Fatal(err)
	}
	if tmp.RowCount() != len(res.Rows) {
		t.Errorf("temp rows = %d, want %d", tmp.RowCount(), len(res.Rows))
	}
	// Arity mismatch must fail.
	bad, _ := db.CreateTemp("bad", Schema{{Name: "only", Type: value.IntType}})
	if err := bad.InsertResult(res); err == nil {
		t.Error("arity mismatch insert should fail")
	}
}

func TestSelectWithRegionParameterAndNoIndexFallback(t *testing.T) {
	// A table without EnableSpatial but with ra/dec columns still answers
	// AREA queries by scanning.
	db := NewDB()
	tab, _ := db.Create("PhotoObject", objSchema())
	fillObjects(t, tab, 500, 123)
	// A 45-degree cap holds a large fraction of the sphere, so 500 random
	// objects are guaranteed to hit it in practice.
	res := execQuery(t, db, `SELECT count(*) FROM PhotoObject WHERE AREA(180, 0, 162000)`)
	if res.Rows[0][0].AsInt() == 0 {
		t.Error("fallback scan found nothing")
	}
	// And a table with neither index nor ra/dec errors out.
	db2 := NewDB()
	db2.Create("T", Schema{{"x", value.IntType}})
	q, _ := sqlparse.Parse(`SELECT count(*) FROM T WHERE AREA(0, 0, 10)`)
	if _, err := db2.Execute(q); err == nil {
		t.Error("AREA without position info should fail")
	}
}

// TestSelectCompiledMatchesInterpreter cross-validates the executor's
// compiled path against the reference interpreter: every query is also
// evaluated row by row through Table.Env + eval.Eval, and the result sets
// must be bit-identical (values and types).
func TestSelectCompiledMatchesInterpreter(t *testing.T) {
	tab, err := NewTable("obj", objSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillObjects(t, tab, 200, 7)
	// Sprinkle NULLs so three-valued logic is exercised.
	if err := tab.Append(value.Int(1000), value.Float(10), value.Float(10), value.Null, value.Null, value.Null); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`SELECT object_id, flux FROM obj O WHERE O.type = 'GALAXY' AND flux > 25`,
		`SELECT O.object_id, flux * 2 AS f2, UPPER(type) FROM obj O WHERE flux BETWEEN 10 AND 90`,
		`SELECT COUNT(*) FROM obj WHERE type LIKE 'GAL%' OR flagged`,
		`SELECT * FROM obj O WHERE ABS(dec) < 45 AND type IN ('GALAXY', 'STAR')`,
		`SELECT object_id FROM obj WHERE flux IS NULL OR type IS NULL`,
		`SELECT object_id, flux FROM obj O WHERE COALESCE(flux, 0) < 50 ORDER BY flux DESC, object_id`,
		`SELECT TOP 7 object_id FROM obj ORDER BY object_id DESC`,
	}
	for _, src := range queries {
		q, err := sqlparse.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		got, err := tab.Select(q.From[0].Name(), q, nil)
		if err != nil {
			t.Fatalf("Select %q: %v", src, err)
		}
		want, err := interpretSelect(tab, q.From[0].Name(), q)
		if err != nil {
			t.Fatalf("reference %q: %v", src, err)
		}
		if len(got.Rows) != len(want) {
			t.Fatalf("%q: compiled returned %d rows, interpreter %d", src, len(got.Rows), len(want))
		}
		for i := range want {
			for j := range want[i] {
				g, w := got.Rows[i][j], want[i][j]
				if !value.Equal(g, w) || g.Type() != w.Type() {
					t.Fatalf("%q row %d col %d: compiled=%v (%v), interpreter=%v (%v)",
						src, i, j, g, g.Type(), w, w.Type())
				}
			}
		}
	}
}

// interpretSelect re-implements Select's scan loop over the interpreted
// reference path (Table.Env + eval.Eval), including ORDER BY and TOP.
func interpretSelect(tab *Table, alias string, q *sqlparse.Query) ([][]value.Value, error) {
	var projections []sqlparse.Expr
	if !q.Count {
		for _, item := range q.Select {
			if _, ok := item.Expr.(*sqlparse.Star); ok {
				for _, def := range tab.Schema() {
					projections = append(projections, &sqlparse.ColumnRef{Table: alias, Column: def.Name})
				}
				continue
			}
			projections = append(projections, item.Expr)
		}
	}
	var rows [][]value.Value
	var keys [][]value.Value
	count := int64(0)
	var scanErr error
	tab.Scan(func(row int) bool {
		env := tab.Env(alias, row)
		ok, err := eval.EvalBool(q.Where, env)
		if err != nil {
			scanErr = err
			return false
		}
		if !ok {
			return true
		}
		if q.Count {
			count++
			return true
		}
		vals := make([]value.Value, len(projections))
		for i, p := range projections {
			if vals[i], err = eval.Eval(p, env); err != nil {
				scanErr = err
				return false
			}
		}
		rows = append(rows, vals)
		if len(q.OrderBy) > 0 {
			ks := make([]value.Value, len(q.OrderBy))
			for i, o := range q.OrderBy {
				if ks[i], err = eval.Eval(o.Expr, env); err != nil {
					scanErr = err
					return false
				}
			}
			keys = append(keys, ks)
			return true
		}
		return q.Top == 0 || len(rows) < q.Top
	})
	if scanErr != nil {
		return nil, scanErr
	}
	if q.Count {
		return [][]value.Value{{value.Int(count)}}, nil
	}
	if len(q.OrderBy) > 0 {
		sorted, err := eval.SortRows(rows, keys, q.OrderBy)
		if err != nil {
			return nil, err
		}
		rows = sorted
		if q.Top > 0 && len(rows) > q.Top {
			rows = rows[:q.Top]
		}
	}
	return rows, nil
}

// TestSelectCompileErrorsBeforeScan asserts binding errors surface even
// when no row would ever be visited: compilation happens at plan time.
func TestSelectCompileErrorsBeforeScan(t *testing.T) {
	tab, err := NewTable("obj", objSchema())
	if err != nil {
		t.Fatal(err)
	}
	// Empty table: the historical per-row evaluator would have reported
	// nothing for ORDER BY or function errors.
	for _, src := range []string{
		`SELECT object_id FROM obj ORDER BY nosuch`,
		`SELECT NOSUCHFN(flux) FROM obj`,
		`SELECT object_id FROM obj WHERE ABS(flux, 2) > 0`,
	} {
		q, err := sqlparse.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := tab.Select("obj", q, nil); err == nil {
			t.Errorf("Select(%q) on empty table succeeded, want compile error", src)
		}
	}
}
