package storage

// BenchmarkStoreScan measures the cost of the hot/cold split: the same
// selective scan over the same rows, once with every sealed block
// resident in Table memory and once with a one-block hot tier and a
// deliberately thrashing hydration cache, so every pass decodes cold
// blocks from disk. TestWriteBenchStoreJSON records both numbers as the
// "store_scan" key of the tracked BENCH_scan.json trajectory:
//
//	go test ./internal/storage/ -run TestWriteBenchStoreJSON -bench-store-json "$(pwd)/BENCH_scan.json"
//
// Like the other trajectory writers the test is a no-op skip unless the
// flag is set.

import (
	"encoding/json"
	"flag"
	"os"
	"testing"

	"skyquery/internal/sqlparse"
)

const benchStoreRows = 8 * ZoneBlockRows

const benchStoreQuery = "SELECT id, flux FROM obj WHERE flux > 5"

// openBenchStore builds an 8-block store once, closes it, and reopens it
// with the given tiering so recovery (not the build) decides what is hot.
func openBenchStore(tb testing.TB, opts StoreOptions) *Table {
	tb.Helper()
	dir := tb.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		tb.Fatal(err)
	}
	tbl, err := st.Create("obj", storeSchema(), &storeSpatial)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < benchStoreRows; i++ {
		if err := tbl.Append(storeRow(i)...); err != nil {
			tb.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		tb.Fatal(err)
	}
	st2, err := OpenStore(dir, opts)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { st2.Close() })
	t2, ok := st2.DB().Table("obj")
	if !ok {
		tb.Fatal("reopened store lost the table")
	}
	return t2
}

func benchStoreScan(b *testing.B, opts StoreOptions) {
	tbl := openBenchStore(b, opts)
	q, err := sqlparse.Parse(benchStoreQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tbl.Select("", q, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("degenerate empty scan")
		}
	}
}

func BenchmarkStoreScan(b *testing.B) {
	// Hot tier covers all 8 sealed blocks: pure in-memory scan.
	b.Run("hot", func(b *testing.B) {
		benchStoreScan(b, StoreOptions{HotBlocks: benchStoreRows / ZoneBlockRows})
	})
	// One hot block and a 2-column-block cache against 7 cold blocks × 2
	// scanned columns: the FIFO cache thrashes, so each op hydrates from
	// disk rather than replaying the first op's cache.
	b.Run("cold", func(b *testing.B) {
		benchStoreScan(b, StoreOptions{HotBlocks: 1, CacheBlocks: 2})
	})
}

var benchStoreJSON = flag.String("bench-store-json", "", "merge the hot/cold store scan benchmark into this BENCH_scan.json")

func TestWriteBenchStoreJSON(t *testing.T) {
	if *benchStoreJSON == "" {
		t.Skip("pass -bench-store-json=PATH (an existing BENCH_scan.json) to record the store scan benchmark")
	}
	raw, err := os.ReadFile(*benchStoreJSON)
	if err != nil {
		t.Fatalf("the eval trajectory must be written first (TestWriteBenchScanJSON): %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parsing %s: %v", *benchStoreJSON, err)
	}

	measure := func(opts StoreOptions) (nsPerOp int64, hydrated int64) {
		before := ColdBlocksHydrated()
		res := testing.Benchmark(func(b *testing.B) { benchStoreScan(b, opts) })
		return res.NsPerOp(), ColdBlocksHydrated() - before
	}
	hotNs, _ := measure(StoreOptions{HotBlocks: benchStoreRows / ZoneBlockRows})
	coldNs, hydrated := measure(StoreOptions{HotBlocks: 1, CacheBlocks: 2})
	if hydrated == 0 {
		t.Fatal("cold benchmark hydrated no blocks; the numbers would be meaningless")
	}

	perRow := func(ns int64) float64 {
		return float64(int64(float64(ns)/benchStoreRows*10000+0.5)) / 10000
	}
	doc["store_scan"] = map[string]any{
		"benchmark": "BenchmarkStoreScan: selective scan over a reopened disk-backed table, all blocks hot vs one hot block with a thrashing hydration cache",
		"query":     benchStoreQuery,
		"rows":      benchStoreRows,
		"hot": map[string]any{
			"ns_per_op":  hotNs,
			"ns_per_row": perRow(hotNs),
		},
		"cold": map[string]any{
			"ns_per_op":  coldNs,
			"ns_per_row": perRow(coldNs),
		},
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*benchStoreJSON, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("merged store_scan: hot %d ns/op, cold %d ns/op (%d cold blocks hydrated)", hotNs, coldNs, hydrated)
}
