package storage

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"skyquery/internal/sphere"
	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
)

func storeSchema() Schema {
	return Schema{
		{Name: "id", Type: value.IntType},
		{Name: "ra", Type: value.FloatType},
		{Name: "dec", Type: value.FloatType},
		{Name: "flux", Type: value.FloatType},
		{Name: "name", Type: value.StringType},
		{Name: "ok", Type: value.BoolType},
	}
}

var storeSpatial = SpatialConfig{RACol: "ra", DecCol: "dec", Level: 12}

// storeRow is the deterministic row generator every store test shares:
// positions inside a small cap at (185, -0.5), NULLs sprinkled through
// every column type.
func storeRow(i int) []value.Value {
	rng := rand.New(rand.NewSource(int64(i) + 7))
	row := []value.Value{
		value.Int(int64(i)),
		value.Float(184.8 + 0.4*rng.Float64()),
		value.Float(-0.7 + 0.4*rng.Float64()),
		value.Float(rng.NormFloat64() * 10),
		value.String(fmt.Sprintf("obj-%d", i)),
		value.Bool(i%3 == 0),
	}
	if i%17 == 0 {
		row[4] = value.Null
	}
	if i%23 == 0 {
		row[3] = value.Null
	}
	return row
}

func fillStoreTable(t *testing.T, tbl *Table, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		if err := tbl.Append(storeRow(i)...); err != nil {
			t.Fatalf("append row %d: %v", i, err)
		}
	}
}

// ramTwin builds the all-in-RAM table the disk-backed one must be
// indistinguishable from.
func ramTwin(t *testing.T, n int) *Table {
	t.Helper()
	tw, err := NewTable("obj", storeSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.EnableSpatial(storeSpatial); err != nil {
		t.Fatal(err)
	}
	fillStoreTable(t, tw, 0, n)
	return tw
}

func requireRows(t *testing.T, tbl *Table, n int) {
	t.Helper()
	if got := tbl.RowCount(); got != n {
		t.Fatalf("RowCount = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		cellsEqual(t, tbl.Row(i), storeRow(i), fmt.Sprintf("row %d", i))
	}
}

func resultsEqual(t *testing.T, got, want *Result, ctx string) {
	t.Helper()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows, want %d", ctx, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		cellsEqual(t, got.Rows[i], want.Rows[i], fmt.Sprintf("%s row %d", ctx, i))
	}
}

func TestStoreReopenIdentity(t *testing.T) {
	dir := t.TempDir()
	opts := StoreOptions{HotBlocks: 2}
	st, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := st.Create("obj", storeSchema(), &storeSpatial)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	fillStoreTable(t, tbl, 0, n)
	requireRows(t, tbl, n)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovery()
	if len(rec) != 1 {
		t.Fatalf("recovered %d tables, want 1", len(rec))
	}
	if rec[0].Table != "obj" || rec[0].Torn || rec[0].DurableRows != 2048 || rec[0].ReplayedRows != n-2048 {
		t.Fatalf("recovery = %+v", rec[0])
	}
	tbl2, ok := st2.DB().Table("obj")
	if !ok {
		t.Fatal("table missing after reopen")
	}
	requireRows(t, tbl2, n)

	// The reopened table keeps ingesting and surviving another cycle.
	fillStoreTable(t, tbl2, n, n+500)
	requireRows(t, tbl2, n+500)
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	tbl3, _ := st3.DB().Table("obj")
	requireRows(t, tbl3, n+500)
}

// TestStoreAbandonedTailReplays simulates a crash that never reached
// Close: the WAL holds the unsealed tail and replay restores it.
func TestStoreAbandonedTailReplays(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := st.Create("obj", storeSchema(), &storeSpatial)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1500 // one sealed block + a 476-row WAL tail
	fillStoreTable(t, tbl, 0, n)
	// No Flush, no Close: walk away mid-flight.

	st2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovery()[0]
	if rec.Torn || rec.DurableRows != 1024 || rec.ReplayedRows != n-1024 {
		t.Fatalf("recovery = %+v", rec)
	}
	tbl2, _ := st2.DB().Table("obj")
	requireRows(t, tbl2, n)
}

// TestStoreTornTailTruncated mangles the WAL mid-record: recovery keeps
// every intact record and reports the torn bytes.
func TestStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := st.Create("obj", storeSchema(), &storeSpatial)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1200
	fillStoreTable(t, tbl, 0, n)

	walPath := filepath.Join(dir, "obj", "wal.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovery()[0]
	if !rec.Torn || rec.TornBytes == 0 {
		t.Fatalf("recovery did not flag the torn tail: %+v", rec)
	}
	if rec.DurableRows != 1024 || rec.ReplayedRows != n-1024-1 {
		t.Fatalf("recovery = %+v", rec)
	}
	tbl2, _ := st2.DB().Table("obj")
	requireRows(t, tbl2, n-1)

	// Recovery rewrote the log clean: a second open replays the same state
	// with nothing torn.
	st3, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	rec = st3.Recovery()[0]
	if rec.Torn || rec.ReplayedRows != n-1024-1 {
		t.Fatalf("second recovery = %+v", rec)
	}
}

// TestStoreColdQueryIdentity is the hot/cold acceptance test at unit
// scale: a table larger than the hot tier answers scans, region searches
// and ORDER BY/TOP queries bit-identically to its all-in-RAM twin, and
// provably reads the cold tier doing it.
func TestStoreColdQueryIdentity(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{HotBlocks: 1, CacheBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tbl, err := st.Create("obj", storeSchema(), &storeSpatial)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	fillStoreTable(t, tbl, 0, n)
	twin := ramTwin(t, n)

	queries := []string{
		`SELECT id, flux, name FROM obj WHERE flux > 2 AND id < 4500`,
		`SELECT COUNT(*) FROM obj WHERE ok = true`,
		`SELECT TOP 40 id, name FROM obj WHERE flux >= -1 ORDER BY flux DESC, id ASC`,
		`SELECT id FROM obj WHERE flux IS NULL`,
		`SELECT id, ra, dec FROM obj WHERE id >= 4090 AND id < 4102`,
	}
	region := sphere.NewCap(185, -0.5, sphere.Arcsec(900))
	before := ColdBlocksHydrated()
	for _, src := range queries {
		q, err := sqlparse.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		for _, reg := range []sphere.Region{nil, region} {
			got, err := tbl.Select("obj", q, reg)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			want, err := twin.Select("obj", q, reg)
			if err != nil {
				t.Fatalf("%s (twin): %v", src, err)
			}
			resultsEqual(t, got, want, src)
		}
	}
	if hydrated := ColdBlocksHydrated() - before; hydrated == 0 {
		t.Error("queries over a table larger than the hot tier hydrated no cold blocks")
	}

	// Boxed access and row copies cross the boundary too.
	requireRows(t, tbl, n)
}

// --- crash harness -------------------------------------------------------

// TestStoreCrashHelper is not a test: it is the child process of
// TestStoreCrashRecovery. It ingests rows forever, recording each
// acknowledged append in an ack file, until the parent SIGKILLs it.
func TestStoreCrashHelper(t *testing.T) {
	dir := os.Getenv("STORE_CRASH_DIR")
	if dir == "" {
		t.Skip("crash-harness child; run via TestStoreCrashRecovery")
	}
	st, err := OpenStore(dir, StoreOptions{HotBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := st.Create("obj", storeSchema(), &storeSpatial)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := os.Create(filepath.Join(dir, "acked"))
	if err != nil {
		t.Fatal(err)
	}
	var buf [8]byte
	for i := 0; ; i++ {
		if err := tbl.Append(storeRow(i)...); err != nil {
			t.Fatal(err)
		}
		// The append returned: the row is acknowledged. Record it before
		// the next one so the parent's floor never overshoots.
		binary.LittleEndian.PutUint64(buf[:], uint64(i+1))
		if _, err := ack.WriteAt(buf[:], 0); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStoreCrashRecovery SIGKILLs a child mid-ingest — no shutdown path
// runs at all — then reopens the directory and requires every
// acknowledged append to have survived, byte for byte.
func TestStoreCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestStoreCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "STORE_CRASH_DIR="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait until the child has sealed at least two blocks so the kill
	// lands past flush activity, then SIGKILL with no warning.
	ackPath := filepath.Join(dir, "acked")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(ackPath); err == nil && len(data) == 8 &&
			binary.LittleEndian.Uint64(data) >= 2*ZoneBlockRows+100 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("child never reached the ingest target")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	data, err := os.ReadFile(ackPath)
	if err != nil || len(data) != 8 {
		t.Fatalf("ack file: %v (%d bytes)", err, len(data))
	}
	acked := int(binary.LittleEndian.Uint64(data))

	st, err := OpenStore(dir, StoreOptions{HotBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rec := st.Recovery()[0]
	t.Logf("killed at >= %d acked rows; recovery: %+v", acked, rec)
	tbl, ok := st.DB().Table("obj")
	if !ok {
		t.Fatal("table missing after crash recovery")
	}
	got := tbl.RowCount()
	if got < acked {
		t.Fatalf("lost acknowledged appends: recovered %d rows, %d were acknowledged", got, acked)
	}
	// Every recovered row — acknowledged or in-flight — must be exactly
	// what was appended: a torn tail may only shorten, never corrupt.
	for i := 0; i < got; i++ {
		cellsEqual(t, tbl.Row(i), storeRow(i), fmt.Sprintf("row %d", i))
	}
	// The recovered table still answers queries.
	q, err := sqlparse.Parse(`SELECT COUNT(*) FROM obj WHERE id >= 0`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Select("obj", q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c := res.Rows[0][0].AsInt(); int(c) != got {
		t.Fatalf("post-recovery COUNT(*) = %d, want %d", c, got)
	}
}
