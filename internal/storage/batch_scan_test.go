package storage

// Tests for the vectorized batch scan behind Table.Select: agreement with
// the row-at-a-time interpreted reference across batch sizes (including
// degenerate ones that force partial and single-row batches), ORDER BY
// stability under batching, TOP error-suppression semantics, and the
// empty-selection fast path.

import (
	"strings"
	"testing"

	"skyquery/internal/eval"
	"skyquery/internal/sphere"
	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
)

// withBatchSize runs fn under a temporary scan batch size.
func withBatchSize(t *testing.T, n int, fn func()) {
	t.Helper()
	old := eval.BatchSize()
	eval.SetBatchSize(n)
	defer eval.SetBatchSize(old)
	fn()
}

// batchSizes is the boundary-hunting matrix: single-row batches, a size
// that leaves partial last batches almost everywhere, and the default.
var batchSizes = []int{1, 3, eval.DefaultBatchSize}

func TestSelectBatchSizesMatchInterpreter(t *testing.T) {
	tab, err := NewTable("obj", objSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillObjects(t, tab, 200, 7)
	if err := tab.Append(value.Int(1000), value.Float(10), value.Float(10), value.Null, value.Null, value.Null); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`SELECT object_id, flux FROM obj O WHERE O.type = 'GALAXY' AND flux > 25`,
		`SELECT O.object_id, flux * 2 AS f2, UPPER(type) FROM obj O WHERE flux BETWEEN 10 AND 90`,
		`SELECT COUNT(*) FROM obj WHERE type LIKE 'GAL%' OR flagged`,
		`SELECT * FROM obj O WHERE ABS(dec) < 45 AND type IN ('GALAXY', 'STAR')`,
		`SELECT object_id FROM obj WHERE flux IS NULL OR type IS NULL`,
		`SELECT object_id, flux FROM obj O WHERE COALESCE(flux, 0) < 50 ORDER BY flux DESC, object_id`,
		`SELECT TOP 7 object_id FROM obj ORDER BY object_id DESC`,
		`SELECT TOP 5 object_id FROM obj WHERE flux > 30`,
		`SELECT object_id FROM obj WHERE type = 'NOSUCH'`, // empty result
		`SELECT TOP 200 object_id FROM obj WHERE flagged`, // TOP beyond matches
	}
	for _, src := range queries {
		q, err := sqlparse.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		want, err := interpretSelect(tab, q.From[0].Name(), q)
		if err != nil {
			t.Fatalf("reference %q: %v", src, err)
		}
		for _, bs := range batchSizes {
			withBatchSize(t, bs, func() {
				got, err := tab.Select(q.From[0].Name(), q, nil)
				if err != nil {
					t.Fatalf("Select %q (batch %d): %v", src, bs, err)
				}
				if len(got.Rows) != len(want) {
					t.Fatalf("%q (batch %d): batch scan returned %d rows, interpreter %d", src, bs, len(got.Rows), len(want))
				}
				for i := range want {
					for j := range want[i] {
						g, w := got.Rows[i][j], want[i][j]
						if !value.Equal(g, w) || g.Type() != w.Type() {
							t.Fatalf("%q (batch %d) row %d col %d: batch=%v (%v), interpreter=%v (%v)",
								src, bs, i, j, g, g.Type(), w, w.Type())
						}
					}
				}
			})
		}
	}
}

// TestSelectOrderByStableAndNullsUnderBatching is the regression test for
// ORDER BY under the batch scan: sort keys extracted from batches must
// order bit-for-bit like the row-at-a-time path — including the stability
// of ties (input scan order preserved) and NULL keys sorting first.
func TestSelectOrderByStableAndNullsUnderBatching(t *testing.T) {
	tab, err := NewTable("obj", Schema{
		{Name: "id", Type: value.IntType},
		{Name: "grp", Type: value.IntType},
		{Name: "key", Type: value.FloatType},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Heavy ties in grp, duplicate and NULL keys: the only correct order
	// for tied rows is their scan order, so any batch-boundary reordering
	// (or NULL misplacement) changes the output.
	for i := 0; i < 100; i++ {
		key := value.Float(float64(i % 5))
		if i%7 == 0 {
			key = value.Null
		}
		if err := tab.Append(value.Int(int64(i)), value.Int(int64(i%3)), key); err != nil {
			t.Fatal(err)
		}
	}

	queries := []string{
		`SELECT id, grp, key FROM obj ORDER BY grp`,
		`SELECT id, grp, key FROM obj ORDER BY key, grp DESC`,
		`SELECT id FROM obj ORDER BY key DESC`,
		`SELECT TOP 11 id, key FROM obj ORDER BY key, id DESC`,
		`SELECT id FROM obj WHERE grp < 2 ORDER BY key`,
	}
	for _, src := range queries {
		q, err := sqlparse.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		want, err := interpretSelect(tab, "obj", q)
		if err != nil {
			t.Fatalf("reference %q: %v", src, err)
		}
		// NULL keys must sort first ascending (and therefore last on DESC).
		if strings.Contains(src, "ORDER BY key,") {
			if len(want) == 0 || !want[0][len(want[0])-1].IsNull() {
				t.Fatalf("reference for %q does not put NULL keys first: %v", src, want[0])
			}
		}
		for _, bs := range batchSizes {
			withBatchSize(t, bs, func() {
				got, err := tab.Select("obj", q, nil)
				if err != nil {
					t.Fatalf("Select %q (batch %d): %v", src, bs, err)
				}
				if len(got.Rows) != len(want) {
					t.Fatalf("%q (batch %d): %d rows, want %d", src, bs, len(got.Rows), len(want))
				}
				for i := range want {
					for j := range want[i] {
						g, w := got.Rows[i][j], want[i][j]
						if !value.Equal(g, w) || g.Type() != w.Type() {
							t.Fatalf("%q (batch %d) row %d col %d: got %v (%v), want %v (%v) — ordering not bit-identical",
								src, bs, i, j, g, g.Type(), w, w.Type())
						}
					}
				}
			})
		}
	}
}

// TestSelectEmptyRegionSkipsPredicateWork asserts the empty-selection fast
// path: an AREA whose HTM search yields no candidates must not gather a
// single predicate column or evaluate the WHERE program at all.
func TestSelectEmptyRegionSkipsPredicateWork(t *testing.T) {
	db := newTestDB(t, 300)
	tab, _ := db.Table("PhotoObject")

	q, err := sqlparse.Parse(`SELECT object_id FROM PhotoObject WHERE flux / 0 > 1`)
	if err != nil {
		t.Fatal(err)
	}
	// A cap on the opposite side of the sky from any generated object
	// cannot contain candidates... but objects are scattered over the full
	// sphere by fillObjects, so use a tiny cap around a gap-free spot:
	// radius below the minimum separation to any object.
	region := sphere.NewCap(185.0, -0.5, sphere.Arcsec(0.001))
	before := predRowsEvaluated.Load()
	res, err := tab.Select("PhotoObject", q, region)
	after := predRowsEvaluated.Load()
	if err != nil {
		// The predicate errors on every row, so any evaluation would fail
		// the query: reaching here means rows were evaluated.
		t.Fatalf("empty region evaluated the predicate: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("empty region returned %d rows", len(res.Rows))
	}
	if after != before {
		t.Fatalf("empty region evaluated predicates for %d rows, want 0", after-before)
	}

	// Control: a full-sky scan of the same query does evaluate (and fails).
	if _, err := tab.Select("PhotoObject", q, nil); err == nil {
		t.Fatal("full scan of an always-erroring predicate succeeded")
	}
	if predRowsEvaluated.Load() == before {
		t.Fatal("control scan recorded no predicate work")
	}
}

// TestSelectTopSuppressesErrorsPastTheBoundary pins the batch scan to the
// row-at-a-time TOP semantics: a predicate error at a row the sequential
// scan would never have reached (because TOP was already satisfied) must
// not fail the query — and must keep failing it when TOP lies beyond the
// erroring row, or when there is no TOP at all.
func TestSelectTopSuppressesErrorsPastTheBoundary(t *testing.T) {
	tab, err := NewTable("obj", Schema{{Name: "id", Type: value.IntType}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := tab.Append(value.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Rows 0..4 pass (10/(id-5) < 0), row 5 divides by zero, rows 6+ fail.
	parse := func(src string) *sqlparse.Query {
		q, err := sqlparse.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	for _, bs := range batchSizes {
		withBatchSize(t, bs, func() {
			res, err := tab.Select("obj", parse(`SELECT TOP 3 id FROM obj WHERE 10 / (id - 5) < 0`), nil)
			if err != nil {
				t.Fatalf("batch %d: TOP before the failing row still errored: %v", bs, err)
			}
			if len(res.Rows) != 3 || res.Rows[2][0].AsInt() != 2 {
				t.Fatalf("batch %d: TOP rows = %v", bs, res.Rows)
			}
			if _, err := tab.Select("obj", parse(`SELECT TOP 6 id FROM obj WHERE 10 / (id - 5) < 0`), nil); err == nil {
				t.Fatalf("batch %d: TOP past the failing row did not error", bs)
			}
			if _, err := tab.Select("obj", parse(`SELECT id FROM obj WHERE 10 / (id - 5) < 0`), nil); err == nil {
				t.Fatalf("batch %d: un-TOPped scan did not error", bs)
			}
			if _, err := tab.Select("obj", parse(`SELECT COUNT(*) FROM obj WHERE 10 / (id - 5) < 0`), nil); err == nil {
				t.Fatalf("batch %d: COUNT scan did not error", bs)
			}
		})
	}
}

// TestFillColumnGathers covers the batch feeders directly.
func TestFillColumnGathers(t *testing.T) {
	tab, err := NewTable("obj", objSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillObjects(t, tab, 10, 3)
	rows := []int{7, 2, 5}
	dst := make([]value.Value, 3)
	tab.FillColumn(dst, 0, rows)
	for i, r := range rows {
		if dst[i].AsInt() != int64(r) {
			t.Fatalf("FillColumn[%d] = %v, want %d", i, dst[i], r)
		}
	}
	dst2 := make([]value.Value, 3)
	tab.FillColumnSel(dst2, 0, rows, []int{1})
	if dst2[1].AsInt() != 2 || !dst2[0].IsNull() || !dst2[2].IsNull() {
		t.Fatalf("FillColumnSel = %v", dst2)
	}
}
