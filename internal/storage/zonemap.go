package storage

// Zone maps: per-block min/max + null-count statistics over the numeric
// columns, letting compiled comparison predicates (eval.AnalyzePrune) skip
// whole blocks of a base-table scan before any kernel runs. Statistics are
// kept per ZoneBlockRows rows, built lazily on first use and invalidated
// by row-count changes (tables are append-only: a map built at n rows is
// exact for the first n rows forever).
//
// Exactness (see the prune-analysis contract in internal/eval/prune.go):
// a block is skipped only when the pruning conjunct can never be TRUE on
// it AND skipping cannot hide an error the row-at-a-time scan would have
// surfaced — either the whole predicate is statically error-free (then
// all-NULL blocks prune too), or the conjunct's prefix is error-free and
// the block has no NULLs in the pruned column (the conjunct is strictly
// FALSE everywhere, so the AND short-circuit provably killed the rest).
// Min/max are stored widened to float64, the exact image the comparison
// kernels compare against (float64 conversion of int64 is monotonic), and
// a float block containing NaN never prunes: NaN compares equal to
// everything in this engine.

import (
	"math"

	"skyquery/internal/eval"
)

// ZoneBlockRows is the row granularity of the zone maps (and of the
// block-aligned base-table scan that consults them).
const ZoneBlockRows = 1024

// zone holds the statistics of one block of one numeric column. min/max
// cover the non-NULL values only and are meaningless when nulls == rows.
type zone struct {
	min, max float64
	nulls    int32
	rows     int32
	hasNaN   bool
}

// zoneSet is a table's zone maps at a fixed row count.
type zoneSet struct {
	rows int
	cols [][]zone // indexed by column; nil for non-numeric columns
}

// zoneMaps returns the zone maps covering the table's first n rows,
// rebuilding when the cached set was built at a different count. It runs
// under the same read discipline as the scan that calls it (no concurrent
// appends); concurrent scans serialize the rebuild on zoneMu.
func (t *Table) zoneMaps(n int) *zoneSet {
	t.zoneMu.Lock()
	defer t.zoneMu.Unlock()
	if t.zones == nil || t.zones.rows != n {
		t.zones = buildZoneSet(t, n)
	}
	return t.zones
}

func buildZoneSet(t *Table, n int) *zoneSet {
	zs := &zoneSet{rows: n, cols: make([][]zone, len(t.cols))}
	nBlocks := (n + ZoneBlockRows - 1) / ZoneBlockRows
	for ci, col := range t.cols {
		switch c := col.(type) {
		case *intColumn:
			blocks := make([]zone, nBlocks)
			for b := range blocks {
				lo := b * ZoneBlockRows
				hi := min(lo+ZoneBlockRows, n)
				z := &blocks[b]
				z.rows = int32(hi - lo)
				first := true
				var mn, mx int64
				for i := lo; i < hi; i++ {
					if c.nulls[i] {
						z.nulls++
						continue
					}
					v := c.vals[i]
					if first {
						mn, mx, first = v, v, false
						continue
					}
					if v < mn {
						mn = v
					}
					if v > mx {
						mx = v
					}
				}
				z.min, z.max = float64(mn), float64(mx)
			}
			zs.cols[ci] = blocks
		case *floatColumn:
			blocks := make([]zone, nBlocks)
			for b := range blocks {
				lo := b * ZoneBlockRows
				hi := min(lo+ZoneBlockRows, n)
				z := &blocks[b]
				z.rows = int32(hi - lo)
				first := true
				for i := lo; i < hi; i++ {
					if c.nulls[i] {
						z.nulls++
						continue
					}
					v := c.vals[i]
					if math.IsNaN(v) {
						z.hasNaN = true
						continue
					}
					if first {
						z.min, z.max, first = v, v, false
						continue
					}
					if v < z.min {
						z.min = v
					}
					if v > z.max {
						z.max = v
					}
				}
			}
			zs.cols[ci] = blocks
		}
	}
	return zs
}

// prunable reports whether block b of the scan can be skipped for the
// given prune set: some pruner proves its conjunct never TRUE on the
// block, under the error-exactness conditions documented above.
func (zs *zoneSet) prunable(b int, ps eval.PruneSet) bool {
	for _, p := range ps.Pruners {
		blocks := zs.cols[p.Slot]
		if blocks == nil || b >= len(blocks) {
			continue
		}
		z := blocks[b]
		if z.rows == 0 {
			continue
		}
		// allNull implies no NaN: hasNaN is only set for non-NULL cells.
		allNull := z.nulls == z.rows
		// A block with NaN values cannot be bounded by a range test (and
		// its min/max are meaningless when every other cell is NULL).
		rangeDead := !z.hasNaN && !allNull && p.NeverTrue(z.min, z.max)
		if ps.Safe {
			if allNull || rangeDead {
				return true
			}
			continue
		}
		if p.PrefixSafe && z.nulls == 0 && rangeDead {
			return true
		}
	}
	return false
}
