package storage

// Zone maps: per-block min/max + null-count statistics over the numeric
// columns, letting compiled comparison predicates (eval.AnalyzePrune) skip
// whole blocks of a base-table scan before any kernel runs. Statistics are
// kept per ZoneBlockRows rows, built lazily on first use and invalidated
// by row-count changes (tables are append-only: a map built at n rows is
// exact for the first n rows forever).
//
// Exactness (see the prune-analysis contract in internal/eval/prune.go):
// a block is skipped only when the pruning conjunct can never be TRUE on
// it AND skipping cannot hide an error the row-at-a-time scan would have
// surfaced — either the whole predicate is statically error-free (then
// all-NULL blocks prune too), or the conjunct's prefix is error-free and
// the block has no NULLs in the pruned column (the conjunct is strictly
// FALSE everywhere, so the AND short-circuit provably killed the rest).
// Min/max are stored widened to float64, the exact image the comparison
// kernels compare against (float64 conversion of int64 is monotonic), and
// a float block containing NaN never prunes: NaN compares equal to
// everything in this engine.

import (
	"math"

	"skyquery/internal/eval"
)

// ZoneBlockRows is the row granularity of the zone maps (and of the
// block-aligned base-table scan that consults them).
const ZoneBlockRows = 1024

// zone holds the statistics of one block of one numeric column. min/max
// cover the non-NULL values only and are meaningless when nulls == rows.
type zone struct {
	min, max float64
	nulls    int32
	rows     int32
	hasNaN   bool
}

// strZone is zone for STRING columns: byte-wise min/max over the
// non-NULL values (the order value.Compare uses), null and row counts.
// Strings have no NaN analogue; every other exactness rule of the
// numeric path — all-NULL blocks prune only under Safe, PrefixSafe needs
// nulls == 0 — carries over unchanged.
type strZone struct {
	min, max string
	nulls    int32
	rows     int32
}

// zoneSet is a table's zone maps at a fixed row count.
type zoneSet struct {
	rows int
	cols [][]zone    // indexed by column; nil for non-numeric columns
	strs [][]strZone // indexed by column; nil for non-string columns
}

// zoneMaps returns the zone maps covering the table's first n rows,
// rebuilding when the cached set was built at a different count. The
// rebuild runs under the table's read lock (so it never observes a
// half-appended row); concurrent scans serialize it on zoneMu. zoneMu
// nests outside the read lock and is never taken by a writer, so the
// pair cannot deadlock against a queued append.
func (t *Table) zoneMaps(n int) *zoneSet {
	t.zoneMu.Lock()
	defer t.zoneMu.Unlock()
	if t.zones == nil || t.zones.rows != n {
		t.mu.RLock()
		t.zones = buildZoneSet(t, n)
		t.mu.RUnlock()
	}
	return t.zones
}

// zoneOfInts computes one block's statistics from an INT column slice.
func zoneOfInts(vals []int64, nulls []bool) zone {
	z := zone{rows: int32(len(vals))}
	first := true
	var mn, mx int64
	for i, v := range vals {
		if nulls[i] {
			z.nulls++
			continue
		}
		if first {
			mn, mx, first = v, v, false
			continue
		}
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	z.min, z.max = float64(mn), float64(mx)
	return z
}

// zoneOfStrings computes one block's statistics from a STRING column
// slice (byte-wise min/max, the order value.Compare uses on strings).
func zoneOfStrings(vals []string, nulls []bool) strZone {
	z := strZone{rows: int32(len(vals))}
	first := true
	for i, v := range vals {
		if nulls[i] {
			z.nulls++
			continue
		}
		if first {
			z.min, z.max, first = v, v, false
			continue
		}
		if v < z.min {
			z.min = v
		}
		if v > z.max {
			z.max = v
		}
	}
	return z
}

// zoneOfFloats is zoneOfInts for FLOAT columns (NaN-aware).
func zoneOfFloats(vals []float64, nulls []bool) zone {
	z := zone{rows: int32(len(vals))}
	first := true
	for i, v := range vals {
		if nulls[i] {
			z.nulls++
			continue
		}
		if math.IsNaN(v) {
			z.hasNaN = true
			continue
		}
		if first {
			z.min, z.max, first = v, v, false
			continue
		}
		if v < z.min {
			z.min = v
		}
		if v > z.max {
			z.max = v
		}
	}
	return z
}

// buildZoneSet computes the per-block statistics of the first n rows
// (caller holds the read lock). Blocks below the hot/cold boundary take
// their statistics straight from the footer metadata — no block data is
// read. When n cuts inside a sealed cold block (a snapshot older than
// the seal) the full-block statistics stand in: wider min/max and extra
// null counts only make pruning more conservative, never wrong.
func buildZoneSet(t *Table, n int) *zoneSet {
	zs := &zoneSet{rows: n, cols: make([][]zone, len(t.cols)), strs: make([][]strZone, len(t.cols))}
	nBlocks := (n + ZoneBlockRows - 1) / ZoneBlockRows
	for ci, col := range t.cols {
		switch c := col.(type) {
		case *intColumn:
			blocks := make([]zone, nBlocks)
			for b := range blocks {
				lo := b * ZoneBlockRows
				hi := min(lo+ZoneBlockRows, n)
				if hi <= t.memBase {
					blocks[b] = t.persist.blocks[ci][b].z
					continue
				}
				blocks[b] = zoneOfInts(c.vals[lo-t.memBase:hi-t.memBase], c.nulls[lo-t.memBase:hi-t.memBase])
			}
			zs.cols[ci] = blocks
		case *floatColumn:
			blocks := make([]zone, nBlocks)
			for b := range blocks {
				lo := b * ZoneBlockRows
				hi := min(lo+ZoneBlockRows, n)
				if hi <= t.memBase {
					blocks[b] = t.persist.blocks[ci][b].z
					continue
				}
				blocks[b] = zoneOfFloats(c.vals[lo-t.memBase:hi-t.memBase], c.nulls[lo-t.memBase:hi-t.memBase])
			}
			zs.cols[ci] = blocks
		case *stringColumn:
			blocks := make([]strZone, nBlocks)
			for b := range blocks {
				lo := b * ZoneBlockRows
				hi := min(lo+ZoneBlockRows, n)
				if hi <= t.memBase {
					blocks[b] = t.persist.blocks[ci][b].sz
					continue
				}
				blocks[b] = zoneOfStrings(c.vals[lo-t.memBase:hi-t.memBase], c.nulls[lo-t.memBase:hi-t.memBase])
			}
			zs.strs[ci] = blocks
		}
	}
	return zs
}

// prunable reports whether block b of the scan can be skipped for the
// given prune set: some pruner proves its conjunct never TRUE on the
// block, under the error-exactness conditions documented above.
func (zs *zoneSet) prunable(b int, ps eval.PruneSet) bool {
	for _, p := range ps.Pruners {
		var allNull, rangeDead bool
		var nulls int32
		if p.IsStr {
			if p.Slot >= len(zs.strs) || zs.strs[p.Slot] == nil || b >= len(zs.strs[p.Slot]) {
				continue
			}
			z := zs.strs[p.Slot][b]
			if z.rows == 0 {
				continue
			}
			nulls = z.nulls
			allNull = z.nulls == z.rows
			rangeDead = !allNull && p.NeverTrueStr(z.min, z.max)
		} else {
			blocks := zs.cols[p.Slot]
			if blocks == nil || b >= len(blocks) {
				continue
			}
			z := blocks[b]
			if z.rows == 0 {
				continue
			}
			nulls = z.nulls
			// allNull implies no NaN: hasNaN is only set for non-NULL cells.
			allNull = z.nulls == z.rows
			// A block with NaN values cannot be bounded by a range test (and
			// its min/max are meaningless when every other cell is NULL).
			rangeDead = !z.hasNaN && !allNull && p.NeverTrue(z.min, z.max)
		}
		if ps.Safe {
			if allNull || rangeDead {
				return true
			}
			continue
		}
		if p.PrefixSafe && nulls == 0 && rangeDead {
			return true
		}
	}
	return false
}
