package storage

// Candidate zone pruning: predicate pushdown below the HTM search. The
// spatial searches enumerate candidate rows in trixel order, scattered
// across the table's zone blocks; a CandPruner maps each candidate back
// to its per-ZoneBlockRows block and consults the same zone statistics
// (and the same eval.AnalyzePrune exactness contract) the block-aligned
// base-table scan uses, so candidates from provably dead blocks are
// dropped before a position is computed, a containment test runs, or a
// single cell is gathered into typed scratch.
//
// Dropping a candidate is exact under the zonemap.go conditions because a
// pruned row can contribute neither output nor error to the consumer:
// its conjunct is never TRUE there (no output — for a chain step that
// also means no chi-square gate entry and no drop-out veto), and either
// the whole predicate sequence is statically error-free or the conjunct
// is strictly FALSE with an error-free prefix, so the engines'
// left-to-right AND short-circuit provably killed everything after it.
// Candidate order among the surviving rows is untouched, which keeps the
// first-error row — and the drop-out steps' veto-beats-error semantics —
// bit-identical to the unpruned search.
//
// Verdicts are memoized per block so a search stream touching the same
// block thousands of times pays the min/max tests once. The memo is
// race-safe (atomic CAS) because extend and drop-out steps share one
// pruner across their worker pool.

import (
	"sync/atomic"

	"skyquery/internal/eval"
)

// candBlocksPruned counts zone blocks proven dead during candidate
// enumeration (each block counts once per CandPruner, i.e. once per chain
// step or region scan that touches it).
var candBlocksPruned atomic.Int64

// candRowsGathered counts candidate rows that survived pruning and were
// emitted in a search batch — the rows whose columns the consumer may
// gather. Together the two counters prove end to end that pruned blocks
// never feed a gather.
var candRowsGathered atomic.Int64

// CandBlocksPruned returns the cumulative number of candidate zone blocks
// pruned below the HTM search (test instrumentation — callers assert
// deltas around a query).
func CandBlocksPruned() int64 { return candBlocksPruned.Load() }

// CandRowsGathered returns the cumulative number of candidate rows
// emitted by batch spatial searches (test instrumentation).
func CandRowsGathered() int64 { return candRowsGathered.Load() }

const (
	blockUnknown int32 = iota
	blockLive
	blockDead
)

// CandPruner holds one search consumer's prunable conjuncts against one
// table, with memoized per-block verdicts. Build it with Table.CandPruner
// once per chain step (or scan) and share it across workers.
type CandPruner struct {
	ps eval.PruneSet
	zs *zoneSet
	// rows is the snapshot row count the zone maps were built at. Rows at
	// or past it have no (or only partial) statistics and are never
	// pruned — the block-count guard alone is not enough, because a row
	// appended into a partial trailing block after the snapshot lands in
	// a block that does have statistics, just not ones that cover it.
	rows    int
	verdict []atomic.Int32
}

// CandPruner returns a pruner applying the prune set's conjuncts to this
// table's zone blocks, or nil when the set has no pruners (or the table
// is empty) — a nil pruner disables pruning in SearchBatch.
func (t *Table) CandPruner(ps eval.PruneSet) *CandPruner {
	if len(ps.Pruners) == 0 {
		return nil
	}
	n := t.RowCount()
	if n == 0 {
		return nil
	}
	return &CandPruner{
		ps:      ps,
		zs:      t.zoneMaps(n),
		rows:    n,
		verdict: make([]atomic.Int32, (n+ZoneBlockRows-1)/ZoneBlockRows),
	}
}

// Pruned reports whether the row's zone block is provably dead for this
// pruner's conjuncts. Rows appended after the zone maps were built are
// never pruned: the guard is the snapshot row count, not the block
// count, because a fresh row in a partial trailing block would otherwise
// be judged against statistics that do not cover it.
func (p *CandPruner) Pruned(row int) bool {
	if row >= p.rows {
		return false
	}
	b := row / ZoneBlockRows
	switch p.verdict[b].Load() {
	case blockDead:
		return true
	case blockLive:
		return false
	}
	v := blockLive
	if p.zs.prunable(b, p.ps) {
		v = blockDead
	}
	if p.verdict[b].CompareAndSwap(blockUnknown, v) && v == blockDead {
		candBlocksPruned.Add(1)
	}
	return v == blockDead
}
