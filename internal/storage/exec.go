package storage

import (
	"fmt"

	"skyquery/internal/eval"
	"skyquery/internal/sphere"
	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
)

// Result is the output of a query: a schema plus rows. It is the native
// currency between the executor and the web-service layer.
type Result struct {
	Columns Schema
	Rows    [][]value.Value
}

// rowEnv resolves column references against a table row. It accepts the
// table's alias, its real name, or no qualifier at all, so both portal
// queries ("O.type") and node-local queries ("type") evaluate.
type rowEnv struct {
	t     *Table
	alias string
	row   int
}

// Lookup implements eval.Env.
func (e rowEnv) Lookup(table, column string) (value.Value, error) {
	if table != "" && table != e.alias && table != e.t.name {
		return value.Null, fmt.Errorf("storage: unknown table %q in query against %q", table, e.t.name)
	}
	ci := e.t.schema.Index(column)
	if ci < 0 {
		return value.Null, fmt.Errorf("storage: unknown column %q in table %q", column, e.t.name)
	}
	return e.t.cols[ci].get(e.row), nil
}

// Env returns an eval.Env bound to one row of the table, resolving
// references qualified by alias, the table name, or nothing.
func (t *Table) Env(alias string, row int) eval.Env {
	return rowEnv{t: t, alias: alias, row: row}
}

// Execute runs a single-table query against the database. The query's FROM
// clause must name exactly one table that exists here (the archive
// qualifier, if any, is ignored: by the time a query reaches a SkyNode it
// is local). The AREA clause, if present, restricts rows via the HTM index.
//
// Supported shapes are exactly what the federation needs from a component
// database: SELECT COUNT(*) (performance queries), and projections with
// expressions, aliases, *, and TOP.
func (db *DB) Execute(q *sqlparse.Query) (*Result, error) {
	if len(q.From) != 1 {
		return nil, fmt.Errorf("storage: node queries must reference exactly one table, got %d", len(q.From))
	}
	if q.XMatch != nil {
		return nil, fmt.Errorf("storage: XMATCH cannot be evaluated by a single node; it is a federated clause")
	}
	ref := q.From[0]
	t, ok := db.Table(ref.Table)
	if !ok {
		return nil, fmt.Errorf("storage: table %q does not exist", ref.Table)
	}
	var region sphere.Region
	if q.Area != nil {
		if q.Area.IsPolygon() {
			poly, err := sphere.NewPolygon(q.Area.Vertices...)
			if err != nil {
				return nil, fmt.Errorf("storage: AREA polygon: %w", err)
			}
			region = poly
		} else {
			region = sphere.NewCap(q.Area.RA, q.Area.Dec, sphere.Arcsec(q.Area.RadiusArcsec))
		}
	}
	return t.Select(ref.Name(), q, region)
}

// Select evaluates the query against this table, with an optional region
// constraint (which may also come from q.Area via DB.Execute). alias is
// the name column references may use.
func (t *Table) Select(alias string, q *sqlparse.Query, region sphere.Region) (*Result, error) {
	// Pre-validate referenced columns so errors do not depend on data.
	if err := t.checkColumns(alias, q); err != nil {
		return nil, err
	}

	res := &Result{}
	var projections []sqlparse.Expr
	if q.Count {
		res.Columns = Schema{{Name: "count", Type: value.IntType}}
	} else {
		for _, item := range q.Select {
			if _, ok := item.Expr.(*sqlparse.Star); ok {
				for _, def := range t.schema {
					res.Columns = append(res.Columns, def)
					projections = append(projections, &sqlparse.ColumnRef{Table: alias, Column: def.Name})
				}
				continue
			}
			name := item.Alias
			if name == "" {
				if cr, ok := item.Expr.(*sqlparse.ColumnRef); ok {
					name = cr.Column
				} else {
					name = item.Expr.String()
				}
			}
			res.Columns = append(res.Columns, ColumnDef{Name: name, Type: exprType(t, item.Expr)})
			projections = append(projections, item.Expr)
		}
	}

	count := int64(0)
	var evalErr error
	// With ORDER BY the scan cannot stop at TOP rows: all matches are
	// collected with their sort keys, sorted, then truncated.
	var sortKeys [][]value.Value
	visit := func(row int) bool {
		env := t.Env(alias, row)
		ok, err := eval.EvalBool(q.Where, env)
		if err != nil {
			evalErr = err
			return false
		}
		if !ok {
			return true
		}
		if q.Count {
			count++
			return true
		}
		vals := make([]value.Value, len(projections))
		for i, p := range projections {
			v, err := eval.Eval(p, env)
			if err != nil {
				evalErr = err
				return false
			}
			vals[i] = v
		}
		res.Rows = append(res.Rows, vals)
		if len(q.OrderBy) > 0 {
			keys := make([]value.Value, len(q.OrderBy))
			for i, o := range q.OrderBy {
				v, err := eval.Eval(o.Expr, env)
				if err != nil {
					evalErr = err
					return false
				}
				keys[i] = v
			}
			sortKeys = append(sortKeys, keys)
			return true
		}
		return q.Top == 0 || len(res.Rows) < q.Top
	}

	if region != nil && t.HasSpatial() {
		if err := t.SearchRegion(region, visit); err != nil {
			return nil, err
		}
	} else if region != nil {
		// No index: fall back to a full scan with an explicit position test.
		ra := t.schema.Index("ra")
		de := t.schema.Index("dec")
		if ra < 0 || de < 0 {
			return nil, fmt.Errorf("storage: table %q has no spatial index and no ra/dec columns for AREA", t.name)
		}
		t.Scan(func(row int) bool {
			raf, _ := t.cols[ra].get(row).AsFloat()
			def, _ := t.cols[de].get(row).AsFloat()
			if !region.Contains(sphere.FromRaDec(raf, def)) {
				return true
			}
			return visit(row)
		})
	} else {
		t.Scan(visit)
	}
	if evalErr != nil {
		return nil, evalErr
	}
	if q.Count {
		res.Rows = append(res.Rows, []value.Value{value.Int(count)})
	}
	if len(q.OrderBy) > 0 {
		sorted, err := eval.SortRows(res.Rows, sortKeys, q.OrderBy)
		if err != nil {
			return nil, err
		}
		res.Rows = sorted
		if q.Top > 0 && len(res.Rows) > q.Top {
			res.Rows = res.Rows[:q.Top]
		}
	}
	return res, nil
}

// checkColumns verifies every column reference in the query resolves.
func (t *Table) checkColumns(alias string, q *sqlparse.Query) error {
	check := func(e sqlparse.Expr) error {
		var err error
		sqlparse.Walk(e, func(n sqlparse.Expr) {
			if err != nil {
				return
			}
			if c, ok := n.(*sqlparse.ColumnRef); ok {
				if c.Table != "" && c.Table != alias && c.Table != t.name {
					err = fmt.Errorf("storage: unknown table %q in query against %q", c.Table, t.name)
					return
				}
				if t.schema.Index(c.Column) < 0 {
					err = fmt.Errorf("storage: unknown column %q in table %q", c.Column, t.name)
				}
			}
		})
		return err
	}
	for _, item := range q.Select {
		if _, ok := item.Expr.(*sqlparse.Star); ok {
			continue
		}
		if err := check(item.Expr); err != nil {
			return err
		}
	}
	return check(q.Where)
}

// exprType infers a static result type for a projection, defaulting to
// FLOAT for computed numerics. It is advisory: the dataset layer carries
// per-cell types anyway.
func exprType(t *Table, e sqlparse.Expr) value.Type {
	switch n := e.(type) {
	case *sqlparse.ColumnRef:
		if ci := t.schema.Index(n.Column); ci >= 0 {
			return t.schema[ci].Type
		}
	case *sqlparse.NumberLit:
		return value.FloatType
	case *sqlparse.StringLit:
		return value.StringType
	case *sqlparse.BoolLit:
		return value.BoolType
	case *sqlparse.BinaryExpr:
		switch n.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=", "LIKE":
			return value.BoolType
		}
		return value.FloatType
	case *sqlparse.UnaryExpr:
		if n.Op == "NOT" {
			return value.BoolType
		}
		return value.FloatType
	case *sqlparse.IsNull, *sqlparse.InList, *sqlparse.Between:
		return value.BoolType
	}
	return value.FloatType
}

// InsertResult bulk-appends the rows of a result into the table. Schemas
// must be compatible (same arity; values are checked per cell).
func (t *Table) InsertResult(res *Result) error {
	if len(res.Columns) != len(t.schema) {
		return fmt.Errorf("storage: insert arity mismatch: table %q has %d columns, result has %d",
			t.name, len(t.schema), len(res.Columns))
	}
	for _, row := range res.Rows {
		if err := t.Append(row...); err != nil {
			return err
		}
	}
	return nil
}
