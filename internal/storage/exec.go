package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"skyquery/internal/eval"
	"skyquery/internal/sphere"
	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
)

// Result is the output of a query: a schema plus rows. It is the native
// currency between the executor and the web-service layer.
type Result struct {
	Columns Schema
	Rows    [][]value.Value
}

// rowEnv resolves column references against a table row. It accepts the
// table's alias, its real name, or no qualifier at all, so both portal
// queries ("O.type") and node-local queries ("type") evaluate. It is the
// interpreted reference path: the executor itself runs compiled programs
// over tableLayout, and tests cross-validate the two.
type rowEnv struct {
	t     *Table
	alias string
	row   int
}

// Lookup implements eval.Env.
func (e rowEnv) Lookup(table, column string) (value.Value, error) {
	if table != "" && table != e.alias && table != e.t.name {
		return value.Null, fmt.Errorf("storage: unknown table %q in query against %q", table, e.t.name)
	}
	ci := e.t.schema.Index(column)
	if ci < 0 {
		return value.Null, fmt.Errorf("storage: unknown column %q in table %q", column, e.t.name)
	}
	return e.t.cellLocked(e.row, ci), nil
}

// Env returns an eval.Env bound to one row of the table, resolving
// references qualified by alias, the table name, or nothing.
func (t *Table) Env(alias string, row int) eval.Env {
	return rowEnv{t: t, alias: alias, row: row}
}

// tableLayout resolves column references to schema slots with the same
// qualifier rules (and error messages) as rowEnv. Programs compiled
// against it evaluate over rows laid out in schema order.
type tableLayout struct {
	t     *Table
	alias string
}

// Slot implements eval.Layout.
func (l tableLayout) Slot(table, column string) (int, error) {
	if table != "" && table != l.alias && table != l.t.name {
		return 0, fmt.Errorf("storage: unknown table %q in query against %q", table, l.t.name)
	}
	ci := l.t.schema.Index(column)
	if ci < 0 {
		return 0, fmt.Errorf("storage: unknown column %q in table %q", column, l.t.name)
	}
	return ci, nil
}

// Layout returns the compile-time column resolver for this table: slots
// are schema positions, and references may be qualified by alias, the
// table name, or nothing. The chain executor compiles its per-step
// predicates against it.
func (t *Table) Layout(alias string) eval.Layout {
	return tableLayout{t: t, alias: alias}
}

// FillRow copies the given schema slots of a row into buf (which must have
// schema arity), leaving other slots untouched. It is the scratch-row
// feeder for compiled programs: callers fill only a program's Refs. Like
// ValueUnlocked it must run inside a read context (a Scan or Search*
// callback, or the bulk-load-then-read phase discipline).
func (t *Table) FillRow(buf []value.Value, row int, slots []int) {
	for _, ci := range slots {
		buf[ci] = t.cellLocked(row, ci)
	}
}

// Execute runs a single-table query against the database. The query's FROM
// clause must name exactly one table that exists here (the archive
// qualifier, if any, is ignored: by the time a query reaches a SkyNode it
// is local). The AREA clause, if present, restricts rows via the HTM index.
//
// Supported shapes are exactly what the federation needs from a component
// database: SELECT COUNT(*) (performance queries), and projections with
// expressions, aliases, *, and TOP.
func (db *DB) Execute(q *sqlparse.Query) (*Result, error) {
	if len(q.From) != 1 {
		return nil, fmt.Errorf("storage: node queries must reference exactly one table, got %d", len(q.From))
	}
	if q.XMatch != nil {
		return nil, fmt.Errorf("storage: XMATCH cannot be evaluated by a single node; it is a federated clause")
	}
	ref := q.From[0]
	t, ok := db.Table(ref.Table)
	if !ok {
		return nil, fmt.Errorf("storage: table %q does not exist", ref.Table)
	}
	var region sphere.Region
	if q.Area != nil {
		if q.Area.IsPolygon() {
			poly, err := sphere.NewPolygon(q.Area.Vertices...)
			if err != nil {
				return nil, fmt.Errorf("storage: AREA polygon: %w", err)
			}
			region = poly
		} else {
			region = sphere.NewCap(q.Area.RA, q.Area.Dec, sphere.Arcsec(q.Area.RadiusArcsec))
		}
	}
	return t.Select(ref.Name(), q, region)
}

// predRowsEvaluated counts rows whose predicate columns were gathered (or
// viewed) into a scan batch. It is test instrumentation for the
// empty-selection bailout and for zone-map pruning: a region whose HTM
// cover yields no candidates, or a block every pruner proves dead, must
// cost zero predicate work (no column fills, no program evaluation).
var predRowsEvaluated atomic.Int64

// zoneBlocksPruned counts scan blocks skipped by the zone maps.
var zoneBlocksPruned atomic.Int64

// PredRowsEvaluated returns the cumulative number of rows whose predicate
// columns were materialized into scan batches (test instrumentation —
// callers assert deltas around a query).
func PredRowsEvaluated() int64 { return predRowsEvaluated.Load() }

// ZoneBlocksPruned returns the cumulative number of base-table scan
// blocks skipped via zone maps (test instrumentation).
func ZoneBlocksPruned() int64 { return zoneBlocksPruned.Load() }

// selScratch is the pooled per-Select scan scratch: the typed batch and
// the candidate-row buffer. Entries are keyed informally by (width,
// capacity): a mismatched entry is released and rebuilt, so steady-state
// query streams against the same tables reuse the same slabs.
type selScratch struct {
	width, cap int
	batch      *eval.TBatch
	rowIdx     []int
}

var selectPool sync.Pool

func getSelScratch(width, capacity int) *selScratch {
	if v := selectPool.Get(); v != nil {
		sc := v.(*selScratch)
		if sc.cap == capacity && sc.width >= width {
			sc.rowIdx = sc.rowIdx[:0]
			sc.batch.ResetFilled()
			return sc
		}
		sc.batch.Release()
	}
	return &selScratch{
		width:  width,
		cap:    capacity,
		batch:  eval.NewTBatch(width, capacity),
		rowIdx: make([]int, 0, capacity),
	}
}

func putSelScratch(sc *selScratch) {
	sc.batch.ResetFilled()
	selectPool.Put(sc)
}

// Select evaluates the query against this table, with an optional region
// constraint (which may also come from q.Area via DB.Execute). alias is
// the name column references may use.
//
// All expressions — WHERE, projections, ORDER BY keys — are compiled once
// against the table layout before the scan starts, so binding errors
// (unknown columns or tables, unknown functions, wrong arities) surface
// up front, independent of the data. The scan runs the typed batch engine
// (eval.CompileTyped) over native column vectors:
//
//   - A base-table scan (no region) walks the table in blocks of
//     ZoneBlockRows rows. Zone maps prune blocks no comparison conjunct
//     can match (see zonemap.go), and surviving blocks are fed to the
//     kernels as zero-copy views straight into the columnar backends — no
//     gather, no boxing.
//   - A region scan collects candidate rows (HTM search order) and
//     gathers only the referenced columns into pooled typed scratch, the
//     WHERE columns for every candidate and the projection/sort columns
//     only at positions that passed.
//
// The result is row-for-row identical to the row-at-a-time scan,
// including TOP semantics: when TOP is satisfied partway through a batch,
// rows past the boundary are discarded unprojected, and a predicate error
// beyond the point where the row-at-a-time scan would have stopped is
// suppressed exactly as that scan (which never reached the failing row)
// would have. Zone-map pruning preserves the same contract (the
// error-exactness conditions live in eval.AnalyzePrune).
func (t *Table) Select(alias string, q *sqlparse.Query, region sphere.Region) (*Result, error) {
	layout := t.Layout(alias)

	res := &Result{}
	var projections []sqlparse.Expr
	if q.Count {
		res.Columns = Schema{{Name: "count", Type: value.IntType}}
	} else {
		for _, item := range q.Select {
			if _, ok := item.Expr.(*sqlparse.Star); ok {
				for _, def := range t.schema {
					res.Columns = append(res.Columns, def)
					projections = append(projections, &sqlparse.ColumnRef{Table: alias, Column: def.Name})
				}
				continue
			}
			name := item.Alias
			if name == "" {
				if cr, ok := item.Expr.(*sqlparse.ColumnRef); ok {
					name = cr.Column
				} else {
					name = item.Expr.String()
				}
			}
			res.Columns = append(res.Columns, ColumnDef{Name: name, Type: exprType(t, item.Expr)})
			projections = append(projections, item.Expr)
		}
	}

	whereProg, err := eval.CompileTyped(q.Where, layout)
	if err != nil {
		return nil, err
	}
	projProgs := make([]*eval.TypedProgram, len(projections))
	for i, p := range projections {
		if projProgs[i], err = eval.CompileTyped(p, layout); err != nil {
			return nil, err
		}
	}
	orderProgs := make([]*eval.TypedProgram, len(q.OrderBy))
	for i, o := range q.OrderBy {
		if orderProgs[i], err = eval.CompileTyped(o.Expr, layout); err != nil {
			return nil, err
		}
	}

	// One typed batch in schema order, refilled per chunk at only the
	// columns some program reads — predicate columns for every candidate,
	// the remaining projection/sort columns only after the filter.
	bs := eval.BatchSize()
	sc := getSelScratch(len(t.schema), bs)
	defer putSelScratch(sc)
	batch := sc.batch
	var evs []*eval.TypedEval
	defer func() {
		for _, ev := range evs {
			ev.Release()
		}
	}()
	newEval := func(p *eval.TypedProgram) *eval.TypedEval {
		ev := p.NewEval(bs)
		evs = append(evs, ev)
		return ev
	}
	whereEv := newEval(whereProg)
	projEvs := make([]*eval.TypedEval, len(projProgs))
	projOut := make([]*eval.Vector, len(projProgs))
	for i, p := range projProgs {
		projEvs[i] = newEval(p)
	}
	orderEvs := make([]*eval.TypedEval, len(orderProgs))
	orderOut := make([]*eval.Vector, len(orderProgs))
	for i, p := range orderProgs {
		orderEvs[i] = newEval(p)
	}
	whereRefs := whereProg.Refs()
	var postLists [][]int
	for _, p := range projProgs {
		postLists = append(postLists, p.Refs())
	}
	for _, p := range orderProgs {
		postLists = append(postLists, p.Refs())
	}
	postRefs := subtractRefs(eval.UnionRefs(postLists...), whereRefs)

	count := int64(0)
	hasOrder := len(q.OrderBy) > 0
	// With ORDER BY the scan cannot stop at TOP rows: all matches are
	// collected with their sort keys, sorted, then truncated.
	var sortKeys [][]value.Value
	done := false

	// evalBatch filters the filled batch of n rows and materializes the
	// surviving rows; fillPost supplies the post-predicate columns for the
	// passing selection (gather or view, per scan mode).
	evalBatch := func(n int, fillPost func(sel []int)) error {
		predRowsEvaluated.Add(int64(n))
		batch.SetLen(n)
		sel, _, err := whereProg.Filter(whereEv, batch, whereEv.Seq(n))
		// TOP without ORDER BY stops the scan once enough rows pass. When
		// that point lies before a failing row, the row-at-a-time scan
		// never evaluated the failing row — suppress the error just as it
		// would have; otherwise the error stands.
		need := -1
		if !q.Count && !hasOrder && q.Top > 0 {
			need = q.Top - len(res.Rows)
		}
		if err != nil && (need < 0 || len(sel) < need) {
			return err
		}
		if need >= 0 && len(sel) >= need {
			sel = sel[:need]
			done = true
		}
		if q.Count {
			count += int64(len(sel))
			return nil
		}
		if len(sel) == 0 {
			return nil
		}
		fillPost(sel)
		for i, p := range projProgs {
			vec, _, err := p.EvalVec(projEvs[i], batch, sel)
			if err != nil {
				return err
			}
			projOut[i] = vec
		}
		for i, p := range orderProgs {
			vec, _, err := p.EvalVec(orderEvs[i], batch, sel)
			if err != nil {
				return err
			}
			orderOut[i] = vec
		}
		for _, r := range sel {
			vals := make([]value.Value, len(projProgs))
			for i := range projProgs {
				vals[i] = projOut[i].ValueAt(r)
			}
			res.Rows = append(res.Rows, vals)
			if hasOrder {
				keys := make([]value.Value, len(orderProgs))
				for i := range orderProgs {
					keys[i] = orderOut[i].ValueAt(r)
				}
				sortKeys = append(sortKeys, keys)
			}
		}
		return nil
	}

	// The prunable WHERE conjuncts serve both scan modes: the contiguous
	// scan skips whole blocks, and the region scan drops HTM candidates
	// from dead blocks below the search (CandPruner).
	var ps eval.PruneSet
	if q.Where != nil {
		ps = eval.AnalyzePrune(q.Where, layout, func(s int) value.Type { return t.schema[s].Type })
	}

	// flushGather is the region-scan path: typed gather of the predicate
	// columns for a batch of candidate rows. An AREA whose HTM cover
	// yields no candidates never reaches it (the batch search only emits
	// non-empty batches), so an empty selection costs zero predicate work.
	var evalErr error
	flushGather := func(rows []int, _ []sphere.Vec) bool {
		for _, s := range whereRefs {
			t.GatherColumn(batch.Col(s), s, rows)
		}
		evalErr = evalBatch(len(rows), func(sel []int) {
			for _, s := range postRefs {
				t.GatherColumnSel(batch.Col(s), s, rows, sel)
			}
		})
		return evalErr == nil && !done
	}

	// scanContig is the base-table path: walk the table block-aligned,
	// skip blocks the zone maps prove dead, and feed surviving ranges to
	// the kernels as zero-copy column views.
	scanContig := func() error {
		n := t.RowCount()
		var zones *zoneSet
		if len(ps.Pruners) > 0 {
			zones = t.zoneMaps(n)
		}
		// Each surviving block is one read-lock window: the zero-copy views
		// must be consumed before the lock drops, because on a disk-backed
		// table a concurrent flush may evict the viewed memory under the
		// write lock. Between blocks the lock is released so appends can
		// interleave with long scans.
		scanBlock := func(blkLo, blkHi int) error {
			t.mu.RLock()
			defer t.mu.RUnlock()
			for lo := blkLo; lo < blkHi && !done; lo += bs {
				hi := lo + bs
				if hi > blkHi {
					hi = blkHi
				}
				for _, s := range whereRefs {
					t.ColumnView(batch.Col(s), s, lo, hi)
				}
				err := evalBatch(hi-lo, func([]int) {
					for _, s := range postRefs {
						t.ColumnView(batch.Col(s), s, lo, hi)
					}
				})
				if err != nil {
					return err
				}
			}
			return nil
		}
		for blkLo := 0; blkLo < n && !done; blkLo += ZoneBlockRows {
			blkHi := blkLo + ZoneBlockRows
			if blkHi > n {
				blkHi = n
			}
			if zones != nil && zones.prunable(blkLo/ZoneBlockRows, ps) {
				zoneBlocksPruned.Add(1)
				continue
			}
			if err := scanBlock(blkLo, blkHi); err != nil {
				return err
			}
		}
		return nil
	}

	if region != nil {
		if t.HasSpatial() {
			// The batch search prunes candidates from dead zone blocks
			// below the HTM walk, so they never reach flushGather.
			sb := &SearchBatch{Rows: sc.rowIdx, Limit: bs, Prune: t.CandPruner(ps)}
			if err := t.SearchRegionBatch(region, sb, flushGather); err != nil {
				return nil, err
			}
			sc.rowIdx = sb.Rows[:0]
		} else {
			// No index: fall back to a full scan with an explicit position
			// test (no candidate pruning — the path exists for tables
			// without an HTM index and stays row-at-a-time). The whole scan
			// is a single read section: the position tests and the gathers
			// must observe one consistent snapshot.
			ra := t.schema.Index("ra")
			de := t.schema.Index("dec")
			if ra < 0 || de < 0 {
				return nil, fmt.Errorf("storage: table %q has no spatial index and no ra/dec columns for AREA", t.name)
			}
			t.BeginRead()
			for row := 0; row < t.rows; row++ {
				raf, _ := t.cellLocked(row, ra).AsFloat()
				def, _ := t.cellLocked(row, de).AsFloat()
				if !region.Contains(sphere.FromRaDec(raf, def)) {
					continue
				}
				sc.rowIdx = append(sc.rowIdx, row)
				if len(sc.rowIdx) == bs {
					ok := flushGather(sc.rowIdx, nil)
					sc.rowIdx = sc.rowIdx[:0]
					if !ok {
						break
					}
				}
			}
			if evalErr == nil && !done && len(sc.rowIdx) > 0 {
				flushGather(sc.rowIdx, nil) // the final partial batch
				sc.rowIdx = sc.rowIdx[:0]
			}
			t.EndRead()
		}
	} else {
		evalErr = scanContig()
	}
	if evalErr != nil {
		return nil, evalErr
	}
	if q.Count {
		res.Rows = append(res.Rows, []value.Value{value.Int(count)})
	}
	if len(q.OrderBy) > 0 {
		sorted, err := eval.SortRows(res.Rows, sortKeys, q.OrderBy)
		if err != nil {
			return nil, err
		}
		res.Rows = sorted
		if q.Top > 0 && len(res.Rows) > q.Top {
			res.Rows = res.Rows[:q.Top]
		}
	}
	return res, nil
}

// subtractRefs returns the slots of a not present in b (both sorted).
func subtractRefs(a, b []int) []int {
	skip := map[int]bool{}
	for _, s := range b {
		skip[s] = true
	}
	var out []int
	for _, s := range a {
		if !skip[s] {
			out = append(out, s)
		}
	}
	return out
}

// exprType infers a static result type for a projection, defaulting to
// FLOAT for computed numerics. It is advisory: the dataset layer carries
// per-cell types anyway.
func exprType(t *Table, e sqlparse.Expr) value.Type {
	switch n := e.(type) {
	case *sqlparse.ColumnRef:
		if ci := t.schema.Index(n.Column); ci >= 0 {
			return t.schema[ci].Type
		}
	case *sqlparse.NumberLit:
		return value.FloatType
	case *sqlparse.StringLit:
		return value.StringType
	case *sqlparse.BoolLit:
		return value.BoolType
	case *sqlparse.BinaryExpr:
		switch n.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=", "LIKE":
			return value.BoolType
		}
		return value.FloatType
	case *sqlparse.UnaryExpr:
		if n.Op == "NOT" {
			return value.BoolType
		}
		return value.FloatType
	case *sqlparse.IsNull, *sqlparse.InList, *sqlparse.Between:
		return value.BoolType
	case *sqlparse.FuncCall:
		return eval.FuncResultType(n, func(arg sqlparse.Expr) value.Type { return exprType(t, arg) })
	}
	return value.FloatType
}

// InsertResult bulk-appends the rows of a result into the table. Schemas
// must be compatible (same arity; values are checked per cell).
func (t *Table) InsertResult(res *Result) error {
	if len(res.Columns) != len(t.schema) {
		return fmt.Errorf("storage: insert arity mismatch: table %q has %d columns, result has %d",
			t.name, len(t.schema), len(res.Columns))
	}
	for _, row := range res.Rows {
		if err := t.Append(row...); err != nil {
			return err
		}
	}
	return nil
}
