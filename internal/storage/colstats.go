package storage

// Per-table statistics surface for the planner: ColumnStats summarizes
// the maintained column statistics (store footer) extended over the
// in-memory tail, and CountRegionCandidates counts a region's index
// candidates without visiting a row. Together they are what a SkyNode's
// StatsSummary RPC serves, replacing the count-star probe as the
// chain-ordering signal.

import (
	"fmt"
	"sort"

	"skyquery/internal/htm"
	"skyquery/internal/sphere"
	"skyquery/internal/stats"
)

// ColumnStats returns per-column statistics summaries covering every row
// of the table at the time of the call (index-aligned with the schema).
// The result is nil for a disk-backed table recovered from a pre-stats
// footer with sealed history: those statistics cannot be reconstructed
// without reading the cold tier, and callers fall back to
// statistics-free (count-star) planning. Summaries are cached at the
// current row count; append-only tables make that the only staleness
// signal.
func (t *Table) ColumnStats() []*stats.ColSummary {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	t.mu.RLock()
	n := t.rows
	if t.statsRows == n && t.statsCache != nil {
		t.mu.RUnlock()
		return t.statsCache
	}
	cols := t.colStatsLocked(n)
	t.mu.RUnlock()
	if cols == nil {
		t.statsCache, t.statsRows = nil, n
		return nil
	}
	out := make([]*stats.ColSummary, len(cols))
	for i, c := range cols {
		out[i] = stats.Summarize(c)
	}
	t.statsCache, t.statsRows = out, n
	return out
}

// colStatsLocked builds the full-table column statistics at n rows: the
// persisted statistics of the sealed prefix (cloned) with the in-memory
// tail folded on top, or a full scan for plain in-memory tables. The
// caller holds the read lock.
func (t *Table) colStatsLocked(n int) []*stats.Col {
	var cols []*stats.Col
	base := 0
	if t.persist != nil {
		ps := t.persist.colStats
		if ps == nil {
			return nil // pre-stats sealed history: nothing to extend
		}
		cols = make([]*stats.Col, len(ps))
		for i, c := range ps {
			cols[i] = c.Clone()
		}
		base = t.persist.durable
	} else {
		cols = statsForSchema(t.schema)
	}
	for ci, col := range t.cols {
		foldColStats(cols[ci], col, base, n, t.memBase)
	}
	return cols
}

// CountRegionCandidates returns the number of HTM index candidates of a
// region: rows whose leaf trixel intersects the cover of the region's
// bounding cap, counted by two binary searches per cover range — no row
// is visited, no position computed. An upper bound on the rows a
// SearchRegion of the same region would test, at pure index-walk cost.
func (t *Table) CountRegionCandidates(reg sphere.Region) (int, error) {
	t.mu.RLock()
	s := t.spatial
	t.mu.RUnlock()
	if s == nil {
		return 0, fmt.Errorf("storage: table %q has no spatial index", t.name)
	}
	if s.dirty.Load() {
		s.rebuildMu.Lock()
		if s.dirty.Load() {
			t.mu.RLock()
			t.rebuildSpatialLocked()
			t.mu.RUnlock()
		}
		s.rebuildMu.Unlock()
	}
	c := reg.Bounding()
	sub := htm.LevelForRadius(c.Radius)
	if sub > s.cfg.Level {
		sub = s.cfg.Level
	}
	cov := htm.CoverCap(c, sub, s.cfg.Level)

	t.mu.RLock()
	defer t.mu.RUnlock()
	sn := s.snap.Load()
	count := 0
	cov.Each(func(r htm.Range, _ bool) bool {
		lo := sort.Search(len(sn.order), func(i int) bool { return sn.ids[sn.order[i]] >= r.Lo })
		hi := sort.Search(len(sn.order), func(i int) bool { return sn.ids[sn.order[i]] > r.Hi })
		count += hi - lo
		return true
	})
	return count, nil
}
