// Package storage is the embedded database engine behind each SkyNode: a
// columnar store with typed columns, predicate scans, an HTM spatial
// index for the range searches of §5.4, temporary tables for the
// cross-match chain (§5.3), a small single-table SQL executor that
// answers the Portal's performance queries, and an optional disk-backed
// tier (Store) so archives survive restarts and grow past RAM.
//
// The paper treats component DBMSs as black boxes; this package is the
// concrete box the reproduction ships so the federation is self-contained.
//
// # On-disk format
//
// A disk-backed table (store.go) is a directory of per-column block
// files holding sealed ZoneBlockRows-row blocks (blockfile.go), an
// htm.bin of per-row HTM leaf IDs, a footer that is the atomic commit
// point — schema, durable row count, and per-block offset/size/CRC plus
// zone statistics and HTM ID ranges (footer.go) — and a write-ahead log
// framing every acknowledged append with a per-record CRC (wal.go).
// Recovery reads the footer, replays the WAL tail and truncates a torn
// tail; the full protocol and its invariants are documented in store.go.
// Sealed blocks beyond the hot budget are evicted from Table memory and
// hydrate back on demand through the ColumnView/GatherColumn seam.
//
// Scans run the typed batch engine (eval.CompileTyped) straight over the
// columnar backends. Two disciplines matter:
//
//   - Read discipline: the typed column views (Int64Col, ColumnView and
//     the Gather* helpers in typedcol.go) hand out the live backing
//     slices. Like ValueUnlocked they must only be used inside a read
//     context — a Scan/Search* callback, a BeginRead/EndRead section, or
//     the federation's bulk-load-then-read phase discipline — and never
//     written through.
//   - Zone-map discipline (zonemap.go): per-ZoneBlockRows-block min/max +
//     null-count statistics are built lazily at first scan after load and
//     invalidated by row-count changes. A base-table scan consults them
//     through eval.AnalyzePrune before touching a block, so predicates
//     that exclude whole blocks never gather a cell or run a kernel; the
//     pruning conditions are exact about values, NULLs, NaN and the row
//     engines' error order. The same statistics also prune *below* the
//     HTM searches: the batch search variants (SearchCapBatch,
//     SearchRegionBatch) consult a CandPruner (candprune.go) per
//     candidate row, dropping candidates from provably dead blocks before
//     a position is computed or a cell gathered, and yield the survivors
//     as candidate row blocks instead of per-row callbacks.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"skyquery/internal/htm"
	"skyquery/internal/sphere"
	"skyquery/internal/stats"
	"skyquery/internal/value"
)

// ColumnDef describes one column of a table.
type ColumnDef struct {
	Name string
	Type value.Type
}

// Schema is an ordered list of column definitions.
type Schema []ColumnDef

// Index returns the position of the named column, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// column is typed columnar storage with per-cell null flags.
type column interface {
	append(v value.Value) error
	get(i int) value.Value
	len() int
}

type intColumn struct {
	vals  []int64
	nulls []bool
}

func (c *intColumn) append(v value.Value) error {
	if v.IsNull() {
		c.vals = append(c.vals, 0)
		c.nulls = append(c.nulls, true)
		return nil
	}
	if v.Type() != value.IntType {
		return fmt.Errorf("storage: cannot store %v in INT column", v.Type())
	}
	c.vals = append(c.vals, v.AsInt())
	c.nulls = append(c.nulls, false)
	return nil
}

func (c *intColumn) get(i int) value.Value {
	if c.nulls[i] {
		return value.Null
	}
	return value.Int(c.vals[i])
}

func (c *intColumn) len() int { return len(c.vals) }

type floatColumn struct {
	vals  []float64
	nulls []bool
}

func (c *floatColumn) append(v value.Value) error {
	if v.IsNull() {
		c.vals = append(c.vals, 0)
		c.nulls = append(c.nulls, true)
		return nil
	}
	f, ok := v.AsFloat()
	if !ok {
		return fmt.Errorf("storage: cannot store %v in FLOAT column", v.Type())
	}
	c.vals = append(c.vals, f)
	c.nulls = append(c.nulls, false)
	return nil
}

func (c *floatColumn) get(i int) value.Value {
	if c.nulls[i] {
		return value.Null
	}
	return value.Float(c.vals[i])
}

func (c *floatColumn) len() int { return len(c.vals) }

type stringColumn struct {
	vals  []string
	nulls []bool
}

func (c *stringColumn) append(v value.Value) error {
	if v.IsNull() {
		c.vals = append(c.vals, "")
		c.nulls = append(c.nulls, true)
		return nil
	}
	if v.Type() != value.StringType {
		return fmt.Errorf("storage: cannot store %v in STRING column", v.Type())
	}
	c.vals = append(c.vals, v.AsString())
	c.nulls = append(c.nulls, false)
	return nil
}

func (c *stringColumn) get(i int) value.Value {
	if c.nulls[i] {
		return value.Null
	}
	return value.String(c.vals[i])
}

func (c *stringColumn) len() int { return len(c.vals) }

type boolColumn struct {
	vals  []bool
	nulls []bool
}

func (c *boolColumn) append(v value.Value) error {
	if v.IsNull() {
		c.vals = append(c.vals, false)
		c.nulls = append(c.nulls, true)
		return nil
	}
	if v.Type() != value.BoolType {
		return fmt.Errorf("storage: cannot store %v in BOOL column", v.Type())
	}
	c.vals = append(c.vals, v.AsBool())
	c.nulls = append(c.nulls, false)
	return nil
}

func (c *boolColumn) get(i int) value.Value {
	if c.nulls[i] {
		return value.Null
	}
	return value.Bool(c.vals[i])
}

func (c *boolColumn) len() int { return len(c.vals) }

func newColumn(t value.Type) (column, error) {
	switch t {
	case value.IntType:
		return &intColumn{}, nil
	case value.FloatType:
		return &floatColumn{}, nil
	case value.StringType:
		return &stringColumn{}, nil
	case value.BoolType:
		return &boolColumn{}, nil
	}
	return nil, fmt.Errorf("storage: unsupported column type %v", t)
}

// Table is a columnar table. Concurrent readers are safe with each
// other, and appends are safe with concurrent reads: every read path
// runs under the table's read lock (scans and searches take it
// internally; external multi-call read sections bracket themselves with
// BeginRead/EndRead), so a reader sees a consistent row-count snapshot
// and never a half-appended row. Rows appended mid-query simply miss
// that query's snapshot, exactly as if the query had started earlier.
type Table struct {
	name   string
	schema Schema

	mu      sync.RWMutex
	cols    []column
	rows    int
	spatial *spatialIndex

	// Disk-backed tables (store.go): cols holds only rows [memBase, rows)
	// — the hot sealed blocks plus the unsealed tail. memBase is always
	// ZoneBlockRows-aligned and 0 for plain in-memory tables; rows below
	// it are cold and hydrate from sealed blocks via persist.
	memBase int
	persist *tableStore

	// zones caches the zone maps of the first zones.rows rows (see
	// zonemap.go); append-only tables make row count the only staleness
	// signal. zoneMu serializes the lazy rebuild across concurrent scans.
	zoneMu sync.Mutex
	zones  *zoneSet

	// statsCache caches ColumnStats summaries at statsRows rows, under the
	// same append-only staleness rule as zones.
	statsMu    sync.Mutex
	statsCache []*stats.ColSummary
	statsRows  int
}

// NewTable creates a detached table (not registered in any DB).
func NewTable(name string, schema Schema) (*Table, error) {
	if len(schema) == 0 {
		return nil, fmt.Errorf("storage: table %q needs at least one column", name)
	}
	seen := map[string]bool{}
	t := &Table{name: name, schema: append(Schema(nil), schema...)}
	for _, def := range schema {
		if seen[def.Name] {
			return nil, fmt.Errorf("storage: duplicate column %q in table %q", def.Name, name)
		}
		seen[def.Name] = true
		c, err := newColumn(def.Type)
		if err != nil {
			return nil, err
		}
		t.cols = append(t.cols, c)
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns a copy of the table schema.
func (t *Table) Schema() Schema {
	return append(Schema(nil), t.schema...)
}

// RowCount returns the number of rows.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// Append adds one row; vals must match the schema arity and types
// (NULL is accepted in any column). On a disk-backed table the row is
// framed into the write-ahead log before Append returns — a returned nil
// is the durability acknowledgement — and filling a block may trigger a
// flush that seals blocks and evicts cold ones.
func (t *Table) Append(vals ...value.Value) error {
	if len(vals) != len(t.schema) {
		return fmt.Errorf("storage: table %q expects %d values, got %d", t.name, len(t.schema), len(vals))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	memLen := t.rows - t.memBase
	for i, v := range vals {
		if err := t.cols[i].append(v); err != nil {
			// Roll back the partial row to keep columns aligned.
			for j := 0; j < i; j++ {
				t.truncateColumnLocked(j, memLen)
			}
			return fmt.Errorf("storage: table %q column %q: %w", t.name, t.schema[i].Name, err)
		}
	}
	if t.persist != nil {
		// Log after the memory append: a crash in between loses a row that
		// was never acknowledged, while a log failure rolls memory back, so
		// an acknowledged row is always in both places.
		if err := t.persist.wal.appendRow(vals); err != nil {
			for j := range t.cols {
				t.truncateColumnLocked(j, memLen)
			}
			return fmt.Errorf("storage: table %q: %w", t.name, err)
		}
	}
	t.rows++
	if t.spatial != nil {
		t.spatial.dirty.Store(true)
	}
	if t.persist != nil && t.rows%ZoneBlockRows == 0 &&
		t.rows-t.persist.durable >= t.persist.opts.FlushBlocks*ZoneBlockRows {
		if err := t.persist.flushLocked(); err != nil {
			// The row itself is durable (memory + WAL); surface the failed
			// seal so the caller can stop ingesting.
			return fmt.Errorf("storage: table %q flush: %w", t.name, err)
		}
	}
	return nil
}

// BeginRead acquires the table's read lock for a multi-call read section
// — a sequence of ValueUnlocked/Gather*/Fill* calls that must observe a
// consistent snapshot against concurrent appends. Pair with EndRead.
// Do not call Append, or any locked accessor (Value, Row, RowCount,
// Scan, Search*), from inside the section.
func (t *Table) BeginRead() { t.mu.RLock() }

// EndRead releases the read lock taken by BeginRead.
func (t *Table) EndRead() { t.mu.RUnlock() }

// cellLocked returns the cell at (absolute row, col); the caller is in a
// read context. Rows below memBase hydrate from the cold tier.
func (t *Table) cellLocked(row, ci int) value.Value {
	if row >= t.memBase {
		return t.cols[ci].get(row - t.memBase)
	}
	return t.persist.coldCell(ci, row)
}

// rowLocked returns a copy of row i (read context).
func (t *Table) rowLocked(i int) []value.Value {
	out := make([]value.Value, len(t.cols))
	for c := range t.cols {
		out[c] = t.cellLocked(i, c)
	}
	return out
}

func (t *Table) truncateColumnLocked(i, n int) {
	switch c := t.cols[i].(type) {
	case *intColumn:
		c.vals = c.vals[:n]
		c.nulls = c.nulls[:n]
	case *floatColumn:
		c.vals = c.vals[:n]
		c.nulls = c.nulls[:n]
	case *stringColumn:
		c.vals = c.vals[:n]
		c.nulls = c.nulls[:n]
	case *boolColumn:
		c.vals = c.vals[:n]
		c.nulls = c.nulls[:n]
	}
}

// Value returns the cell at (row, col).
func (t *Table) Value(row, col int) value.Value {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.cellLocked(row, col)
}

// ValueUnlocked is Value without the read lock, for code that is already
// inside a read context — a Search* callback, a BeginRead/EndRead
// section, or the bulk-load-then-read phase discipline the federation
// follows (row environments created by Env read the same way). Callers
// outside such a context must use Value.
func (t *Table) ValueUnlocked(row, col int) value.Value {
	return t.cellLocked(row, col)
}

// Row returns a copy of row i.
func (t *Table) Row(i int) []value.Value {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rowLocked(i)
}

// Scan calls fn for each row index in order until fn returns false.
// The callback must not mutate the table.
func (t *Table) Scan(fn func(row int) bool) {
	t.mu.RLock()
	n := t.rows
	t.mu.RUnlock()
	for i := 0; i < n; i++ {
		if !fn(i) {
			return
		}
	}
}

// FillColumn gathers column ci of the given table rows into dst by batch
// position: dst[i] = cell(rows[i], ci). It is the column-major feeder for
// batch programs (eval.CompileBatch): scan sites collect candidate row
// indices, then gather only the columns a program references. Like
// ValueUnlocked it must run inside a read context (a Scan or Search*
// callback, or the bulk-load-then-read phase discipline).
func (t *Table) FillColumn(dst []value.Value, ci int, rows []int) {
	for i, r := range rows {
		dst[i] = t.cellLocked(r, ci)
	}
}

// FillColumnSel is FillColumn restricted to the batch positions in sel:
// dst[i] = cell(rows[i], ci) for i in sel. Scan sites use it to gather
// projection columns only for the rows that survived the predicate.
func (t *Table) FillColumnSel(dst []value.Value, ci int, rows []int, sel []int) {
	for _, i := range sel {
		dst[i] = t.cellLocked(rows[i], ci)
	}
}

// SpatialConfig designates the position columns of a table and the HTM
// leaf level at which objects are indexed.
type SpatialConfig struct {
	RACol, DecCol string
	// Level is the HTM leaf level; 0 picks a sensible default (level 14,
	// about 5.5 milli-degree trixels).
	Level int
}

// DefaultSpatialLevel is used when SpatialConfig.Level is zero.
const DefaultSpatialLevel = 14

type spatialIndex struct {
	cfg   SpatialConfig
	raIdx int
	deIdx int

	// snap is the published index data. Snapshots are immutable once
	// stored: a rebuild extends a copy and publishes a fresh snapshot, so
	// a search walking an older one is never disturbed — it just sees the
	// rows that existed when that snapshot was built.
	snap atomic.Pointer[spatialSnap]

	// dirty marks the index stale after appends. It is rebuilt lazily on
	// the next search, under rebuildMu rather than the table's write lock:
	// a search queuing a write lock while sibling searches hold read locks
	// would deadlock against their nested read acquisitions (Position,
	// Value, Row inside search callbacks).
	dirty     atomic.Bool
	rebuildMu sync.Mutex
}

// spatialSnap is one immutable build of the index data.
type spatialSnap struct {
	ids   []htm.ID // per-row leaf trixel, in row order
	order []int32  // row indices sorted by ids
}

// EnableSpatial builds an HTM index over the given position columns.
// Subsequent appends mark the index dirty; it is rebuilt on first use.
func (t *Table) EnableSpatial(cfg SpatialConfig) error {
	if cfg.Level == 0 {
		cfg.Level = DefaultSpatialLevel
	}
	if cfg.Level < 1 || cfg.Level > htm.MaxLevel {
		return fmt.Errorf("storage: spatial level %d out of range", cfg.Level)
	}
	ra := t.schema.Index(cfg.RACol)
	de := t.schema.Index(cfg.DecCol)
	if ra < 0 || de < 0 {
		return fmt.Errorf("storage: spatial columns %q/%q not in table %q", cfg.RACol, cfg.DecCol, t.name)
	}
	if t.schema[ra].Type != value.FloatType || t.schema[de].Type != value.FloatType {
		return fmt.Errorf("storage: spatial columns must be FLOAT")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spatial = &spatialIndex{cfg: cfg, raIdx: ra, deIdx: de}
	t.rebuildSpatialLocked()
	return nil
}

// HasSpatial reports whether the table has an HTM index.
func (t *Table) HasSpatial() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.spatial != nil
}

// SpatialLevel returns the HTM leaf level of the index, or 0.
func (t *Table) SpatialLevel() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.spatial == nil {
		return 0
	}
	return t.spatial.cfg.Level
}

// rebuildSpatialLocked extends the index to the table's current rows and
// publishes a fresh snapshot. The caller must hold t.mu (either mode
// suffices: the read lock excludes appends, and writers to the index
// itself serialize on rebuildMu or hold the write lock as EnableSpatial
// does). IDs of rows covered by the previous snapshot are reused, never
// recomputed — appends extend, they do not move rows — so incremental
// rebuilds cost only the new suffix plus the sort, and never touch the
// cold tier.
func (t *Table) rebuildSpatialLocked() {
	s := t.spatial
	var ids []htm.ID
	if old := s.snap.Load(); old != nil && len(old.ids) <= t.rows {
		// Full-capacity slice: the first append below copies, keeping the
		// published snapshot immutable.
		ids = old.ids[:len(old.ids):len(old.ids)]
	}
	for i := len(ids); i < t.rows; i++ {
		ids = append(ids, htm.Lookup(t.positionLocked(i), s.cfg.Level))
	}
	order := make([]int32, len(ids))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		// Tie-break equal trixels by row order so enumeration within one
		// trixel is append order — a shard loaded with any subset of the
		// table in the same relative order ties identically.
		ia, ib := ids[order[a]], ids[order[b]]
		if ia != ib {
			return ia < ib
		}
		return order[a] < order[b]
	})
	s.snap.Store(&spatialSnap{ids: ids, order: order})
	s.dirty.Store(false)
}

func (t *Table) positionLocked(row int) sphere.Vec {
	ra, _ := t.cellLocked(row, t.spatial.raIdx).AsFloat()
	de, _ := t.cellLocked(row, t.spatial.deIdx).AsFloat()
	return sphere.FromRaDec(ra, de)
}

// enableSpatialSeeded is EnableSpatial for recovery: the IDs of sealed
// rows come from htm.bin instead of being recomputed (which would
// hydrate every cold block); any missing suffix — replayed WAL rows, or
// a truncated ID file — is computed from in-memory positions.
func (t *Table) enableSpatialSeeded(cfg SpatialConfig, ids []htm.ID) error {
	ra := t.schema.Index(cfg.RACol)
	de := t.schema.Index(cfg.DecCol)
	if ra < 0 || de < 0 {
		return fmt.Errorf("storage: spatial columns %q/%q not in table %q", cfg.RACol, cfg.DecCol, t.name)
	}
	if cfg.Level < 1 || cfg.Level > htm.MaxLevel {
		return fmt.Errorf("storage: spatial level %d out of range", cfg.Level)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(ids) > t.rows {
		ids = ids[:t.rows]
	}
	t.spatial = &spatialIndex{cfg: cfg, raIdx: ra, deIdx: de}
	t.spatial.snap.Store(&spatialSnap{ids: ids[:len(ids):len(ids)], order: nil})
	t.rebuildSpatialLocked()
	return nil
}

// Position returns the unit vector of a row's position. It requires a
// spatial index.
func (t *Table) Position(row int) (sphere.Vec, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.spatial == nil {
		return sphere.Vec{}, fmt.Errorf("storage: table %q has no spatial index", t.name)
	}
	return t.positionLocked(row), nil
}

// SearchCap calls fn with each row whose position lies inside the cap,
// using the HTM index: inner cover trixels are accepted wholesale, partial
// trixels are tested individually (§5.4). fn returning false stops the
// search. Rows arrive in index (trixel) order, not row order.
//
// Searches are safe for concurrent use with other readers, including
// callbacks that read the table (Position, Value, Row, Env lookups); the
// parallel chain executor relies on this. Appends may run concurrently:
// the search walks an immutable index snapshot under the read lock, so
// it sees a consistent prefix of the table and never a fresher row.
func (t *Table) SearchCap(c sphere.Cap, fn func(row int) bool) error {
	return t.searchCap(c, false, nil, func(row int, _ sphere.Vec) bool { return fn(row) })
}

// SearchCapPos is SearchCap but hands the callback each row's unit-vector
// position as well. Chain steps use it on their hot path: the search
// already computes positions for partial-trixel containment tests, and
// per-candidate Position calls from inside callbacks would re-take the
// read lock for every candidate — a shared-cache-line cost that throttles
// the parallel executor.
func (t *Table) SearchCapPos(c sphere.Cap, fn func(row int, pos sphere.Vec) bool) error {
	return t.searchCap(c, true, nil, fn)
}

// searchCap is the shared HTM walk behind every cap search. prune, when
// non-nil, is consulted per candidate row before its position is computed
// or any containment test runs: a pruned row is skipped entirely. It is
// the hook the zone-map candidate pruning (CandPruner) plugs in under the
// index walk.
func (t *Table) searchCap(c sphere.Cap, needPos bool, prune func(row int) bool, fn func(row int, pos sphere.Vec) bool) error {
	t.mu.RLock()
	s := t.spatial
	t.mu.RUnlock()
	if s == nil {
		return fmt.Errorf("storage: table %q has no spatial index", t.name)
	}
	if s.dirty.Load() {
		s.rebuildMu.Lock()
		if s.dirty.Load() {
			t.mu.RLock()
			t.rebuildSpatialLocked()
			t.mu.RUnlock()
		}
		s.rebuildMu.Unlock()
	}

	// Size the cover subdivision to the cap and clamp it to the leaf level.
	sub := htm.LevelForRadius(c.Radius)
	if sub > s.cfg.Level {
		sub = s.cfg.Level
	}
	cov := htm.CoverCap(c, sub, s.cfg.Level)

	t.mu.RLock()
	defer t.mu.RUnlock()
	sn := s.snap.Load()
	cov.Each(func(r htm.Range, test bool) bool {
		lo := sort.Search(len(sn.order), func(i int) bool { return sn.ids[sn.order[i]] >= r.Lo })
		for i := lo; i < len(sn.order) && sn.ids[sn.order[i]] <= r.Hi; i++ {
			row := int(sn.order[i])
			if prune != nil && prune(row) {
				continue
			}
			var pos sphere.Vec
			if test || needPos {
				pos = t.positionLocked(row)
			}
			if test && !c.Contains(pos) {
				continue
			}
			if !fn(row, pos) {
				return false
			}
		}
		return true
	})
	return nil
}

// SearchRegion is SearchCap generalized to any region: candidates come
// from the cover of the region's bounding cap and every candidate is
// tested against the region itself.
func (t *Table) SearchRegion(reg sphere.Region, fn func(row int) bool) error {
	return t.SearchRegionPos(reg, func(row int, _ sphere.Vec) bool { return fn(row) })
}

// SearchRegionPos is SearchRegion with the position-passing callback of
// SearchCapPos.
func (t *Table) SearchRegionPos(reg sphere.Region, fn func(row int, pos sphere.Vec) bool) error {
	if c, ok := reg.(sphere.Cap); ok {
		return t.SearchCapPos(c, fn)
	}
	bound := reg.Bounding()
	return t.searchCap(bound, true, nil, func(row int, pos sphere.Vec) bool {
		if !reg.Contains(pos) {
			return true
		}
		return fn(row, pos)
	})
}

// SearchBatch carries the configuration and reusable buffers of the
// block-aligned batch searches (SearchCapBatch, SearchRegionBatch), which
// yield candidate row blocks instead of per-row callbacks.
type SearchBatch struct {
	// Rows and Pos are the caller-owned candidate buffers; the capacity of
	// Rows bounds the batch size. The search appends into them and hands
	// the filled prefixes to the callback. Pos may be nil when the caller
	// does not need candidate positions.
	Rows []int
	Pos  []sphere.Vec
	// Limit is the flush threshold: a batch is emitted once it holds this
	// many candidates (the final batch may be smaller). 0 or anything
	// beyond cap(Rows) clamps to cap(Rows). Adaptive sites re-read their
	// eval.BatchSizer into Limit before each search.
	Limit int
	// Prune, when set, drops candidates whose zone block it proves dead —
	// before the candidate's position is computed, before any containment
	// test, and before the candidate can enter a batch.
	Prune *CandPruner
	// Accept, when set, filters candidates before buffering (the chain
	// steps' AREA containment test). It runs after Prune.
	Accept func(row int, pos sphere.Vec) bool
}

// SearchCapBatch is SearchCapPos yielding candidate row blocks: fn
// receives batches of up to the configured limit, in search order, with
// zone-pruned candidates already removed (see SearchBatch). The slices
// passed to fn alias the SearchBatch buffers and are only valid during
// the call; fn returning false stops the search (no final flush).
func (t *Table) SearchCapBatch(c sphere.Cap, sb *SearchBatch, fn func(rows []int, pos []sphere.Vec) bool) error {
	limit := sb.Limit
	if cp := cap(sb.Rows); limit <= 0 || limit > cp {
		limit = cp
	}
	if limit <= 0 {
		return fmt.Errorf("storage: batch search on %q needs a row buffer with capacity", t.name)
	}
	sb.Rows = sb.Rows[:0]
	if sb.Pos != nil {
		sb.Pos = sb.Pos[:0]
	}
	flush := func() bool {
		candRowsGathered.Add(int64(len(sb.Rows)))
		ok := fn(sb.Rows, sb.Pos)
		sb.Rows = sb.Rows[:0]
		if sb.Pos != nil {
			sb.Pos = sb.Pos[:0]
		}
		return ok
	}
	var prune func(int) bool
	if sb.Prune != nil {
		prune = sb.Prune.Pruned
	}
	stopped := false
	needPos := sb.Pos != nil || sb.Accept != nil
	err := t.searchCap(c, needPos, prune, func(row int, pos sphere.Vec) bool {
		if sb.Accept != nil && !sb.Accept(row, pos) {
			return true
		}
		sb.Rows = append(sb.Rows, row)
		if sb.Pos != nil {
			sb.Pos = append(sb.Pos, pos)
		}
		if len(sb.Rows) >= limit {
			if !flush() {
				stopped = true
				return false
			}
		}
		return true
	})
	if err != nil || stopped {
		return err
	}
	if len(sb.Rows) > 0 {
		flush()
	}
	return nil
}

// SearchRegionBatch is SearchCapBatch generalized to any region, with the
// region containment test folded in ahead of sb.Accept.
func (t *Table) SearchRegionBatch(reg sphere.Region, sb *SearchBatch, fn func(rows []int, pos []sphere.Vec) bool) error {
	if c, ok := reg.(sphere.Cap); ok {
		return t.SearchCapBatch(c, sb, fn)
	}
	inner := sb.Accept
	sb.Accept = func(row int, pos sphere.Vec) bool {
		if !reg.Contains(pos) {
			return false
		}
		return inner == nil || inner(row, pos)
	}
	defer func() { sb.Accept = inner }()
	return t.SearchCapBatch(reg.Bounding(), sb, fn)
}
