package eval

// This file is the fourth and fastest engine of the expression stack:
// CompileTyped compiles an expression into a program evaluated over typed
// column vectors (vector.go) — []int64 / []float64 / []string / []bool
// payloads with a null mask — instead of the boxed []value.Value columns
// the PR-3 batch engine (batch.go) reads. The execution model (selection
// vectors, flattened AND/OR spines over a shrinking live set, batches of
// BatchSize rows) and the error contract (evaluation stops at the first
// selected row whose scalar evaluation would error; errRow reports it) are
// identical to the boxed engine, which stays alongside the interpreter and
// the compiled scalar engine as cross-validation references: the four-way
// differential tests and FuzzBatchDifferential hold all four to agreement
// on values and on the first erroring row.
//
// Kernels dispatch per *batch* on the operand vectors' kinds, so the per-
// row loops run over raw native slices: comparisons inline the int64/
// float64/string/bool paths (mirroring value.Compare bug-for-bug,
// including the float widening of int64 operands and NaN-compares-equal),
// arithmetic inlines the int64 and float64 paths of value.Arith
// (wraparound integer + - * %, always-float division, identical
// division-by-zero errors), AND/OR fold member truth states with exact
// Kleene semantics over arbitrary operand kinds, and constant-pattern LIKE
// runs its matcher straight over the string payload. Anything else — a
// boxed operand column, a mixed-kind pair, scalar functions outside the
// float fast path, IN/BETWEEN/COALESCE — falls back per element to the
// very kernels the row engines share, so the typed engine cannot drift
// from them on the long tail.
//
// Programs are immutable after CompileTyped and safe for concurrent use.
// Per-evaluation scratch lives in a TypedEval (never share one between
// goroutines); its vectors, selection buffers and state masks come from
// the slab pools in vector.go and return there on Release.

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
)

// tnodeFunc is a typed batch node body: it evaluates the subexpression at
// the selected rows, returning a vector valid at every selected row below
// errRow (-1 when err is nil).
type tnodeFunc func(ev *TypedEval, b *TBatch, sel []int) (*Vector, int, error)

// texpr is one compiled typed node: a generic body, or a flattened n-ary
// conjunction/disjunction evaluated over a shrinking live selection.
type texpr struct {
	fn    tnodeFunc
	and   []texpr
	or    []texpr
	vec   int // output vector id for n-ary nodes
	state int // truth-state buffer id for n-ary nodes
	live  int // live-selection buffer id for n-ary nodes
}

// Truth states the n-ary AND/OR fold tracks per row. sOther is a non-bool,
// non-NULL accumulator value (only possible after the first member; it
// folds exactly like value.And/value.Or treat such operands).
const (
	sFalse uint8 = iota
	sTrue
	sNull
	sOther
)

// stateAt classifies one row of a member's result vector.
func stateAt(v *Vector, r int) uint8 {
	switch v.Kind {
	case VecBool:
		if v.Nulls != nil && v.Nulls[r] {
			return sNull
		}
		if v.Bools[r] {
			return sTrue
		}
		return sFalse
	case VecBoxed:
		val := v.Boxed[r]
		if val.Type() == value.BoolType {
			if val.AsBool() {
				return sTrue
			}
			return sFalse
		}
		if val.IsNull() {
			return sNull
		}
		return sOther
	default:
		if v.Nulls != nil && v.Nulls[r] {
			return sNull
		}
		return sOther
	}
}

// andFold is value.And over truth states: FALSE dominates, then NULL, and
// any non-bool operand surviving to the fold acts as FALSE (And(5, TRUE)
// is FALSE, And(5, NULL) is NULL — see value.And).
func andFold(a, m uint8) uint8 {
	switch {
	case a == sFalse || m == sFalse:
		return sFalse
	case a == sNull || m == sNull:
		return sNull
	case a == sTrue && m == sTrue:
		return sTrue
	default:
		return sFalse
	}
}

// orFold is value.Or over truth states: TRUE dominates, then NULL.
func orFold(a, m uint8) uint8 {
	switch {
	case a == sTrue || m == sTrue:
		return sTrue
	case a == sNull || m == sNull:
		return sNull
	default:
		return sFalse
	}
}

func (n *texpr) eval(ev *TypedEval, b *TBatch, sel []int) (*Vector, int, error) {
	switch {
	case n.and != nil:
		return n.evalNary(ev, b, sel, n.and, true)
	case n.or != nil:
		return n.evalNary(ev, b, sel, n.or, false)
	default:
		return n.fn(ev, b, sel)
	}
}

// evalNary evaluates a flattened AND (isAnd) or OR spine exactly like the
// boxed engine's evalAnd/evalOr: the accumulator starts as the first
// member's truth state, later members run only at still-undecided rows —
// AND: not strictly FALSE; OR: not TRUE — and a member's failure truncates
// the live set to the rows before it while evaluation continues, so the
// reported error is the lowest row's, as the sequential scan surfaces it.
func (n *texpr) evalNary(ev *TypedEval, b *TBatch, sel []int, members []texpr, isAnd bool) (*Vector, int, error) {
	st := ev.states[n.state]
	live := ev.sels[n.live][:0]
	m0, errRow, err := members[0].eval(ev, b, sel)
	for _, r := range selBefore(sel, errRow) {
		s := stateAt(m0, r)
		st[r] = s
		if isAnd && s == sFalse || !isAnd && s == sTrue {
			continue
		}
		live = append(live, r)
	}
	for i := 1; i < len(members); i++ {
		if len(live) == 0 {
			break
		}
		mo, cer, cerr := members[i].eval(ev, b, live)
		if cerr != nil {
			// cer is a live row, so strictly below any previous bound.
			errRow, err = cer, cerr
			live = selBefore(live, cer)
		}
		w := 0
		for _, r := range live {
			var s uint8
			if isAnd {
				s = andFold(st[r], stateAt(mo, r))
			} else {
				s = orFold(st[r], stateAt(mo, r))
			}
			st[r] = s
			if isAnd && s == sFalse || !isAnd && s == sTrue {
				continue
			}
			live[w] = r
			w++
		}
		live = live[:w]
	}
	// Every row below errRow is decided {FALSE, TRUE, NULL}: a spine has at
	// least two members, and a row can only leave the live set decided (or
	// at/after the error bound, where the output is never read).
	out := &ev.vecs[n.vec]
	ob, on := out.BoolBuf(ev.cap)
	for _, r := range selBefore(sel, errRow) {
		switch st[r] {
		case sTrue:
			ob[r], on[r] = true, false
		case sNull:
			on[r] = true
		default:
			ob[r], on[r] = false, false
		}
	}
	return out, errRow, err
}

// TypedProgram is a compiled typed batch expression. Like BatchProgram it
// is immutable and safe for concurrent use; all mutable evaluation state
// lives in a TypedEval.
type TypedProgram struct {
	root   texpr
	refs   []int
	width  int
	nVec   int
	nSel   int
	nState int
	consts []constFill
}

// TypedEval is the per-goroutine scratch for one TypedProgram: result
// vectors (one per node), truth-state and live-selection buffers for the
// AND/OR spines, and the gathered scratch row the scalar-tail nodes
// evaluate over. All of it comes from the slab pools; Release returns it.
type TypedEval struct {
	vecs    []Vector
	states  [][]uint8
	sels    [][]int
	row     []value.Value
	seq     []int
	out     []int
	noNulls []bool
	cap     int
}

// NewEval allocates (pool-backed) evaluation scratch for batches of up to
// capacity rows. It is valid on a nil program (the scratch still provides
// Seq for callers that batch without a predicate).
func (p *TypedProgram) NewEval(capacity int) *TypedEval {
	if capacity < 1 {
		capacity = 1
	}
	ev := &TypedEval{
		cap: capacity,
		seq: getSel(capacity),
		out: getSel(capacity)[:0],
	}
	for i := range ev.seq {
		ev.seq[i] = i
	}
	if p == nil {
		return ev
	}
	ev.noNulls = getBools(capacity)
	for i := range ev.noNulls {
		ev.noNulls[i] = false
	}
	ev.vecs = make([]Vector, p.nVec)
	ev.states = make([][]uint8, p.nState)
	for i := range ev.states {
		ev.states[i] = getStates(capacity)
	}
	ev.sels = make([][]int, p.nSel)
	for i := range ev.sels {
		ev.sels[i] = getSel(capacity)[:0]
	}
	ev.row = getBoxed(p.width)
	for _, c := range p.consts {
		ev.vecs[c.vec].Broadcast(c.v, capacity)
	}
	return ev
}

// Seq returns the identity selection [0, n): every row of a batch active.
func (ev *TypedEval) Seq(n int) []int { return ev.seq[:n] }

// Release returns all scratch to the slab pools. The TypedEval (and any
// vector an evaluation returned) must not be used afterwards.
func (ev *TypedEval) Release() {
	for i := range ev.vecs {
		ev.vecs[i].Release()
	}
	for _, s := range ev.states {
		putStates(s)
	}
	for _, s := range ev.sels {
		putSel(s)
	}
	if ev.seq != nil {
		putSel(ev.seq)
	}
	if ev.out != nil {
		putSel(ev.out)
	}
	if ev.noNulls != nil {
		putBools(ev.noNulls)
	}
	if ev.row != nil {
		putBoxed(ev.row)
	}
	*ev = TypedEval{}
}

// nullsOf returns a null mask to index for a typed vector (a shared
// all-false mask when the vector has none).
func (ev *TypedEval) nullsOf(v *Vector) []bool {
	if v.Nulls != nil {
		return v.Nulls
	}
	return ev.noNulls
}

// CompileTyped compiles the expression into a typed batch program against
// the layout. A nil expression compiles to a nil program, whose Filter
// passes every row. Binding errors surface here, exactly as with Compile
// and CompileBatch.
func CompileTyped(e sqlparse.Expr, layout Layout) (*TypedProgram, error) {
	if e == nil {
		return nil, nil
	}
	c := &typedCompiler{layout: layout, refs: map[int]bool{}}
	root, _, err := c.compile(e)
	if err != nil {
		return nil, err
	}
	p := &TypedProgram{root: *root, nVec: c.nVec, nSel: c.nSel, nState: c.nState, consts: c.consts}
	for s := range c.refs {
		p.refs = append(p.refs, s)
		if s+1 > p.width {
			p.width = s + 1
		}
	}
	sort.Ints(p.refs)
	return p, nil
}

// Refs returns the sorted batch slots the program reads (nil-safe).
func (p *TypedProgram) Refs() []int {
	if p == nil {
		return nil
	}
	return p.refs
}

// checkBatch validates slot coverage and that every referenced column was
// filled, once per batch.
func (p *TypedProgram) checkBatch(b *TBatch) error {
	if b.Width() < p.width {
		return fmt.Errorf("eval: typed batch has %d slots, program reads slot %d", b.Width(), p.width-1)
	}
	for _, s := range p.refs {
		if !b.filled[s] {
			return fmt.Errorf("eval: typed batch slot %d referenced by program but never filled", s)
		}
	}
	return nil
}

// truthAt reports whether a result vector row is boolean TRUE.
func truthAt(v *Vector, r int) bool {
	switch v.Kind {
	case VecBool:
		return (v.Nulls == nil || !v.Nulls[r]) && v.Bools[r]
	case VecBoxed:
		return v.Boxed[r].IsTrue()
	default:
		return false
	}
}

// Filter evaluates the program as a predicate over the selected rows and
// returns the rows where it is TRUE, with the boxed engine's exact error
// contract (see BatchProgram.Filter). The returned selection is owned by
// ev and valid until its next use.
func (p *TypedProgram) Filter(ev *TypedEval, b *TBatch, sel []int) (passed []int, errRow int, err error) {
	if p == nil {
		return sel, -1, nil
	}
	if err := p.checkBatch(b); err != nil {
		return nil, -1, err
	}
	out, errRow, err := p.root.eval(ev, b, sel)
	passed = ev.out[:0]
	rows := selBefore(sel, errRow)
	// A dense selection (the identity prefix every base-table scan feeds
	// in) over a boolean vector compacts word-at-a-time; selections are
	// strictly increasing, so first==0 and last==len-1 imply identity.
	if out != nil && out.Kind == VecBool && len(rows) > 0 &&
		rows[0] == 0 && rows[len(rows)-1] == len(rows)-1 {
		passed = CompactTrue(passed, out.Bools, out.Nulls, len(rows))
	} else {
		for _, r := range rows {
			if truthAt(out, r) {
				passed = append(passed, r)
			}
		}
	}
	return passed, errRow, err
}

// EvalVec evaluates a value-producing program (projections, sort keys)
// over the selected rows. The vector is owned by ev (or aliases a batch
// column) and valid until the next evaluation.
func (p *TypedProgram) EvalVec(ev *TypedEval, b *TBatch, sel []int) (out *Vector, errRow int, err error) {
	if p == nil {
		return nil, -1, fmt.Errorf("eval: nil typed program")
	}
	if err := p.checkBatch(b); err != nil {
		return nil, -1, err
	}
	return p.root.eval(ev, b, sel)
}

// typedCompiler builds the node tree, handing out vector, selection and
// state ids that NewEval sizes the scratch from.
type typedCompiler struct {
	layout Layout
	refs   map[int]bool
	nVec   int
	nSel   int
	nState int
	consts []constFill
}

func (c *typedCompiler) newVec() int   { id := c.nVec; c.nVec++; return id }
func (c *typedCompiler) newSel() int   { id := c.nSel; c.nSel++; return id }
func (c *typedCompiler) newState() int { id := c.nState; c.nState++; return id }

// constNode materializes a folded constant: a broadcast vector, or an
// error surfacing at the first selected row (never at compile time).
func (c *typedCompiler) constNode(cv constVal) (*texpr, *constVal, error) {
	if cv.err != nil {
		err := cv.err
		return &texpr{fn: func(ev *TypedEval, b *TBatch, sel []int) (*Vector, int, error) {
			if len(sel) == 0 {
				return nil, -1, nil
			}
			return nil, sel[0], err
		}}, &cv, nil
	}
	id := c.newVec()
	c.consts = append(c.consts, constFill{vec: id, v: cv.v})
	return &texpr{fn: func(ev *TypedEval, b *TBatch, sel []int) (*Vector, int, error) {
		return &ev.vecs[id], -1, nil
	}}, &cv, nil
}

// foldConst evaluates a row-independent subtree once through the scalar
// compiler (the reference fold semantics) and freezes the outcome.
func (c *typedCompiler) foldConst(e sqlparse.Expr) (*texpr, *constVal, error) {
	sub := &compiler{layout: c.layout, refs: map[int]bool{}}
	n, _, err := sub.compile(e)
	if err != nil {
		return nil, nil, err
	}
	v, verr := n(nil)
	return c.constNode(constVal{v: v, err: verr})
}

// scalarTail compiles the subtree with the scalar compiler and evaluates
// it per selected row over a gathered (boxed) scratch row: the long-tail
// path reuses the scalar kernels verbatim, exactly like the boxed engine.
func (c *typedCompiler) scalarTail(e sqlparse.Expr) (*texpr, *constVal, error) {
	sub := &compiler{layout: c.layout, refs: map[int]bool{}}
	n, isConst, err := sub.compile(e)
	if err != nil {
		return nil, nil, err
	}
	if isConst {
		v, verr := n(nil)
		return c.constNode(constVal{v: v, err: verr})
	}
	gather := make([]int, 0, len(sub.refs))
	for s := range sub.refs {
		gather = append(gather, s)
		c.refs[s] = true
	}
	sort.Ints(gather)
	id := c.newVec()
	return &texpr{fn: func(ev *TypedEval, b *TBatch, sel []int) (*Vector, int, error) {
		out := &ev.vecs[id]
		cells := out.BoxedBuf(ev.cap)
		for _, r := range sel {
			for _, s := range gather {
				ev.row[s] = b.cols[s].ValueAt(r)
			}
			v, err := n(ev.row)
			if err != nil {
				return out, r, err
			}
			cells[r] = v
		}
		return out, -1, nil
	}}, nil, nil
}

// compile returns the typed node for e and, when the subtree is
// row-independent, its folded constant.
func (c *typedCompiler) compile(e sqlparse.Expr) (*texpr, *constVal, error) {
	switch n := e.(type) {
	case *sqlparse.NumberLit, *sqlparse.StringLit, *sqlparse.BoolLit, *sqlparse.NullLit:
		return c.foldConst(e)

	case *sqlparse.ColumnRef:
		slot, err := c.layout.Slot(n.Table, n.Column)
		if err != nil {
			return nil, nil, err
		}
		c.refs[slot] = true
		return &texpr{fn: func(ev *TypedEval, b *TBatch, sel []int) (*Vector, int, error) {
			return &b.cols[slot], -1, nil
		}}, nil, nil

	case *sqlparse.UnaryExpr:
		x, xc, err := c.compile(n.X)
		if err != nil {
			return nil, nil, err
		}
		if xc != nil {
			return c.foldConst(e)
		}
		if n.Op == "NOT" {
			return c.notNode(x), nil, nil
		}
		return c.negNode(x), nil, nil

	case *sqlparse.IsNull:
		x, xc, err := c.compile(n.X)
		if err != nil {
			return nil, nil, err
		}
		if xc != nil {
			return c.foldConst(e)
		}
		id := c.newVec()
		negated := n.Negated
		return &texpr{fn: func(ev *TypedEval, b *TBatch, sel []int) (*Vector, int, error) {
			xo, er, xerr := x.eval(ev, b, sel)
			out := &ev.vecs[id]
			ob, on := out.BoolBuf(ev.cap)
			for _, r := range selBefore(sel, er) {
				ob[r], on[r] = xo.NullAt(r) != negated, false
			}
			return out, er, xerr
		}}, nil, nil

	case *sqlparse.BinaryExpr:
		return c.compileBinary(n)

	case *sqlparse.FuncCall:
		return c.compileFunc(n)

	case *sqlparse.InList, *sqlparse.Between:
		return c.scalarTail(e)

	case *sqlparse.Star:
		return nil, nil, fmt.Errorf("eval: * is not valid in an expression")
	}
	return nil, nil, fmt.Errorf("eval: unsupported expression %T", e)
}

func (c *typedCompiler) notNode(x *texpr) *texpr {
	id := c.newVec()
	return &texpr{fn: func(ev *TypedEval, b *TBatch, sel []int) (*Vector, int, error) {
		xo, er, xerr := x.eval(ev, b, sel)
		out := &ev.vecs[id]
		rows := selBefore(sel, er)
		if len(rows) == 0 {
			// An operand that failed on the first selected row returns no
			// vector; with no rows to fill there is nothing to dispatch on.
			return out, er, xerr
		}
		ob, on := out.BoolBuf(ev.cap)
		switch xo.Kind {
		case VecBool:
			xn := ev.nullsOf(xo)
			for _, r := range rows {
				ob[r], on[r] = !xo.Bools[r], xn[r]
			}
		case VecBoxed:
			for _, r := range rows {
				v := value.Not(xo.Boxed[r])
				ob[r], on[r] = v.IsTrue(), v.IsNull()
			}
		default:
			// value.Not of a non-bool, non-NULL value is TRUE (!IsTrue).
			xn := ev.nullsOf(xo)
			for _, r := range rows {
				ob[r], on[r] = !xn[r], xn[r]
			}
		}
		return out, er, xerr
	}}
}

func (c *typedCompiler) negNode(x *texpr) *texpr {
	id := c.newVec()
	return &texpr{fn: func(ev *TypedEval, b *TBatch, sel []int) (*Vector, int, error) {
		xo, er, xerr := x.eval(ev, b, sel)
		out := &ev.vecs[id]
		rows := selBefore(sel, er)
		if len(rows) == 0 {
			return out, er, xerr
		}
		switch xo.Kind {
		case VecInt:
			vals, nulls := out.IntBuf(ev.cap)
			xn := ev.nullsOf(xo)
			for _, r := range rows {
				vals[r], nulls[r] = -xo.Ints[r], xn[r]
			}
		case VecFloat:
			vals, nulls := out.FloatBuf(ev.cap)
			xn := ev.nullsOf(xo)
			for _, r := range rows {
				vals[r], nulls[r] = -xo.Floats[r], xn[r]
			}
		default:
			cells := out.BoxedBuf(ev.cap)
			for _, r := range rows {
				v, verr := value.Neg(xo.ValueAt(r))
				if verr != nil {
					return out, r, verr
				}
				cells[r] = v
			}
		}
		return out, er, xerr
	}}
}

func (c *typedCompiler) compileBinary(n *sqlparse.BinaryExpr) (*texpr, *constVal, error) {
	l, lc, err := c.compile(n.L)
	if err != nil {
		return nil, nil, err
	}

	// Mirror the scalar compiler's decided-left AND/OR fold exactly: the
	// dead side is still compiled (binding errors must not hide behind a
	// constant guard) but into a scratch ref set.
	if lc != nil && (n.Op == "AND" || n.Op == "OR") {
		var decided *constVal
		switch {
		case lc.err != nil:
			decided = &constVal{err: lc.err}
		case n.Op == "AND" && lc.v.Type() == value.BoolType && !lc.v.AsBool():
			decided = &constVal{v: value.Bool(false)}
		case n.Op == "OR" && lc.v.IsTrue():
			decided = &constVal{v: value.Bool(true)}
		}
		if decided != nil {
			sub := &compiler{layout: c.layout, refs: map[int]bool{}}
			if _, _, err := sub.compile(n.R); err != nil {
				return nil, nil, err
			}
			return c.constNode(*decided)
		}
	}

	r, rc, err := c.compile(n.R)
	if err != nil {
		return nil, nil, err
	}
	if lc != nil && rc != nil {
		return c.foldConst(n)
	}

	switch n.Op {
	case "AND":
		// Flatten only the left spine (the right side stays one member):
		// value.And is not associative for non-bool operands, exactly as in
		// the boxed engine (see batch.go).
		members := append(tflattenAnd(l), *r)
		return &texpr{and: members, vec: c.newVec(), state: c.newState(), live: c.newSel()}, nil, nil
	case "OR":
		members := append(tflattenOr(l), tflattenOr(r)...)
		return &texpr{or: members, vec: c.newVec(), state: c.newState(), live: c.newSel()}, nil, nil
	case "+", "-", "*", "/", "%":
		return c.arithNode(l, r, n.Op), nil, nil
	case "=", "<>", "<", "<=", ">", ">=":
		return c.cmpNode(l, r, n.Op), nil, nil
	case "LIKE":
		return c.likeNode(l, r, rc), nil, nil
	}
	return nil, nil, fmt.Errorf("eval: unknown operator %q", n.Op)
}

func tflattenAnd(n *texpr) []texpr {
	if n.and != nil {
		return n.and
	}
	return []texpr{*n}
}

func tflattenOr(n *texpr) []texpr {
	if n.or != nil {
		return n.or
	}
	return []texpr{*n}
}

// tbinOperands evaluates a binary node's operands with the scalar engine's
// per-row order: the right side runs only at rows where the left side
// succeeded, and the reported failure is the one from the lowest row.
func tbinOperands(ev *TypedEval, b *TBatch, sel []int, l, r *texpr) (lo, ro *Vector, bounded []int, errRow int, err error) {
	lo, ler, lerr := l.eval(ev, b, sel)
	selEval := selBefore(sel, ler)
	ro, rer, rerr := r.eval(ev, b, selEval)
	errRow, err = ler, lerr
	if rerr != nil {
		// selEval only holds rows before ler, so rer < ler.
		errRow, err = rer, rerr
	}
	return lo, ro, selBefore(sel, errRow), errRow, err
}

// cmpNode is the typed comparison kernel. The int64/float64 pairs (in all
// four combinations), the string pair and the bool pair run native loops
// that mirror value.Compare bug-for-bug — int64 operands widen to float64
// (so values beyond 2^53 compare equal when their float images do) and
// NaN compares equal to everything — and anything else falls back per
// element to the boxed comparison.
func (c *typedCompiler) cmpNode(l, r *texpr, op string) *texpr {
	kind := cmpOpKind(op)
	id := c.newVec()
	return &texpr{fn: func(ev *TypedEval, b *TBatch, sel []int) (*Vector, int, error) {
		lo, ro, rows, errRow, err := tbinOperands(ev, b, sel, l, r)
		out := &ev.vecs[id]
		if len(rows) == 0 {
			return out, errRow, err
		}
		ob, on := out.BoolBuf(ev.cap)
		switch {
		case lo.Kind == VecInt && ro.Kind == VecInt:
			ln, rn := ev.nullsOf(lo), ev.nullsOf(ro)
			for _, rw := range rows {
				if ln[rw] || rn[rw] {
					on[rw] = true
					continue
				}
				lf, rf := float64(lo.Ints[rw]), float64(ro.Ints[rw])
				cv := 0
				if lf < rf {
					cv = -1
				} else if lf > rf {
					cv = 1
				}
				ob[rw], on[rw] = cmpKindHolds(kind, cv), false
			}
		case lo.Kind == VecFloat && ro.Kind == VecFloat:
			ln, rn := ev.nullsOf(lo), ev.nullsOf(ro)
			for _, rw := range rows {
				if ln[rw] || rn[rw] {
					on[rw] = true
					continue
				}
				lf, rf := lo.Floats[rw], ro.Floats[rw]
				cv := 0
				if lf < rf {
					cv = -1
				} else if lf > rf {
					cv = 1
				}
				ob[rw], on[rw] = cmpKindHolds(kind, cv), false
			}
		case lo.Kind == VecInt && ro.Kind == VecFloat:
			ln, rn := ev.nullsOf(lo), ev.nullsOf(ro)
			for _, rw := range rows {
				if ln[rw] || rn[rw] {
					on[rw] = true
					continue
				}
				lf, rf := float64(lo.Ints[rw]), ro.Floats[rw]
				cv := 0
				if lf < rf {
					cv = -1
				} else if lf > rf {
					cv = 1
				}
				ob[rw], on[rw] = cmpKindHolds(kind, cv), false
			}
		case lo.Kind == VecFloat && ro.Kind == VecInt:
			ln, rn := ev.nullsOf(lo), ev.nullsOf(ro)
			for _, rw := range rows {
				if ln[rw] || rn[rw] {
					on[rw] = true
					continue
				}
				lf, rf := lo.Floats[rw], float64(ro.Ints[rw])
				cv := 0
				if lf < rf {
					cv = -1
				} else if lf > rf {
					cv = 1
				}
				ob[rw], on[rw] = cmpKindHolds(kind, cv), false
			}
		case lo.Kind == VecStr && ro.Kind == VecStr:
			ln, rn := ev.nullsOf(lo), ev.nullsOf(ro)
			for _, rw := range rows {
				if ln[rw] || rn[rw] {
					on[rw] = true
					continue
				}
				ls, rs := lo.Strs[rw], ro.Strs[rw]
				cv := 0
				if ls < rs {
					cv = -1
				} else if ls > rs {
					cv = 1
				}
				ob[rw], on[rw] = cmpKindHolds(kind, cv), false
			}
		case lo.Kind == VecBool && ro.Kind == VecBool:
			ln, rn := ev.nullsOf(lo), ev.nullsOf(ro)
			for _, rw := range rows {
				if ln[rw] || rn[rw] {
					on[rw] = true
					continue
				}
				li, ri := 0, 0
				if lo.Bools[rw] {
					li = 1
				}
				if ro.Bools[rw] {
					ri = 1
				}
				ob[rw], on[rw] = cmpKindHolds(kind, li-ri), false
			}
		default:
			for _, rw := range rows {
				la, ra := lo.ValueAt(rw), ro.ValueAt(rw)
				if la.IsNull() || ra.IsNull() {
					on[rw] = true
					continue
				}
				cv, ok, cerr := value.Compare(la, ra)
				if cerr != nil {
					return out, rw, cerr
				}
				if !ok {
					on[rw] = true
					continue
				}
				ob[rw], on[rw] = cmpKindHolds(kind, cv), false
			}
		}
		return out, errRow, err
	}}
}

// arithNode is the typed arithmetic kernel: the int64 paths of + - * %
// (wraparound, like value.Arith) and the float64 paths (division always
// float, identical zero-divisor errors) are inlined per operand-kind pair;
// everything else — string concatenation, type errors, boxed operands —
// falls back per element to value.Arith.
func (c *typedCompiler) arithNode(l, r *texpr, op string) *texpr {
	id := c.newVec()
	return &texpr{fn: func(ev *TypedEval, b *TBatch, sel []int) (*Vector, int, error) {
		lo, ro, rows, errRow, err := tbinOperands(ev, b, sel, l, r)
		out := &ev.vecs[id]
		if len(rows) == 0 {
			return out, errRow, err
		}
		bothInt := lo.Kind == VecInt && ro.Kind == VecInt
		numeric := (lo.Kind == VecInt || lo.Kind == VecFloat) && (ro.Kind == VecInt || ro.Kind == VecFloat)
		switch {
		case bothInt && op != "/":
			vals, nulls := out.IntBuf(ev.cap)
			ln, rn := ev.nullsOf(lo), ev.nullsOf(ro)
			for _, rw := range rows {
				if ln[rw] || rn[rw] {
					nulls[rw] = true
					continue
				}
				la, ra := lo.Ints[rw], ro.Ints[rw]
				switch op {
				case "+":
					vals[rw] = la + ra
				case "-":
					vals[rw] = la - ra
				case "*":
					vals[rw] = la * ra
				default: // "%"
					if ra == 0 {
						_, aerr := value.Arith(op, value.Int(la), value.Int(ra))
						return out, rw, aerr
					}
					vals[rw] = la % ra
				}
				nulls[rw] = false
			}
		case numeric && op != "%":
			vals, nulls := out.FloatBuf(ev.cap)
			ln, rn := ev.nullsOf(lo), ev.nullsOf(ro)
			for _, rw := range rows {
				if ln[rw] || rn[rw] {
					nulls[rw] = true
					continue
				}
				var lf, rf float64
				if lo.Kind == VecInt {
					lf = float64(lo.Ints[rw])
				} else {
					lf = lo.Floats[rw]
				}
				if ro.Kind == VecInt {
					rf = float64(ro.Ints[rw])
				} else {
					rf = ro.Floats[rw]
				}
				switch op {
				case "+":
					vals[rw] = lf + rf
				case "-":
					vals[rw] = lf - rf
				case "*":
					vals[rw] = lf * rf
				default: // "/"
					if rf == 0 {
						_, aerr := value.Arith(op, lo.ValueAt(rw), ro.ValueAt(rw))
						return out, rw, aerr
					}
					vals[rw] = lf / rf
				}
				nulls[rw] = false
			}
		default:
			cells := out.BoxedBuf(ev.cap)
			for _, rw := range rows {
				v, aerr := value.Arith(op, lo.ValueAt(rw), ro.ValueAt(rw))
				if aerr != nil {
					return out, rw, aerr
				}
				cells[rw] = v
			}
		}
		return out, errRow, err
	}}
}

// likeNode vectorizes LIKE with the constant-pattern specializations of
// the row engines; with a string column operand the matcher runs straight
// over the native payload.
func (c *typedCompiler) likeNode(l, r *texpr, rc *constVal) *texpr {
	if rc != nil {
		switch {
		case rc.err != nil:
			n, _, _ := c.constNode(constVal{err: rc.err})
			return n
		case rc.v.IsNull():
			id := c.newVec()
			return &texpr{fn: func(ev *TypedEval, b *TBatch, sel []int) (*Vector, int, error) {
				_, er, lerr := l.eval(ev, b, sel)
				out := &ev.vecs[id]
				_, on := out.BoolBuf(ev.cap)
				for _, rw := range selBefore(sel, er) {
					on[rw] = true
				}
				return out, er, lerr
			}}
		case rc.v.Type() == value.StringType:
			pat := rc.v.AsString()
			match := likeMatcher(pat)
			if match == nil {
				rx, err := compileLike(pat)
				if err != nil {
					break // defer the pattern error to evaluation, like the row engines
				}
				match = rx.MatchString
			}
			rt := rc.v.Type()
			id := c.newVec()
			return &texpr{fn: func(ev *TypedEval, b *TBatch, sel []int) (*Vector, int, error) {
				lo, er, lerr := l.eval(ev, b, sel)
				out := &ev.vecs[id]
				rows := selBefore(sel, er)
				if len(rows) == 0 {
					return out, er, lerr
				}
				ob, on := out.BoolBuf(ev.cap)
				if lo.Kind == VecStr {
					ln := ev.nullsOf(lo)
					for _, rw := range rows {
						if ln[rw] {
							on[rw] = true
							continue
						}
						ob[rw], on[rw] = match(lo.Strs[rw]), false
					}
					return out, er, lerr
				}
				for _, rw := range rows {
					lv := lo.ValueAt(rw)
					if lv.IsNull() {
						on[rw] = true
						continue
					}
					if lv.Type() != value.StringType {
						return out, rw, fmt.Errorf("eval: LIKE requires strings, got %v and %v", lv.Type(), rt)
					}
					ob[rw], on[rw] = match(lv.AsString()), false
				}
				return out, er, lerr
			}}
		}
	}
	id := c.newVec()
	return &texpr{fn: func(ev *TypedEval, b *TBatch, sel []int) (*Vector, int, error) {
		lo, ro, rows, errRow, err := tbinOperands(ev, b, sel, l, r)
		out := &ev.vecs[id]
		cells := out.BoxedBuf(ev.cap)
		for _, rw := range rows {
			v, lerr := evalLike(lo.ValueAt(rw), ro.ValueAt(rw))
			if lerr != nil {
				return out, rw, lerr
			}
			cells[rw] = v
		}
		return out, errRow, err
	}}
}

// float1 maps the unary scalar functions whose non-NULL numeric result is
// exactly Float(f(x)) — oneNumKernel semantics — to their float kernels.
// ABS is included for float operands only (its integer path returns INT
// and has a MinInt64 special case, so integer ABS stays on the shared
// kernel).
var float1 = map[string]func(float64) float64{
	"ABS":     math.Abs,
	"SQRT":    math.Sqrt,
	"FLOOR":   math.Floor,
	"CEIL":    math.Ceil,
	"CEILING": math.Ceil,
	"LOG":     math.Log,
	"LOG10":   math.Log10,
	"EXP":     math.Exp,
	"SIN":     math.Sin,
	"COS":     math.Cos,
	"RADIANS": func(x float64) float64 { return x * math.Pi / 180 },
	"DEGREES": func(x float64) float64 { return x * 180 / math.Pi },
}

// compileFunc vectorizes fixed-arity scalar functions by looping the
// shared kernels, with a native float fast path for the numeric unary
// functions over float (and, except ABS, int) vectors; COALESCE and arity
// errors fall back to the scalar tail.
func (c *typedCompiler) compileFunc(n *sqlparse.FuncCall) (*texpr, *constVal, error) {
	name := strings.ToUpper(n.Name)
	if k := scalar1[name]; k != nil && len(n.Args) == 1 {
		a, ac, err := c.compile(n.Args[0])
		if err != nil {
			return nil, nil, err
		}
		if ac != nil {
			return c.foldConst(n)
		}
		fk := float1[name]
		id := c.newVec()
		return &texpr{fn: func(ev *TypedEval, b *TBatch, sel []int) (*Vector, int, error) {
			ao, er, aerr := a.eval(ev, b, sel)
			out := &ev.vecs[id]
			rows := selBefore(sel, er)
			if len(rows) == 0 {
				return out, er, aerr
			}
			if fk != nil && (ao.Kind == VecFloat || ao.Kind == VecInt && name != "ABS") {
				vals, nulls := out.FloatBuf(ev.cap)
				an := ev.nullsOf(ao)
				if ao.Kind == VecFloat {
					for _, rw := range rows {
						if an[rw] {
							nulls[rw] = true
							continue
						}
						vals[rw], nulls[rw] = fk(ao.Floats[rw]), false
					}
				} else {
					for _, rw := range rows {
						if an[rw] {
							nulls[rw] = true
							continue
						}
						vals[rw], nulls[rw] = fk(float64(ao.Ints[rw])), false
					}
				}
				return out, er, aerr
			}
			cells := out.BoxedBuf(ev.cap)
			for _, rw := range rows {
				v, kerr := k(ao.ValueAt(rw))
				if kerr != nil {
					return out, rw, kerr
				}
				cells[rw] = v
			}
			return out, er, aerr
		}}, nil, nil
	}
	if k := scalar2[name]; k != nil && len(n.Args) == 2 {
		a, ac, err := c.compile(n.Args[0])
		if err != nil {
			return nil, nil, err
		}
		bb, bc, err := c.compile(n.Args[1])
		if err != nil {
			return nil, nil, err
		}
		if ac != nil && bc != nil {
			return c.foldConst(n)
		}
		id := c.newVec()
		return &texpr{fn: func(ev *TypedEval, b *TBatch, sel []int) (*Vector, int, error) {
			ao, bo, rows, errRow, err := tbinOperands(ev, b, sel, a, bb)
			out := &ev.vecs[id]
			cells := out.BoxedBuf(ev.cap)
			for _, rw := range rows {
				v, kerr := k(ao.ValueAt(rw), bo.ValueAt(rw))
				if kerr != nil {
					return out, rw, kerr
				}
				cells[rw] = v
			}
			return out, errRow, err
		}}, nil, nil
	}
	return c.scalarTail(n)
}
