package eval

import "testing"

func TestBatchSizerShrinkAndGrow(t *testing.T) {
	defer SetBatchSize(DefaultBatchSize)
	SetBatchSize(1024)
	s := NewBatchSizer()
	if s.Size() != 1024 {
		t.Fatalf("initial size %d, want 1024", s.Size())
	}

	// Full batches that are mostly wasted shrink geometrically to the floor.
	for i := 0; i < 20; i++ {
		s.Observe(s.Size(), 1)
	}
	if s.Size() != MinAdaptiveBatch {
		t.Fatalf("after wasted batches size %d, want floor %d", s.Size(), MinAdaptiveBatch)
	}
	// And never below it.
	s.Observe(s.Size(), 0)
	if s.Size() != MinAdaptiveBatch {
		t.Fatalf("size %d fell below the floor", s.Size())
	}

	// Fully-used full batches grow back to the ceiling.
	for i := 0; i < 20; i++ {
		s.Observe(s.Size(), s.Size())
	}
	if s.Size() != 1024 {
		t.Fatalf("after useful batches size %d, want ceiling 1024", s.Size())
	}
}

func TestBatchSizerPartialBatchesCarryNoSignal(t *testing.T) {
	defer SetBatchSize(DefaultBatchSize)
	SetBatchSize(1024)
	s := NewBatchSizer()
	// The candidate stream ran dry below the threshold: the threshold was
	// not binding, so neither a wasted nor a useful partial batch moves it.
	s.Observe(10, 0)
	s.Observe(512, 512)
	s.Observe(0, 0)
	if s.Size() != 1024 {
		t.Fatalf("partial batches moved the size to %d", s.Size())
	}
}

func TestBatchSizerMiddlingUtilizationHolds(t *testing.T) {
	defer SetBatchSize(DefaultBatchSize)
	SetBatchSize(1024)
	s := NewBatchSizer()
	// Between 1/8 and 1/2 useful: neither shrink nor grow.
	s.Observe(1024, 300)
	if s.Size() != 1024 {
		t.Fatalf("middling utilization moved the size to %d", s.Size())
	}
}

func TestBatchSizerTinyGlobalBatch(t *testing.T) {
	defer SetBatchSize(DefaultBatchSize)
	// The golden corpus runs at batch size 1: the sizer must clamp its
	// floor to the ceiling instead of growing past the knob.
	SetBatchSize(1)
	s := NewBatchSizer()
	if s.Size() != 1 {
		t.Fatalf("size %d, want 1", s.Size())
	}
	s.Observe(1, 0)
	if s.Size() != 1 {
		t.Fatalf("size %d after shrink at ceiling 1", s.Size())
	}
	s.Observe(1, 1)
	if s.Size() != 1 {
		t.Fatalf("size %d grew past the ceiling", s.Size())
	}
}
